// Command litmus reproduces the paper's figures: it runs every litmus
// history (Figures 1–6 plus auxiliary cases) through every implemented
// criterion and prints the verdict matrix, comparing against the expected
// verdicts. A mismatch makes the command exit nonzero.
//
// Usage:
//
//	litmus [-case name] [-v]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"duopacity/internal/litmus"
	"duopacity/internal/spec"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "litmus:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("litmus", flag.ContinueOnError)
	caseName := fs.String("case", "", "run only the named case")
	verbose := fs.Bool("v", false, "print each history and witness serializations")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cases := litmus.Cases()
	if *caseName != "" {
		c := litmus.ByName(*caseName)
		if c == nil {
			return fmt.Errorf("unknown case %q", *caseName)
		}
		cases = []litmus.Case{*c}
	}
	criteria := spec.AllCriteria()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "case")
	for _, c := range criteria {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)

	mismatches := 0
	for _, lc := range cases {
		fmt.Fprint(tw, lc.Name)
		for _, crit := range criteria {
			v := spec.Check(lc.H, crit)
			cell := "✗"
			if v.OK {
				cell = "✓"
			}
			if want, ok := lc.Expect[crit]; ok && v.OK != want {
				cell += "!MISMATCH"
				mismatches++
			}
			fmt.Fprintf(tw, "\t%s", cell)
		}
		fmt.Fprintln(tw)
		if *verbose {
			_ = tw.Flush()
			fmt.Printf("\n%s — %s\n%s", lc.Name, lc.Desc, lc.H)
			if v := spec.CheckDUOpacity(lc.H); v.OK {
				fmt.Printf("du-opaque serialization: %s\n\n", v.Serialization)
			} else {
				fmt.Printf("du-opacity refutation: %s\n\n", v.Reason)
			}
		}
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	if mismatches > 0 {
		return fmt.Errorf("%d verdicts differ from the paper's expectations", mismatches)
	}
	fmt.Println("\nall verdicts match the paper")
	return nil
}
