package main

import "testing"

func TestRunAllCases(t *testing.T) {
	// The full matrix must match the registry's expectations (the run
	// returns an error on any mismatch).
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunSingleCase(t *testing.T) {
	if err := run([]string{"-case", "figure-4", "-v"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-case", "no-such"}); err == nil {
		t.Fatal("unknown case accepted")
	}
}
