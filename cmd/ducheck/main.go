// Command ducheck checks transactional histories against the correctness
// criteria of the paper. Histories are read from files (or stdin with
// "-") in the text format of internal/histio.
//
// Usage:
//
//	ducheck [-criteria du,opacity,...] [-witness] file...
//	ducheck -parallel [-jobs N] [-portfolio N] file...
//	ducheck -follow [-criteria du,tms2,rco,opacity,finalstate] [-retire N] [-skip-bad|-strict] [-connect host:port] [-]
//	ducheck -explore -engine tl2 [-criteria du,opacity] [-max-schedules N] plan...
//
// With several files (or -parallel), every file is checked against every
// requested criterion; -parallel shards the batch across -jobs workers
// (default GOMAXPROCS) via the certification farm, with results printed
// in input order regardless of completion order. -portfolio parallelizes
// inside a single check instead, fanning the top-level branches of the
// serialization search across workers — the right knob when one large
// history dominates.
//
// -follow monitors a history as it is produced: events are read from
// stdin line by line (same text format) and fed to an online monitor per
// requested criterion, printing a verdict column after every response
// event — so a violation is reported at the exact event that caused it,
// while the producer is still running. Only the monitorable criteria
// (see spec.MonitorableCriteria: du, tms2, rco, opacity, finalstate —
// tms2 and rco maintain their conflict-order edge sets incrementally)
// are allowed with -follow; the serializability baselines stay
// batch-only. Malformed lines are reported on stderr and skipped; the
// monitors are unaffected.
// -skip-bad quarantines bad input instead: each offender is counted
// (not noted line by line), a structured report lists the first ten on
// stderr at the end, and the summary gains a "follow: events=N bad=M"
// line. -strict is the opposite policy: the first bad line aborts the
// follow with exit status 2.
// -retire N bounds the monitors' memory on unbounded streams: settled
// committed transactions are checkpointed and discarded once more than N
// are live, without changing any verdict.
// -connect host:port ships the stream to a certd server instead of
// monitoring in-process: stdin lines are forwarded verbatim, the
// server's per-event verdicts and final summary stream back, and the
// criteria/retire/skip-bad/strict policies travel in the stream hello.
//
// -explore changes the input from histories to *plans* (one thread per
// line, '|' between a thread's transactions, "r<obj>"/"w<obj>"
// operations): instead of checking one recorded history, ducheck
// enumerates every schedule of the deterministic stepper's space for
// the plan — the -engine's exclusion policy plus the stepper's
// abort-backoff discipline, the space the interleaved sampler draws
// from — and certifies each online, so the answer is a per-plan proof
// ("no schedule of that space violates du-opacity") or a refutation
// pinned at the causing schedule and event. Criteria are limited to the
// prefix-closed monitorable ones (du, opacity); -parallel/-jobs shard
// plans across the certification farm.
//
// Exit status: 0 if every requested criterion accepts every history
// (with -explore: proves every plan), 1 if any rejects (with -explore:
// any plan refuted or left undecided by the budget), 2 on input errors.
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"os"
	"strings"

	"duopacity/internal/checkfarm"
	"duopacity/internal/harness"
	"duopacity/internal/histio"
	"duopacity/internal/history"
	"duopacity/internal/spec"
	"duopacity/internal/stm"
)

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ducheck:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

// run executes the CLI with diagnostics on os.Stderr; runWith is the
// testable entry point with the diagnostic stream injected.
func run(args []string, stdin io.Reader, stdout io.Writer) (int, error) {
	return runWith(args, stdin, stdout, os.Stderr)
}

func runWith(args []string, stdin io.Reader, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("ducheck", flag.ContinueOnError)
	criteriaFlag := fs.String("criteria", "du,opacity,finalstate,tms2,rco,strictser,ser",
		"comma-separated criteria (du, opacity, finalstate, tms2, rco, strictser, ser)")
	witness := fs.Bool("witness", false, "print witness serializations")
	explain := fs.Bool("explain", false, "print the per-read deferred-update analysis")
	nodeLimit := fs.Int("node-limit", 0, "bound the search (0 = unlimited)")
	parallel := fs.Bool("parallel", false, "check the files concurrently via the certification farm")
	jobs := fs.Int("jobs", 0, "worker count for -parallel (0 = GOMAXPROCS)")
	portfolio := fs.Int("portfolio", 0,
		"fan each check's top-level search branches across this many workers (spec.WithParallelism; useful for one hard history, combine with -parallel for many)")
	follow := fs.Bool("follow", false,
		"monitor events from stdin as they arrive (streaming ingestion; criteria limited to "+spec.MonitorableNames()+")")
	retire := fs.Int("retire", 0,
		"with -follow: retire settled committed transactions once this many are live, bounding monitor memory on long streams (0 = keep everything)")
	skipBad := fs.Bool("skip-bad", false,
		"with -follow: quarantine malformed or rejected input instead of noting each line — count it, report a structured summary on stderr at the end, and add bad=N to the summary line")
	strict := fs.Bool("strict", false,
		"with -follow: fail fast on the first malformed or rejected input line (exit 2)")
	connect := fs.String("connect", "",
		"with -follow: ship events to a certd stream endpoint (host:port) instead of monitoring in-process; the server's per-event verdicts and final summary stream back")
	explore := fs.Bool("explore", false,
		"arguments are plan files (internal/stm text format), not histories: enumerate every schedule of the deterministic stepper's space for each plan and prove or refute it (criteria limited to du, opacity)")
	engine := fs.String("engine", "tl2", "engine to explore plans on (with -explore)")
	maxSchedules := fs.Int("max-schedules", 0, "explore budget: schedules per plan (0 = default)")
	maxAttempts := fs.Int("max-attempts", 0, "explore retry bound per transaction (0 = default)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if !*follow && fs.NArg() < 1 {
		return 2, fmt.Errorf("usage: ducheck [flags] <file|->...")
	}

	var criteria []spec.Criterion
	for _, name := range strings.Split(*criteriaFlag, ",") {
		c, ok := spec.ParseCriterion(strings.TrimSpace(name))
		if !ok {
			return 2, fmt.Errorf("unknown criterion %q", name)
		}
		criteria = append(criteria, c)
	}

	if *skipBad && *strict {
		return 2, fmt.Errorf("-skip-bad and -strict are mutually exclusive")
	}
	if *follow {
		if fs.NArg() > 1 || (fs.NArg() == 1 && fs.Arg(0) != "-") {
			return 2, fmt.Errorf("-follow reads events from stdin; no file arguments allowed")
		}
		// With the default criteria list, follow only the monitorable
		// ones; an explicit -criteria must name monitorable criteria.
		if !flagWasSet(fs, "criteria") {
			criteria = []spec.Criterion{spec.DUOpacity, spec.Opacity, spec.FinalStateOpacity}
		}
		if *connect != "" {
			return runFollowConnect(*connect, criteria, *nodeLimit, *retire, *skipBad, *strict, stdin, stdout)
		}
		return runFollow(criteria, *nodeLimit, *retire, *skipBad, *strict, stdin, stdout, stderr)
	}
	if *connect != "" {
		return 2, fmt.Errorf("-connect only applies to -follow")
	}
	if flagWasSet(fs, "retire") {
		return 2, fmt.Errorf("-retire only applies to -follow")
	}
	if *skipBad || *strict {
		return 2, fmt.Errorf("-skip-bad and -strict only apply to -follow")
	}

	paths := fs.Args()
	// Buffer stdin once so "-" can appear several times in a batch
	// without the later occurrences silently parsing a drained reader.
	var stdinSrc []byte
	for _, path := range paths {
		if path == "-" {
			b, err := io.ReadAll(stdin)
			if err != nil {
				return 2, err
			}
			stdinSrc = b
			break
		}
	}

	if *explore {
		// With the default criteria list, explore du-opacity only; an
		// explicit -criteria must name explorable criteria.
		if !flagWasSet(fs, "criteria") {
			criteria = []spec.Criterion{spec.DUOpacity}
		}
		exploreJobs := 1
		if *parallel {
			exploreJobs = *jobs
		}
		// The explorer treats NodeLimit <= 0 as "use the default bound",
		// so honor the flag's documented "0 = unlimited" explicitly.
		exploreNodeLimit := *nodeLimit
		if exploreNodeLimit <= 0 {
			exploreNodeLimit = math.MaxInt
		}
		return runExplore(*engine, criteria, paths, stdinSrc, harness.ExploreConfig{
			MaxSchedules: *maxSchedules,
			MaxAttempts:  *maxAttempts,
			NodeLimit:    exploreNodeLimit,
			// Refutation needs one witness; only proving requires
			// exhausting the space, and stop-at-first never fires on a
			// violation-free plan.
			StopAtFirstViolation: true,
		}, exploreJobs, stdout)
	}
	hs := make([]*history.History, len(paths))
	for i, path := range paths {
		h, err := parseFile(path, stdinSrc)
		if err != nil {
			return 2, err
		}
		hs[i] = h
	}

	// Sequential mode is the farm at one worker: one code path to keep
	// verdicts and ordering identical.
	seqJobs := 1
	if *parallel {
		seqJobs = *jobs
	}
	opts := []spec.Option{spec.WithNodeLimit(*nodeLimit)}
	if *portfolio > 1 {
		opts = append(opts, spec.WithParallelism(*portfolio))
	}
	verdicts, err := checkfarm.CheckBatch(context.Background(), hs, criteria, seqJobs, opts...)
	if err != nil {
		return 2, err
	}

	violations := 0
	for i, h := range hs {
		if len(paths) > 1 {
			fmt.Fprintf(stdout, "== %s ==\n", paths[i])
		}
		fmt.Fprintf(stdout, "history: %d events, %d transactions, %d objects, unique-writes=%v\n",
			h.Len(), h.NumTxns(), len(h.Vars()), spec.UniqueWrites(h))
		if *explain {
			fmt.Fprintln(stdout, "reads:")
			for _, ri := range spec.AnalyzeReads(h) {
				fmt.Fprintf(stdout, "  %s\n", ri)
			}
		}
		for _, v := range verdicts[i] {
			fmt.Fprintln(stdout, v)
			if !v.OK {
				violations++
			}
			if *witness && v.OK && v.Serialization != nil {
				printWitness(stdout, v.Serialization)
			}
		}
	}
	if violations > 0 {
		return 1, nil
	}
	return 0, nil
}

// runExplore is the systematic mode: each path names a plan (one thread
// per line, '|' between transactions, "r<obj>"/"w<obj>" operations), and
// every schedule of the stepper's space for each plan is enumerated and
// certified online per criterion. A proven plan means no schedule of
// that space violates the criterion; a violation pins the causing schedule
// and event. The exit status is 1 when any plan is not proven — refuted
// or budget-exhausted (an undecided exploration is not an acceptance,
// matching the batch mode's treatment of undecided verdicts).
func runExplore(engine string, criteria []spec.Criterion, paths []string, stdinSrc []byte, cfg harness.ExploreConfig, jobs int, stdout io.Writer) (int, error) {
	// Validate every criterion before exploring anything: a non-explorable
	// one must not surface mid-run after reports (and a possible exit-1
	// refutation) were already printed for the earlier criteria.
	for _, c := range criteria {
		switch c {
		case spec.DUOpacity, spec.Opacity:
		default:
			return 2, fmt.Errorf("-explore requires prefix-closed monitorable criteria (du, opacity), got %v", c)
		}
	}
	plans := make([]stm.Plan, len(paths))
	for i, path := range paths {
		src := stdinSrc
		if path != "-" {
			b, err := os.ReadFile(path)
			if err != nil {
				return 2, err
			}
			src = b
		}
		p, err := stm.ParsePlan(string(src))
		if err != nil {
			return 2, fmt.Errorf("%s: %w", path, err)
		}
		plans[i] = p
	}
	unproven := 0
	for _, c := range criteria {
		ccfg := cfg
		ccfg.Criterion = c
		reports, err := checkfarm.ExplorePlans(context.Background(), engine, plans, ccfg, jobs)
		if err != nil {
			return 2, err
		}
		for i, r := range reports {
			if len(paths) > 1 || len(criteria) > 1 {
				fmt.Fprintf(stdout, "== %s, %s ==\n", paths[i], c)
			}
			fmt.Fprintf(stdout, "plan: %d threads, %d txns, %d ops, %d objects\n",
				len(r.Plan.Threads), r.Plan.NumTxns(), r.Plan.NumOps(), r.Plan.Objects)
			fmt.Fprintf(stdout, "%s %s: %s — %d schedules, %d cut (prefix closure), %d sleep-pruned, %d symmetry-pruned, %d steps\n",
				engine, c, r.Outcome, r.Schedules, r.PrefixCut, r.SleepPruned, r.SymmetryPruned, r.Steps)
			if r.Outcome != harness.ProvenDUOpaque {
				unproven++
			}
			if r.Violation != nil {
				fmt.Fprintf(stdout, "violation latched at event %d, schedule %v: %s\n",
					r.Violation.At, r.Violation.Schedule, r.Violation.Verdict.Reason)
				fmt.Fprint(stdout, histio.FormatString(r.Violation.History))
			}
		}
	}
	if unproven > 0 {
		return 1, nil
	}
	return 0, nil
}

// runFollow is the streaming mode: events arrive on stdin one line at a
// time and are certified the moment they land, one online monitor per
// criterion. After every response event a status column is printed per
// criterion (ok, VIOLATED or undecided); a violation is latched (prefix
// closure), so the exit status reflects whether any monitor ever
// rejected. Malformed lines are reported on stderr and skipped; the
// monitors are left untouched by them.
//
// retire > 0 enables windowed retirement: each monitor checkpoints its
// settled committed prefix and discards the retired transactions, so a
// long-running producer is followed in memory proportional to the live
// window rather than the whole stream.
//
// Bad input — a line histio.ParseEvents cannot parse, or an event every
// monitor would reject as ill-formed — follows one of three policies:
// the default notes each occurrence on stderr and skips it (the monitors
// are untouched either way); skipBad quarantines silently, counts, and
// reports a structured summary on stderr at the end plus a bad=N column
// on the summary line; strict fails fast with exit status 2.
func runFollow(criteria []spec.Criterion, nodeLimit, retire int, skipBad, strict bool, stdin io.Reader, stdout, stderr io.Writer) (int, error) {
	monitors := make([]*spec.Monitor, len(criteria))
	for i, c := range criteria {
		opts := []spec.Option{spec.WithNodeLimit(nodeLimit)}
		if retire > 0 {
			opts = append(opts, spec.WithRetirement(retire))
		}
		m, err := spec.NewMonitor(c, opts...)
		if err != nil {
			return 2, fmt.Errorf("-follow: %w", err)
		}
		monitors[i] = m
	}
	// The quarantine ledger of -skip-bad: everything is counted, the first
	// maxBadDetail offenders keep their line and reason for the report.
	const maxBadDetail = 10
	type badInput struct {
		line int
		text string
		err  error
	}
	badCount := 0
	var badDetail []badInput
	var strictErr error
	// noteBad applies the active policy; it reports whether to stop.
	noteBad := func(lineNo int, text string, err error) bool {
		switch {
		case strict:
			strictErr = fmt.Errorf("line %d: %w", lineNo, err)
			return true
		case skipBad:
			badCount++
			if len(badDetail) < maxBadDetail {
				badDetail = append(badDetail, badInput{line: lineNo, text: text, err: err})
			}
		default:
			fmt.Fprintf(stderr, "ducheck: line %d: %v (skipped)\n", lineNo, err)
		}
		return false
	}
	sc := bufio.NewScanner(stdin)
	lineNo := 0
	idx := 0
scan:
	for sc.Scan() {
		lineNo++
		evs, err := histio.ParseEvents(sc.Text())
		if err != nil {
			if noteBad(lineNo, sc.Text(), err) {
				break
			}
			continue
		}
		for _, e := range evs {
			// Well-formedness is criterion-independent, so either every
			// monitor accepts the event or the first rejects it with the
			// others untouched; rejection is side-effect-free either way.
			var verdicts []spec.Verdict
			rejected := false
			for _, m := range monitors {
				v, err := m.Append(e)
				if err != nil {
					rejected = true
					if noteBad(lineNo, sc.Text(), err) {
						break scan
					}
					break
				}
				verdicts = append(verdicts, v)
			}
			if rejected {
				break
			}
			fmt.Fprintf(stdout, "%4d  %-28v", idx, e)
			if e.Kind == history.Res {
				for i, v := range verdicts {
					status := "ok"
					switch {
					case v.Undecided:
						status = "undecided"
					case !v.OK:
						status = "VIOLATED"
					}
					fmt.Fprintf(stdout, "  %s:%s", criteria[i], status)
				}
			}
			fmt.Fprintln(stdout)
			idx++
		}
	}
	if strictErr != nil {
		return 2, strictErr
	}
	if err := sc.Err(); err != nil {
		return 2, err
	}
	if skipBad {
		// The structured quarantine report: total plus the first offenders
		// with their raw line and rejection reason.
		if badCount > 0 {
			fmt.Fprintf(stderr, "ducheck: quarantined %d bad input line(s):\n", badCount)
			for _, b := range badDetail {
				fmt.Fprintf(stderr, "  line %d: %v: %q\n", b.line, b.err, b.text)
			}
			if badCount > len(badDetail) {
				fmt.Fprintf(stderr, "  ... and %d more\n", badCount-len(badDetail))
			}
		}
		fmt.Fprintf(stdout, "follow: events=%d bad=%d\n", idx, badCount)
	}
	violations := 0
	for i, m := range monitors {
		v := m.Verdict()
		fmt.Fprintln(stdout, v)
		if retire > 0 {
			fmt.Fprintf(stdout, "%v: %d events, %d transactions retired, %d live\n",
				criteria[i], m.Len(), m.Retired(), m.LiveTxns())
		}
		if !v.OK && !v.Undecided {
			violations++
		}
	}
	if violations > 0 {
		return 1, nil
	}
	return 0, nil
}

// runFollowConnect is -follow -connect: instead of monitoring in
// process, raw stdin lines are forwarded to a certd stream endpoint and
// the server's responses — per-event verdict lines, the final verdicts,
// the DONE summary — are printed as they arrive. The server enforces the
// same criteria/retire/skip-bad/strict policies runFollow enforces
// locally (they travel in the STREAM hello), and the exit status maps
// the same way: 1 when the final verdicts carry violations, 2 on
// protocol or strict failures.
func runFollowConnect(addr string, criteria []spec.Criterion, nodeLimit, retire int, skipBad, strict bool, stdin io.Reader, stdout io.Writer) (int, error) {
	names := make([]string, len(criteria))
	for i, c := range criteria {
		name, ok := spec.CriterionAlias(c)
		if !ok {
			return 2, fmt.Errorf("-connect: criterion %v has no wire name", c)
		}
		names[i] = name
	}
	hello := "STREAM " + strings.Join(names, ",")
	if retire > 0 {
		hello += fmt.Sprintf(" retire=%d", retire)
	}
	if nodeLimit > 0 {
		hello += fmt.Sprintf(" nodelimit=%d", nodeLimit)
	}
	if skipBad {
		hello += " skipbad"
	}
	if strict {
		hello += " strict"
	}

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return 2, fmt.Errorf("-connect: %w", err)
	}
	defer conn.Close()
	w := bufio.NewWriter(conn)
	fmt.Fprintln(w, hello)
	if err := w.Flush(); err != nil {
		return 2, fmt.Errorf("-connect: %w", err)
	}
	r := bufio.NewScanner(conn)
	if !r.Scan() {
		return 2, fmt.Errorf("-connect: no hello response: %v", r.Err())
	}
	if resp := r.Text(); !strings.HasPrefix(resp, "OK ") {
		return 2, fmt.Errorf("-connect: %s", strings.TrimPrefix(resp, "ERR "))
	}

	// Forward stdin verbatim on its own goroutine (the server echoes
	// while we send), then END + half-close so the server finalizes.
	go func() {
		sc := bufio.NewScanner(stdin)
		for sc.Scan() {
			fmt.Fprintln(w, sc.Text())
		}
		fmt.Fprintln(w, "END")
		_ = w.Flush()
		if hc, ok := conn.(interface{ CloseWrite() error }); ok {
			_ = hc.CloseWrite()
		}
	}()

	exit := 0
	sawDone := false
	for r.Scan() {
		line := r.Text()
		fmt.Fprintln(stdout, line)
		switch {
		case strings.HasPrefix(line, "DONE "):
			sawDone = true
			var ev, bad, dropped, viol int
			if _, err := fmt.Sscanf(line, "DONE events=%d bad=%d dropped=%d violations=%d", &ev, &bad, &dropped, &viol); err == nil && viol > 0 {
				exit = 1
			}
		case strings.HasPrefix(line, "ERR "):
			return 2, fmt.Errorf("-connect: %s", strings.TrimPrefix(line, "ERR "))
		}
	}
	if err := r.Err(); err != nil {
		return 2, fmt.Errorf("-connect: %w", err)
	}
	if !sawDone {
		return 2, fmt.Errorf("-connect: stream ended without DONE")
	}
	return exit, nil
}

// flagWasSet reports whether the named flag was given explicitly on the
// command line (as opposed to holding its default).
func flagWasSet(fs *flag.FlagSet, name string) bool {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

func parseFile(path string, stdinSrc []byte) (*history.History, error) {
	if path == "-" {
		return histio.Parse(bytes.NewReader(stdinSrc))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return histio.Parse(f)
}

func printWitness(w io.Writer, s *history.Seq) {
	fmt.Fprintf(w, "  witness: %s\n", s)
}
