// Command ducheck checks a transactional history against the correctness
// criteria of the paper. The history is read from a file (or stdin with
// "-") in the text format of internal/histio.
//
// Usage:
//
//	ducheck [-criteria du,opacity,...] [-witness] file
//
// Exit status: 0 if every requested criterion accepts, 1 if any rejects,
// 2 on input errors.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"duopacity/internal/histio"
	"duopacity/internal/history"
	"duopacity/internal/spec"
)

var criteriaByFlag = map[string]spec.Criterion{
	"du":         spec.DUOpacity,
	"opacity":    spec.Opacity,
	"finalstate": spec.FinalStateOpacity,
	"tms2":       spec.TMS2,
	"rco":        spec.RCO,
	"strictser":  spec.StrictSerializability,
	"ser":        spec.Serializability,
}

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ducheck:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, stdin io.Reader, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("ducheck", flag.ContinueOnError)
	criteriaFlag := fs.String("criteria", "du,opacity,finalstate,tms2,rco,strictser,ser",
		"comma-separated criteria (du, opacity, finalstate, tms2, rco, strictser, ser)")
	witness := fs.Bool("witness", false, "print witness serializations")
	explain := fs.Bool("explain", false, "print the per-read deferred-update analysis")
	nodeLimit := fs.Int("node-limit", 0, "bound the search (0 = unlimited)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if fs.NArg() != 1 {
		return 2, fmt.Errorf("usage: ducheck [flags] <file|->")
	}

	var criteria []spec.Criterion
	for _, name := range strings.Split(*criteriaFlag, ",") {
		c, ok := criteriaByFlag[strings.TrimSpace(name)]
		if !ok {
			return 2, fmt.Errorf("unknown criterion %q", name)
		}
		criteria = append(criteria, c)
	}

	var src io.Reader
	if fs.Arg(0) == "-" {
		src = stdin
	} else {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return 2, err
		}
		defer f.Close()
		src = f
	}
	h, err := histio.Parse(src)
	if err != nil {
		return 2, err
	}
	fmt.Fprintf(stdout, "history: %d events, %d transactions, %d objects, unique-writes=%v\n",
		h.Len(), h.NumTxns(), len(h.Vars()), spec.UniqueWrites(h))
	if *explain {
		fmt.Fprintln(stdout, "reads:")
		for _, ri := range spec.AnalyzeReads(h) {
			fmt.Fprintf(stdout, "  %s\n", ri)
		}
	}

	violations := 0
	for _, c := range criteria {
		v := spec.Check(h, c, spec.WithNodeLimit(*nodeLimit))
		fmt.Fprintln(stdout, v)
		if !v.OK {
			violations++
		}
		if *witness && v.OK && v.Serialization != nil {
			printWitness(stdout, v.Serialization)
		}
	}
	if violations > 0 {
		return 1, nil
	}
	return 0, nil
}

func printWitness(w io.Writer, s *history.Seq) {
	fmt.Fprintf(w, "  witness: %s\n", s)
}
