// Command ducheck checks transactional histories against the correctness
// criteria of the paper. Histories are read from files (or stdin with
// "-") in the text format of internal/histio.
//
// Usage:
//
//	ducheck [-criteria du,opacity,...] [-witness] file...
//	ducheck -parallel [-jobs N] [-portfolio N] file...
//	ducheck -follow [-criteria du,opacity,finalstate] [-]
//
// With several files (or -parallel), every file is checked against every
// requested criterion; -parallel shards the batch across -jobs workers
// (default GOMAXPROCS) via the certification farm, with results printed
// in input order regardless of completion order. -portfolio parallelizes
// inside a single check instead, fanning the top-level branches of the
// serialization search across workers — the right knob when one large
// history dominates.
//
// -follow monitors a history as it is produced: events are read from
// stdin line by line (same text format) and fed to an online monitor per
// requested criterion, printing a verdict column after every response
// event — so a violation is reported at the exact event that caused it,
// while the producer is still running. Only the monitorable criteria
// (du, opacity, finalstate) are allowed with -follow. Malformed lines
// are reported on stderr and skipped; the monitors are unaffected.
//
// Exit status: 0 if every requested criterion accepts every history, 1 if
// any rejects, 2 on input errors.
package main

import (
	"bufio"
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"duopacity/internal/checkfarm"
	"duopacity/internal/histio"
	"duopacity/internal/history"
	"duopacity/internal/spec"
)

var criteriaByFlag = map[string]spec.Criterion{
	"du":         spec.DUOpacity,
	"opacity":    spec.Opacity,
	"finalstate": spec.FinalStateOpacity,
	"tms2":       spec.TMS2,
	"rco":        spec.RCO,
	"strictser":  spec.StrictSerializability,
	"ser":        spec.Serializability,
}

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ducheck:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, stdin io.Reader, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("ducheck", flag.ContinueOnError)
	criteriaFlag := fs.String("criteria", "du,opacity,finalstate,tms2,rco,strictser,ser",
		"comma-separated criteria (du, opacity, finalstate, tms2, rco, strictser, ser)")
	witness := fs.Bool("witness", false, "print witness serializations")
	explain := fs.Bool("explain", false, "print the per-read deferred-update analysis")
	nodeLimit := fs.Int("node-limit", 0, "bound the search (0 = unlimited)")
	parallel := fs.Bool("parallel", false, "check the files concurrently via the certification farm")
	jobs := fs.Int("jobs", 0, "worker count for -parallel (0 = GOMAXPROCS)")
	portfolio := fs.Int("portfolio", 0,
		"fan each check's top-level search branches across this many workers (spec.WithParallelism; useful for one hard history, combine with -parallel for many)")
	follow := fs.Bool("follow", false,
		"monitor events from stdin as they arrive (streaming ingestion; criteria limited to du, opacity, finalstate)")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if !*follow && fs.NArg() < 1 {
		return 2, fmt.Errorf("usage: ducheck [flags] <file|->...")
	}

	var criteria []spec.Criterion
	for _, name := range strings.Split(*criteriaFlag, ",") {
		c, ok := criteriaByFlag[strings.TrimSpace(name)]
		if !ok {
			return 2, fmt.Errorf("unknown criterion %q", name)
		}
		criteria = append(criteria, c)
	}

	if *follow {
		if fs.NArg() > 1 || (fs.NArg() == 1 && fs.Arg(0) != "-") {
			return 2, fmt.Errorf("-follow reads events from stdin; no file arguments allowed")
		}
		// With the default criteria list, follow only the monitorable
		// ones; an explicit -criteria must name monitorable criteria.
		criteriaSet := false
		fs.Visit(func(f *flag.Flag) {
			if f.Name == "criteria" {
				criteriaSet = true
			}
		})
		if !criteriaSet {
			criteria = []spec.Criterion{spec.DUOpacity, spec.Opacity, spec.FinalStateOpacity}
		}
		return runFollow(criteria, *nodeLimit, stdin, stdout)
	}

	paths := fs.Args()
	// Buffer stdin once so "-" can appear several times in a batch
	// without the later occurrences silently parsing a drained reader.
	var stdinSrc []byte
	for _, path := range paths {
		if path == "-" {
			b, err := io.ReadAll(stdin)
			if err != nil {
				return 2, err
			}
			stdinSrc = b
			break
		}
	}
	hs := make([]*history.History, len(paths))
	for i, path := range paths {
		h, err := parseFile(path, stdinSrc)
		if err != nil {
			return 2, err
		}
		hs[i] = h
	}

	// Sequential mode is the farm at one worker: one code path to keep
	// verdicts and ordering identical.
	seqJobs := 1
	if *parallel {
		seqJobs = *jobs
	}
	opts := []spec.Option{spec.WithNodeLimit(*nodeLimit)}
	if *portfolio > 1 {
		opts = append(opts, spec.WithParallelism(*portfolio))
	}
	verdicts, err := checkfarm.CheckBatch(context.Background(), hs, criteria, seqJobs, opts...)
	if err != nil {
		return 2, err
	}

	violations := 0
	for i, h := range hs {
		if len(paths) > 1 {
			fmt.Fprintf(stdout, "== %s ==\n", paths[i])
		}
		fmt.Fprintf(stdout, "history: %d events, %d transactions, %d objects, unique-writes=%v\n",
			h.Len(), h.NumTxns(), len(h.Vars()), spec.UniqueWrites(h))
		if *explain {
			fmt.Fprintln(stdout, "reads:")
			for _, ri := range spec.AnalyzeReads(h) {
				fmt.Fprintf(stdout, "  %s\n", ri)
			}
		}
		for _, v := range verdicts[i] {
			fmt.Fprintln(stdout, v)
			if !v.OK {
				violations++
			}
			if *witness && v.OK && v.Serialization != nil {
				printWitness(stdout, v.Serialization)
			}
		}
	}
	if violations > 0 {
		return 1, nil
	}
	return 0, nil
}

// runFollow is the streaming mode: events arrive on stdin one line at a
// time and are certified the moment they land, one online monitor per
// criterion. After every response event a status column is printed per
// criterion (ok, VIOLATED or undecided); a violation is latched (prefix
// closure), so the exit status reflects whether any monitor ever
// rejected. Malformed lines are reported on stderr and skipped; the
// monitors are left untouched by them.
func runFollow(criteria []spec.Criterion, nodeLimit int, stdin io.Reader, stdout io.Writer) (int, error) {
	monitors := make([]*spec.Monitor, len(criteria))
	for i, c := range criteria {
		m, err := spec.NewMonitor(c, spec.WithNodeLimit(nodeLimit))
		if err != nil {
			return 2, fmt.Errorf("-follow: %w", err)
		}
		monitors[i] = m
	}
	sc := bufio.NewScanner(stdin)
	lineNo := 0
	idx := 0
	for sc.Scan() {
		lineNo++
		evs, err := histio.ParseEvents(sc.Text())
		if err != nil {
			fmt.Fprintf(os.Stderr, "ducheck: line %d: %v (skipped)\n", lineNo, err)
			continue
		}
		for _, e := range evs {
			// Well-formedness is criterion-independent, so either every
			// monitor accepts the event or the first rejects it with the
			// others untouched; rejection is side-effect-free either way.
			var verdicts []spec.Verdict
			rejected := false
			for _, m := range monitors {
				v, err := m.Append(e)
				if err != nil {
					rejected = true
					fmt.Fprintf(os.Stderr, "ducheck: line %d: %v (skipped)\n", lineNo, err)
					break
				}
				verdicts = append(verdicts, v)
			}
			if rejected {
				break
			}
			fmt.Fprintf(stdout, "%4d  %-28v", idx, e)
			if e.Kind == history.Res {
				for i, v := range verdicts {
					status := "ok"
					switch {
					case v.Undecided:
						status = "undecided"
					case !v.OK:
						status = "VIOLATED"
					}
					fmt.Fprintf(stdout, "  %s:%s", criteria[i], status)
				}
			}
			fmt.Fprintln(stdout)
			idx++
		}
	}
	if err := sc.Err(); err != nil {
		return 2, err
	}
	violations := 0
	for _, m := range monitors {
		v := m.Verdict()
		fmt.Fprintln(stdout, v)
		if !v.OK && !v.Undecided {
			violations++
		}
	}
	if violations > 0 {
		return 1, nil
	}
	return 0, nil
}

func parseFile(path string, stdinSrc []byte) (*history.History, error) {
	if path == "-" {
		return histio.Parse(bytes.NewReader(stdinSrc))
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return histio.Parse(f)
}

func printWitness(w io.Writer, s *history.Seq) {
	fmt.Fprintf(w, "  witness: %s\n", s)
}
