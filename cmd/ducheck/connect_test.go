package main

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"testing"

	"duopacity/internal/certd"
)

// startCertdStreams spins an in-process certd stream listener for the
// -connect tests.
func startCertdStreams(t *testing.T) string {
	t.Helper()
	s := certd.NewServer(certd.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = s.ServeStreams(ln) }()
	t.Cleanup(func() { _ = ln.Close() })
	return ln.Addr().String()
}

// TestFollowConnectClean: a clean stream over -connect prints the
// server's per-event verdict lines and final verdicts and exits 0 —
// the networked equivalent of the in-process -follow run.
func TestFollowConnectClean(t *testing.T) {
	addr := startCertdStreams(t)
	stdin := strings.NewReader("write 1 X 1\ncommit 1\nread 2 X 1\ncommit 2\n")
	var out, errOut bytes.Buffer
	code, err := runWith([]string{"-follow", "-connect", addr, "-criteria", "du,opacity"}, stdin, &out, &errOut)
	if err != nil || code != 0 {
		t.Fatalf("exit %d, err %v\nout:\n%s", code, err, out.String())
	}
	text := out.String()
	for _, want := range []string{"du-opacity:ok", "du-opacity: OK", "opacity: OK", "DONE events=8 bad=0 dropped=0 violations=0"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

// TestFollowConnectViolation: a du-opacity violation streamed to the
// server maps to exit status 1, exactly as the in-process follow does.
func TestFollowConnectViolation(t *testing.T) {
	addr := startCertdStreams(t)
	stdin := strings.NewReader("inv write 1 X 5\nres write 1 X 5 ok\nread 2 X 5\ncommit 2\ncommit 1\n")
	var out, errOut bytes.Buffer
	code, err := runWith([]string{"-follow", "-connect", addr, "-criteria", "du"}, stdin, &out, &errOut)
	if err != nil || code != 1 {
		t.Fatalf("exit %d, err %v\nout:\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "du-opacity: violated") {
		t.Fatalf("violation verdict missing:\n%s", out.String())
	}
}

// TestFollowConnectStrict: -strict travels in the hello; the server
// kills the stream at the first bad line and the CLI exits 2.
func TestFollowConnectStrict(t *testing.T) {
	addr := startCertdStreams(t)
	stdin := strings.NewReader("write 1 X 1\nnot an event\ncommit 1\n")
	var out, errOut bytes.Buffer
	code, err := runWith([]string{"-follow", "-connect", addr, "-strict"}, stdin, &out, &errOut)
	if code != 2 || err == nil || !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("strict over connect: exit %d, err %v", code, err)
	}
}

// TestFollowConnectRetireSkipBad: retirement and skip-bad both apply
// server-side and the summaries stream back.
func TestFollowConnectRetireSkipBad(t *testing.T) {
	addr := startCertdStreams(t)
	var in strings.Builder
	for i := 1; i <= 20; i++ {
		fmt.Fprintf(&in, "write %d X %d\ncommit %d\n", i, i, i)
	}
	in.WriteString("garbage line\n")
	var out, errOut bytes.Buffer
	code, err := runWith([]string{"-follow", "-connect", addr, "-criteria", "du", "-retire", "4", "-skip-bad"}, strings.NewReader(in.String()), &out, &errOut)
	if err != nil || code != 0 {
		t.Fatalf("exit %d, err %v\nout:\n%s", code, err, out.String())
	}
	text := out.String()
	for _, want := range []string{"transactions retired", "follow: events=80 bad=1", "QUARANTINED 1 bad input line(s):"} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
}

// TestConnectRequiresFollow: -connect outside -follow is an input error.
func TestConnectRequiresFollow(t *testing.T) {
	var out, errOut bytes.Buffer
	code, err := runWith([]string{"-connect", "localhost:1", "-"}, strings.NewReader(""), &out, &errOut)
	if code != 2 || err == nil {
		t.Fatalf("exit %d, err %v", code, err)
	}
}
