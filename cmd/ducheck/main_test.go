package main

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestRunAcceptsGoodHistory(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "good.hist")
	src := "write 1 X 1\ncommit 1\nread 2 X 1\ncommit 2\n"
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run([]string{"-witness", file}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out.String())
	}
	for _, want := range []string{"du-opacity: OK", "witness", "unique-writes=true"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunRejectsViolation(t *testing.T) {
	// Figure 4 shape in shorthand/event mix.
	src := `
inv write 1 X 1
res write 1 X 1 ok
inv tryc 1
read 2 X 1
write 3 X 1
commit 3
res tryc 1 A
`
	var out strings.Builder
	code, err := run([]string{"-criteria", "du,opacity", "-explain", "-"}, strings.NewReader(src), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "violated") {
		t.Errorf("output missing violation:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "du-eligible {}") {
		t.Errorf("explain output missing read analysis:\n%s", out.String())
	}
	// Opacity accepts Figure 4.
	if !strings.Contains(out.String(), "opacity: OK") {
		t.Errorf("opacity should accept Figure 4:\n%s", out.String())
	}
}

func TestRunParallelBatch(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.hist")
	if err := os.WriteFile(good, []byte("write 1 X 1\ncommit 1\nread 2 X 1\ncommit 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.hist")
	if err := os.WriteFile(bad, []byte("read 1 X 99\ncommit 1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	code, err := run([]string{"-parallel", "-jobs", "4", "-criteria", "du", good, bad, good}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (one file violates)\n%s", code, out.String())
	}
	// Results come back in input order with per-file headers.
	s := out.String()
	iGood := strings.Index(s, "== "+good+" ==")
	iBad := strings.Index(s, "== "+bad+" ==")
	if iGood < 0 || iBad < 0 || iBad < iGood {
		t.Errorf("batch output not in input order:\n%s", s)
	}
	if strings.Count(s, "du-opacity: OK") != 2 || strings.Count(s, "violated") != 1 {
		t.Errorf("batch verdicts wrong:\n%s", s)
	}
	// Sequential multi-file mode agrees.
	var seq strings.Builder
	seqCode, err := run([]string{"-criteria", "du", good, bad, good}, nil, &seq)
	if err != nil {
		t.Fatal(err)
	}
	if seqCode != code || seq.String() != s {
		t.Errorf("parallel and sequential batch output diverge:\n%s\nvs\n%s", s, seq.String())
	}
}

func TestFollowAcceptsStream(t *testing.T) {
	src := "write 1 X 1\ncommit 1\nread 2 X 1\ncommit 2\n"
	var out strings.Builder
	code, err := run([]string{"-follow"}, strings.NewReader(src), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out.String())
	}
	for _, want := range []string{"du-opacity:ok", "du-opacity: OK", "opacity: OK"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestFollowLatchesViolationAtTheEvent(t *testing.T) {
	// The Figure-4 shape: the dirty read is reported the moment its
	// response arrives, and the verdict stays latched.
	src := "write 1 X 1\nread 2 X 1\ncommit 2\ncommit 1\n"
	var out strings.Builder
	code, err := run([]string{"-follow", "-criteria", "du", "-"}, strings.NewReader(src), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out.String())
	}
	lines := strings.Split(out.String(), "\n")
	first := -1
	for i, l := range lines {
		if strings.Contains(l, "VIOLATED") {
			first = i
			break
		}
	}
	if first < 0 || !strings.Contains(lines[first], "read_2(X)->1") {
		t.Fatalf("violation not reported at the dirty read's response:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "du-opacity: violated") {
		t.Fatalf("missing final verdict:\n%s", out.String())
	}
}

func TestFollowSkipsMalformedLines(t *testing.T) {
	// A malformed line and an ill-formed event are skipped; the stream
	// continues and the verdict reflects only the valid events.
	src := "write 1 X 1\nnonsense\nres tryc 2 C\ncommit 1\nread 2 X 1\ncommit 2\n"
	var out strings.Builder
	code, err := run([]string{"-follow", "-criteria", "du"}, strings.NewReader(src), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "du-opacity: OK") {
		t.Fatalf("missing final verdict:\n%s", out.String())
	}
}

func TestFollowRetireBoundsLiveWindow(t *testing.T) {
	// A long sequential stream with -retire: the monitor checkpoints the
	// settled committed prefix as it goes, so the final summary reports
	// most transactions retired and a small live window — with every
	// per-event verdict still decided (no "undecided" anywhere).
	var src strings.Builder
	const n = 200
	for k := 1; k <= n; k++ {
		fmt.Fprintf(&src, "write %d X %d\ncommit %d\n", k, k%4, k)
	}
	var out strings.Builder
	code, err := run([]string{"-follow", "-criteria", "du", "-retire", "8"}, strings.NewReader(src.String()), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out.String())
	}
	s := out.String()
	if strings.Contains(s, "undecided") {
		t.Fatalf("retirement left a prefix undecided:\n%s", s)
	}
	if !strings.Contains(s, "du-opacity: OK") {
		t.Fatalf("missing final verdict:\n%s", s)
	}
	m := regexp.MustCompile(`(\d+) events, (\d+) transactions retired, (\d+) live`).FindStringSubmatch(s)
	if m == nil {
		t.Fatalf("missing retirement summary line:\n%s", s)
	}
	events, _ := strconv.Atoi(m[1])
	retired, _ := strconv.Atoi(m[2])
	live, _ := strconv.Atoi(m[3])
	if events != 4*n {
		t.Errorf("events = %d, want %d", events, 4*n)
	}
	if retired < n-17 || live > 17 {
		t.Errorf("retired=%d live=%d: window not bounded over %d transactions", retired, live, n)
	}
}

func TestRetireRequiresFollow(t *testing.T) {
	if code, err := run([]string{"-retire", "8", "somefile"}, nil, &strings.Builder{}); err == nil || code != 2 {
		t.Fatalf("-retire without -follow: code=%d err=%v, want input error", code, err)
	}
}

func TestFollowRejectsUnmonitorableCriteria(t *testing.T) {
	// The serializability baselines are batch-only: violations can appear
	// and disappear as completions resolve, so they have no online monitor.
	for _, crit := range []string{"strictser", "ser"} {
		code, err := run([]string{"-follow", "-criteria", crit}, strings.NewReader(""), &strings.Builder{})
		if err == nil || code != 2 {
			t.Fatalf("%s with -follow: code=%d err=%v, want input error", crit, code, err)
		}
		// The rejection names the monitorable criteria from the shared table.
		for _, want := range []string{"tms2", "rco", "finalstate"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s rejection %q does not list monitorable criterion %q", crit, err.Error(), want)
			}
		}
	}
	if code, err := run([]string{"-follow", "somefile"}, strings.NewReader(""), &strings.Builder{}); err == nil || code != 2 {
		t.Fatalf("file argument with -follow: code=%d err=%v, want input error", code, err)
	}
}

func TestFollowConflictOrderCriteria(t *testing.T) {
	// Figure 6: du-opaque, but the committed writer T1 must precede reader
	// T2 under TMS2 (T2's read set is final at its tryC invocation), and
	// T2 read the pre-state of X. The TMS2 monitor latches the violation
	// at T2's commit response — the first response after the edge arrives
	// — while the RCO monitor accepts every prefix.
	fig6 := "read 1 X 0\nwrite 1 X 1\nread 2 X 0\ncommit 1\nwrite 2 Y 1\ncommit 2\n"
	var out strings.Builder
	code, err := run([]string{"-follow", "-criteria", "tms2,rco"}, strings.NewReader(fig6), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out.String())
	}
	s := out.String()
	lines := strings.Split(s, "\n")
	first := -1
	for i, l := range lines {
		if strings.Contains(l, "TMS2:VIOLATED") {
			first = i
			break
		}
	}
	if first < 0 || !strings.Contains(lines[first], "tryC_2") {
		t.Fatalf("TMS2 violation not latched at T2's commit response:\n%s", s)
	}
	if !strings.Contains(lines[first], "rco-opacity:ok") {
		t.Errorf("RCO column missing or rejecting on the violating line:\n%s", s)
	}
	if !strings.Contains(s, "TMS2: violated") || !strings.Contains(s, "rco-opacity: OK") {
		t.Errorf("final verdicts wrong (want TMS2 violated, rco OK):\n%s", s)
	}

	// The mirror: Figure 5 is rejected by RCO and accepted by TMS2 —
	// reader T2 stays live, so TMS2 never gains an edge into it, while
	// RCO orders T2 before the overtaking committed writer T3 and T2's
	// later read of T3's write closes the cycle.
	fig5 := "write 1 X 1\ncommit 1\nread 2 X 1\nwrite 3 X 1\nwrite 3 Y 1\ncommit 3\nread 2 Y 1\n"
	out.Reset()
	code, err = run([]string{"-follow", "-criteria", "tms2,rco"}, strings.NewReader(fig5), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("figure-5 exit code = %d, want 1\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "rco-opacity: violated") || !strings.Contains(out.String(), "TMS2: OK") {
		t.Errorf("figure-5 final verdicts wrong (want rco violated, TMS2 OK):\n%s", out.String())
	}
}

func TestFollowConflictOrderRetirement(t *testing.T) {
	// A long stream of committed writer/reader pairs under the TMS2 and
	// RCO monitors with a retirement window: every prefix stays decided,
	// the verdicts stay OK, and the summary shows the window bounded.
	var src strings.Builder
	const n = 120
	for k := 1; k <= n; k++ {
		fmt.Fprintf(&src, "write %d X %d\ncommit %d\n", k, k%4, k)
	}
	var out strings.Builder
	code, err := run([]string{"-follow", "-criteria", "tms2,rco", "-retire", "8"}, strings.NewReader(src.String()), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out.String())
	}
	s := out.String()
	if strings.Contains(s, "undecided") || strings.Contains(s, "VIOLATED") {
		t.Fatalf("conflict-order monitors degraded under retirement:\n%s", s)
	}
	re := regexp.MustCompile(`(\d+) events, (\d+) transactions retired, (\d+) live`)
	ms := re.FindAllStringSubmatch(s, -1)
	if len(ms) != 2 {
		t.Fatalf("want a retirement summary per criterion, got %d:\n%s", len(ms), s)
	}
	for _, m := range ms {
		retired, _ := strconv.Atoi(m[2])
		live, _ := strconv.Atoi(m[3])
		if retired < n-17 || live > 17 {
			t.Errorf("retired=%d live=%d: window not bounded over %d transactions", retired, live, n)
		}
	}
}

func TestRunInputErrors(t *testing.T) {
	if code, err := run([]string{"-criteria", "nope", "-"}, strings.NewReader(""), &strings.Builder{}); err == nil || code != 2 {
		t.Error("unknown criterion should be an input error")
	}
	if code, err := run([]string{}, nil, &strings.Builder{}); err == nil || code != 2 {
		t.Error("missing file argument should be an input error")
	}
	if code, err := run([]string{"-"}, strings.NewReader("garbage line\n"), &strings.Builder{}); err == nil || code != 2 {
		t.Error("malformed history should be an input error")
	}
	if code, err := run([]string{"/does/not/exist.hist"}, nil, &strings.Builder{}); err == nil || code != 2 {
		t.Error("missing file should be an input error")
	}
}

func TestExplorePlanFile(t *testing.T) {
	dir := t.TempDir()
	plan := filepath.Join(dir, "litmus.plan")
	if err := os.WriteFile(plan, []byte("w0\nr0 r0\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The in-place engine is refuted: exit 1, violation pinned at its
	// causing schedule and event.
	var out strings.Builder
	code, err := run([]string{"-explore", "-engine", "ple", plan}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\n%s", code, out.String())
	}
	for _, want := range []string{"violation", "schedule [0 1]", "latched at event 3"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("explore output missing %q:\n%s", want, out.String())
		}
	}
	// The deferred-update engine is proven: exit 0, full enumeration.
	out.Reset()
	code, err = run([]string{"-explore", "-engine", "tl2", plan}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "proven") {
		t.Errorf("explore output missing proof:\n%s", out.String())
	}
}

func TestExplorePlanStdin(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-explore", "-engine", "norec", "-criteria", "du,opacity", "-"},
		strings.NewReader("w0 | r0\nr0 w0\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s", code, out.String())
	}
	for _, want := range []string{"du-opacity", "opacity: proven"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("explore output missing %q:\n%s", want, out.String())
		}
	}
}

func TestExploreInputErrors(t *testing.T) {
	if code, _ := run([]string{"-explore", "-"}, strings.NewReader("not a plan\n"), &strings.Builder{}); code != 2 {
		t.Error("malformed plan should be an input error")
	}
	if code, _ := run([]string{"-explore", "-engine", "bogus", "-"}, strings.NewReader("r0\n"), &strings.Builder{}); code != 2 {
		t.Error("unknown engine should be an input error")
	}
	if code, _ := run([]string{"-explore", "-criteria", "tms2", "-"}, strings.NewReader("r0\n"), &strings.Builder{}); code != 2 {
		t.Error("non-explorable criterion should be an input error")
	}
	// Mixed valid/invalid criteria fail upfront: no partial reports may be
	// printed (and no exit-1 refutation masked) before the error surfaces.
	var out strings.Builder
	if code, _ := run([]string{"-explore", "-engine", "ple", "-criteria", "du,tms2", "-"},
		strings.NewReader("w0\nr0 r0\n"), &out); code != 2 {
		t.Error("mixed explorable/non-explorable criteria should be an input error")
	}
	if out.Len() != 0 {
		t.Errorf("partial reports printed before the criteria error:\n%s", out.String())
	}
}

// TestExploreBudgetExhaustedExit: an undecided exploration is not an
// acceptance — budget-exhausted must exit 1, like undecided verdicts in
// batch mode, so `ducheck -explore && deploy` cannot treat an unproven
// plan as proven.
func TestExploreBudgetExhaustedExit(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-explore", "-engine", "tl2", "-max-schedules", "3", "-"},
		strings.NewReader("w0 r1\nr0 w1\nw0 w1\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "budget-exhausted") {
		t.Fatalf("expected a budget-exhausted outcome:\n%s", out.String())
	}
	if code != 1 {
		t.Errorf("budget-exhausted exploration exited %d, want 1", code)
	}
}

func TestFollowSkipBadQuarantines(t *testing.T) {
	// Two bad lines among good events: a parse failure and a monitor
	// rejection (response without a matching invocation).
	src := "write 1 X 1\nnot an event\ncommit 1\nres read 9 X 1\nread 2 X 1\ncommit 2\n"
	var out, errOut strings.Builder
	code, err := runWith([]string{"-follow", "-skip-bad", "-criteria", "du"}, strings.NewReader(src), &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\n%s\n%s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "follow: events=8 bad=2") {
		t.Errorf("summary line missing bad accounting:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "du-opacity: OK") {
		t.Errorf("good events were not certified:\n%s", out.String())
	}
	es := errOut.String()
	if !strings.Contains(es, "quarantined 2 bad input line(s)") {
		t.Errorf("structured report missing:\n%s", es)
	}
	for _, want := range []string{"line 2:", `"not an event"`, "line 4:", `"res read 9 X 1"`} {
		if !strings.Contains(es, want) {
			t.Errorf("structured report missing %q:\n%s", want, es)
		}
	}
	// Quarantine is quiet per line: no "(skipped)" notes.
	if strings.Contains(es, "(skipped)") {
		t.Errorf("per-line skip notes printed under -skip-bad:\n%s", es)
	}
}

func TestFollowSkipBadCleanStream(t *testing.T) {
	src := "write 1 X 1\ncommit 1\n"
	var out, errOut strings.Builder
	code, err := runWith([]string{"-follow", "-skip-bad", "-criteria", "du"}, strings.NewReader(src), &out, &errOut)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v", code, err)
	}
	if !strings.Contains(out.String(), "follow: events=4 bad=0") {
		t.Errorf("summary line missing on clean stream:\n%s", out.String())
	}
	if errOut.Len() != 0 {
		t.Errorf("clean stream produced stderr output:\n%s", errOut.String())
	}
}

func TestFollowStrictFailsFast(t *testing.T) {
	src := "write 1 X 1\nnot an event\ncommit 1\n"
	var out, errOut strings.Builder
	code, err := runWith([]string{"-follow", "-strict", "-criteria", "du"}, strings.NewReader(src), &out, &errOut)
	if err == nil {
		t.Fatalf("strict mode did not fail on a bad line (code=%d)\n%s", code, out.String())
	}
	if code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Errorf("error %q does not name the offending line", err.Error())
	}
	// Fail-fast: the commit after the bad line was never processed.
	if strings.Contains(out.String(), "tryc") {
		t.Errorf("events after the bad line were processed:\n%s", out.String())
	}
}

func TestFollowStrictAcceptsCleanStream(t *testing.T) {
	src := "write 1 X 1\ncommit 1\nread 2 X 1\ncommit 2\n"
	var out, errOut strings.Builder
	code, err := runWith([]string{"-follow", "-strict", "-criteria", "du"}, strings.NewReader(src), &out, &errOut)
	if err != nil || code != 0 {
		t.Fatalf("code=%d err=%v\n%s", code, err, errOut.String())
	}
	if !strings.Contains(out.String(), "du-opacity: OK") {
		t.Errorf("clean stream not accepted:\n%s", out.String())
	}
	// The bad=N summary line belongs to -skip-bad only.
	if strings.Contains(out.String(), "follow: events=") {
		t.Errorf("strict mode printed the skip-bad summary:\n%s", out.String())
	}
}

func TestSkipBadStrictFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-follow", "-skip-bad", "-strict"}, // mutually exclusive
		{"-skip-bad", "somefile"},           // follow-only
		{"-strict", "somefile"},             // follow-only
	}
	for _, args := range cases {
		var out strings.Builder
		code, err := run(args, strings.NewReader(""), &out)
		if err == nil || code != 2 {
			t.Errorf("args %v: code=%d err=%v, want usage error", args, code, err)
		}
	}
}
