// Command stmbench measures the shipped STM engines under a configurable
// workload (throughput, abort rate) and optionally certifies recorded
// episodes against the correctness criteria — the repository's
// engine-comparison experiment (§5 of the paper: deferred-update engines
// are du-opaque; the pessimistic in-place engine is not).
//
// Usage:
//
//	stmbench [-engines tl2,norec,...] [-objects 8] [-goroutines 4]
//	         [-txns 2000] [-ops 4] [-read-frac 0.5] [-seed 1]
//	         [-certify] [-episodes 20]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"duopacity/internal/harness"
	"duopacity/internal/spec"
	"duopacity/internal/stm/engines"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("stmbench", flag.ContinueOnError)
	engineList := fs.String("engines", strings.Join(engines.Names(), ","), "comma-separated engines")
	objects := fs.Int("objects", 8, "number of t-objects")
	goroutines := fs.Int("goroutines", 4, "concurrent workers")
	txns := fs.Int("txns", 2000, "transactions per worker")
	ops := fs.Int("ops", 4, "operations per transaction")
	readFrac := fs.Float64("read-frac", 0.5, "fraction of reads")
	seed := fs.Int64("seed", 1, "random seed")
	certify := fs.Bool("certify", false, "also certify recorded episodes")
	episodes := fs.Int("episodes", 20, "episodes per engine when certifying")
	sweep := fs.Bool("sweep", false, "sweep goroutines x read-fraction instead of a single run")
	if err := fs.Parse(args); err != nil {
		return err
	}

	names := strings.Split(*engineList, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}

	if *sweep {
		points, err := harness.Sweep(harness.SweepConfig{
			Engines:       names,
			Goroutines:    []int{1, 2, 4, 8},
			ReadFractions: []float64{0.1, 0.5, 0.9},
			Base: harness.Workload{
				Objects:          *objects,
				TxnsPerGoroutine: *txns,
				OpsPerTxn:        *ops,
				Seed:             *seed,
			},
		})
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, harness.FormatSweepTable(points))
		return nil
	}
	var rows []harness.RunStats
	for _, name := range names {
		stats, err := harness.Run(harness.Workload{
			Engine:           name,
			Objects:          *objects,
			Goroutines:       *goroutines,
			TxnsPerGoroutine: *txns,
			OpsPerTxn:        *ops,
			ReadFraction:     *readFrac,
			Seed:             *seed,
		})
		if err != nil {
			return err
		}
		rows = append(rows, stats)
	}
	fmt.Fprintln(stdout, "== throughput ==")
	fmt.Fprint(stdout, harness.FormatRunTable(rows))

	if !*certify {
		return nil
	}
	criteria := []spec.Criterion{spec.DUOpacity, spec.FinalStateOpacity, spec.StrictSerializability}
	fmt.Fprintln(stdout, "\n== certification (small recorded episodes) ==")
	for _, name := range names {
		// Contended shape: enough concurrent read/write overlap that
		// non-deferred-update engines expose reads of in-flight writes,
		// while each episode stays small enough for exact checking.
		cfg := harness.CertConfig{
			Workload: harness.Workload{
				Engine:           name,
				Objects:          4,
				Goroutines:       8,
				TxnsPerGoroutine: 3,
				OpsPerTxn:        6,
				ReadFraction:     *readFrac,
				Seed:             *seed,
			},
			Episodes: *episodes,
		}
		stats, err := harness.Certify(cfg, criteria)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, harness.FormatCertTable(stats, criteria))
		for _, c := range criteria {
			if r := stats.FirstReason[c]; r != "" {
				fmt.Fprintf(stdout, "  first %s rejection: %s\n", c, r)
			}
		}
		fmt.Fprintln(stdout)
	}
	return nil
}
