// Command stmbench measures the shipped STM engines under a configurable
// workload (throughput, abort rate) and optionally certifies recorded
// episodes against the correctness criteria — the repository's
// engine-comparison experiment (§5 of the paper: deferred-update engines
// are du-opaque; the pessimistic in-place engine is not).
//
// Usage:
//
//	stmbench [-engines tl2,norec,...] [-objects 8] [-goroutines 4]
//	         [-txns 2000] [-ops 4] [-read-frac 0.5] [-seed 1]
//	         [-certify] [-episodes 20] [-jobs N] [-portfolio N]
//	stmbench soak [-engines ...] [-rounds 6] [-seed 1] [-jobs N] [-portfolio N]
//	stmbench explore [-engines ...] [-threads 2] [-txns 1] [-ops 2] [-plans 4]
//	         [-seed 1] [-max-schedules N] [-jobs N] [-opacity]
//	stmbench chaos [-engines tl2,norec,dstm] [-trials 50] [-seed 1]
//	         [-node-limit N] [-abort-prob P] [-delay-prob P]
//	stmbench scale [-engines tl2,tl2+karma,pdur,...] [-workloads read-heavy,...]
//	         [-goroutines 1,2,4,8] [-txns 20000] [-repeat 3] [-seed 1] [-json]
//	stmbench scale-gate [-bench BENCH_PR9.json] [-txns 5000] [-repeat 2]
//	         [-seed 1] [-report fresh.json]
//
// The scale subcommand measures goroutines-vs-throughput curves for
// the engine×CM matrix over three canonical workload shapes
// (read-heavy, write-hotspot, disjoint); scale-gate holds the recorded
// curves in BENCH_PR9.json to this PR's performance claims and
// re-measures a small fresh grid as a CI regression gate (see scale.go).
//
// The explore subcommand replaces sampling with proof: for each engine it
// enumerates *every* schedule of the deterministic stepper's space for a
// set of small seeded plans (harness.ExplorePlan via
// checkfarm.ExplorePlans) and reports a per-plan verdict — proven
// du-opaque on all schedules of that space, violated with the causing
// schedule pinned, or budget-exhausted with frontier stats.
//
// The soak subcommand runs the differential certification soak of
// internal/checkfarm: every engine against every implemented criterion
// over a randomized workload grid (each shape once under real goroutines
// and once under the deterministic interleaved scheduler), reporting
// criteria divergences with greedily shrunk minimal counterexamples.
// -jobs shards episodes/cells across workers (0 = GOMAXPROCS).
//
// The chaos subcommand runs the fault-injection soak (harness.ChaosSoak
// over internal/chaos): randomized engine, stream and farm fault
// schedules through the whole pipeline, asserting that faults only ever
// produce honest undecided verdicts or reported-and-rejected input —
// never an OK↔violation flip against the fault-free differential. The
// farm stage is wired through checkfarm.CheckBatch, so injected worker
// panics exercise the farm's recovery and degradation for real. A
// non-empty flip list makes the command fail.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"duopacity/internal/chaos"
	"duopacity/internal/checkfarm"
	"duopacity/internal/harness"
	"duopacity/internal/history"
	"duopacity/internal/spec"
	"duopacity/internal/stm"
	"duopacity/internal/stm/engines"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "stmbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	if len(args) > 0 && args[0] == "soak" {
		return runSoak(args[1:], stdout)
	}
	if len(args) > 0 && args[0] == "explore" {
		return runExplore(args[1:], stdout)
	}
	if len(args) > 0 && args[0] == "chaos" {
		return runChaos(args[1:], stdout)
	}
	if len(args) > 0 && args[0] == "scale" {
		return runScale(args[1:], stdout)
	}
	if len(args) > 0 && args[0] == "scale-gate" {
		return runScaleGate(args[1:], stdout)
	}
	fs := flag.NewFlagSet("stmbench", flag.ContinueOnError)
	engineList := fs.String("engines", strings.Join(engines.Names(), ","), "comma-separated engines")
	objects := fs.Int("objects", 8, "number of t-objects")
	goroutines := fs.Int("goroutines", 4, "concurrent workers")
	txns := fs.Int("txns", 2000, "transactions per worker")
	ops := fs.Int("ops", 4, "operations per transaction")
	readFrac := fs.Float64("read-frac", 0.5, "fraction of reads")
	seed := fs.Int64("seed", 1, "random seed")
	certify := fs.Bool("certify", false, "also certify recorded episodes")
	episodes := fs.Int("episodes", 20, "episodes per engine when certifying")
	sweep := fs.Bool("sweep", false, "sweep goroutines x read-fraction instead of a single run")
	jobs := fs.Int("jobs", 1, "shard certification episodes or sweep cells across this many workers (0 = GOMAXPROCS; parallel sweep cells contend, keep 1 for publication-grade throughput)")
	interleaved := fs.Bool("interleaved", false,
		"certify deterministic interleaved episodes instead of real goroutines (reproducible on any machine)")
	portfolio := fs.Int("portfolio", 0,
		"fan each exact check's top-level search branches across this many workers (parallel portfolio search)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	names := strings.Split(*engineList, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	if *interleaved && !*certify {
		return fmt.Errorf("-interleaved only applies to certification; pass -certify")
	}

	if *sweep {
		points, err := checkfarm.Sweep(context.Background(), harness.SweepConfig{
			Engines:       names,
			Goroutines:    []int{1, 2, 4, 8},
			ReadFractions: []float64{0.1, 0.5, 0.9},
			Base: harness.Workload{
				Objects:          *objects,
				TxnsPerGoroutine: *txns,
				OpsPerTxn:        *ops,
				Seed:             *seed,
			},
		}, *jobs)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, harness.FormatSweepTable(points))
		return nil
	}
	var rows []harness.RunStats
	for _, name := range names {
		stats, err := harness.Run(harness.Workload{
			Engine:           name,
			Objects:          *objects,
			Goroutines:       *goroutines,
			TxnsPerGoroutine: *txns,
			OpsPerTxn:        *ops,
			ReadFraction:     harness.ExplicitReadFraction(*readFrac),
			Seed:             *seed,
		})
		if err != nil {
			return err
		}
		rows = append(rows, stats)
	}
	fmt.Fprintln(stdout, "== throughput ==")
	fmt.Fprint(stdout, harness.FormatRunTable(rows))

	if !*certify {
		return nil
	}
	criteria := []spec.Criterion{spec.DUOpacity, spec.FinalStateOpacity, spec.StrictSerializability}
	fmt.Fprintln(stdout, "\n== certification (small recorded episodes) ==")
	for _, name := range names {
		// Contended shape: enough concurrent read/write overlap that
		// non-deferred-update engines expose reads of in-flight writes,
		// while each episode stays small enough for exact checking.
		cfg := harness.CertConfig{
			Workload: harness.Workload{
				Engine:           name,
				Objects:          4,
				Goroutines:       8,
				TxnsPerGoroutine: 3,
				OpsPerTxn:        6,
				ReadFraction:     harness.ExplicitReadFraction(*readFrac),
				Seed:             *seed,
			},
			Episodes:    *episodes,
			Interleaved: *interleaved,
			Portfolio:   *portfolio,
		}
		stats, err := checkfarm.Certify(context.Background(), cfg, criteria, *jobs)
		if err != nil {
			return err
		}
		fmt.Fprint(stdout, harness.FormatCertTable(stats, criteria))
		for _, c := range criteria {
			if r := stats.FirstReason[c]; r != "" {
				fmt.Fprintf(stdout, "  first %s rejection: %s\n", c, r)
			}
		}
		fmt.Fprintln(stdout)
	}
	return nil
}

// runExplore is the systematic certification mode: per engine, a set of
// seeded small plans is enumerated exhaustively — every schedule of the
// deterministic stepper's space for every plan — and each plan gets a
// proof (du-opaque on all schedules of that space), a refutation pinned
// at the causing schedule, or a budget report. This is the ROADMAP's
// "prove small engines du-opaque per plan rather than sample them" as a
// CLI surface.
func runExplore(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("stmbench explore", flag.ContinueOnError)
	engineList := fs.String("engines", strings.Join(engines.Names(), ","), "comma-separated engines")
	threads := fs.Int("threads", 2, "virtual threads per plan")
	txns := fs.Int("txns", 1, "transactions per thread")
	ops := fs.Int("ops", 2, "operations per transaction")
	objects := fs.Int("objects", 2, "number of t-objects")
	readFrac := fs.Float64("read-frac", 0.5, "fraction of reads")
	seed := fs.Int64("seed", 1, "plan seed")
	plans := fs.Int("plans", 4, "seeded plans per engine")
	budget := fs.Int("max-schedules", 0, "schedules per exploration (0 = default)")
	maxAttempts := fs.Int("max-attempts", 0, "retry bound per transaction (0 = default)")
	jobs := fs.Int("jobs", 0, "shard plans across this many workers (0 = GOMAXPROCS)")
	opacity := fs.Bool("opacity", false, "explore opacity instead of du-opacity")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := strings.Split(*engineList, ",")
	rf := harness.ExplicitReadFraction(*readFrac)
	cfg := harness.ExploreConfig{
		MaxSchedules: *budget,
		MaxAttempts:  *maxAttempts,
	}
	if *opacity {
		cfg.Criterion = spec.Opacity
	}
	for _, name := range names {
		name = strings.TrimSpace(name)
		ps := make([]stm.Plan, *plans)
		for i := range ps {
			ps[i] = harness.PlanOf(harness.Workload{
				Engine:           name,
				Objects:          *objects,
				Goroutines:       *threads,
				TxnsPerGoroutine: *txns,
				OpsPerTxn:        *ops,
				ReadFraction:     rf,
				Seed:             *seed + int64(i),
			})
		}
		reports, err := checkfarm.ExplorePlans(context.Background(), name, ps, cfg, *jobs)
		if err != nil {
			return err
		}
		proven, violated, budgeted := 0, 0, 0
		for _, r := range reports {
			switch r.Outcome {
			case harness.ProvenDUOpaque:
				proven++
			case harness.ViolationFound:
				violated++
			default:
				budgeted++
			}
		}
		fmt.Fprintf(stdout, "== %s: %d proven, %d violated, %d budget-exhausted ==\n",
			name, proven, violated, budgeted)
		fmt.Fprint(stdout, harness.FormatExploreTable(reports))
	}
	return nil
}

// runChaos is the fault-injection soak as a CLI surface: randomized
// fault schedules through engine, stream and farm, with the farm stage
// certifying each trial's history through checkfarm.CheckBatch under an
// injected worker-fault schedule. Soundness flips fail the command.
func runChaos(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("stmbench chaos", flag.ContinueOnError)
	engineList := fs.String("engines", "tl2,norec,dstm", "comma-separated engines (kill-safe set by default)")
	trials := fs.Int("trials", 50, "fault schedules per engine")
	seed := fs.Int64("seed", 1, "fault schedule grid seed")
	nodeLimit := fs.Int("node-limit", 0, "bound each check and monitor search (0 = soak default)")
	abortP := fs.Float64("abort-prob", 0, "per-operation spurious-abort probability (0 = soak default, negative = off)")
	delayP := fs.Float64("delay-prob", 0, "per-commit delayed-commit probability (0 = soak default, negative = off)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := strings.Split(*engineList, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	rep, err := harness.ChaosSoak(harness.ChaosConfig{
		Engines:   names,
		Trials:    *trials,
		Seed:      *seed,
		NodeLimit: *nodeLimit,
		Profile:   chaos.Profile{SpuriousAbort: *abortP, CommitDelay: *delayP},
		Farm:      farmViaCheckBatch,
	})
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, rep.String())
	for _, f := range rep.Flips {
		fmt.Fprintln(stdout, "FLIP:", f)
	}
	if len(rep.Flips) > 0 {
		return fmt.Errorf("chaos soak found %d soundness flip(s)", len(rep.Flips))
	}
	return nil
}

// farmViaCheckBatch is the soak's farm stage: one history, one criterion,
// certified through the farm's batch path so the fault schedule on ctx
// strikes inside a real shard. A degraded shard surfaces through the
// verdict's "degraded: " reason, which is split back out for the soak's
// accounting.
func farmViaCheckBatch(ctx context.Context, h *history.History, c spec.Criterion, nodeLimit int) (spec.Verdict, string, error) {
	vs, err := checkfarm.CheckBatch(ctx, []*history.History{h}, []spec.Criterion{c}, 1, spec.WithNodeLimit(nodeLimit))
	if err != nil {
		return spec.Verdict{}, "", err
	}
	v := vs[0][0]
	if reason, ok := strings.CutPrefix(v.Reason, "degraded: "); ok {
		return v, reason, nil
	}
	return v, "", nil
}

func runSoak(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("stmbench soak", flag.ContinueOnError)
	engineList := fs.String("engines", strings.Join(checkfarm.SoakEngines(), ","), "comma-separated engines")
	rounds := fs.Int("rounds", 6, "workload grid rounds per engine")
	seed := fs.Int64("seed", 1, "workload grid seed")
	jobs := fs.Int("jobs", 0, "worker count (0 = GOMAXPROCS)")
	nodeLimit := fs.Int("node-limit", 0, "bound each exact check (0 = soak default)")
	portfolio := fs.Int("portfolio", 0,
		"fan each exact check's top-level search branches across this many workers (parallel portfolio search)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	names := strings.Split(*engineList, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	cfg := checkfarm.SoakConfig{
		Engines:   names,
		Rounds:    *rounds,
		Seed:      *seed,
		NodeLimit: *nodeLimit,
		Portfolio: *portfolio,
	}
	res, err := checkfarm.Soak(context.Background(), cfg, *jobs)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, checkfarm.FormatSoakReport(cfg, res))
	return nil
}
