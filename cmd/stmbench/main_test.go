package main

import (
	"strings"
	"testing"
)

func TestRunThroughputTable(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-engines", "gl,norec", "-txns", "20", "-goroutines", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"throughput", "gl", "norec", "txn/s"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunCertification(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-engines", "gl", "-txns", "10", "-certify", "-episodes", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "certification") || !strings.Contains(out.String(), "du-opacity") {
		t.Errorf("certification table missing:\n%s", out.String())
	}
}

func TestRunSweep(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-engines", "gl", "-txns", "10", "-sweep"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "read fraction") {
		t.Errorf("sweep table missing:\n%s", out.String())
	}
}

func TestRunUnknownEngine(t *testing.T) {
	if err := run([]string{"-engines", "bogus", "-txns", "5"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestRunCertifyParallelJobs(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-engines", "gl", "-txns", "10", "-certify", "-episodes", "2", "-jobs", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "du-opacity") {
		t.Errorf("certification table missing:\n%s", out.String())
	}
}

func TestRunSoakSubcommand(t *testing.T) {
	var out strings.Builder
	err := run([]string{"soak", "-engines", "gl,ple", "-rounds", "1", "-seed", "11"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"differential soak", "gl", "ple", "du-opacity"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("soak report missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunSoakUnknownEngine(t *testing.T) {
	if err := run([]string{"soak", "-engines", "bogus", "-rounds", "1"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown engine accepted by soak")
	}
}

func TestRunExploreSubcommand(t *testing.T) {
	var out strings.Builder
	err := run([]string{"explore", "-engines", "tl2,ple", "-plans", "2", "-threads", "2", "-txns", "1", "-ops", "2"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"tl2", "ple", "proven", "du-opacity", "schedules"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("explore report missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunExploreUnknownEngine(t *testing.T) {
	if err := run([]string{"explore", "-engines", "bogus", "-plans", "1"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown engine accepted by explore")
	}
}
