package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"duopacity/internal/harness"
)

func TestRunScaleTable(t *testing.T) {
	var out strings.Builder
	err := run([]string{"scale", "-engines", "tl2,pdur+backoff", "-workloads", "disjoint",
		"-goroutines", "1,2", "-txns", "200", "-repeat", "1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"disjoint", "tl2", "pdur+backoff", "g=1", "g=2"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("scale table missing %q:\n%s", want, out.String())
		}
	}
}

func TestRunScaleJSON(t *testing.T) {
	var out strings.Builder
	err := run([]string{"scale", "-engines", "norec+karma", "-workloads", "write-hotspot",
		"-goroutines", "1", "-txns", "100", "-repeat", "1", "-json"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	var points []harness.ScalePoint
	if err := json.Unmarshal([]byte(out.String()), &points); err != nil {
		t.Fatalf("scale -json did not emit valid JSON: %v\n%s", err, out.String())
	}
	if len(points) != 1 || points[0].Engine != "norec+karma" || points[0].TxnPerSec <= 0 {
		t.Fatalf("unexpected points: %+v", points)
	}
}

func TestRunScaleRejectsBadInput(t *testing.T) {
	if err := run([]string{"scale", "-engines", "tl2+bogus", "-txns", "10"}, &strings.Builder{}); err == nil {
		t.Error("bad CM suffix accepted")
	}
	if err := run([]string{"scale", "-workloads", "bogus", "-txns", "10"}, &strings.Builder{}); err == nil {
		t.Error("bad workload accepted")
	}
	if err := run([]string{"scale", "-goroutines", "1,zero"}, &strings.Builder{}); err == nil {
		t.Error("bad goroutine list accepted")
	}
}

// looseFreshGates are fresh-measurement gates no machine can fail, so
// gate tests exercise only the recorded arithmetic.
func looseFreshGates() map[string]float64 {
	return map[string]float64{
		"pdur_vs_norec_disjoint_scaling_fresh_min": 0.0,
		"fresh_floor_txn_per_sec":                  1.0,
	}
}

// writeScaleBench builds a small gate file whose recorded points and
// gates are controlled by the test. The disjoint slopes are tl2Hotspot
// etc. at g=2 against a flat 1000 txn/s at g=1.
func writeScaleBench(t *testing.T, dir string, tl2Hotspot, norecDisjointG2, pdurDisjointG2 float64, gates map[string]float64) string {
	t.Helper()
	bench := map[string]any{
		"description": "test gate file",
		"machine":     "test",
		"seed_baseline": map[string]any{
			"tl2_write_hotspot_g8_txn_per_sec": 1000.0,
			"norec_disjoint_g8_txn_per_sec":    1000.0,
		},
		"gates": gates,
		"points": []harness.ScalePoint{
			{Engine: "tl2", Workload: "write-hotspot", Goroutines: 1, TxnPerSec: 1000},
			{Engine: "tl2", Workload: "write-hotspot", Goroutines: 2, TxnPerSec: tl2Hotspot},
			{Engine: "norec", Workload: "disjoint", Goroutines: 1, TxnPerSec: 1000},
			{Engine: "norec", Workload: "disjoint", Goroutines: 2, TxnPerSec: norecDisjointG2},
			{Engine: "pdur", Workload: "disjoint", Goroutines: 1, TxnPerSec: 1000},
			{Engine: "pdur", Workload: "disjoint", Goroutines: 2, TxnPerSec: pdurDisjointG2},
		},
	}
	b, err := json.Marshal(bench)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunScaleGatePasses(t *testing.T) {
	dir := t.TempDir()
	gates := looseFreshGates()
	gates["tl2_hotspot_g8_speedup_vs_seed_min"] = 2.0
	gates["pdur_vs_norec_disjoint_scaling_recorded_min"] = 1.0
	// pdur scales 1000->1200 while norec stays flat: slope ratio 1.2.
	path := writeScaleBench(t, dir, 2500, 1000, 1200, gates)
	report := filepath.Join(dir, "fresh.json")
	var out strings.Builder
	err := run([]string{"scale-gate", "-bench", path, "-txns", "200", "-repeat", "1", "-report", report}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all checks passed") {
		t.Errorf("missing pass summary:\n%s", out.String())
	}
	if strings.Contains(out.String(), "FAIL") {
		t.Errorf("unexpected FAIL line:\n%s", out.String())
	}
	raw, err := os.ReadFile(report)
	if err != nil {
		t.Fatalf("fresh report not written: %v", err)
	}
	var fresh []harness.ScalePoint
	if err := json.Unmarshal(raw, &fresh); err != nil {
		t.Fatalf("fresh report not JSON: %v", err)
	}
	if len(fresh) != 12 { // 3 engines x 2 workloads x 2 goroutine counts
		t.Fatalf("fresh report has %d points, want 12", len(fresh))
	}
}

func TestRunScaleGateFailsOnRecordedRegression(t *testing.T) {
	dir := t.TempDir()
	// Recorded tl2 hotspot is only 1.5x the seed baseline; the 2x gate
	// must fail without any fresh measurement mattering.
	gates := looseFreshGates()
	gates["tl2_hotspot_g8_speedup_vs_seed_min"] = 2.0
	gates["pdur_vs_norec_disjoint_scaling_recorded_min"] = 1.0
	path := writeScaleBench(t, dir, 1500, 1000, 1200, gates)
	var out strings.Builder
	err := run([]string{"scale-gate", "-bench", path, "-txns", "100", "-repeat", "1"}, &out)
	if err == nil {
		t.Fatalf("regressed recorded speedup passed the gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL: recorded tl2 write-hotspot") {
		t.Errorf("missing FAIL line for the speedup gate:\n%s", out.String())
	}
}

func TestRunScaleGateFailsOnPdurRegression(t *testing.T) {
	dir := t.TempDir()
	// pdur's disjoint curve droops (1000->900) while norec's stays
	// flat: slope ratio 0.9, below the 1.0 gate.
	gates := looseFreshGates()
	gates["tl2_hotspot_g8_speedup_vs_seed_min"] = 2.0
	gates["pdur_vs_norec_disjoint_scaling_recorded_min"] = 1.0
	path := writeScaleBench(t, dir, 2500, 1000, 900, gates)
	var out strings.Builder
	if err := run([]string{"scale-gate", "-bench", path, "-txns", "100", "-repeat", "1"}, &out); err == nil {
		t.Fatalf("drooping pdur curve passed the recorded scaling gate:\n%s", out.String())
	}
}

func TestRunScaleGateMissingFile(t *testing.T) {
	if err := run([]string{"scale-gate", "-bench", filepath.Join(t.TempDir(), "nope.json")}, &strings.Builder{}); err == nil {
		t.Fatal("missing gate file accepted")
	}
}

// TestCheckedInBenchSatisfiesRecordedGates holds the repository's
// actual BENCH_PR9.json to its own recorded claims (pure arithmetic,
// no measurement), so a stale or hand-edited file fails in CI even
// without the scale-smoke job.
func TestCheckedInBenchSatisfiesRecordedGates(t *testing.T) {
	raw, err := os.ReadFile("../../BENCH_PR9.json")
	if err != nil {
		t.Skipf("BENCH_PR9.json not present: %v", err)
	}
	var bench scaleBench
	if err := json.Unmarshal(raw, &bench); err != nil {
		t.Fatal(err)
	}
	hotG := maxGoroutines(bench.Points, "write-hotspot")
	disG := maxGoroutines(bench.Points, "disjoint")
	tl2 := harness.FindScalePoint(bench.Points, "tl2", "write-hotspot", hotG)
	if tl2 == nil {
		t.Fatal("BENCH_PR9.json is missing the tl2 write-hotspot point")
	}
	if speedup := tl2.TxnPerSec / bench.SeedBaseline.TL2WriteHotspotG8; speedup < bench.Gates.TL2HotspotSpeedupVsSeedMin {
		t.Errorf("recorded tl2 write-hotspot speedup %.2fx below gate %.2fx",
			speedup, bench.Gates.TL2HotspotSpeedupVsSeedMin)
	}
	pdurSlope, err := scalingSlope(bench.Points, "pdur", "disjoint", disG)
	if err != nil {
		t.Fatal(err)
	}
	norecSlope, err := scalingSlope(bench.Points, "norec", "disjoint", disG)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := pdurSlope / norecSlope; ratio < bench.Gates.PdurVsNorecScalingRecordedMin {
		t.Errorf("recorded pdur/norec disjoint scaling ratio %.2f below gate %.2f",
			ratio, bench.Gates.PdurVsNorecScalingRecordedMin)
	}
}
