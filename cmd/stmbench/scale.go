// The scale and scale-gate subcommands: goroutines-vs-throughput
// scaling curves over the engine×CM matrix, and the CI regression gate
// that holds the recorded curves (BENCH_PR9.json) to the PR's
// performance claims while re-measuring a small fresh grid on the
// machine at hand.
//
//	stmbench scale [-engines tl2,tl2+karma,pdur,...] [-workloads read-heavy,write-hotspot,disjoint]
//	         [-goroutines 1,2,4,8] [-txns 20000] [-repeat 3] [-seed 1] [-json]
//	stmbench scale-gate -bench BENCH_PR9.json [-txns 5000] [-repeat 2]
//	         [-seed 1] [-report fresh.json]
//
// The gate file records two kinds of claims. Recorded gates are pure
// arithmetic over the file itself and hold on any machine: the striped
// tl2's write-hotspot speedup over the pre-stripe seed build, and pdur
// outscaling norec on the disjoint workload. "Outscales" is a claim
// about curve shape, not absolute throughput — the gate compares
// normalized scaling slopes (throughput at the top goroutine count
// over throughput at g=1), because norec's single global seqlock costs
// less per commit than pdur's partition bookkeeping at g=1, while only
// pdur's disjoint-access commits gain from added goroutines. Fresh
// gates re-measure and are deliberately loose — the same slope ratio
// with slack, and an absolute throughput floor with orders-of-magnitude
// headroom — so a slow CI runner cannot fail them while a real
// regression (an accidental O(n) hot path, a lost fast path) still
// does.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"duopacity/internal/harness"
)

// defaultScaleEngines is the published grid: every base engine that
// scales (the deferred-update family plus etl), and one CM cell per
// policy spread across the CM-capable engines.
func defaultScaleEngines() []string {
	return []string{"tl2", "norec", "pdur", "dstm", "etl", "tl2+karma", "norec+backoff", "pdur+backoff", "dstm+greedy"}
}

func parseIntList(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad goroutine count %q", f)
		}
		out = append(out, n)
	}
	return out, nil
}

func splitNames(csv string) []string {
	names := strings.Split(csv, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	return names
}

func runScale(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("stmbench scale", flag.ContinueOnError)
	engineList := fs.String("engines", strings.Join(defaultScaleEngines(), ","),
		"comma-separated engine[+cm] names")
	workloadList := fs.String("workloads", strings.Join(harness.ScaleWorkloadNames(), ","),
		"comma-separated workload shapes")
	goroutineList := fs.String("goroutines", "1,2,4,8", "comma-separated goroutine counts")
	txns := fs.Int("txns", 20_000, "transactions per goroutine per cell")
	repeat := fs.Int("repeat", 3, "runs per cell (best throughput kept)")
	seed := fs.Int64("seed", 1, "workload seed")
	asJSON := fs.Bool("json", false, "emit the points as JSON instead of tables")
	if err := fs.Parse(args); err != nil {
		return err
	}
	gs, err := parseIntList(*goroutineList)
	if err != nil {
		return err
	}
	points, err := harness.ScaleCurves(harness.ScaleConfig{
		Engines:          splitNames(*engineList),
		Workloads:        splitNames(*workloadList),
		Goroutines:       gs,
		TxnsPerGoroutine: *txns,
		Repeat:           *repeat,
		Seed:             *seed,
	})
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(points)
	}
	fmt.Fprint(stdout, harness.FormatScaleTable(points))
	return nil
}

// scaleBench is the on-disk shape of BENCH_PR9.json.
type scaleBench struct {
	Description string `json:"description"`
	Command     string `json:"command"`
	Machine     string `json:"machine"`
	// SeedBaseline holds the pre-PR throughput of the unoptimized
	// engines, measured on the same machine as Points.
	SeedBaseline struct {
		Comment           string  `json:"comment"`
		TL2WriteHotspotG8 float64 `json:"tl2_write_hotspot_g8_txn_per_sec"`
		NorecDisjointG8   float64 `json:"norec_disjoint_g8_txn_per_sec"`
	} `json:"seed_baseline"`
	Gates struct {
		// Recorded gates: checked against Points alone.
		TL2HotspotSpeedupVsSeedMin    float64 `json:"tl2_hotspot_g8_speedup_vs_seed_min"`
		PdurVsNorecScalingRecordedMin float64 `json:"pdur_vs_norec_disjoint_scaling_recorded_min"`
		// Fresh gates: checked against a re-measured grid.
		PdurVsNorecScalingFreshMin float64 `json:"pdur_vs_norec_disjoint_scaling_fresh_min"`
		FreshFloorTxnPerSec        float64 `json:"fresh_floor_txn_per_sec"`
	} `json:"gates"`
	Points []harness.ScalePoint `json:"points"`
}

// maxGoroutines returns the largest goroutine count present for the
// given workload column.
func maxGoroutines(points []harness.ScalePoint, workload string) int {
	max := 0
	for _, p := range points {
		if p.Workload == workload && p.Goroutines > max {
			max = p.Goroutines
		}
	}
	return max
}

// scalingSlope returns engine's throughput at gmax over its throughput
// at g=1 on the workload — the normalized shape of the scaling curve.
func scalingSlope(points []harness.ScalePoint, engine, workload string, gmax int) (float64, error) {
	lo := harness.FindScalePoint(points, engine, workload, 1)
	hi := harness.FindScalePoint(points, engine, workload, gmax)
	if lo == nil || hi == nil || lo.TxnPerSec <= 0 {
		return 0, fmt.Errorf("missing %s/%s points at g=1 and g=%d", engine, workload, gmax)
	}
	return hi.TxnPerSec / lo.TxnPerSec, nil
}

func runScaleGate(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("stmbench scale-gate", flag.ContinueOnError)
	benchPath := fs.String("bench", "BENCH_PR9.json", "recorded benchmark/gate file")
	txns := fs.Int("txns", 5_000, "transactions per goroutine for the fresh grid")
	repeat := fs.Int("repeat", 2, "runs per fresh cell (best kept)")
	seed := fs.Int64("seed", 1, "workload seed for the fresh grid")
	report := fs.String("report", "", "write the fresh points to this JSON file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	raw, err := os.ReadFile(*benchPath)
	if err != nil {
		return err
	}
	var bench scaleBench
	if err := json.Unmarshal(raw, &bench); err != nil {
		return fmt.Errorf("%s: %w", *benchPath, err)
	}
	if len(bench.Points) == 0 {
		return fmt.Errorf("%s: no recorded points", *benchPath)
	}

	failures := 0
	check := func(ok bool, format string, args ...any) {
		status := "PASS"
		if !ok {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(stdout, "%s: %s\n", status, fmt.Sprintf(format, args...))
	}

	// Recorded gates: arithmetic over the checked-in curves.
	hotG := maxGoroutines(bench.Points, "write-hotspot")
	disG := maxGoroutines(bench.Points, "disjoint")
	recTL2 := harness.FindScalePoint(bench.Points, "tl2", "write-hotspot", hotG)
	if recTL2 == nil {
		return fmt.Errorf("%s: recorded points missing tl2/write-hotspot at g=%d", *benchPath, hotG)
	}
	if bench.SeedBaseline.TL2WriteHotspotG8 <= 0 {
		return fmt.Errorf("%s: no seed baseline for tl2 write-hotspot", *benchPath)
	}
	speedup := recTL2.TxnPerSec / bench.SeedBaseline.TL2WriteHotspotG8
	check(speedup >= bench.Gates.TL2HotspotSpeedupVsSeedMin,
		"recorded tl2 write-hotspot g=%d: %.2fx over seed build (gate %.2fx)",
		hotG, speedup, bench.Gates.TL2HotspotSpeedupVsSeedMin)
	recPdurSlope, err := scalingSlope(bench.Points, "pdur", "disjoint", disG)
	if err != nil {
		return fmt.Errorf("%s: %w", *benchPath, err)
	}
	recNorecSlope, err := scalingSlope(bench.Points, "norec", "disjoint", disG)
	if err != nil {
		return fmt.Errorf("%s: %w", *benchPath, err)
	}
	recRatio := recPdurSlope / recNorecSlope
	check(recRatio >= bench.Gates.PdurVsNorecScalingRecordedMin,
		"recorded disjoint scaling g=1->%d: pdur %.2fx vs norec %.2fx, ratio %.2f (gate %.2f)",
		disG, recPdurSlope, recNorecSlope, recRatio, bench.Gates.PdurVsNorecScalingRecordedMin)

	// Fresh gates: re-measure the three claim-bearing engines on the
	// two claim-bearing workloads at g=1 and the recorded top count.
	fresh, err := harness.ScaleCurves(harness.ScaleConfig{
		Engines:          []string{"tl2", "norec", "pdur"},
		Workloads:        []string{"write-hotspot", "disjoint"},
		Goroutines:       []int{1, hotG},
		TxnsPerGoroutine: *txns,
		Repeat:           *repeat,
		Seed:             *seed,
	})
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, harness.FormatScaleTable(fresh))
	for _, p := range fresh {
		check(p.TxnPerSec >= bench.Gates.FreshFloorTxnPerSec,
			"fresh %s/%s g=%d: %.0f txn/s (floor %.0f)",
			p.Engine, p.Workload, p.Goroutines, p.TxnPerSec, bench.Gates.FreshFloorTxnPerSec)
		if p.Failed != 0 {
			check(false, "fresh %s/%s g=%d: %d failed transactions", p.Engine, p.Workload, p.Goroutines, p.Failed)
		}
	}
	fPdurSlope, err := scalingSlope(fresh, "pdur", "disjoint", hotG)
	if err != nil {
		return err
	}
	fNorecSlope, err := scalingSlope(fresh, "norec", "disjoint", hotG)
	if err != nil {
		return err
	}
	freshRatio := fPdurSlope / fNorecSlope
	check(freshRatio >= bench.Gates.PdurVsNorecScalingFreshMin,
		"fresh disjoint scaling g=1->%d: pdur %.2fx vs norec %.2fx, ratio %.2f (gate %.2f)",
		hotG, fPdurSlope, fNorecSlope, freshRatio, bench.Gates.PdurVsNorecScalingFreshMin)

	if *report != "" {
		b, err := json.MarshalIndent(fresh, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*report, append(b, '\n'), 0o644); err != nil {
			return err
		}
	}
	if failures > 0 {
		return fmt.Errorf("scale gate: %d check(s) failed", failures)
	}
	fmt.Fprintln(stdout, "scale gate: all checks passed")
	return nil
}
