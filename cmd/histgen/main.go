// Command histgen generates transactional histories in the text format of
// internal/histio: du-opaque by construction, serial, or mutated with a
// planted violation. Useful for producing test corpora for ducheck.
//
// Usage:
//
//	histgen [-txns 6] [-objects 3] [-ops 3] [-read-frac 0.5] [-unique]
//	        [-serial] [-mutate none|future-read|sourceless|abort-writer]
//	        [-seed 1]
package main

import (
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"

	"duopacity/internal/gen"
	"duopacity/internal/histio"
	"duopacity/internal/history"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "histgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("histgen", flag.ContinueOnError)
	txns := fs.Int("txns", 6, "number of transactions")
	objects := fs.Int("objects", 3, "number of t-objects")
	ops := fs.Int("ops", 3, "max operations per transaction")
	readFrac := fs.Float64("read-frac", 0.5, "probability an operation reads")
	unique := fs.Bool("unique", false, "unique write values (Theorem 11 hypothesis)")
	serial := fs.Bool("serial", false, "emit the t-sequential base (no relaxation)")
	mutate := fs.String("mutate", "none", "plant a violation: none, future-read, sourceless, abort-writer")
	seed := fs.Int64("seed", 1, "random seed")
	pAbort := fs.Float64("p-abort", 0.15, "probability a transaction aborts via tryC")
	pPending := fs.Float64("p-pending", 0.1, "probability a transaction's tryC stays pending")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := gen.Config{
		Txns:           *txns,
		Objects:        *objects,
		OpsPerTxn:      *ops,
		ReadFraction:   gen.ExplicitReadFraction(*readFrac),
		UniqueWrites:   *unique,
		PAbort:         *pAbort,
		PCommitPending: *pPending,
		Seed:           *seed,
	}
	var h *history.History
	if *serial {
		h = gen.Serial(cfg)
	} else {
		h = gen.DUOpaque(cfg)
	}

	rng := rand.New(rand.NewSource(*seed))
	var ok bool
	switch *mutate {
	case "none":
		ok = true
	case "future-read":
		h, ok = gen.MutateFutureRead(h, rng)
	case "sourceless":
		h, ok = gen.MutateSourcelessRead(h, rng)
	case "abort-writer":
		h, ok = gen.MutateAbortWriter(h, rng)
	default:
		return fmt.Errorf("unknown mutation %q", *mutate)
	}
	if !ok {
		return fmt.Errorf("mutation %q not applicable to the generated history (try another seed)", *mutate)
	}
	fmt.Fprintf(stdout, "# generated: txns=%d objects=%d seed=%d mutate=%s\n", *txns, *objects, *seed, *mutate)
	return histio.Format(stdout, h)
}
