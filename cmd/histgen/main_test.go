package main

import (
	"strconv"
	"strings"
	"testing"

	"duopacity/internal/histio"
	"duopacity/internal/spec"
)

func generate(t *testing.T, args ...string) string {
	t.Helper()
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v", args, err)
	}
	return out.String()
}

func TestGeneratedHistoriesParseAndVerify(t *testing.T) {
	out := generate(t, "-txns", "5", "-unique", "-seed", "7")
	h, err := histio.ParseString(out)
	if err != nil {
		t.Fatalf("parse: %v\n%s", err, out)
	}
	if v := spec.CheckDUOpacity(h); !v.OK {
		t.Fatalf("generated history not du-opaque: %s", v.Reason)
	}
	if !spec.UniqueWrites(h) {
		t.Fatal("-unique not honored")
	}
}

func TestGeneratedSerial(t *testing.T) {
	out := generate(t, "-serial", "-txns", "4", "-seed", "2")
	h, err := histio.ParseString(out)
	if err != nil {
		t.Fatal(err)
	}
	if !spec.CheckDUOpacity(h).OK {
		t.Fatal("serial history not du-opaque")
	}
}

func TestMutations(t *testing.T) {
	tests := []struct {
		mutate   string
		criteria spec.Criterion
	}{
		{"future-read", spec.DUOpacity},
		{"sourceless", spec.FinalStateOpacity},
		{"abort-writer", spec.FinalStateOpacity},
	}
	for _, tc := range tests {
		t.Run(tc.mutate, func(t *testing.T) {
			// Some seeds have no applicable mutation; scan a few.
			for seed := 1; seed <= 30; seed++ {
				var out strings.Builder
				err := run([]string{"-txns", "6", "-unique", "-seed", strconv.Itoa(seed), "-mutate", tc.mutate}, &out)
				if err != nil {
					continue
				}
				h, perr := histio.ParseString(out.String())
				if perr != nil {
					t.Fatalf("seed %d: %v", seed, perr)
				}
				if v := spec.Check(h, tc.criteria); v.OK {
					t.Fatalf("seed %d: %s accepted a %s mutant", seed, tc.criteria, tc.mutate)
				}
				return
			}
			t.Fatalf("mutation %s never applicable in 30 seeds", tc.mutate)
		})
	}
}

func TestUnknownMutation(t *testing.T) {
	if err := run([]string{"-mutate", "nope"}, &strings.Builder{}); err == nil {
		t.Fatal("unknown mutation accepted")
	}
}
