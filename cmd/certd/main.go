// Command certd is certification-as-a-service: the networked front end
// of the certification farm (internal/certd).
//
// Usage:
//
//	certd serve [-addr :9240] [-stream-addr :9241] [-lease-ttl 3s] [-max-streams N] [-queue N]
//	certd work -connect http://host:9240 [-name NAME] [-poll 100ms]
//	certd submit -connect http://host:9240 (-spec file.json|-) [-wait]
//	certd loadtest (-connect host:9241 | -self) [-streams N] [-txns N] [-retire N] [-json]
//
// serve runs the coordinator: the HTTP job/lease surface on -addr
// (/healthz and /statsz included) and the line-oriented monitor-stream
// listener on -stream-addr. SIGINT/SIGTERM drains gracefully: no new
// work is accepted, outstanding shards degrade into explicit artifacts
// so every submitted job completes, and open streams are torn down.
//
// work runs a pull worker against a coordinator: it leases shards,
// heartbeats while computing, posts results, and survives shard panics
// (the coordinator requeues). Kill it freely; the lease protocol
// absorbs the loss.
//
// submit reads a checkfarm.JobSpec as JSON (from -spec, or stdin with
// "-"), submits it, and with -wait polls until the fold lands and prints
// the report — byte-identical to the in-process farm's output for the
// same spec. Exit status with -wait: 0 on a clean report, 1 when shards
// degraded, 2 on errors.
//
// loadtest drives concurrent monitored streams against a stream
// endpoint and reports aggregate events/sec; -self spins a private
// in-process server first, making it a one-command benchmark.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"duopacity/internal/certd"
	"duopacity/internal/checkfarm"
)

func main() {
	code, err := run(os.Args[1:], os.Stdin, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "certd:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, stdin io.Reader, stdout io.Writer) (int, error) {
	if len(args) < 1 {
		return 2, fmt.Errorf("usage: certd <serve|work|submit|loadtest> [flags]")
	}
	switch args[0] {
	case "serve":
		return runServe(args[1:], stdout, nil)
	case "work":
		return runWork(args[1:], stdout)
	case "submit":
		return runSubmit(args[1:], stdin, stdout)
	case "loadtest":
		return runLoadtest(args[1:], stdout)
	case "gate":
		return runGate(args[1:], stdout)
	default:
		return 2, fmt.Errorf("unknown subcommand %q (want serve, work, submit, loadtest or gate)", args[0])
	}
}

// runServe starts the coordinator and blocks until a signal (or, in
// tests, the ready channel's consumer shuts it down via the returned
// listeners). ready, when non-nil, receives the bound addresses.
func runServe(args []string, stdout io.Writer, ready chan<- [2]string) (int, error) {
	fs := flag.NewFlagSet("certd serve", flag.ContinueOnError)
	addr := fs.String("addr", ":9240", "HTTP job/lease/ops address")
	streamAddr := fs.String("stream-addr", ":9241", "monitor-stream listener address")
	leaseTTL := fs.Duration("lease-ttl", 3*time.Second, "shard lease TTL (heartbeats extend)")
	maxStreams := fs.Int("max-streams", 256, "concurrent monitor-stream cap (past it: ERR busy)")
	queue := fs.Int("queue", 256, "per-stream input queue depth")
	drainTimeout := fs.Duration("drain-timeout", 30*time.Second, "graceful-drain budget on SIGTERM")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	s := certd.NewServer(certd.Config{LeaseTTL: *leaseTTL, MaxStreams: *maxStreams, StreamQueue: *queue})

	httpLn, err := net.Listen("tcp", *addr)
	if err != nil {
		return 2, err
	}
	streamLn, err := net.Listen("tcp", *streamAddr)
	if err != nil {
		httpLn.Close()
		return 2, err
	}
	fmt.Fprintf(stdout, "certd: jobs on %s, streams on %s\n", httpLn.Addr(), streamLn.Addr())
	if ready != nil {
		ready <- [2]string{httpLn.Addr().String(), streamLn.Addr().String()}
	}

	janCtx, stopJanitor := context.WithCancel(context.Background())
	defer stopJanitor()
	go s.ExpireLoop(janCtx)
	go func() { _ = s.ServeStreams(streamLn) }()
	hs := &http.Server{Handler: s.Handler()}
	httpDone := make(chan error, 1)
	go func() { httpDone <- hs.Serve(httpLn) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case got := <-sig:
		fmt.Fprintf(stdout, "certd: %v — draining\n", got)
	case err := <-httpDone:
		return 2, fmt.Errorf("http server: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	drainErr := s.Drain(ctx)
	_ = hs.Shutdown(ctx)
	if drainErr != nil {
		return 2, fmt.Errorf("drain: %w", drainErr)
	}
	fmt.Fprintln(stdout, "certd: drained")
	return 0, nil
}

func runWork(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("certd work", flag.ContinueOnError)
	connect := fs.String("connect", "", "coordinator URL (http://host:port)")
	name := fs.String("name", "", "worker name (default host.pid)")
	poll := fs.Duration("poll", 100*time.Millisecond, "idle re-poll interval")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *connect == "" {
		return 2, fmt.Errorf("work: -connect is required")
	}
	if *name == "" {
		host, _ := os.Hostname()
		*name = fmt.Sprintf("%s.%d", host, os.Getpid())
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(stdout, "certd: worker %s pulling from %s\n", *name, *connect)
	w := &certd.Worker{Client: &certd.Client{Base: *connect}, Name: *name, Poll: *poll}
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		return 2, err
	}
	return 0, nil
}

func runSubmit(args []string, stdin io.Reader, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("certd submit", flag.ContinueOnError)
	connect := fs.String("connect", "", "coordinator URL (http://host:port)")
	specPath := fs.String("spec", "", `job spec JSON file ("-" for stdin)`)
	wait := fs.Bool("wait", true, "poll until the job folds and print the report")
	poll := fs.Duration("poll", 250*time.Millisecond, "status poll interval with -wait")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *connect == "" || *specPath == "" {
		return 2, fmt.Errorf("submit: -connect and -spec are required")
	}
	var src io.Reader = stdin
	if *specPath != "-" {
		f, err := os.Open(*specPath)
		if err != nil {
			return 2, err
		}
		defer f.Close()
		src = f
	}
	var spec checkfarm.JobSpec
	if err := json.NewDecoder(src).Decode(&spec); err != nil {
		return 2, fmt.Errorf("submit: bad spec: %w", err)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c := &certd.Client{Base: *connect}
	id, shards, err := c.Submit(ctx, spec)
	if err != nil {
		return 2, err
	}
	fmt.Fprintf(stdout, "submitted %s (%d shard(s))\n", id, shards)
	if !*wait {
		return 0, nil
	}
	st, err := c.WaitJob(ctx, id, *poll)
	if err != nil {
		return 2, err
	}
	if st.State != certd.JobDone {
		return 2, fmt.Errorf("job %s %s: %s", id, st.State, st.Err)
	}
	fmt.Fprint(stdout, st.Formatted)
	if st.Degraded > 0 {
		return 1, nil
	}
	return 0, nil
}

func runLoadtest(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("certd loadtest", flag.ContinueOnError)
	connect := fs.String("connect", "", "stream endpoint (host:port)")
	self := fs.Bool("self", false, "spin a private in-process server to load-test")
	streams := fs.Int("streams", 100, "concurrent monitored streams")
	txns := fs.Int("txns", 250, "transactions per stream (4 events each)")
	retire := fs.Int("retire", 8, "monitor retirement window per stream")
	asJSON := fs.Bool("json", false, "emit the report as JSON (BENCH_PR8.json shape)")
	timeout := fs.Duration("timeout", 2*time.Minute, "overall run budget")
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	addr := *connect
	if *self {
		s := certd.NewServer(certd.Config{MaxStreams: *streams + 8})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return 2, err
		}
		defer ln.Close()
		go func() { _ = s.ServeStreams(ln) }()
		addr = ln.Addr().String()
	}
	if addr == "" {
		return 2, fmt.Errorf("loadtest: -connect or -self is required")
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	rep, err := certd.LoadTest(ctx, certd.LoadTestConfig{Addr: addr, Streams: *streams, Txns: *txns, Retire: *retire})
	if err != nil {
		return 2, err
	}
	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return 2, err
		}
	} else {
		fmt.Fprintf(stdout, "loadtest: %d streams x %d txns: %d events in %.1fms = %.0f events/sec (bad=%d dropped=%d violations=%d)\n",
			rep.Streams, rep.TxnsPerConn, rep.Events, rep.ElapsedMS, rep.EventsPerSec, rep.Bad, rep.Dropped, rep.Violations)
	}
	if rep.Bad > 0 || rep.Violations > 0 {
		return 1, nil
	}
	return 0, nil
}

// runGate compares a loadtest report against the recorded benchmark
// gate (BENCH_PR8.json): throughput at or above gate_events_per_sec and
// a clean run (no bad lines, no drops, no violations). CI uses it to
// fail fast when stream ingestion regresses.
func runGate(args []string, stdout io.Writer) (int, error) {
	fs := flag.NewFlagSet("certd gate", flag.ContinueOnError)
	benchPath := fs.String("bench", "BENCH_PR8.json", "benchmark snapshot with the gate")
	reportPath := fs.String("report", "", `loadtest -json output to judge ("-" for stdin)`)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *reportPath == "" {
		return 2, fmt.Errorf("gate: -report is required")
	}
	var bench struct {
		Gate float64 `json:"gate_events_per_sec"`
	}
	raw, err := os.ReadFile(*benchPath)
	if err != nil {
		return 2, err
	}
	if err := json.Unmarshal(raw, &bench); err != nil || bench.Gate <= 0 {
		return 2, fmt.Errorf("gate: %s has no gate_events_per_sec (%v)", *benchPath, err)
	}
	var rep certd.LoadTestReport
	if *reportPath == "-" {
		err = json.NewDecoder(os.Stdin).Decode(&rep)
	} else {
		raw, err = os.ReadFile(*reportPath)
		if err == nil {
			err = json.Unmarshal(raw, &rep)
		}
	}
	if err != nil {
		return 2, fmt.Errorf("gate: bad report: %w", err)
	}
	if rep.Bad > 0 || rep.Dropped > 0 || rep.Violations > 0 {
		fmt.Fprintf(stdout, "gate: FAIL: load run was not clean: bad=%d dropped=%d violations=%d\n", rep.Bad, rep.Dropped, rep.Violations)
		return 1, nil
	}
	if rep.EventsPerSec < bench.Gate {
		fmt.Fprintf(stdout, "gate: FAIL: %.0f events/sec under the %.0f gate\n", rep.EventsPerSec, bench.Gate)
		return 1, nil
	}
	fmt.Fprintf(stdout, "gate: %.0f events/sec >= %.0f gate, clean run (%d events over %d streams)\n",
		rep.EventsPerSec, bench.Gate, rep.Events, rep.Streams)
	return 0, nil
}
