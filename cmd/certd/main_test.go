package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"duopacity/internal/certd"
)

// startHTTP serves a fresh coordinator's HTTP surface on loopback.
func startHTTP(t *testing.T) (*certd.Server, string) {
	t.Helper()
	s := certd.NewServer(certd.Config{})
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go s.ExpireLoop(ctx)
	return s, srv.URL
}

// TestServeSubmitWorkEndToEnd drives the real binary paths: serve binds
// its listeners, submit posts a certify spec from a file, an in-process
// worker drains the shards, and SIGTERM drains the coordinator cleanly.
func TestServeSubmitWorkEndToEnd(t *testing.T) {
	var serveOut bytes.Buffer
	ready := make(chan [2]string, 1)
	serveDone := make(chan int, 1)
	go func() {
		code, err := runServe([]string{"-addr", "127.0.0.1:0", "-stream-addr", "127.0.0.1:0", "-lease-ttl", "2s"}, &serveOut, ready)
		if err != nil {
			t.Errorf("serve: %v", err)
		}
		serveDone <- code
	}()
	var addrs [2]string
	select {
	case addrs = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("serve never bound its listeners")
	}
	base := "http://" + addrs[0]

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &certd.Worker{Client: &certd.Client{Base: base}, Name: "t-worker", Poll: 20 * time.Millisecond}
	workerDone := make(chan struct{})
	go func() { defer close(workerDone); _ = w.Run(ctx) }()

	spec := filepath.Join(t.TempDir(), "spec.json")
	specJSON := `{"kind":"certify","certify":{"config":{"Engine":"tl2","Objects":3,"Goroutines":2,"TxnsPerGoroutine":2,"OpsPerTxn":3,"Seed":7,"Episodes":6,"Interleaved":true},"criteria":["du"]}}`
	if err := os.WriteFile(spec, []byte(specJSON), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	code, err := runSubmit([]string{"-connect", base, "-spec", spec}, strings.NewReader(""), &out)
	if err != nil || code != 0 {
		t.Fatalf("submit: exit %d, err %v\nout:\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "engine tl2: 6 episodes") {
		t.Fatalf("submit did not print the folded report:\n%s", out.String())
	}

	cancel()
	<-workerDone
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case code := <-serveDone:
		if code != 0 {
			t.Fatalf("serve exited %d\nout:\n%s", code, serveOut.String())
		}
	case <-time.After(30 * time.Second):
		t.Fatal("serve did not drain on SIGTERM")
	}
	if !strings.Contains(serveOut.String(), "drained") {
		t.Fatalf("no drain confirmation:\n%s", serveOut.String())
	}
}

// TestSubmitStdinSpec reads the spec from stdin with -spec -.
func TestSubmitStdinSpec(t *testing.T) {
	srv, base := startHTTP(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	w := &certd.Worker{Client: &certd.Client{Base: base}, Name: "t-stdin", Poll: 20 * time.Millisecond}
	go func() { _ = w.Run(ctx) }()
	_ = srv

	var out bytes.Buffer
	code, err := runSubmit(
		[]string{"-connect", base, "-spec", "-"},
		strings.NewReader(`{"kind":"check","check":{"histories":["write 1 X 1\ncommit 1\n"],"criteria":["du"]}}`),
		&out,
	)
	if err != nil || code != 0 {
		t.Fatalf("submit: exit %d, err %v\nout:\n%s", code, err, out.String())
	}
	if !strings.Contains(out.String(), "du-opacity: OK") {
		t.Fatalf("check verdict missing:\n%s", out.String())
	}
}

// TestLoadtestSelf exercises the one-command benchmark path and its JSON
// output shape (the BENCH_PR8.json record).
func TestLoadtestSelf(t *testing.T) {
	var out bytes.Buffer
	code, err := runLoadtest([]string{"-self", "-streams", "4", "-txns", "10", "-json"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("loadtest: exit %d, err %v\nout:\n%s", code, err, out.String())
	}
	var rep certd.LoadTestReport
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("loadtest JSON unparsable: %v\n%s", err, out.String())
	}
	if rep.Events != 4*10*4 || rep.EventsPerSec <= 0 {
		t.Fatalf("loadtest report wrong: %+v", rep)
	}
}

// TestGate judges loadtest reports against the recorded benchmark gate:
// pass at or above it, fail below it or on an unclean run.
func TestGate(t *testing.T) {
	dir := t.TempDir()
	bench := filepath.Join(dir, "bench.json")
	if err := os.WriteFile(bench, []byte(`{"gate_events_per_sec":10000}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name, report string
		code         int
	}{
		{"pass", `{"events":100,"streams":2,"events_per_sec":20000}`, 0},
		{"slow", `{"events":100,"streams":2,"events_per_sec":900}`, 1},
		{"unclean", `{"events":100,"streams":2,"events_per_sec":20000,"dropped":3}`, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			report := filepath.Join(dir, tc.name+".json")
			if err := os.WriteFile(report, []byte(tc.report), 0o644); err != nil {
				t.Fatal(err)
			}
			var out bytes.Buffer
			code, err := runGate([]string{"-bench", bench, "-report", report}, &out)
			if err != nil || code != tc.code {
				t.Fatalf("gate: exit %d, err %v, want %d\nout: %s", code, err, tc.code, out.String())
			}
		})
	}
}

// TestUsageErrors pins the input-error exits of every subcommand.
func TestUsageErrors(t *testing.T) {
	for _, args := range [][]string{
		{},
		{"bogus"},
		{"work"},
		{"submit", "-connect", "http://x"},
		{"loadtest"},
	} {
		var out bytes.Buffer
		code, err := run(args, strings.NewReader(""), &out)
		if code != 2 || err == nil {
			t.Errorf("args %q: exit %d, err %v", args, code, err)
		}
	}
}
