// Benchmarks regenerating every experiment of the reproduction — one
// benchmark (family) per paper figure, theorem and engine claim; the
// mapping is recorded in DESIGN.md and the measured results in
// EXPERIMENTS.md.
//
// Run with: go test -bench=. -benchmem
package duopacity_test

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync/atomic"
	"testing"
	"time"

	"duopacity/internal/checkfarm"
	"duopacity/internal/gen"
	"duopacity/internal/harness"
	"duopacity/internal/history"
	"duopacity/internal/koenig"
	"duopacity/internal/litmus"
	"duopacity/internal/recorder"
	"duopacity/internal/spec"
	"duopacity/internal/stm"
	"duopacity/internal/stm/engines"
)

// --- F1..F6: the paper's figures -----------------------------------------

// BenchmarkFig1_DUOpacity checks the paper's Figure 1 (du-opaque, witness
// T2,T3,T1,T4).
func BenchmarkFig1_DUOpacity(b *testing.B) {
	h := litmus.Figure1()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !spec.CheckDUOpacity(h).OK {
			b.Fatal("figure 1 must be du-opaque")
		}
	}
}

// BenchmarkFig2_PrefixFamily checks ever-longer members of the Figure 2
// family (Proposition 1): cost of deciding du-opacity as the reader chain
// grows.
func BenchmarkFig2_PrefixFamily(b *testing.B) {
	for _, j := range []int{4, 8, 16, 32} {
		h := litmus.Figure2Family(j)
		b.Run(fmt.Sprintf("j=%d", j), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !spec.CheckDUOpacity(h).OK {
					b.Fatal("family member must be du-opaque")
				}
			}
		})
	}
}

// BenchmarkFig3_FinalState re-derives Figure 3: H is final-state opaque,
// its 4-event prefix is not.
func BenchmarkFig3_FinalState(b *testing.B) {
	h := litmus.Figure3()
	hp := h.Prefix(litmus.Figure3PrefixLen)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !spec.CheckFinalStateOpacity(h).OK {
			b.Fatal("H must be final-state opaque")
		}
		if spec.CheckFinalStateOpacity(hp).OK {
			b.Fatal("H' must not be final-state opaque")
		}
	}
}

// BenchmarkFig4_OpacityVsDU re-derives Proposition 2 on Figure 4: opaque
// (prefix-by-prefix final-state check) but not du-opaque (static
// deferred-update refutation).
func BenchmarkFig4_OpacityVsDU(b *testing.B) {
	h := litmus.Figure4()
	b.Run("opacity", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !spec.CheckOpacity(h).OK {
				b.Fatal("figure 4 must be opaque")
			}
		}
	})
	b.Run("du-opacity", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if spec.CheckDUOpacity(h).OK {
				b.Fatal("figure 4 must not be du-opaque")
			}
		}
	})
}

// BenchmarkFig5_RCO re-derives the Figure 5 separation from the
// read-commit-order definition of [6].
func BenchmarkFig5_RCO(b *testing.B) {
	h := litmus.Figure5()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !spec.CheckDUOpacity(h).OK || spec.CheckRCO(h).OK {
			b.Fatal("figure 5: want du-opaque and not RCO")
		}
	}
}

// BenchmarkFig6_TMS2 re-derives the Figure 6 separation from TMS2.
func BenchmarkFig6_TMS2(b *testing.B) {
	h := litmus.Figure6()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !spec.CheckDUOpacity(h).OK || spec.CheckTMS2(h).OK {
			b.Fatal("figure 6: want du-opaque and not TMS2")
		}
	}
}

// --- L1/L4/T5: the safety machinery --------------------------------------

func benchHistory(seed int64) *history.History {
	return gen.DUOpaque(gen.Config{
		Txns: 8, Objects: 3, OpsPerTxn: 3, ReadFraction: 0.5,
		PAbort: 0.2, PNoTryC: 0.1, Relax: 5, Seed: seed,
	})
}

// BenchmarkLemma1_Restriction measures deriving prefix serializations from
// a full serialization (Lemma 1's construction across all prefixes).
func BenchmarkLemma1_Restriction(b *testing.B) {
	h := benchHistory(1)
	v := spec.CheckDUOpacity(h)
	if !v.OK {
		b.Fatal("generated history must be du-opaque")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for p := 0; p <= h.Len(); p += 4 {
			if _, err := koenig.RestrictSerialization(h, v.Serialization, p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkTheorem5_ChainExtension measures building the König graph G_H
// (Theorem 5's object) over a complete du-opaque history.
func BenchmarkTheorem5_ChainExtension(b *testing.B) {
	h := benchHistory(2)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g, err := koenig.BuildGraph(h, 4)
		if err != nil {
			b.Fatal(err)
		}
		if g.DeepestPath() == nil {
			b.Fatal("no path")
		}
	}
}

// --- T10/T11: the comparison theorems -------------------------------------

// BenchmarkTheorem10_BothCheckers measures deciding du-opacity vs opacity
// on the same histories (du-opacity decides once; opacity re-checks every
// response prefix).
func BenchmarkTheorem10_BothCheckers(b *testing.B) {
	hs := make([]*history.History, 8)
	for i := range hs {
		hs[i] = benchHistory(int64(10 + i))
	}
	b.Run("du-opacity", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !spec.CheckDUOpacity(hs[i%len(hs)]).OK {
				b.Fatal("must be du-opaque")
			}
		}
	})
	b.Run("opacity", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !spec.CheckOpacity(hs[i%len(hs)]).OK {
				b.Fatal("must be opaque")
			}
		}
	})
}

// BenchmarkTheorem11_FastPath compares the exact du-opacity search with
// the unique-writes fast path (forced reads-from edges) on unique-writes
// histories — and shows opacity checking collapsing to one du check under
// Theorem 11.
func BenchmarkTheorem11_FastPath(b *testing.B) {
	hs := make([]*history.History, 8)
	for i := range hs {
		hs[i] = gen.DUOpaque(gen.Config{
			Txns: 10, Objects: 3, OpsPerTxn: 3, UniqueWrites: true,
			PAbort: 0.1, Relax: 5, Seed: int64(20 + i),
		})
	}
	b.Run("exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !spec.CheckDUOpacity(hs[i%len(hs)]).OK {
				b.Fatal("must be du-opaque")
			}
		}
	})
	b.Run("fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if !spec.CheckDUOpacityFast(hs[i%len(hs)]).OK {
				b.Fatal("must be du-opaque")
			}
		}
	})
	b.Run("opacity-via-theorem11", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h := hs[i%len(hs)]
			if !spec.UniqueWrites(h) || !spec.CheckDUOpacityFast(h).OK {
				b.Fatal("theorem 11 route failed")
			}
		}
	})
}

// --- P1: checker scaling ---------------------------------------------------

// BenchmarkCheckerScaling measures the exact du-opacity checker as the
// number of transactions grows (exponential worst case, pruned in
// practice).
func BenchmarkCheckerScaling(b *testing.B) {
	for _, n := range []int{4, 6, 8, 10, 12} {
		h := gen.DUOpaque(gen.Config{
			Txns: n, Objects: 3, OpsPerTxn: 3, ReadFraction: 0.5, Relax: 5, Seed: int64(n),
		})
		b.Run(fmt.Sprintf("txns=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if !spec.CheckDUOpacity(h).OK {
					b.Fatal("must be du-opaque")
				}
			}
		})
	}
}

// BenchmarkVerifySerialization measures the search-free witness validator.
func BenchmarkVerifySerialization(b *testing.B) {
	h := benchHistory(3)
	v := spec.CheckDUOpacity(h)
	if !v.OK {
		b.Fatal("must be du-opaque")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := spec.VerifySerialization(h, v.Serialization); err != nil {
			b.Fatal(err)
		}
	}
}

// --- P2/S1/S2: engines -----------------------------------------------------

// BenchmarkEngines measures committed read-modify-write transactions per
// second per engine under parallel load.
func BenchmarkEngines(b *testing.B) {
	for _, name := range engines.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			eng, err := engines.New(name, 16)
			if err != nil {
				b.Fatal(err)
			}
			var vals atomic.Int64
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					i++
					obj := i % 16
					err := stm.AtomicallyN(eng, 1_000_000, func(tx stm.Txn) error {
						v, err := tx.Read(obj)
						if err != nil {
							return err
						}
						return tx.Write((obj+1)%16, v+vals.Add(1))
					})
					if err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkEnginesReadOnly measures read-only transactions (8 reads).
func BenchmarkEnginesReadOnly(b *testing.B) {
	for _, name := range engines.Names() {
		name := name
		b.Run(name, func(b *testing.B) {
			eng, err := engines.New(name, 16)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					err := stm.AtomicallyN(eng, 1_000_000, func(tx stm.Txn) error {
						for o := 0; o < 8; o++ {
							if _, err := tx.Read(o); err != nil {
								return err
							}
						}
						return nil
					})
					if err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkEngineTxnAllocs reports the steady-state allocation cost of
// one transaction per engine, read-only and read-modify-write — the
// gate behind the PR's hot-path surgery (pooled descriptors, slice
// read/write sets). Allocations are per-op, so the read-only tl2,
// norec and pdur rows must report 0 allocs/op.
func BenchmarkEngineTxnAllocs(b *testing.B) {
	for _, name := range engines.Names() {
		name := name
		b.Run(name+"/readonly", func(b *testing.B) {
			eng, err := engines.New(name, 16)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				err := stm.AtomicallyN(eng, 1_000_000, func(tx stm.Txn) error {
					for o := 0; o < 4; o++ {
						if _, err := tx.Read(o); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(name+"/rmw", func(b *testing.B) {
			eng, err := engines.New(name, 16)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				err := stm.AtomicallyN(eng, 1_000_000, func(tx stm.Txn) error {
					v, err := tx.Read(i % 16)
					if err != nil {
						return err
					}
					return tx.Write((i+1)%16, v+1)
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestReadOnlyTxnZeroAllocs is the CI gate for the pooled-descriptor
// and slice-read-set rewrite: once the pools are warm, a read-only
// transaction on tl2, norec and pdur performs zero engine-side heap
// allocations. A regression to map read sets, per-Begin descriptor
// allocation or sort.Ints in commit fails this immediately.
func TestReadOnlyTxnZeroAllocs(t *testing.T) {
	for _, name := range []string{"tl2", "norec", "pdur"} {
		eng, err := engines.New(name, 16)
		if err != nil {
			t.Fatal(err)
		}
		readOnly := func() {
			err := stm.AtomicallyN(eng, 1_000_000, func(tx stm.Txn) error {
				for o := 0; o < 4; o++ {
					if _, err := tx.Read(o); err != nil {
						return err
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		// Warm the descriptor pool and the read-set backing arrays.
		for i := 0; i < 100; i++ {
			readOnly()
		}
		if avg := testing.AllocsPerRun(200, readOnly); avg != 0 {
			t.Errorf("%s: read-only txn allocates %.2f objects/op, want 0", name, avg)
		}
	}
}

// BenchmarkRecorderOverhead compares a raw TL2 transaction with the same
// transaction under the history recorder.
func BenchmarkRecorderOverhead(b *testing.B) {
	b.Run("raw", func(b *testing.B) {
		eng, _ := engines.New("tl2", 4)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := stm.Atomically(eng, func(tx stm.Txn) error {
				v, err := tx.Read(0)
				if err != nil {
					return err
				}
				return tx.Write(1, v+1)
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recorded", func(b *testing.B) {
		eng, _ := engines.New("tl2", 4)
		rec := recorder.New(eng)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := rec.Atomically(func(tx *recorder.Txn) error {
				v, err := tx.Read(0)
				if err != nil {
					return err
				}
				return tx.Write(1, v+1)
			}); err != nil {
				b.Fatal(err)
			}
			if i%4096 == 0 {
				rec.Reset() // keep the event log bounded
			}
		}
	})
}

// BenchmarkCertifyEpisode measures one full certification round — run a
// small recorded workload on a fresh engine and decide du-opacity — for a
// deferred-update engine and for the pessimistic one.
func BenchmarkCertifyEpisode(b *testing.B) {
	for _, name := range []string{"tl2", "ple"} {
		name := name
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				h, _, err := harness.RunRecorded(harness.Workload{
					Engine: name, Objects: 4, Goroutines: 4,
					TxnsPerGoroutine: 2, OpsPerTxn: 3, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = spec.CheckDUOpacity(h, spec.WithNodeLimit(2_000_000))
			}
		})
	}
}

// --- Checkfarm: the parallel certification pipeline ------------------------

// BenchmarkCheckfarmCertify measures a 30-episode certification of the
// tl2 engine (deterministic interleaved episodes, so every jobs setting
// does byte-identical work) sharded across 1, 2 and 4 workers. Episodes
// are independent CPU-bound units, so on a machine with >= 4 cores the
// jobs=4 case completes the same certification in under half the jobs=1
// wall-clock time; on fewer cores the speedup tracks the core count.
func BenchmarkCheckfarmCertify(b *testing.B) {
	cfg := harness.CertConfig{
		Workload: harness.Workload{
			Engine:           "tl2",
			Objects:          4,
			Goroutines:       6,
			TxnsPerGoroutine: 3,
			OpsPerTxn:        5,
			ReadFraction:     0.5,
			Seed:             21,
		},
		Episodes:    30,
		Interleaved: true,
	}
	criteria := []spec.Criterion{spec.DUOpacity, spec.FinalStateOpacity}
	for _, jobs := range []int{1, 2, 4} {
		jobs := jobs
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				stats, err := checkfarm.Certify(context.Background(), cfg, criteria, jobs)
				if err != nil {
					b.Fatal(err)
				}
				if stats.Episodes+stats.Skipped != cfg.Episodes {
					b.Fatalf("lost episodes: %d+%d != %d", stats.Episodes, stats.Skipped, cfg.Episodes)
				}
			}
		})
	}
}

// BenchmarkCheckfarmCheckBatch measures batch history checking (the
// ducheck -parallel path) across worker counts.
func BenchmarkCheckfarmCheckBatch(b *testing.B) {
	hs := make([]*history.History, 24)
	for i := range hs {
		hs[i] = gen.DUOpaque(gen.Config{Txns: 8, Objects: 3, OpsPerTxn: 3, Relax: 5, Seed: int64(40 + i)})
	}
	criteria := []spec.Criterion{spec.DUOpacity, spec.FinalStateOpacity}
	for _, jobs := range []int{1, 4} {
		jobs := jobs
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := checkfarm.CheckBatch(context.Background(), hs, criteria, jobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkShrinkViolation measures greedy counterexample minimization on
// planted deferred-update violations.
func BenchmarkShrinkViolation(b *testing.B) {
	var seeds []*history.History
	for s := int64(1); len(seeds) < 4 && s < 64; s++ {
		h := gen.DUOpaque(gen.Config{
			Txns: 10, Objects: 3, OpsPerTxn: 3, UniqueWrites: true, Relax: 5, Seed: s,
		})
		m, ok := gen.MutateFutureRead(h, rand.New(rand.NewSource(s)))
		if !ok {
			continue
		}
		if v := spec.CheckDUOpacity(m); !v.OK && !v.Undecided {
			seeds = append(seeds, m)
		}
	}
	if len(seeds) == 0 {
		b.Fatal("no violating seed histories")
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m := gen.ShrinkViolation(seeds[i%len(seeds)], spec.DUOpacity)
		if m.Len() > seeds[i%len(seeds)].Len() {
			b.Fatal("shrinking grew the history")
		}
	}
}

// BenchmarkHistoryAnalysis measures the core model: event validation and
// per-transaction analysis.
func BenchmarkHistoryAnalysis(b *testing.B) {
	evs := benchHistory(4).Events()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := history.FromEvents(evs); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Online monitoring and graph refutation (our extensions) --------------

// BenchmarkMonitorOnline compares streaming verification (witness reuse)
// against naive re-checking from scratch at every response event.
func BenchmarkMonitorOnline(b *testing.B) {
	h := gen.DUOpaque(gen.Config{Txns: 10, Objects: 3, OpsPerTxn: 3, Relax: 4, Seed: 9})
	evs := h.Events()
	b.Run("monitor", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m, err := spec.NewMonitor(spec.DUOpacity)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range evs {
				if _, err := m.Append(e); err != nil {
					b.Fatal(err)
				}
			}
			if !m.Verdict().OK {
				b.Fatal("history must be du-opaque")
			}
		}
	})
	b.Run("recheck-each-response", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for p := 1; p <= len(evs); p++ {
				if evs[p-1].Kind != history.Res {
					continue
				}
				if !spec.CheckDUOpacity(h.Prefix(p)).OK {
					b.Fatal("prefix must be du-opaque")
				}
			}
		}
	})
}

// BenchmarkStreamIngest measures the streaming ingestion core: appending
// one event (validation + per-transaction view + incremental index)
// against rebuilding the whole analysis with FromEvents at every event,
// the pattern the pre-stream monitor paid. The stream's per-event cost is
// O(1) amortized; the rebuild's grows linearly with the prefix.
func BenchmarkStreamIngest(b *testing.B) {
	evs := gen.DUOpaque(gen.Config{Txns: 10, Objects: 3, OpsPerTxn: 3, Relax: 4, Seed: 9}).Events()
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s := history.NewStream()
			for _, e := range evs {
				if err := s.Append(e); err != nil {
					b.Fatal(err)
				}
			}
			if s.Live().Index().NumTxns() == 0 {
				b.Fatal("empty index")
			}
		}
	})
	b.Run("fromevents-per-event", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for p := 1; p <= len(evs); p++ {
				if _, err := history.FromEvents(evs[:p]); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// TestMonitorBeatsNaiveRecheckSmoke is the CI gate for the streaming
// monitor redesign: at the BenchmarkMonitorOnline stream length, the
// monitor must beat re-running the batch checker from scratch at every
// response event. Before the stream core the monitor lost this race
// (EXPERIMENTS.md, PR 2); the incremental witness path wins it by ~5x,
// so the comparison has a wide margin against machine noise.
func TestMonitorBeatsNaiveRecheckSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	h := gen.DUOpaque(gen.Config{Txns: 10, Objects: 3, OpsPerTxn: 3, Relax: 4, Seed: 9})
	evs := h.Events()
	monitor := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m, err := spec.NewMonitor(spec.DUOpacity)
			if err != nil {
				b.Fatal(err)
			}
			for _, e := range evs {
				if _, err := m.Append(e); err != nil {
					b.Fatal(err)
				}
			}
			if !m.Verdict().OK {
				b.Fatal("history must be du-opaque")
			}
		}
	})
	recheck := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for p := 1; p <= len(evs); p++ {
				if evs[p-1].Kind != history.Res {
					continue
				}
				if !spec.CheckDUOpacity(h.Prefix(p)).OK {
					b.Fatal("prefix must be du-opaque")
				}
			}
		}
	})
	t.Logf("monitor %v/stream, recheck-each-response %v/stream", monitor.NsPerOp(), recheck.NsPerOp())
	// The real gap is ~6x; requiring only 2x keeps the gate meaningful
	// while tolerating noisy shared CI runners.
	if 2*monitor.NsPerOp() >= recheck.NsPerOp() {
		t.Fatalf("monitor (%d ns/stream) does not beat naive rechecking (%d ns/stream) with a 2x margin",
			monitor.NsPerOp(), recheck.NsPerOp())
	}
}

// longSeqStream builds n sequential committed read-write transactions
// round-robin over objs objects — the canonical long monitored stream
// (du-opaque by construction, every transaction t-completes).
func longSeqStream(n, objs int) []history.Event {
	evs := make([]history.Event, 0, 6*n)
	last := make([]history.Value, objs)
	for k := 1; k <= n; k++ {
		oi := k % objs
		obj := history.Var(fmt.Sprintf("X%d", oi))
		evs = append(evs,
			history.Event{Kind: history.Inv, Op: history.OpRead, Txn: history.TxnID(k), Obj: obj},
			history.Event{Kind: history.Res, Op: history.OpRead, Txn: history.TxnID(k), Obj: obj, Val: last[oi], Out: history.OutOK},
			history.Event{Kind: history.Inv, Op: history.OpWrite, Txn: history.TxnID(k), Obj: obj, Arg: history.Value(k)},
			history.Event{Kind: history.Res, Op: history.OpWrite, Txn: history.TxnID(k), Obj: obj, Arg: history.Value(k), Out: history.OutOK},
			history.Event{Kind: history.Inv, Op: history.OpTryCommit, Txn: history.TxnID(k)},
			history.Event{Kind: history.Res, Op: history.OpTryCommit, Txn: history.TxnID(k), Out: history.OutCommit},
		)
		last[oi] = history.Value(k)
	}
	return evs
}

// BenchmarkMonitorLongStream is the gate for the lifted 64-transaction
// ceiling and windowed retirement: a monitor with retirement consumes a
// long stream at flat cost per event — ns/event must not grow between
// txns=1000 and txns=10000 — with every response decided OK, where the
// old monitor went permanently undecided at transaction 65. The reported
// ns/event metric makes the flatness visible across the sub-benchmarks.
// The tms2/ and rco/ variants run the same stream under the
// conflict-order monitors: their incremental edge maintenance must ride
// the same flat curve (BENCH_PR10.json records the per-event claims; the
// du sub-benchmark names are unchanged from BENCH_PR6.json).
func BenchmarkMonitorLongStream(b *testing.B) {
	for _, cr := range []struct {
		prefix string
		c      spec.Criterion
	}{
		{"", spec.DUOpacity},
		{"tms2/", spec.TMS2},
		{"rco/", spec.RCO},
	} {
		for _, n := range []int{1000, 10_000} {
			evs := longSeqStream(n, 4)
			b.Run(fmt.Sprintf("%stxns=%d", cr.prefix, n), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					m, err := spec.NewMonitor(cr.c, spec.WithRetirement(32))
					if err != nil {
						b.Fatal(err)
					}
					for _, e := range evs {
						if _, err := m.Append(e); err != nil {
							b.Fatal(err)
						}
					}
					if v := m.Verdict(); !v.OK || v.Undecided {
						b.Fatalf("stream must stay decided OK: %+v", v)
					}
					if m.Retired() == 0 {
						b.Fatal("retirement never fired")
					}
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(len(evs)), "ns/event")
			})
		}
	}
}

// TestMonitorLongStreamSmoke is the CI gate behind BenchmarkMonitorLongStream:
// a 10k-transaction stream is decided OK at every response, the live index
// stays bounded by the retirement window, and the per-event cost is flat —
// the last quarter of the stream may not cost more than 3x the second
// quarter (the first quarter is excluded as warm-up; a monitor whose cost
// grows with history length fails by a wide margin, the pre-retirement
// monitor's last quarter being >100x its second). The same gate runs for
// the TMS2 and RCO monitors: incremental edge maintenance must not bend
// the curve — a whole-history edge rebuild per event would fail it by
// orders of magnitude.
func TestMonitorLongStreamSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	const (
		n      = 10_000
		window = 32
	)
	evs := longSeqStream(n, 4)
	for _, c := range []spec.Criterion{spec.DUOpacity, spec.TMS2, spec.RCO} {
		t.Run(c.String(), func(t *testing.T) {
			m, err := spec.NewMonitor(c, spec.WithRetirement(window))
			if err != nil {
				t.Fatal(err)
			}
			quarter := len(evs) / 4
			var qdur [4]time.Duration
			for q := 0; q < 4; q++ {
				chunk := evs[q*quarter : (q+1)*quarter]
				start := time.Now()
				for i, e := range chunk {
					v, err := m.Append(e)
					if err != nil {
						t.Fatalf("quarter %d event %d: %v", q, i, err)
					}
					if !v.OK || v.Undecided {
						t.Fatalf("quarter %d event %d: verdict %+v, want decided OK", q, i, v)
					}
				}
				qdur[q] = time.Since(start)
				if live := m.LiveTxns(); live > 2*window+1 {
					t.Fatalf("quarter %d: %d live transactions, want <= %d", q, live, 2*window+1)
				}
			}
			t.Logf("quarter durations: %v (live=%d retired=%d)", qdur, m.LiveTxns(), m.Retired())
			if m.Retired() < n-2*window-1 {
				t.Fatalf("Retired = %d, want nearly all of %d", m.Retired(), n)
			}
			if qdur[3] > 3*qdur[1] {
				t.Fatalf("per-event cost is not flat: quarter 4 took %v, quarter 2 took %v", qdur[3], qdur[1])
			}
		})
	}
}

// TestMonitorOnlineBenchGate holds BENCH_PR10.json to the PR's claim:
// incremental conflict-order edge maintenance keeps the TMS2 and RCO
// monitors within 2x of the du-opacity monitor's per-event cost on the
// 1k-transaction long-stream bench (recorded arithmetic, deterministic),
// and a fresh re-measurement of the tms2/du ratio stays under the loose
// 4x margin — wide enough for noisy shared runners, tight enough that a
// whole-history edge rebuild per event (O(txns^2) total) fails it.
func TestMonitorOnlineBenchGate(t *testing.T) {
	raw, err := os.ReadFile("BENCH_PR10.json")
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Gates struct {
			TMS2RecordedMax float64 `json:"tms2_vs_du_ns_per_event_recorded_max"`
			RCORecordedMax  float64 `json:"rco_vs_du_ns_per_event_recorded_max"`
			TMS2FreshMax    float64 `json:"tms2_vs_du_ns_per_event_fresh_max"`
		} `json:"gates"`
		Benchmarks map[string]struct {
			NsPerEvent float64 `json:"ns_per_event"`
		} `json:"benchmarks"`
	}
	if err := json.Unmarshal(raw, &rec); err != nil {
		t.Fatal(err)
	}
	perEvent := func(name string) float64 {
		b, ok := rec.Benchmarks[name]
		if !ok || b.NsPerEvent <= 0 {
			t.Fatalf("BENCH_PR10.json missing %s ns_per_event", name)
		}
		return b.NsPerEvent
	}
	du := perEvent("BenchmarkMonitorLongStream/txns=1000")
	for name, max := range map[string]float64{
		"BenchmarkMonitorLongStream/tms2/txns=1000": rec.Gates.TMS2RecordedMax,
		"BenchmarkMonitorLongStream/rco/txns=1000":  rec.Gates.RCORecordedMax,
	} {
		if max <= 0 {
			t.Fatal("BENCH_PR10.json gates missing or zero")
		}
		if ratio := perEvent(name) / du; ratio > max {
			t.Errorf("recorded %s is %.2fx du-opacity per event, gate is %.1fx", name, ratio, max)
		}
	}

	if testing.Short() {
		t.Skip("fresh re-measurement skipped in -short mode")
	}
	evs := longSeqStream(1000, 4)
	measure := func(c spec.Criterion) time.Duration {
		best := time.Duration(1<<63 - 1)
		for round := 0; round < 3; round++ {
			m, err := spec.NewMonitor(c, spec.WithRetirement(32))
			if err != nil {
				t.Fatal(err)
			}
			start := time.Now()
			for _, e := range evs {
				if _, err := m.Append(e); err != nil {
					t.Fatal(err)
				}
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	duFresh, tms2Fresh := measure(spec.DUOpacity), measure(spec.TMS2)
	ratio := float64(tms2Fresh) / float64(duFresh)
	t.Logf("fresh 1k-txn stream: du %v, tms2 %v (%.2fx)", duFresh, tms2Fresh, ratio)
	if ratio > rec.Gates.TMS2FreshMax {
		t.Errorf("fresh tms2 per-event cost is %.2fx du-opacity, gate is %.1fx", ratio, rec.Gates.TMS2FreshMax)
	}
}

// BenchmarkMonitorOnlineCertify measures certify-while-recording: the
// full interleaved episode with the monitor attached to the recorder's
// tap, against recording the episode and batch-checking it afterwards.
// Online certification checks at every response event where the batch
// pipeline checks once, so it costs more per clean episode; what it buys
// is detection latency — a violation is identified at the event that
// caused it, while the execution is still running — and the gap (~1.7x,
// EXPERIMENTS.md) is the price of that capability, down from the
// O(events) multiple the pre-stream monitor would have paid.
func BenchmarkMonitorOnlineCertify(b *testing.B) {
	w := harness.Workload{
		Engine: "tl2", Objects: 4, Goroutines: 4,
		TxnsPerGoroutine: 2, OpsPerTxn: 3, Seed: 7,
	}
	b.Run("online", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r, err := harness.RunMonitored(w, spec.DUOpacity, 2_000_000, true)
			if err != nil {
				b.Fatal(err)
			}
			if !r.Verdict.OK {
				b.Fatal("tl2 episode must certify")
			}
		}
	})
	b.Run("record-then-check", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h, _, err := harness.RunInterleaved(w)
			if err != nil {
				b.Fatal(err)
			}
			if !spec.CheckDUOpacity(h, spec.WithNodeLimit(2_000_000)).OK {
				b.Fatal("tl2 episode must certify")
			}
		}
	})
}

// BenchmarkGraphRefutation measures the two search-free refutation paths
// on a real-time inversion buried under w independent background writers:
// the precedence-graph cycle (CheckDUOpacityGraph) and the deferred-update
// static filter inside the exact checker. A notable negative finding of
// this reproduction: mandatory-cycle violations of du-opacity are always
// also refuted by the static filter, because a reads-from edge pointing
// "backwards in time" requires the writer's tryC invocation to precede the
// read's response, which a real-time inversion makes impossible — so the
// graph path's value is the explicit cycle it reports, not asymptotics.
func BenchmarkGraphRefutation(b *testing.B) {
	for _, w := range []int{4, 8, 16} {
		h := inversionWithBackground(w)
		b.Run(fmt.Sprintf("graph/w=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if spec.CheckDUOpacityGraph(h).OK {
					b.Fatal("instance must be refuted")
				}
			}
		})
		b.Run(fmt.Sprintf("search/w=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if spec.CheckDUOpacity(h).OK {
					b.Fatal("instance must be refuted")
				}
			}
		})
	}
}

// inversionWithBackground builds w overlapping committed background
// writers plus a reader that fully precedes the writer of the value it
// read (the real-time inversion of the litmus registry).
func inversionWithBackground(w int) *history.History {
	b := history.NewBuilder()
	for k := 0; k < w; k++ {
		b.InvWrite(history.TxnID(10+k), history.Var(fmt.Sprintf("B%d", k)), history.Value(1000+k))
	}
	for k := 0; k < w; k++ {
		b.ResWrite(history.TxnID(10+k), history.Var(fmt.Sprintf("B%d", k)), history.Value(1000+k))
		b.Commit(history.TxnID(10 + k))
	}
	b.Read(1, "X", 1).Commit(1)
	b.Write(2, "X", 1).Commit(2)
	return b.History()
}

// --- Schedule exploration: per-plan proofs ---------------------------------

// BenchmarkExplorePlan measures the exhaustive schedule explorer on the
// litmus plans, pruned (sleep sets + symmetry + prefix-closure cut, the
// default) versus naive (raw schedule space, every schedule run to
// completion): the per-plan cost of turning sampled certification into a
// proof, and what the prunings buy. EXPERIMENTS.md records the
// schedules-explored reduction alongside these timings.
func BenchmarkExplorePlan(b *testing.B) {
	plans := []struct {
		name   string
		engine string
		src    string
	}{
		{"litmus/tl2", "tl2", "w0\nr0 r0"},
		{"litmus/ple", "ple", "w0\nr0 r0"},
		{"sym3/tl2", "tl2", "r0 w0\nr0 w0\nr0 w0"},
		{"writes/tl2", "tl2", "w0 w1 w0\nw1 w0 w1"},
	}
	for _, tc := range plans {
		p := stm.MustParsePlan(tc.src)
		b.Run(tc.name+"/pruned", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				r, err := harness.ExplorePlan(tc.engine, p, harness.ExploreConfig{})
				if err != nil {
					b.Fatal(err)
				}
				if r.Outcome == harness.BudgetExhausted {
					b.Fatal("plan must be decidable")
				}
			}
		})
		b.Run(tc.name+"/naive", func(b *testing.B) {
			b.ReportAllocs()
			cfg := harness.ExploreConfig{DisableSleepSets: true, DisableSymmetry: true, DisablePrefixCut: true}
			for i := 0; i < b.N; i++ {
				r, err := harness.ExplorePlan(tc.engine, p, cfg)
				if err != nil {
					b.Fatal(err)
				}
				if r.Outcome == harness.BudgetExhausted {
					b.Fatal("plan must be decidable")
				}
			}
		})
	}
}

// BenchmarkCheckfarmExplore measures the sharded exploration of a batch
// of seeded plans — the farm's proof mode (checkfarm.ExplorePlans).
func BenchmarkCheckfarmExplore(b *testing.B) {
	var plans []stm.Plan
	for i := 0; i < 8; i++ {
		plans = append(plans, harness.PlanOf(harness.Workload{
			Engine: "tl2", Objects: 2, Goroutines: 2,
			TxnsPerGoroutine: 1, OpsPerTxn: 3, ReadFraction: 0.5, Seed: int64(i + 1),
		}))
	}
	for _, jobs := range []int{1, 4} {
		b.Run(fmt.Sprintf("jobs=%d", jobs), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := checkfarm.ExplorePlans(context.Background(), "tl2", plans, harness.ExploreConfig{}, jobs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
