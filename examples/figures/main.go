// Figures: rebuilds the paper's two central counter-examples with the
// public builder API and walks through why each criterion accepts or
// rejects them — Figure 4 (opaque but not du-opaque, Proposition 2) and
// Figure 6 (du-opaque but not TMS2).
package main

import (
	"fmt"

	"duopacity"
)

func main() {
	figure4()
	fmt.Println()
	figure6()
}

func figure4() {
	fmt.Println("=== Figure 4: opaque, but not du-opaque (Proposition 2) ===")
	// T1 writes X=1 and its tryC eventually returns A;
	// T2 reads 1 while T1's tryC is pending;
	// T3 rewrites X=1 and commits before T1's abort.
	b := duopacity.NewBuilder()
	b.Write(1, "X", 1)
	b.InvTryCommit(1)
	b.Read(2, "X", 1)
	b.Write(3, "X", 1)
	b.Commit(3)
	b.ResCommitAbort(1)
	h := b.History()
	fmt.Print(h)

	op := duopacity.CheckOpacity(h)
	fmt.Println("opacity:   ", op)
	fmt.Println("           every prefix has a final-state serialization: while T1's tryC is")
	fmt.Println("           pending a completion may commit it; once T1 aborts, T3 has committed")
	fmt.Println("           the same value, so T2's read stays explainable — prefix by prefix.")

	du := duopacity.CheckDUOpacity(h)
	fmt.Println("du-opacity:", du)
	fmt.Println("           T2's read returned 1 before ANY writer of 1 invoked tryC; in its")
	fmt.Println("           local serialization the read can only see T_0's initial 0.")
}

func figure6() {
	fmt.Println("=== Figure 6: du-opaque, but not TMS2 ===")
	// T1: R(X)->0, W(X,1), commits; T2: R(X)->0 (before C1), W(Y,1),
	// commits after C1.
	b := duopacity.NewBuilder()
	b.Read(1, "X", 0)
	b.Write(1, "X", 1)
	b.Read(2, "X", 0)
	b.Commit(1)
	b.Write(2, "Y", 1)
	b.Commit(2)
	h := b.History()
	fmt.Print(h)

	du := duopacity.CheckDUOpacity(h)
	fmt.Println("du-opacity:", du)
	fmt.Println("           serializing T2 before T1 makes both reads of 0 legal; nothing in")
	fmt.Println("           Definition 3 orders the two commits.")

	tms2 := duopacity.Check(h, duopacity.TMS2)
	fmt.Println("TMS2:      ", tms2)
	fmt.Println("           X is in Wset(T1) ∩ Rset(T2) and T1's tryC response precedes T2's")
	fmt.Println("           tryC invocation, so TMS2 forces T1 <_S T2 — but then R2(X)->0 would")
	fmt.Println("           read past T1's committed X=1.")
}
