// Quickstart: build a history by hand, check it against the paper's
// criteria, then run a real STM transaction and certify what it did.
package main

import (
	"fmt"
	"log"

	"duopacity"
)

func main() {
	// 1. A history in the paper's model: T1 writes X=1 and commits; T2
	//    reads X=1 *before* T1 invoked tryC. This is the deferred-update
	//    violation at the heart of the paper: final-state opacity accepts
	//    it (T1 does commit), du-opacity does not.
	b := duopacity.NewBuilder()
	b.InvWrite(1, "X", 1)
	b.ResWrite(1, "X", 1)
	b.Read(2, "X", 1) // responds before tryC_1 is invoked
	b.Commit(2)
	b.Commit(1)
	h := b.History()

	fmt.Println("history:")
	fmt.Print(h)
	fmt.Println("final-state opacity:", duopacity.CheckFinalStateOpacity(h))
	fmt.Println("du-opacity:         ", duopacity.CheckDUOpacity(h))

	// 2. The same pattern through a real deferred-update STM: TL2 never
	//    lets T2 observe the uncommitted write, so the recorded history is
	//    du-opaque.
	eng, err := duopacity.NewEngine("tl2", 1)
	if err != nil {
		log.Fatal(err)
	}
	rec := duopacity.NewRecorder(eng)

	w := rec.Begin()
	if err := w.Write(0, 1); err != nil {
		log.Fatal(err)
	}
	r := rec.Begin()
	v, err := r.Read(0) // TL2 returns the committed value: 0
	if err != nil {
		log.Fatal(err)
	}
	if err := r.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nTL2: concurrent reader saw %d (the committed state)\n", v)
	fmt.Println("recorded history verdict:", duopacity.CheckDUOpacity(rec.History()))
}
