// Monitor: online checking of a live execution through the streaming
// ingestion surface. A du-opacity monitor is attached to the recorder's
// tap, so every event is certified the moment the engine produces it —
// no replay, no batch re-check. A writer and a reader run against the
// pessimistic in-place engine; the monitor latches the violation at the
// exact response event where the reader observed a value whose writer
// had not invoked tryC — and, thanks to prefix closure (Corollary 2),
// the verdict is final no matter how the execution continues.
package main

import (
	"fmt"
	"log"

	"duopacity"
)

func main() {
	eng, err := duopacity.NewEngine("ple", 1)
	if err != nil {
		log.Fatal(err)
	}
	rec := duopacity.NewRecorder(eng)

	// The live monitor: certification happens while the run is in
	// flight. The tap runs under the recorder's capture mutex, which
	// discharges the monitor's single-goroutine requirement.
	m, err := duopacity.NewMonitor(duopacity.DUOpacity)
	if err != nil {
		log.Fatal(err)
	}
	idx := 0
	rec.Tap(func(e duopacity.Event) {
		v, err := m.Append(e)
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if !v.OK {
			status = "VIOLATED"
		}
		fmt.Printf("  %2d  %-26v %s\n", idx, e, status)
		idx++
	})

	// The Figure-4-shaped run: write, dirty read, reader commits, writer
	// commits. Every line below is printed by the tap as it happens.
	fmt.Println("running the ple execution under the live du-opacity monitor:")
	w := rec.Begin()
	if err := w.Write(0, 42); err != nil {
		log.Fatal(err)
	}
	r := rec.Begin()
	if _, err := r.Read(0); err != nil {
		log.Fatal(err)
	}
	if err := r.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nfinal verdict: %s\n", m.Verdict())
	fmt.Println("\nper-read analysis:")
	for _, ri := range duopacity.AnalyzeReads(m.History()) {
		fmt.Printf("  %s\n", ri)
	}
	searches, hits := m.Stats()
	fmt.Printf("\nmonitor cost: %d full searches, %d incremental witness reuses\n", searches, hits)
}
