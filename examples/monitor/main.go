// Monitor: online checking of a live execution. A writer and a reader run
// against the pessimistic in-place engine while every recorded event is
// fed to a du-opacity monitor; the monitor latches the violation at the
// exact response event where the reader observed a value whose writer had
// not invoked tryC — and, thanks to prefix closure (Corollary 2), the
// verdict is final no matter how the execution continues.
package main

import (
	"fmt"
	"log"

	"duopacity"
)

func main() {
	eng, err := duopacity.NewEngine("ple", 1)
	if err != nil {
		log.Fatal(err)
	}
	rec := duopacity.NewRecorder(eng)

	// The Figure-4-shaped run: write, dirty read, reader commits, writer
	// commits.
	w := rec.Begin()
	if err := w.Write(0, 42); err != nil {
		log.Fatal(err)
	}
	r := rec.Begin()
	if _, err := r.Read(0); err != nil {
		log.Fatal(err)
	}
	if err := r.Commit(); err != nil {
		log.Fatal(err)
	}
	if err := w.Commit(); err != nil {
		log.Fatal(err)
	}

	// Replay the recorded events through the online monitor.
	m, err := duopacity.NewMonitor(duopacity.DUOpacity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replaying the recorded ple execution through the du-opacity monitor:")
	for i, e := range rec.History().Events() {
		v, err := m.Append(e)
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if !v.OK {
			status = "VIOLATED"
		}
		fmt.Printf("  %2d  %-26v %s\n", i, e, status)
	}
	fmt.Printf("\nfinal verdict: %s\n", m.Verdict())
	fmt.Println("\nper-read analysis:")
	for _, ri := range duopacity.AnalyzeReads(m.History()) {
		fmt.Printf("  %s\n", ri)
	}
	searches, hits := m.Stats()
	fmt.Printf("\nmonitor cost: %d full searches, %d witness reuses\n", searches, hits)
}
