// Bank: concurrent transfers between accounts over a deferred-update STM,
// with transactional auditing — the classic workload the paper's criteria
// are designed to protect. The audit transaction must never observe a
// partial transfer; we run the workload on TL2 and NOrec, verify the
// invariant, and certify a recorded episode against du-opacity.
package main

import (
	"fmt"
	"log"
	"sync"

	"duopacity"
)

const (
	accounts       = 16
	initialBalance = 1000
	transfers      = 2000
	workers        = 4
)

func main() {
	for _, engine := range []string{"tl2", "norec"} {
		if err := run(engine); err != nil {
			log.Fatalf("%s: %v", engine, err)
		}
	}

	// Certification: a smaller recorded episode of the same shape, judged
	// by the paper's criterion.
	stats, err := duopacity.Certify(duopacity.CertConfig{
		Workload: duopacity.Workload{
			Engine:           "tl2",
			Objects:          8,
			Goroutines:       4,
			TxnsPerGoroutine: 4,
			OpsPerTxn:        4,
		},
		Episodes: 5,
	}, []duopacity.Criterion{duopacity.DUOpacity})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncertification: %d/%d episodes du-opaque\n",
		stats.Accepted[duopacity.DUOpacity], stats.Episodes)
}

func run(engine string) error {
	eng, err := duopacity.NewEngine(engine, accounts)
	if err != nil {
		return err
	}
	// Fund the bank.
	err = duopacity.Atomically(eng, func(tx duopacity.Txn) error {
		for a := 0; a < accounts; a++ {
			if err := tx.Write(a, initialBalance); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return err
	}

	var wg sync.WaitGroup
	audits := make(chan int64, workers*transfers/100+1)
	// Transfer workers.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			from, to := seed, (seed+7)%accounts
			for i := 0; i < transfers; i++ {
				from = (from + 3) % accounts
				to = (to + 5) % accounts
				if from == to {
					continue
				}
				amount := int64(1 + i%10)
				err := duopacity.Atomically(eng, func(tx duopacity.Txn) error {
					b, err := tx.Read(from)
					if err != nil {
						return err
					}
					if b < amount {
						return nil // insufficient funds; commit a no-op
					}
					if err := tx.Write(from, b-amount); err != nil {
						return err
					}
					c, err := tx.Read(to)
					if err != nil {
						return err
					}
					return tx.Write(to, c+amount)
				})
				if err != nil {
					log.Printf("transfer: %v", err)
					return
				}
				// Periodic audit: a read-only transaction summing every
				// account. Opacity guarantees it sees a consistent cut.
				if i%100 == 0 {
					var sum int64
					err := duopacity.Atomically(eng, func(tx duopacity.Txn) error {
						sum = 0
						for a := 0; a < accounts; a++ {
							v, err := tx.Read(a)
							if err != nil {
								return err
							}
							sum += v
						}
						return nil
					})
					if err != nil {
						log.Printf("audit: %v", err)
						return
					}
					audits <- sum
				}
			}
		}(w)
	}
	wg.Wait()
	close(audits)

	want := int64(accounts * initialBalance)
	n := 0
	for sum := range audits {
		n++
		if sum != want {
			return fmt.Errorf("audit observed total %d, want %d — snapshot violation", sum, want)
		}
	}
	fmt.Printf("%s: %d transfers x %d workers, %d audits, every audit saw total %d\n",
		engine, transfers, workers, n, want)
	return nil
}
