// Explore: per-plan proofs instead of sampled evidence. The paper's
// headline experiment separates deferred-update engines (du-opaque by
// construction) from the pessimistic in-place engine; sampling shows the
// separation on lucky schedules, but the explorer *decides* it per plan:
// it enumerates every interleaving the engine's exclusion policy allows
// for a litmus plan — with DPOR-style sleep sets, symmetry reduction and
// the prefix-closure cut of Corollary 2 pruning redundant or doomed
// subtrees — and certifies each schedule online. The deferred-update
// engines come out *proven* du-opaque on the plan (full enumeration,
// zero violations); the in-place engine is refuted with the causing
// schedule pinned at the exact event that latched the violation.
package main

import (
	"fmt"
	"log"
	"os"

	"duopacity"
)

func main() {
	// The litmus plan: thread 0 writes X0 and commits; thread 1 reads X0
	// twice. On an engine with in-place writes some schedule lets the
	// reader observe the write before the writer invokes tryC — exactly
	// the deferred-update violation of Definition 3. On a deferred-update
	// engine no schedule can.
	plan, err := duopacity.ParsePlan("w0\nr0 r0")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("plan (one thread per line, '|' between transactions):")
	fmt.Println(plan)
	fmt.Println()

	var reports []duopacity.ExploreReport
	for _, engine := range []string{"tl2", "norec", "gl", "ple"} {
		r, err := duopacity.ExplorePlan(engine, plan, duopacity.ExploreConfig{})
		if err != nil {
			log.Fatal(err)
		}
		reports = append(reports, r)
	}
	fmt.Print(duopacity.FormatExploreTable(reports))
	fmt.Println()

	for _, r := range reports {
		switch r.Outcome {
		case duopacity.ProvenDUOpaque:
			fmt.Printf("%s: PROVEN du-opaque on this plan — all %d schedules of the stepper's space enumerated, none violates.\n",
				r.Engine, r.Schedules)
		case duopacity.ViolationFound:
			v := r.Violation
			fmt.Printf("%s: REFUTED — schedule %v latches a violation at event %d:\n  %s\n",
				r.Engine, v.Schedule, v.At, v.Verdict.Reason)
			fmt.Println("  violating prefix (every extension violates too, by Corollary 2):")
			_ = duopacity.FormatHistory(os.Stdout, v.History)
		default: // BudgetExhausted (reachable if you grow the plan above)
			fmt.Printf("%s: UNDECIDED — budget exhausted after %d replays (frontier depth %d); no violation found, no proof obtained.\n",
				r.Engine, r.Replays, r.MaxFrontier)
		}
	}
}
