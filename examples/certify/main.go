// Certify: the engine acceptance matrix — run every shipped STM engine
// under a contended recorded workload and judge the episodes with the
// paper's criteria. Deferred-update engines (tl2, norec, gl) are accepted
// by du-opacity; the pessimistic in-place engine (ple) is rejected exactly
// as §5 of the paper predicts, while usually remaining final-state
// serializable; the eager engines (etl, etl+v) sit in between, exposing
// scheduling-dependent zombie-read windows.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"duopacity"
)

func main() {
	criteria := []duopacity.Criterion{
		duopacity.DUOpacity,
		duopacity.FinalStateOpacity,
		duopacity.StrictSerializability,
	}
	const episodes = 25

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "engine")
	for _, c := range criteria {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw, "\t(accepted episodes)")

	for _, name := range duopacity.EngineNames() {
		stats, err := duopacity.Certify(duopacity.CertConfig{
			Workload: duopacity.Workload{
				Engine:           name,
				Objects:          4,
				Goroutines:       8,
				TxnsPerGoroutine: 3,
				OpsPerTxn:        3,
				ReadFraction:     0.75,
				Seed:             42,
			},
			Episodes: episodes,
		}, criteria)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s", name)
		for _, c := range criteria {
			fmt.Fprintf(tw, "\t%d/%d", stats.Accepted[c], stats.Episodes)
		}
		fmt.Fprintln(tw)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nreading the matrix: tl2/norec/gl implement deferred update and pass")
	fmt.Println("du-opacity on every episode. ple reads in-flight writes: episodes where")
	fmt.Println("a reader observed a writer's value before its tryC fail du-opacity, and")
	fmt.Println("the subset where the reader also caught a *partial* write set fails")
	fmt.Println("final-state opacity too — du-opacity always rejects at least as much")
	fmt.Println("(Theorem 10). This is the executable form of the paper's §5 discussion.")
}
