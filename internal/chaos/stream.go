package chaos

import (
	"math/rand"

	"duopacity/internal/history"
)

// JunkSource generates stream faults: events that a well-formed
// history.Stream (and hence spec.Monitor) must reject against its current
// state. It shadows the accepted event sequence — feed every event the
// stream actually admitted through Observe — and Junk draws a
// guaranteed-rejected event from the applicable fault classes:
//
//   - reserved-txn: an event naming transaction 0, the reserved T_0
//   - orphan-response: a response for a transaction that never invoked
//   - duplicate-response: the last accepted response replayed (its
//     operation already completed)
//   - inv-after-complete: an invocation by a t-complete transaction
//   - double-inv: a second invocation while one operation is pending
//
// Because every generated event is rejected, the shadow never diverges
// from the real stream, and a driver can assert the exact accounting
// injected == rejected. Duplication of *invocation* events and reordering
// of valid events are deliberately out of scope for the generator: those
// mutations can be accepted by a well-formed stream (they are different
// histories, not junk), so they cannot carry a rejection guarantee.
type JunkSource struct {
	rng        *rand.Rand
	maxID      history.TxnID
	pending    map[history.TxnID]bool
	curPending history.TxnID // most recent still-pending invoker (0 = none)
	complete   []history.TxnID
	isComplete map[history.TxnID]bool
	lastRes    history.Event
	hasRes     bool
	injected   int
}

// NewJunkSource returns a generator with its own seeded schedule.
func NewJunkSource(seed int64) *JunkSource {
	return &JunkSource{
		rng:        rand.New(rand.NewSource(int64(splitmix64(uint64(seed))))),
		pending:    make(map[history.TxnID]bool),
		isComplete: make(map[history.TxnID]bool),
	}
}

// Observe updates the shadow with an event the stream accepted. Events
// the stream rejected (including everything Junk returns) must not be
// observed.
func (j *JunkSource) Observe(e history.Event) {
	if e.Txn > j.maxID {
		j.maxID = e.Txn
	}
	if e.Kind == history.Inv {
		j.pending[e.Txn] = true
		j.curPending = e.Txn
		return
	}
	j.pending[e.Txn] = false
	if j.curPending == e.Txn {
		j.curPending = 0
	}
	j.lastRes, j.hasRes = e, true
	// A_k on any operation, and any tryC/tryA response, t-completes.
	if e.Out == history.OutAbort || e.Op == history.OpTryCommit || e.Op == history.OpTryAbort {
		if !j.isComplete[e.Txn] {
			j.isComplete[e.Txn] = true
			j.complete = append(j.complete, e.Txn)
		}
	}
}

// Injected returns how many junk events Junk has produced.
func (j *JunkSource) Injected() int { return j.injected }

// Junk returns an event the shadowed stream must reject, plus the fault
// class it was drawn from. At least the reserved-txn class is always
// applicable, so Junk never fails.
func (j *JunkSource) Junk() (history.Event, string) {
	type candidate struct {
		class string
		ev    history.Event
	}
	cands := []candidate{{
		"reserved-txn",
		history.Event{Kind: history.Inv, Op: history.OpRead, Txn: history.InitTxn, Obj: "X0"},
	}, {
		"orphan-response",
		history.Event{Kind: history.Res, Op: history.OpRead, Txn: j.maxID + 1000 + history.TxnID(j.rng.Intn(64)),
			Obj: "X0", Val: history.Value(j.rng.Int63()), Out: history.OutOK},
	}}
	if j.hasRes && !j.pending[j.lastRes.Txn] {
		// Replaying the last response is only guaranteed-rejected while its
		// transaction has no pending operation the duplicate could answer.
		cands = append(cands, candidate{"duplicate-response", j.lastRes})
	}
	if len(j.complete) > 0 {
		k := j.complete[j.rng.Intn(len(j.complete))]
		cands = append(cands, candidate{"inv-after-complete",
			history.Event{Kind: history.Inv, Op: history.OpRead, Txn: k, Obj: "X0"}})
	}
	if j.curPending != 0 && j.pending[j.curPending] {
		cands = append(cands, candidate{"double-inv",
			history.Event{Kind: history.Inv, Op: history.OpRead, Txn: j.curPending, Obj: "X0"}})
	}
	c := cands[j.rng.Intn(len(cands))]
	j.injected++
	return c.ev, c.class
}
