package chaos

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// FarmFaults injects worker faults into internal/checkfarm's pool. It
// travels through the context (WithFarmFaults), and the farm calls Strike
// inside each shard's recovered region — so an injected panic exercises
// exactly the recovery, bounded-retry and degradation machinery a real
// worker panic would.
//
// The schedule is deterministic in (shard index, attempt): shard i is
// struck iff i ≡ 0 (mod PanicEvery), and it panics on its first
// PanicAttempts attempts. With PanicAttempts below the farm's retry
// bound the shard recovers and the farm's result is unchanged; at or
// above the bound the shard degrades — reported, never silent.
type FarmFaults struct {
	// PanicEvery selects the struck shards (every PanicEvery-th, starting
	// at shard 0). Zero disables panics.
	PanicEvery int
	// PanicAttempts is how many consecutive attempts of a struck shard
	// panic before it succeeds.
	PanicAttempts int
	// SlowEvery selects shards delayed by Delay on their first attempt
	// (slow-shard faults). Zero disables.
	SlowEvery int
	// Delay is the slow-shard delay.
	Delay time.Duration

	panics atomic.Int64
	slows  atomic.Int64
}

// Strike runs the fault schedule for one shard attempt: it may sleep
// (slow shard) and may panic (worker panic). Safe on a nil receiver.
func (f *FarmFaults) Strike(shard, attempt int) {
	if f == nil {
		return
	}
	if f.SlowEvery > 0 && f.Delay > 0 && attempt == 0 && shard%f.SlowEvery == 0 {
		f.slows.Add(1)
		time.Sleep(f.Delay)
	}
	if f.PanicEvery > 0 && shard%f.PanicEvery == 0 && attempt < f.PanicAttempts {
		f.panics.Add(1)
		panic(fmt.Sprintf("chaos: injected worker panic (shard %d, attempt %d)", shard, attempt))
	}
}

// Panics returns how many panics Strike has injected.
func (f *FarmFaults) Panics() int64 { return f.panics.Load() }

// Slowed returns how many slow-shard delays Strike has injected.
func (f *FarmFaults) Slowed() int64 { return f.slows.Load() }

type farmFaultsKey struct{}

// WithFarmFaults attaches f to the context for the certification farm to
// pick up. Passing the returned context to any checkfarm entry point
// injects the schedule into its worker pool.
func WithFarmFaults(ctx context.Context, f *FarmFaults) context.Context {
	return context.WithValue(ctx, farmFaultsKey{}, f)
}

// FarmFaultsFromContext returns the fault schedule attached by
// WithFarmFaults, or nil.
func FarmFaultsFromContext(ctx context.Context) *FarmFaults {
	f, _ := ctx.Value(farmFaultsKey{}).(*FarmFaults)
	return f
}
