// Package chaos is the repository's deterministic fault-injection layer:
// seedable fault schedules for the three stages of the certification
// pipeline, used by harness.ChaosSoak and the stmbench chaos subcommand
// to pin the soundness-under-chaos invariant (faults may turn verdicts
// into honest undecided or reported-and-rejected input, but never flip
// OK↔violation against a fault-free differential run).
//
// Three injection points, one per pipeline stage:
//
//   - Engine faults (Wrap): a wrapping stm.Engine that injects spurious
//     aborts and delayed/torn commit windows. Both are legal TM behavior —
//     an engine may abort any transaction at any time, and a commit's
//     effect may linearize anywhere inside its invocation–response window
//     — so the recorded histories stay histories in the paper's Section 2
//     sense, just crashier ones: the checker must still decide them
//     soundly. Thread kills (a transaction abandoned mid-flight, leaving
//     a live transaction in the history) are driver-level and gated by
//     KillSafe: only engines whose transactions hold no locks outside
//     Commit can be abandoned without deadlocking the other threads.
//
//   - Stream faults (JunkSource): ill-formed events — duplicated
//     responses, orphaned responses, reserved transaction ids, operations
//     after t-completion, doubled invocations — that a well-formed
//     history.Stream / spec.Monitor must reject side-effect-free, plus
//     truncation (the driver simply stops feeding). Every event produced
//     by JunkSource is guaranteed-rejected against the stream state it
//     shadows, so the soak can assert an exact injected == rejected
//     accounting.
//
//   - Farm faults (FarmFaults, via context): worker panics and slow
//     shards injected into internal/checkfarm's pool through the context,
//     exercising the farm's per-shard panic recovery, bounded retry with
//     exponential backoff, and reported degradation.
//
// Every fault decision is a pure function of the configured seed and the
// decision point (transaction serial, operation index, shard index), so a
// fault schedule replays exactly under the deterministic stepper and
// per-transaction under real goroutines.
package chaos

import (
	"math/rand"
	"runtime"
	"strings"
	"sync/atomic"

	"duopacity/internal/stm"
)

// Profile configures the engine-fault injector. Probabilities are in
// [0,1]; the zero Profile injects nothing (and Wrap with a zero Profile
// adds only a per-operation branch, the "disabled fault hooks" cost the
// PR 7 benchmark gate pins).
type Profile struct {
	// SpuriousAbort is the per-operation probability that the wrapper
	// aborts the transaction instead of forwarding the operation — the
	// engine-may-abort-anytime liberty of the TM model.
	SpuriousAbort float64
	// CommitDelay is the per-commit probability of stretching the commit's
	// invocation–response window with scheduler yields before and after
	// the inner commit (a delayed/torn commit: other threads run while the
	// commit is pending).
	CommitDelay float64
	// Seed seeds the fault schedule. Decisions are drawn from a
	// per-transaction generator keyed by (Seed, transaction serial), so
	// they do not depend on cross-thread interleaving.
	Seed int64
}

// Stats counts the faults an Engine actually injected.
type Stats struct {
	SpuriousAborts int64
	CommitDelays   int64
}

// Engine wraps an inner stm.Engine with the engine-fault injector. It
// preserves Name (schedule-exploration policies and kill-safety gating
// key on it).
type Engine struct {
	inner          stm.Engine
	prof           Profile
	seq            atomic.Int64
	aborts, delays atomic.Int64
}

var _ stm.Engine = (*Engine)(nil)

// Wrap returns eng with the fault profile injected around every
// transaction.
func Wrap(eng stm.Engine, prof Profile) *Engine {
	return &Engine{inner: eng, prof: prof}
}

// Name implements stm.Engine (the inner engine's name).
func (e *Engine) Name() string { return e.inner.Name() }

// Objects implements stm.Engine.
func (e *Engine) Objects() int { return e.inner.Objects() }

// Stats returns the faults injected so far.
func (e *Engine) Stats() Stats {
	return Stats{SpuriousAborts: e.aborts.Load(), CommitDelays: e.delays.Load()}
}

// Begin implements stm.Engine. Each transaction draws its fault schedule
// from a generator keyed by (profile seed, transaction serial).
func (e *Engine) Begin() stm.Txn {
	t := &txn{e: e, inner: e.inner.Begin()}
	if e.prof.SpuriousAbort > 0 || e.prof.CommitDelay > 0 {
		serial := e.seq.Add(1)
		t.rng = rand.New(rand.NewSource(int64(splitmix64(uint64(e.prof.Seed) ^ uint64(serial)*0x9e3779b97f4a7c15))))
	}
	return t
}

type txn struct {
	e     *Engine
	inner stm.Txn
	rng   *rand.Rand
	dead  bool
}

// strike reports whether the current operation spuriously aborts; when it
// does, the inner transaction is aborted first so the engine's state is
// exactly that of a real abort.
func (t *txn) strike() bool {
	if t.dead {
		return true
	}
	if t.rng != nil && t.rng.Float64() < t.e.prof.SpuriousAbort {
		t.dead = true
		t.inner.Abort()
		t.e.aborts.Add(1)
		return true
	}
	return false
}

func (t *txn) Read(obj int) (int64, error) {
	if t.strike() {
		return 0, stm.ErrAborted
	}
	return t.inner.Read(obj)
}

func (t *txn) Write(obj int, v int64) error {
	if t.strike() {
		return stm.ErrAborted
	}
	return t.inner.Write(obj, v)
}

func (t *txn) Commit() error {
	if t.strike() {
		return stm.ErrAborted
	}
	if t.rng != nil && t.rng.Float64() < t.e.prof.CommitDelay {
		// Delayed/torn commit: stretch the tryC window so other threads
		// observe a commit-pending transaction (under real goroutines; the
		// yields are no-ops under the single-threaded stepper).
		t.e.delays.Add(1)
		runtime.Gosched()
		err := t.inner.Commit()
		runtime.Gosched()
		t.dead = true
		return err
	}
	t.dead = true
	return t.inner.Commit()
}

func (t *txn) Abort() {
	if t.dead {
		return
	}
	t.dead = true
	t.inner.Abort()
}

// KillSafe reports whether transactions of the named engine can be
// abandoned mid-flight (no Commit/Abort, the goroutine just stops)
// without blocking other threads: true for the deferred engines whose
// transactions hold no locks outside Commit (tl2, norec, pdur) and the
// obstruction-free dstm (a competitor's contention manager can always
// displace an abandoned owner). The lock-holding engines — gl holds the
// global mutex from Begin, etl and ple lock objects at encounter — would
// deadlock the run; drivers downgrade kill faults to spurious aborts
// there.
//
// A contention-management suffix ("tl2+karma") never changes the
// answer: CM policies only bound how long a live transaction waits at a
// conflict, not what an abandoned one holds. The suffix is stripped
// here (the first '+' segment is the base except for etl+v, whose base
// etl classifies identically), mirroring engines.Parse without the
// import.
func KillSafe(engine string) bool {
	base := engine
	if i := strings.IndexByte(engine, '+'); i >= 0 {
		base = engine[:i]
	}
	switch base {
	case "tl2", "norec", "dstm", "pdur":
		return true
	}
	return false
}

// splitmix64 is the SplitMix64 mixer, used to decorrelate per-transaction
// fault schedules from neighbouring serials.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
