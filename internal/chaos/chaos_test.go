package chaos

import (
	"context"
	"strings"
	"testing"
	"time"

	"duopacity/internal/history"
	"duopacity/internal/recorder"
	"duopacity/internal/stm/engines"
)

// driveSerial runs n sequential transactions (write then read then
// commit) on the wrapped engine and returns the per-transaction outcome
// pattern ('c' committed, 'a' aborted).
func driveSerial(t *testing.T, e *Engine, n int) string {
	t.Helper()
	var b strings.Builder
	for i := 0; i < n; i++ {
		tx := e.Begin()
		ok := true
		if err := tx.Write(0, int64(i+1)); err != nil {
			ok = false
		}
		if ok {
			if _, err := tx.Read(0); err != nil {
				ok = false
			}
		}
		if ok && tx.Commit() == nil {
			b.WriteByte('c')
		} else {
			tx.Abort()
			b.WriteByte('a')
		}
	}
	return b.String()
}

func TestWrapZeroProfileInjectsNothing(t *testing.T) {
	base, err := engines.New("tl2", 2)
	if err != nil {
		t.Fatal(err)
	}
	e := Wrap(base, Profile{})
	if got := driveSerial(t, e, 50); strings.Contains(got, "a") {
		t.Fatalf("zero profile injected aborts: %s", got)
	}
	if st := e.Stats(); st != (Stats{}) {
		t.Fatalf("zero profile counted faults: %+v", st)
	}
}

func TestWrapPreservesName(t *testing.T) {
	base, err := engines.New("norec", 2)
	if err != nil {
		t.Fatal(err)
	}
	e := Wrap(base, Profile{SpuriousAbort: 0.5, Seed: 1})
	if e.Name() != "norec" {
		t.Fatalf("Name() = %q, want norec", e.Name())
	}
	if e.Objects() != 2 {
		t.Fatalf("Objects() = %d, want 2", e.Objects())
	}
}

func TestWrapFaultScheduleIsDeterministic(t *testing.T) {
	runOnce := func() (string, Stats) {
		base, err := engines.New("tl2", 2)
		if err != nil {
			t.Fatal(err)
		}
		e := Wrap(base, Profile{SpuriousAbort: 0.3, CommitDelay: 0.3, Seed: 42})
		return driveSerial(t, e, 100), e.Stats()
	}
	p1, s1 := runOnce()
	p2, s2 := runOnce()
	if p1 != p2 {
		t.Fatalf("fault pattern not reproducible:\n%s\n%s", p1, p2)
	}
	if s1 != s2 {
		t.Fatalf("fault stats not reproducible: %+v vs %+v", s1, s2)
	}
	if s1.SpuriousAborts == 0 {
		t.Fatal("profile injected no spurious aborts in 100 transactions")
	}
	if s1.CommitDelays == 0 {
		t.Fatal("profile injected no commit delays in 100 transactions")
	}
}

func TestWrapSpuriousAbortMatchesRealAbort(t *testing.T) {
	// After a strike, every further operation on the transaction must
	// behave like a real aborted transaction (ErrAborted, no effect), and
	// the engine must accept new transactions normally.
	base, err := engines.New("tl2", 2)
	if err != nil {
		t.Fatal(err)
	}
	e := Wrap(base, Profile{SpuriousAbort: 1, Seed: 7})
	tx := e.Begin()
	if err := tx.Write(0, 1); err == nil {
		t.Fatal("certain-abort profile let a write through")
	}
	if _, err := tx.Read(0); err == nil {
		t.Fatal("operation after the strike succeeded")
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit after the strike succeeded")
	}
	// The engine stays usable: a fault-free wrapper on the same inner
	// engine commits.
	clean := Wrap(base, Profile{})
	tx2 := clean.Begin()
	if err := tx2.Write(0, 2); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
}

func TestKillSafe(t *testing.T) {
	want := map[string]bool{
		"tl2": true, "norec": true, "dstm": true,
		"gl": false, "etl": false, "etl+v": false, "ple": false,
	}
	for eng, safe := range want {
		if KillSafe(eng) != safe {
			t.Errorf("KillSafe(%q) = %v, want %v", eng, KillSafe(eng), safe)
		}
	}
}

// TestJunkSourceAlwaysRejected is the junk contract: against any stream
// state JunkSource has shadowed, every junk event must be rejected by
// history.Stream (and therefore by spec.Monitor, which validates through
// the same stream), with the stream unchanged.
func TestJunkSourceAlwaysRejected(t *testing.T) {
	// A real recorded history provides the event stream to shadow.
	base, err := engines.New("tl2", 3)
	if err != nil {
		t.Fatal(err)
	}
	rec := recorder.New(base)
	for i := 0; i < 6; i++ {
		tx := rec.Begin()
		tx.Write(i%3, int64(i+1))
		tx.Read((i + 1) % 3)
		if i%2 == 0 {
			tx.Commit()
		} else {
			tx.Abort()
		}
	}
	evs := rec.History().Events()

	for seed := int64(0); seed < 5; seed++ {
		js := NewJunkSource(seed)
		st := history.NewStream()
		for i, e := range evs {
			// Several junk draws per position, so every candidate kind gets
			// exercised against every stream state.
			for k := 0; k < 3; k++ {
				junk, desc := js.Junk()
				before := st.History().Len()
				if err := st.Append(junk); err == nil {
					t.Fatalf("seed %d, position %d: junk accepted (%s): %v", seed, i, desc, junk)
				}
				if st.History().Len() != before {
					t.Fatalf("seed %d, position %d: junk rejection changed the stream (%s)", seed, i, desc)
				}
			}
			if err := st.Append(e); err != nil {
				t.Fatalf("well-formed event %d rejected: %v", i, err)
			}
			js.Observe(e)
		}
		if js.Injected() != 3*len(evs) {
			t.Fatalf("seed %d: injected accounting = %d, want %d", seed, js.Injected(), 3*len(evs))
		}
	}
}

func TestFarmFaultsStrikeSchedule(t *testing.T) {
	f := &FarmFaults{PanicEvery: 2, PanicAttempts: 2}
	mustPanic := func(shard, attempt int) bool {
		panicked := false
		func() {
			defer func() { panicked = recover() != nil }()
			f.Strike(shard, attempt)
		}()
		return panicked
	}
	cases := []struct {
		shard, attempt int
		want           bool
	}{
		{0, 0, true}, {0, 1, true}, {0, 2, false},
		{1, 0, false},
		{2, 0, true}, {2, 2, false},
	}
	for _, c := range cases {
		if got := mustPanic(c.shard, c.attempt); got != c.want {
			t.Errorf("Strike(%d, %d) panicked = %v, want %v", c.shard, c.attempt, got, c.want)
		}
	}
	if f.Panics() != 3 {
		t.Errorf("Panics() = %d, want 3", f.Panics())
	}
}

func TestFarmFaultsNilReceiverAndSlow(t *testing.T) {
	var nilFaults *FarmFaults
	nilFaults.Strike(0, 0) // must not panic

	f := &FarmFaults{SlowEvery: 1, Delay: time.Millisecond}
	f.Strike(0, 0)
	f.Strike(0, 1) // retries are not slowed
	if f.Slowed() != 1 {
		t.Errorf("Slowed() = %d, want 1", f.Slowed())
	}
}

func TestFarmFaultsContextRoundTrip(t *testing.T) {
	if got := FarmFaultsFromContext(context.Background()); got != nil {
		t.Fatalf("empty context carried faults: %v", got)
	}
	f := &FarmFaults{PanicEvery: 1}
	ctx := WithFarmFaults(context.Background(), f)
	if got := FarmFaultsFromContext(ctx); got != f {
		t.Fatalf("context round trip lost the fault schedule")
	}
}
