package histio

import (
	"strings"
	"testing"

	"duopacity/internal/history"
	"duopacity/internal/litmus"
)

// FuzzParse checks the parser never panics and that everything it accepts
// round-trips through Format into an equivalent history. The litmus
// figures seed the corpus (go test runs the seeds; go test -fuzz explores
// further).
func FuzzParse(f *testing.F) {
	for _, c := range litmus.Cases() {
		f.Add(FormatString(c.H))
	}
	f.Add("write 1 X 1\ncommit 1\nread 2 X 1\ncommit 2\n")
	f.Add("# comment\n\ninv read 1 X\nres read 1 X A\n")
	f.Add("abort 1\nwrite 2 Y -3\ncommit 2 A\n")
	f.Add("inv tryc 1\nres tryc 1 C\n")
	f.Add("read 1 X 9999999999999\n")
	f.Fuzz(func(t *testing.T, src string) {
		h, err := ParseString(src)
		if err != nil {
			return // rejected input is fine; panics are not
		}
		out := FormatString(h)
		back, err := ParseString(out)
		if err != nil {
			t.Fatalf("formatted output does not re-parse: %v\n%s", err, out)
		}
		if back.Len() != h.Len() || !back.Equivalent(h) {
			t.Fatalf("round trip changed the history:\nin:\n%s\nout:\n%s", src, out)
		}
	})
}

// FuzzParseStability feeds adversarial separators and partial tokens.
func FuzzParseStability(f *testing.F) {
	f.Add("inv")
	f.Add("res read")
	f.Add("write 1")
	f.Add("commit")
	f.Add(strings.Repeat("read 1 X 0\n", 100))
	f.Fuzz(func(t *testing.T, src string) {
		_, _ = ParseString(src) // must not panic
	})
}

// FuzzParseEvents targets the line-level entry point used by streaming
// consumers: it must never panic, must be deterministic, and a comment or
// blank line must yield no events and no error.
func FuzzParseEvents(f *testing.F) {
	f.Add("write 1 X 1")
	f.Add("read 2 X A")
	f.Add("commit 1 A")
	f.Add("abort 9")
	f.Add("inv read 1 X")
	f.Add("res write 1 X 1 ok")
	f.Add("res tryc 1 C")
	f.Add("# comment only")
	f.Add("")
	f.Add("write 1 X 1 # trailing")
	f.Add("inv\ttryc\t1")
	f.Add("read 1 X 9999999999999999999999")
	f.Fuzz(func(t *testing.T, line string) {
		evs, err := ParseEvents(line)
		evs2, err2 := ParseEvents(line)
		if (err == nil) != (err2 == nil) || len(evs) != len(evs2) {
			t.Fatalf("ParseEvents not deterministic on %q: (%v,%v) vs (%v,%v)", line, evs, err, evs2, err2)
		}
		if err != nil {
			if len(evs) != 0 {
				t.Fatalf("error return carried events for %q: %v", line, evs)
			}
			return
		}
		for i, e := range evs {
			if e != evs2[i] {
				t.Fatalf("ParseEvents not deterministic on %q at event %d", line, i)
			}
		}
	})
}

// FuzzEventRoundTrip drives the encoder with fuzz-chosen field values:
// every canonical event shape over the sanitized inputs must survive
// FormatEvent -> ParseEvents verbatim (the wire-protocol contract of
// cmd/certd streams and ducheck -follow -connect).
func FuzzEventRoundTrip(f *testing.F) {
	f.Add(uint16(1), "X", int64(0))
	f.Add(uint16(7), "Y", int64(-9))
	f.Add(uint16(130), "obj_1", int64(1<<40))
	f.Fuzz(func(t *testing.T, txn uint16, obj string, val int64) {
		if txn == 0 {
			txn = 1
		}
		// Object names travel as whitespace-delimited tokens; '#' starts a
		// comment. Anything else is legal on the wire.
		if obj == "" || strings.ContainsAny(obj, " \t\n\r#") {
			obj = "X"
		}
		for _, e := range eventShapes(history.TxnID(txn), history.Var(obj), history.Value(val)) {
			line := FormatEvent(e)
			back, err := ParseEvents(line)
			if err != nil {
				t.Fatalf("ParseEvents(%q): %v", line, err)
			}
			if len(back) != 1 || back[0] != e {
				t.Fatalf("round trip changed event: %v -> %q -> %v", e, line, back)
			}
		}
	})
}
