// Package histio reads and writes histories as text, so that the CLI
// tools (cmd/ducheck, cmd/histgen) and test fixtures — including the
// golden counterexamples pinned under internal/harness/testdata — can
// exchange them.
//
// The format transcribes the event notation of the paper's Section 2
// (Attiya, Hans, Kuznetsov and Ravi, ICDCS 2013): a history is the
// sequence of invocation and response events of t-operations read_k(X),
// write_k(X,v) and tryC_k, with A_k ("A") the abort response, C_k ("C")
// the commit response, and tryA_k ("trya") the explicit abort request.
// Parsing validates well-formedness through the same incremental core as
// history.FromEvents (via history.Stream in ParseEvents), so a file that
// parses is a history in the paper's sense — Definition 1's per-
// transaction sequential pattern included.
//
// The format is line-based; '#' starts a comment and blank lines are
// skipped. Each line is either an event:
//
//	inv read  <txn> <obj>
//	res read  <txn> <obj> <value>|A
//	inv write <txn> <obj> <value>
//	res write <txn> <obj> <value> ok|A
//	inv tryc  <txn>
//	res tryc  <txn> C|A
//	inv trya  <txn>
//	res trya  <txn> A
//
// or an operation shorthand that expands to an adjacent
// invocation/response pair:
//
//	read   <txn> <obj> <value>|A
//	write  <txn> <obj> <value> [A]
//	commit <txn> [A]
//	abort  <txn>
//
// Format always emits event lines (lossless); Parse accepts both forms.
package histio

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"duopacity/internal/history"
)

// Format writes h to w, one event per line.
func Format(w io.Writer, h *history.History) error {
	return WriteEvents(w, h.Events())
}

// WriteEvents writes the events to w, one event line each — the encoder
// dual of ParseEvents. It does not validate well-formedness (the events
// need not form a history prefix), so it can serialize any event
// sequence: a live stream being forwarded over the wire (cmd/certd's
// stream protocol, ducheck -follow -connect), a synthetic load-test
// feed, or a whole history via Format. Round-tripping through
// ParseEvents yields the same events (pinned by TestEventRoundTrip and
// FuzzEventRoundTrip).
func WriteEvents(w io.Writer, evs []history.Event) error {
	bw := bufio.NewWriter(w)
	for _, e := range evs {
		if err := formatEvent(bw, e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// FormatEvent renders one event as its event line, without the trailing
// newline: the single-event form of WriteEvents, for consumers that
// frame lines themselves (the certd stream client sends one event line
// per network write).
func FormatEvent(e history.Event) string {
	var sb strings.Builder
	_ = formatEvent(&sb, e) // strings.Builder never errors
	return strings.TrimSuffix(sb.String(), "\n")
}

// FormatString renders h to a string.
func FormatString(h *history.History) string {
	var sb strings.Builder
	_ = Format(&sb, h) // strings.Builder never errors
	return sb.String()
}

func formatEvent(w io.Writer, e history.Event) error {
	var err error
	switch {
	case e.Kind == history.Inv && e.Op == history.OpRead:
		_, err = fmt.Fprintf(w, "inv read %d %s\n", e.Txn, e.Obj)
	case e.Kind == history.Inv && e.Op == history.OpWrite:
		_, err = fmt.Fprintf(w, "inv write %d %s %d\n", e.Txn, e.Obj, e.Arg)
	case e.Kind == history.Inv && e.Op == history.OpTryCommit:
		_, err = fmt.Fprintf(w, "inv tryc %d\n", e.Txn)
	case e.Kind == history.Inv && e.Op == history.OpTryAbort:
		_, err = fmt.Fprintf(w, "inv trya %d\n", e.Txn)
	case e.Op == history.OpRead && e.Out == history.OutOK:
		_, err = fmt.Fprintf(w, "res read %d %s %d\n", e.Txn, e.Obj, e.Val)
	case e.Op == history.OpRead:
		_, err = fmt.Fprintf(w, "res read %d %s A\n", e.Txn, e.Obj)
	case e.Op == history.OpWrite && e.Out == history.OutOK:
		_, err = fmt.Fprintf(w, "res write %d %s %d ok\n", e.Txn, e.Obj, e.Arg)
	case e.Op == history.OpWrite:
		_, err = fmt.Fprintf(w, "res write %d %s %d A\n", e.Txn, e.Obj, e.Arg)
	case e.Op == history.OpTryCommit && e.Out == history.OutCommit:
		_, err = fmt.Fprintf(w, "res tryc %d C\n", e.Txn)
	case e.Op == history.OpTryCommit:
		_, err = fmt.Fprintf(w, "res tryc %d A\n", e.Txn)
	default:
		_, err = fmt.Fprintf(w, "res trya %d A\n", e.Txn)
	}
	return err
}

// ParseEvents parses one line of the text format into its events: an
// event line yields one event, a shorthand line yields the adjacent
// invocation/response pair, and a comment or blank line yields none. It
// is the line-level entry used by streaming consumers (ducheck -follow)
// that feed events into a history.Stream or spec.Monitor as they arrive.
func ParseEvents(line string) ([]history.Event, error) {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return nil, nil
	}
	return parseLine(fields)
}

// Parse reads a history from r.
func Parse(r io.Reader) (*history.History, error) {
	var evs []history.Event
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		es, err := ParseEvents(sc.Text())
		if err != nil {
			return nil, fmt.Errorf("histio: line %d: %w", lineNo, err)
		}
		evs = append(evs, es...)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("histio: %w", err)
	}
	h, err := history.FromEvents(evs)
	if err != nil {
		return nil, fmt.Errorf("histio: %w", err)
	}
	return h, nil
}

// ParseString parses a history from a string.
func ParseString(s string) (*history.History, error) {
	return Parse(strings.NewReader(s))
}

func parseLine(f []string) ([]history.Event, error) {
	switch f[0] {
	case "inv", "res":
		e, err := parseEvent(f)
		if err != nil {
			return nil, err
		}
		return []history.Event{e}, nil
	case "read":
		// read <txn> <obj> <value>|A
		if len(f) != 4 {
			return nil, fmt.Errorf("read wants 3 arguments, got %d", len(f)-1)
		}
		k, err := parseTxn(f[1])
		if err != nil {
			return nil, err
		}
		obj := history.Var(f[2])
		inv := history.Event{Kind: history.Inv, Op: history.OpRead, Txn: k, Obj: obj}
		if f[3] == "A" {
			return []history.Event{inv, {Kind: history.Res, Op: history.OpRead, Txn: k, Obj: obj, Out: history.OutAbort}}, nil
		}
		v, err := parseValue(f[3])
		if err != nil {
			return nil, err
		}
		return []history.Event{inv, {Kind: history.Res, Op: history.OpRead, Txn: k, Obj: obj, Val: v, Out: history.OutOK}}, nil
	case "write":
		// write <txn> <obj> <value> [A]
		if len(f) != 4 && len(f) != 5 {
			return nil, fmt.Errorf("write wants 3 or 4 arguments, got %d", len(f)-1)
		}
		k, err := parseTxn(f[1])
		if err != nil {
			return nil, err
		}
		obj := history.Var(f[2])
		v, err := parseValue(f[3])
		if err != nil {
			return nil, err
		}
		out := history.OutOK
		if len(f) == 5 {
			if f[4] != "A" {
				return nil, fmt.Errorf("write outcome must be A, got %q", f[4])
			}
			out = history.OutAbort
		}
		return []history.Event{
			{Kind: history.Inv, Op: history.OpWrite, Txn: k, Obj: obj, Arg: v},
			{Kind: history.Res, Op: history.OpWrite, Txn: k, Obj: obj, Arg: v, Out: out},
		}, nil
	case "commit":
		// commit <txn> [A]
		if len(f) != 2 && len(f) != 3 {
			return nil, fmt.Errorf("commit wants 1 or 2 arguments, got %d", len(f)-1)
		}
		k, err := parseTxn(f[1])
		if err != nil {
			return nil, err
		}
		out := history.OutCommit
		if len(f) == 3 {
			if f[2] != "A" {
				return nil, fmt.Errorf("commit outcome must be A, got %q", f[2])
			}
			out = history.OutAbort
		}
		return []history.Event{
			{Kind: history.Inv, Op: history.OpTryCommit, Txn: k},
			{Kind: history.Res, Op: history.OpTryCommit, Txn: k, Out: out},
		}, nil
	case "abort":
		if len(f) != 2 {
			return nil, fmt.Errorf("abort wants 1 argument, got %d", len(f)-1)
		}
		k, err := parseTxn(f[1])
		if err != nil {
			return nil, err
		}
		return []history.Event{
			{Kind: history.Inv, Op: history.OpTryAbort, Txn: k},
			{Kind: history.Res, Op: history.OpTryAbort, Txn: k, Out: history.OutAbort},
		}, nil
	default:
		return nil, fmt.Errorf("unknown directive %q", f[0])
	}
}

func parseEvent(f []string) (history.Event, error) {
	if len(f) < 3 {
		return history.Event{}, fmt.Errorf("event line too short")
	}
	kind := history.Inv
	if f[0] == "res" {
		kind = history.Res
	}
	k, err := parseTxn(f[2])
	if err != nil {
		return history.Event{}, err
	}
	e := history.Event{Kind: kind, Txn: k}
	switch f[1] {
	case "read":
		e.Op = history.OpRead
		if len(f) < 4 {
			return e, fmt.Errorf("read event wants an object")
		}
		e.Obj = history.Var(f[3])
		if kind == history.Inv {
			if len(f) != 4 {
				return e, fmt.Errorf("inv read wants 2 arguments")
			}
			return e, nil
		}
		if len(f) != 5 {
			return e, fmt.Errorf("res read wants 3 arguments")
		}
		if f[4] == "A" {
			e.Out = history.OutAbort
			return e, nil
		}
		v, err := parseValue(f[4])
		if err != nil {
			return e, err
		}
		e.Val, e.Out = v, history.OutOK
		return e, nil
	case "write":
		e.Op = history.OpWrite
		if len(f) < 5 {
			return e, fmt.Errorf("write event wants object and value")
		}
		e.Obj = history.Var(f[3])
		v, err := parseValue(f[4])
		if err != nil {
			return e, err
		}
		e.Arg = v
		if kind == history.Inv {
			if len(f) != 5 {
				return e, fmt.Errorf("inv write wants 3 arguments")
			}
			return e, nil
		}
		if len(f) != 6 {
			return e, fmt.Errorf("res write wants 4 arguments")
		}
		switch f[5] {
		case "ok":
			e.Out = history.OutOK
		case "A":
			e.Out = history.OutAbort
		default:
			return e, fmt.Errorf("write outcome must be ok or A, got %q", f[5])
		}
		return e, nil
	case "tryc":
		e.Op = history.OpTryCommit
		if kind == history.Inv {
			if len(f) != 3 {
				return e, fmt.Errorf("inv tryc wants 1 argument")
			}
			return e, nil
		}
		if len(f) != 4 {
			return e, fmt.Errorf("res tryc wants 2 arguments")
		}
		switch f[3] {
		case "C":
			e.Out = history.OutCommit
		case "A":
			e.Out = history.OutAbort
		default:
			return e, fmt.Errorf("tryc outcome must be C or A, got %q", f[3])
		}
		return e, nil
	case "trya":
		e.Op = history.OpTryAbort
		if kind == history.Inv {
			if len(f) != 3 {
				return e, fmt.Errorf("inv trya wants 1 argument")
			}
			return e, nil
		}
		if len(f) != 4 || f[3] != "A" {
			return e, fmt.Errorf("res trya wants outcome A")
		}
		e.Out = history.OutAbort
		return e, nil
	default:
		return e, fmt.Errorf("unknown operation %q", f[1])
	}
}

func parseTxn(s string) (history.TxnID, error) {
	n, err := strconv.Atoi(s)
	if err != nil || n <= 0 {
		return 0, fmt.Errorf("invalid transaction id %q", s)
	}
	return history.TxnID(n), nil
}

func parseValue(s string) (history.Value, error) {
	n, err := strconv.ParseInt(s, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("invalid value %q", s)
	}
	return history.Value(n), nil
}
