package histio

import (
	"strings"
	"testing"

	"duopacity/internal/gen"
	"duopacity/internal/history"
	"duopacity/internal/litmus"
)

func TestRoundTripLitmus(t *testing.T) {
	for _, c := range litmus.Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			text := FormatString(c.H)
			back, err := ParseString(text)
			if err != nil {
				t.Fatalf("parse back: %v\n%s", err, text)
			}
			if back.Len() != c.H.Len() {
				t.Fatalf("round trip changed length: %d -> %d", c.H.Len(), back.Len())
			}
			for i := 0; i < back.Len(); i++ {
				if back.At(i) != c.H.At(i) {
					t.Fatalf("event %d: %v -> %v", i, c.H.At(i), back.At(i))
				}
			}
		})
	}
}

func TestRoundTripGenerated(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		h := gen.DUOpaque(gen.Config{
			Txns: 6, Objects: 3, OpsPerTxn: 3,
			PAbort: 0.2, PCommitPending: 0.1, PNoTryC: 0.1, PPendingOp: 0.1,
			Seed: seed,
		})
		back, err := ParseString(FormatString(h))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !h.Equivalent(back) || back.Len() != h.Len() {
			t.Fatalf("seed %d: round trip not identical", seed)
		}
	}
}

func TestParseShorthand(t *testing.T) {
	src := `
# Figure 3 of the paper, shorthand form.
write 1 X 1
read 2 X 1
commit 1
commit 2
`
	h, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 8 || h.NumTxns() != 2 {
		t.Fatalf("parsed %d events, %d txns; want 8, 2", h.Len(), h.NumTxns())
	}
	if !h.Txn(1).Committed() || !h.Txn(2).Committed() {
		t.Fatal("commits not parsed")
	}
}

func TestParseShorthandVariants(t *testing.T) {
	src := `
write 1 X 5 A    # write aborted the transaction
read 2 X A       # read aborted the transaction
commit 3 A       # tryC returned A
abort 4          # tryA
read 5 Y 0
`
	h, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if !h.Txn(1).Aborted() || !h.Txn(2).Aborted() || !h.Txn(3).Aborted() || !h.Txn(4).Aborted() {
		t.Fatal("aborts not parsed correctly")
	}
	if h.Txn(5).TComplete() {
		t.Fatal("T5 should be complete but not t-complete")
	}
}

func TestParseEventForm(t *testing.T) {
	src := `
inv write 1 X 1
inv read 2 X
res write 1 X 1 ok
inv tryc 1
res read 2 X 0
res tryc 1 C
inv trya 2
res trya 2 A
`
	h, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 8 {
		t.Fatalf("parsed %d events, want 8", h.Len())
	}
	if !h.Overlap(1, 2) {
		t.Fatal("interleaved transactions should overlap")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown directive", "foo 1 X", "unknown directive"},
		{"bad txn id", "read zero X 1", "invalid transaction id"},
		{"txn id zero", "read 0 X 1", "invalid transaction id"},
		{"bad value", "write 1 X abc", "invalid value"},
		{"bad write outcome", "write 1 X 1 ok", "write outcome must be A"},
		{"short event", "inv read 1", "wants an object"},
		{"bad tryc outcome", "inv tryc 1\nres tryc 1 X", "tryc outcome"},
		{"malformed history", "res read 1 X 1", "response without matching"},
		{"short line", "inv", "too short"},
		{"bad commit outcome", "commit 1 C", "commit outcome must be A"},
		{"abort args", "abort 1 2", "abort wants 1 argument"},
		{"bad res write outcome", "inv write 1 X 1\nres write 1 X 1 yes", "must be ok or A"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseString(tc.src)
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "  \n# full comment line\nwrite 1 X 1 # trailing comment\ncommit 1\n\n"
	h, err := ParseString(src)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 4 {
		t.Fatalf("parsed %d events, want 4", h.Len())
	}
}

func TestFormatMatchesDocumentedGrammar(t *testing.T) {
	h := history.NewBuilder().
		InvWrite(1, "X", 1).ResWrite(1, "X", 1).
		InvRead(2, "X").ResRead(2, "X", 0).
		InvTryCommit(1).ResCommit(1).
		InvTryAbort(2).ResAbort(2).
		History()
	got := FormatString(h)
	want := `inv write 1 X 1
res write 1 X 1 ok
inv read 2 X
res read 2 X 0
inv tryc 1
res tryc 1 C
inv trya 2
res trya 2 A
`
	if got != want {
		t.Fatalf("Format output:\n%s\nwant:\n%s", got, want)
	}
}

// TestParseEventsErrors exercises the line-level entry point directly:
// streaming consumers (ducheck -follow) call ParseEvents per line and
// depend on malformed input yielding an error, never a panic or a
// half-parsed event slice.
func TestParseEventsErrors(t *testing.T) {
	cases := []struct {
		name, line, want string
	}{
		{"unknown directive", "frobnicate 1 X 1", "unknown directive"},
		{"unknown operation", "inv frob 1", "unknown operation"},
		{"event too short", "res 1", "too short"},
		{"bad txn id word", "commit one", "invalid transaction id"},
		{"negative txn id", "read -1 X 1", "invalid transaction id"},
		{"read arity", "read 1 X", "read wants 3 arguments"},
		{"read extra", "read 1 X 1 2", "read wants 3 arguments"},
		{"write arity", "write 1 X", "write wants 3 or 4 arguments"},
		{"write bad value", "write 1 X lots", "invalid value"},
		{"write bad outcome", "write 1 X 1 C", "write outcome must be A"},
		{"commit arity", "commit", "commit wants 1 or 2 arguments"},
		{"commit bad outcome", "commit 1 X", "commit outcome must be A"},
		{"abort arity", "abort", "abort wants 1 argument"},
		{"inv read arity", "inv read 1 X extra", "inv read wants 2 arguments"},
		{"res read missing value", "res read 1 X", "res read wants 3 arguments"},
		{"res write bad outcome", "res write 1 X 1 no", "must be ok or A"},
		{"inv tryc arity", "inv tryc 1 X", "inv tryc wants 1 argument"},
		{"res tryc bad outcome", "res tryc 1 Z", "tryc outcome must be C or A"},
		{"res trya bad outcome", "res trya 1 C", "res trya wants outcome A"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			evs, err := ParseEvents(tc.line)
			if err == nil {
				t.Fatalf("no error for %q (got %v)", tc.line, evs)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
			if len(evs) != 0 {
				t.Fatalf("error case returned events: %v", evs)
			}
		})
	}
}

// TestParseEventsCounts pins the expansion contract: shorthand lines
// expand to the adjacent inv/res pair, event lines yield one event, and
// comments or blank lines yield none without error.
func TestParseEventsCounts(t *testing.T) {
	cases := []struct {
		line string
		want int
	}{
		{"", 0},
		{"   ", 0},
		{"# comment", 0},
		{"write 1 X 1 # trailing comment", 2},
		{"read 2 X A", 2},
		{"commit 1", 2},
		{"commit 1 A", 2},
		{"abort 3", 2},
		{"inv read 1 X", 1},
		{"res read 1 X 7", 1},
		{"inv tryc 1", 1},
		{"res tryc 1 C", 1},
		{"res trya 2 A", 1},
	}
	for _, tc := range cases {
		evs, err := ParseEvents(tc.line)
		if err != nil {
			t.Errorf("ParseEvents(%q) error: %v", tc.line, err)
			continue
		}
		if len(evs) != tc.want {
			t.Errorf("ParseEvents(%q) = %d events, want %d", tc.line, len(evs), tc.want)
		}
	}
}

// eventShapes enumerates one canonical event per renderable shape of the
// format: exactly the field combinations formatEvent distinguishes, with
// unpreserved fields left zero so a round trip must reproduce the event
// verbatim.
func eventShapes(txn history.TxnID, obj history.Var, val history.Value) []history.Event {
	return []history.Event{
		{Kind: history.Inv, Op: history.OpRead, Txn: txn, Obj: obj},
		{Kind: history.Inv, Op: history.OpWrite, Txn: txn, Obj: obj, Arg: val},
		{Kind: history.Inv, Op: history.OpTryCommit, Txn: txn},
		{Kind: history.Inv, Op: history.OpTryAbort, Txn: txn},
		{Kind: history.Res, Op: history.OpRead, Txn: txn, Obj: obj, Val: val, Out: history.OutOK},
		{Kind: history.Res, Op: history.OpRead, Txn: txn, Obj: obj, Out: history.OutAbort},
		{Kind: history.Res, Op: history.OpWrite, Txn: txn, Obj: obj, Arg: val, Out: history.OutOK},
		{Kind: history.Res, Op: history.OpWrite, Txn: txn, Obj: obj, Arg: val, Out: history.OutAbort},
		{Kind: history.Res, Op: history.OpTryCommit, Txn: txn, Out: history.OutCommit},
		{Kind: history.Res, Op: history.OpTryCommit, Txn: txn, Out: history.OutAbort},
		{Kind: history.Res, Op: history.OpTryAbort, Txn: txn, Out: history.OutAbort},
	}
}

// TestEventRoundTrip pins the encoder/decoder duality event by event:
// every renderable event shape survives FormatEvent -> ParseEvents
// unchanged, and WriteEvents agrees with the per-event form.
func TestEventRoundTrip(t *testing.T) {
	evs := eventShapes(7, "X", 42)
	evs = append(evs, eventShapes(1, "obj-0", -3)...)
	for _, e := range evs {
		line := FormatEvent(e)
		if strings.ContainsAny(line, "\n") {
			t.Fatalf("FormatEvent(%v) contains a newline: %q", e, line)
		}
		back, err := ParseEvents(line)
		if err != nil {
			t.Fatalf("ParseEvents(FormatEvent(%v)) = %q: %v", e, line, err)
		}
		if len(back) != 1 || back[0] != e {
			t.Fatalf("round trip changed event: %v -> %q -> %v", e, line, back)
		}
	}
	var sb strings.Builder
	if err := WriteEvents(&sb, evs); err != nil {
		t.Fatal(err)
	}
	want := ""
	for _, e := range evs {
		want += FormatEvent(e) + "\n"
	}
	if sb.String() != want {
		t.Fatalf("WriteEvents disagrees with FormatEvent lines:\n%q\nvs\n%q", sb.String(), want)
	}
}
