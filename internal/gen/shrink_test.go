package gen

import (
	"math/rand"
	"testing"

	"duopacity/internal/histio"
	"duopacity/internal/history"
	"duopacity/internal/spec"
)

// plantViolation builds a du-opaque unique-writes history from the seed
// and plants a deferred-update violation with MutateFutureRead (falling
// back to a sourceless read when the generated history offers no future
// read). Returns nil when neither mutation applies.
func plantViolation(seed int64) *history.History {
	h := DUOpaque(Config{
		Txns: 8, Objects: 3, OpsPerTxn: 3, ReadFraction: 0.5,
		UniqueWrites: true, PAbort: 0.15, PCommitPending: 0.1, Relax: 5, Seed: seed,
	})
	rng := rand.New(rand.NewSource(seed))
	if m, ok := MutateFutureRead(h, rng); ok {
		return m
	}
	if m, ok := MutateSourcelessRead(h, rng); ok {
		return m
	}
	return nil
}

func TestShrinkViolationPreservesAndNeverGrows(t *testing.T) {
	shrunk := 0
	for seed := int64(1); seed <= 40; seed++ {
		h := plantViolation(seed)
		if h == nil {
			continue
		}
		v := spec.CheckDUOpacity(h)
		if v.OK || v.Undecided {
			continue // mutation landed on an undetectable spot
		}
		m := ShrinkViolation(h, spec.DUOpacity)
		if m.Len() > h.Len() {
			t.Fatalf("seed %d: shrinking grew the history: %d -> %d events", seed, h.Len(), m.Len())
		}
		mv := spec.CheckDUOpacity(m)
		if mv.OK || mv.Undecided {
			t.Fatalf("seed %d: shrunk history no longer violates du-opacity:\n%s", seed, m)
		}
		if m.Len() < h.Len() {
			shrunk++
		}
		// Minimality: no single further deletion may preserve the
		// violation (that is exactly Shrink's fixpoint condition).
		for _, k := range m.Txns() {
			if cand := withoutTxn(m, k); cand != nil {
				if cv := spec.CheckDUOpacity(cand); !cv.OK && !cv.Undecided {
					t.Fatalf("seed %d: dropping T%d still violates; shrink not at fixpoint", seed, k)
				}
			}
		}
	}
	if shrunk == 0 {
		t.Fatal("no seed produced a strictly shrinkable violation; the test exercises nothing")
	}
}

func TestShrinkLeavesNonInterestingUntouched(t *testing.T) {
	h := DUOpaque(Config{Txns: 4, Seed: 3})
	if got := Shrink(h, func(*history.History) bool { return false }); got != h {
		t.Fatal("Shrink must return h unchanged when interesting(h) is false")
	}
}

func TestShrinkToKnownMinimum(t *testing.T) {
	// A planted sourceless read shrinks to just the reading transaction —
	// and further, to just the read and the ending, since every other
	// transaction and operation is irrelevant to the violation.
	b := history.NewBuilder()
	b.Write(1, "X", 1).Commit(1)
	b.Write(2, "Y", 2).Commit(2)
	b.Read(3, "X", 99).Commit(3) // 99 is written nowhere
	b.Read(4, "Y", 2).Commit(4)
	h := b.History()
	m := ShrinkViolation(h, spec.DUOpacity)
	if got, want := m.NumTxns(), 1; got != want {
		t.Fatalf("minimal counterexample has %d transactions, want %d:\n%s", got, want, m)
	}
	if v := spec.CheckDUOpacity(m); v.OK {
		t.Fatal("minimal counterexample no longer violates")
	}
}

// FuzzShrink drives the shrinker with fuzz-mutated histio inputs: any
// parseable history that decidedly violates du-opacity must shrink to a
// history that still violates it and never grew. This extends the
// histio fuzzing style to the shrinker's two invariants.
func FuzzShrink(f *testing.F) {
	for seed := int64(1); seed <= 5; seed++ {
		if h := plantViolation(seed); h != nil {
			f.Add(histio.FormatString(h))
		}
	}
	f.Add("write 1 X 1\ncommit 1\nread 2 X 5\ncommit 2\n")
	f.Add("inv write 1 X 1\ninv read 2 X\nres read 2 X 1\ncommit 2\nres write 1 X 1 ok\ncommit 1\n")
	f.Fuzz(func(t *testing.T, src string) {
		h, err := histio.ParseString(src)
		if err != nil {
			return
		}
		if h.NumTxns() > 12 || h.Len() > 120 {
			return // keep the exact checker fast under fuzzing
		}
		const limit = 200_000
		v := spec.CheckDUOpacity(h, spec.WithNodeLimit(limit))
		if v.OK || v.Undecided {
			return
		}
		m := ShrinkViolation(h, spec.DUOpacity, spec.WithNodeLimit(limit))
		if m.Len() > h.Len() {
			t.Fatalf("shrinking grew the history: %d -> %d events\nin:\n%s", h.Len(), m.Len(), src)
		}
		mv := spec.CheckDUOpacity(m, spec.WithNodeLimit(limit))
		if mv.OK || mv.Undecided {
			t.Fatalf("shrunk history no longer violates du-opacity\nin:\n%s\nout:\n%s", src, histio.FormatString(m))
		}
	})
}
