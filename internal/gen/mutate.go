package gen

import (
	"math/rand"

	"duopacity/internal/history"
)

// MutateSourcelessRead rewrites one value-returning read to return a value
// never written anywhere, which every criterion must reject. It returns
// the mutated history and false when the history has no such read.
func MutateSourcelessRead(h *history.History, rng *rand.Rand) (*history.History, bool) {
	evs := h.Events()
	var idxs []int
	var maxVal history.Value
	for i, e := range evs {
		if e.Kind == history.Res && e.Op == history.OpRead && e.Out == history.OutOK {
			idxs = append(idxs, i)
		}
		if e.Op == history.OpWrite && e.Arg > maxVal {
			maxVal = e.Arg
		}
		if e.Op == history.OpRead && e.Val > maxVal {
			maxVal = e.Val
		}
	}
	if len(idxs) == 0 {
		return h, false
	}
	i := idxs[rng.Intn(len(idxs))]
	evs[i].Val = maxVal + 1
	return history.MustFromEvents(evs), true
}

// MutateFutureRead plants a deferred-update violation: it finds a read
// whose response follows the tryC invocation of the (unique) writer of the
// value read, and moves the response to just before that invocation. The
// read then returns a value no transaction had started committing — the
// Figure 4 signature — so the result is never du-opaque, while final-state
// opacity may still hold. Detection is guaranteed when h has unique
// writes. Returns false when no eligible read exists.
func MutateFutureRead(h *history.History, rng *rand.Rand) (*history.History, bool) {
	evs := h.Events()
	type candidate struct {
		resIdx, destIdx int
	}
	var cands []candidate
	for _, k := range h.Txns() {
		t := h.Txn(k)
		overlay := make(map[history.Var]bool)
		for _, op := range t.Ops {
			if op.Pending {
				break
			}
			switch op.Kind {
			case history.OpWrite:
				if op.Out == history.OutOK {
					overlay[op.Obj] = true
				}
			case history.OpRead:
				if op.Out != history.OutOK || overlay[op.Obj] || op.Val == history.InitValue {
					continue
				}
				// Find a writer of this value whose tryC invocation lies
				// strictly between the read's invocation and response: the
				// response can then be hoisted just before it.
				for _, m := range h.Txns() {
					if m == k {
						continue
					}
					w := h.Txn(m)
					if w.TryCInv <= op.InvIndex || w.TryCInv >= op.ResIndex {
						continue
					}
					if lw, ok := w.LastWrites()[op.Obj]; ok && lw == op.Val {
						cands = append(cands, candidate{resIdx: op.ResIndex, destIdx: w.TryCInv})
					}
				}
			}
		}
	}
	if len(cands) == 0 {
		return h, false
	}
	c := cands[rng.Intn(len(cands))]
	// Hoist evs[c.resIdx] to position c.destIdx (before the writer's tryC
	// invocation). No event of the reading transaction lies in between:
	// the operation was pending over that whole window.
	moved := evs[c.resIdx]
	copy(evs[c.destIdx+1:c.resIdx+1], evs[c.destIdx:c.resIdx])
	evs[c.destIdx] = moved
	return history.MustFromEvents(evs), true
}

// MutateAbortWriter flips a committed writer's tryC response to A_k. Any
// reader of its values becomes a read from an aborted transaction, which
// every opacity-style criterion rejects (guaranteed under unique writes
// when the writer had a reader). Returns false if no committed writer's
// value was read by another transaction.
func MutateAbortWriter(h *history.History, rng *rand.Rand) (*history.History, bool) {
	evs := h.Events()
	type rv struct {
		obj history.Var
		val history.Value
	}
	readers := make(map[rv][]history.TxnID)
	for _, k := range h.Txns() {
		for _, op := range h.Txn(k).Ops {
			if op.Kind == history.OpRead && !op.Pending && op.Out == history.OutOK {
				key := rv{op.Obj, op.Val}
				readers[key] = append(readers[key], k)
			}
		}
	}
	var cands []int // tryC response event indexes
	for _, m := range h.Txns() {
		w := h.Txn(m)
		if !w.Committed() {
			continue
		}
	scan:
		for obj, v := range w.LastWrites() {
			for _, reader := range readers[rv{obj, v}] {
				if reader != m {
					// A different transaction read this value: aborting
					// the writer orphans that read.
					cands = append(cands, w.TryCRes)
					break scan
				}
			}
		}
	}
	if len(cands) == 0 {
		return h, false
	}
	evs[cands[rng.Intn(len(cands))]].Out = history.OutAbort
	return history.MustFromEvents(evs), true
}
