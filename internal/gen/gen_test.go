package gen

import (
	"math/rand"
	"testing"

	"duopacity/internal/history"
	"duopacity/internal/spec"
)

// mixedCfg returns a configuration with every transaction shape enabled.
func mixedCfg(seed int64, unique bool) Config {
	return Config{
		Txns:           7,
		Objects:        3,
		OpsPerTxn:      3,
		ReadFraction:   0.55,
		UniqueWrites:   unique,
		PAbort:         0.15,
		PCommitPending: 0.1,
		PNoTryC:        0.1,
		PPendingOp:     0.1,
		Relax:          5,
		Seed:           seed,
	}
}

// isContiguous reports whether every transaction's events form one block
// (no interleaving). Note this is stronger than the paper's t-sequential,
// which is defined through ≺RT and therefore treats a serial history with
// a never-t-complete transaction as "overlapping".
func isContiguous(h *history.History) bool {
	evs := h.Events()
	last := make(map[history.TxnID]int)
	for i, e := range evs {
		if j, ok := last[e.Txn]; ok && j != i-1 {
			return false
		}
		last[e.Txn] = i
	}
	return true
}

func TestSerialIsAcceptedByAllCriteria(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		h := Serial(mixedCfg(seed, false))
		if !isContiguous(h) {
			t.Fatalf("seed %d: serial generator produced interleaved transactions", seed)
		}
		for _, c := range spec.AllCriteria() {
			if v := spec.Check(h, c); !v.OK {
				t.Fatalf("seed %d: %s rejected a serial history: %s\n%s", seed, c, v.Reason, h)
			}
		}
	}
}

func TestDUOpaqueGeneratorSound(t *testing.T) {
	// The generated witness must verify independently, and the checker
	// must accept (possibly with a different witness).
	for seed := int64(0); seed < 60; seed++ {
		for _, unique := range []bool{false, true} {
			cfg := mixedCfg(seed, unique)
			h, w := DUOpaqueWithWitness(cfg)
			s, err := history.SeqFromHistory(h, w.Order, w.Commit)
			if err != nil {
				t.Fatalf("seed %d: witness order invalid: %v", seed, err)
			}
			if err := spec.VerifySerialization(h, s); err != nil {
				t.Fatalf("seed %d unique=%v: generated witness rejected: %v\n%s", seed, unique, err, h)
			}
			if v := spec.CheckDUOpacity(h); !v.OK {
				t.Fatalf("seed %d unique=%v: checker rejected generated du-opaque history: %s", seed, unique, v.Reason)
			}
		}
	}
}

func TestWitnessAgreesWithChecker(t *testing.T) {
	// The checker's own witness must also pass independent verification —
	// the DFS and the definition are implemented separately.
	for seed := int64(0); seed < 40; seed++ {
		h := DUOpaque(mixedCfg(seed, seed%2 == 0))
		v := spec.CheckDUOpacity(h)
		if !v.OK {
			t.Fatalf("seed %d: rejected: %s", seed, v.Reason)
		}
		if err := spec.VerifySerialization(h, v.Serialization); err != nil {
			t.Fatalf("seed %d: checker witness fails verification: %v", seed, err)
		}
	}
}

// TestPrefixClosureProperty is the executable Corollary 2: every prefix of
// a generated du-opaque history is du-opaque.
func TestPrefixClosureProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		h := DUOpaque(mixedCfg(seed, false))
		for i := 0; i <= h.Len(); i++ {
			if v := spec.CheckDUOpacity(h.Prefix(i)); !v.OK {
				t.Fatalf("seed %d: prefix %d/%d not du-opaque: %s\n%s",
					seed, i, h.Len(), v.Reason, h.Prefix(i))
			}
		}
	}
}

// TestTheorem10Property: du-opacity implies opacity on every generated
// history, mutated or not (strictness is witnessed by litmus Figure 4).
func TestTheorem10Property(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for seed := int64(0); seed < 40; seed++ {
		h := DUOpaque(mixedCfg(seed, seed%2 == 0))
		if seed%3 == 1 {
			h, _ = MutateFutureRead(h, rng)
		}
		if seed%3 == 2 {
			h, _ = MutateSourcelessRead(h, rng)
		}
		du := spec.CheckDUOpacity(h).OK
		op := spec.CheckOpacity(h).OK
		if du && !op {
			t.Fatalf("seed %d: du-opaque history is not opaque (contradicts Theorem 10)\n%s", seed, h)
		}
	}
}

// TestTheorem11Property: under unique writes, opacity and du-opacity
// coincide — on generated histories and on their mutants.
func TestTheorem11Property(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for seed := int64(0); seed < 40; seed++ {
		h := DUOpaque(mixedCfg(seed, true))
		switch seed % 4 {
		case 1:
			h, _ = MutateFutureRead(h, rng)
		case 2:
			h, _ = MutateSourcelessRead(h, rng)
		case 3:
			h, _ = MutateAbortWriter(h, rng)
		}
		if !spec.UniqueWrites(h) {
			t.Fatalf("seed %d: generator violated unique writes", seed)
		}
		du := spec.CheckDUOpacity(h).OK
		op := spec.CheckOpacity(h).OK
		if du != op {
			t.Fatalf("seed %d: unique-writes history has du=%v opacity=%v (contradicts Theorem 11)\n%s",
				seed, du, op, h)
		}
	}
}

func TestMutateSourcelessReadDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	mutated := 0
	for seed := int64(0); seed < 30 && mutated < 10; seed++ {
		h := DUOpaque(mixedCfg(seed, true))
		m, ok := MutateSourcelessRead(h, rng)
		if !ok {
			continue
		}
		mutated++
		for _, c := range []spec.Criterion{spec.DUOpacity, spec.FinalStateOpacity, spec.Opacity} {
			if v := spec.Check(m, c); v.OK {
				t.Fatalf("seed %d: %s accepted a sourceless read", seed, c)
			}
		}
	}
	if mutated == 0 {
		t.Fatal("mutator never applied")
	}
}

func TestMutateFutureReadDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mutated := 0
	for seed := int64(0); seed < 200 && mutated < 10; seed++ {
		h := DUOpaque(mixedCfg(seed, true))
		m, ok := MutateFutureRead(h, rng)
		if !ok {
			continue
		}
		mutated++
		if v := spec.CheckDUOpacity(m); v.OK {
			t.Fatalf("seed %d: du-opacity accepted a read from the future\n%s", seed, m)
		}
	}
	if mutated == 0 {
		t.Fatal("mutator never applied; generator parameters too tame")
	}
}

func TestMutateAbortWriterDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	mutated := 0
	for seed := int64(0); seed < 200 && mutated < 10; seed++ {
		h := DUOpaque(mixedCfg(seed, true))
		m, ok := MutateAbortWriter(h, rng)
		if !ok {
			continue
		}
		mutated++
		if v := spec.CheckFinalStateOpacity(m); v.OK {
			t.Fatalf("seed %d: final-state opacity accepted a read from an aborted writer\n%s", seed, m)
		}
	}
	if mutated == 0 {
		t.Fatal("mutator never applied")
	}
}

func TestUniqueWritesMode(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		if h := DUOpaque(mixedCfg(seed, true)); !spec.UniqueWrites(h) {
			t.Fatalf("seed %d: UniqueWrites mode produced duplicate writes", seed)
		}
	}
}

func TestFastPathAgreesOnGenerated(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for seed := int64(0); seed < 30; seed++ {
		h := DUOpaque(mixedCfg(seed, true))
		if seed%2 == 1 {
			h, _ = MutateFutureRead(h, rng)
		}
		exact := spec.CheckDUOpacity(h)
		fast := spec.CheckDUOpacityFast(h)
		if exact.OK != fast.OK {
			t.Fatalf("seed %d: exact=%v fast=%v", seed, exact.OK, fast.OK)
		}
		if fast.OK && fast.Nodes > exact.Nodes {
			// Not a failure — but the hint should rarely hurt. Only report.
			t.Logf("seed %d: fast explored %d nodes vs exact %d", seed, fast.Nodes, exact.Nodes)
		}
	}
}

func TestRelaxZeroKeepsSerial(t *testing.T) {
	cfg := mixedCfg(1, false)
	cfg.Relax = -1
	h := DUOpaque(cfg)
	if !isContiguous(h) {
		t.Fatal("Relax<0 should keep transactions contiguous")
	}
	// A fully-committed serial history is also t-sequential in the
	// paper's ≺RT sense.
	all := Config{Txns: 5, Objects: 2, OpsPerTxn: 2, Relax: -1, Seed: 2}
	if h := DUOpaque(all); !h.TSequential() {
		t.Fatal("fully committed serial history should be t-sequential")
	}
}

func TestObjVarNaming(t *testing.T) {
	if objVar(0) != "XA" || objVar(25) != "XZ" || objVar(26) != "XA1" {
		t.Fatalf("objVar mapping: %s %s %s", objVar(0), objVar(25), objVar(26))
	}
}
