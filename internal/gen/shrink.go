package gen

import (
	"duopacity/internal/history"
	"duopacity/internal/spec"
)

// Shrink greedily minimizes h while interesting(h) stays true, and returns
// the smallest history found. Two reduction passes alternate to a fixpoint:
// deleting a whole transaction (all of its events), and deleting a single
// t-operation (its invocation/response event pair, or the lone invocation
// of a pending operation — including a transaction's ending tryC/tryA,
// which turns it into a complete-but-not-t-complete transaction). Both
// moves preserve well-formedness, every intermediate candidate is
// re-checked with interesting, and every accepted candidate has strictly
// fewer events, so the result never grows and Shrink terminates.
//
// interesting must be true for h itself; otherwise h is returned unchanged.
// The predicate must be deterministic: Shrink calls it O(passes * (txns +
// ops)) times.
func Shrink(h *history.History, interesting func(*history.History) bool) *history.History {
	if !interesting(h) {
		return h
	}
	for changed := true; changed; {
		changed = false
		// Pass 1: drop whole transactions, re-fetching the id list after
		// every successful deletion.
	txns:
		for {
			for _, k := range h.Txns() {
				if cand := withoutTxn(h, k); cand != nil && interesting(cand) {
					h = cand
					changed = true
					continue txns
				}
			}
			break
		}
		// Pass 2: drop single operations.
	ops:
		for {
			for _, k := range h.Txns() {
				for j := range h.Txn(k).Ops {
					if cand := withoutOp(h, k, j); cand != nil && interesting(cand) {
						h = cand
						changed = true
						continue ops
					}
				}
			}
			break
		}
	}
	return h
}

// ShrinkViolation minimizes h while it keeps violating criterion c — i.e.
// while spec.Check rejects it outright (undecided verdicts do not count as
// violations, so a shrink can never launder a decided violation into an
// undecided one). The options are forwarded to every re-check; pass a
// node limit to bound the total shrinking work.
func ShrinkViolation(h *history.History, c spec.Criterion, opts ...spec.Option) *history.History {
	return Shrink(h, func(g *history.History) bool {
		v := spec.Check(g, c, opts...)
		return !v.OK && !v.Undecided
	})
}

// withoutTxn returns h with every event of transaction k removed, or nil
// when the deletion is impossible (unknown transaction or a malformed
// remainder, which cannot happen for well-formed h but is guarded anyway).
func withoutTxn(h *history.History, k history.TxnID) *history.History {
	evs := h.Events()
	out := evs[:0]
	removed := false
	for _, e := range evs {
		if e.Txn == k {
			removed = true
			continue
		}
		out = append(out, e)
	}
	if !removed {
		return nil
	}
	g, err := history.FromEvents(out)
	if err != nil {
		return nil
	}
	return g
}

// withoutOp returns h with the j-th operation of transaction k removed, or
// nil when the removal leaves a malformed history.
func withoutOp(h *history.History, k history.TxnID, j int) *history.History {
	t := h.Txn(k)
	if t == nil || j >= len(t.Ops) {
		return nil
	}
	op := t.Ops[j]
	evs := h.Events()
	out := make([]history.Event, 0, len(evs)-1)
	for i, e := range evs {
		if i == op.InvIndex || (!op.Pending && i == op.ResIndex) {
			continue
		}
		out = append(out, e)
	}
	g, err := history.FromEvents(out)
	if err != nil {
		return nil
	}
	return g
}
