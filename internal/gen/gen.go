// Package gen generates transactional histories for property-based testing
// and benchmarking of the checkers in package spec.
//
// Three sources:
//
//   - Serial: a legal t-sequential execution with randomly shaped
//     transactions (committed, aborted, commit-pending, never-t-complete,
//     or cut mid-operation).
//   - DUOpaque: a Serial base relaxed into a genuinely concurrent history
//     by sound event moves (invocations travel earlier, responses travel
//     later). Widening an operation's invocation–response window can only
//     erase real-time constraints and can never invalidate the base
//     serialization's legality or deferred-update condition, so the result
//     is du-opaque by construction and the base order is a witness.
//   - Mutators that plant specific violations (reads from the future,
//     sourceless values, reads from aborted writers) with guaranteed
//     detection under unique writes.
package gen

import (
	"math/rand"

	"duopacity/internal/history"
)

// Config parameterizes generation. The zero value is not useful; call
// (Config).withDefaults or use the exported generator functions, which
// apply defaults.
type Config struct {
	Txns      int // number of transactions (default 6)
	Objects   int // number of t-objects (default 3)
	OpsPerTxn int // operations per transaction before the ending (default 3)
	// ReadFraction is the probability that a generated operation is a
	// read (default 0.5). 0 means unset; pass any negative value for an
	// explicit zero — write-only histories (the harness.Workload
	// contract).
	ReadFraction float64
	// UniqueWrites makes every written value globally unique (Theorem 11's
	// hypothesis); otherwise values are drawn from [1, ValueRange].
	UniqueWrites bool
	ValueRange   int64 // default 3
	// Shape probabilities (the remainder commits): aborted via tryC->A,
	// commit-pending (tryC invoked, no response), never invoking tryC, and
	// cut with a pending operation.
	PAbort         float64
	PCommitPending float64
	PNoTryC        float64
	PPendingOp     float64
	// Relax scales how many adjacent-swap passes loosen the serial base
	// (default 4; 0 keeps the history t-sequential).
	Relax int
	Seed  int64
}

// ExplicitReadFraction maps a user-facing read-fraction value (a CLI
// flag, say) onto the sentinel contract shared by Config.ReadFraction
// and harness.Workload.ReadFraction, where the zero value means "unset"
// (default 0.5): an explicit 0 becomes the documented negative spelling,
// so write-only histories and workloads stay expressible.
func ExplicitReadFraction(f float64) float64 {
	if f == 0 {
		return -1
	}
	return f
}

func (c Config) withDefaults() Config {
	if c.Txns == 0 {
		c.Txns = 6
	}
	if c.Objects == 0 {
		c.Objects = 3
	}
	if c.OpsPerTxn == 0 {
		c.OpsPerTxn = 3
	}
	if c.ReadFraction == 0 {
		c.ReadFraction = 0.5
	} else if c.ReadFraction < 0 {
		c.ReadFraction = 0 // the documented "explicit zero": write-only
	}
	if c.ValueRange == 0 {
		c.ValueRange = 3
	}
	if c.Relax == 0 {
		c.Relax = 4
	}
	return c
}

// shape is the planned ending of a transaction.
type shape uint8

const (
	shapeCommit shape = iota + 1
	shapeAbort
	shapeCommitPending
	shapeNoTryC
	shapePendingOp
)

// Witness is the correct-by-construction serialization of a generated
// history: the serial base order with its commit decisions.
type Witness struct {
	Order  []history.TxnID
	Commit map[history.TxnID]bool
}

// Serial generates a legal t-sequential history (no relaxation).
func Serial(cfg Config) *history.History {
	cfg = cfg.withDefaults()
	cfg.Relax = -1
	h, _ := DUOpaqueWithWitness(cfg)
	return h
}

// DUOpaque generates a du-opaque concurrent history.
func DUOpaque(cfg Config) *history.History {
	h, _ := DUOpaqueWithWitness(cfg)
	return h
}

// DUOpaqueWithWitness generates a du-opaque history together with the
// serialization that witnesses it.
func DUOpaqueWithWitness(cfg Config) (*history.History, Witness) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	state := make([]history.Value, cfg.Objects) // committed state
	nextVal := int64(0)
	value := func() history.Value {
		if cfg.UniqueWrites {
			nextVal++
			return history.Value(nextVal)
		}
		return history.Value(1 + rng.Int63n(cfg.ValueRange))
	}

	w := Witness{Commit: make(map[history.TxnID]bool)}
	var evs []history.Event
	for k := history.TxnID(1); int(k) <= cfg.Txns; k++ {
		sh := shapeCommit
		switch p := rng.Float64(); {
		case p < cfg.PAbort:
			sh = shapeAbort
		case p < cfg.PAbort+cfg.PCommitPending:
			sh = shapeCommitPending
		case p < cfg.PAbort+cfg.PCommitPending+cfg.PNoTryC:
			sh = shapeNoTryC
		case p < cfg.PAbort+cfg.PCommitPending+cfg.PNoTryC+cfg.PPendingOp:
			sh = shapePendingOp
		}
		w.Order = append(w.Order, k)
		w.Commit[k] = sh == shapeCommit || sh == shapeCommitPending

		overlay := make(map[int]history.Value)
		nops := 1 + rng.Intn(cfg.OpsPerTxn)
		for j := 0; j < nops; j++ {
			obj := rng.Intn(cfg.Objects)
			x := objVar(obj)
			cut := sh == shapePendingOp && j == nops-1
			if rng.Float64() < cfg.ReadFraction {
				evs = append(evs, history.Event{Kind: history.Inv, Op: history.OpRead, Txn: k, Obj: x})
				if cut {
					break
				}
				v, ok := overlay[obj]
				if !ok {
					v = state[obj]
				}
				evs = append(evs, history.Event{Kind: history.Res, Op: history.OpRead, Txn: k, Obj: x, Val: v, Out: history.OutOK})
			} else {
				v := value()
				evs = append(evs, history.Event{Kind: history.Inv, Op: history.OpWrite, Txn: k, Obj: x, Arg: v})
				if cut {
					break
				}
				evs = append(evs, history.Event{Kind: history.Res, Op: history.OpWrite, Txn: k, Obj: x, Arg: v, Out: history.OutOK})
				overlay[obj] = v
			}
		}
		switch sh {
		case shapeCommit:
			evs = append(evs,
				history.Event{Kind: history.Inv, Op: history.OpTryCommit, Txn: k},
				history.Event{Kind: history.Res, Op: history.OpTryCommit, Txn: k, Out: history.OutCommit})
		case shapeAbort:
			evs = append(evs,
				history.Event{Kind: history.Inv, Op: history.OpTryCommit, Txn: k},
				history.Event{Kind: history.Res, Op: history.OpTryCommit, Txn: k, Out: history.OutAbort})
		case shapeCommitPending:
			evs = append(evs, history.Event{Kind: history.Inv, Op: history.OpTryCommit, Txn: k})
		case shapeNoTryC, shapePendingOp:
			// Nothing: complete-but-not-t-complete, or already cut.
		}
		if w.Commit[k] {
			// Commit-pending transactions count as committed in the base
			// state evolution; the witness commits them.
			for obj, v := range overlay {
				state[obj] = v
			}
		}
	}

	if cfg.Relax > 0 {
		relax(evs, cfg.Relax*len(evs), rng)
	}
	return history.MustFromEvents(evs), w
}

// relax performs sound adjacent swaps: an invocation may travel earlier
// past events of other transactions, and a response may travel later. Both
// moves only widen operation windows, which can only erase real-time
// constraints; legality and the deferred-update condition of the base
// serialization are untouched (read responses only move later, and tryC
// invocations only move earlier).
func relax(evs []history.Event, passes int, rng *rand.Rand) {
	if len(evs) < 2 {
		return
	}
	for p := 0; p < passes; p++ {
		i := rng.Intn(len(evs) - 1)
		a, b := evs[i], evs[i+1]
		if a.Txn == b.Txn {
			continue
		}
		if b.Kind == history.Inv || a.Kind == history.Res {
			evs[i], evs[i+1] = b, a
		}
	}
}

func objVar(obj int) history.Var {
	return history.Var("X" + string(rune('A'+obj%26)) + suffix(obj/26))
}

func suffix(n int) string {
	if n == 0 {
		return ""
	}
	s := ""
	for n > 0 {
		s = string(rune('0'+n%10)) + s
		n /= 10
	}
	return s
}
