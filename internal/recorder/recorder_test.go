package recorder

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"duopacity/internal/history"
	"duopacity/internal/spec"
	"duopacity/internal/stm"
	"duopacity/internal/stm/dstm"
	"duopacity/internal/stm/engines"
	"duopacity/internal/stm/etl"
	"duopacity/internal/stm/norec"
	"duopacity/internal/stm/ple"
	"duopacity/internal/stm/tl2"
)

func TestRecordsSerialTransaction(t *testing.T) {
	r := New(tl2.New(2))
	tx := r.Begin()
	if tx.ID() != 1 {
		t.Fatalf("first txn id = %d, want 1", tx.ID())
	}
	if v, err := tx.Read(0); err != nil || v != 0 {
		t.Fatalf("read = %d, %v", v, err)
	}
	if err := tx.Write(1, 5); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	h := r.History()
	if h.Len() != 6 {
		t.Fatalf("history length = %d, want 6:\n%s", h.Len(), h)
	}
	tk := h.Txn(1)
	if !tk.Committed() {
		t.Fatal("recorded transaction not committed")
	}
	ops := tk.Ops
	if ops[0].Kind != history.OpRead || ops[0].Obj != "X0" || ops[0].Val != 0 {
		t.Errorf("op0 = %v, want read(X0)->0", ops[0])
	}
	if ops[1].Kind != history.OpWrite || ops[1].Obj != "X1" || ops[1].Arg != 5 {
		t.Errorf("op1 = %v, want write(X1,5)", ops[1])
	}
	if v := spec.CheckDUOpacity(h); !v.OK {
		t.Errorf("recorded serial history not du-opaque: %s", v.Reason)
	}
}

func TestRecordsAbortAsOperationResponse(t *testing.T) {
	// When an engine op returns ErrAborted, the recorded history shows
	// that operation returning A_k, and the transaction is t-complete.
	tm := tl2.New(1)
	r := New(tm)

	victim := r.Begin()
	if _, err := victim.Read(0); err != nil {
		t.Fatalf("read: %v", err)
	}
	// Interfering committed write invalidates the victim's read version.
	if err := r.Atomically(func(tx *Txn) error { return tx.Write(0, 1) }); err != nil {
		t.Fatalf("interferer: %v", err)
	}
	if _, err := victim.Read(0); !errors.Is(err, stm.ErrAborted) {
		t.Fatal("expected the victim's read to abort")
	}
	victim.Abort() // must not add tryA events after the A_k response

	h := r.History()
	tk := h.Txn(1)
	if !tk.Aborted() {
		t.Fatalf("victim not recorded as aborted:\n%s", h)
	}
	last := tk.Ops[len(tk.Ops)-1]
	if last.Kind != history.OpRead || last.Out != history.OutAbort {
		t.Fatalf("last op = %v, want aborted read", last)
	}
	if v := spec.CheckDUOpacity(h); !v.OK {
		t.Errorf("recorded history not du-opaque: %s", v.Reason)
	}
}

func TestRecordsExplicitAbort(t *testing.T) {
	r := New(tl2.New(1))
	tx := r.Begin()
	if err := tx.Write(0, 3); err != nil {
		t.Fatalf("write: %v", err)
	}
	tx.Abort()
	h := r.History()
	tk := h.Txn(1)
	last := tk.Ops[len(tk.Ops)-1]
	if last.Kind != history.OpTryAbort || last.Out != history.OutAbort {
		t.Fatalf("last op = %v, want tryA->A", last)
	}
}

func TestResetClearsEvents(t *testing.T) {
	r := New(tl2.New(1))
	if err := r.Atomically(func(tx *Txn) error { return tx.Write(0, 1) }); err != nil {
		t.Fatalf("txn: %v", err)
	}
	r.Reset()
	if h := r.History(); h.Len() != 0 {
		t.Fatalf("history after reset has %d events", h.Len())
	}
	// Fresh transactions keep getting fresh ids (ids are never reused even
	// across Reset, so recorded histories never collide).
	tx := r.Begin()
	if tx.ID() != 2 {
		t.Fatalf("id after reset = %d, want 2", tx.ID())
	}
	tx.Abort()
}

// orchestrate runs the two-transaction deferred-update probe against an
// engine: a writer writes X0=42, then — while still running — a reader
// reads X0 and commits; finally the writer commits. It returns the
// recorded history.
func orchestrate(e stm.Engine) *history.History {
	r := New(e)
	w := r.Begin()
	_ = w.Write(0, 42)
	rd := r.Begin()
	_, _ = rd.Read(0)
	_ = rd.Commit()
	_ = w.Commit()
	return r.History()
}

func TestPLEViolatesDeferredUpdateDeterministically(t *testing.T) {
	// Reproduces the paper's Section 5 claim about pessimistic STMs: the
	// reader observes the writer's value before the writer invoked tryC,
	// so the recorded history cannot be du-opaque — while it is still
	// final-state opaque (the writer does commit).
	h := orchestrate(ple.New(1))
	du := spec.CheckDUOpacity(h)
	if du.OK {
		t.Fatalf("PLE history unexpectedly du-opaque:\n%s", h)
	}
	fs := spec.CheckFinalStateOpacity(h)
	if !fs.OK {
		t.Fatalf("PLE probe history should be final-state opaque: %s\n%s", fs.Reason, h)
	}
}

func TestDeferredUpdateEnginesPassTheProbe(t *testing.T) {
	for _, e := range []stm.Engine{tl2.New(1), norec.New(1), dstm.New(1)} {
		h := orchestrate(e)
		// The reader must have seen 0, not the uncommitted 42.
		reader := h.Txn(2)
		for _, op := range reader.Ops {
			if op.Kind == history.OpRead && !op.Pending && op.Out == history.OutOK && op.Val != 0 {
				t.Errorf("%s: reader saw uncommitted value %d", e.Name(), op.Val)
			}
		}
		if v := spec.CheckDUOpacity(h); !v.OK {
			t.Errorf("%s: probe history not du-opaque: %s\n%s", e.Name(), v.Reason, h)
		}
	}
}

func TestConcurrentRecordingIsWellFormedAndDUOpaque(t *testing.T) {
	// Hammer a deferred-update engine from several goroutines and certify
	// the recorded episode. Kept small so exact checking is fast.
	for _, name := range []string{"tl2", "norec", "gl"} {
		name := name
		t.Run(name, func(t *testing.T) {
			e, err := engines.New(name, 4)
			if err != nil {
				t.Fatal(err)
			}
			r := New(e)
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 3; i++ {
						_ = r.Atomically(func(tx *Txn) error {
							v, err := tx.Read(w % 4)
							if err != nil {
								return err
							}
							return tx.Write((w+1)%4, v+int64(10*w+i+1))
						})
					}
				}(w)
			}
			wg.Wait()
			h := r.History()
			if !h.Complete() {
				t.Fatal("recorded history has pending operations after all goroutines finished")
			}
			v := spec.CheckDUOpacity(h, spec.WithNodeLimit(2_000_000))
			if v.Undecided {
				t.Skipf("checker undecided after %d nodes", v.Nodes)
			}
			if !v.OK {
				t.Fatalf("%s produced a non-du-opaque history: %s\n%s", name, v.Reason, h)
			}
		})
	}
}

func TestTapObservesEveryEventInOrder(t *testing.T) {
	r := New(tl2.New(4))
	var tapped []history.Event
	r.Tap(func(e history.Event) { tapped = append(tapped, e) })
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				_ = r.Atomically(func(tx *Txn) error {
					v, err := tx.Read(w % 4)
					if err != nil {
						return err
					}
					return tx.Write((w+1)%4, v+int64(10*w+i+1))
				})
			}
		}(w)
	}
	wg.Wait()
	// The tap saw exactly the recorded event sequence, in capture order
	// (the mutex linearizes both).
	evs := r.History().Events()
	if len(tapped) != len(evs) {
		t.Fatalf("tap saw %d events, history has %d", len(tapped), len(evs))
	}
	for i := range evs {
		if tapped[i] != evs[i] {
			t.Fatalf("event %d: tap saw %v, history has %v", i, tapped[i], evs[i])
		}
	}
	// The tapped stream is well-formed as it stands: feeding it through a
	// stream must reproduce the history.
	s := history.NewStream()
	for _, e := range tapped {
		if err := s.Append(e); err != nil {
			t.Fatalf("tapped stream ill-formed: %v", err)
		}
	}
	if !s.History().Equivalent(r.History()) {
		t.Fatal("tapped stream diverges from the recorded history")
	}
	// Detaching stops observation.
	r.Tap(nil)
	before := len(tapped)
	if err := r.Atomically(func(tx *Txn) error { return tx.Write(0, 99) }); err != nil {
		t.Fatal(err)
	}
	if len(tapped) != before {
		t.Fatal("detached tap kept observing")
	}
}

func TestVarName(t *testing.T) {
	if VarName(0) != "X0" || VarName(17) != "X17" {
		t.Fatalf("VarName mapping wrong: %s %s", VarName(0), VarName(17))
	}
}

func TestEngineAccessor(t *testing.T) {
	tm := tl2.New(1)
	r := New(tm)
	if r.Engine() != tm {
		t.Fatal("Engine() does not return the wrapped engine")
	}
}

func TestRecordsWriteAbort(t *testing.T) {
	// An engine write that returns ErrAborted is recorded as the write
	// returning A_k. ETL provides this deterministically: writing an
	// object owned by another transaction aborts.
	tm := etl.New(1)
	r := New(tm)
	owner := r.Begin()
	if err := owner.Write(0, 1); err != nil {
		t.Fatalf("owner write: %v", err)
	}
	victim := r.Begin()
	if err := victim.Write(0, 2); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("victim write = %v, want ErrAborted", err)
	}
	if err := owner.Commit(); err != nil {
		t.Fatalf("owner commit: %v", err)
	}
	h := r.History()
	tv := h.Txn(2)
	if !tv.Aborted() {
		t.Fatalf("victim not aborted in history:\n%s", h)
	}
	last := tv.Ops[len(tv.Ops)-1]
	if last.Kind != history.OpWrite || last.Out != history.OutAbort {
		t.Fatalf("last op = %v, want aborted write", last)
	}
	// Dead transactions reject further recorded operations without
	// emitting events.
	n := h.Len()
	if err := victim.Write(0, 3); !errors.Is(err, stm.ErrAborted) {
		t.Fatal("write on dead txn should return ErrAborted")
	}
	if _, err := victim.Read(0); !errors.Is(err, stm.ErrAborted) {
		t.Fatal("read on dead txn should return ErrAborted")
	}
	if err := victim.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Fatal("commit on dead txn should return ErrAborted")
	}
	if got := r.History().Len(); got != n {
		t.Fatalf("dead txn emitted events: %d -> %d", n, got)
	}
}

func TestRecordsCommitAbort(t *testing.T) {
	// A tryC that fails is recorded as tryC -> A_k.
	tm := tl2.New(1)
	r := New(tm)
	a := r.Begin()
	if _, err := a.Read(0); err != nil {
		t.Fatal(err)
	}
	if err := a.Write(0, 1); err != nil {
		t.Fatal(err)
	}
	// Interfering commit invalidates a's read set.
	if err := r.Atomically(func(tx *Txn) error { return tx.Write(0, 9) }); err != nil {
		t.Fatal(err)
	}
	if err := a.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("a.Commit = %v, want ErrAborted", err)
	}
	h := r.History()
	ta := h.Txn(1)
	last := ta.Ops[len(ta.Ops)-1]
	if last.Kind != history.OpTryCommit || last.Out != history.OutAbort {
		t.Fatalf("last op = %v, want tryC->A", last)
	}
	// The recorded history with the aborted writer is still du-opaque.
	if v := spec.CheckDUOpacity(h); !v.OK {
		t.Fatalf("history not du-opaque: %s\n%s", v.Reason, h)
	}
}

func TestAtomicallyRetriesAndPropagatesUserError(t *testing.T) {
	tm := tl2.New(1)
	r := New(tm)
	// Retry on conflict: the first attempt aborts at commit.
	attempt := 0
	err := r.Atomically(func(tx *Txn) error {
		attempt++
		if _, err := tx.Read(0); err != nil {
			return err
		}
		if attempt == 1 {
			if err := r.Atomically(func(in *Txn) error { return in.Write(0, 5) }); err != nil {
				return err
			}
		}
		return tx.Write(0, 7)
	})
	if err != nil {
		t.Fatalf("Atomically: %v", err)
	}
	if attempt < 2 {
		t.Fatalf("expected a retry, got %d attempts", attempt)
	}
	// Each attempt is a distinct recorded transaction.
	if got := r.History().NumTxns(); got < 3 {
		t.Fatalf("history has %d txns, want >= 3 (retries are fresh txns)", got)
	}
	// User errors abort and propagate without retry.
	boom := errors.New("boom")
	calls := 0
	if err := r.Atomically(func(tx *Txn) error { calls++; return boom }); !errors.Is(err, boom) {
		t.Fatalf("user error = %v, want boom", err)
	}
	if calls != 1 {
		t.Fatalf("user error retried: %d calls", calls)
	}
}

// TestTapPanicIsRecovered pins the tap's panic contract: a panicking
// observer is detached without corrupting the capture mutex or the
// history — the triggering event stays recorded, later operations record
// normally, and the failure surfaces through TapError.
func TestTapPanicIsRecovered(t *testing.T) {
	r := New(tl2.New(2))
	calls := 0
	r.Tap(func(e history.Event) {
		calls++
		if calls == 3 {
			panic("observer exploded")
		}
	})

	tx := r.Begin()
	if err := tx.Write(0, 1); err != nil { // events 1-2: inv + res
		t.Fatal(err)
	}
	if _, err := tx.Read(0); err != nil { // event 3 (inv) panics the tap
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil { // must not deadlock on the capture mutex
		t.Fatal(err)
	}

	if calls != 3 {
		t.Fatalf("tap called %d times after panicking on call 3; want detachment", calls)
	}
	err := r.TapError()
	if err == nil {
		t.Fatal("TapError() = nil after a tap panic")
	}
	if !strings.Contains(err.Error(), "observer exploded") {
		t.Fatalf("TapError() = %v, want the panic value", err)
	}

	// The full transaction was captured despite the mid-flight panic: the
	// history is well-formed (History re-validates) and complete.
	h := r.History()
	if h.Len() != 6 {
		t.Fatalf("recorded %d events, want 6", h.Len())
	}
	if v := spec.Check(h, spec.DUOpacity); !v.OK {
		t.Fatalf("recorded history not du-opaque after tap panic: %v", v)
	}

	// A second transaction records normally, and Reset clears the error.
	tx2 := r.Begin()
	if err := tx2.Write(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if r.History().Len() != 10 {
		t.Fatalf("recording did not continue after tap panic: %d events", r.History().Len())
	}
	r.Reset()
	if r.TapError() != nil {
		t.Fatal("Reset did not clear the tap error")
	}
}
