// Package recorder instruments any stm.Engine so that concurrent runs
// produce history.History values — the histories of the paper's Section 2
// model, the objects every criterion of package spec judges.
//
// Every t-operation is bracketed by an invocation event appended before the
// engine is called and a response event appended after it returns, under a
// single mutex that linearizes event capture. Because each engine
// linearizes an operation's effect inside its invocation–response window,
// the recorded event order is a faithful history of the execution in the
// paper's model: reads return values, aborts surface as A_k responses on
// the aborting operation, and commits as tryC_k -> C_k. The recorded
// histories are well-formed by construction (each transaction's events
// form the sequential pattern of Section 2: at most one pending operation,
// nothing after t-completion), which FromEvents re-validates defensively.
//
// Two consumers sit on the capture path: History snapshots the events as
// a batch history for the exact checkers, and Tap exposes each event the
// moment it is linearized — the hook through which spec.Monitor certifies
// an execution while it runs (harness.RunMonitored) and the schedule
// explorer latches violations mid-schedule (harness.ExplorePlan, using
// the prefix closure of Corollary 2). A transaction's position in the
// real-time order of H (its t-completion preceding another's first event)
// is therefore decided exactly where the engine decided it.
package recorder

import (
	"fmt"
	"sync"
	"sync/atomic"

	"duopacity/internal/history"
	"duopacity/internal/stm"
)

// VarName maps an object index to the t-object name used in recorded
// histories ("X0", "X1", ...).
func VarName(obj int) history.Var {
	return history.Var(fmt.Sprintf("X%d", obj))
}

// Recorder wraps an engine and captures histories.
type Recorder struct {
	eng    stm.Engine
	nextID atomic.Int64

	mu     sync.Mutex
	evs    []history.Event
	tap    func(history.Event)
	tapErr error
}

// New returns a Recorder around eng.
func New(eng stm.Engine) *Recorder {
	return &Recorder{eng: eng}
}

// Engine returns the wrapped engine.
func (r *Recorder) Engine() stm.Engine { return r.eng }

// Begin starts a recorded transaction with a fresh transaction identifier.
func (r *Recorder) Begin() *Txn {
	return &Txn{
		r:     r,
		inner: r.eng.Begin(),
		id:    history.TxnID(r.nextID.Add(1)),
	}
}

// Reset discards the events recorded so far (the engine's state is left
// untouched) and clears any recorded tap error. It must not be called
// while transactions are in flight. A registered tap is kept but is not
// informed of the discard.
func (r *Recorder) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evs = nil
	r.tapErr = nil
}

// Tap registers fn to observe every event at the moment it is recorded,
// called synchronously under the recorder's capture mutex — so fn sees
// the events in exactly the linearized order the recorded history will
// contain, with no two calls concurrent. This is the live-monitor hook:
// attach a spec.Monitor's Append (whose single-goroutine requirement the
// mutex discharges) and the execution is certified while it runs instead
// of replaying a materialized history afterwards. Events recorded before
// Tap are not replayed; pass nil to detach. Keep fn cheap: it runs inside
// every transaction's operation window. fn must not call back into the
// Recorder (History, Reset, Tap, or any transaction operation) — it runs
// while the capture mutex is held and would self-deadlock.
//
// A panic in fn does not corrupt the recorder: the capture mutex is
// released, the event that triggered the panic stays recorded, the tap is
// detached (no further calls), and the panic is surfaced through
// TapError. Recording continues and the captured history stays
// well-formed.
func (r *Recorder) Tap(fn func(history.Event)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.tap = fn
}

// TapError returns the first panic recovered from a tap callback, or nil.
// The panicking tap was detached at the point of failure; events recorded
// after it are captured but unobserved, so consumers of a tap-driven
// verdict (e.g. an online monitor) must treat a non-nil TapError as
// degradation of that verdict, not of the recorded history.
func (r *Recorder) TapError() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tapErr
}

// History snapshots the recorded events as a history. Transactions still
// in flight appear with pending operations, which is well-formed.
func (r *Recorder) History() *history.History {
	r.mu.Lock()
	evs := append([]history.Event(nil), r.evs...)
	r.mu.Unlock()
	h, err := history.FromEvents(evs)
	if err != nil {
		// The recorder only appends matched, well-ordered events.
		panic("recorder: recorded history malformed: " + err.Error())
	}
	return h
}

func (r *Recorder) append(e history.Event) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.evs = append(r.evs, e)
	if r.tap != nil {
		r.callTap(e)
	}
}

// callTap invokes the tap under the capture mutex, recovering a panic so
// a faulty observer cannot leave the mutex locked or the history torn:
// the event stays recorded, the tap is detached, and the panic value is
// kept for TapError.
func (r *Recorder) callTap(e history.Event) {
	defer func() {
		if rec := recover(); rec != nil {
			if r.tapErr == nil {
				r.tapErr = fmt.Errorf("recorder: tap panicked on event %v: %v", e, rec)
			}
			r.tap = nil
		}
	}()
	r.tap(e)
}

// Txn is a recorded transaction. It mirrors stm.Txn; each operation emits
// its invocation and response events around the inner engine call.
type Txn struct {
	r     *Recorder
	inner stm.Txn
	id    history.TxnID
	// done is set once the recorded transaction is t-complete (an
	// operation returned A_k, or Commit/Abort finished); later calls
	// return ErrAborted without recording events, keeping the history
	// well-formed.
	done bool
}

var _ stm.Txn = (*Txn)(nil)

// ID returns the recorded transaction identifier.
func (t *Txn) ID() history.TxnID { return t.id }

// Read implements stm.Txn.
func (t *Txn) Read(obj int) (int64, error) {
	if t.done {
		return 0, stm.ErrAborted
	}
	x := VarName(obj)
	t.r.append(history.Event{Kind: history.Inv, Op: history.OpRead, Txn: t.id, Obj: x})
	v, err := t.inner.Read(obj)
	if err != nil {
		t.done = true
		t.r.append(history.Event{Kind: history.Res, Op: history.OpRead, Txn: t.id, Obj: x, Out: history.OutAbort})
		return 0, stm.ErrAborted
	}
	t.r.append(history.Event{Kind: history.Res, Op: history.OpRead, Txn: t.id, Obj: x, Val: history.Value(v), Out: history.OutOK})
	return v, nil
}

// Write implements stm.Txn.
func (t *Txn) Write(obj int, v int64) error {
	if t.done {
		return stm.ErrAborted
	}
	x := VarName(obj)
	t.r.append(history.Event{Kind: history.Inv, Op: history.OpWrite, Txn: t.id, Obj: x, Arg: history.Value(v)})
	err := t.inner.Write(obj, v)
	if err != nil {
		t.done = true
		t.r.append(history.Event{Kind: history.Res, Op: history.OpWrite, Txn: t.id, Obj: x, Arg: history.Value(v), Out: history.OutAbort})
		return stm.ErrAborted
	}
	t.r.append(history.Event{Kind: history.Res, Op: history.OpWrite, Txn: t.id, Obj: x, Arg: history.Value(v), Out: history.OutOK})
	return nil
}

// Commit implements stm.Txn.
func (t *Txn) Commit() error {
	if t.done {
		return stm.ErrAborted
	}
	t.done = true
	t.r.append(history.Event{Kind: history.Inv, Op: history.OpTryCommit, Txn: t.id})
	err := t.inner.Commit()
	if err != nil {
		t.r.append(history.Event{Kind: history.Res, Op: history.OpTryCommit, Txn: t.id, Out: history.OutAbort})
		return stm.ErrAborted
	}
	t.r.append(history.Event{Kind: history.Res, Op: history.OpTryCommit, Txn: t.id, Out: history.OutCommit})
	return nil
}

// Abort implements stm.Txn.
func (t *Txn) Abort() {
	if t.done {
		return
	}
	t.done = true
	t.r.append(history.Event{Kind: history.Inv, Op: history.OpTryAbort, Txn: t.id})
	t.inner.Abort()
	t.r.append(history.Event{Kind: history.Res, Op: history.OpTryAbort, Txn: t.id, Out: history.OutAbort})
}

// Atomically mirrors stm.Atomically over recorded transactions: each retry
// is a fresh recorded transaction, as in the paper's model where an aborted
// transaction is never resumed.
func (r *Recorder) Atomically(fn func(*Txn) error) error {
	for i := 0; i < stm.MaxAttempts; i++ {
		tx := r.Begin()
		err := fn(tx)
		switch {
		case err == nil:
			if cerr := tx.Commit(); cerr == nil {
				return nil
			}
		case err == stm.ErrAborted:
			tx.Abort()
		default:
			tx.Abort()
			return err
		}
	}
	return stm.ErrAborted
}
