// Package stm defines the engine-neutral software transactional memory
// interface shared by the engines under internal/stm/... and the tooling
// that records and certifies their histories.
//
// A TM manages a fixed array of t-objects addressed by index, each holding
// an int64 and starting at 0 (matching the paper's T_0 writing the initial
// value to every object). Engines implement Engine/Txn; user code runs
// transactions through Atomically, which retries aborted attempts.
//
// The engines shipped with this repository:
//
//   - tl2:   Transactional Locking II — global version clock, per-object
//     versioned write locks, deferred write-back (Dice, Shalev, Shavit).
//   - norec: NOrec — single global sequence lock, value-based validation,
//     deferred write-back (Dalessandro, Spear, Scott).
//   - dstm:  DSTM-style obstruction-free engine — per-object locators,
//     CAS acquisition, invisible validated reads, pluggable contention
//     managers (Herlihy, Luchangco, Moir, Scherer).
//   - etl:   encounter-time locking with in-place writes and an undo log
//     (eager, TinySTM-flavoured); optional value-based read validation.
//   - gl:    a single global lock around each transaction — serial,
//     abort-free baseline.
//   - ple:   a pessimistic, abort-free engine with in-place writes and
//     unvalidated reads, reproducing the non-deferred-update signature the
//     paper attributes to pessimistic STMs [Afek, Matveev, Shavit].
//   - pdur:  parallel deferred-update certification — t-objects are
//     partitioned across independent seqlock-protected certifiers, so
//     commits touching disjoint partitions proceed in parallel
//     (following the SCert/PaT line of arXiv:1312.0742).
//
// The CM-capable engines (tl2, norec, dstm, etl, etl+v, pdur) also accept
// a contention-management policy from internal/stm/cm, selected by the
// "engine+policy" names that internal/stm/engines parses ("tl2+karma",
// "pdur+backoff", ...).
package stm

import "errors"

// ErrAborted is returned by Read, Write and Commit when the transaction
// has aborted; the caller must discard the transaction (and may retry with
// a fresh one, which Atomically automates).
var ErrAborted = errors.New("stm: transaction aborted")

// Engine is a software transactional memory over a fixed set of t-objects.
// Implementations must be safe for concurrent use.
type Engine interface {
	// Name identifies the engine (e.g. "tl2").
	Name() string
	// Objects returns the number of t-objects managed.
	Objects() int
	// Begin starts a transaction. Every transaction must end with Commit
	// or Abort.
	Begin() Txn
}

// Txn is a transaction in progress. A transaction is not safe for
// concurrent use by multiple goroutines. After any method returns
// ErrAborted — or after Commit or Abort returns — the transaction is dead
// and every later call returns ErrAborted.
type Txn interface {
	// Read returns the transaction's view of object obj.
	Read(obj int) (int64, error)
	// Write records (or applies, in eager engines) a write of v to obj.
	Write(obj int, v int64) error
	// Commit attempts to commit: nil means the transaction's effects are
	// durable and visible; ErrAborted means nothing took effect (in eager
	// engines, all in-place effects were rolled back).
	Commit() error
	// Abort aborts the transaction, rolling back any in-place effects.
	// Abort is idempotent and safe after an ErrAborted.
	Abort()
}

// MaxAttempts bounds Atomically's retry loop; exceeding it returns
// ErrAborted to the caller rather than spinning forever.
const MaxAttempts = 1 << 20

// Atomically runs fn inside transactions of e until one commits. If fn
// returns a non-nil error the attempt is aborted and the error is returned
// without retrying (user-level errors are not conflicts). A nil return
// means fn's final attempt committed.
func Atomically(e Engine, fn func(Txn) error) error {
	return AtomicallyN(e, MaxAttempts, fn)
}

// AtomicallyN is Atomically with an explicit attempt bound.
func AtomicallyN(e Engine, attempts int, fn func(Txn) error) error {
	for i := 0; i < attempts; i++ {
		tx := e.Begin()
		err := fn(tx)
		switch {
		case err == nil:
			if cerr := tx.Commit(); cerr == nil {
				return nil
			}
			// Conflict at commit: retry.
		case errors.Is(err, ErrAborted):
			tx.Abort()
			// Conflict during the body: retry.
		default:
			tx.Abort()
			return err
		}
	}
	return ErrAborted
}
