// Package gl implements the global-lock STM: one mutex held for the whole
// transaction. Execution is fully serial, transactions never abort (except
// by explicit request), and writes are in place with an undo log for
// rollback. It is the correctness and single-thread-performance baseline:
// recorded histories are t-sequential and always du-opaque.
package gl

import (
	"sync"

	"duopacity/internal/stm"
)

// TM is a global-lock software transactional memory.
type TM struct {
	mu   sync.Mutex
	vals []int64
}

var _ stm.Engine = (*TM)(nil)

// New returns a global-lock TM over objects t-objects initialized to zero.
func New(objects int) *TM {
	return &TM{vals: make([]int64, objects)}
}

// Name implements stm.Engine.
func (t *TM) Name() string { return "gl" }

// Objects implements stm.Engine.
func (t *TM) Objects() int { return len(t.vals) }

// Begin implements stm.Engine. It blocks until the global lock is
// available; the transaction holds the lock until Commit or Abort.
func (t *TM) Begin() stm.Txn {
	t.mu.Lock()
	return &txn{tm: t}
}

type undoEntry struct {
	obj int
	old int64
}

type txn struct {
	tm   *TM
	undo []undoEntry
	dead bool
}

var _ stm.Txn = (*txn)(nil)

func (x *txn) Read(obj int) (int64, error) {
	if x.dead {
		return 0, stm.ErrAborted
	}
	return x.tm.vals[obj], nil
}

func (x *txn) Write(obj int, v int64) error {
	if x.dead {
		return stm.ErrAborted
	}
	x.undo = append(x.undo, undoEntry{obj: obj, old: x.tm.vals[obj]})
	x.tm.vals[obj] = v
	return nil
}

func (x *txn) Commit() error {
	if x.dead {
		return stm.ErrAborted
	}
	x.dead = true
	x.tm.mu.Unlock()
	return nil
}

func (x *txn) Abort() {
	if x.dead {
		return
	}
	x.dead = true
	for i := len(x.undo) - 1; i >= 0; i-- {
		x.tm.vals[x.undo[i].obj] = x.undo[i].old
	}
	x.tm.mu.Unlock()
}
