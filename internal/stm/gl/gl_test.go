package gl

import (
	"testing"

	"duopacity/internal/stm"
	"duopacity/internal/stm/stmtest"
)

func factory(objects int) stm.Engine { return New(objects) }

func TestBasic(t *testing.T)         { stmtest.Basic(t, factory) }
func TestAbortRollback(t *testing.T) { stmtest.AbortRollback(t, factory) }
func TestUserError(t *testing.T)     { stmtest.UserError(t, factory) }
func TestCounter(t *testing.T)       { stmtest.Counter(t, factory, 8, 200) }
func TestBankInvariant(t *testing.T) { stmtest.BankInvariant(t, factory, 8, 300) }
func TestSmoke(t *testing.T)         { stmtest.Smoke(t, factory, 8, 200) }

func TestNeverAborts(t *testing.T) {
	tm := New(2)
	for i := 0; i < 100; i++ {
		tx := tm.Begin()
		if _, err := tx.Read(0); err != nil {
			t.Fatalf("read: %v", err)
		}
		if err := tx.Write(1, int64(i)); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("gl transaction aborted: %v", err)
		}
	}
}

func TestSerialExecution(t *testing.T) {
	// With the global lock held by an open transaction, a second Begin
	// blocks; committing releases it.
	tm := New(1)
	tx := tm.Begin()
	started := make(chan struct{})
	finished := make(chan int64)
	go func() {
		close(started)
		tx2 := tm.Begin() // blocks until tx completes
		v, _ := tx2.Read(0)
		_ = tx2.Commit()
		finished <- v
	}()
	<-started
	if err := tx.Write(0, 9); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if v := <-finished; v != 9 {
		t.Fatalf("second transaction read %d, want 9", v)
	}
}
