package etl

import (
	"errors"
	"testing"

	"duopacity/internal/stm"
	"duopacity/internal/stm/stmtest"
)

func base(objects int) stm.Engine      { return New(objects) }
func validated(objects int) stm.Engine { return New(objects, WithValidation()) }

func TestBasicBase(t *testing.T)              { stmtest.Basic(t, base) }
func TestBasicValidated(t *testing.T)         { stmtest.Basic(t, validated) }
func TestAbortRollbackBase(t *testing.T)      { stmtest.AbortRollback(t, base) }
func TestAbortRollbackValidated(t *testing.T) { stmtest.AbortRollback(t, validated) }
func TestUserErrorBase(t *testing.T)          { stmtest.UserError(t, base) }
func TestCounterValidated(t *testing.T)       { stmtest.Counter(t, validated, 8, 200) }
func TestSmokeBase(t *testing.T)              { stmtest.Smoke(t, base, 8, 200) }
func TestSmokeValidated(t *testing.T)         { stmtest.Smoke(t, validated, 8, 200) }

func TestNames(t *testing.T) {
	if got := New(1).Name(); got != "etl" {
		t.Errorf("Name = %q, want etl", got)
	}
	if got := New(1, WithValidation()).Name(); got != "etl+v" {
		t.Errorf("Name = %q, want etl+v", got)
	}
}

func TestInPlaceWritesVisibleBeforeCommit(t *testing.T) {
	// The documented (anti-)feature: encounter-time writes hit shared
	// memory before tryC. A raw engine read cannot observe it (readers of
	// owned objects abort), but the value is physically there.
	tm := New(1)
	w := tm.Begin()
	if err := w.Write(0, 5); err != nil {
		t.Fatalf("write: %v", err)
	}
	if got := tm.vals[0].Load(); got != 5 {
		t.Fatalf("in-place value = %d, want 5 before commit", got)
	}
	// A concurrent reader aborts on the ownership check.
	r := tm.Begin()
	if _, err := r.Read(0); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("read of owned object = %v, want ErrAborted", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func TestUndoRestoresOnAbort(t *testing.T) {
	tm := New(1)
	if err := stm.Atomically(tm, func(tx stm.Txn) error { return tx.Write(0, 3) }); err != nil {
		t.Fatalf("setup: %v", err)
	}
	w := tm.Begin()
	if err := w.Write(0, 10); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Write(0, 11); err != nil {
		t.Fatalf("write: %v", err)
	}
	w.Abort()
	if got := tm.vals[0].Load(); got != 3 {
		t.Fatalf("value after rollback = %d, want 3", got)
	}
	if got := tm.owner[0].Load(); got != 0 {
		t.Fatalf("ownership not released: %d", got)
	}
}

func TestValidationAbortsStaleRead(t *testing.T) {
	tm := New(2, WithValidation())
	r := tm.Begin()
	if _, err := r.Read(0); err != nil {
		t.Fatalf("read: %v", err)
	}
	// Another transaction commits a change to object 0.
	if err := stm.Atomically(tm, func(tx stm.Txn) error { return tx.Write(0, 9) }); err != nil {
		t.Fatalf("writer: %v", err)
	}
	if _, err := r.Read(1); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("stale validated read = %v, want ErrAborted", err)
	}
}

func TestValidationAcceptsOwnWriteAfterRead(t *testing.T) {
	// Read X then write X in the same transaction: validation must compare
	// against the acquisition-time value, not the own in-place write.
	tm := New(2, WithValidation())
	tx := tm.Begin()
	v, err := tx.Read(0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := tx.Write(0, v+1); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := tx.Read(1); err != nil {
		t.Fatalf("validating read after own write: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	got := tm.vals[0].Load()
	if got != 1 {
		t.Fatalf("counter = %d, want 1", got)
	}
}

func TestWriteWriteConflictAborts(t *testing.T) {
	tm := New(1)
	a := tm.Begin()
	if err := a.Write(0, 1); err != nil {
		t.Fatalf("a.Write: %v", err)
	}
	b := tm.Begin()
	if err := b.Write(0, 2); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("b.Write = %v, want ErrAborted (object owned)", err)
	}
	if err := a.Commit(); err != nil {
		t.Fatalf("a.Commit: %v", err)
	}
}
