// Package etl implements an encounter-time-locking STM: per-object owner
// locks acquired at first write, in-place updates with an undo log, and —
// optionally — value-based read validation.
//
// Contention management is pluggable (WithPolicy): when a read or a
// write hits an object owned by another transaction, the contention
// manager decides whether to back off (a bounded spin — the owner may
// release) and retry, or to roll back immediately. The default passive
// policy reproduces the original fail-fast behavior. Waits are always
// bounded: an owner that never releases (e.g. a vthread suspended by
// the deterministic stepper) exhausts the wait budget and the
// transaction degrades to fail-fast, so the stepper's no-blocking
// admissibility rule holds for every policy.
//
// Eager (write-through) designs in the DSTM/TinySTM family expose a window
// in which a doomed or still-running writer's values are observable; the
// base configuration here deliberately keeps that window (reads are only
// guarded by an ownership check, with no revalidation), making it the
// repository's ablation knob for zombie reads: recorded histories are
// frequently rejected by the du-opacity checker. WithValidation narrows
// the window with NOrec-style value validation of the whole read log on
// every read and at commit.
package etl

import (
	"sync/atomic"

	"duopacity/internal/stm"
	"duopacity/internal/stm/cm"
)

// TM is an encounter-time-locking software transactional memory.
type TM struct {
	validate bool
	policy   cm.Policy
	src      *cm.Source
	nextID   atomic.Int64
	owner    []atomic.Int64 // 0 = unowned, otherwise transaction serial
	vals     []atomic.Int64
}

var _ stm.Engine = (*TM)(nil)

// Option configures the engine.
type Option func(*TM)

// WithValidation enables value-based read-log validation on every read and
// at commit, closing most (not all: the check is not atomic with the read)
// zombie-read windows.
func WithValidation() Option {
	return func(t *TM) { t.validate = true }
}

// WithPolicy selects the contention-management policy (default
// cm.Passive, the fail-fast behavior).
func WithPolicy(p cm.Policy) Option {
	return func(t *TM) { t.policy = p }
}

// New returns an ETL TM over objects t-objects initialized to zero.
func New(objects int, opts ...Option) *TM {
	t := &TM{
		owner: make([]atomic.Int64, objects),
		vals:  make([]atomic.Int64, objects),
	}
	for _, o := range opts {
		o(t)
	}
	t.src = cm.NewSource(t.policy)
	return t
}

// Name implements stm.Engine.
func (t *TM) Name() string {
	name := "etl"
	if t.validate {
		name = "etl+v"
	}
	if t.policy != cm.Passive {
		name += "+" + t.policy.String()
	}
	return name
}

// Objects implements stm.Engine.
func (t *TM) Objects() int { return len(t.vals) }

// Begin implements stm.Engine.
func (t *TM) Begin() stm.Txn {
	x := &txn{tm: t, id: t.nextID.Add(1)}
	t.src.Reset(&x.mgr)
	return x
}

type undoEntry struct {
	obj int
	old int64
}

type readEntry struct {
	obj int
	val int64
}

type txn struct {
	tm    *TM
	id    int64
	owned []int
	// acqVal records, per owned object, its value at lock acquisition:
	// read-log validation must compare against that value, not against the
	// transaction's own in-place writes.
	acqVal map[int]int64
	undo   []undoEntry
	rset   []readEntry
	mgr    cm.Manager
	dead   bool
}

var _ stm.Txn = (*txn)(nil)

func (x *txn) Read(obj int) (int64, error) {
	if x.dead {
		return 0, stm.ErrAborted
	}
	if x.tm.owner[obj].Load() == x.id {
		return x.tm.vals[obj].Load(), nil // own in-place write
	}
	for x.tm.owner[obj].Load() != 0 {
		// Owned by another transaction: wait it out if the policy
		// allows (the owner releases at commit/rollback), else fail
		// fast.
		if x.mgr.Conflict(nil) != cm.Wait {
			x.rollback()
			return 0, stm.ErrAborted
		}
		x.mgr.Backoff()
	}
	x.mgr.Progress()
	x.mgr.Opened()
	v := x.tm.vals[obj].Load()
	x.rset = append(x.rset, readEntry{obj: obj, val: v})
	if x.tm.validate && !x.valid() {
		x.rollback()
		return 0, stm.ErrAborted
	}
	return v, nil
}

// valid re-checks the read log: objects the transaction owns must have held
// the logged value when the lock was acquired; other objects must be
// unowned and still hold the logged value.
func (x *txn) valid() bool {
	for _, r := range x.rset {
		if acq, own := x.acqVal[r.obj]; own {
			if acq != r.val {
				return false
			}
			continue
		}
		if o := x.tm.owner[r.obj].Load(); o != 0 && o != x.id {
			return false
		}
		if x.tm.vals[r.obj].Load() != r.val {
			return false
		}
	}
	return true
}

func (x *txn) Write(obj int, v int64) error {
	if x.dead {
		return stm.ErrAborted
	}
	if x.tm.owner[obj].Load() != x.id {
		for !x.tm.owner[obj].CompareAndSwap(0, x.id) {
			if x.mgr.Conflict(nil) != cm.Wait {
				x.rollback()
				return stm.ErrAborted
			}
			x.mgr.Backoff()
		}
		x.mgr.Progress()
		x.mgr.Opened()
		x.owned = append(x.owned, obj)
		if x.acqVal == nil {
			x.acqVal = make(map[int]int64)
		}
		x.acqVal[obj] = x.tm.vals[obj].Load()
	}
	x.undo = append(x.undo, undoEntry{obj: obj, old: x.tm.vals[obj].Load()})
	x.tm.vals[obj].Store(v) // encounter-time, in place
	return nil
}

func (x *txn) Commit() error {
	if x.dead {
		return stm.ErrAborted
	}
	if x.tm.validate && !x.valid() {
		x.rollback()
		return stm.ErrAborted
	}
	x.dead = true
	for _, o := range x.owned {
		x.tm.owner[o].Store(0)
	}
	return nil
}

func (x *txn) Abort() {
	if x.dead {
		return
	}
	x.rollback()
}

// rollback undoes in-place writes in reverse order and releases ownership.
func (x *txn) rollback() {
	x.dead = true
	for i := len(x.undo) - 1; i >= 0; i-- {
		x.tm.vals[x.undo[i].obj].Store(x.undo[i].old)
	}
	for _, o := range x.owned {
		x.tm.owner[o].Store(0)
	}
}
