// Package ple implements a pessimistic, abort-free STM with in-place
// (encounter-time) writes and unvalidated reads.
//
// Writers serialize on a global writer lock acquired at their first write
// and held until commit; their writes land in shared memory immediately.
// Readers load current values with no snapshot or validation and never
// abort. Because the single active writer is guaranteed to commit,
// transactions that read its in-flight values read from a transaction that
// has not invoked tryC — exactly the non-deferred-update signature the
// paper attributes to pessimistic STMs ([1], Afek, Matveev, Shavit:
// "technically ... not opaque, and certainly, not du-opaque"). Recorded
// histories are rejected by the du-opacity checker whenever such a read
// occurs, and can even be non-serializable when a reader observes a
// partial write set; the certification harness measures both rates.
package ple

import (
	"sync"
	"sync/atomic"

	"duopacity/internal/stm"
)

// TM is a pessimistic, abort-free software transactional memory.
type TM struct {
	wmu  sync.Mutex // serializes writer transactions
	vals []atomic.Int64
}

var _ stm.Engine = (*TM)(nil)

// New returns a pessimistic TM over objects t-objects initialized to zero.
func New(objects int) *TM {
	return &TM{vals: make([]atomic.Int64, objects)}
}

// Name implements stm.Engine.
func (t *TM) Name() string { return "ple" }

// Objects implements stm.Engine.
func (t *TM) Objects() int { return len(t.vals) }

// Begin implements stm.Engine.
func (t *TM) Begin() stm.Txn { return &txn{tm: t} }

type undoEntry struct {
	obj int
	old int64
}

type txn struct {
	tm     *TM
	writer bool
	undo   []undoEntry
	dead   bool
}

var _ stm.Txn = (*txn)(nil)

func (x *txn) Read(obj int) (int64, error) {
	if x.dead {
		return 0, stm.ErrAborted
	}
	return x.tm.vals[obj].Load(), nil
}

func (x *txn) Write(obj int, v int64) error {
	if x.dead {
		return stm.ErrAborted
	}
	if !x.writer {
		x.tm.wmu.Lock()
		x.writer = true
	}
	x.undo = append(x.undo, undoEntry{obj: obj, old: x.tm.vals[obj].Load()})
	x.tm.vals[obj].Store(v) // in place, before tryC
	return nil
}

func (x *txn) Commit() error {
	if x.dead {
		return stm.ErrAborted
	}
	x.dead = true
	if x.writer {
		x.tm.wmu.Unlock()
	}
	return nil
}

func (x *txn) Abort() {
	if x.dead {
		return
	}
	x.dead = true
	if x.writer {
		for i := len(x.undo) - 1; i >= 0; i-- {
			x.tm.vals[x.undo[i].obj].Store(x.undo[i].old)
		}
		x.tm.wmu.Unlock()
	}
}
