package ple

import (
	"testing"

	"duopacity/internal/stm"
	"duopacity/internal/stm/stmtest"
)

func factory(objects int) stm.Engine { return New(objects) }

func TestBasic(t *testing.T)         { stmtest.Basic(t, factory) }
func TestAbortRollback(t *testing.T) { stmtest.AbortRollback(t, factory) }
func TestUserError(t *testing.T)     { stmtest.UserError(t, factory) }
func TestSmoke(t *testing.T)         { stmtest.Smoke(t, factory, 8, 200) }

func TestNeverAborts(t *testing.T) {
	tm := New(2)
	for i := 0; i < 100; i++ {
		tx := tm.Begin()
		if _, err := tx.Read(0); err != nil {
			t.Fatalf("read: %v", err)
		}
		if err := tx.Write(1, int64(i)); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatalf("ple transaction aborted: %v", err)
		}
	}
}

func TestInPlaceWritesVisibleToReadersBeforeCommit(t *testing.T) {
	// The defining violation: a reader observes a writer's value before
	// the writer invokes tryC — deterministically, no race needed.
	tm := New(1)
	w := tm.Begin()
	if err := w.Write(0, 42); err != nil {
		t.Fatalf("write: %v", err)
	}
	r := tm.Begin()
	v, err := r.Read(0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if v != 42 {
		t.Fatalf("reader saw %d, want the uncommitted 42", v)
	}
	if err := r.Commit(); err != nil {
		t.Fatalf("reader commit: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("writer commit: %v", err)
	}
}

func TestWritersSerialize(t *testing.T) {
	tm := New(1)
	a := tm.Begin()
	if err := a.Write(0, 1); err != nil {
		t.Fatalf("a.Write: %v", err)
	}
	done := make(chan struct{})
	go func() {
		b := tm.Begin()
		// b's first write blocks until a commits.
		if err := b.Write(0, 2); err != nil {
			t.Errorf("b.Write: %v", err)
		}
		if err := b.Commit(); err != nil {
			t.Errorf("b.Commit: %v", err)
		}
		close(done)
	}()
	if err := a.Commit(); err != nil {
		t.Fatalf("a.Commit: %v", err)
	}
	<-done
	tx := tm.Begin()
	v, _ := tx.Read(0)
	_ = tx.Commit()
	if v != 2 {
		t.Fatalf("final value = %d, want 2", v)
	}
}

func TestAbortRollsBackInPlaceWrites(t *testing.T) {
	tm := New(2)
	w := tm.Begin()
	if err := w.Write(0, 5); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Write(1, 6); err != nil {
		t.Fatalf("write: %v", err)
	}
	w.Abort()
	tx := tm.Begin()
	for obj := 0; obj < 2; obj++ {
		if v, err := tx.Read(obj); err != nil || v != 0 {
			t.Fatalf("object %d = %d, %v; want 0", obj, v, err)
		}
	}
	_ = tx.Commit()
}
