// Package engines is the registry of the STM engines shipped with the
// repository, keyed by name for the CLI tools and the harness.
//
// Engine names come in two parts: a base engine and an optional
// contention-management suffix, "engine[+cm]" — e.g. "tl2+karma" is TL2
// arbitrating conflicts with the karma policy. Parse is the one place
// the grammar lives; every consumer (ducheck, stmbench, the soak grid,
// certd job specs, the chaos CLI) resolves names through it, so the
// full engine×CM matrix means the same thing everywhere. A bare name
// means the engine's native conflict behavior (fail-fast for
// tl2/norec/etl/pdur, the classic aggressive manager for dstm), which
// is also what the explicit "+passive" suffix selects for the engines
// that support CM. The CM choice never changes an engine's
// classification: DeferredUpdate and chaos.KillSafe answer for the base
// engine regardless of suffix.
//
// Note "etl+v" is a base engine name (validated etl), not a CM suffix;
// its CM'd forms are "etl+v+<cm>".
package engines

import (
	"fmt"
	"strings"

	"duopacity/internal/stm"
	"duopacity/internal/stm/cm"
	"duopacity/internal/stm/dstm"
	"duopacity/internal/stm/etl"
	"duopacity/internal/stm/gl"
	"duopacity/internal/stm/norec"
	"duopacity/internal/stm/pdur"
	"duopacity/internal/stm/ple"
	"duopacity/internal/stm/tl2"
)

// Names lists the registered base engine names in presentation order.
func Names() []string {
	return []string{"tl2", "norec", "dstm", "etl", "etl+v", "gl", "ple", "pdur"}
}

// CMEngines lists the base engines that accept a contention-management
// suffix. gl and ple never conflict (whole-transaction or per-writer
// exclusion), so a CM suffix on them is rejected.
func CMEngines() []string {
	return []string{"tl2", "norec", "dstm", "etl", "etl+v", "pdur"}
}

// Matrix enumerates every valid engine name: the bare base engines plus
// each CM-capable engine with each non-passive policy suffix.
func Matrix() []string {
	out := append([]string{}, Names()...)
	for _, e := range CMEngines() {
		for _, p := range cm.Policies() {
			if p != cm.Passive {
				out = append(out, e+"+"+p.String())
			}
		}
	}
	return out
}

func isBase(name string) bool {
	for _, n := range Names() {
		if n == name {
			return true
		}
	}
	return false
}

func cmCapable(name string) bool {
	for _, n := range CMEngines() {
		if n == name {
			return true
		}
	}
	return false
}

// Parse splits an "engine[+cm]" name into its base engine and
// contention-management policy. A bare base name (or an explicit
// "+passive") parses to cm.Passive. Unknown bases, unknown CM names and
// CM suffixes on engines that take none are rejected with the valid
// matrix in the error.
func Parse(name string) (base string, policy cm.Policy, err error) {
	if isBase(name) {
		return name, cm.Passive, nil
	}
	// The CM suffix is the segment after the last '+' ("etl+v+karma"
	// has base "etl+v").
	if i := strings.LastIndexByte(name, '+'); i > 0 {
		b, s := name[:i], name[i+1:]
		if isBase(b) {
			p, perr := cm.ParsePolicy(s)
			if perr != nil {
				return "", 0, fmt.Errorf("engines: %q: %v", name, perr)
			}
			if !cmCapable(b) {
				return "", 0, fmt.Errorf("engines: engine %q takes no contention manager (CM-capable: %s)",
					b, strings.Join(CMEngines(), ", "))
			}
			return b, p, nil
		}
	}
	return "", 0, fmt.Errorf("engines: unknown engine %q (valid: %s)",
		name, strings.Join(Matrix(), ", "))
}

// Base resolves a (possibly CM-suffixed) name to its base engine name.
// Unparseable names are returned unchanged, to keep classification
// lookups total.
func Base(name string) string {
	if b, _, err := Parse(name); err == nil {
		return b
	}
	return name
}

// DeferredUpdate reports whether the named engine implements
// deferred-update semantics by construction (and is therefore expected to
// produce du-opaque histories). The CM suffix never changes the answer.
func DeferredUpdate(name string) bool {
	switch Base(name) {
	case "tl2", "norec", "dstm", "gl", "pdur":
		return true
	default:
		return false
	}
}

// New constructs the named engine over the given number of t-objects.
// Names parse through Parse, so the full engine×CM matrix is accepted.
func New(name string, objects int) (stm.Engine, error) {
	base, policy, err := Parse(name)
	if err != nil {
		return nil, err
	}
	switch base {
	case "tl2":
		return tl2.New(objects, tl2.WithPolicy(policy)), nil
	case "norec":
		return norec.New(objects, norec.WithPolicy(policy)), nil
	case "dstm":
		if policy == cm.Passive {
			return dstm.New(objects), nil // classic aggressive manager
		}
		return dstm.New(objects, dstm.WithPolicy(policy)), nil
	case "etl":
		return etl.New(objects, etl.WithPolicy(policy)), nil
	case "etl+v":
		return etl.New(objects, etl.WithValidation(), etl.WithPolicy(policy)), nil
	case "gl":
		return gl.New(objects), nil
	case "ple":
		return ple.New(objects), nil
	case "pdur":
		return pdur.New(objects, pdur.WithPolicy(policy)), nil
	}
	return nil, fmt.Errorf("engines: unknown engine %q (have %v)", name, Names())
}
