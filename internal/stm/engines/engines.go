// Package engines is the registry of the STM engines shipped with the
// repository, keyed by name for the CLI tools and the harness.
package engines

import (
	"fmt"

	"duopacity/internal/stm"
	"duopacity/internal/stm/dstm"
	"duopacity/internal/stm/etl"
	"duopacity/internal/stm/gl"
	"duopacity/internal/stm/norec"
	"duopacity/internal/stm/ple"
	"duopacity/internal/stm/tl2"
)

// Names lists the registered engine names in presentation order.
func Names() []string {
	return []string{"tl2", "norec", "dstm", "etl", "etl+v", "gl", "ple"}
}

// DeferredUpdate reports whether the named engine implements
// deferred-update semantics by construction (and is therefore expected to
// produce du-opaque histories).
func DeferredUpdate(name string) bool {
	switch name {
	case "tl2", "norec", "dstm", "gl":
		return true
	default:
		return false
	}
}

// New constructs the named engine over the given number of t-objects.
func New(name string, objects int) (stm.Engine, error) {
	switch name {
	case "tl2":
		return tl2.New(objects), nil
	case "norec":
		return norec.New(objects), nil
	case "dstm":
		return dstm.New(objects), nil
	case "etl":
		return etl.New(objects), nil
	case "etl+v":
		return etl.New(objects, etl.WithValidation()), nil
	case "gl":
		return gl.New(objects), nil
	case "ple":
		return ple.New(objects), nil
	default:
		return nil, fmt.Errorf("engines: unknown engine %q (have %v)", name, Names())
	}
}
