package engines

import (
	"testing"

	"duopacity/internal/stm"
	"duopacity/internal/stm/stmtest"
)

// TestEngineCMMatrix runs the stmtest conformance suite over every cell
// of the engine×CM matrix, including pdur — sequential semantics for
// all, concurrent exact-counting invariants for the engines that
// guarantee them (base etl's zombie reads and etl+v's non-atomic
// validation window exclude them from Counter/BankInvariant; the
// existing per-engine tests pin etl+v's Counter separately). CI runs
// this test under the race detector as the engine×CM race job.
func TestEngineCMMatrix(t *testing.T) {
	goroutines, txns := 8, 150
	if testing.Short() {
		goroutines, txns = 4, 60
	}
	for _, name := range Matrix() {
		name := name
		t.Run(name, func(t *testing.T) {
			f := func(objects int) stm.Engine {
				e, err := New(name, objects)
				if err != nil {
					t.Fatalf("New(%q): %v", name, err)
				}
				return e
			}
			stmtest.Basic(t, f)
			stmtest.AbortRollback(t, f)
			stmtest.UserError(t, f)
			stmtest.Smoke(t, f, goroutines, txns)
			switch Base(name) {
			case "tl2", "norec", "dstm", "pdur", "gl":
				stmtest.Counter(t, f, goroutines, txns)
				stmtest.BankInvariant(t, f, goroutines, txns)
			}
		})
	}
}
