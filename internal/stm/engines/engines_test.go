package engines

import (
	"strings"
	"testing"

	"duopacity/internal/stm"
)

// TestRegistryRoundTrip: every registered name constructs an engine whose
// self-reported name matches the registry key, over the requested number
// of objects.
func TestRegistryRoundTrip(t *testing.T) {
	for _, name := range Names() {
		e, err := New(name, 7)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if e.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, e.Name())
		}
		if e.Objects() != 7 {
			t.Errorf("%s: Objects() = %d, want 7", name, e.Objects())
		}
		// A fresh engine must run a trivial transaction.
		if err := stm.Atomically(e, func(tx stm.Txn) error {
			v, err := tx.Read(0)
			if err != nil {
				return err
			}
			return tx.Write(1, v+1)
		}); err != nil {
			t.Errorf("%s: trivial transaction: %v", name, err)
		}
	}
}

func TestUnknownEngine(t *testing.T) {
	_, err := New("bogus", 4)
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
	if !strings.Contains(err.Error(), "bogus") {
		t.Errorf("error does not name the unknown engine: %v", err)
	}
	for _, name := range Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not list registered engine %q: %v", name, err)
		}
	}
}

func TestDeferredUpdateClassification(t *testing.T) {
	// The paper's classification: deferred-update engines buffer writes
	// until tryC (gl trivially, holding the lock for the whole
	// transaction); the encounter-time engines write in place before tryC.
	want := map[string]bool{
		"tl2": true, "norec": true, "dstm": true, "gl": true, "pdur": true,
		"etl": false, "etl+v": false, "ple": false,
	}
	for _, name := range Names() {
		if got := DeferredUpdate(name); got != want[name] {
			t.Errorf("DeferredUpdate(%q) = %v, want %v", name, got, want[name])
		}
	}
	if DeferredUpdate("bogus") {
		t.Error("unknown engines must not be classified deferred-update")
	}
}
