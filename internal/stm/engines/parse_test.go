package engines

import (
	"strings"
	"testing"

	"duopacity/internal/chaos"
	"duopacity/internal/stm"
	"duopacity/internal/stm/cm"
)

func TestParse(t *testing.T) {
	cases := []struct {
		name   string
		base   string
		policy cm.Policy
	}{
		{"tl2", "tl2", cm.Passive},
		{"tl2+passive", "tl2", cm.Passive},
		{"tl2+karma", "tl2", cm.Karma},
		{"norec+backoff", "norec", cm.Backoff},
		{"dstm+greedy", "dstm", cm.Greedy},
		{"etl+v", "etl+v", cm.Passive}, // '+v' is part of the base name
		{"etl+v+karma", "etl+v", cm.Karma},
		{"etl+backoff", "etl", cm.Backoff},
		{"pdur", "pdur", cm.Passive},
		{"pdur+greedy", "pdur", cm.Greedy},
		{"gl", "gl", cm.Passive},
		{"ple", "ple", cm.Passive},
	}
	for _, c := range cases {
		base, policy, err := Parse(c.name)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.name, err)
			continue
		}
		if base != c.base || policy != c.policy {
			t.Errorf("Parse(%q) = %q, %s; want %q, %s", c.name, base, policy, c.base, c.policy)
		}
	}
}

func TestParseRejects(t *testing.T) {
	// Unknown CM suffixes are rejected with the valid matrix in the error.
	_, _, err := Parse("tl2+bogus")
	if err == nil {
		t.Fatal("unknown CM accepted")
	}
	for _, name := range cm.Names() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not list CM %q", err, name)
		}
	}
	// CM suffixes on engines that never conflict are rejected.
	for _, name := range []string{"gl+karma", "ple+backoff"} {
		if _, _, err := Parse(name); err == nil {
			t.Errorf("Parse(%q) accepted; gl/ple take no CM", name)
		}
	}
	// Unknown bases list the full matrix.
	_, _, err = Parse("bogus+karma")
	if err == nil {
		t.Fatal("unknown base accepted")
	}
	for _, name := range Matrix() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error does not list matrix entry %q", name)
		}
	}
}

// TestMatrixConstructs: every name in the matrix builds an engine whose
// self-reported name round-trips (with "+passive" normalizing away) and
// that completes a trivial transaction.
func TestMatrixConstructs(t *testing.T) {
	for _, name := range Matrix() {
		e, err := New(name, 8)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if e.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, e.Name())
		}
		if err := stm.Atomically(e, func(tx stm.Txn) error {
			v, err := tx.Read(0)
			if err != nil {
				return err
			}
			return tx.Write(1, v+1)
		}); err != nil {
			t.Errorf("%s: trivial transaction: %v", name, err)
		}
	}
}

// TestClassificationIgnoresCM pins the contract that the CM suffix never
// changes an engine's classification: for every cell of the matrix (and
// the explicit "+passive" spellings), DeferredUpdate and chaos.KillSafe
// answer exactly as they do for the base engine.
func TestClassificationIgnoresCM(t *testing.T) {
	names := Matrix()
	for _, e := range CMEngines() {
		names = append(names, e+"+passive")
	}
	for _, name := range names {
		base := Base(name)
		if got, want := DeferredUpdate(name), DeferredUpdate(base); got != want {
			t.Errorf("DeferredUpdate(%q) = %v, but DeferredUpdate(%q) = %v", name, got, base, want)
		}
		if got, want := chaos.KillSafe(name), chaos.KillSafe(base); got != want {
			t.Errorf("chaos.KillSafe(%q) = %v, but KillSafe(%q) = %v", name, got, base, want)
		}
	}
	// And the base classifications themselves are the pinned tables.
	wantDU := map[string]bool{
		"tl2": true, "norec": true, "dstm": true, "gl": true, "pdur": true,
		"etl": false, "etl+v": false, "ple": false,
	}
	wantKS := map[string]bool{
		"tl2": true, "norec": true, "dstm": true, "pdur": true,
		"gl": false, "ple": false, "etl": false, "etl+v": false,
	}
	for _, name := range Names() {
		if got := DeferredUpdate(name); got != wantDU[name] {
			t.Errorf("DeferredUpdate(%q) = %v, want %v", name, got, wantDU[name])
		}
		if got := chaos.KillSafe(name); got != wantKS[name] {
			t.Errorf("chaos.KillSafe(%q) = %v, want %v", name, got, wantKS[name])
		}
	}
}
