package dstm

import (
	"errors"
	"sync"
	"testing"

	"duopacity/internal/stm"
	"duopacity/internal/stm/stmtest"
)

func factory(objects int) stm.Engine { return New(objects) }

func TestBasic(t *testing.T)         { stmtest.Basic(t, factory) }
func TestAbortRollback(t *testing.T) { stmtest.AbortRollback(t, factory) }
func TestUserError(t *testing.T)     { stmtest.UserError(t, factory) }
func TestCounter(t *testing.T)       { stmtest.Counter(t, factory, 8, 200) }
func TestSmoke(t *testing.T)         { stmtest.Smoke(t, factory, 8, 200) }

func TestPolicies(t *testing.T) {
	for _, m := range []Manager{Aggressive, Polite, Timid} {
		m := m
		t.Run(m.String(), func(t *testing.T) {
			f := func(objects int) stm.Engine { return New(objects, WithManager(m)) }
			stmtest.Basic(t, f)
			stmtest.Smoke(t, f, 4, 100)
		})
	}
	if Manager(0).String() != "unknown" {
		t.Error("zero manager should render unknown")
	}
}

func TestReadersSeeOldValueOfActiveOwner(t *testing.T) {
	// The deferred-update guarantee: while a writer is active, readers see
	// the pre-transaction value.
	tm := New(1)
	w := tm.Begin()
	if err := w.Write(0, 42); err != nil {
		t.Fatalf("write: %v", err)
	}
	r := tm.Begin()
	v, err := r.Read(0)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if v != 0 {
		t.Fatalf("reader saw %d, want the committed 0", v)
	}
	if err := r.Commit(); err != nil {
		t.Fatalf("reader commit: %v", err)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("writer commit: %v", err)
	}
	// After commit the new value is current.
	r2 := tm.Begin()
	if v, err := r2.Read(0); err != nil || v != 42 {
		t.Fatalf("post-commit read = %d, %v; want 42", v, err)
	}
	_ = r2.Commit()
}

func TestAggressiveAbortsConflictingOwner(t *testing.T) {
	tm := New(1) // Aggressive by default
	a := tm.Begin()
	if err := a.Write(0, 1); err != nil {
		t.Fatalf("a.Write: %v", err)
	}
	b := tm.Begin()
	if err := b.Write(0, 2); err != nil {
		t.Fatalf("b.Write should steal ownership: %v", err)
	}
	// a was aborted by b's contention manager.
	if err := a.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("a.Commit = %v, want ErrAborted", err)
	}
	if err := b.Commit(); err != nil {
		t.Fatalf("b.Commit: %v", err)
	}
	r := tm.Begin()
	if v, _ := r.Read(0); v != 2 {
		t.Fatalf("value = %d, want 2", v)
	}
	_ = r.Commit()
}

func TestTimidAbortsSelf(t *testing.T) {
	tm := New(1, WithManager(Timid))
	a := tm.Begin()
	if err := a.Write(0, 1); err != nil {
		t.Fatalf("a.Write: %v", err)
	}
	b := tm.Begin()
	if err := b.Write(0, 2); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("timid b.Write = %v, want ErrAborted", err)
	}
	if err := a.Commit(); err != nil {
		t.Fatalf("a.Commit: %v", err)
	}
}

func TestValidationCatchesStaleRead(t *testing.T) {
	tm := New(2)
	r := tm.Begin()
	if _, err := r.Read(0); err != nil {
		t.Fatalf("read: %v", err)
	}
	// A writer commits a change to object 0.
	if err := stm.Atomically(tm, func(tx stm.Txn) error { return tx.Write(0, 9) }); err != nil {
		t.Fatalf("writer: %v", err)
	}
	// The reader's next access validates the read log and aborts.
	if _, err := r.Read(1); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("stale read = %v, want ErrAborted", err)
	}
}

func TestSpeculativeValuesInvisibleAfterAbort(t *testing.T) {
	tm := New(1)
	w := tm.Begin()
	if err := w.Write(0, 7); err != nil {
		t.Fatalf("write: %v", err)
	}
	w.Abort()
	r := tm.Begin()
	if v, _ := r.Read(0); v != 0 {
		t.Fatalf("aborted speculative value leaked: %d", v)
	}
	_ = r.Commit()
}

func TestConcurrentMixedPolicies(t *testing.T) {
	// Several goroutines over a polite TM: no deadlock, exact counting.
	tm := New(1, WithManager(Polite))
	var wg sync.WaitGroup
	const workers, incs = 6, 100
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				err := stm.Atomically(tm, func(tx stm.Txn) error {
					v, err := tx.Read(0)
					if err != nil {
						return err
					}
					return tx.Write(0, v+1)
				})
				if err != nil {
					t.Errorf("increment: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	tx := tm.Begin()
	v, err := tx.Read(0)
	if err != nil {
		t.Fatal(err)
	}
	_ = tx.Commit()
	if v != workers*incs {
		t.Fatalf("counter = %d, want %d", v, workers*incs)
	}
}
