// Package dstm implements a DSTM-style obstruction-free STM (Herlihy,
// Luchangco, Moir, Scherer, PODC 2003): per-object locators carrying the
// owning transaction's descriptor plus old and new values, acquired by
// CAS at first write, with invisible validated reads and a pluggable
// contention manager.
//
// A transaction's writes live in the new-value slot of the locators it
// owns and become visible atomically when its descriptor's status flips to
// committed — i.e. during tryC. Readers of an object owned by an active
// transaction see the old value, so no transaction ever reads from a
// transaction that has not started committing: recorded histories are
// du-opaque, like TL2's and NOrec's.
//
// Two contention-management surfaces coexist. The legacy Manager
// policies (Aggressive/Polite/Timid) are dstm's original hardwired
// family and remain the default (bare "dstm" is Aggressive). WithPolicy
// switches the engine to the shared cm layer (internal/stm/cm), where
// the same policies every other engine uses — backoff, karma, greedy —
// arbitrate with full knowledge of both sides' priorities: each
// transaction descriptor carries its cm.Manager, so karma can compare
// work done and greedy can compare ages before deciding to wait, kill
// the owner, or surrender. dstm is the only engine that can honor
// cm.AbortEnemy (its descriptors make the opponent killable by CAS).
package dstm

import (
	"runtime"
	"sync/atomic"

	"duopacity/internal/stm"
	"duopacity/internal/stm/cm"
)

// status values of a transaction descriptor.
const (
	active int32 = iota
	committed
	aborted
)

// Manager is a contention-management policy: what a transaction does when
// it finds an object owned by another active transaction.
type Manager uint8

const (
	// Aggressive aborts the conflicting owner immediately.
	Aggressive Manager = iota + 1
	// Polite yields a few times, then aborts the owner.
	Polite
	// Timid aborts itself.
	Timid
)

// String returns the policy name.
func (m Manager) String() string {
	switch m {
	case Aggressive:
		return "aggressive"
	case Polite:
		return "polite"
	case Timid:
		return "timid"
	default:
		return "unknown"
	}
}

// desc is a transaction descriptor; locators point at it. mgr is the
// transaction's contention manager (cm mode only): opponents that find
// the descriptor through a locator read its priority to arbitrate.
type desc struct {
	status atomic.Int32
	mgr    cm.Manager
}

// locator binds an object version to its owning transaction: if the owner
// committed the current value is newVal, otherwise oldVal. Locators are
// immutable except for newVal, which only the active owner writes (and
// readers only access after observing the owner committed, which the
// status load orders).
type locator struct {
	owner  *desc
	oldVal int64
	newVal int64
}

// TM is a DSTM-style software transactional memory.
type TM struct {
	policy   Manager
	cmPolicy cm.Policy
	useCM    bool
	src      *cm.Source
	objs     []atomic.Pointer[locator]
}

var _ stm.Engine = (*TM)(nil)

// Option configures the engine.
type Option func(*TM)

// WithManager selects the legacy contention-management policy (default
// Aggressive).
func WithManager(m Manager) Option {
	return func(t *TM) { t.policy = m }
}

// WithPolicy switches conflict arbitration to the shared cm layer with
// the given policy. cm.Passive behaves like Timid (abort self).
func WithPolicy(p cm.Policy) Option {
	return func(t *TM) {
		t.useCM = true
		t.cmPolicy = p
	}
}

// New returns a DSTM TM over objects t-objects initialized to zero.
func New(objects int, opts ...Option) *TM {
	t := &TM{policy: Aggressive, objs: make([]atomic.Pointer[locator], objects)}
	for _, o := range opts {
		o(t)
	}
	if t.useCM {
		t.src = cm.NewSource(t.cmPolicy)
	}
	root := &desc{}
	root.status.Store(committed)
	for i := range t.objs {
		t.objs[i].Store(&locator{owner: root})
	}
	return t
}

// Name implements stm.Engine.
func (t *TM) Name() string {
	if t.useCM && t.cmPolicy != cm.Passive {
		return "dstm+" + t.cmPolicy.String()
	}
	return "dstm"
}

// Objects implements stm.Engine.
func (t *TM) Objects() int { return len(t.objs) }

// Begin implements stm.Engine.
func (t *TM) Begin() stm.Txn {
	x := &txn{tm: t, self: &desc{}}
	t.src.Reset(&x.self.mgr)
	return x
}

type readEntry struct {
	obj int
	val int64
}

type txn struct {
	tm    *TM
	self  *desc
	rset  []readEntry
	wrote map[int]*locator // locators this transaction owns
}

var _ stm.Txn = (*txn)(nil)

// current resolves a locator to the object's current committed value.
func current(l *locator) int64 {
	if l.owner.status.Load() == committed {
		return l.newVal
	}
	return l.oldVal
}

func (x *txn) alive() bool { return x.self.status.Load() == active }

func (x *txn) Read(obj int) (int64, error) {
	if !x.alive() {
		return 0, stm.ErrAborted
	}
	if l, ok := x.wrote[obj]; ok {
		return l.newVal, nil // own speculative value
	}
	l := x.tm.objs[obj].Load()
	v := current(l)
	x.self.mgr.Opened()
	x.rset = append(x.rset, readEntry{obj: obj, val: v})
	// Invisible reads demand validation on every access to preserve
	// opacity (the DSTM paper's per-open validation).
	if !x.validate() {
		x.Abort()
		return 0, stm.ErrAborted
	}
	return v, nil
}

// validate re-checks every logged read against the objects' current
// values and confirms the transaction is still active.
func (x *txn) validate() bool {
	for _, r := range x.rset {
		l := x.tm.objs[r.obj].Load()
		if owned, ok := x.wrote[r.obj]; ok && l == owned {
			// We own it: compare against the pre-acquisition value.
			if l.oldVal != r.val {
				return false
			}
			continue
		}
		if current(l) != r.val {
			return false
		}
	}
	return x.alive()
}

func (x *txn) Write(obj int, v int64) error {
	if !x.alive() {
		return stm.ErrAborted
	}
	if l, ok := x.wrote[obj]; ok {
		l.newVal = v // we own the locator: update the speculative slot
		return nil
	}
	for attempt := 0; ; attempt++ {
		if !x.alive() {
			return stm.ErrAborted
		}
		old := x.tm.objs[obj].Load()
		if st := old.owner.status.Load(); st == active && old.owner != x.self {
			if !x.manageConflict(old.owner, attempt) {
				x.Abort()
				return stm.ErrAborted
			}
			continue // the owner is no longer active; re-read the locator
		}
		cur := current(old)
		nl := &locator{owner: x.self, oldVal: cur, newVal: v}
		if x.tm.objs[obj].CompareAndSwap(old, nl) {
			x.self.mgr.Progress()
			x.self.mgr.Opened()
			if x.wrote == nil {
				x.wrote = make(map[int]*locator)
			}
			x.wrote[obj] = nl
			// Acquiring may have raced with a conflicting commit; the
			// read set must still hold.
			if !x.validate() {
				x.Abort()
				return stm.ErrAborted
			}
			return nil
		}
	}
}

// manageConflict applies the contention policy against an active owner.
// It returns false if the caller must abort itself.
func (x *txn) manageConflict(owner *desc, attempt int) bool {
	if x.tm.useCM {
		switch x.self.mgr.Conflict(&owner.mgr) {
		case cm.AbortEnemy:
			owner.status.CompareAndSwap(active, aborted)
			return true
		case cm.Wait:
			x.self.mgr.Backoff()
			return true
		default:
			return false
		}
	}
	switch x.tm.policy {
	case Timid:
		return false
	case Polite:
		if attempt < 4 {
			runtime.Gosched()
			return true
		}
		fallthrough
	default: // Aggressive
		owner.status.CompareAndSwap(active, aborted)
		return true
	}
}

func (x *txn) Commit() error {
	if !x.alive() {
		return stm.ErrAborted
	}
	if !x.validate() {
		x.Abort()
		return stm.ErrAborted
	}
	// The commit point: all owned locators' new values become current
	// atomically. CAS can fail if a contention manager aborted us.
	if !x.self.status.CompareAndSwap(active, committed) {
		return stm.ErrAborted
	}
	return nil
}

func (x *txn) Abort() {
	x.self.status.CompareAndSwap(active, aborted)
}
