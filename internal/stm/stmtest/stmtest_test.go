package stmtest_test

import (
	"testing"

	"duopacity/internal/stm"
	"duopacity/internal/stm/gl"
	"duopacity/internal/stm/stmtest"
	"duopacity/internal/stm/tl2"
)

// The conformance suite's own test: every helper must run to completion —
// and pass — against the two reference engines at the ends of the design
// space, the serial global-lock baseline and the deferred-update tl2.
// Running here (rather than only via the engine packages) keeps the suite
// itself exercised under -race even as engine tests evolve.

func glFactory(objects int) stm.Engine  { return gl.New(objects) }
func tl2Factory(objects int) stm.Engine { return tl2.New(objects) }

func TestSuiteAgainstGlobalLock(t *testing.T) {
	stmtest.Basic(t, glFactory)
	stmtest.AbortRollback(t, glFactory)
	stmtest.UserError(t, glFactory)
	stmtest.Counter(t, glFactory, 4, 100)
	stmtest.BankInvariant(t, glFactory, 6, 150)
	stmtest.Smoke(t, glFactory, 4, 100)
}

func TestSuiteAgainstTL2(t *testing.T) {
	stmtest.Basic(t, tl2Factory)
	stmtest.AbortRollback(t, tl2Factory)
	stmtest.UserError(t, tl2Factory)
	stmtest.Counter(t, tl2Factory, 4, 100)
	stmtest.BankInvariant(t, tl2Factory, 6, 150)
	stmtest.Smoke(t, tl2Factory, 4, 100)
}
