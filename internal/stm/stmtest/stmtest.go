// Package stmtest provides the conformance suite shared by every STM
// engine's tests: sequential semantics every engine must honor, plus
// concurrency invariants for the engines that guarantee them.
package stmtest

import (
	"errors"
	"sync"
	"testing"

	"duopacity/internal/stm"
)

// Factory builds a fresh engine over the given number of objects.
type Factory func(objects int) stm.Engine

// Basic exercises single-threaded semantics: initial zeros, write-read
// within a transaction, commit visibility, and transaction death after
// completion.
func Basic(t *testing.T, f Factory) {
	t.Helper()
	e := f(4)
	if e.Objects() != 4 {
		t.Fatalf("Objects = %d, want 4", e.Objects())
	}
	if e.Name() == "" {
		t.Fatal("empty engine name")
	}

	tx := e.Begin()
	if v, err := tx.Read(0); err != nil || v != 0 {
		t.Fatalf("initial read = %d, %v; want 0, nil", v, err)
	}
	if err := tx.Write(1, 42); err != nil {
		t.Fatalf("write: %v", err)
	}
	if v, err := tx.Read(1); err != nil || v != 42 {
		t.Fatalf("own-write read = %d, %v; want 42, nil", v, err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	// The transaction is dead after commit.
	if _, err := tx.Read(0); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("read after commit = %v, want ErrAborted", err)
	}
	if err := tx.Write(0, 1); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("write after commit = %v, want ErrAborted", err)
	}
	if err := tx.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("commit after commit = %v, want ErrAborted", err)
	}
	tx.Abort() // must be a safe no-op

	// Committed value visible to a later transaction.
	tx2 := e.Begin()
	if v, err := tx2.Read(1); err != nil || v != 42 {
		t.Fatalf("committed value read = %d, %v; want 42, nil", v, err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("read-only commit: %v", err)
	}
}

// AbortRollback checks that aborted transactions leave no trace.
func AbortRollback(t *testing.T, f Factory) {
	t.Helper()
	e := f(2)
	tx := e.Begin()
	if err := tx.Write(0, 7); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := tx.Write(1, 8); err != nil {
		t.Fatalf("write: %v", err)
	}
	tx.Abort()
	tx.Abort() // idempotent

	tx2 := e.Begin()
	for obj := 0; obj < 2; obj++ {
		if v, err := tx2.Read(obj); err != nil || v != 0 {
			t.Fatalf("object %d after abort = %d, %v; want 0, nil", obj, v, err)
		}
	}
	if err := tx2.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

// UserError checks that Atomically propagates non-conflict errors without
// retrying and aborts the attempt.
func UserError(t *testing.T, f Factory) {
	t.Helper()
	e := f(1)
	boom := errors.New("boom")
	calls := 0
	err := stm.Atomically(e, func(tx stm.Txn) error {
		calls++
		if werr := tx.Write(0, 9); werr != nil {
			return werr
		}
		return boom
	})
	if !errors.Is(err, boom) {
		t.Fatalf("Atomically = %v, want boom", err)
	}
	if calls != 1 {
		t.Fatalf("user errors must not be retried: %d calls", calls)
	}
	tx := e.Begin()
	if v, rerr := tx.Read(0); rerr != nil || v != 0 {
		t.Fatalf("aborted attempt leaked a write: %d, %v", v, rerr)
	}
	if cerr := tx.Commit(); cerr != nil {
		t.Fatalf("commit: %v", cerr)
	}
}

// Counter runs workers goroutines each performing incs read-modify-write
// increments through Atomically and asserts the exact final count. Only
// engines whose reads are validated can pass; call it for those.
func Counter(t *testing.T, f Factory, workers, incs int) {
	t.Helper()
	e := f(1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < incs; i++ {
				err := stm.Atomically(e, func(tx stm.Txn) error {
					v, err := tx.Read(0)
					if err != nil {
						return err
					}
					return tx.Write(0, v+1)
				})
				if err != nil {
					t.Errorf("increment: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	tx := e.Begin()
	v, err := tx.Read(0)
	if err != nil {
		t.Fatalf("final read: %v", err)
	}
	if cerr := tx.Commit(); cerr != nil {
		t.Fatalf("final commit: %v", cerr)
	}
	if want := int64(workers * incs); v != want {
		t.Fatalf("counter = %d, want %d", v, want)
	}
}

// BankInvariant runs concurrent transfers between accounts while readers
// sum all balances transactionally; every observed sum must equal the
// initial total. Only engines with consistent snapshots can pass.
func BankInvariant(t *testing.T, f Factory, accounts, transfers int) {
	t.Helper()
	e := f(accounts)
	const initial = 100
	// Fund the accounts.
	err := stm.Atomically(e, func(tx stm.Txn) error {
		for a := 0; a < accounts; a++ {
			if err := tx.Write(a, initial); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("funding: %v", err)
	}
	total := int64(accounts * initial)

	var wg sync.WaitGroup
	// Transfer workers.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			from, to := seed%accounts, (seed+1)%accounts
			for i := 0; i < transfers; i++ {
				from, to = (from+1)%accounts, (to+3)%accounts
				if from == to {
					continue
				}
				err := stm.Atomically(e, func(tx stm.Txn) error {
					b, err := tx.Read(from)
					if err != nil {
						return err
					}
					if b == 0 {
						return nil
					}
					if err := tx.Write(from, b-1); err != nil {
						return err
					}
					c, err := tx.Read(to)
					if err != nil {
						return err
					}
					return tx.Write(to, c+1)
				})
				if err != nil {
					t.Errorf("transfer: %v", err)
					return
				}
			}
		}(w)
	}
	// Auditor workers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < transfers; i++ {
				var sum int64
				err := stm.Atomically(e, func(tx stm.Txn) error {
					sum = 0
					for a := 0; a < accounts; a++ {
						v, err := tx.Read(a)
						if err != nil {
							return err
						}
						sum += v
					}
					return nil
				})
				if err != nil {
					t.Errorf("audit: %v", err)
					return
				}
				if sum != total {
					t.Errorf("audit sum = %d, want %d", sum, total)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// Smoke drives random-ish concurrent load to flush out deadlocks and data
// races (under -race); it asserts nothing about values.
func Smoke(t *testing.T, f Factory, workers, txns int) {
	t.Helper()
	e := f(8)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			rng := seed*2654435761 + 1
			next := func(n int) int {
				rng ^= rng << 13
				rng ^= rng >> 17
				rng ^= rng << 5
				if rng < 0 {
					rng = -rng
				}
				return rng % n
			}
			for i := 0; i < txns; i++ {
				_ = stm.AtomicallyN(e, 100, func(tx stm.Txn) error {
					for op := 0; op < 4; op++ {
						obj := next(8)
						if next(2) == 0 {
							if _, err := tx.Read(obj); err != nil {
								return err
							}
						} else if err := tx.Write(obj, int64(next(1000))); err != nil {
							return err
						}
					}
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
}
