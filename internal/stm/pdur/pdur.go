// Package pdur implements a parallel-certification deferred-update STM
// modeled on Parallel Deferred Update Replication (Marandi, Primi and
// Pedone; arXiv:1312.0742). PDUR's insight is that a single serialized
// certifier — the analogue of norec's one global sequence lock — is the
// scalability bottleneck of deferred update, and that certification
// itself can be partitioned: split the objects into partitions, give
// each partition its own certifier, and let transactions whose access
// sets touch disjoint partitions certify and commit in parallel.
//
// Here each partition carries its own sequence lock (cache-line padded,
// so certifiers scale without false sharing) and certification is
// norec-style value validation generalized to a partition vector:
//
//   - Objects map to partitions in contiguous blocks (obj*P/objects),
//     so workloads whose goroutines work disjoint object ranges land on
//     disjoint certifiers — the access-locality assumption PDUR makes
//     of its partitioned replicas.
//   - A reader maintains a vector of partition snapshots. Reads are
//     invisible; whenever any touched partition's sequence moves (or a
//     new partition joins the vector mid-transaction), the whole read
//     log is revalidated by value against a fresh stable vector, so
//     every read the transaction ever returns is consistent at one
//     vector time — the opacity argument is norec's, per partition.
//   - A writer certifies by locking only the partitions it writes (in
//     partition order), revalidating its reads, applying the deferred
//     writes, and bumping the locked sequences. Commits touching
//     disjoint partitions hold disjoint locks: they proceed in
//     parallel, which is exactly the serialized-certification fix
//     arXiv:1312.0742 argues for.
//
// Writes are buffered until commit and applied only under the
// partition locks, so no transaction ever observes a value written by
// a transaction that has not started committing: histories are
// deferred-update (du-opaque) by construction, like tl2's and norec's,
// and the engine registers as a deferred-update engine with the
// checker stack.
//
// All commit-side waits are bounded through the contention manager
// (default passive = fail fast), which both keeps the deterministic
// stepper's no-blocking rule intact and makes cross-partition
// validation deadlock-free: a certifier that cannot stabilize a read
// partition while holding write locks surrenders instead of spinning.
// Transactions are pooled and slice-backed like tl2's; read-only
// transactions cost zero engine-side allocations in steady state.
package pdur

import (
	"runtime"
	"sync"
	"sync/atomic"

	"duopacity/internal/stm"
	"duopacity/internal/stm/cm"
)

// defaultPartitions is the certifier count when WithPartitions is not
// given (clamped to the object count).
const defaultPartitions = 16

// part is one partition's certifier: a sequence lock (even = idle, odd
// = a commit in flight), padded to a cache line.
type part struct {
	seq atomic.Int64
	_   [56]byte
}

// TM is a parallel-certification deferred-update STM.
type TM struct {
	parts  []part
	vals   []atomic.Int64
	policy cm.Policy
	src    *cm.Source
	pool   sync.Pool
}

var _ stm.Engine = (*TM)(nil)

// Option configures a TM.
type Option func(*TM)

// WithPolicy selects the contention-management policy (default
// cm.Passive, fail fast).
func WithPolicy(p cm.Policy) Option {
	return func(t *TM) { t.policy = p }
}

// WithPartitions sets the certifier count (clamped to [1, objects]).
func WithPartitions(n int) Option {
	return func(t *TM) { t.parts = make([]part, n) }
}

// New returns a PDUR TM over objects t-objects initialized to zero.
func New(objects int, opts ...Option) *TM {
	t := &TM{vals: make([]atomic.Int64, objects)}
	for _, o := range opts {
		o(t)
	}
	np := len(t.parts)
	if np == 0 {
		np = defaultPartitions
	}
	if np > objects {
		np = objects
	}
	if np < 1 {
		np = 1
	}
	t.parts = make([]part, np)
	t.src = cm.NewSource(t.policy)
	t.pool.New = func() any { return new(txn) }
	return t
}

// Name implements stm.Engine.
func (t *TM) Name() string {
	if t.policy == cm.Passive {
		return "pdur"
	}
	return "pdur+" + t.policy.String()
}

// Objects implements stm.Engine.
func (t *TM) Objects() int { return len(t.vals) }

// Partitions reports the certifier count.
func (t *TM) Partitions() int { return len(t.parts) }

// pidx maps an object to its partition: contiguous blocks, so disjoint
// object ranges land on disjoint certifiers.
func (t *TM) pidx(obj int) int { return obj * len(t.parts) / len(t.vals) }

// Begin implements stm.Engine.
func (t *TM) Begin() stm.Txn {
	x := t.pool.Get().(*txn)
	x.tm = t
	if cap(x.snaps) < len(t.parts) {
		x.snaps = make([]int64, len(t.parts))
	}
	x.snaps = x.snaps[:len(t.parts)]
	for i := range x.snaps {
		x.snaps[i] = -1
	}
	x.rset = x.rset[:0]
	x.wobjs = x.wobjs[:0]
	x.wvals = x.wvals[:0]
	x.dead = false
	x.pooled = false
	t.src.Reset(&x.mgr)
	return x
}

type readEntry struct {
	obj int
	val int64
}

type txn struct {
	tm     *TM
	snaps  []int64 // per-partition snapshot vector; -1 = untouched
	rset   []readEntry
	wobjs  []int // write set, insertion order, unique
	wvals  []int64
	wparts []int   // commit scratch: write partitions, sorted unique
	wbase  []int64 // commit scratch: locked partitions' pre-lock seqs
	mgr    cm.Manager
	dead   bool
	pooled bool
}

var _ stm.Txn = (*txn)(nil)

// stableSeq waits for partition p to be idle (even sequence). Only
// called with no partition locks held: the writer holding p finishes
// its bounded commit, so the wait is bounded (and a no-op under the
// stepper, which never suspends a vthread mid-commit).
func (t *TM) stableSeq(p int) int64 {
	for {
		s := t.parts[p].seq.Load()
		if s&1 == 0 {
			return s
		}
		runtime.Gosched()
	}
}

func (x *txn) Read(obj int) (int64, error) {
	if x.dead {
		return 0, stm.ErrAborted
	}
	for i, o := range x.wobjs {
		if o == obj {
			return x.wvals[i], nil
		}
	}
	t := x.tm
	p := t.pidx(obj)
	for {
		if x.snaps[p] < 0 {
			// First touch of this partition: join it to the snapshot
			// vector, revalidating if any already-touched partition
			// moved meanwhile (the vector must stay jointly consistent).
			if !x.extend(p) {
				x.conflictBackoff()
				x.dead = true
				return 0, stm.ErrAborted
			}
		}
		v := t.vals[obj].Load()
		if t.parts[p].seq.Load() == x.snaps[p] {
			x.mgr.Opened()
			x.rset = append(x.rset, readEntry{obj: obj, val: v})
			return v, nil
		}
		// The partition's certifier moved: revalidate the whole log
		// against a fresh stable vector, then retry the read.
		if !x.revalidate() {
			x.conflictBackoff()
			x.dead = true
			return 0, stm.ErrAborted
		}
	}
}

// extend brings partition p into the snapshot vector. If any other
// touched partition moved since its snapshot, the whole log is
// revalidated so the vector stays jointly consistent.
func (x *txn) extend(p int) bool {
	x.snaps[p] = x.tm.stableSeq(p)
	for q := range x.snaps {
		if q != p && x.snaps[q] >= 0 && x.tm.parts[q].seq.Load() != x.snaps[q] {
			return x.revalidate()
		}
	}
	return true
}

// revalidate establishes a fresh jointly-stable snapshot vector under
// which every logged read still holds by value.
func (x *txn) revalidate() bool {
	t := x.tm
	for {
		for p := range x.snaps {
			if x.snaps[p] >= 0 {
				x.snaps[p] = t.stableSeq(p)
			}
		}
		for _, r := range x.rset {
			if t.vals[r.obj].Load() != r.val {
				return false
			}
		}
		stable := true
		for p := range x.snaps {
			if x.snaps[p] >= 0 && t.parts[p].seq.Load() != x.snaps[p] {
				stable = false
			}
		}
		if stable {
			return true
		}
	}
}

// conflictBackoff consults the contention manager on a lost
// validation: the abort is unavoidable, the manager only paces the
// caller's next attempt.
func (x *txn) conflictBackoff() {
	if x.mgr.Conflict(nil) == cm.Wait {
		x.mgr.Backoff()
	}
}

func (x *txn) Write(obj int, v int64) error {
	if x.dead {
		return stm.ErrAborted
	}
	for i, o := range x.wobjs {
		if o == obj {
			x.wvals[i] = v
			return nil
		}
	}
	x.mgr.Opened()
	x.wobjs = append(x.wobjs, obj)
	x.wvals = append(x.wvals, v)
	return nil
}

func (x *txn) Commit() error {
	if x.dead {
		return stm.ErrAborted
	}
	t := x.tm
	if len(x.wobjs) == 0 {
		// Read-only: the log was valid at the final snapshot vector.
		x.dead = true
		x.put()
		return nil
	}
	// Collect the write partitions, sorted and deduplicated in place.
	x.wparts = x.wparts[:0]
	for _, o := range x.wobjs {
		p := t.pidx(o)
		i := len(x.wparts)
		for i > 0 && x.wparts[i-1] > p {
			i--
		}
		if i > 0 && x.wparts[i-1] == p {
			continue
		}
		x.wparts = append(x.wparts, 0)
		copy(x.wparts[i+1:], x.wparts[i:])
		x.wparts[i] = p
	}
	// Certify: lock the write partitions in partition order. Disjoint
	// write sets lock disjoint certifiers and proceed in parallel.
	x.wbase = x.wbase[:0]
	for _, p := range x.wparts {
		for {
			s := t.parts[p].seq.Load()
			if s&1 == 0 && t.parts[p].seq.CompareAndSwap(s, s+1) {
				x.mgr.Progress()
				x.wbase = append(x.wbase, s)
				break
			}
			if x.mgr.Conflict(nil) != cm.Wait {
				x.releaseParts()
				x.dead = true
				x.put()
				return stm.ErrAborted
			}
			x.mgr.Backoff()
		}
	}
	// Validate the read log under the write locks. Waits here are
	// bounded (we hold locks; unbounded spinning could deadlock two
	// certifiers validating across each other's partitions).
	if !x.validateUnderLocks() {
		x.releaseParts()
		x.conflictBackoff()
		x.dead = true
		x.put()
		return stm.ErrAborted
	}
	// Apply the deferred writes and publish: bump each locked
	// partition's certifier to the next even value.
	for i, o := range x.wobjs {
		t.vals[o].Store(x.wvals[i])
	}
	for i, p := range x.wparts {
		t.parts[p].seq.Store(x.wbase[i] + 2)
	}
	x.dead = true
	x.put()
	return nil
}

// validateUnderLocks re-checks the read log while the write partitions
// are locked. Reads in partitions we hold cannot move under us; reads
// in other partitions are checked norec-style (stable seq, values,
// seq unchanged), with every wait bounded through the manager.
func (x *txn) validateUnderLocks() bool {
	t := x.tm
	for {
		for p := range x.snaps {
			if x.snaps[p] < 0 || x.holdsPart(p) {
				continue
			}
			for {
				s := t.parts[p].seq.Load()
				if s&1 == 0 {
					x.snaps[p] = s
					break
				}
				if x.mgr.Conflict(nil) != cm.Wait {
					return false
				}
				x.mgr.Backoff()
			}
		}
		for _, r := range x.rset {
			if t.vals[r.obj].Load() != r.val {
				return false
			}
		}
		stable := true
		for p := range x.snaps {
			if x.snaps[p] >= 0 && !x.holdsPart(p) && t.parts[p].seq.Load() != x.snaps[p] {
				stable = false
			}
		}
		if stable {
			return true
		}
	}
}

// holdsPart reports whether p is one of our (sorted) locked write
// partitions.
func (x *txn) holdsPart(p int) bool {
	for _, h := range x.wparts[:len(x.wbase)] {
		if h == p {
			return true
		}
		if h > p {
			return false
		}
	}
	return false
}

// releaseParts unlocks the acquired write partitions, restoring their
// pre-lock sequences (no writes were applied).
func (x *txn) releaseParts() {
	for i := range x.wbase {
		x.tm.parts[x.wparts[i]].seq.Store(x.wbase[i])
	}
}

func (x *txn) Abort() {
	if x.dead {
		if !x.pooled {
			x.put() // killed mid-flight; this Abort is the terminal call
		}
		return
	}
	x.dead = true
	x.put()
}

// put recycles the transaction. Callers must not touch x afterwards.
func (x *txn) put() {
	x.pooled = true
	x.tm.pool.Put(x)
}
