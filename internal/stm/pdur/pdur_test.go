package pdur

import (
	"errors"
	"testing"

	"duopacity/internal/stm"
	"duopacity/internal/stm/stmtest"
)

func factory(objects int) stm.Engine { return New(objects) }

func TestBasic(t *testing.T)         { stmtest.Basic(t, factory) }
func TestAbortRollback(t *testing.T) { stmtest.AbortRollback(t, factory) }
func TestUserError(t *testing.T)     { stmtest.UserError(t, factory) }
func TestCounter(t *testing.T)       { stmtest.Counter(t, factory, 8, 200) }
func TestBankInvariant(t *testing.T) { stmtest.BankInvariant(t, factory, 8, 300) }
func TestSmoke(t *testing.T)         { stmtest.Smoke(t, factory, 8, 200) }

func TestPartitionCount(t *testing.T) {
	if got := New(256).Partitions(); got != defaultPartitions {
		t.Errorf("default partitions = %d, want %d", got, defaultPartitions)
	}
	if got := New(4).Partitions(); got != 4 {
		t.Errorf("partitions clamped = %d, want 4", got)
	}
	if got := New(64, WithPartitions(2)).Partitions(); got != 2 {
		t.Errorf("WithPartitions(2) = %d", got)
	}
	tm := New(64, WithPartitions(4))
	// Contiguous block mapping: disjoint ranges hit disjoint certifiers.
	if tm.pidx(0) != 0 || tm.pidx(15) != 0 || tm.pidx(16) != 1 || tm.pidx(63) != 3 {
		t.Errorf("block mapping broken: %d %d %d %d",
			tm.pidx(0), tm.pidx(15), tm.pidx(16), tm.pidx(63))
	}
}

// Disjoint-partition commits must not invalidate each other: a
// transaction writing partition 0 commits while a transaction that read
// and writes only partition 1 is still live, and the latter still
// commits.
func TestDisjointPartitionsCommitIndependently(t *testing.T) {
	tm := New(32, WithPartitions(2)) // objects 0-15 -> p0, 16-31 -> p1
	b := tm.Begin()
	if _, err := b.Read(16); err != nil {
		t.Fatalf("b.Read: %v", err)
	}
	if err := b.Write(17, 1); err != nil {
		t.Fatalf("b.Write: %v", err)
	}
	// A full write-commit in partition 0 while b is live.
	if err := stm.Atomically(tm, func(tx stm.Txn) error { return tx.Write(0, 9) }); err != nil {
		t.Fatalf("partition-0 writer: %v", err)
	}
	if err := b.Commit(); err != nil {
		t.Fatalf("b.Commit after disjoint commit: %v", err)
	}
}

// A commit in a partition the reader touched forces revalidation; a
// changed value kills the reader (no stale mixes).
func TestCrossPartitionConsistency(t *testing.T) {
	tm := New(32, WithPartitions(2))
	r := tm.Begin()
	if v, err := r.Read(0); err != nil || v != 0 {
		t.Fatalf("read(0) = %d, %v", v, err)
	}
	// Writer commits to both partitions.
	if err := stm.Atomically(tm, func(tx stm.Txn) error {
		if err := tx.Write(0, 5); err != nil {
			return err
		}
		return tx.Write(16, 5)
	}); err != nil {
		t.Fatalf("writer: %v", err)
	}
	// r's old read of object 0 is now stale by value: reading the other
	// partition must not expose the new state alongside it.
	if _, err := r.Read(16); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("stale cross-partition read = %v, want ErrAborted", err)
	}
	r.Abort()
}

// Deferred update: a buffered write is invisible to other transactions
// until commit.
func TestWritesDeferredUntilCommit(t *testing.T) {
	tm := New(8)
	w := tm.Begin()
	if err := w.Write(0, 42); err != nil {
		t.Fatalf("w.Write: %v", err)
	}
	var seen int64
	if err := stm.Atomically(tm, func(tx stm.Txn) error {
		v, err := tx.Read(0)
		seen = v
		return err
	}); err != nil {
		t.Fatalf("reader: %v", err)
	}
	if seen != 0 {
		t.Fatalf("reader saw uncommitted write: %d", seen)
	}
	if err := w.Commit(); err != nil {
		t.Fatalf("w.Commit: %v", err)
	}
	if err := stm.Atomically(tm, func(tx stm.Txn) error {
		v, err := tx.Read(0)
		seen = v
		return err
	}); err != nil {
		t.Fatalf("reader: %v", err)
	}
	if seen != 42 {
		t.Fatalf("committed write lost: %d", seen)
	}
}

// Partition locks are released after a failed certification.
func TestLocksReleasedAfterAbortedCommit(t *testing.T) {
	tm := New(32, WithPartitions(2))
	a := tm.Begin()
	if _, err := a.Read(0); err != nil {
		t.Fatalf("a.Read: %v", err)
	}
	if err := a.Write(16, 1); err != nil {
		t.Fatalf("a.Write: %v", err)
	}
	// Interfering commit invalidates a's read.
	if err := stm.Atomically(tm, func(tx stm.Txn) error { return tx.Write(0, 9) }); err != nil {
		t.Fatalf("interferer: %v", err)
	}
	if err := a.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("a.Commit = %v, want ErrAborted", err)
	}
	// Both partitions must be usable again.
	if err := stm.Atomically(tm, func(tx stm.Txn) error {
		if err := tx.Write(0, 1); err != nil {
			return err
		}
		return tx.Write(16, 2)
	}); err != nil {
		t.Fatalf("partitions still locked: %v", err)
	}
}
