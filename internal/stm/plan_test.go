package stm

import (
	"strings"
	"testing"
)

func TestParsePlanRoundTrip(t *testing.T) {
	src := "w0 | r0 r1\nw1"
	p, err := ParsePlan(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Objects != 2 {
		t.Errorf("Objects = %d, want 2", p.Objects)
	}
	if p.NumTxns() != 3 || p.NumOps() != 4 || p.Steps() != 7 {
		t.Errorf("NumTxns/NumOps/Steps = %d/%d/%d, want 3/4/7", p.NumTxns(), p.NumOps(), p.Steps())
	}
	if got := p.String(); got != src {
		t.Errorf("String = %q, want %q", got, src)
	}
	// A formatted plan must re-parse to the same plan.
	q, err := ParsePlan(p.String())
	if err != nil {
		t.Fatal(err)
	}
	if q.String() != p.String() || q.Objects != p.Objects {
		t.Errorf("round trip diverged: %q vs %q", q.String(), p.String())
	}
}

func TestParsePlanCommentsAndBlank(t *testing.T) {
	p, err := ParsePlan("# litmus: ple reads an uncommitted write\n\nw0  # writer\nr0 r0\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Threads) != 2 || p.Objects != 1 {
		t.Errorf("got %d threads, %d objects; want 2, 1", len(p.Threads), p.Objects)
	}
}

func TestParsePlanErrors(t *testing.T) {
	for _, src := range []string{
		"",          // no threads
		"w0 |",      // empty transaction
		"x0",        // bad op kind
		"r",         // missing object
		"rX",        // non-numeric object
		"w-1",       // negative object
		"w0\nr0 | ", // empty transaction on a later line
	} {
		if _, err := ParsePlan(src); err == nil {
			t.Errorf("ParsePlan(%q) accepted", src)
		}
	}
}

func TestPlanValidate(t *testing.T) {
	good := Plan{Objects: 2, Threads: [][]PlanTxn{{{{Read: true, Obj: 1}}}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	bad := Plan{Objects: 1, Threads: [][]PlanTxn{{{{Read: true, Obj: 1}}}}}
	if err := bad.Validate(); err == nil {
		t.Error("out-of-range object accepted")
	}
	noTxns := Plan{Objects: 1, Threads: [][]PlanTxn{{}}}
	if err := noTxns.Validate(); err == nil {
		t.Error("thread without transactions accepted")
	}
	emptyTxn := Plan{Objects: 1, Threads: [][]PlanTxn{{{}}}}
	if err := emptyTxn.Validate(); err == nil {
		t.Error("empty transaction accepted")
	}
}

func TestMustParsePlanPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParsePlan did not panic on bad input")
		}
	}()
	MustParsePlan("bogus")
}

func TestParsePlanLargeObjects(t *testing.T) {
	p := MustParsePlan("r10 w3")
	if p.Objects != 11 {
		t.Errorf("Objects = %d, want 11", p.Objects)
	}
	if !strings.Contains(p.String(), "r10 w3") {
		t.Errorf("String = %q", p.String())
	}
}
