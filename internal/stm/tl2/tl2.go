// Package tl2 implements Transactional Locking II (Dice, Shalev and
// Shavit, DISC 2006): a deferred-update STM with a global version clock
// and per-object versioned write locks.
//
// Reads validate against the transaction's read version (the clock value
// at begin) and are re-checked for stability; writes are buffered and
// written back at commit under per-object locks, after the read set is
// validated against the (incremented) clock. The engine therefore never
// lets a transaction observe a value written by a transaction that has not
// started committing — the deferred-update semantics the paper formalizes
// as du-opacity.
//
// The hot path is tuned for the scaling benchmarks (stmbench scale):
//
//   - The lock table is striped and cache-line padded: each versioned
//     write-lock lives alone on its line, so two goroutines committing
//     to different objects do not false-share a line of lock words. Up
//     to maxStripes the mapping is one stripe per object (identical
//     conflict behavior to a per-object table); past that objects share
//     stripes, which can only add spurious aborts, never unsafety.
//   - Read and write sets are slice-backed and reused: no map, no
//     sort.Ints in commit (the write-stripe list is insertion-sorted in
//     place into a pooled scratch slice).
//   - Transactions are pooled (sync.Pool), so a read-only transaction
//     costs zero engine-side allocations in steady state. A pooled
//     handle stays safely inert after Commit/Abort until the engine
//     begins another transaction that recycles it; using a dead handle
//     beyond that point is a contract violation (stm.Txn handles are
//     dead after their terminal call).
//
// Contention management is pluggable (WithPolicy): on a locked stripe —
// during a read or while acquiring commit locks — the transaction asks
// its cm.Manager whether to back off and retry or to abort. The default
// passive policy reproduces the original fail-fast behavior.
package tl2

import (
	"sync"
	"sync/atomic"

	"duopacity/internal/stm"
	"duopacity/internal/stm/cm"
)

// lock words: version << 1 | lockedBit.
const lockedBit = 1

// maxStripes caps the padded lock table (1<<14 stripes = 1 MiB); beyond
// it objects hash-share stripes.
const maxStripes = 1 << 14

// stripe is one versioned write-lock, padded to a cache line so
// neighboring locks never share one.
type stripe struct {
	lock atomic.Int64
	_    [56]byte
}

// TM is a TL2 software transactional memory.
type TM struct {
	clock   atomic.Int64
	_       [56]byte // keep the hot clock off the stripe and value lines
	stripes []stripe // striped versioned write-locks (len is a power of two)
	mask    int
	vals    []atomic.Int64
	policy  cm.Policy
	src     *cm.Source
	pool    sync.Pool
}

var _ stm.Engine = (*TM)(nil)

// Option configures a TM.
type Option func(*TM)

// WithPolicy selects the contention-management policy (default
// cm.Passive, the fail-fast behavior).
func WithPolicy(p cm.Policy) Option {
	return func(t *TM) { t.policy = p }
}

// New returns a TL2 TM over objects t-objects initialized to zero.
func New(objects int, opts ...Option) *TM {
	n := 1
	for n < objects && n < maxStripes {
		n <<= 1
	}
	t := &TM{
		stripes: make([]stripe, n),
		mask:    n - 1,
		vals:    make([]atomic.Int64, objects),
	}
	for _, o := range opts {
		o(t)
	}
	t.src = cm.NewSource(t.policy)
	t.pool.New = func() any { return new(txn) }
	return t
}

// Name implements stm.Engine.
func (t *TM) Name() string {
	if t.policy == cm.Passive {
		return "tl2"
	}
	return "tl2+" + t.policy.String()
}

// Objects implements stm.Engine.
func (t *TM) Objects() int { return len(t.vals) }

// Begin implements stm.Engine.
func (t *TM) Begin() stm.Txn {
	x := t.pool.Get().(*txn)
	x.tm = t
	x.rv = t.clock.Load()
	x.rset = x.rset[:0]
	x.wobjs = x.wobjs[:0]
	x.wvals = x.wvals[:0]
	x.dead = false
	x.pooled = false
	t.src.Reset(&x.mgr)
	return x
}

type txn struct {
	tm     *TM
	rv     int64 // read version
	rset   []int // objects read (duplicates allowed)
	wobjs  []int // write set, insertion order, unique
	wvals  []int64
	sset   []int // commit scratch: write stripes, sorted unique
	mgr    cm.Manager
	dead   bool
	pooled bool
}

var _ stm.Txn = (*txn)(nil)

func (x *txn) Read(obj int) (int64, error) {
	if x.dead {
		return 0, stm.ErrAborted
	}
	for i, o := range x.wobjs {
		if o == obj {
			return x.wvals[i], nil
		}
	}
	t := x.tm
	lk := &t.stripes[obj&t.mask].lock
	for {
		l1 := lk.Load()
		if l1&lockedBit != 0 {
			// A concurrent commit holds this stripe: wait it out if the
			// policy allows, else fail fast (the seed behavior).
			if x.mgr.Conflict(nil) != cm.Wait {
				x.dead = true
				return 0, stm.ErrAborted
			}
			x.mgr.Backoff()
			continue
		}
		if l1>>1 > x.rv {
			// The object moved past our snapshot; waiting cannot help.
			x.dead = true
			return 0, stm.ErrAborted
		}
		v := t.vals[obj].Load()
		if lk.Load() != l1 {
			// Raced with a commit between the two lock reads.
			if x.mgr.Conflict(nil) != cm.Wait {
				x.dead = true
				return 0, stm.ErrAborted
			}
			x.mgr.Backoff()
			continue
		}
		x.mgr.Progress()
		x.mgr.Opened()
		x.rset = append(x.rset, obj)
		return v, nil
	}
}

func (x *txn) Write(obj int, v int64) error {
	if x.dead {
		return stm.ErrAborted
	}
	for i, o := range x.wobjs {
		if o == obj {
			x.wvals[i] = v
			return nil
		}
	}
	x.mgr.Opened()
	x.wobjs = append(x.wobjs, obj)
	x.wvals = append(x.wvals, v)
	return nil
}

func (x *txn) Commit() error {
	if x.dead {
		return stm.ErrAborted
	}
	t := x.tm
	if len(x.wobjs) == 0 {
		// Read-only transactions commit at their read version: every read
		// was consistent as of rv.
		x.dead = true
		x.put()
		return nil
	}
	// Collect the write stripes, sorted and deduplicated in place (no
	// sort.Ints allocation; write sets are small, insertion sort wins).
	x.sset = x.sset[:0]
	for _, o := range x.wobjs {
		s := o & t.mask
		i := len(x.sset)
		for i > 0 && x.sset[i-1] > s {
			i--
		}
		if i > 0 && x.sset[i-1] == s {
			continue
		}
		x.sset = append(x.sset, 0)
		copy(x.sset[i+1:], x.sset[i:])
		x.sset[i] = s
	}
	// Lock the write stripes in stripe order (deadlock freedom); the
	// contention manager decides whether a held stripe is waited out.
	locked := 0
	for _, s := range x.sset {
		lk := &t.stripes[s].lock
		for {
			l := lk.Load()
			if l&lockedBit == 0 && lk.CompareAndSwap(l, l|lockedBit) {
				x.mgr.Progress()
				break
			}
			if x.mgr.Conflict(nil) != cm.Wait {
				x.releaseStripes(locked)
				x.dead = true
				x.put()
				return stm.ErrAborted
			}
			x.mgr.Backoff()
		}
		locked++
	}
	// Increment the global clock; wv is this commit's version.
	wv := t.clock.Add(1)
	// Validate the read set (unless no concurrent commit happened).
	if wv != x.rv+1 {
		for _, ro := range x.rset {
			s := ro & t.mask
			l := t.stripes[s].lock.Load()
			if x.holdsStripe(s) {
				l &^= lockedBit // we hold this lock
			} else if l&lockedBit != 0 {
				x.releaseStripes(locked)
				x.dead = true
				x.put()
				return stm.ErrAborted
			}
			if l>>1 > x.rv {
				x.releaseStripes(locked)
				x.dead = true
				x.put()
				return stm.ErrAborted
			}
		}
	}
	// Write back and release with the new version.
	for i, o := range x.wobjs {
		t.vals[o].Store(x.wvals[i])
	}
	wl := wv << 1
	for _, s := range x.sset {
		t.stripes[s].lock.Store(wl)
	}
	x.dead = true
	x.put()
	return nil
}

func (x *txn) Abort() {
	if x.dead {
		if !x.pooled {
			x.put() // killed mid-flight; this Abort is the terminal call
		}
		return
	}
	x.dead = true
	x.put()
}

// releaseStripes unlocks the first n acquired write stripes, restoring
// their pre-lock versions.
func (x *txn) releaseStripes(n int) {
	for _, s := range x.sset[:n] {
		lk := &x.tm.stripes[s].lock
		lk.Store(lk.Load() &^ lockedBit)
	}
}

// holdsStripe reports whether s is one of our (sorted) write stripes.
func (x *txn) holdsStripe(s int) bool {
	for _, h := range x.sset {
		if h == s {
			return true
		}
		if h > s {
			return false
		}
	}
	return false
}

// put recycles the transaction. Callers must not touch x afterwards.
func (x *txn) put() {
	x.pooled = true
	x.tm.pool.Put(x)
}
