// Package tl2 implements Transactional Locking II (Dice, Shalev and
// Shavit, DISC 2006): a deferred-update STM with a global version clock
// and per-object versioned write locks.
//
// Reads validate against the transaction's read version (the clock value
// at begin) and are re-checked for stability; writes are buffered and
// written back at commit under per-object locks, after the read set is
// validated against the (incremented) clock. The engine therefore never
// lets a transaction observe a value written by a transaction that has not
// started committing — the deferred-update semantics the paper formalizes
// as du-opacity.
package tl2

import (
	"sort"
	"sync/atomic"

	"duopacity/internal/stm"
)

// lock words: version << 1 | lockedBit.
const lockedBit = 1

// TM is a TL2 software transactional memory.
type TM struct {
	clock atomic.Int64
	locks []atomic.Int64 // versioned write-locks
	vals  []atomic.Int64
}

var _ stm.Engine = (*TM)(nil)

// New returns a TL2 TM over objects t-objects initialized to zero.
func New(objects int) *TM {
	return &TM{
		locks: make([]atomic.Int64, objects),
		vals:  make([]atomic.Int64, objects),
	}
}

// Name implements stm.Engine.
func (t *TM) Name() string { return "tl2" }

// Objects implements stm.Engine.
func (t *TM) Objects() int { return len(t.vals) }

// Begin implements stm.Engine.
func (t *TM) Begin() stm.Txn {
	return &txn{tm: t, rv: t.clock.Load(), wset: make(map[int]int64)}
}

type readEntry struct {
	obj      int
	lockSnap int64
}

type txn struct {
	tm   *TM
	rv   int64 // read version
	rset []readEntry
	wset map[int]int64
	dead bool
}

var _ stm.Txn = (*txn)(nil)

func (x *txn) Read(obj int) (int64, error) {
	if x.dead {
		return 0, stm.ErrAborted
	}
	if v, ok := x.wset[obj]; ok {
		return v, nil
	}
	l1 := x.tm.locks[obj].Load()
	v := x.tm.vals[obj].Load()
	l2 := x.tm.locks[obj].Load()
	if l1 != l2 || l1&lockedBit != 0 || l1>>1 > x.rv {
		x.kill()
		return 0, stm.ErrAborted
	}
	x.rset = append(x.rset, readEntry{obj: obj, lockSnap: l1})
	return v, nil
}

func (x *txn) Write(obj int, v int64) error {
	if x.dead {
		return stm.ErrAborted
	}
	x.wset[obj] = v
	return nil
}

func (x *txn) Commit() error {
	if x.dead {
		return stm.ErrAborted
	}
	x.dead = true // one way or another, the transaction ends here
	if len(x.wset) == 0 {
		// Read-only transactions commit at their read version: every read
		// was consistent as of rv.
		return nil
	}
	// Lock the write set in object order (deadlock freedom); fail fast on
	// contention.
	objs := make([]int, 0, len(x.wset))
	for o := range x.wset {
		objs = append(objs, o)
	}
	sort.Ints(objs)
	locked := make([]int, 0, len(objs))
	release := func() {
		for _, o := range locked {
			cur := x.tm.locks[o].Load()
			x.tm.locks[o].Store(cur &^ lockedBit)
		}
	}
	for _, o := range objs {
		l := x.tm.locks[o].Load()
		if l&lockedBit != 0 || !x.tm.locks[o].CompareAndSwap(l, l|lockedBit) {
			release()
			return stm.ErrAborted
		}
		locked = append(locked, o)
	}
	// Increment the global clock; wv is this commit's version.
	wv := x.tm.clock.Add(1)
	// Validate the read set (unless no concurrent commit happened).
	if wv != x.rv+1 {
		for _, r := range x.rset {
			l := x.tm.locks[r.obj].Load()
			if _, own := x.wset[r.obj]; own {
				l &^= lockedBit // we hold this lock
			} else if l&lockedBit != 0 {
				release()
				return stm.ErrAborted
			}
			if l>>1 > x.rv {
				release()
				return stm.ErrAborted
			}
		}
	}
	// Write back and release with the new version.
	for _, o := range objs {
		x.tm.vals[o].Store(x.wset[o])
		x.tm.locks[o].Store(wv << 1)
	}
	return nil
}

func (x *txn) Abort() { x.dead = true }

func (x *txn) kill() { x.dead = true }
