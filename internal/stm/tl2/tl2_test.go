package tl2

import (
	"errors"
	"testing"

	"duopacity/internal/stm"
	"duopacity/internal/stm/stmtest"
)

func factory(objects int) stm.Engine { return New(objects) }

func TestBasic(t *testing.T)         { stmtest.Basic(t, factory) }
func TestAbortRollback(t *testing.T) { stmtest.AbortRollback(t, factory) }
func TestUserError(t *testing.T)     { stmtest.UserError(t, factory) }
func TestCounter(t *testing.T)       { stmtest.Counter(t, factory, 8, 200) }
func TestBankInvariant(t *testing.T) { stmtest.BankInvariant(t, factory, 8, 300) }
func TestSmoke(t *testing.T)         { stmtest.Smoke(t, factory, 8, 200) }

func TestReadSeesCommittedOnly(t *testing.T) {
	// A reader that began before a writer's commit aborts (its read
	// version is stale) rather than observing a mix.
	tm := New(2)
	reader := tm.Begin()
	if v, err := reader.Read(0); err != nil || v != 0 {
		t.Fatalf("read(0) = %d, %v", v, err)
	}
	// Writer commits both objects.
	if err := stm.Atomically(tm, func(tx stm.Txn) error {
		if err := tx.Write(0, 1); err != nil {
			return err
		}
		return tx.Write(1, 1)
	}); err != nil {
		t.Fatalf("writer: %v", err)
	}
	// The reader's second read must abort: object 1 now carries a version
	// newer than the reader's read version.
	if _, err := reader.Read(1); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("stale read = %v, want ErrAborted", err)
	}
	reader.Abort()
}

func TestWriteWriteConflictAborts(t *testing.T) {
	tm := New(1)
	a := tm.Begin()
	b := tm.Begin()
	if err := a.Write(0, 1); err != nil {
		t.Fatalf("a.Write: %v", err)
	}
	if err := b.Write(0, 2); err != nil {
		t.Fatalf("b.Write: %v", err)
	}
	if err := a.Commit(); err != nil {
		t.Fatalf("a.Commit: %v", err)
	}
	// b's commit must fail: its read version predates a's commit and the
	// object version moved.
	if err := b.Commit(); err == nil {
		tx := tm.Begin()
		v, _ := tx.Read(0)
		tx.Abort()
		if v != 2 {
			t.Fatalf("b committed but value = %d", v)
		}
		// If b happened to win the race legitimately the value must be b's.
	}
}

func TestClockAdvancesOnCommit(t *testing.T) {
	tm := New(1)
	before := tm.clock.Load()
	if err := stm.Atomically(tm, func(tx stm.Txn) error { return tx.Write(0, 5) }); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if after := tm.clock.Load(); after != before+1 {
		t.Fatalf("clock = %d, want %d", after, before+1)
	}
	// Read-only transactions do not advance the clock.
	if err := stm.Atomically(tm, func(tx stm.Txn) error { _, err := tx.Read(0); return err }); err != nil {
		t.Fatalf("read-only: %v", err)
	}
	if after := tm.clock.Load(); after != before+1 {
		t.Fatalf("read-only commit moved the clock to %d", after)
	}
}

func TestLocksReleasedAfterAbortedCommit(t *testing.T) {
	tm := New(2)
	a := tm.Begin()
	if _, err := a.Read(0); err != nil {
		t.Fatalf("a.Read: %v", err)
	}
	if err := a.Write(1, 1); err != nil {
		t.Fatalf("a.Write: %v", err)
	}
	// Interfering commit invalidates a's read set.
	if err := stm.Atomically(tm, func(tx stm.Txn) error { return tx.Write(0, 9) }); err != nil {
		t.Fatalf("interferer: %v", err)
	}
	if err := a.Commit(); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("a.Commit = %v, want ErrAborted", err)
	}
	// The write lock on object 1 must have been released.
	if err := stm.Atomically(tm, func(tx stm.Txn) error { return tx.Write(1, 3) }); err != nil {
		t.Fatalf("object 1 still locked: %v", err)
	}
}
