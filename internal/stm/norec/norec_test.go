package norec

import (
	"errors"
	"testing"

	"duopacity/internal/stm"
	"duopacity/internal/stm/stmtest"
)

func factory(objects int) stm.Engine { return New(objects) }

func TestBasic(t *testing.T)         { stmtest.Basic(t, factory) }
func TestAbortRollback(t *testing.T) { stmtest.AbortRollback(t, factory) }
func TestUserError(t *testing.T)     { stmtest.UserError(t, factory) }
func TestCounter(t *testing.T)       { stmtest.Counter(t, factory, 8, 200) }
func TestBankInvariant(t *testing.T) { stmtest.BankInvariant(t, factory, 8, 300) }
func TestSmoke(t *testing.T)         { stmtest.Smoke(t, factory, 8, 200) }

func TestSeqStaysEvenWhenIdle(t *testing.T) {
	tm := New(1)
	if err := stm.Atomically(tm, func(tx stm.Txn) error { return tx.Write(0, 1) }); err != nil {
		t.Fatalf("commit: %v", err)
	}
	if s := tm.seq.Load(); s%2 != 0 {
		t.Fatalf("sequence lock left odd: %d", s)
	}
	if s := tm.seq.Load(); s != 2 {
		t.Fatalf("sequence = %d, want 2 after one writer commit", s)
	}
}

func TestValueValidationAbortsStaleReader(t *testing.T) {
	tm := New(2)
	reader := tm.Begin()
	if v, err := reader.Read(0); err != nil || v != 0 {
		t.Fatalf("read(0) = %d, %v", v, err)
	}
	// A writer changes object 0: the reader's log is now stale by value.
	if err := stm.Atomically(tm, func(tx stm.Txn) error { return tx.Write(0, 7) }); err != nil {
		t.Fatalf("writer: %v", err)
	}
	if _, err := reader.Read(1); !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("stale reader read = %v, want ErrAborted", err)
	}
}

func TestValueValidationToleratesABA(t *testing.T) {
	// NOrec validates by value: if a writer restores the exact value the
	// reader logged, the reader may continue (this is NOrec's documented
	// semantics, not a bug — the snapshot is still consistent by value).
	tm := New(2)
	reader := tm.Begin()
	if _, err := reader.Read(0); err != nil {
		t.Fatalf("read(0): %v", err)
	}
	if err := stm.Atomically(tm, func(tx stm.Txn) error { return tx.Write(0, 0) }); err != nil {
		t.Fatalf("writer: %v", err)
	}
	if v, err := reader.Read(1); err != nil || v != 0 {
		t.Fatalf("read(1) = %d, %v; want 0, nil (value-based validation)", v, err)
	}
	if err := reader.Commit(); err != nil {
		t.Fatalf("reader commit: %v", err)
	}
}

func TestWriterCommitBumpsByTwo(t *testing.T) {
	tm := New(1)
	for i := 1; i <= 3; i++ {
		if err := stm.Atomically(tm, func(tx stm.Txn) error { return tx.Write(0, int64(i)) }); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		if s := tm.seq.Load(); s != int64(2*i) {
			t.Fatalf("seq after %d commits = %d, want %d", i, s, 2*i)
		}
	}
}
