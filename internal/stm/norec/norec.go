// Package norec implements NOrec (Dalessandro, Spear and Scott, PPoPP
// 2010): a deferred-update STM with no ownership records — a single global
// sequence lock plus value-based read validation.
//
// The global counter is even when no writer is committing. Readers snapshot
// the counter, read values directly, and re-validate their whole read log
// (by value) whenever the counter moves; writers serialize on the counter
// (odd = locked), re-validate, write back, and release. Like TL2, NOrec is
// deferred-update by construction.
package norec

import (
	"runtime"
	"sync/atomic"

	"duopacity/internal/stm"
)

// TM is a NOrec software transactional memory.
type TM struct {
	seq  atomic.Int64 // even: unlocked; odd: a writer is committing
	vals []atomic.Int64
}

var _ stm.Engine = (*TM)(nil)

// New returns a NOrec TM over objects t-objects initialized to zero.
func New(objects int) *TM {
	return &TM{vals: make([]atomic.Int64, objects)}
}

// Name implements stm.Engine.
func (t *TM) Name() string { return "norec" }

// Objects implements stm.Engine.
func (t *TM) Objects() int { return len(t.vals) }

// Begin implements stm.Engine.
func (t *TM) Begin() stm.Txn {
	return &txn{tm: t, snap: t.stableSeq(), wset: make(map[int]int64)}
}

// stableSeq waits for an even (unlocked) sequence value.
func (t *TM) stableSeq() int64 {
	for {
		s := t.seq.Load()
		if s&1 == 0 {
			return s
		}
		runtime.Gosched()
	}
}

type readEntry struct {
	obj int
	val int64
}

type txn struct {
	tm   *TM
	snap int64
	rset []readEntry
	wset map[int]int64
	dead bool
}

var _ stm.Txn = (*txn)(nil)

func (x *txn) Read(obj int) (int64, error) {
	if x.dead {
		return 0, stm.ErrAborted
	}
	if v, ok := x.wset[obj]; ok {
		return v, nil
	}
	for {
		v := x.tm.vals[obj].Load()
		if x.tm.seq.Load() == x.snap {
			x.rset = append(x.rset, readEntry{obj: obj, val: v})
			return v, nil
		}
		// The counter moved: re-validate the read log against a fresh
		// stable snapshot, then retry the read.
		snap, ok := x.revalidate()
		if !ok {
			x.dead = true
			return 0, stm.ErrAborted
		}
		x.snap = snap
	}
}

// revalidate returns a stable sequence value under which every logged read
// still holds by value.
func (x *txn) revalidate() (int64, bool) {
	for {
		s := x.tm.stableSeq()
		for _, r := range x.rset {
			if x.tm.vals[r.obj].Load() != r.val {
				return 0, false
			}
		}
		if x.tm.seq.Load() == s {
			return s, true
		}
	}
}

func (x *txn) Write(obj int, v int64) error {
	if x.dead {
		return stm.ErrAborted
	}
	x.wset[obj] = v
	return nil
}

func (x *txn) Commit() error {
	if x.dead {
		return stm.ErrAborted
	}
	x.dead = true
	if len(x.wset) == 0 {
		return nil // read-only: the log was valid at snap
	}
	// Acquire the sequence lock at a snapshot under which our reads are
	// valid.
	for !x.tm.seq.CompareAndSwap(x.snap, x.snap+1) {
		snap, ok := x.revalidate()
		if !ok {
			return stm.ErrAborted
		}
		x.snap = snap
	}
	for o, v := range x.wset {
		x.tm.vals[o].Store(v)
	}
	x.tm.seq.Store(x.snap + 2)
	return nil
}

func (x *txn) Abort() { x.dead = true }
