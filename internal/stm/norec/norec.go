// Package norec implements NOrec (Dalessandro, Spear and Scott, PPoPP
// 2010): a deferred-update STM with no ownership records — a single global
// sequence lock plus value-based read validation.
//
// The global counter is even when no writer is committing. Readers snapshot
// the counter, read values directly, and re-validate their whole read log
// (by value) whenever the counter moves; writers serialize on the counter
// (odd = locked), re-validate, write back, and release. Like TL2, NOrec is
// deferred-update by construction.
//
// The hot path is allocation-free in steady state: read and write sets
// are slice-backed and reused, and transactions are pooled (sync.Pool),
// so a read-only transaction costs zero engine-side allocations. The
// sequence counter is cache-line padded away from the value array. A
// pooled handle stays safely inert after Commit/Abort until the engine
// begins another transaction that recycles it; using a dead handle
// beyond that point is a contract violation.
//
// Contention management is pluggable (WithPolicy): when validation
// fails, the manager chooses how long to back off before surrendering
// (the retried attempt then restarts from a fresh snapshot at the
// stm.Atomically layer), which damps abort storms on hot objects. The
// default passive policy reproduces the original fail-fast behavior.
package norec

import (
	"runtime"
	"sync"
	"sync/atomic"

	"duopacity/internal/stm"
	"duopacity/internal/stm/cm"
)

// TM is a NOrec software transactional memory.
type TM struct {
	seq    atomic.Int64 // even: unlocked; odd: a writer is committing
	_      [56]byte     // keep the hot counter off the value lines
	vals   []atomic.Int64
	policy cm.Policy
	src    *cm.Source
	pool   sync.Pool
}

var _ stm.Engine = (*TM)(nil)

// Option configures a TM.
type Option func(*TM)

// WithPolicy selects the contention-management policy (default
// cm.Passive, the fail-fast behavior).
func WithPolicy(p cm.Policy) Option {
	return func(t *TM) { t.policy = p }
}

// New returns a NOrec TM over objects t-objects initialized to zero.
func New(objects int, opts ...Option) *TM {
	t := &TM{vals: make([]atomic.Int64, objects)}
	for _, o := range opts {
		o(t)
	}
	t.src = cm.NewSource(t.policy)
	t.pool.New = func() any { return new(txn) }
	return t
}

// Name implements stm.Engine.
func (t *TM) Name() string {
	if t.policy == cm.Passive {
		return "norec"
	}
	return "norec+" + t.policy.String()
}

// Objects implements stm.Engine.
func (t *TM) Objects() int { return len(t.vals) }

// Begin implements stm.Engine.
func (t *TM) Begin() stm.Txn {
	x := t.pool.Get().(*txn)
	x.tm = t
	x.snap = t.stableSeq()
	x.rset = x.rset[:0]
	x.wobjs = x.wobjs[:0]
	x.wvals = x.wvals[:0]
	x.dead = false
	x.pooled = false
	t.src.Reset(&x.mgr)
	return x
}

// stableSeq waits for an even (unlocked) sequence value. Writers hold
// the counter only across a bounded commit, so the wait is bounded.
func (t *TM) stableSeq() int64 {
	for {
		s := t.seq.Load()
		if s&1 == 0 {
			return s
		}
		runtime.Gosched()
	}
}

type readEntry struct {
	obj int
	val int64
}

type txn struct {
	tm     *TM
	snap   int64
	rset   []readEntry
	wobjs  []int // write set, insertion order, unique
	wvals  []int64
	mgr    cm.Manager
	dead   bool
	pooled bool
}

var _ stm.Txn = (*txn)(nil)

func (x *txn) Read(obj int) (int64, error) {
	if x.dead {
		return 0, stm.ErrAborted
	}
	for i, o := range x.wobjs {
		if o == obj {
			return x.wvals[i], nil
		}
	}
	for {
		v := x.tm.vals[obj].Load()
		if x.tm.seq.Load() == x.snap {
			x.mgr.Opened()
			x.rset = append(x.rset, readEntry{obj: obj, val: v})
			return v, nil
		}
		// The counter moved: re-validate the read log against a fresh
		// stable snapshot, then retry the read.
		snap, ok := x.revalidate()
		if !ok {
			x.conflictBackoff()
			x.dead = true
			return 0, stm.ErrAborted
		}
		x.snap = snap
	}
}

// revalidate returns a stable sequence value under which every logged read
// still holds by value.
func (x *txn) revalidate() (int64, bool) {
	for {
		s := x.tm.stableSeq()
		for _, r := range x.rset {
			if x.tm.vals[r.obj].Load() != r.val {
				return 0, false
			}
		}
		if x.tm.seq.Load() == s {
			return s, true
		}
	}
}

// conflictBackoff consults the contention manager on a lost validation.
// The abort itself is unavoidable (the snapshot is stale); what the
// manager controls is the bounded backoff before the caller's retry
// loop launches the next attempt into the same hot spot.
func (x *txn) conflictBackoff() {
	if x.mgr.Conflict(nil) == cm.Wait {
		x.mgr.Backoff()
	}
}

func (x *txn) Write(obj int, v int64) error {
	if x.dead {
		return stm.ErrAborted
	}
	for i, o := range x.wobjs {
		if o == obj {
			x.wvals[i] = v
			return nil
		}
	}
	x.mgr.Opened()
	x.wobjs = append(x.wobjs, obj)
	x.wvals = append(x.wvals, v)
	return nil
}

func (x *txn) Commit() error {
	if x.dead {
		return stm.ErrAborted
	}
	x.dead = true
	if len(x.wobjs) == 0 {
		x.put()
		return nil // read-only: the log was valid at snap
	}
	// Acquire the sequence lock at a snapshot under which our reads are
	// valid.
	for !x.tm.seq.CompareAndSwap(x.snap, x.snap+1) {
		snap, ok := x.revalidate()
		if !ok {
			x.conflictBackoff()
			x.put()
			return stm.ErrAborted
		}
		x.snap = snap
	}
	for i, o := range x.wobjs {
		x.tm.vals[o].Store(x.wvals[i])
	}
	x.tm.seq.Store(x.snap + 2)
	x.put()
	return nil
}

func (x *txn) Abort() {
	if x.dead {
		if !x.pooled {
			x.put() // killed mid-flight; this Abort is the terminal call
		}
		return
	}
	x.dead = true
	x.put()
}

// put recycles the transaction. Callers must not touch x afterwards.
func (x *txn) put() {
	x.pooled = true
	x.tm.pool.Put(x)
}
