package stm

import (
	"fmt"
	"strconv"
	"strings"
)

// PlanOp is one t-operation of a planned transaction: a read of, or a
// write to, the t-object with the given index. Written values are not part
// of the plan — the harness draws them from a per-run counter so that
// every write is unique (the hypothesis of the paper's Theorem 11), which
// means the value flow of an execution is a pure function of the schedule.
type PlanOp struct {
	Read bool
	Obj  int
}

// PlanTxn is the operation list of one planned transaction. The trailing
// tryCommit is implicit: a thread that has performed every operation of
// the transaction invokes tryC as its next step.
type PlanTxn []PlanOp

// Plan is a deterministic multi-threaded transactional program: thread g
// runs the transactions Threads[g] in order, each operation drawn from the
// plan, each transaction ending in tryC (aborted attempts retry the same
// transaction). A plan fixes everything about an execution except the
// interleaving, so the set of histories an engine can produce for a plan
// is exactly the set of schedules the scheduler allows — the object that
// harness.RunInterleaved samples one point of and harness.ExplorePlan
// enumerates exhaustively.
type Plan struct {
	// Objects is the number of t-objects the engine manages; every PlanOp
	// must address an object in [0, Objects).
	Objects int
	// Threads holds one transaction list per virtual thread.
	Threads [][]PlanTxn
}

// NumTxns is the total number of planned transactions across all threads.
func (p Plan) NumTxns() int {
	n := 0
	for _, txns := range p.Threads {
		n += len(txns)
	}
	return n
}

// NumOps is the total number of planned t-operations, excluding the
// implicit tryC steps.
func (p Plan) NumOps() int {
	n := 0
	for _, txns := range p.Threads {
		for _, ops := range txns {
			n += len(ops)
		}
	}
	return n
}

// Steps is the total number of scheduler steps a retry-free execution of
// the plan performs: every operation plus one tryC per transaction.
func (p Plan) Steps() int {
	return p.NumOps() + p.NumTxns()
}

// Validate checks that the plan is runnable: at least one thread, at least
// one transaction per thread, and every operation addressing an object in
// [0, Objects).
func (p Plan) Validate() error {
	if len(p.Threads) == 0 {
		return fmt.Errorf("stm: plan has no threads")
	}
	if p.Objects <= 0 {
		return fmt.Errorf("stm: plan has %d objects", p.Objects)
	}
	for g, txns := range p.Threads {
		if len(txns) == 0 {
			return fmt.Errorf("stm: plan thread %d has no transactions", g)
		}
		for i, ops := range txns {
			if len(ops) == 0 {
				return fmt.Errorf("stm: plan thread %d transaction %d is empty", g, i)
			}
			for _, op := range ops {
				if op.Obj < 0 || op.Obj >= p.Objects {
					return fmt.Errorf("stm: plan thread %d transaction %d addresses object %d of %d",
						g, i, op.Obj, p.Objects)
				}
			}
		}
	}
	return nil
}

// String renders the plan in the text format of ParsePlan: one line per
// thread, transactions separated by " | ", operations "r<obj>"/"w<obj>".
func (p Plan) String() string {
	var b strings.Builder
	for g, txns := range p.Threads {
		if g > 0 {
			b.WriteByte('\n')
		}
		for i, ops := range txns {
			if i > 0 {
				b.WriteString(" | ")
			}
			for j, op := range ops {
				if j > 0 {
					b.WriteByte(' ')
				}
				if op.Read {
					b.WriteByte('r')
				} else {
					b.WriteByte('w')
				}
				b.WriteString(strconv.Itoa(op.Obj))
			}
		}
	}
	return b.String()
}

// ParsePlan reads a plan from its text form: one line per thread, '|'
// separating that thread's transactions, and whitespace-separated
// operation tokens "r<obj>" (read) or "w<obj>" (write). Blank lines and
// '#' comments are skipped. Objects is inferred as one past the largest
// object index. Example — two threads, the first running w0 then a
// read-only transaction, the second a single writer:
//
//	w0 | r0 r1
//	w1
func ParsePlan(src string) (Plan, error) {
	var p Plan
	for ln, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		if strings.TrimSpace(line) == "" {
			continue
		}
		var txns []PlanTxn
		for _, part := range strings.Split(line, "|") {
			fields := strings.Fields(part)
			if len(fields) == 0 {
				return Plan{}, fmt.Errorf("stm: plan line %d: empty transaction", ln+1)
			}
			ops := make(PlanTxn, 0, len(fields))
			for _, f := range fields {
				if len(f) < 2 || (f[0] != 'r' && f[0] != 'w') {
					return Plan{}, fmt.Errorf("stm: plan line %d: bad operation %q (want r<obj> or w<obj>)", ln+1, f)
				}
				obj, err := strconv.Atoi(f[1:])
				if err != nil || obj < 0 {
					return Plan{}, fmt.Errorf("stm: plan line %d: bad object in %q", ln+1, f)
				}
				if obj+1 > p.Objects {
					p.Objects = obj + 1
				}
				ops = append(ops, PlanOp{Read: f[0] == 'r', Obj: obj})
			}
			txns = append(txns, ops)
		}
		p.Threads = append(p.Threads, txns)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// MustParsePlan is ParsePlan, panicking on error — for fixed litmus plans
// in tests and examples.
func MustParsePlan(src string) Plan {
	p, err := ParsePlan(src)
	if err != nil {
		panic(err)
	}
	return p
}
