package cm

import (
	"strings"
	"testing"
)

func TestParsePolicy(t *testing.T) {
	for _, p := range Policies() {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	_, err := ParsePolicy("bogus")
	if err == nil {
		t.Fatal("unknown policy accepted")
	}
	for _, want := range Names() {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list valid policy %q", err, want)
		}
	}
}

func TestPolicyNames(t *testing.T) {
	want := []string{"passive", "backoff", "karma", "greedy"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	if Policy(200).String() == "" {
		t.Error("out-of-range policy has empty name")
	}
}

// Every policy must exhaust its wait budget in bounded steps when the
// opponent never goes away — the stepper-safety property.
func TestConflictTerminates(t *testing.T) {
	for _, p := range Policies() {
		src := NewSource(p)
		var m Manager
		src.Reset(&m)
		waits := 0
		for i := 0; i < 10*waitBudget; i++ {
			r := m.Conflict(nil)
			if r == AbortEnemy {
				t.Fatalf("%s: AbortEnemy against unknown enemy", p)
			}
			if r == AbortSelf {
				break
			}
			waits++
			m.Backoff()
		}
		if waits > waitBudget {
			t.Errorf("%s: %d consecutive waits, budget is %d", p, waits, waitBudget)
		}
		if r := m.Conflict(nil); p != Passive && r != AbortSelf && waits < waitBudget {
			t.Errorf("%s: conflict loop did not terminate (last resolution %s)", p, r)
		}
	}
}

func TestPassiveFailsFast(t *testing.T) {
	var m Manager
	(*Source)(nil).Reset(&m)
	if r := m.Conflict(nil); r != AbortSelf {
		t.Fatalf("passive resolution = %s, want abort-self", r)
	}
}

func TestKarmaArbitratesByWork(t *testing.T) {
	src := NewSource(Karma)
	var rich, poor Manager
	src.Reset(&rich)
	src.Reset(&poor)
	for i := 0; i < 10; i++ {
		rich.Opened()
	}
	poor.Opened()
	if r := rich.Conflict(&poor); r != AbortEnemy {
		t.Errorf("high-karma vs low-karma = %s, want abort-enemy", r)
	}
	if r := poor.Conflict(&rich); r != Wait {
		t.Errorf("low-karma vs high-karma = %s, want wait", r)
	}
	// Grievance accumulation: a waiting transaction whose deficit fits
	// inside the wait budget eventually outranks a stalled owner.
	var mid Manager
	src.Reset(&mid)
	for i := 0; i < waitBudget/2; i++ {
		mid.Opened()
	}
	src.Reset(&poor)
	poor.Opened()
	for i := 0; i < waitBudget; i++ {
		if poor.Conflict(&mid) == AbortEnemy {
			return
		}
	}
	t.Error("waiting low-karma transaction never outranked a stalled owner")
}

func TestGreedyOlderWins(t *testing.T) {
	src := NewSource(Greedy)
	var old, young Manager
	src.Reset(&old)
	src.Reset(&young)
	if r := old.Conflict(&young); r != AbortEnemy {
		t.Errorf("older vs younger = %s, want abort-enemy", r)
	}
	if r := young.Conflict(&old); r != Wait {
		t.Errorf("younger vs older = %s, want wait", r)
	}
	if old.Priority() <= young.Priority() {
		t.Errorf("old priority %d not above young %d", old.Priority(), young.Priority())
	}
}

func TestResetClearsState(t *testing.T) {
	src := NewSource(Karma)
	var m Manager
	src.Reset(&m)
	m.Opened()
	m.Opened()
	m.Conflict(nil)
	src.Reset(&m)
	if m.Priority() != 0 {
		t.Errorf("priority after reset = %d", m.Priority())
	}
	if m.waits != 0 {
		t.Errorf("waits after reset = %d", m.waits)
	}
}

func TestProgressResetsBudget(t *testing.T) {
	src := NewSource(Backoff)
	var m Manager
	src.Reset(&m)
	for i := 0; i < waitBudget; i++ {
		if m.Conflict(nil) != Wait {
			t.Fatalf("wait %d refused", i)
		}
	}
	if m.Conflict(nil) != AbortSelf {
		t.Fatal("budget exhaustion did not abort")
	}
	m.Progress()
	if m.Conflict(nil) != Wait {
		t.Fatal("budget not restored after progress")
	}
}
