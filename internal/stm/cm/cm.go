// Package cm provides pluggable contention management for the STM
// engines: a small policy family — passive (fail fast), exponential
// backoff, karma, greedy — behind one uniform hook that every engine
// calls when it hits a conflict it could either wait out, resolve by
// force, or surrender to.
//
// The design follows the DSTM contention-manager line (Herlihy et al.)
// that the dstm engine previously hardwired: the *engine* detects
// conflicts and the *manager* decides what to do about them. A Source
// is attached to one engine instance and mints a Manager per
// transaction attempt; the engine reports each opened object
// (Manager.Opened — karma's currency) and consults Manager.Conflict at
// every conflict site. Conflict answers one of three resolutions:
//
//   - Wait: back off (Manager.Backoff, a bounded spin) and retry the
//     conflicting operation.
//   - AbortSelf: surrender — roll back and return stm.ErrAborted.
//   - AbortEnemy: kill the opponent and proceed. Only engines that can
//     identify and abort an opponent (dstm's locator CAS) honor this;
//     everyone else must treat it as Wait.
//
// Two properties are load-bearing for the rest of the repo:
//
//  1. Every policy is *bounded*: a transaction that keeps conflicting
//     receives at most a fixed number of Wait resolutions before the
//     manager escalates to AbortSelf (or AbortEnemy where possible).
//     The deterministic stepper (internal/harness) runs every engine
//     under the exclNone admissibility rule — each operation either
//     completes or aborts without blocking on another suspended
//     vthread — and an unbounded wait loop would deadlock it. Under
//     the stepper a Wait burns its budget without the opponent
//     advancing and then degrades to fail-fast, which is exactly the
//     passive behavior the exploration results are defined over.
//
//  2. Managers are deterministic: no clocks, no randomness. Backoff is
//     a runtime.Gosched spin, greedy timestamps come from a per-Source
//     counter, karma counts opened objects. Two runs that make the
//     same calls in the same order make the same decisions, which
//     keeps the harness's recorded histories reproducible.
//
// Karma here is per-attempt: the engines mint a fresh transaction per
// attempt (stm.Atomically calls Begin each retry), so priority resets
// on abort rather than accumulating across retries as in the original
// formulation. It still arbitrates by work — a transaction that has
// opened many objects outranks a young one — which is the property the
// benchmarks exercise.
package cm

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
)

// Policy selects a contention-management strategy.
type Policy uint8

const (
	// Passive fails fast: every conflict resolves to AbortSelf. This is
	// the seed behavior of tl2/norec/etl and the default for every
	// engine (a bare engine name means passive).
	Passive Policy = iota
	// Backoff waits out conflicts with exponentially growing bounded
	// spins before surrendering.
	Backoff
	// Karma arbitrates by work: priority is the number of objects the
	// transaction has opened. Lower-priority transactions wait for (or
	// die to) higher-priority ones; against an unknown opponent karma
	// degrades to bounded waiting.
	Karma
	// Greedy arbitrates by age: the transaction with the older
	// timestamp wins. Against an unknown opponent greedy degrades to
	// bounded waiting.
	Greedy

	numPolicies
)

var policyNames = [numPolicies]string{"passive", "backoff", "karma", "greedy"}

func (p Policy) String() string {
	if p < numPolicies {
		return policyNames[p]
	}
	return fmt.Sprintf("cm(%d)", uint8(p))
}

// Policies lists every policy in canonical order.
func Policies() []Policy {
	return []Policy{Passive, Backoff, Karma, Greedy}
}

// Names lists the policy names in canonical order.
func Names() []string {
	out := make([]string, 0, numPolicies)
	for _, p := range Policies() {
		out = append(out, p.String())
	}
	return out
}

// ParsePolicy resolves a policy name. The error lists the valid names.
func ParsePolicy(name string) (Policy, error) {
	for _, p := range Policies() {
		if name == p.String() {
			return p, nil
		}
	}
	return 0, fmt.Errorf("unknown contention manager %q (valid: %s)", name, strings.Join(Names(), ", "))
}

// Resolution is a Manager's answer to a conflict.
type Resolution uint8

const (
	// AbortSelf: roll back and return stm.ErrAborted.
	AbortSelf Resolution = iota
	// Wait: call Manager.Backoff and retry the conflicting operation.
	Wait
	// AbortEnemy: abort the opponent and proceed. Engines that cannot
	// kill an opponent must treat this as Wait.
	AbortEnemy
)

func (r Resolution) String() string {
	switch r {
	case AbortSelf:
		return "abort-self"
	case Wait:
		return "wait"
	case AbortEnemy:
		return "abort-enemy"
	}
	return fmt.Sprintf("resolution(%d)", uint8(r))
}

// waitBudget bounds consecutive Wait resolutions per conflict site so
// every policy terminates under the deterministic stepper (see the
// package comment). 2^waitBudget Gosched calls is the largest single
// backoff.
const waitBudget = 8

// Source mints per-transaction Managers for one engine instance. The
// zero value is a passive source; use NewSource for the others. A
// Source is safe for concurrent use.
type Source struct {
	policy Policy
	births atomic.Int64 // greedy's age counter
}

// NewSource returns a Source minting managers of the given policy.
func NewSource(p Policy) *Source {
	return &Source{policy: p}
}

// Policy reports the policy this source mints.
func (s *Source) Policy() Policy {
	if s == nil {
		return Passive
	}
	return s.policy
}

// Manager carries one transaction attempt's contention state. Like the
// stm.Txn it belongs to, a Manager is not safe for concurrent use —
// except for Priority and Kill-side inspection, which opponents may
// call concurrently (both touch only atomics).
//
// The zero Manager is passive; engines embed it in their pooled txn
// objects and re-arm it with Source.Reset at Begin, so contention
// management adds zero allocations to the transaction hot path.
type Manager struct {
	policy Policy
	birth  int64        // greedy: mint order, older (smaller) wins
	work   atomic.Int64 // karma: objects opened
	waits  int          // consecutive Waits at the current conflict site
}

// Reset re-arms m as a fresh manager of s's policy. A nil source means
// passive. Called by engines at Begin on pooled transactions.
func (s *Source) Reset(m *Manager) {
	if s == nil {
		m.policy = Passive
		m.birth = 0
	} else {
		m.policy = s.policy
		if s.policy == Greedy {
			m.birth = s.births.Add(1)
		}
	}
	m.work.Store(0)
	m.waits = 0
}

// Opened records that the transaction opened (read or wrote) one
// object — the karma currency. Cheap enough to call unconditionally.
func (m *Manager) Opened() {
	if m.policy == Karma {
		m.work.Add(1)
	}
}

// Progress tells the manager the conflicting operation finally
// succeeded, resetting the per-site wait budget.
func (m *Manager) Progress() { m.waits = 0 }

// Priority is the manager's standing in its policy's currency, for
// engines that expose it to opponents (dstm). Karma: work done.
// Greedy: negated age, so older is higher. Others: 0. Safe to call on
// an opponent's manager concurrently.
func (m *Manager) Priority() int64 {
	switch m.policy {
	case Karma:
		return m.work.Load()
	case Greedy:
		return -m.birth
	default:
		return 0
	}
}

// Conflict reports a conflict with an opponent and returns the
// resolution. enemy is the opponent's manager when the engine can
// identify one (dstm's locators); nil otherwise. Conflict never
// returns Wait more than waitBudget times in a row at one site: the
// budget exhausts into AbortSelf (or AbortEnemy for policies that
// outrank the opponent), so conflict loops always terminate.
func (m *Manager) Conflict(enemy *Manager) Resolution {
	switch m.policy {
	case Backoff:
		if m.waits < waitBudget {
			m.waits++
			return Wait
		}
		return AbortSelf
	case Karma:
		// Work-based arbitration: the transaction that has opened more
		// objects wins; each wait adds a grievance point so a blocked
		// transaction eventually outranks a stalled owner.
		if enemy != nil && m.work.Load()+int64(m.waits) >= enemy.Priority() {
			return AbortEnemy
		}
		if m.waits >= waitBudget {
			return AbortSelf
		}
		m.waits++
		return Wait
	case Greedy:
		if enemy != nil {
			// Age-based arbitration: older (higher Priority) wins.
			if m.Priority() >= enemy.Priority() {
				return AbortEnemy
			}
		}
		if m.waits >= waitBudget {
			return AbortSelf
		}
		m.waits++
		return Wait
	default: // Passive
		return AbortSelf
	}
}

// Backoff performs the bounded wait backing a Wait resolution: an
// exponentially growing runtime.Gosched spin (1<<waits yields, capped
// by the wait budget). Deterministic — no timers, no randomness — and
// a no-op burn under the single-goroutine stepper.
func (m *Manager) Backoff() {
	n := m.waits
	if n > waitBudget {
		n = waitBudget
	}
	for i := 0; i < 1<<uint(n); i++ {
		runtime.Gosched()
	}
}
