package stm_test

import (
	"errors"
	"testing"

	"duopacity/internal/stm"
	"duopacity/internal/stm/engines"
	"duopacity/internal/stm/tl2"
)

func TestAtomicallyRetriesConflicts(t *testing.T) {
	tm := tl2.New(1)
	// Force one conflict: the first attempt's read version is invalidated
	// by an interfering commit before its own commit.
	attempt := 0
	err := stm.Atomically(tm, func(tx stm.Txn) error {
		attempt++
		v, err := tx.Read(0)
		if err != nil {
			return err
		}
		if attempt == 1 {
			if ierr := stm.Atomically(tm, func(itx stm.Txn) error { return itx.Write(0, 99) }); ierr != nil {
				return ierr
			}
		}
		return tx.Write(0, v+1)
	})
	if err != nil {
		t.Fatalf("Atomically: %v", err)
	}
	if attempt < 2 {
		t.Fatalf("expected a retry, got %d attempts", attempt)
	}
	tx := tm.Begin()
	v, _ := tx.Read(0)
	_ = tx.Commit()
	if v != 100 {
		t.Fatalf("final value = %d, want 100", v)
	}
}

func TestAtomicallyNBoundsAttempts(t *testing.T) {
	tm := tl2.New(1)
	calls := 0
	err := stm.AtomicallyN(tm, 3, func(tx stm.Txn) error {
		calls++
		return stm.ErrAborted // simulate a persistent conflict
	})
	if !errors.Is(err, stm.ErrAborted) {
		t.Fatalf("err = %v, want ErrAborted", err)
	}
	if calls != 3 {
		t.Fatalf("attempts = %d, want 3", calls)
	}
}

func TestEngineRegistry(t *testing.T) {
	for _, name := range engines.Names() {
		e, err := engines.New(name, 4)
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if e.Name() != name {
			t.Errorf("engine %q reports name %q", name, e.Name())
		}
		if e.Objects() != 4 {
			t.Errorf("engine %q objects = %d", name, e.Objects())
		}
		// Each registered engine must complete a trivial transaction.
		if err := stm.Atomically(e, func(tx stm.Txn) error {
			if _, err := tx.Read(0); err != nil {
				return err
			}
			return tx.Write(1, 7)
		}); err != nil {
			t.Errorf("engine %q trivial txn: %v", name, err)
		}
	}
	if _, err := engines.New("bogus", 1); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestDeferredUpdateFlag(t *testing.T) {
	want := map[string]bool{
		"tl2": true, "norec": true, "gl": true, "dstm": true,
		"etl": false, "etl+v": false, "ple": false,
	}
	for name, du := range want {
		if got := engines.DeferredUpdate(name); got != du {
			t.Errorf("DeferredUpdate(%q) = %v, want %v", name, got, du)
		}
	}
}
