package history

import (
	"errors"
	"strings"
	"testing"
)

func mustSeq(t *testing.T, h *History, order []TxnID, commit map[TxnID]bool) *Seq {
	t.Helper()
	s, err := SeqFromHistory(h, order, commit)
	if err != nil {
		t.Fatalf("SeqFromHistory: %v", err)
	}
	return s
}

func TestSeqLegalBasic(t *testing.T) {
	// T1 writes X=1 and commits; T2 reads X=1 and commits.
	h := NewBuilder().
		Write(1, "X", 1).Commit(1).
		Read(2, "X", 1).Commit(2).
		History()
	s := mustSeq(t, h, []TxnID{1, 2}, nil)
	if err := s.Legal(); err != nil {
		t.Fatalf("Legal: %v", err)
	}
	// The opposite order is illegal: T2 would read 1 from T_0's state 0.
	s2 := mustSeq(t, h, []TxnID{2, 1}, nil)
	var ire *IllegalReadError
	if err := s2.Legal(); !errors.As(err, &ire) {
		t.Fatalf("Legal = %v, want IllegalReadError", err)
	} else if ire.Txn != 2 || ire.Want != 0 {
		t.Fatalf("IllegalReadError = %+v, want txn 2 expecting 0", ire)
	}
}

func TestSeqLegalInitialValue(t *testing.T) {
	h := NewBuilder().Read(1, "X", 0).Commit(1).History()
	s := mustSeq(t, h, []TxnID{1}, nil)
	if err := s.Legal(); err != nil {
		t.Fatalf("read of initial value must be legal: %v", err)
	}
	h2 := NewBuilder().Read(1, "X", 5).Commit(1).History()
	s2 := mustSeq(t, h2, []TxnID{1}, nil)
	if err := s2.Legal(); err == nil {
		t.Fatal("read of unwritten value 5 must be illegal")
	}
}

func TestSeqLegalOwnWrites(t *testing.T) {
	// A transaction reads its own latest write, not the committed state.
	h := NewBuilder().
		Write(1, "X", 1).Commit(1).
		Write(2, "X", 2).Write(2, "X", 3).Read(2, "X", 3).Commit(2).
		History()
	s := mustSeq(t, h, []TxnID{1, 2}, nil)
	if err := s.Legal(); err != nil {
		t.Fatalf("Legal: %v", err)
	}
	// Reading the first own write instead of the latest is illegal.
	h2 := NewBuilder().
		Write(2, "X", 2).Write(2, "X", 3).Read(2, "X", 2).Commit(2).
		History()
	s2 := mustSeq(t, h2, []TxnID{2}, nil)
	if err := s2.Legal(); err == nil {
		t.Fatal("stale own-write read must be illegal")
	}
}

func TestSeqLegalAbortedWritesInvisible(t *testing.T) {
	// T1 writes X=1 but aborts; T2 must read 0.
	h := NewBuilder().
		Write(1, "X", 1).CommitAbort(1).
		Read(2, "X", 0).Commit(2).
		History()
	s := mustSeq(t, h, []TxnID{1, 2}, nil)
	if err := s.Legal(); err != nil {
		t.Fatalf("Legal: %v", err)
	}
	hBad := NewBuilder().
		Write(1, "X", 1).CommitAbort(1).
		Read(2, "X", 1).Commit(2).
		History()
	sBad := mustSeq(t, hBad, []TxnID{1, 2}, nil)
	if err := sBad.Legal(); err == nil {
		t.Fatal("reading an aborted transaction's write must be illegal")
	}
}

func TestSeqLegalAbortedReaderStillChecked(t *testing.T) {
	// Reads of an aborted transaction that returned values must be legal.
	h := NewBuilder().
		Write(1, "X", 1).Commit(1).
		Read(2, "X", 7).Abort(2).
		History()
	s := mustSeq(t, h, []TxnID{1, 2}, nil)
	if err := s.Legal(); err == nil {
		t.Fatal("aborted reader with impossible value must be illegal")
	}
}

func TestSeqFromHistoryCompletionRules(t *testing.T) {
	b := NewBuilder()
	b.Write(1, "X", 1).InvTryCommit(1) // commit-pending
	b.InvRead(2, "X")                  // pending read
	b.Read(3, "X", 0)                  // complete, not t-complete
	h := b.History()

	s := mustSeq(t, h, []TxnID{3, 1, 2}, map[TxnID]bool{1: true})
	// T1 committed by decision.
	if !s.Txns[1].Committed() {
		t.Error("T1 should be committed by the completion decision")
	}
	// T2's pending read completed with A.
	t2 := s.Txns[2]
	if last := t2.Ops[len(t2.Ops)-1]; last.Kind != OpRead || last.Out != OutAbort || last.Pending {
		t.Errorf("T2 last op = %v, want aborted read", last)
	}
	// T3 got a synthetic tryC·A with InvIndex -1.
	t3 := s.Txns[0]
	if last := t3.Ops[len(t3.Ops)-1]; last.Kind != OpTryCommit || last.Out != OutAbort || last.InvIndex != -1 {
		t.Errorf("T3 last op = %v, want synthetic tryC->A", last)
	}
	if err := s.MatchesCompletionOf(h); err != nil {
		t.Errorf("MatchesCompletionOf: %v", err)
	}
	// Default decision (absent from map) aborts a pending tryC.
	s2 := mustSeq(t, h, []TxnID{3, 1, 2}, nil)
	if s2.Txns[1].Committed() {
		t.Error("T1 should abort without a commit decision")
	}
}

func TestSeqFromHistoryErrors(t *testing.T) {
	h := NewBuilder().Write(1, "X", 1).Commit(1).History()
	if _, err := SeqFromHistory(h, []TxnID{1, 2}, nil); err == nil {
		t.Error("order longer than txns must fail")
	}
	if _, err := SeqFromHistory(h, []TxnID{2}, nil); err == nil {
		t.Error("unknown transaction must fail")
	}
	h2 := NewBuilder().Write(1, "X", 1).Commit(1).Write(2, "Y", 1).Commit(2).History()
	if _, err := SeqFromHistory(h2, []TxnID{1, 1}, nil); err == nil {
		t.Error("duplicate transaction must fail")
	}
}

func TestMatchesCompletionOfRejectsTampering(t *testing.T) {
	h := NewBuilder().Write(1, "X", 1).Commit(1).History()
	s := mustSeq(t, h, []TxnID{1}, nil)
	s.Txns[0].Ops[0].Arg = 42
	if err := s.MatchesCompletionOf(h); err == nil {
		t.Error("tampered write argument must not match")
	}
}

func TestSeqOrderPositionString(t *testing.T) {
	h := NewBuilder().
		Write(2, "X", 1).Commit(2).
		Read(1, "X", 1).CommitAbort(1).
		History()
	s := mustSeq(t, h, []TxnID{2, 1}, nil)
	if ord := s.Order(); len(ord) != 2 || ord[0] != 2 || ord[1] != 1 {
		t.Errorf("Order = %v, want [2 1]", ord)
	}
	if s.Position(1) != 1 || s.Position(2) != 0 || s.Position(9) != -1 {
		t.Error("Position wrong")
	}
	if got := s.String(); got != "T2+ T1-" {
		t.Errorf("String = %q, want %q", got, "T2+ T1-")
	}
}

func TestCompletionMaterialization(t *testing.T) {
	b := NewBuilder()
	b.Write(1, "X", 1).InvTryCommit(1)
	b.InvRead(2, "X")
	b.Read(3, "X", 0)
	h := b.History()

	c := h.Completion(map[TxnID]bool{1: true})
	if !c.TComplete() {
		t.Fatal("completion is not t-complete")
	}
	if !c.Txn(1).Committed() {
		t.Error("T1 should commit in completion")
	}
	if !c.Txn(2).Aborted() {
		t.Error("T2 should abort in completion")
	}
	t3 := c.Txn(3)
	if !t3.Aborted() || t3.Ops[len(t3.Ops)-1].Kind != OpTryCommit {
		t.Error("T3 should abort via appended tryC")
	}
	// The completion leaves already-t-complete histories unchanged.
	done := NewBuilder().Write(9, "X", 1).Commit(9).History()
	c2 := done.Completion(nil)
	if !done.Equivalent(c2) || c2.Len() != done.Len() {
		t.Error("completion of t-complete history should be identical")
	}
}

func TestCompletionEquivalentToSeq(t *testing.T) {
	// The Seq built by SeqFromHistory agrees with the materialized
	// completion transaction by transaction.
	b := NewBuilder()
	b.Write(1, "X", 1).InvTryCommit(1)
	b.Read(2, "X", 0)
	h := b.History()
	c := h.Completion(map[TxnID]bool{1: true})
	s := mustSeq(t, h, []TxnID{1, 2}, map[TxnID]bool{1: true})
	for _, st := range s.Txns {
		ct := c.Txn(st.ID)
		if len(ct.Ops) != len(st.Ops) {
			t.Fatalf("T%d: completion has %d ops, seq has %d", st.ID, len(ct.Ops), len(st.Ops))
		}
		for i := range st.Ops {
			a, b := ct.Ops[i], st.Ops[i]
			if a.Kind != b.Kind || a.Obj != b.Obj || a.Arg != b.Arg || a.Out != b.Out {
				t.Errorf("T%d op %d: completion %v, seq %v", st.ID, i, a, b)
			}
		}
	}
}

func TestIllegalReadErrorMessage(t *testing.T) {
	err := &IllegalReadError{Txn: 2, Op: Op{Kind: OpRead, Obj: "X", Val: 1, Out: OutOK}, Want: 0}
	if !strings.Contains(err.Error(), "read_2(X)") || !strings.Contains(err.Error(), "returned 1") {
		t.Errorf("unhelpful error message: %q", err.Error())
	}
}

func TestBuilderPanicsOnMisuse(t *testing.T) {
	tests := []struct {
		name string
		fn   func(*Builder)
	}{
		{"response without invocation", func(b *Builder) { b.ResRead(1, "X", 0) }},
		{"op after commit", func(b *Builder) { b.Commit(1).Read(1, "X", 0) }},
		{"double pending", func(b *Builder) { b.InvRead(1, "X").InvWrite(1, "Y", 1) }},
		{"reserved id", func(b *Builder) { b.Read(0, "X", 0) }},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: no panic", tc.name)
				}
			}()
			tc.fn(NewBuilder())
		})
	}
}

func TestBuilderLen(t *testing.T) {
	b := NewBuilder()
	if b.Len() != 0 {
		t.Fatal("empty builder Len != 0")
	}
	b.Write(1, "X", 1)
	if b.Len() != 2 {
		t.Fatalf("Len = %d, want 2", b.Len())
	}
}
