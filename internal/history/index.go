package history

import "sort"

// Indexed is the dense, precomputed view of a history that the decision
// procedures (package spec), the proof constructions (package koenig) and
// the online monitor share. It replaces the per-check rebuilding of
// map[Var]int / map[TxnID]int with indexes computed once per History:
// histories are immutable, so the view is cached on the History and safe
// to share across goroutines. Stream-built histories maintain the view
// incrementally as events are appended; buildIndex below is the one-shot
// batch construction used for snapshots, and the two are pinned equal by
// the stream differential tests.
//
// Transaction indexes follow first-appearance order (the order of
// History.Txns), and so do object indexes — both admit append-only
// incremental updates, unlike a sorted object order.
type Indexed struct {
	H *History

	// Objs holds the t-objects in dense-index order.
	Objs   []Var
	objIdx map[Var]int

	// TxnIDs holds the transaction identifiers in dense-index order.
	TxnIDs []TxnID
	txnIdx map[TxnID]int

	// Txns holds the per-transaction summaries, parallel to TxnIDs.
	Txns []IndexedTxn

	// The bitset views below are always populated; multi-word Bits rows
	// lifted the old 64-transaction mask ceiling (and with it the
	// MasksValid degradation path, which is gone).
	//
	// RTPred[i] is the set of transactions that real-time precede
	// transaction i (Definition 3, condition 2). Row i holds exactly
	// bitsWords(i) words: dense order is first-appearance order, so only
	// lower-indexed transactions can real-time precede i.
	RTPred []Bits
	// Writers[o] is the set of transactions with a successful (last) write
	// to object o — the candidate sources of a read of o. Rows are sized
	// to their highest-indexed writer (nil when the object was never
	// written).
	Writers []Bits
	// TComplete is the set of t-complete transactions, sized to its
	// highest-indexed member.
	TComplete Bits
}

// IndexedTxn is the per-transaction summary of the view.
type IndexedTxn struct {
	// Info is the underlying per-transaction view H|k.
	Info *TxnInfo

	// Reads lists the external value-returning reads of the transaction in
	// H|k order: reads satisfied by an earlier own write are excluded (they
	// are legal in every serialization once consistent).
	Reads []IndexedRead
	// Writes lists the values the transaction installs if it commits (the
	// latest successful write per object), sorted by object index.
	Writes []IndexedWrite

	// BadReadOp indexes Info.Ops at the first read that returned a value
	// different from the transaction's own latest preceding write of the
	// same object (-1 when none): such a history is inconsistent in every
	// serialization. BadReadWant is the own-write value the read missed.
	BadReadOp   int
	BadReadWant Value

	// Status flags and event positions, copied from Info for locality.
	First, Last      int
	TryCInv, TryCRes int
	Committed        bool
	CommitPending    bool
	TComplete        bool
	Complete         bool
}

// IndexedRead is one external value-returning read.
type IndexedRead struct {
	Obj    int // dense object index
	Val    Value
	ResIdx int // index in H of the read's response event
	Op     Op  // the operation, for diagnostics
}

// IndexedWrite is one installed write (the transaction's latest successful
// write to the object).
type IndexedWrite struct {
	Obj int // dense object index
	Val Value
}

// Index returns the history's indexed view. Histories built by NewStream
// carry the incrementally maintained index; batch-built histories build
// it here on first use. The view is cached: repeated checks of the same
// History share one index.
func (h *History) Index() *Indexed {
	h.idxOnce.Do(func() { h.idx = buildIndex(h) })
	return h.idx
}

// NumTxns returns the number of transactions in the view.
func (ix *Indexed) NumTxns() int { return len(ix.TxnIDs) }

// NumObjs returns the number of t-objects in the view.
func (ix *Indexed) NumObjs() int { return len(ix.Objs) }

// TxnIndexOf returns the dense index of T_k, or -1.
func (ix *Indexed) TxnIndexOf(k TxnID) int {
	if i, ok := ix.txnIdx[k]; ok {
		return i
	}
	return -1
}

// ObjIndexOf returns the dense index of the object, or -1.
func (ix *Indexed) ObjIndexOf(v Var) int {
	if i, ok := ix.objIdx[v]; ok {
		return i
	}
	return -1
}

func buildIndex(h *History) *Indexed {
	ix := &Indexed{H: h}

	// Objects, in first-appearance order (matching the stream's
	// incremental registration).
	seen := make(map[Var]bool)
	for _, e := range h.events {
		if e.Op == OpRead || e.Op == OpWrite {
			if !seen[e.Obj] {
				seen[e.Obj] = true
				ix.Objs = append(ix.Objs, e.Obj)
			}
		}
	}
	ix.objIdx = make(map[Var]int, len(ix.Objs))
	for i, v := range ix.Objs {
		ix.objIdx[v] = i
	}

	n := len(h.ids)
	ix.TxnIDs = append([]TxnID(nil), h.ids...)
	ix.txnIdx = make(map[TxnID]int, n)
	ix.Txns = make([]IndexedTxn, n)
	for i, k := range ix.TxnIDs {
		ix.txnIdx[k] = i
		t := h.txns[k]
		it := &ix.Txns[i]
		it.Info = t
		it.BadReadOp = -1
		it.First, it.Last = t.First, t.Last
		it.TryCInv, it.TryCRes = t.TryCInv, t.TryCRes
		it.Committed = t.Committed()
		it.CommitPending = t.CommitPending()
		it.TComplete = t.TComplete()
		it.Complete = t.Complete()

		// Classify reads and find the latest successful write per object by
		// scanning H|k; own-write lookback is a backward scan (transactions
		// are short, and this keeps index building allocation-light).
		for j, op := range t.Ops {
			if op.Pending {
				break
			}
			if op.Kind != OpRead || op.Out != OutOK {
				continue
			}
			own := false
			for p := j - 1; p >= 0; p-- {
				prev := t.Ops[p]
				if prev.Kind == OpWrite && prev.Out == OutOK && prev.Obj == op.Obj {
					own = true
					if prev.Arg != op.Val && it.BadReadOp < 0 {
						it.BadReadOp = j
						it.BadReadWant = prev.Arg
					}
					break
				}
			}
			if own {
				continue
			}
			it.Reads = append(it.Reads, IndexedRead{
				Obj: ix.objIdx[op.Obj], Val: op.Val, ResIdx: op.ResIndex, Op: op,
			})
		}
		for j, op := range t.Ops {
			if op.Pending || op.Kind != OpWrite || op.Out != OutOK {
				continue
			}
			// Keep only the latest write per object.
			last := true
			for p := j + 1; p < len(t.Ops); p++ {
				next := t.Ops[p]
				if next.Pending {
					break
				}
				if next.Kind == OpWrite && next.Out == OutOK && next.Obj == op.Obj {
					last = false
					break
				}
			}
			if last {
				it.Writes = append(it.Writes, IndexedWrite{Obj: ix.objIdx[op.Obj], Val: op.Arg})
			}
		}
		sort.Slice(it.Writes, func(a, b int) bool { return it.Writes[a].Obj < it.Writes[b].Obj })
	}

	// Bitset views. RTPred rows come out of one slab (row i spans
	// bitsWords(i) words — only lower-indexed transactions can precede i),
	// matching the shapes the stream's incremental maintenance produces.
	totalWords := 0
	for i := 0; i < n; i++ {
		totalWords += bitsWords(i)
	}
	slab := make([]uint64, totalWords)
	ix.RTPred = make([]Bits, n)
	off := 0
	for i := 0; i < n; i++ {
		w := bitsWords(i)
		ix.RTPred[i] = Bits(slab[off : off+w : off+w])
		off += w
	}
	ix.Writers = make([]Bits, len(ix.Objs))
	for i := range ix.Txns {
		it := &ix.Txns[i]
		for _, w := range it.Writes {
			ix.Writers[w.Obj] = ix.Writers[w.Obj].SetGrow(i)
		}
		if it.TComplete {
			ix.TComplete = ix.TComplete.SetGrow(i)
			// Only later-indexed transactions can real-time follow i: dense
			// order is first-appearance order.
			for m := i + 1; m < n; m++ {
				if it.Last < ix.Txns[m].First {
					ix.RTPred[m].Set(i)
				}
			}
		}
	}
	return ix
}

// SeqForOrder materializes the t-complete t-sequential history with
// transactions in the given dense-index order, completed per Definition 2
// (exactly as SeqFromHistory, which validates its inputs; this builder
// trusts the caller and allocates the operation slices as one slab). The
// order may cover a subset of the transactions — the serializability
// baselines order only committed and commit-pending transactions — and
// commit[pos] resolves the completion of a pending tryC at order[pos].
func (ix *Indexed) SeqForOrder(order []int, commit []bool) *Seq {
	total := 0
	for _, gi := range order {
		it := &ix.Txns[gi]
		total += len(it.Info.Ops)
		if it.Complete && !it.TComplete {
			total++
		}
	}
	slab := make([]Op, 0, total)
	txns := make([]SeqTxn, len(order))
	for pos, gi := range order {
		it := &ix.Txns[gi]
		t := it.Info
		start := len(slab)
		slab = append(slab, t.Ops...)
		switch {
		case it.TComplete:
			// Keep H|k as is.
		case it.CommitPending:
			last := &slab[len(slab)-1]
			last.Pending = false
			if commit[pos] {
				last.Out = OutCommit
			} else {
				last.Out = OutAbort
			}
		case !it.Complete:
			// Pending read, write or tryA: completed with A_k.
			last := &slab[len(slab)-1]
			last.Pending = false
			last.Out = OutAbort
		default:
			// Complete but not t-complete: synthetic tryC·A_k.
			slab = append(slab, Op{Kind: OpTryCommit, Out: OutAbort, InvIndex: -1, ResIndex: -1})
		}
		end := len(slab)
		txns[pos] = SeqTxn{ID: t.ID, Ops: slab[start:end:end]}
	}
	return &Seq{Txns: txns}
}
