// Package history implements the transactional-memory execution model of
// Attiya, Hans, Kuznetsov and Ravi, "Safety of Deferred Update in
// Transactional Memory" (ICDCS 2013), Section 2.
//
// A history is a sequence of invocation and response events of
// t-operations. Each transaction T_k issues t-operations read_k(X),
// write_k(X, v), tryC_k() and tryA_k(); an operation either returns a value
// (reads), ok (writes), C_k (commit) or the special abort value A_k.
//
// The package provides:
//
//   - Event, History: the raw event-sequence model with well-formedness
//     validation (histories must be well-formed, Section 2);
//   - TxnInfo, Op: the per-transaction view H|k with operation matching;
//   - real-time order, overlap, live sets (Lset_H(T)) and the live-set
//     precedence used by Lemma 4;
//   - completions of a history (Definition 2);
//   - Seq: t-complete t-sequential histories with the latest-written-value
//     legality check, used by the checkers in package spec as candidate
//     serializations.
//
// The imaginary initial transaction T_0 that writes the initial value to
// every t-object is never materialized: t-objects implicitly start at
// InitValue, and T_0 is treated as committed before every event.
package history

import "fmt"

// TxnID identifies a transaction. ID 0 is reserved for the imaginary
// initial transaction T_0 and never appears in a history.
type TxnID int

// Var names a transactional object (t-object).
type Var string

// Value is the domain V of values stored in t-objects.
type Value int64

// InitTxn is the reserved identifier of the imaginary initial transaction
// T_0 which writes InitValue to every t-object and commits before any other
// transaction begins.
const InitTxn TxnID = 0

// InitValue is the initial value of every t-object, written by T_0.
const InitValue Value = 0

// OpKind enumerates the four t-operations of the model.
type OpKind uint8

const (
	// OpRead is read_k(X): returns a value in V or A_k.
	OpRead OpKind = iota + 1
	// OpWrite is write_k(X, v): returns ok_k or A_k.
	OpWrite
	// OpTryCommit is tryC_k(): returns C_k or A_k.
	OpTryCommit
	// OpTryAbort is tryA_k(): returns A_k.
	OpTryAbort
)

// String returns the conventional name of the operation kind.
func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpTryCommit:
		return "tryC"
	case OpTryAbort:
		return "tryA"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// EventKind distinguishes invocation from response events.
type EventKind uint8

const (
	// Inv is an invocation event.
	Inv EventKind = iota + 1
	// Res is a response event.
	Res
)

// String returns "inv" or "res".
func (k EventKind) String() string {
	switch k {
	case Inv:
		return "inv"
	case Res:
		return "res"
	default:
		return fmt.Sprintf("EventKind(%d)", uint8(k))
	}
}

// Outcome is the result carried by a response event.
type Outcome uint8

const (
	// OutOK means the operation succeeded: a read returned a value, or a
	// write returned ok_k.
	OutOK Outcome = iota + 1
	// OutCommit is C_k, returned only by tryC_k().
	OutCommit
	// OutAbort is A_k, which may be returned by any t-operation and makes
	// the transaction aborted (t-complete).
	OutAbort
)

// String returns "ok", "C" or "A".
func (o Outcome) String() string {
	switch o {
	case OutOK:
		return "ok"
	case OutCommit:
		return "C"
	case OutAbort:
		return "A"
	default:
		return fmt.Sprintf("Outcome(%d)", uint8(o))
	}
}

// Event is a single invocation or response event of a t-operation.
//
// Field usage by (Kind, Op):
//
//	Inv  read   : Txn, Obj
//	Inv  write  : Txn, Obj, Arg
//	Inv  tryC   : Txn
//	Inv  tryA   : Txn
//	Res  read   : Txn, Obj, Out (OutOK with Val, or OutAbort)
//	Res  write  : Txn, Obj, Arg, Out (OutOK or OutAbort)
//	Res  tryC   : Txn, Out (OutCommit or OutAbort)
//	Res  tryA   : Txn, Out (OutAbort)
type Event struct {
	Kind EventKind
	Op   OpKind
	Txn  TxnID
	Obj  Var
	Arg  Value   // argument of a write
	Val  Value   // value returned by a successful read
	Out  Outcome // response events only
}

// String renders the event in the paper's notation, e.g. "inv read_2(X)" or
// "res read_2(X)->1" or "res tryC_1->C".
func (e Event) String() string {
	switch {
	case e.Kind == Inv && e.Op == OpRead:
		return fmt.Sprintf("inv read_%d(%s)", e.Txn, e.Obj)
	case e.Kind == Inv && e.Op == OpWrite:
		return fmt.Sprintf("inv write_%d(%s,%d)", e.Txn, e.Obj, e.Arg)
	case e.Kind == Inv:
		return fmt.Sprintf("inv %s_%d", e.Op, e.Txn)
	case e.Op == OpRead && e.Out == OutOK:
		return fmt.Sprintf("res read_%d(%s)->%d", e.Txn, e.Obj, e.Val)
	case e.Op == OpRead:
		return fmt.Sprintf("res read_%d(%s)->%s", e.Txn, e.Obj, e.Out)
	case e.Op == OpWrite:
		return fmt.Sprintf("res write_%d(%s,%d)->%s", e.Txn, e.Obj, e.Arg, e.Out)
	default:
		return fmt.Sprintf("res %s_%d->%s", e.Op, e.Txn, e.Out)
	}
}

// matches reports whether r is a well-formed response to invocation i.
func (r Event) matches(i Event) bool {
	if r.Kind != Res || i.Kind != Inv || r.Txn != i.Txn || r.Op != i.Op {
		return false
	}
	switch r.Op {
	case OpRead:
		return r.Obj == i.Obj && (r.Out == OutOK || r.Out == OutAbort)
	case OpWrite:
		return r.Obj == i.Obj && r.Arg == i.Arg && (r.Out == OutOK || r.Out == OutAbort)
	case OpTryCommit:
		return r.Out == OutCommit || r.Out == OutAbort
	case OpTryAbort:
		return r.Out == OutAbort
	default:
		return false
	}
}
