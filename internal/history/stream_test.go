package history

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// equalIndexes structurally compares two indexed views (the incremental
// stream index against the one-shot batch construction).
func equalIndexes(a, b *Indexed) error {
	if len(a.Objs) != len(b.Objs) {
		return fmt.Errorf("objs: %v vs %v", a.Objs, b.Objs)
	}
	for i := range a.Objs {
		if a.Objs[i] != b.Objs[i] {
			return fmt.Errorf("objs[%d]: %v vs %v", i, a.Objs[i], b.Objs[i])
		}
		if a.objIdx[a.Objs[i]] != b.objIdx[b.Objs[i]] {
			return fmt.Errorf("objIdx[%v]: %d vs %d", a.Objs[i], a.objIdx[a.Objs[i]], b.objIdx[b.Objs[i]])
		}
	}
	if len(a.TxnIDs) != len(b.TxnIDs) {
		return fmt.Errorf("txns: %v vs %v", a.TxnIDs, b.TxnIDs)
	}
	for i := range a.TxnIDs {
		if a.TxnIDs[i] != b.TxnIDs[i] || a.txnIdx[a.TxnIDs[i]] != b.txnIdx[b.TxnIDs[i]] {
			return fmt.Errorf("txn ids at %d: %v vs %v", i, a.TxnIDs[i], b.TxnIDs[i])
		}
		at, bt := &a.Txns[i], &b.Txns[i]
		if at.Info.ID != bt.Info.ID {
			return fmt.Errorf("T%v: info mismatch", a.TxnIDs[i])
		}
		if len(at.Reads) != len(bt.Reads) {
			return fmt.Errorf("T%v reads: %v vs %v", a.TxnIDs[i], at.Reads, bt.Reads)
		}
		for j := range at.Reads {
			if at.Reads[j] != bt.Reads[j] {
				return fmt.Errorf("T%v read %d: %+v vs %+v", a.TxnIDs[i], j, at.Reads[j], bt.Reads[j])
			}
		}
		if len(at.Writes) != len(bt.Writes) {
			return fmt.Errorf("T%v writes: %v vs %v", a.TxnIDs[i], at.Writes, bt.Writes)
		}
		for j := range at.Writes {
			if at.Writes[j] != bt.Writes[j] {
				return fmt.Errorf("T%v write %d: %+v vs %+v", a.TxnIDs[i], j, at.Writes[j], bt.Writes[j])
			}
		}
		if at.BadReadOp != bt.BadReadOp || at.BadReadWant != bt.BadReadWant {
			return fmt.Errorf("T%v bad read: (%d,%d) vs (%d,%d)",
				a.TxnIDs[i], at.BadReadOp, at.BadReadWant, bt.BadReadOp, bt.BadReadWant)
		}
		if at.First != bt.First || at.Last != bt.Last ||
			at.TryCInv != bt.TryCInv || at.TryCRes != bt.TryCRes {
			return fmt.Errorf("T%v positions: (%d,%d,%d,%d) vs (%d,%d,%d,%d)", a.TxnIDs[i],
				at.First, at.Last, at.TryCInv, at.TryCRes, bt.First, bt.Last, bt.TryCInv, bt.TryCRes)
		}
		if at.Committed != bt.Committed || at.CommitPending != bt.CommitPending ||
			at.TComplete != bt.TComplete || at.Complete != bt.Complete {
			return fmt.Errorf("T%v flags differ", a.TxnIDs[i])
		}
	}
	if len(a.RTPred) != len(b.RTPred) {
		return fmt.Errorf("RTPred rows: %d vs %d", len(a.RTPred), len(b.RTPred))
	}
	for i := range a.RTPred {
		if !a.RTPred[i].Equal(b.RTPred[i]) {
			return fmt.Errorf("RTPred[%d]: %x vs %x", i, a.RTPred[i], b.RTPred[i])
		}
	}
	if len(a.Writers) != len(b.Writers) {
		return fmt.Errorf("Writers rows: %d vs %d", len(a.Writers), len(b.Writers))
	}
	for o := range a.Writers {
		if !a.Writers[o].Equal(b.Writers[o]) {
			return fmt.Errorf("Writers[%d]: %x vs %x", o, a.Writers[o], b.Writers[o])
		}
	}
	if !a.TComplete.Equal(b.TComplete) {
		return fmt.Errorf("TComplete: %x vs %x", a.TComplete, b.TComplete)
	}
	return nil
}

// equalHistories compares events and per-transaction views.
func equalHistories(a, b *History) error {
	if a.Len() != b.Len() {
		return fmt.Errorf("len: %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		if a.At(i) != b.At(i) {
			return fmt.Errorf("event %d: %v vs %v", i, a.At(i), b.At(i))
		}
	}
	if len(a.ids) != len(b.ids) {
		return fmt.Errorf("ids: %v vs %v", a.ids, b.ids)
	}
	for i := range a.ids {
		if a.ids[i] != b.ids[i] {
			return fmt.Errorf("ids[%d]: %v vs %v", i, a.ids[i], b.ids[i])
		}
		ta, tb := a.txns[a.ids[i]], b.txns[b.ids[i]]
		if ta.First != tb.First || ta.Last != tb.Last ||
			ta.TryCInv != tb.TryCInv || ta.TryCRes != tb.TryCRes {
			return fmt.Errorf("T%v positions differ", a.ids[i])
		}
		if len(ta.Ops) != len(tb.Ops) {
			return fmt.Errorf("T%v ops: %d vs %d", a.ids[i], len(ta.Ops), len(tb.Ops))
		}
		for j := range ta.Ops {
			if ta.Ops[j] != tb.Ops[j] {
				return fmt.Errorf("T%v op %d: %+v vs %+v", a.ids[i], j, ta.Ops[j], tb.Ops[j])
			}
		}
	}
	return nil
}

// checkStreamAgainstBatch verifies that the stream's live view and
// snapshot both match the batch constructions for the same events.
func checkStreamAgainstBatch(s *Stream) error {
	batch, err := FromEvents(s.Events())
	if err != nil {
		return fmt.Errorf("accepted events rejected by FromEvents: %w", err)
	}
	if err := equalHistories(s.Live(), batch); err != nil {
		return fmt.Errorf("live view: %w", err)
	}
	snap := s.History()
	if err := equalHistories(snap, batch); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	// The incremental index against the one-shot batch builder.
	if err := equalIndexes(s.Live().Index(), buildIndex(batch)); err != nil {
		return fmt.Errorf("live index: %w", err)
	}
	if err := equalIndexes(snap.Index(), buildIndex(batch)); err != nil {
		return fmt.Errorf("snapshot index: %w", err)
	}
	return nil
}

// TestStreamMatchesBatchPrefixes pins the tentpole invariant: feeding a
// history event by event produces, at every prefix, exactly the history
// and index the batch path builds.
func TestStreamMatchesBatchPrefixes(t *testing.T) {
	prop := func(rh randHistory) bool {
		s := NewStream()
		for i, e := range rh.H.Events() {
			if err := s.Append(e); err != nil {
				t.Logf("append %d (%v): %v", i, e, err)
				return false
			}
			if err := checkStreamAgainstBatch(s); err != nil {
				t.Logf("after event %d (%v): %v", i, e, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// invalidCandidates returns events the stream must reject in its current
// state (mirrored against FromEvents to make sure they are indeed
// invalid).
func invalidCandidates(evs []Event, r *rand.Rand) []Event {
	cands := []Event{
		{Kind: Inv, Op: OpRead, Txn: InitTxn, Obj: "X"},               // reserved id
		{Kind: Res, Op: OpRead, Txn: TxnID(90 + r.Intn(5)), Obj: "X"}, // orphan response
		{Kind: Res, Op: OpTryCommit, Txn: TxnID(1 + r.Intn(6)), Out: OutCommit},
		{Kind: Inv, Op: OpWrite, Txn: TxnID(1 + r.Intn(6)), Obj: "Y", Arg: 3},
		{Kind: Res, Op: OpRead, Txn: TxnID(1 + r.Intn(6)), Obj: "Z", Out: OutOK, Val: 1},
	}
	var out []Event
	for _, e := range cands {
		if _, err := FromEvents(append(append([]Event(nil), evs...), e)); err != nil {
			out = append(out, e)
		}
	}
	return out
}

// TestStreamRejectionLeavesStateUntouched interleaves invalid events into
// valid streams and verifies rejection is side-effect-free: the stream
// state after a rejected append is indistinguishable from never having
// offered the event, and subsequent valid appends behave identically.
func TestStreamRejectionLeavesStateUntouched(t *testing.T) {
	prop := func(rh randHistory, seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := NewStream()
		var accepted []Event
		for _, e := range rh.H.Events() {
			// Offer a few invalid events first; each must be rejected
			// without moving any state.
			for _, bad := range invalidCandidates(accepted, r) {
				if err := s.Append(bad); err == nil {
					t.Logf("invalid event %v accepted", bad)
					return false
				}
				if s.Len() != len(accepted) {
					t.Logf("rejected append changed Len")
					return false
				}
			}
			if err := checkStreamAgainstBatch(s); err != nil {
				t.Logf("state after rejections: %v", err)
				return false
			}
			if err := s.Append(e); err != nil {
				t.Logf("valid append %v failed: %v", e, err)
				return false
			}
			accepted = append(accepted, e)
		}
		return checkStreamAgainstBatch(s) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestStreamSnapshotImmutable pins that a snapshot taken mid-stream is
// unaffected by later appends — including the completion of an operation
// that was pending at snapshot time (the in-place mutation case).
func TestStreamSnapshotImmutable(t *testing.T) {
	s := NewStream()
	feed := []Event{
		{Kind: Inv, Op: OpWrite, Txn: 1, Obj: "X", Arg: 7},
		{Kind: Res, Op: OpWrite, Txn: 1, Obj: "X", Arg: 7, Out: OutOK},
		{Kind: Inv, Op: OpTryCommit, Txn: 1}, // pending at snapshot time
	}
	for _, e := range feed {
		if err := s.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	snap := s.History()
	wantLen := snap.Len()
	rest := []Event{
		{Kind: Res, Op: OpTryCommit, Txn: 1, Out: OutCommit}, // completes the pending op in place
		{Kind: Inv, Op: OpRead, Txn: 2, Obj: "X"},
		{Kind: Res, Op: OpRead, Txn: 2, Obj: "X", Out: OutOK, Val: 7},
	}
	for _, e := range rest {
		if err := s.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if snap.Len() != wantLen {
		t.Fatalf("snapshot grew: %d -> %d", wantLen, snap.Len())
	}
	op, pending := snap.Txn(1).PendingOp()
	if !pending || op.Kind != OpTryCommit {
		t.Fatalf("snapshot's pending tryC was completed in place: %+v pending=%v", op, pending)
	}
	if snap.Txn(2) != nil {
		t.Fatal("snapshot sees a transaction that appeared later")
	}
	// The snapshot still validates and indexes as the batch path would.
	batch := MustFromEvents(feed)
	if err := equalHistories(snap, batch); err != nil {
		t.Fatal(err)
	}
	if err := equalIndexes(snap.Index(), batch.Index()); err != nil {
		t.Fatal(err)
	}
}

// TestStreamManyTxnsKeepsMasks crosses the old 64-transaction mask
// ceiling — and the first two-word boundary at 128 — and checks the
// bitset views stay populated and agree with the batch builder at every
// boundary. (This inverts the pre-bitset TestStreamManyTxnsDropsMasks,
// which asserted that both index builders silently dropped their masks
// past 64 transactions; the single-word masks and their MasksValid
// degradation path are gone.)
func TestStreamManyTxnsKeepsMasks(t *testing.T) {
	s := NewStream()
	for k := 1; k <= 132; k++ {
		id := TxnID(k)
		evs := []Event{
			{Kind: Inv, Op: OpWrite, Txn: id, Obj: "X", Arg: Value(k)},
			{Kind: Res, Op: OpWrite, Txn: id, Obj: "X", Arg: Value(k), Out: OutOK},
			{Kind: Inv, Op: OpTryCommit, Txn: id},
			{Kind: Res, Op: OpTryCommit, Txn: id, Out: OutCommit},
		}
		for _, e := range evs {
			if err := s.Append(e); err != nil {
				t.Fatal(err)
			}
		}
		ix := s.Live().Index()
		if got := len(ix.RTPred); got != k {
			t.Fatalf("k=%d: RTPred has %d rows", k, got)
		}
		if got := ix.TComplete.OnesCount(); got != k {
			t.Fatalf("k=%d: TComplete has %d members", k, got)
		}
		switch k {
		case 63, 64, 65, 127, 128, 129:
			// The word boundaries: full parity with the batch builder.
			if err := checkStreamAgainstBatch(s); err != nil {
				t.Fatalf("k=%d: %v", k, err)
			}
			// Transaction k-1 (dense index k-1) is real-time preceded by all
			// k-1 earlier transactions.
			if got := ix.RTPred[k-1].OnesCount(); got != k-1 {
				t.Fatalf("k=%d: RTPred[%d] has %d members, want %d", k, k-1, got, k-1)
			}
		}
	}
	if err := checkStreamAgainstBatch(s); err != nil {
		t.Fatal(err)
	}
}
