package history

import "fmt"

// Builder constructs histories event by event, validating well-formedness
// incrementally. The op-level helpers (Read, Write, Commit, ...) emit an
// invocation immediately followed by its response — the common case in
// litmus histories — while the Inv*/Res* pairs place the two events at
// arbitrary distance to express concurrency.
//
// Builder methods panic on malformed sequences: a malformed fixture is a
// programming error, not an input error. Use FromEvents (or a Stream) for
// untrusted input.
//
// Builder is a thin wrapper over the streaming ingestion core (Stream),
// so fixtures are validated and indexed exactly as streamed input.
type Builder struct {
	s *Stream
}

// NewBuilder returns an empty Builder. Like the other batch wrappers it
// skips live index maintenance: the histories it finalizes build their
// index lazily on first use.
func NewBuilder() *Builder {
	return &Builder{s: newStreamOver(&History{})}
}

func (b *Builder) push(e Event) *Builder {
	if err := b.s.Append(e); err != nil {
		panic(fmt.Sprintf("history: builder: %v", err))
	}
	return b
}

// InvRead emits the invocation of read_k(X).
func (b *Builder) InvRead(k TxnID, x Var) *Builder {
	return b.push(Event{Kind: Inv, Op: OpRead, Txn: k, Obj: x})
}

// ResRead emits the response of read_k(X) returning v.
func (b *Builder) ResRead(k TxnID, x Var, v Value) *Builder {
	return b.push(Event{Kind: Res, Op: OpRead, Txn: k, Obj: x, Val: v, Out: OutOK})
}

// ResReadAbort emits the response of read_k(X) returning A_k.
func (b *Builder) ResReadAbort(k TxnID, x Var) *Builder {
	return b.push(Event{Kind: Res, Op: OpRead, Txn: k, Obj: x, Out: OutAbort})
}

// InvWrite emits the invocation of write_k(X, v).
func (b *Builder) InvWrite(k TxnID, x Var, v Value) *Builder {
	return b.push(Event{Kind: Inv, Op: OpWrite, Txn: k, Obj: x, Arg: v})
}

// ResWrite emits the ok response of write_k(X, v).
func (b *Builder) ResWrite(k TxnID, x Var, v Value) *Builder {
	return b.push(Event{Kind: Res, Op: OpWrite, Txn: k, Obj: x, Arg: v, Out: OutOK})
}

// ResWriteAbort emits the A_k response of write_k(X, v).
func (b *Builder) ResWriteAbort(k TxnID, x Var, v Value) *Builder {
	return b.push(Event{Kind: Res, Op: OpWrite, Txn: k, Obj: x, Arg: v, Out: OutAbort})
}

// InvTryCommit emits the invocation of tryC_k().
func (b *Builder) InvTryCommit(k TxnID) *Builder {
	return b.push(Event{Kind: Inv, Op: OpTryCommit, Txn: k})
}

// ResCommit emits the C_k response of tryC_k().
func (b *Builder) ResCommit(k TxnID) *Builder {
	return b.push(Event{Kind: Res, Op: OpTryCommit, Txn: k, Out: OutCommit})
}

// ResCommitAbort emits the A_k response of tryC_k().
func (b *Builder) ResCommitAbort(k TxnID) *Builder {
	return b.push(Event{Kind: Res, Op: OpTryCommit, Txn: k, Out: OutAbort})
}

// InvTryAbort emits the invocation of tryA_k().
func (b *Builder) InvTryAbort(k TxnID) *Builder {
	return b.push(Event{Kind: Inv, Op: OpTryAbort, Txn: k})
}

// ResAbort emits the A_k response of tryA_k().
func (b *Builder) ResAbort(k TxnID) *Builder {
	return b.push(Event{Kind: Res, Op: OpTryAbort, Txn: k, Out: OutAbort})
}

// Read emits read_k(X) -> v as an adjacent invocation/response pair.
func (b *Builder) Read(k TxnID, x Var, v Value) *Builder {
	return b.InvRead(k, x).ResRead(k, x, v)
}

// Write emits write_k(X, v) -> ok as an adjacent pair.
func (b *Builder) Write(k TxnID, x Var, v Value) *Builder {
	return b.InvWrite(k, x, v).ResWrite(k, x, v)
}

// Commit emits tryC_k() -> C_k as an adjacent pair.
func (b *Builder) Commit(k TxnID) *Builder {
	return b.InvTryCommit(k).ResCommit(k)
}

// CommitAbort emits tryC_k() -> A_k as an adjacent pair.
func (b *Builder) CommitAbort(k TxnID) *Builder {
	return b.InvTryCommit(k).ResCommitAbort(k)
}

// Abort emits tryA_k() -> A_k as an adjacent pair.
func (b *Builder) Abort(k TxnID) *Builder {
	return b.InvTryAbort(k).ResAbort(k)
}

// Len returns the number of events emitted so far.
func (b *Builder) Len() int { return b.s.Len() }

// History finalizes the builder into an immutable History. The builder may
// continue to be used afterwards; later events do not affect the returned
// history.
func (b *Builder) History() *History {
	return b.s.History()
}
