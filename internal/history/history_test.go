package history

import (
	"strings"
	"testing"
)

// twoTxnOverlap builds W1(X,1)·C1 overlapping R2(X)->1·C2.
func twoTxnOverlap() *History {
	return NewBuilder().
		InvWrite(1, "X", 1).
		InvRead(2, "X").
		ResWrite(1, "X", 1).
		Commit(1).
		ResRead(2, "X", 1).
		Commit(2).
		History()
}

func TestFromEventsValid(t *testing.T) {
	h := twoTxnOverlap()
	if h.Len() != 8 {
		t.Fatalf("Len = %d, want 8", h.Len())
	}
	if got := h.NumTxns(); got != 2 {
		t.Fatalf("NumTxns = %d, want 2", got)
	}
	if ids := h.Txns(); ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("Txns = %v, want [1 2]", ids)
	}
}

func TestFromEventsRejectsMalformed(t *testing.T) {
	inv := func(k TxnID, op OpKind, obj Var, arg Value) Event {
		return Event{Kind: Inv, Op: op, Txn: k, Obj: obj, Arg: arg}
	}
	res := func(k TxnID, op OpKind, obj Var, arg, val Value, out Outcome) Event {
		return Event{Kind: Res, Op: op, Txn: k, Obj: obj, Arg: arg, Val: val, Out: out}
	}
	tests := []struct {
		name string
		evs  []Event
		want string
	}{
		{
			name: "response without invocation",
			evs:  []Event{res(1, OpRead, "X", 0, 0, OutOK)},
			want: "response without matching pending invocation",
		},
		{
			name: "two pending invocations",
			evs:  []Event{inv(1, OpRead, "X", 0), inv(1, OpWrite, "Y", 1)},
			want: "invocation while another operation is pending",
		},
		{
			name: "mismatched response object",
			evs:  []Event{inv(1, OpRead, "X", 0), res(1, OpRead, "Y", 0, 0, OutOK)},
			want: "does not match pending",
		},
		{
			name: "event after commit",
			evs: []Event{
				inv(1, OpTryCommit, "", 0), res(1, OpTryCommit, "", 0, 0, OutCommit),
				inv(1, OpRead, "X", 0),
			},
			want: "after transaction is t-complete",
		},
		{
			name: "event after abort",
			evs: []Event{
				inv(1, OpRead, "X", 0), res(1, OpRead, "X", 0, 0, OutAbort),
				inv(1, OpRead, "Y", 0),
			},
			want: "after transaction is t-complete",
		},
		{
			name: "operation after tryC invocation",
			evs: []Event{
				inv(1, OpTryCommit, "", 0), res(1, OpTryCommit, "", 0, 0, OutCommit),
			},
			want: "", // valid; control case
		},
		{
			name: "write response with wrong argument",
			evs:  []Event{inv(1, OpWrite, "X", 1), res(1, OpWrite, "X", 2, 0, OutOK)},
			want: "does not match pending",
		},
		{
			name: "tryA returning commit",
			evs:  []Event{inv(1, OpTryAbort, "", 0), res(1, OpTryAbort, "", 0, 0, OutCommit)},
			want: "does not match pending",
		},
		{
			name: "tryC returning ok",
			evs:  []Event{inv(1, OpTryCommit, "", 0), res(1, OpTryCommit, "", 0, 0, OutOK)},
			want: "does not match pending",
		},
		{
			name: "reserved transaction id",
			evs:  []Event{inv(0, OpRead, "X", 0)},
			want: "reserved",
		},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			_, err := FromEvents(tc.evs)
			if tc.want == "" {
				if err != nil {
					t.Fatalf("FromEvents: unexpected error %v", err)
				}
				return
			}
			if err == nil {
				t.Fatalf("FromEvents: want error containing %q, got nil", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("FromEvents: error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestTxnClassification(t *testing.T) {
	b := NewBuilder()
	b.Write(1, "X", 1).Commit(1)                   // committed
	b.Read(2, "X", 1).Abort(2)                     // aborted via tryA
	b.Read(3, "X", 1).InvTryCommit(3)              // commit-pending
	b.InvRead(4, "X")                              // pending read
	b.Read(5, "X", 1)                              // complete, not t-complete
	b.InvWrite(6, "Y", 2).ResWriteAbort(6, "Y", 2) // aborted by the write
	h := b.History()

	tests := []struct {
		k                                                TxnID
		complete, tcomplete, committed, aborted, pending bool
	}{
		{1, true, true, true, false, false},
		{2, true, true, false, true, false},
		{3, false, false, false, false, true},
		{4, false, false, false, false, false},
		{5, true, false, false, false, false},
		{6, true, true, false, true, false},
	}
	for _, tc := range tests {
		tx := h.Txn(tc.k)
		if tx == nil {
			t.Fatalf("T%d missing", tc.k)
		}
		if got := tx.Complete(); got != tc.complete {
			t.Errorf("T%d.Complete = %v, want %v", tc.k, got, tc.complete)
		}
		if got := tx.TComplete(); got != tc.tcomplete {
			t.Errorf("T%d.TComplete = %v, want %v", tc.k, got, tc.tcomplete)
		}
		if got := tx.Committed(); got != tc.committed {
			t.Errorf("T%d.Committed = %v, want %v", tc.k, got, tc.committed)
		}
		if got := tx.Aborted(); got != tc.aborted {
			t.Errorf("T%d.Aborted = %v, want %v", tc.k, got, tc.aborted)
		}
		if got := tx.CommitPending(); got != tc.pending {
			t.Errorf("T%d.CommitPending = %v, want %v", tc.k, got, tc.pending)
		}
	}
	if h.Complete() {
		t.Error("history with pending reads reported complete")
	}
	if h.TComplete() {
		t.Error("history with live transactions reported t-complete")
	}
}

func TestCommitPendingTxns(t *testing.T) {
	b := NewBuilder()
	b.Write(1, "X", 1).InvTryCommit(1)
	b.Write(2, "X", 2).Commit(2)
	b.Read(3, "X", 2).InvTryCommit(3)
	h := b.History()
	got := h.CommitPendingTxns()
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("CommitPendingTxns = %v, want [1 3]", got)
	}
}

func TestRealTimeOrder(t *testing.T) {
	// T1 fully precedes T2; T3 overlaps both.
	b := NewBuilder()
	b.InvRead(3, "Z")
	b.Write(1, "X", 1).Commit(1)
	b.Write(2, "X", 2).Commit(2)
	b.ResRead(3, "Z", 0)
	h := b.History()

	if !h.RealTimePrecedes(1, 2) {
		t.Error("want T1 ≺RT T2")
	}
	if h.RealTimePrecedes(2, 1) {
		t.Error("T2 ≺RT T1 should not hold")
	}
	for _, k := range []TxnID{1, 2} {
		if h.RealTimePrecedes(3, k) || h.RealTimePrecedes(k, 3) {
			t.Errorf("T3 and T%d should overlap", k)
		}
		if !h.Overlap(3, k) {
			t.Errorf("Overlap(3,%d) = false", k)
		}
	}
	if h.Overlap(1, 2) {
		t.Error("Overlap(1,2) = true, want false")
	}
	preds := h.RealTimePredecessors()
	if len(preds[2]) != 1 || preds[2][0] != 1 {
		t.Errorf("preds[2] = %v, want [1]", preds[2])
	}
	if len(preds[1]) != 0 || len(preds[3]) != 0 {
		t.Errorf("preds[1] = %v, preds[3] = %v, want empty", preds[1], preds[3])
	}
}

func TestRealTimeRequiresTComplete(t *testing.T) {
	// T1 is complete but not t-complete; even though its span precedes T2's,
	// the paper's ≺RT requires t-completeness.
	b := NewBuilder()
	b.Write(1, "X", 1)
	b.Write(2, "Y", 2).Commit(2)
	h := b.History()
	if h.RealTimePrecedes(1, 2) {
		t.Error("T1 is not t-complete: T1 ≺RT T2 must not hold")
	}
	if !h.Overlap(1, 2) {
		t.Error("T1 and T2 should overlap")
	}
}

func TestLiveSetAndSucceeds(t *testing.T) {
	// T1 [0..3], T2 [2..7], T3 [8..11]: Lset(T1) = {T1, T2};
	// T3 succeeds the live set of T1.
	b := NewBuilder()
	b.InvWrite(1, "X", 1)
	b.ResWrite(1, "X", 1)
	b.InvWrite(2, "Y", 2)
	b.Commit(1)
	b.ResWrite(2, "Y", 2)
	b.Commit(2)
	b.Write(3, "Z", 3).Commit(3)
	h := b.History()

	live := h.LiveSet(1)
	if len(live) != 2 || live[0] != 1 || live[1] != 2 {
		t.Fatalf("LiveSet(1) = %v, want [1 2]", live)
	}
	if !h.SucceedsLiveSet(1, 3) {
		t.Error("T1 ≺LS T3 should hold")
	}
	if h.SucceedsLiveSet(1, 2) {
		t.Error("T1 ≺LS T2 must not hold (T2 is in Lset(T1))")
	}
	if h.SucceedsLiveSet(2, 3) != true {
		t.Error("T2 ≺LS T3 should hold")
	}
}

func TestPrefix(t *testing.T) {
	h := twoTxnOverlap()
	p := h.Prefix(3) // inv W1, inv R2, res W1
	if p.Len() != 3 {
		t.Fatalf("prefix Len = %d, want 3", p.Len())
	}
	if p.Txn(1).Complete() != true {
		t.Error("T1 should be complete in prefix")
	}
	if _, ok := p.Txn(2).PendingOp(); !ok {
		t.Error("T2 should have a pending read in prefix")
	}
	if p.Txn(1).TComplete() {
		t.Error("T1 should not be t-complete in prefix")
	}
	// Prefix of length 0 and full length are valid.
	if h.Prefix(0).Len() != 0 || h.Prefix(h.Len()).Len() != h.Len() {
		t.Error("boundary prefixes wrong")
	}
}

func TestPrefixOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Prefix(-1) did not panic")
		}
	}()
	twoTxnOverlap().Prefix(-1)
}

func TestEquivalent(t *testing.T) {
	h := twoTxnOverlap()
	// Same per-transaction sequences, different interleaving.
	g := NewBuilder().
		InvRead(2, "X").
		InvWrite(1, "X", 1).
		ResWrite(1, "X", 1).
		Commit(1).
		ResRead(2, "X", 1).
		Commit(2).
		History()
	if !h.Equivalent(g) {
		t.Error("equivalent histories reported different")
	}
	// Different read value.
	g2 := NewBuilder().
		InvWrite(1, "X", 1).
		InvRead(2, "X").
		ResWrite(1, "X", 1).
		Commit(1).
		ResRead(2, "X", 0).
		Commit(2).
		History()
	if h.Equivalent(g2) {
		t.Error("histories with different read values reported equivalent")
	}
	// Missing transaction.
	g3 := NewBuilder().Write(1, "X", 1).Commit(1).History()
	if h.Equivalent(g3) {
		t.Error("histories with different txns reported equivalent")
	}
}

func TestReadWriteSets(t *testing.T) {
	b := NewBuilder()
	b.Read(1, "X", 0).Write(1, "Y", 1).Write(1, "Y", 2).Write(1, "Z", 3)
	b.InvRead(1, "W") // pending read does not count
	h := b.History()
	tx := h.Txn(1)
	rs := tx.ReadSet()
	if len(rs) != 1 || !rs["X"] {
		t.Errorf("ReadSet = %v, want {X}", rs)
	}
	ws := tx.WriteSet()
	if len(ws) != 2 || !ws["Y"] || !ws["Z"] {
		t.Errorf("WriteSet = %v, want {Y Z}", ws)
	}
	lw := tx.LastWrites()
	if lw["Y"] != 2 || lw["Z"] != 3 {
		t.Errorf("LastWrites = %v, want Y:2 Z:3", lw)
	}
}

func TestTSequential(t *testing.T) {
	serial := NewBuilder().
		Write(1, "X", 1).Commit(1).
		Read(2, "X", 1).Commit(2).
		History()
	if !serial.TSequential() {
		t.Error("serial history reported non-t-sequential")
	}
	if twoTxnOverlap().TSequential() {
		t.Error("overlapping history reported t-sequential")
	}
}

func TestVars(t *testing.T) {
	b := NewBuilder()
	b.Write(1, "B", 1).Read(1, "A", 0).Commit(1)
	h := b.History()
	vs := h.Vars()
	if len(vs) != 2 || vs[0] != "A" || vs[1] != "B" {
		t.Fatalf("Vars = %v, want [A B]", vs)
	}
}

func TestEventString(t *testing.T) {
	tests := []struct {
		e    Event
		want string
	}{
		{Event{Kind: Inv, Op: OpRead, Txn: 2, Obj: "X"}, "inv read_2(X)"},
		{Event{Kind: Res, Op: OpRead, Txn: 2, Obj: "X", Val: 1, Out: OutOK}, "res read_2(X)->1"},
		{Event{Kind: Res, Op: OpRead, Txn: 2, Obj: "X", Out: OutAbort}, "res read_2(X)->A"},
		{Event{Kind: Inv, Op: OpWrite, Txn: 1, Obj: "Y", Arg: 7}, "inv write_1(Y,7)"},
		{Event{Kind: Res, Op: OpWrite, Txn: 1, Obj: "Y", Arg: 7, Out: OutOK}, "res write_1(Y,7)->ok"},
		{Event{Kind: Inv, Op: OpTryCommit, Txn: 3}, "inv tryC_3"},
		{Event{Kind: Res, Op: OpTryCommit, Txn: 3, Out: OutCommit}, "res tryC_3->C"},
		{Event{Kind: Res, Op: OpTryAbort, Txn: 3, Out: OutAbort}, "res tryA_3->A"},
	}
	for _, tc := range tests {
		if got := tc.e.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

func TestHistoryStringContainsEvents(t *testing.T) {
	s := twoTxnOverlap().String()
	for _, want := range []string{"inv write_1(X,1)", "res read_2(X)->1", "res tryC_2->C"} {
		if !strings.Contains(s, want) {
			t.Errorf("History.String() missing %q:\n%s", want, s)
		}
	}
}

func TestTryCIndexes(t *testing.T) {
	b := NewBuilder()
	b.Write(1, "X", 1)
	b.InvTryCommit(1)
	b.InvRead(2, "X")
	b.ResRead(2, "X", 1)
	b.ResCommit(1)
	h := b.History()
	t1 := h.Txn(1)
	if t1.TryCInv != 2 {
		t.Errorf("TryCInv = %d, want 2", t1.TryCInv)
	}
	if t1.TryCRes != 5 {
		t.Errorf("TryCRes = %d, want 5", t1.TryCRes)
	}
	t2 := h.Txn(2)
	if t2.TryCInv != -1 || t2.TryCRes != -1 {
		t.Errorf("T2 tryC indexes = %d,%d, want -1,-1", t2.TryCInv, t2.TryCRes)
	}
}
