package history_test

import (
	"testing"

	"duopacity/internal/history"
	"duopacity/internal/spec"
)

// decodeEvent maps three fuzz bytes to an event. The encoding deliberately
// reaches invalid events (reserved transaction id, orphan or mismatched
// responses, events after t-completion) so the differential covers the
// error paths, not just the happy path.
func decodeEvent(b0, b1, b2 byte) history.Event {
	e := history.Event{
		Op: history.OpKind(b0%4 + 1),
		// 144 ids: 0 hits the reserved-id rejection, and the range is wide
		// enough for mutated inputs to grow histories past 64 and 128
		// transactions — the one- and two-word bitset boundaries the index
		// and the checker must cross without degrading.
		Txn: history.TxnID(b1 % 144),
	}
	if b0&4 == 0 {
		e.Kind = history.Inv
	} else {
		e.Kind = history.Res
		e.Out = history.Outcome((b0>>3)%3 + 1)
	}
	switch e.Op {
	case history.OpRead:
		e.Obj = history.Var("XYZ"[b2%3 : b2%3+1])
		if e.Kind == history.Res && e.Out == history.OutOK {
			e.Val = history.Value(b2 >> 2 & 3)
		}
	case history.OpWrite:
		e.Obj = history.Var("XYZ"[b2%3 : b2%3+1])
		e.Arg = history.Value(b2 >> 2 & 3)
	}
	return e
}

// FuzzStreamDifferential pins the streaming ingestion core against the
// batch path: every event offered to a Stream must be accepted or
// rejected exactly as FromEvents would decide for the accepted prefix
// plus that event, rejection must leave the stream untouched, and at the
// end the stream's history, its incrementally maintained index and the
// du-opacity verdict must equal the batch constructions — the same pin
// the checker rewrite's FuzzCheckerDifferential provides for the search
// engine. The sel byte additionally draws a monitorable criterion (and
// a retirement window, and the TMS2 aborted-reader exemption): the
// accepted events are replayed through a spec.Monitor, and whenever the
// monitor latches a violation the batch checker must reject that exact
// response prefix; if it never latches, the final verdicts must agree
// at the last response prefix.
func FuzzStreamDifferential(f *testing.F) {
	f.Add([]byte{}, byte(0))
	// write_1(X,1) ok, tryC_1 C, read_2(X)->1, tryC_2 C.
	f.Add([]byte{
		1, 1, 4, 5, 1, 4, 2, 1, 0, 6, 1, 0,
		0, 2, 4, 4, 2, 4, 2, 2, 0, 6, 2, 0,
	}, byte(1)) // replayed under the TMS2 monitor
	// Invalid attempts mixed in: orphan response, reserved id.
	f.Add([]byte{4, 3, 0, 0, 0, 0, 1, 1, 4}, byte(0))
	// Figure 6's shape in the stream alphabet — the du-opaque history
	// TMS2 rejects and RCO accepts — seeded once per criterion it
	// separates: r1(X)->0, w1(X,1), r2(X)->0, C1, w2(Y,1), C2.
	fig6 := []byte{
		0, 1, 0, 4, 1, 0, // read_1(X) -> 0
		1, 1, 6, 5, 1, 6, // write_1(X, 1)
		0, 2, 0, 4, 2, 0, // read_2(X) -> 0
		2, 1, 0, 14, 1, 0, // tryC_1 -> C
		1, 2, 4, 5, 2, 4, // write_2(Y, 1)
		2, 2, 0, 14, 2, 0, // tryC_2 -> C
	}
	f.Add(fig6, byte(1)) // TMS2 latches
	f.Add(fig6, byte(2)) // RCO stays OK
	// 130 sequential committed writers: a seed that crosses both bitset
	// word boundaries (64 and 128 transactions), so the corpus routinely
	// mutates around them. Encoding per decodeEvent: write inv {1,k,b2},
	// write ok res {5,k,b2}, tryC inv {2,k,0}, commit res {14,k,0}.
	long := make([]byte, 0, 130*12)
	for k := 1; k <= 130; k++ {
		b2 := byte(k%4<<2) | byte(k%3)
		long = append(long, 1, byte(k), b2, 5, byte(k), b2, 2, byte(k), 0, 14, byte(k), 0)
	}
	f.Add(long, byte(0x22)) // RCO with a retirement window
	f.Fuzz(func(t *testing.T, data []byte, sel byte) {
		const maxEvents = 600
		s := history.NewStream()
		var accepted []history.Event
		for i := 0; i+3 <= len(data) && i/3 < maxEvents; i += 3 {
			e := decodeEvent(data[i], data[i+1], data[i+2])
			_, batchErr := history.FromEvents(append(append([]history.Event(nil), accepted...), e))
			streamErr := s.Append(e)
			if (batchErr == nil) != (streamErr == nil) {
				t.Fatalf("event %v: stream err %v, batch err %v", e, streamErr, batchErr)
			}
			if streamErr != nil {
				if s.Len() != len(accepted) {
					t.Fatalf("rejected event %v moved the stream: len %d, want %d", e, s.Len(), len(accepted))
				}
				continue
			}
			accepted = append(accepted, e)
		}
		batch, err := history.FromEvents(accepted)
		if err != nil {
			t.Fatalf("accepted events rejected by batch path: %v", err)
		}
		if err := history.EqualHistoriesForTest(s.Live(), batch); err != nil {
			t.Fatalf("live history diverges from batch: %v", err)
		}
		snap := s.History()
		if err := history.EqualHistoriesForTest(snap, batch); err != nil {
			t.Fatalf("snapshot diverges from batch: %v", err)
		}
		ref := history.BuildIndexForTest(batch)
		if err := history.EqualIndexesForTest(s.Live().Index(), ref); err != nil {
			t.Fatalf("incremental index diverges from batch: %v", err)
		}
		if err := history.EqualIndexesForTest(snap.Index(), ref); err != nil {
			t.Fatalf("snapshot index diverges from batch: %v", err)
		}
		const nodeLimit = 50_000
		vs := spec.CheckDUOpacity(s.Live(), spec.WithNodeLimit(nodeLimit))
		vb := spec.CheckDUOpacity(batch, spec.WithNodeLimit(nodeLimit))
		if vs.OK != vb.OK || vs.Undecided != vb.Undecided || vs.Reason != vb.Reason {
			t.Fatalf("verdicts diverge: stream %v, batch %v", vs, vb)
		}

		// Online monitor differential: replay the accepted events through a
		// spec.Monitor for the criterion (retirement window, exemption)
		// drawn from sel. A latched violation must be confirmed by the
		// batch checker on that exact response prefix; a never-latched run
		// must agree with the batch verdict at the last response prefix
		// (responses are where the monitor's verdict is defined — trailing
		// invocations only add completion choices or record deferred
		// edges). Undecided verdicts on either side skip the comparison.
		const monLimit = 2_000
		mcs := spec.MonitorableCriteria()
		mc := mcs[int(sel&0x0f)%len(mcs)]
		monOpts := []spec.Option{spec.WithNodeLimit(monLimit)}
		batchOpts := []spec.Option{spec.WithNodeLimit(nodeLimit)}
		if window := []int{0, 0, 4, 16}[int(sel>>4)%4]; window > 0 {
			monOpts = append(monOpts, spec.WithRetirement(window))
		}
		if mc == spec.TMS2 && sel&0x80 != 0 {
			monOpts = append(monOpts, spec.WithTMS2AbortedReaderExemption())
			batchOpts = append(batchOpts, spec.WithTMS2AbortedReaderExemption())
		}
		m, err := spec.NewMonitor(mc, monOpts...)
		if err != nil {
			t.Fatalf("NewMonitor(%v): %v", mc, err)
		}
		var mv spec.Verdict
		latchedAt, lastRes := -1, -1
		for i, e := range accepted {
			mv, err = m.Append(e)
			if err != nil {
				t.Fatalf("monitor rejected stream-accepted event %v: %v", e, err)
			}
			if e.Kind == history.Res {
				lastRes = i
			}
			if latchedAt < 0 && !mv.OK && !mv.Undecided {
				latchedAt = i
			}
		}
		if latchedAt >= 0 {
			want := spec.Check(batch.Prefix(latchedAt+1), mc, batchOpts...)
			if want.OK {
				t.Fatalf("%v monitor latched a violation at event %d (%q) but the batch checker accepts that prefix",
					mc, latchedAt, mv.Reason)
			}
		} else if lastRes >= 0 && !mv.Undecided {
			want := spec.Check(batch.Prefix(lastRes+1), mc, batchOpts...)
			if !want.Undecided && mv.OK != want.OK {
				t.Fatalf("%v final verdicts diverge at response prefix %d: monitor OK=%v, batch OK=%v (reason %q)",
					mc, lastRes+1, mv.OK, want.OK, want.Reason)
			}
		}
	})
}
