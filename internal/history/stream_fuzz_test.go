package history_test

import (
	"testing"

	"duopacity/internal/history"
	"duopacity/internal/spec"
)

// decodeEvent maps three fuzz bytes to an event. The encoding deliberately
// reaches invalid events (reserved transaction id, orphan or mismatched
// responses, events after t-completion) so the differential covers the
// error paths, not just the happy path.
func decodeEvent(b0, b1, b2 byte) history.Event {
	e := history.Event{
		Op: history.OpKind(b0%4 + 1),
		// 144 ids: 0 hits the reserved-id rejection, and the range is wide
		// enough for mutated inputs to grow histories past 64 and 128
		// transactions — the one- and two-word bitset boundaries the index
		// and the checker must cross without degrading.
		Txn: history.TxnID(b1 % 144),
	}
	if b0&4 == 0 {
		e.Kind = history.Inv
	} else {
		e.Kind = history.Res
		e.Out = history.Outcome((b0>>3)%3 + 1)
	}
	switch e.Op {
	case history.OpRead:
		e.Obj = history.Var("XYZ"[b2%3 : b2%3+1])
		if e.Kind == history.Res && e.Out == history.OutOK {
			e.Val = history.Value(b2 >> 2 & 3)
		}
	case history.OpWrite:
		e.Obj = history.Var("XYZ"[b2%3 : b2%3+1])
		e.Arg = history.Value(b2 >> 2 & 3)
	}
	return e
}

// FuzzStreamDifferential pins the streaming ingestion core against the
// batch path: every event offered to a Stream must be accepted or
// rejected exactly as FromEvents would decide for the accepted prefix
// plus that event, rejection must leave the stream untouched, and at the
// end the stream's history, its incrementally maintained index and the
// du-opacity verdict must equal the batch constructions — the same pin
// the checker rewrite's FuzzCheckerDifferential provides for the search
// engine.
func FuzzStreamDifferential(f *testing.F) {
	f.Add([]byte{})
	// write_1(X,1) ok, tryC_1 C, read_2(X)->1, tryC_2 C.
	f.Add([]byte{
		1, 1, 4, 5, 1, 4, 2, 1, 0, 6, 1, 0,
		0, 2, 4, 4, 2, 4, 2, 2, 0, 6, 2, 0,
	})
	// Invalid attempts mixed in: orphan response, reserved id.
	f.Add([]byte{4, 3, 0, 0, 0, 0, 1, 1, 4})
	// 130 sequential committed writers: a seed that crosses both bitset
	// word boundaries (64 and 128 transactions), so the corpus routinely
	// mutates around them. Encoding per decodeEvent: write inv {1,k,b2},
	// write ok res {5,k,b2}, tryC inv {2,k,0}, commit res {14,k,0}.
	long := make([]byte, 0, 130*12)
	for k := 1; k <= 130; k++ {
		b2 := byte(k%4<<2) | byte(k%3)
		long = append(long, 1, byte(k), b2, 5, byte(k), b2, 2, byte(k), 0, 14, byte(k), 0)
	}
	f.Add(long)
	f.Fuzz(func(t *testing.T, data []byte) {
		const maxEvents = 600
		s := history.NewStream()
		var accepted []history.Event
		for i := 0; i+3 <= len(data) && i/3 < maxEvents; i += 3 {
			e := decodeEvent(data[i], data[i+1], data[i+2])
			_, batchErr := history.FromEvents(append(append([]history.Event(nil), accepted...), e))
			streamErr := s.Append(e)
			if (batchErr == nil) != (streamErr == nil) {
				t.Fatalf("event %v: stream err %v, batch err %v", e, streamErr, batchErr)
			}
			if streamErr != nil {
				if s.Len() != len(accepted) {
					t.Fatalf("rejected event %v moved the stream: len %d, want %d", e, s.Len(), len(accepted))
				}
				continue
			}
			accepted = append(accepted, e)
		}
		batch, err := history.FromEvents(accepted)
		if err != nil {
			t.Fatalf("accepted events rejected by batch path: %v", err)
		}
		if err := history.EqualHistoriesForTest(s.Live(), batch); err != nil {
			t.Fatalf("live history diverges from batch: %v", err)
		}
		snap := s.History()
		if err := history.EqualHistoriesForTest(snap, batch); err != nil {
			t.Fatalf("snapshot diverges from batch: %v", err)
		}
		ref := history.BuildIndexForTest(batch)
		if err := history.EqualIndexesForTest(s.Live().Index(), ref); err != nil {
			t.Fatalf("incremental index diverges from batch: %v", err)
		}
		if err := history.EqualIndexesForTest(snap.Index(), ref); err != nil {
			t.Fatalf("snapshot index diverges from batch: %v", err)
		}
		const nodeLimit = 50_000
		vs := spec.CheckDUOpacity(s.Live(), spec.WithNodeLimit(nodeLimit))
		vb := spec.CheckDUOpacity(batch, spec.WithNodeLimit(nodeLimit))
		if vs.OK != vb.OK || vs.Undecided != vb.Undecided || vs.Reason != vb.Reason {
			t.Fatalf("verdicts diverge: stream %v, batch %v", vs, vb)
		}
	})
}
