package history

// RealTimePrecedes reports whether T_k ≺RT_H T_m: T_k is t-complete in H and
// the last event of T_k precedes the first event of T_m.
func (h *History) RealTimePrecedes(k, m TxnID) bool {
	tk, tm := h.txns[k], h.txns[m]
	if tk == nil || tm == nil || k == m {
		return false
	}
	return tk.TComplete() && tk.Last < tm.First
}

// Overlap reports whether T_k and T_m overlap in H: neither T_k ≺RT T_m nor
// T_m ≺RT T_k.
func (h *History) Overlap(k, m TxnID) bool {
	return !h.RealTimePrecedes(k, m) && !h.RealTimePrecedes(m, k)
}

// RealTimePredecessors returns, for each transaction, the set of
// transactions that precede it in the real-time order of H. The checkers
// use this as the mandatory ordering constraint of serializations
// (Definition 3, condition 2).
func (h *History) RealTimePredecessors() map[TxnID][]TxnID {
	preds := make(map[TxnID][]TxnID, len(h.ids))
	for _, m := range h.ids {
		var ps []TxnID
		for _, k := range h.ids {
			if h.RealTimePrecedes(k, m) {
				ps = append(ps, k)
			}
		}
		preds[m] = ps
	}
	return preds
}

// spansIntersect reports whether the event spans [aFirst,aLast] and
// [bFirst,bLast] are not disjoint.
func spansIntersect(aFirst, aLast, bFirst, bLast int) bool {
	return !(aLast < bFirst || bLast < aFirst)
}

// LiveSet returns Lset_H(T_k): every transaction T' (including T_k itself)
// such that neither the last event of T' precedes the first event of T_k
// nor the last event of T_k precedes the first event of T' — i.e. the
// transactions whose event spans intersect T_k's span.
func (h *History) LiveSet(k TxnID) []TxnID {
	tk := h.txns[k]
	if tk == nil {
		return nil
	}
	var live []TxnID
	for _, m := range h.ids {
		tm := h.txns[m]
		if spansIntersect(tk.First, tk.Last, tm.First, tm.Last) {
			live = append(live, m)
		}
	}
	return live
}

// SucceedsLiveSet reports whether T_m succeeds the live set of T_k
// (T_k ≺LS_H T_m): every T” in Lset_H(T_k) is complete in H and the last
// event of T” precedes the first event of T_m.
func (h *History) SucceedsLiveSet(k, m TxnID) bool {
	tm := h.txns[m]
	if tm == nil {
		return false
	}
	for _, x := range h.LiveSet(k) {
		tx := h.txns[x]
		if !tx.Complete() || tx.Last >= tm.First {
			return false
		}
	}
	return true
}
