package history

import (
	"fmt"
	"strings"
)

// SeqTxn is one transaction of a t-complete t-sequential history: all its
// operations are complete and the last one carries C_k or A_k.
//
// Synthetic operations introduced by a completion (Definition 2) — the
// tryC·A appended to a transaction that is complete but not t-complete —
// have InvIndex == -1: they do not correspond to events of H, which matters
// for the deferred-update condition (an appended tryC is not an invocation
// of tryC in H).
type SeqTxn struct {
	ID  TxnID
	Ops []Op
}

// Committed reports whether the transaction commits in the sequential
// history.
func (t *SeqTxn) Committed() bool {
	n := len(t.Ops)
	return n > 0 && t.Ops[n-1].Out == OutCommit
}

// LastWrites returns the values the transaction installs if it commits:
// for each object, the argument of its latest successful write.
func (t *SeqTxn) LastWrites() map[Var]Value {
	m := make(map[Var]Value)
	for _, op := range t.Ops {
		if op.Kind == OpWrite && !op.Pending && op.Out == OutOK {
			m[op.Obj] = op.Arg
		}
	}
	return m
}

// Seq is a t-complete t-sequential history: transactions in serialization
// order, each contiguous.
type Seq struct {
	Txns []SeqTxn
}

// Order returns seq(S), the sequence of transaction identifiers.
func (s *Seq) Order() []TxnID {
	ids := make([]TxnID, len(s.Txns))
	for i := range s.Txns {
		ids[i] = s.Txns[i].ID
	}
	return ids
}

// Position returns the index of T_k in seq(S), or -1.
func (s *Seq) Position(k TxnID) int {
	for i := range s.Txns {
		if s.Txns[i].ID == k {
			return i
		}
	}
	return -1
}

// String renders seq(S) with commit status, e.g. "T2+ T3+ T1+ T4-".
func (s *Seq) String() string {
	var b strings.Builder
	for i := range s.Txns {
		if i > 0 {
			b.WriteByte(' ')
		}
		mark := "-"
		if s.Txns[i].Committed() {
			mark = "+"
		}
		fmt.Fprintf(&b, "T%d%s", s.Txns[i].ID, mark)
	}
	return b.String()
}

// IllegalReadError reports the first read that does not return the latest
// written value in a sequential history.
type IllegalReadError struct {
	Txn  TxnID
	Op   Op
	Want Value // the latest written value at that point
}

func (e *IllegalReadError) Error() string {
	return fmt.Sprintf("read_%d(%s) returned %d but the latest written value is %d",
		e.Txn, e.Op.Obj, e.Op.Val, e.Want)
}

// Legal checks that every read that does not return A_k returns the latest
// written value of its object (Section 2): the transaction's own latest
// preceding write if any, otherwise the latest write of the latest
// preceding committed transaction that writes the object, otherwise
// InitValue (written by T_0).
//
// It returns nil if S is legal, and an *IllegalReadError otherwise.
func (s *Seq) Legal() error {
	state := make(map[Var]Value) // committed state; missing key == InitValue
	for i := range s.Txns {
		t := &s.Txns[i]
		local := make(map[Var]Value) // own successful writes so far
		for _, op := range t.Ops {
			switch op.Kind {
			case OpRead:
				if op.Pending || op.Out != OutOK {
					continue
				}
				want, ok := local[op.Obj]
				if !ok {
					want = state[op.Obj]
				}
				if op.Val != want {
					return &IllegalReadError{Txn: t.ID, Op: op, Want: want}
				}
			case OpWrite:
				if !op.Pending && op.Out == OutOK {
					local[op.Obj] = op.Arg
				}
			}
		}
		if t.Committed() {
			for v, val := range local {
				state[v] = val
			}
		}
	}
	return nil
}

// SeqFromHistory builds the t-complete t-sequential history S with
// transactions in the given order, completing each transaction per
// Definition 2:
//
//   - t-complete transactions keep H|k unchanged;
//   - a pending read/write/tryA is completed with A_k;
//   - a pending tryC is completed with C_k if commit[k] is true, A_k
//     otherwise;
//   - a transaction that is complete but not t-complete gets a synthetic
//     tryC·A_k appended (InvIndex == -1, marking that the tryC is not an
//     invocation in H).
//
// The order must contain exactly the transactions of h.
func SeqFromHistory(h *History, order []TxnID, commit map[TxnID]bool) (*Seq, error) {
	if len(order) != h.NumTxns() {
		return nil, fmt.Errorf("history: order has %d transactions, history has %d", len(order), h.NumTxns())
	}
	s := &Seq{Txns: make([]SeqTxn, 0, len(order))}
	seen := make(map[TxnID]bool, len(order))
	for _, k := range order {
		t := h.Txn(k)
		if t == nil {
			return nil, fmt.Errorf("history: transaction T%d not in history", k)
		}
		if seen[k] {
			return nil, fmt.Errorf("history: transaction T%d appears twice in order", k)
		}
		seen[k] = true
		ops := append([]Op(nil), t.Ops...)
		switch {
		case t.TComplete():
			// Keep as is.
		case t.CommitPending():
			last := &ops[len(ops)-1]
			last.Pending = false
			if commit[k] {
				last.Out = OutCommit
			} else {
				last.Out = OutAbort
			}
		case !t.Complete():
			// Pending read, write or tryA: completed with A_k.
			last := &ops[len(ops)-1]
			last.Pending = false
			last.Out = OutAbort
		default:
			// Complete but not t-complete: append synthetic tryC·A_k.
			ops = append(ops, Op{Kind: OpTryCommit, Out: OutAbort, InvIndex: -1, ResIndex: -1})
		}
		s.Txns = append(s.Txns, SeqTxn{ID: k, Ops: ops})
	}
	return s, nil
}

// MatchesCompletionOf verifies that s is equivalent to some completion of h
// (Definition 2): same transactions, and each S|k is H|k with pending
// operations resolved per the completion rules.
func (s *Seq) MatchesCompletionOf(h *History) error {
	if len(s.Txns) != h.NumTxns() {
		return fmt.Errorf("history: serialization has %d transactions, history has %d", len(s.Txns), h.NumTxns())
	}
	for i := range s.Txns {
		st := &s.Txns[i]
		t := h.Txn(st.ID)
		if t == nil {
			return fmt.Errorf("history: serialization transaction T%d not in history", st.ID)
		}
		want := len(t.Ops)
		extra := 0
		if t.Complete() && !t.TComplete() {
			extra = 1
		}
		if len(st.Ops) != want+extra {
			return fmt.Errorf("history: T%d has %d ops in serialization, want %d", st.ID, len(st.Ops), want+extra)
		}
		for j, op := range t.Ops {
			sop := st.Ops[j]
			if sop.Kind != op.Kind || sop.Obj != op.Obj || sop.Arg != op.Arg || sop.Pending {
				return fmt.Errorf("history: T%d op %d mismatch: history %v, serialization %v", st.ID, j, op, sop)
			}
			if !op.Pending {
				if sop.Out != op.Out || (op.Kind == OpRead && op.Out == OutOK && sop.Val != op.Val) {
					return fmt.Errorf("history: T%d op %d outcome mismatch: history %v, serialization %v", st.ID, j, op, sop)
				}
				continue
			}
			// Pending in H: completion rules.
			switch op.Kind {
			case OpTryCommit:
				if sop.Out != OutCommit && sop.Out != OutAbort {
					return fmt.Errorf("history: T%d pending tryC completed with %v", st.ID, sop.Out)
				}
			default:
				if sop.Out != OutAbort {
					return fmt.Errorf("history: T%d pending %v completed with %v, want A", st.ID, op.Kind, sop.Out)
				}
			}
		}
		if extra == 1 {
			sop := st.Ops[want]
			if sop.Kind != OpTryCommit || sop.Out != OutAbort {
				return fmt.Errorf("history: T%d completion suffix is %v, want tryC->A", st.ID, sop)
			}
		}
	}
	return nil
}
