package history

import "math/bits"

// Bits is a multi-word bitset over dense indexes (transactions or
// objects), stored little-endian: bit i lives in word i/64. It replaces
// the single-uint64 masks that capped the index — and with it every exact
// checker and the online monitor — at 64 transactions.
//
// The representation is a plain slice so the hot loops of package spec
// can iterate words directly (`for w := range b { m := b[w] ... }`),
// keeping the one-word case — a history of at most 64 transactions —
// within a few instructions of the old uint64 code path. Sets may be
// ragged: bits beyond len(b)*64 read as zero, and rows of a matrix (the
// index's RTPred and Writers) carry only as many words as their highest
// possible bit requires.
type Bits []uint64

// bitsWords returns the number of words needed for n bits.
func bitsWords(n int) int { return (n + 63) >> 6 }

// MakeBits returns a zeroed bitset with room for n bits.
func MakeBits(n int) Bits { return make(Bits, bitsWords(n)) }

// Test reports whether bit i is set. Bits beyond the slice are zero.
func (b Bits) Test(i int) bool {
	w := i >> 6
	return w < len(b) && b[w]&(1<<uint(i&63)) != 0
}

// Set sets bit i; the receiver must already span it (use SetGrow when it
// may not).
func (b Bits) Set(i int) { b[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i if the receiver spans it.
func (b Bits) Clear(i int) {
	if w := i >> 6; w < len(b) {
		b[w] &^= 1 << uint(i&63)
	}
}

// SetGrow sets bit i, extending the bitset as needed, and returns the
// (possibly reallocated) bitset — the append idiom.
func (b Bits) SetGrow(i int) Bits {
	for w := i >> 6; len(b) <= w; {
		b = append(b, 0)
	}
	b[i>>6] |= 1 << uint(i&63)
	return b
}

// Empty reports whether no bit is set.
func (b Bits) Empty() bool {
	for _, w := range b {
		if w != 0 {
			return false
		}
	}
	return true
}

// OnesCount returns the number of set bits.
func (b Bits) OnesCount() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// SubsetOf reports whether every set bit of b is also set in o (o may be
// shorter or longer; missing words are zero).
func (b Bits) SubsetOf(o Bits) bool {
	for w, bw := range b {
		if bw == 0 {
			continue
		}
		if w >= len(o) || bw&^o[w] != 0 {
			return false
		}
	}
	return true
}

// FirstNotIn returns the lowest bit set in b but not in o, or -1.
func (b Bits) FirstNotIn(o Bits) int {
	for w, bw := range b {
		if w < len(o) {
			bw &^= o[w]
		}
		if bw != 0 {
			return w<<6 + bits.TrailingZeros64(bw)
		}
	}
	return -1
}

// Equal reports semantic equality: the same set bits, ignoring trailing
// zero words.
func (b Bits) Equal(o Bits) bool {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for w := 0; w < n; w++ {
		if b[w] != o[w] {
			return false
		}
	}
	for _, w := range b[n:] {
		if w != 0 {
			return false
		}
	}
	for _, w := range o[n:] {
		if w != 0 {
			return false
		}
	}
	return true
}

// CloneWords returns a copy of b with exactly the given word count,
// truncating or zero-padding as needed.
func (b Bits) CloneWords(words int) Bits {
	if words == 0 {
		return nil
	}
	c := make(Bits, words)
	copy(c, b)
	return c
}

// Range calls f for every set bit in ascending order until f returns
// false.
func (b Bits) Range(f func(i int) bool) {
	for w, bw := range b {
		for ; bw != 0; bw &= bw - 1 {
			if !f(w<<6 + bits.TrailingZeros64(bw)) {
				return
			}
		}
	}
}
