package history

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randHistory is a testing/quick generator of arbitrary well-formed
// histories — including semantically inconsistent ones (random read
// values, random outcomes), since the model-level invariants under test
// must hold for every well-formed history.
type randHistory struct {
	H *History
}

// Generate implements quick.Generator.
func (randHistory) Generate(r *rand.Rand, size int) reflect.Value {
	return reflect.ValueOf(randHistory{H: generateHistory(r, size)})
}

func generateHistory(r *rand.Rand, size int) *History {
	nTxns := 1 + r.Intn(6)
	type state struct {
		pending *Event // pending invocation
		done    bool
	}
	states := make([]state, nTxns+1)
	var evs []Event
	steps := 4 + r.Intn(4*size+8)
	for i := 0; i < steps; i++ {
		k := TxnID(1 + r.Intn(nTxns))
		st := &states[k]
		if st.done {
			continue
		}
		if st.pending != nil {
			// Respond (sometimes leave pending forever).
			if r.Intn(8) == 0 {
				continue
			}
			inv := *st.pending
			res := Event{Kind: Res, Op: inv.Op, Txn: k, Obj: inv.Obj, Arg: inv.Arg}
			switch inv.Op {
			case OpRead:
				if r.Intn(5) == 0 {
					res.Out = OutAbort
					st.done = true
				} else {
					res.Out = OutOK
					res.Val = Value(r.Intn(4))
				}
			case OpWrite:
				if r.Intn(8) == 0 {
					res.Out = OutAbort
					st.done = true
				} else {
					res.Out = OutOK
				}
			case OpTryCommit:
				if r.Intn(2) == 0 {
					res.Out = OutCommit
				} else {
					res.Out = OutAbort
				}
				st.done = true
			case OpTryAbort:
				res.Out = OutAbort
				st.done = true
			}
			st.pending = nil
			evs = append(evs, res)
			continue
		}
		// Invoke something.
		var inv Event
		switch r.Intn(10) {
		case 0:
			inv = Event{Kind: Inv, Op: OpTryCommit, Txn: k}
		case 1:
			inv = Event{Kind: Inv, Op: OpTryAbort, Txn: k}
		case 2, 3, 4, 5:
			inv = Event{Kind: Inv, Op: OpRead, Txn: k, Obj: Var(rune('X' + r.Intn(3)))}
		default:
			inv = Event{Kind: Inv, Op: OpWrite, Txn: k, Obj: Var(rune('X' + r.Intn(3))), Arg: Value(r.Intn(4))}
		}
		st.pending = &inv
		evs = append(evs, inv)
	}
	h, err := FromEvents(evs)
	if err != nil {
		panic("generator produced malformed history: " + err.Error())
	}
	return h
}

var quickCfg = &quick.Config{MaxCount: 300}

func TestQuickEventsRoundTrip(t *testing.T) {
	prop := func(rh randHistory) bool {
		back, err := FromEvents(rh.H.Events())
		return err == nil && back.Len() == rh.H.Len() && back.Equivalent(rh.H)
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickPrefixesWellFormed(t *testing.T) {
	prop := func(rh randHistory) bool {
		h := rh.H
		for i := 0; i <= h.Len(); i++ {
			p := h.Prefix(i)
			if p.Len() != i {
				return false
			}
			// A prefix of the prefix is the same as a direct prefix.
			if i > 0 && p.Prefix(i-1).Len() != i-1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRealTimeIsStrictPartialOrder(t *testing.T) {
	prop := func(rh randHistory) bool {
		h := rh.H
		ids := h.Txns()
		for _, a := range ids {
			if h.RealTimePrecedes(a, a) {
				return false // irreflexive
			}
			for _, b := range ids {
				if h.RealTimePrecedes(a, b) && h.RealTimePrecedes(b, a) {
					return false // antisymmetric
				}
				for _, c := range ids {
					if h.RealTimePrecedes(a, b) && h.RealTimePrecedes(b, c) && !h.RealTimePrecedes(a, c) {
						return false // transitive
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickLiveSetSymmetric(t *testing.T) {
	prop := func(rh randHistory) bool {
		h := rh.H
		in := func(set []TxnID, k TxnID) bool {
			for _, x := range set {
				if x == k {
					return true
				}
			}
			return false
		}
		for _, a := range h.Txns() {
			la := h.LiveSet(a)
			if !in(la, a) {
				return false // T is in its own live set
			}
			for _, b := range h.Txns() {
				if in(la, b) != in(h.LiveSet(b), a) {
					return false // span intersection is symmetric
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompletionIsTComplete(t *testing.T) {
	prop := func(rh randHistory, commitBits uint8) bool {
		h := rh.H
		commit := make(map[TxnID]bool)
		for i, k := range h.CommitPendingTxns() {
			commit[k] = commitBits&(1<<uint(i%8)) != 0
		}
		c := h.Completion(commit)
		if !c.TComplete() {
			return false
		}
		// The completion preserves every already-complete operation.
		for _, k := range h.Txns() {
			orig, comp := h.Txn(k), c.Txn(k)
			for i, op := range orig.Ops {
				if op.Pending {
					continue
				}
				if !sameOp(op, comp.Ops[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSeqFromHistoryMatchesCompletion(t *testing.T) {
	prop := func(rh randHistory) bool {
		h := rh.H
		order := h.Txns()
		commit := make(map[TxnID]bool)
		for _, k := range h.CommitPendingTxns() {
			commit[k] = true
		}
		s, err := SeqFromHistory(h, order, commit)
		if err != nil {
			return false
		}
		return s.MatchesCompletionOf(h) == nil
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOverlapComplement(t *testing.T) {
	// Overlap is exactly the complement of ≺RT in either direction, and
	// overlapping is symmetric.
	prop := func(rh randHistory) bool {
		h := rh.H
		for _, a := range h.Txns() {
			for _, b := range h.Txns() {
				if a == b {
					continue
				}
				o := h.Overlap(a, b)
				want := !h.RealTimePrecedes(a, b) && !h.RealTimePrecedes(b, a)
				if o != want || o != h.Overlap(b, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}
