package history

import "fmt"

// Stream ingests a history as it is being produced: events are appended
// one at a time, each validated for well-formedness in O(1) amortized
// time against per-transaction state (the same checks FromEvents performs
// over a complete event log), while the per-transaction views and the
// dense Indexed view are maintained incrementally instead of rebuilt.
//
// A rejected event leaves the stream completely untouched — rejection is
// side-effect-free, so a monitor can refuse one malformed event and keep
// consuming the rest of the stream.
//
// Two views of the accumulated history are available:
//
//   - Live returns the stream's own *History, updated in place by every
//     Append. It is valid only until the next Append and must not be
//     retained or shared across goroutines while the stream is fed; the
//     online monitor (package spec) uses it to run checks at every
//     response event without copying.
//   - History returns a detached immutable snapshot (sharing the
//     already-written event storage), safe to retain, share and check
//     like any FromEvents-built history.
//
// FromEvents, Prefix and Builder are thin wrappers over this core, so the
// batch and streaming paths validate histories identically. The
// incremental index is maintained only for streams built with NewStream
// (the online consumers that query it at every event); the batch wrappers
// leave the index to the lazy one-shot builder, so histories that are
// never checked never pay for it. The two index constructions are pinned
// equal by the stream differential tests.
type Stream struct {
	h *History
	// ix is the incrementally maintained live index, nil for the batch
	// wrappers (whose histories build the index lazily on first use).
	// ix.TComplete doubles as the registration source for new
	// transactions: a transaction's real-time predecessors are exactly
	// the transactions already t-complete at its first event.
	ix *Indexed
}

// NewStream returns an empty stream with live incremental indexing.
func NewStream() *Stream {
	s := newStreamOver(&History{})
	s.ix = &Indexed{
		H:      s.h,
		objIdx: make(map[Var]int),
		txnIdx: make(map[TxnID]int),
	}
	s.h.idx = s.ix
	s.h.idxOnce.Do(func() {}) // the live index is the history's index
	return s
}

// newStreamOver wires the validation core onto h without live indexing —
// the batch entry used by FromEvents, Prefix and Builder.
func newStreamOver(h *History) *Stream {
	if h.txns == nil {
		h.txns = make(map[TxnID]*TxnInfo)
	}
	return &Stream{h: h}
}

// replay validates and indexes the events already stored in s.h.events —
// the batch entry into the stream core used by FromEvents and Prefix.
func (s *Stream) replay() error {
	for i, e := range s.h.events {
		if err := s.check(e); err != nil {
			return fmt.Errorf("history: event %d (%s): %w", i, e, err)
		}
		s.admit(i, e)
	}
	return nil
}

// Append validates e against the history observed so far and incorporates
// it. On error the stream is unchanged: the event is not recorded and no
// per-transaction or index state moves.
func (s *Stream) Append(e Event) error {
	if err := s.check(e); err != nil {
		return fmt.Errorf("history: event %d (%s): %w", len(s.h.events), e, err)
	}
	s.h.events = append(s.h.events, e)
	s.admit(len(s.h.events)-1, e)
	return nil
}

// check decides whether e may extend the stream, without mutating.
func (s *Stream) check(e Event) error {
	if e.Txn == InitTxn {
		return errReservedTxn
	}
	if t := s.h.txns[e.Txn]; t != nil {
		return t.checkExtend(e)
	}
	if e.Kind == Res {
		return errOrphanResponse
	}
	return nil
}

// admit incorporates the already-validated event e at history index i:
// per-transaction view first, then the incremental index update.
func (s *Stream) admit(i int, e Event) {
	t := s.h.txns[e.Txn]
	if t == nil {
		t = &TxnInfo{ID: e.Txn, First: i, TryCInv: -1, TryCRes: -1}
		s.h.txns[e.Txn] = t
		s.h.ids = append(s.h.ids, e.Txn)
		if s.ix != nil {
			s.addTxn(t)
		}
	}
	t.applyExtend(i, e)
	if s.ix != nil {
		s.index(i, e, t)
	}
}

// addTxn registers a new transaction with the live index. Its real-time
// predecessors are the transactions t-complete right now; transactions
// completing later can never precede it (their last event is at or after
// this one).
func (s *Stream) addTxn(t *TxnInfo) {
	ix := s.ix
	gi := len(ix.TxnIDs)
	ix.TxnIDs = append(ix.TxnIDs, t.ID)
	ix.txnIdx[t.ID] = gi
	ix.Txns = append(ix.Txns, IndexedTxn{Info: t, BadReadOp: -1, TryCInv: -1, TryCRes: -1})
	// The new transaction's real-time predecessors are the transactions
	// t-complete right now, cloned to the row shape the batch builder
	// produces (bitsWords(gi) words: only lower indexes can precede gi).
	ix.RTPred = append(ix.RTPred, ix.TComplete.CloneWords(bitsWords(gi)))
}

// objIndex returns the dense index of v, registering it on first use.
func (s *Stream) objIndex(v Var) int {
	if oi, ok := s.ix.objIdx[v]; ok {
		return oi
	}
	oi := len(s.ix.Objs)
	s.ix.Objs = append(s.ix.Objs, v)
	s.ix.objIdx[v] = oi
	s.ix.Writers = append(s.ix.Writers, nil)
	return oi
}

// index folds event e (already applied to t) into the live index.
func (s *Stream) index(_ int, e Event, t *TxnInfo) {
	ix := s.ix
	gi := ix.txnIdx[t.ID]
	it := &ix.Txns[gi]
	it.Last = t.Last
	if e.Kind == Inv {
		if e.Op == OpRead || e.Op == OpWrite {
			s.objIndex(e.Obj)
		}
		it.First = t.First
		it.TryCInv = t.TryCInv
		it.Complete = false
		it.CommitPending = e.Op == OpTryCommit
		return
	}
	// A response: the transaction's last operation just completed.
	op := t.Ops[len(t.Ops)-1]
	it.TryCRes = t.TryCRes
	it.Complete = true
	it.CommitPending = false
	if e.Out != OutOK {
		it.TComplete = true
		it.Committed = e.Out == OutCommit
		ix.TComplete = ix.TComplete.SetGrow(gi)
	}
	switch {
	case op.Kind == OpRead && op.Out == OutOK:
		s.indexRead(it, op)
	case op.Kind == OpWrite && op.Out == OutOK:
		s.indexWrite(it, gi, op)
	}
}

// indexRead classifies a completed value-returning read: satisfied by the
// transaction's own latest preceding write (consistency-checked, feeding
// BadReadOp) or external (appended to the read summary).
func (s *Stream) indexRead(it *IndexedTxn, op Op) {
	oi := s.ix.objIdx[op.Obj]
	for wi := range it.Writes {
		w := &it.Writes[wi]
		if w.Obj == oi {
			if w.Val != op.Val && it.BadReadOp < 0 {
				it.BadReadOp = len(it.Info.Ops) - 1
				it.BadReadWant = w.Val
			}
			return
		}
	}
	it.Reads = append(it.Reads, IndexedRead{Obj: oi, Val: op.Val, ResIdx: op.ResIndex, Op: op})
}

// indexWrite folds a completed successful write into the latest-write
// summary (kept sorted by object index) and the per-object writer mask.
func (s *Stream) indexWrite(it *IndexedTxn, gi int, op Op) {
	oi := s.objIndex(op.Obj)
	s.ix.Writers[oi] = s.ix.Writers[oi].SetGrow(gi)
	pos := len(it.Writes)
	for wi := range it.Writes {
		if it.Writes[wi].Obj == oi {
			it.Writes[wi].Val = op.Arg
			return
		}
		if it.Writes[wi].Obj > oi {
			pos = wi
			break
		}
	}
	it.Writes = append(it.Writes, IndexedWrite{})
	copy(it.Writes[pos+1:], it.Writes[pos:])
	it.Writes[pos] = IndexedWrite{Obj: oi, Val: op.Arg}
}

// Len returns the number of events appended so far.
func (s *Stream) Len() int { return len(s.h.events) }

// NumTxns returns the number of transactions observed so far.
func (s *Stream) NumTxns() int { return len(s.h.ids) }

// Events returns a copy of the event sequence observed so far.
func (s *Stream) Events() []Event { return append([]Event(nil), s.h.events...) }

// Live returns the stream's live history view: the same *History value,
// updated in place by every Append, with its incrementally maintained
// index behind History.Index. The view is valid until the next Append; it
// must not be retained, and not shared across goroutines while the stream
// is being fed. Use History for a detached snapshot.
func (s *Stream) Live() *History { return s.h }

// History returns an immutable snapshot of the history observed so far.
// The snapshot shares the already-written event storage with the stream
// (appending more events never mutates it) and costs O(transactions), not
// O(events); its index is built on first use, like any batch-built
// history's.
func (s *Stream) History() *History {
	evs := s.h.events
	h := &History{
		events: evs[:len(evs):len(evs)],
		ids:    append([]TxnID(nil), s.h.ids...),
		txns:   make(map[TxnID]*TxnInfo, len(s.h.ids)),
	}
	for id, t := range s.h.txns {
		ct := *t
		if n := len(t.Ops); n > 0 && t.Ops[n-1].Pending {
			// The pending tail operation is completed in place by a later
			// response; detach it.
			ct.Ops = append([]Op(nil), t.Ops...)
		} else {
			ct.Ops = t.Ops[:len(t.Ops):len(t.Ops)]
		}
		h.txns[id] = &ct
	}
	return h
}
