package history

import (
	"errors"
	"fmt"
)

// Op is a t-operation as seen in the per-transaction view H|k: a matched
// invocation/response pair, or a pending invocation (Pending == true, in
// which case Out and Val are meaningless and ResIndex is -1).
type Op struct {
	Kind    OpKind
	Obj     Var   // read/write only
	Arg     Value // write argument
	Val     Value // read result when Out == OutOK
	Out     Outcome
	Pending bool
	// InvIndex and ResIndex are positions of the invocation and response
	// events in the enclosing history (ResIndex == -1 while pending).
	InvIndex int
	ResIndex int
}

// String renders the operation in the paper's notation.
func (o Op) String() string {
	switch {
	case o.Pending && (o.Kind == OpRead):
		return fmt.Sprintf("read(%s)->?", o.Obj)
	case o.Pending && o.Kind == OpWrite:
		return fmt.Sprintf("write(%s,%d)->?", o.Obj, o.Arg)
	case o.Pending:
		return fmt.Sprintf("%s->?", o.Kind)
	case o.Kind == OpRead && o.Out == OutOK:
		return fmt.Sprintf("read(%s)->%d", o.Obj, o.Val)
	case o.Kind == OpRead:
		return fmt.Sprintf("read(%s)->%s", o.Obj, o.Out)
	case o.Kind == OpWrite:
		return fmt.Sprintf("write(%s,%d)->%s", o.Obj, o.Arg, o.Out)
	default:
		return fmt.Sprintf("%s->%s", o.Kind, o.Out)
	}
}

// TxnInfo is the analyzed per-transaction view H|k.
type TxnInfo struct {
	ID  TxnID
	Ops []Op // operations in H|k order; at most the last one is pending

	// First and Last are the indexes in H of the first and last event of the
	// transaction.
	First int
	Last  int

	// TryCInv and TryCRes are the indexes in H of the tryC invocation and
	// response events, or -1 when absent. TryCInv is the pivot of the
	// deferred-update condition: a transaction may only be read from once
	// its tryC invocation has occurred.
	TryCInv int
	TryCRes int
}

var (
	errReservedTxn    = errors.New("transaction id 0 is reserved for T_0")
	errAfterTComplete = errors.New("event after transaction is t-complete")
	errPendingOp      = errors.New("invocation while another operation is pending")
	errOrphanResponse = errors.New("response without matching pending invocation")
	errAfterTry       = errors.New("operation invoked after tryC/tryA")
)

// checkExtend reports whether event e may legally extend the view. It is
// pure: rejected events leave the view untouched, which the streaming
// ingestion path (Stream.Append) relies on to make rejection
// side-effect-free.
func (t *TxnInfo) checkExtend(e Event) error {
	if n := len(t.Ops); n > 0 {
		last := &t.Ops[n-1]
		if !last.Pending && last.Out != OutOK {
			return errAfterTComplete // already ended with A_k or C_k
		}
		if e.Kind == Inv {
			if last.Pending {
				return errPendingOp
			}
			if last.Kind == OpTryCommit || last.Kind == OpTryAbort {
				return errAfterTry
			}
		} else {
			if !last.Pending {
				return errOrphanResponse
			}
			inv := Event{Kind: Inv, Op: last.Kind, Txn: t.ID, Obj: last.Obj, Arg: last.Arg}
			if !e.matches(inv) {
				return fmt.Errorf("%w: response %v does not match pending %v", errOrphanResponse, e, *last)
			}
		}
	} else if e.Kind == Res {
		return errOrphanResponse
	}
	return nil
}

// applyExtend incorporates event e (at history index i) into the view. The
// event must have passed checkExtend.
func (t *TxnInfo) applyExtend(i int, e Event) {
	t.Last = i
	if e.Kind == Res {
		last := &t.Ops[len(t.Ops)-1]
		last.Pending = false
		last.Out = e.Out
		last.Val = e.Val
		last.ResIndex = i
		if last.Kind == OpTryCommit {
			t.TryCRes = i
		}
		return
	}
	t.Ops = append(t.Ops, Op{
		Kind:     e.Op,
		Obj:      e.Obj,
		Arg:      e.Arg,
		Pending:  true,
		InvIndex: i,
		ResIndex: -1,
	})
	if e.Op == OpTryCommit {
		t.TryCInv = i
	}
}

// extend incorporates event e (at history index i) into the view,
// validating well-formedness.
func (t *TxnInfo) extend(i int, e Event) error {
	if err := t.checkExtend(e); err != nil {
		return err
	}
	t.applyExtend(i, e)
	return nil
}

// Events reconstructs the event subsequence H|k.
func (t *TxnInfo) eventSeq() []Event {
	evs := make([]Event, 0, 2*len(t.Ops))
	for _, op := range t.Ops {
		evs = append(evs, Event{Kind: Inv, Op: op.Kind, Txn: t.ID, Obj: op.Obj, Arg: op.Arg})
		if !op.Pending {
			evs = append(evs, Event{Kind: Res, Op: op.Kind, Txn: t.ID, Obj: op.Obj, Arg: op.Arg, Val: op.Val, Out: op.Out})
		}
	}
	return evs
}

// Events is the materialized event subsequence H|k.
func (t *TxnInfo) Events() []Event { return t.eventSeq() }

// Complete reports whether the transaction is complete in H: H|k ends with
// a response event.
func (t *TxnInfo) Complete() bool {
	return len(t.Ops) > 0 && !t.Ops[len(t.Ops)-1].Pending
}

// PendingOp returns the pending operation, if any.
func (t *TxnInfo) PendingOp() (Op, bool) {
	if n := len(t.Ops); n > 0 && t.Ops[n-1].Pending {
		return t.Ops[n-1], true
	}
	return Op{}, false
}

// TComplete reports whether the transaction is t-complete: H|k ends with
// A_k or C_k.
func (t *TxnInfo) TComplete() bool {
	if n := len(t.Ops); n > 0 {
		last := t.Ops[n-1]
		return !last.Pending && last.Out != OutOK
	}
	return false
}

// Committed reports whether the transaction committed (last event C_k).
func (t *TxnInfo) Committed() bool {
	if n := len(t.Ops); n > 0 {
		last := t.Ops[n-1]
		return !last.Pending && last.Out == OutCommit
	}
	return false
}

// Aborted reports whether the transaction aborted (last event A_k).
func (t *TxnInfo) Aborted() bool {
	if n := len(t.Ops); n > 0 {
		last := t.Ops[n-1]
		return !last.Pending && last.Out == OutAbort
	}
	return false
}

// CommitPending reports whether the transaction has an incomplete tryC
// operation — the case in which a completion of the history (Definition 2)
// may either commit or abort it.
func (t *TxnInfo) CommitPending() bool {
	if n := len(t.Ops); n > 0 {
		last := t.Ops[n-1]
		return last.Pending && last.Kind == OpTryCommit
	}
	return false
}

// ReadSet returns Rset(T_k): the t-objects the transaction reads
// (operations that completed with a value; pending and aborted reads are
// excluded).
func (t *TxnInfo) ReadSet() map[Var]bool {
	s := make(map[Var]bool)
	for _, op := range t.Ops {
		if op.Kind == OpRead && !op.Pending && op.Out == OutOK {
			s[op.Obj] = true
		}
	}
	return s
}

// WriteSet returns Wset(T_k): the t-objects the transaction writes with a
// completed, successful write.
func (t *TxnInfo) WriteSet() map[Var]bool {
	s := make(map[Var]bool)
	for _, op := range t.Ops {
		if op.Kind == OpWrite && !op.Pending && op.Out == OutOK {
			s[op.Obj] = true
		}
	}
	return s
}

// LastWrites returns, for each t-object the transaction wrote successfully,
// the value of its latest write — the value the transaction commits if it
// commits.
func (t *TxnInfo) LastWrites() map[Var]Value {
	m := make(map[Var]Value)
	for _, op := range t.Ops {
		if op.Kind == OpWrite && !op.Pending && op.Out == OutOK {
			m[op.Obj] = op.Arg
		}
	}
	return m
}
