package history

import "sort"

// CommitPendingTxns returns the transactions with an incomplete tryC — the
// only degrees of freedom a completion of the history has (Definition 2):
// each may be completed with C_k or A_k. Every other incomplete transaction
// is necessarily aborted by a completion.
func (h *History) CommitPendingTxns() []TxnID {
	var out []TxnID
	for _, k := range h.ids {
		if h.txns[k].CommitPending() {
			out = append(out, k)
		}
	}
	return out
}

// Completion materializes one completion of the history per Definition 2:
//
//   - for every incomplete read/write/tryA operation, a response A_k is
//     appended after the invocation (at the end of the history, which is
//     "somewhere after the invocation");
//   - for every incomplete tryC of T_k, C_k is appended if commit[k] is
//     true, A_k otherwise;
//   - for every transaction that is complete but not t-complete,
//     tryC_k · A_k is appended after its last event.
//
// The result is a well-formed t-complete history. Appended events are
// ordered by transaction id to make the construction deterministic.
func (h *History) Completion(commit map[TxnID]bool) *History {
	evs := append([]Event(nil), h.events...)
	ids := append([]TxnID(nil), h.ids...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, k := range ids {
		t := h.txns[k]
		if t.TComplete() {
			continue
		}
		if op, ok := t.PendingOp(); ok {
			out := OutAbort
			if op.Kind == OpTryCommit && commit[k] {
				out = OutCommit
			}
			evs = append(evs, Event{Kind: Res, Op: op.Kind, Txn: k, Obj: op.Obj, Arg: op.Arg, Out: out})
			continue
		}
		// Complete but not t-complete.
		evs = append(evs,
			Event{Kind: Inv, Op: OpTryCommit, Txn: k},
			Event{Kind: Res, Op: OpTryCommit, Txn: k, Out: OutAbort},
		)
	}
	c, err := FromEvents(evs)
	if err != nil {
		// A completion of a well-formed history is always well-formed.
		panic("history: completion unexpectedly malformed: " + err.Error())
	}
	return c
}
