package history

// Hooks for the external differential tests (stream_fuzz_test.go): the
// one-shot batch index construction and the structural comparators defined
// alongside the in-package stream tests.

func BuildIndexForTest(h *History) *Indexed     { return buildIndex(h) }
func EqualIndexesForTest(a, b *Indexed) error   { return equalIndexes(a, b) }
func EqualHistoriesForTest(a, b *History) error { return equalHistories(a, b) }
