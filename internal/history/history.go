package history

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// History is a well-formed (finite) sequence of invocation and response
// events. The zero value is the empty history. Histories are immutable once
// built; construct them with a Builder, FromEvents, or incrementally with a
// Stream.
type History struct {
	events []Event

	// txns caches the per-transaction analysis; it is computed eagerly by
	// FromEvents so that History values can be shared across goroutines
	// without synchronization.
	txns map[TxnID]*TxnInfo
	ids  []TxnID // transaction ids in order of first appearance

	// idx caches the dense Indexed view. Histories built by NewStream
	// carry the incrementally maintained live index; batch-built
	// histories (FromEvents, Prefix, Builder, snapshots) build it lazily
	// on first use (Index).
	idxOnce sync.Once
	idx     *Indexed
}

// FromEvents validates evs as a well-formed history and returns it.
// The slice is copied; the caller keeps ownership of evs.
//
// Well-formedness (Section 2): for every transaction T_k, H|k is sequential
// (each invocation is last in H|k or immediately followed by its matching
// response), has no events after A_k or C_k, and tryC/tryA invocations are
// not followed by further invocations of the same transaction.
//
// FromEvents is the batch entry to the stream core (Stream): validation
// is the same incremental pass Append performs per event; the index stays
// lazy (built on first use) since many batch-built histories are never
// checked.
func FromEvents(evs []Event) (*History, error) {
	h := &History{events: append([]Event(nil), evs...)}
	if err := newStreamOver(h).replay(); err != nil {
		return nil, err
	}
	return h, nil
}

// MustFromEvents is FromEvents that panics on malformed input; intended for
// tests and fixtures.
func MustFromEvents(evs []Event) *History {
	h, err := FromEvents(evs)
	if err != nil {
		panic(err)
	}
	return h
}

// Len returns the number of events in the history.
func (h *History) Len() int { return len(h.events) }

// At returns the event at index i.
func (h *History) At(i int) Event { return h.events[i] }

// Events returns a copy of the event sequence.
func (h *History) Events() []Event { return append([]Event(nil), h.events...) }

// Txns returns the identifiers of the transactions participating in the
// history, in order of first appearance. The returned slice is a copy.
func (h *History) Txns() []TxnID { return append([]TxnID(nil), h.ids...) }

// NumTxns returns |txns(H)|.
func (h *History) NumTxns() int { return len(h.ids) }

// Txn returns the per-transaction view H|k, or nil if T_k does not
// participate in the history.
func (h *History) Txn(k TxnID) *TxnInfo { return h.txns[k] }

// Prefix returns the prefix of the history consisting of its first n
// events. Prefixes of well-formed histories are well-formed.
func (h *History) Prefix(n int) *History {
	if n < 0 || n > len(h.events) {
		panic(fmt.Sprintf("history: prefix length %d out of range [0,%d]", n, len(h.events)))
	}
	p := &History{events: h.events[:n:n]}
	if err := newStreamOver(p).replay(); err != nil {
		// A prefix of a well-formed history is always well-formed.
		panic(fmt.Sprintf("history: prefix unexpectedly malformed: %v", err))
	}
	return p
}

// Complete reports whether all transactions in the history are complete
// (every H|k ends with a response event).
func (h *History) Complete() bool {
	for _, k := range h.ids {
		if !h.txns[k].Complete() {
			return false
		}
	}
	return true
}

// TComplete reports whether all transactions are t-complete (every H|k ends
// with A_k or C_k).
func (h *History) TComplete() bool {
	for _, k := range h.ids {
		if !h.txns[k].TComplete() {
			return false
		}
	}
	return true
}

// TSequential reports whether no two transactions overlap in the history.
func (h *History) TSequential() bool {
	for i, k := range h.ids {
		for _, m := range h.ids[i+1:] {
			if h.Overlap(k, m) {
				return false
			}
		}
	}
	return true
}

// Equivalent reports whether h and g are equivalent: txns(H) = txns(G) and
// H|k = G|k for every transaction.
func (h *History) Equivalent(g *History) bool {
	if len(h.ids) != len(g.ids) {
		return false
	}
	for _, k := range h.ids {
		tg := g.txns[k]
		th := h.txns[k]
		if tg == nil || len(tg.Ops) != len(th.Ops) {
			return false
		}
		for i := range th.Ops {
			if !sameOp(th.Ops[i], tg.Ops[i]) {
				return false
			}
		}
	}
	return true
}

// sameOp compares two operations as elements of H|k, ignoring their event
// positions in the enclosing histories.
func sameOp(a, b Op) bool {
	if a.Kind != b.Kind || a.Obj != b.Obj || a.Arg != b.Arg || a.Pending != b.Pending {
		return false
	}
	if a.Pending {
		return true
	}
	return a.Out == b.Out && (a.Kind != OpRead || a.Out != OutOK || a.Val == b.Val)
}

// String renders the history one event per line.
func (h *History) String() string {
	var b strings.Builder
	for i, e := range h.events {
		fmt.Fprintf(&b, "%3d  %s\n", i, e)
	}
	return b.String()
}

// Vars returns the sorted set of t-objects accessed in the history.
func (h *History) Vars() []Var {
	seen := make(map[Var]bool)
	for _, e := range h.events {
		if e.Op == OpRead || e.Op == OpWrite {
			seen[e.Obj] = true
		}
	}
	vars := make([]Var, 0, len(seen))
	for v := range seen {
		vars = append(vars, v)
	}
	sort.Slice(vars, func(i, j int) bool { return vars[i] < vars[j] })
	return vars
}
