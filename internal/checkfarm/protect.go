package checkfarm

import (
	"context"
	"errors"
	"fmt"
	"time"

	"duopacity/internal/chaos"
)

// This file is the farm's worker-fault containment: a panicking shard must
// not take the whole certification down (the farm's historical semantics
// for ordinary errors — first error cancels the run — stay untouched; a
// panic is not a verdict, it is a crashed worker). Each entry point wraps
// only its shard's pure compute unit in runProtected — never emit
// callbacks or window bookkeeping, which run under streamOrdered's mutex
// and must not unwind mid-update. A unit that panics is retried up to
// shardAttempts times with exponential backoff; a unit that panics past
// its retries degrades: the entry point substitutes an explicit
// degraded-and-undecided result for that shard (harness.DegradedEpisode,
// an undecided OnlineReport / ExploreReport / verdict row with the reason
// attached) and the rest of the farm proceeds. chaos.FarmFaults attached
// to the context (chaos.WithFarmFaults) strikes inside the protected
// region, so injected faults exercise exactly this machinery.

// shardAttempts bounds how many times a panicking shard is retried before
// it degrades (first run plus two retries).
const shardAttempts = 3

// ShardPanicError reports a shard whose compute unit panicked on every
// one of its shardAttempts attempts.
type ShardPanicError struct {
	// Shard is the index of the work unit (episode, batch entry, plan).
	Shard int
	// Attempt is the zero-based attempt of the final panic.
	Attempt int
	// Value is the recovered panic value of the final attempt.
	Value any
}

func (e *ShardPanicError) Error() string {
	return fmt.Sprintf("checkfarm: shard %d panicked on all %d attempts: %v", e.Shard, e.Attempt+1, e.Value)
}

// runProtected executes fn with panic recovery and bounded retry. A panic
// is recovered, the shard backs off exponentially (1ms, 2ms, ... —
// interruptible by ctx) and fn runs again, up to shardAttempts attempts;
// the final failure returns a *ShardPanicError. Ordinary errors from fn
// return immediately — retry is for crashes, not verdicts. Fault
// schedules attached via chaos.WithFarmFaults strike inside the recovered
// region, before fn.
func runProtected(ctx context.Context, shard int, fn func() error) error {
	faults := chaos.FarmFaultsFromContext(ctx)
	var last *ShardPanicError
	for attempt := 0; attempt < shardAttempts; attempt++ {
		if attempt > 0 {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(time.Millisecond << uint(attempt-1)):
			}
		}
		panicked := false
		err := func() (err error) {
			defer func() {
				if v := recover(); v != nil {
					panicked = true
					last = &ShardPanicError{Shard: shard, Attempt: attempt, Value: v}
				}
			}()
			faults.Strike(shard, attempt)
			return fn()
		}()
		if !panicked {
			return err
		}
	}
	return last
}

// protectShard is the slot-writing counterpart of protect: it runs fn
// under runProtected and, when the shard panicked past its retries, calls
// degrade (which fills the shard's result slot with an explicit degraded
// value) and swallows the error so the farm proceeds.
func protectShard(ctx context.Context, i int, fn func() error, degrade func(err *ShardPanicError)) error {
	err := runProtected(ctx, i, fn)
	var pe *ShardPanicError
	if errors.As(err, &pe) {
		degrade(pe)
		return nil
	}
	return err
}

// protect wraps a streamed run function so that a shard panicking past
// its retries yields degrade(ep, err) as that shard's result instead of
// failing the farm. Non-panic errors pass through unchanged.
func protect[T any](ctx context.Context, run func(ep int) (T, error), degrade func(ep int, err *ShardPanicError) T) func(ep int) (T, error) {
	return func(ep int) (T, error) {
		var r T
		err := runProtected(ctx, ep, func() error {
			var e error
			r, e = run(ep)
			return e
		})
		var pe *ShardPanicError
		if errors.As(err, &pe) {
			return degrade(ep, pe), nil
		}
		return r, err
	}
}
