package checkfarm

import (
	"context"
	"testing"

	"duopacity/internal/harness"
	"duopacity/internal/spec"
)

// TestCertifyOnlineMatchesSequential pins the sharded online
// certification against a sequential fold of the same episodes: identical
// statistics for every jobs setting (episodes are interleaved, hence
// deterministic, and folding is ordered).
func TestCertifyOnlineMatchesSequential(t *testing.T) {
	cfg := harness.CertConfig{
		Workload: harness.Workload{
			Engine:           "ple",
			Objects:          4,
			Goroutines:       6,
			TxnsPerGoroutine: 3,
			OpsPerTxn:        6,
			ReadFraction:     0.5,
			Seed:             4,
		},
		Episodes:    16,
		Interleaved: true,
	}
	want := harness.OnlineStats{Engine: "ple", Criterion: spec.DUOpacity}
	cfgd := cfg.WithDefaults()
	for ep := 0; ep < cfgd.Episodes; ep++ {
		r, err := harness.CertifyEpisodeOnline(cfgd, ep, spec.DUOpacity)
		if err != nil {
			t.Fatal(err)
		}
		want.AddEpisode(r)
	}
	if want.Rejected == 0 {
		t.Fatal("expected the pessimistic in-place engine to be rejected online")
	}
	for _, jobs := range []int{1, 3, 8} {
		got, err := CertifyOnline(context.Background(), cfg, spec.DUOpacity, jobs)
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if got != want {
			t.Fatalf("jobs=%d: stats %+v, want %+v", jobs, got, want)
		}
	}
}

// TestCertifyOnlineCanceledContext mirrors the batch farm's cancellation
// contract.
func TestCertifyOnlineCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := CertifyOnline(ctx, harness.CertConfig{
		Workload: harness.Workload{Engine: "tl2"}, Episodes: 4, Interleaved: true,
	}, spec.DUOpacity, 2); err == nil {
		t.Fatal("canceled context not surfaced")
	}
}

// TestCertifyOnlineUnknownEngine surfaces engine construction errors.
func TestCertifyOnlineUnknownEngine(t *testing.T) {
	if _, err := CertifyOnline(context.Background(), harness.CertConfig{
		Workload: harness.Workload{Engine: "nope"}, Episodes: 2,
	}, spec.DUOpacity, 2); err == nil {
		t.Fatal("unknown engine not surfaced")
	}
}
