// Package checkfarm parallelizes the repository's certification pipeline:
// it shards the episodes of harness.Certify, the cells of harness.Sweep
// and batches of parsed histories across a bounded worker pool with
// context cancellation, deterministic per-shard seeding and ordered result
// aggregation, so parallel runs produce byte-identical results to the
// sequential paths. On top of the pool, the differential soak mode
// (Soak) runs every registered engine against every criterion over a
// randomized workload grid, records divergences between criteria, and
// shrinks each violating history to a minimal counterexample with
// gen.Shrink.
//
// Sharding is over independent units of work — each episode runs on a
// fresh engine, each batch entry is its own history — so the only shared
// state is the result slot a shard owns exclusively. spec.Check is safe
// for concurrent use (each call builds its own search state and memo over
// an immutable history), which the race-enabled tests of this package and
// package spec pin down.
package checkfarm

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"duopacity/internal/harness"
	"duopacity/internal/history"
	"duopacity/internal/spec"
)

// resolveJobs clamps a worker count: 0 (or negative) means GOMAXPROCS,
// and no more workers than shards are spawned.
func resolveJobs(jobs, shards int) int {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > shards {
		jobs = shards
	}
	if jobs < 1 {
		jobs = 1
	}
	return jobs
}

// shard fans work(0..n-1) out over a pool of jobs workers. Shards are
// claimed from an atomic counter, so completion order is arbitrary — the
// caller must write results into per-shard slots. The first error (or a
// context cancellation) stops the pool and is returned; in-flight shards
// finish, unclaimed shards never start.
func shard(ctx context.Context, n, jobs int, work func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	jobs = resolveJobs(jobs, n)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := work(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Certify is harness.Certify sharded over jobs workers: episodes are
// distributed across the pool, each seeded purely from the base seed and
// its episode index (exactly as the sequential path seeds them), and the
// reports are folded in episode order, so the returned statistics are
// byte-identical to harness.Certify for the same configuration whenever
// the per-episode histories are — always under cfg.Interleaved, and for
// any engine whose per-episode verdicts don't depend on scheduling luck.
// jobs <= 0 uses GOMAXPROCS.
func Certify(ctx context.Context, cfg harness.CertConfig, criteria []spec.Criterion, jobs int) (harness.CertStats, error) {
	cfg = cfg.WithDefaults()
	reports := make([]harness.EpisodeReport, cfg.Episodes)
	err := shard(ctx, cfg.Episodes, jobs, func(ep int) error {
		r, rerr := harness.CertifyEpisode(cfg, ep, criteria)
		if rerr != nil {
			return rerr
		}
		reports[ep] = r
		return nil
	})
	stats := harness.NewCertStats(cfg.Workload.Engine)
	if err != nil {
		return stats, err
	}
	for _, r := range reports {
		stats.AddEpisode(criteria, r)
	}
	return stats, nil
}

// Sweep is harness.Sweep sharded over jobs workers. Points come back in
// the same (engine, goroutines, read-fraction) grid order the sequential
// path produces. Concurrent cells contend for the CPUs, so throughput
// numbers are only comparable within a single jobs setting; use jobs = 1
// (or harness.Sweep) for publication-grade measurements and the parallel
// mode for functional sweeps and CI smoke.
func Sweep(ctx context.Context, cfg harness.SweepConfig, jobs int) ([]harness.SweepPoint, error) {
	type cell struct {
		engine string
		g      int
		rf     float64
	}
	var cells []cell
	for _, eng := range cfg.Engines {
		for _, g := range cfg.Goroutines {
			for _, rf := range cfg.ReadFractions {
				cells = append(cells, cell{eng, g, rf})
			}
		}
	}
	points := make([]harness.SweepPoint, len(cells))
	err := shard(ctx, len(cells), jobs, func(i int) error {
		c := cells[i]
		w := cfg.Base
		w.Engine = c.engine
		w.Goroutines = c.g
		w.ReadFraction = c.rf
		stats, rerr := harness.Run(w)
		if rerr != nil {
			return rerr
		}
		points[i] = harness.SweepPoint{Engine: c.engine, Goroutines: c.g, ReadFraction: c.rf, Stats: stats}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// CheckBatch checks every history against every criterion across the
// pool and returns the verdicts with results[i][j] corresponding to
// (hs[i], criteria[j]). It backs ducheck's -parallel batch mode.
func CheckBatch(ctx context.Context, hs []*history.History, criteria []spec.Criterion, jobs int, opts ...spec.Option) ([][]spec.Verdict, error) {
	results := make([][]spec.Verdict, len(hs))
	err := shard(ctx, len(hs), jobs, func(i int) error {
		vs := make([]spec.Verdict, len(criteria))
		for j, c := range criteria {
			vs[j] = spec.Check(hs[i], c, opts...)
		}
		results[i] = vs
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
