// Package checkfarm parallelizes the repository's certification pipeline:
// it shards the episodes of harness.Certify, the cells of harness.Sweep,
// batches of parsed histories (CheckBatch) and exhaustive plan
// explorations (ExplorePlans) across a bounded worker pool with context
// cancellation, deterministic per-shard seeding and ordered result
// aggregation, so parallel runs produce byte-identical results to the
// sequential paths.
//
// The farm exists because the paper's claims are universally quantified:
// du-opacity (Definition 3) must hold for *every* history an engine can
// produce, so evidence scales with how many histories — and, since the
// explorer, how many whole schedule spaces — can be checked per second.
// Three modes cover the quantifier from different sides: Certify samples
// recorded episodes per criterion; CertifyOnline certifies executions
// while they run through spec.Monitor (prefix closure, Corollary 2,
// latches violations at the causing event); ExplorePlans enumerates every
// interleaving of the deterministic stepper's schedule space for small
// plans and returns per-plan proofs over that space or pinned refutations
// (harness.ExplorePlan). On top of the pool, the
// differential soak mode (Soak) runs every registered engine against
// every implemented criterion — du-opacity against final-state opacity
// (Definition 4), opacity (Definition 5), TMS2/RCO (Section 4.2) and the
// serializability baselines — over a randomized workload grid, records
// divergences between criteria, and shrinks each violating history to a
// minimal counterexample with gen.Shrink.
//
// Sharding is over independent units of work — each episode runs on a
// fresh engine, each batch entry is its own history, each exploration
// replays its own plan — so the only shared state is the result slot a
// shard owns exclusively. spec.Check is safe for concurrent use (each
// call builds its own search state and memo over an immutable history),
// which the race-enabled tests of this package and package spec pin down.
package checkfarm

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"duopacity/internal/harness"
	"duopacity/internal/history"
	"duopacity/internal/spec"
	"duopacity/internal/stm"
)

// resolveJobs clamps a worker count: 0 (or negative) means GOMAXPROCS,
// and no more workers than shards are spawned.
func resolveJobs(jobs, shards int) int {
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > shards {
		jobs = shards
	}
	if jobs < 1 {
		jobs = 1
	}
	return jobs
}

// shard fans work(0..n-1) out over a pool of jobs workers. Shards are
// claimed from an atomic counter, so completion order is arbitrary — the
// caller must write results into per-shard slots. The first error (or a
// context cancellation) stops the pool and is returned; in-flight shards
// finish, unclaimed shards never start.
func shard(ctx context.Context, n, jobs int, work func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	jobs = resolveJobs(jobs, n)
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		errOnce  sync.Once
		firstErr error
	)
	for w := 0; w < jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if err := work(i); err != nil {
					errOnce.Do(func() { firstErr = err })
					cancel()
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// CertifyStream runs the certification of cfg sharded over jobs workers
// and delivers every episode report strictly in episode order through
// emit, without buffering the whole run: a bounded reorder window holds
// back workers that run too far ahead of the stream, so memory stays
// O(jobs) for arbitrarily large certifications (ROADMAP item: stream
// episode results instead of buffering []EpisodeReport).
//
// emit is called from worker goroutines but never concurrently, and the
// calls arrive in episode order 0, 1, 2, ...; an error from emit cancels
// the remaining episodes and is returned. jobs <= 0 uses GOMAXPROCS.
// A shard whose episode panics (a crashed worker, or an injected
// chaos.FarmFaults strike) is retried with backoff and, past its retries,
// degrades into harness.DegradedEpisode — an explicitly-undecided report
// carrying the panic reason — instead of failing the run; ordinary errors
// keep the historical first-error-cancels semantics. See protect.go.
func CertifyStream(ctx context.Context, cfg harness.CertConfig, criteria []spec.Criterion, jobs int, emit func(ep int, r harness.EpisodeReport) error) error {
	cfg = cfg.WithDefaults()
	run := protect(ctx, func(ep int) (harness.EpisodeReport, error) {
		return harness.CertifyEpisodeCtx(ctx, cfg, ep, criteria)
	}, func(_ int, err *ShardPanicError) harness.EpisodeReport {
		return harness.DegradedEpisode(criteria, err.Error())
	})
	return streamOrdered(ctx, cfg.Episodes, jobs, run, emit)
}

// streamOrdered fans run(0..n-1) across jobs workers and delivers the
// results in index order through emit, holding back workers that get more
// than a bounded window ahead of the stream. Any error — from run, emit
// or the context — wakes every window-blocked worker before returning.
func streamOrdered[T any](ctx context.Context, n, jobs int, run func(ep int) (T, error), emit func(ep int, r T) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	jobs = resolveJobs(jobs, n)
	window := 4 * jobs
	if window < 16 {
		window = 16
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		cond     = sync.NewCond(&mu)
		next     int // next episode to emit
		pending  = make(map[int]T, window)
		firstErr error
		stopping bool
	)
	// Record the first failure and wake every window-blocked worker. The
	// watcher below funnels caller cancellation through the same path.
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil && err != nil {
			firstErr = err
		}
		stopping = true
		mu.Unlock()
		cond.Broadcast()
		cancel()
	}
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		<-ctx.Done()
		mu.Lock()
		stopping = true
		mu.Unlock()
		cond.Broadcast()
	}()

	err := shard(ctx, n, jobs, func(ep int) error {
		// Bounded reorder window: episode ep may only run once the stream
		// has advanced to within window of it. The episode holding `next`
		// is never blocked here, so the stream always progresses.
		mu.Lock()
		for ep >= next+window && !stopping {
			cond.Wait()
		}
		if stopping {
			mu.Unlock()
			return ctx.Err()
		}
		mu.Unlock()

		r, rerr := run(ep)
		if rerr != nil {
			fail(rerr)
			return rerr
		}

		mu.Lock()
		if stopping {
			mu.Unlock()
			return ctx.Err()
		}
		pending[ep] = r
		for {
			rr, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			if e := emit(next, rr); e != nil {
				mu.Unlock()
				fail(e)
				return e
			}
			next++
		}
		mu.Unlock()
		cond.Broadcast()
		return nil
	})
	cancel()
	<-watcherDone
	mu.Lock()
	ferr := firstErr
	mu.Unlock()
	if ferr != nil {
		return ferr
	}
	return err
}

// CertifyOnline is the online certification mode of the farm: each
// episode runs with a spec.Monitor attached to its recorder
// (harness.CertifyEpisodeOnline), so events stream through the
// incremental checker as the engine produces them instead of being
// materialized into histories and batch-checked afterwards. Episodes are
// sharded over jobs workers and folded strictly in episode order, so the
// aggregated statistics are deterministic whenever the per-episode
// histories are (always under cfg.Interleaved). jobs <= 0 uses
// GOMAXPROCS.
func CertifyOnline(ctx context.Context, cfg harness.CertConfig, c spec.Criterion, jobs int) (harness.OnlineStats, error) {
	cfg = cfg.WithDefaults()
	stats := harness.OnlineStats{Engine: cfg.Workload.Engine, Criterion: c}
	run := protect(ctx, func(ep int) (harness.OnlineReport, error) {
		return harness.CertifyEpisodeOnlineCtx(ctx, cfg, ep, c)
	}, func(_ int, err *ShardPanicError) harness.OnlineReport {
		return harness.OnlineReport{
			Verdict:        spec.Verdict{Criterion: c, Undecided: true, Reason: "degraded: " + err.Error()},
			ViolationAt:    -1,
			DegradedReason: err.Error(),
		}
	})
	err := streamOrdered(ctx, cfg.Episodes, jobs, run, func(_ int, r harness.OnlineReport) error {
		stats.AddEpisode(r)
		return nil
	})
	if err != nil {
		return harness.OnlineStats{Engine: cfg.Workload.Engine, Criterion: c}, err
	}
	return stats, nil
}

// Certify is harness.Certify sharded over jobs workers: episodes are
// distributed across the pool, each seeded purely from the base seed and
// its episode index (exactly as the sequential path seeds them), and the
// reports are folded in episode order via CertifyStream, so the returned
// statistics are byte-identical to harness.Certify for the same
// configuration whenever the per-episode histories are — always under
// cfg.Interleaved, and for any engine whose per-episode verdicts don't
// depend on scheduling luck. jobs <= 0 uses GOMAXPROCS.
func Certify(ctx context.Context, cfg harness.CertConfig, criteria []spec.Criterion, jobs int) (harness.CertStats, error) {
	cfg = cfg.WithDefaults()
	stats := harness.NewCertStats(cfg.Workload.Engine)
	err := CertifyStream(ctx, cfg, criteria, jobs, func(_ int, r harness.EpisodeReport) error {
		stats.AddEpisode(criteria, r)
		return nil
	})
	if err != nil {
		return harness.NewCertStats(cfg.Workload.Engine), err
	}
	return stats, nil
}

// Sweep is harness.Sweep sharded over jobs workers. Points come back in
// the same (engine, goroutines, read-fraction) grid order the sequential
// path produces. Concurrent cells contend for the CPUs, so throughput
// numbers are only comparable within a single jobs setting; use jobs = 1
// (or harness.Sweep) for publication-grade measurements and the parallel
// mode for functional sweeps and CI smoke.
func Sweep(ctx context.Context, cfg harness.SweepConfig, jobs int) ([]harness.SweepPoint, error) {
	type cell struct {
		engine string
		g      int
		rf     float64
	}
	var cells []cell
	for _, eng := range cfg.Engines {
		for _, g := range cfg.Goroutines {
			for _, rf := range cfg.ReadFractions {
				cells = append(cells, cell{eng, g, rf})
			}
		}
	}
	points := make([]harness.SweepPoint, len(cells))
	err := shard(ctx, len(cells), jobs, func(i int) error {
		c := cells[i]
		w := cfg.Base
		w.Engine = c.engine
		w.Goroutines = c.g
		w.ReadFraction = c.rf
		stats, rerr := harness.Run(w)
		if rerr != nil {
			return rerr
		}
		points[i] = harness.SweepPoint{Engine: c.engine, Goroutines: c.g, ReadFraction: c.rf, Stats: stats}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return points, nil
}

// ExplorePlans runs the exhaustive schedule exploration of
// harness.ExplorePlan for every plan, sharded across jobs workers, and
// returns the reports in input order: results[i] is the per-plan verdict
// (proven / violation with the pinned causing schedule / budget
// exhausted) for plans[i]. Explorations are independent — each replays
// its plan on fresh engines — and each is deterministic, so the sharded
// reports are byte-identical to a sequential loop (the Certify
// discipline). jobs <= 0 uses GOMAXPROCS. It backs ducheck's -explore
// batch mode and stmbench's explore subcommand.
//
// cfg is shared by every shard: with jobs > 1 a cfg.OnSchedule callback
// is invoked concurrently from all workers and must be safe for
// concurrent use (a plain map accumulator, fine under a single
// ExplorePlan call, races here).
// Cancellation propagates into every exploration's replay loop and
// monitor checks (harness.ExplorePlanCtx), and a shard panicking past its
// retries degrades into a BudgetExhausted report with DegradedReason set
// instead of failing the batch.
func ExplorePlans(ctx context.Context, engine string, plans []stm.Plan, cfg harness.ExploreConfig, jobs int) ([]harness.ExploreReport, error) {
	crit := cfg.Criterion
	if crit == 0 {
		crit = spec.DUOpacity
	}
	results := make([]harness.ExploreReport, len(plans))
	err := shard(ctx, len(plans), jobs, func(i int) error {
		return protectShard(ctx, i, func() error {
			r, rerr := harness.ExplorePlanCtx(ctx, engine, plans[i], cfg)
			if rerr != nil {
				return rerr
			}
			results[i] = r
			return nil
		}, func(pe *ShardPanicError) {
			results[i] = harness.ExploreReport{
				Engine: engine, Criterion: crit, Plan: plans[i],
				Outcome: harness.BudgetExhausted, DegradedReason: pe.Error(),
			}
		})
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// CheckBatch checks every history against every criterion across the
// pool and returns the verdicts with results[i][j] corresponding to
// (hs[i], criteria[j]). It backs ducheck's -parallel batch mode.
// Cancellation propagates into each check's search loop
// (spec.WithContext), turning remaining checks into prompt undecided
// verdicts; a shard panicking past its retries degrades its row into
// explicit undecided verdicts carrying the panic reason.
func CheckBatch(ctx context.Context, hs []*history.History, criteria []spec.Criterion, jobs int, opts ...spec.Option) ([][]spec.Verdict, error) {
	if ctx != nil {
		// Re-cap before appending: the variadic backing array may be shared
		// with the caller.
		opts = append(opts[:len(opts):len(opts)], spec.WithContext(ctx))
	}
	results := make([][]spec.Verdict, len(hs))
	err := shard(ctx, len(hs), jobs, func(i int) error {
		return protectShard(ctx, i, func() error {
			vs := make([]spec.Verdict, len(criteria))
			for j, c := range criteria {
				vs[j] = spec.Check(hs[i], c, opts...)
			}
			results[i] = vs
			return nil
		}, func(pe *ShardPanicError) {
			vs := make([]spec.Verdict, len(criteria))
			for j, c := range criteria {
				vs[j] = spec.Verdict{Criterion: c, Undecided: true, Reason: "degraded: " + pe.Error()}
			}
			results[i] = vs
		})
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}
