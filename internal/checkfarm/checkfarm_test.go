package checkfarm

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"duopacity/internal/harness"
	"duopacity/internal/history"
	"duopacity/internal/litmus"
	"duopacity/internal/spec"
)

func interleavedCfg(engine string, episodes int) harness.CertConfig {
	return harness.CertConfig{
		Workload: harness.Workload{
			Engine:           engine,
			Objects:          4,
			Goroutines:       4,
			TxnsPerGoroutine: 3,
			OpsPerTxn:        4,
			ReadFraction:     0.5,
			Seed:             7,
		},
		Episodes:    episodes,
		Interleaved: true,
	}
}

// TestCertifyMatchesSequential is the pipeline's core guarantee: sharded
// certification aggregates to byte-identical statistics, at every worker
// count, for deterministic episodes.
func TestCertifyMatchesSequential(t *testing.T) {
	criteria := []spec.Criterion{spec.DUOpacity, spec.FinalStateOpacity, spec.StrictSerializability}
	for _, engine := range []string{"tl2", "ple", "gl"} {
		cfg := interleavedCfg(engine, 12)
		want, err := harness.Certify(cfg, criteria)
		if err != nil {
			t.Fatalf("%s: sequential: %v", engine, err)
		}
		for _, jobs := range []int{1, 2, 4, 0} {
			got, err := Certify(context.Background(), cfg, criteria, jobs)
			if err != nil {
				t.Fatalf("%s/jobs=%d: %v", engine, jobs, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/jobs=%d: parallel stats differ:\ngot  %#v\nwant %#v", engine, jobs, got, want)
			}
			gotTable := harness.FormatCertTable(got, criteria)
			wantTable := harness.FormatCertTable(want, criteria)
			if gotTable != wantTable {
				t.Errorf("%s/jobs=%d: rendered tables differ:\n%s\nvs\n%s", engine, jobs, gotTable, wantTable)
			}
		}
	}
}

func TestCertifyUnknownEngine(t *testing.T) {
	cfg := harness.CertConfig{Workload: harness.Workload{Engine: "bogus"}, Episodes: 4}
	if _, err := Certify(context.Background(), cfg, []spec.Criterion{spec.DUOpacity}, 2); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestCertifyCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Certify(ctx, interleavedCfg("tl2", 8), []spec.Criterion{spec.DUOpacity}, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestCheckBatchOrderAndVerdicts(t *testing.T) {
	cases := litmus.Cases()
	hs := make([]*history.History, len(cases))
	for i, c := range cases {
		hs[i] = c.H
	}
	criteria := []spec.Criterion{spec.DUOpacity, spec.FinalStateOpacity}
	got, err := CheckBatch(context.Background(), hs, criteria, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(hs) {
		t.Fatalf("got %d results, want %d", len(got), len(hs))
	}
	for i, h := range hs {
		for j, c := range criteria {
			want := spec.Check(h, c)
			if got[i][j].OK != want.OK || got[i][j].Criterion != want.Criterion {
				t.Errorf("case %q criterion %s: got OK=%v, want OK=%v",
					cases[i].Name, c, got[i][j].OK, want.OK)
			}
		}
	}
}

func TestSweepParallelGridOrder(t *testing.T) {
	cfg := harness.SweepConfig{
		Engines:       []string{"gl", "norec"},
		Goroutines:    []int{1, 2},
		ReadFractions: []float64{0.5},
		Base: harness.Workload{
			Objects:          4,
			TxnsPerGoroutine: 20,
			OpsPerTxn:        2,
			Seed:             1,
		},
	}
	points, err := Sweep(context.Background(), cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := harness.Sweep(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != len(want) {
		t.Fatalf("got %d points, want %d", len(points), len(want))
	}
	for i := range points {
		if points[i].Engine != want[i].Engine ||
			points[i].Goroutines != want[i].Goroutines ||
			points[i].ReadFraction != want[i].ReadFraction {
			t.Errorf("point %d: grid order diverged: got %s/g=%d/rf=%.2f, want %s/g=%d/rf=%.2f",
				i, points[i].Engine, points[i].Goroutines, points[i].ReadFraction,
				want[i].Engine, want[i].Goroutines, want[i].ReadFraction)
		}
		if points[i].Stats.Commits == 0 {
			t.Errorf("point %d: no commits", i)
		}
	}
}

func TestSweepUnknownEngine(t *testing.T) {
	_, err := Sweep(context.Background(), harness.SweepConfig{
		Engines:       []string{"bogus"},
		Goroutines:    []int{1},
		ReadFractions: []float64{0.5},
	}, 2)
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestResolveJobs(t *testing.T) {
	if j := resolveJobs(0, 100); j < 1 {
		t.Errorf("resolveJobs(0, 100) = %d", j)
	}
	if j := resolveJobs(8, 3); j != 3 {
		t.Errorf("resolveJobs(8, 3) = %d, want 3", j)
	}
	if j := resolveJobs(-1, 0); j != 1 {
		t.Errorf("resolveJobs(-1, 0) = %d, want 1", j)
	}
}

func TestCertifyNegativeEpisodesDefaults(t *testing.T) {
	cfg := interleavedCfg("gl", 2)
	cfg.Episodes = -1 // must fall back to the default, not panic
	stats, err := Certify(context.Background(), cfg, []spec.Criterion{spec.DUOpacity}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Episodes+stats.Skipped != 20 {
		t.Fatalf("episodes+skipped = %d, want the default 20", stats.Episodes+stats.Skipped)
	}
}
