package checkfarm

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"duopacity/internal/harness"
	"duopacity/internal/spec"
)

func streamTestConfig(episodes int) harness.CertConfig {
	return harness.CertConfig{
		Workload: harness.Workload{
			Engine:           "tl2",
			Objects:          3,
			Goroutines:       4,
			TxnsPerGoroutine: 2,
			OpsPerTxn:        3,
			ReadFraction:     0.5,
			Seed:             7,
		},
		Episodes:    episodes,
		Interleaved: true, // deterministic episodes: identical across runs and jobs
	}
}

// TestCertifyStreamOrdered pins the streaming contract: reports arrive
// strictly in episode order, exactly once each, and folding them exactly
// as the sequential path does reproduces harness.Certify's statistics
// byte-for-byte.
func TestCertifyStreamOrdered(t *testing.T) {
	cfg := streamTestConfig(24)
	criteria := []spec.Criterion{spec.DUOpacity, spec.FinalStateOpacity}

	want, err := harness.Certify(cfg, criteria)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{1, 3, 8} {
		got := harness.NewCertStats(cfg.Workload.Engine)
		seen := 0
		err := CertifyStream(context.Background(), cfg, criteria, jobs, func(ep int, r harness.EpisodeReport) error {
			if ep != seen {
				t.Fatalf("jobs=%d: episode %d emitted out of order (want %d)", jobs, ep, seen)
			}
			seen++
			got.AddEpisode(criteria, r)
			return nil
		})
		if err != nil {
			t.Fatalf("jobs=%d: %v", jobs, err)
		}
		if seen != cfg.Episodes {
			t.Fatalf("jobs=%d: emitted %d episodes, want %d", jobs, seen, cfg.Episodes)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("jobs=%d: streamed statistics differ from sequential certification\n got: %+v\nwant: %+v",
				jobs, got, want)
		}
	}
}

// TestCertifyStreamEmitError pins cancellation: an emit error stops the
// stream and is returned; no further episodes are emitted.
func TestCertifyStreamEmitError(t *testing.T) {
	cfg := streamTestConfig(32)
	criteria := []spec.Criterion{spec.DUOpacity}
	boom := errors.New("boom")
	emitted := 0
	err := CertifyStream(context.Background(), cfg, criteria, 4, func(ep int, _ harness.EpisodeReport) error {
		emitted++
		if ep == 5 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("emit error not propagated: got %v", err)
	}
	if emitted != 6 {
		t.Fatalf("emitted %d episodes after error at episode 5, want 6", emitted)
	}
}

// TestCertifyStreamContextCancel pins caller cancellation.
func TestCertifyStreamContextCancel(t *testing.T) {
	cfg := streamTestConfig(64)
	criteria := []spec.Criterion{spec.DUOpacity}
	ctx, cancel := context.WithCancel(context.Background())
	err := CertifyStream(ctx, cfg, criteria, 4, func(ep int, _ harness.EpisodeReport) error {
		if ep == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestCertifyMatchesStreamedFold re-pins the byte-identical aggregation
// claim on the exported Certify wrapper across jobs settings.
func TestCertifyMatchesStreamedFold(t *testing.T) {
	cfg := streamTestConfig(16)
	criteria := []spec.Criterion{spec.DUOpacity, spec.StrictSerializability}
	want, err := harness.Certify(cfg, criteria)
	if err != nil {
		t.Fatal(err)
	}
	for _, jobs := range []int{1, 4} {
		got, err := Certify(context.Background(), cfg, criteria, jobs)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("jobs=%d: Certify differs from sequential harness.Certify", jobs)
		}
	}
}

// TestCertifyPortfolioAgrees runs the same certification with per-check
// portfolio parallelism and asserts the accept/reject counts match the
// sequential search (episodes here are far below any node limit, so
// undecided boundaries cannot differ).
func TestCertifyPortfolioAgrees(t *testing.T) {
	cfg := streamTestConfig(12)
	criteria := []spec.Criterion{spec.DUOpacity, spec.FinalStateOpacity}
	want, err := Certify(context.Background(), cfg, criteria, 2)
	if err != nil {
		t.Fatal(err)
	}
	cfgP := cfg
	cfgP.Portfolio = 4
	got, err := Certify(context.Background(), cfgP, criteria, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range criteria {
		if got.Accepted[c] != want.Accepted[c] || got.Rejected[c] != want.Rejected[c] {
			t.Errorf("%s: portfolio certification differs: accepted %d/%d, rejected %d/%d",
				c, got.Accepted[c], want.Accepted[c], got.Rejected[c], want.Rejected[c])
		}
	}
}

// TestStreamOrderedRunErrorWakesBlockedWorkers reproduces the reorder-
// window deadlock: the worker holding the stream head (episode 0) fails
// only after the other workers have run a full window ahead and parked in
// the window wait. The failure must wake them and surface the error
// instead of hanging.
func TestStreamOrderedRunErrorWakesBlockedWorkers(t *testing.T) {
	const jobs = 4
	const window = 16 // streamOrdered's minimum window
	boom := errors.New("episode 0 failed late")
	windowFull := make(chan struct{})
	var completed atomic.Int64
	run := func(ep int) (harness.EpisodeReport, error) {
		if ep == 0 {
			// Fail only after the rest of the pool has filled the reorder
			// window (next stays 0, so workers beyond it park in cond.Wait).
			<-windowFull
			time.Sleep(20 * time.Millisecond)
			return harness.EpisodeReport{}, boom
		}
		// With next stuck at 0, only episodes 1..window-1 can run before
		// every other worker parks at the window boundary.
		if completed.Add(1) == window-1 {
			close(windowFull)
		}
		return harness.EpisodeReport{Skipped: true}, nil
	}
	done := make(chan error, 1)
	go func() {
		done <- streamOrdered(context.Background(), window+2*jobs+4, jobs, run,
			func(int, harness.EpisodeReport) error { return nil })
	}()
	select {
	case err := <-done:
		if !errors.Is(err, boom) {
			t.Fatalf("want the run error, got %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("streamOrdered deadlocked after a late run error (window-blocked workers never woken)")
	}
}

// TestCertifyStreamLargeWindow smoke-tests a certification larger than the
// reorder window with more workers than window slots would naively allow.
func TestCertifyStreamLargeWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("large stream in -short mode")
	}
	cfg := streamTestConfig(100)
	criteria := []spec.Criterion{spec.DUOpacity}
	last := -1
	err := CertifyStream(context.Background(), cfg, criteria, 0, func(ep int, _ harness.EpisodeReport) error {
		if ep != last+1 {
			return fmt.Errorf("gap: %d after %d", ep, last)
		}
		last = ep
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != cfg.Episodes-1 {
		t.Fatalf("stream stopped at %d, want %d", last, cfg.Episodes-1)
	}
}
