package checkfarm

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"text/tabwriter"

	"duopacity/internal/gen"
	"duopacity/internal/harness"
	"duopacity/internal/histio"
	"duopacity/internal/history"
	"duopacity/internal/spec"
)

// SoakEngines is the default engine set of the differential soak: every
// registered engine family (the validating etl variant is covered by the
// base etl knob and can be added explicitly), including the
// parallel-certification pdur engine.
func SoakEngines() []string {
	return []string{"gl", "ple", "norec", "tl2", "etl", "dstm", "pdur"}
}

// SoakEngineMatrix is the extended soak grid: the engine families plus a
// bounded sample of contention-managed cells — one cell per CM policy,
// spread across the CM-capable engines so every policy and every
// CM-capable engine family appears without multiplying the grid (CI
// time stays near-flat; the full matrix remains reachable by listing
// names explicitly).
func SoakEngineMatrix() []string {
	return append(SoakEngines(),
		"tl2+karma", "norec+backoff", "dstm+greedy", "pdur+backoff", "etl+karma")
}

// SoakConfig parameterizes a differential soak run.
type SoakConfig struct {
	// Engines to exercise (default SoakEngines()).
	Engines []string
	// Criteria to check each recorded history against (default
	// spec.AllCriteria()).
	Criteria []spec.Criterion
	// Rounds of the randomized workload grid (default 6). Every engine
	// sees the same per-round workload shape, once under real concurrency
	// and once under the deterministic interleaved scheduler, so the
	// engines are compared on identical plans.
	Rounds int
	// Seed randomizes the workload grid; rounds derive their shapes and
	// seeds purely from it.
	Seed int64
	// NodeLimit bounds each exact check and each shrinking re-check
	// (default 300_000).
	NodeLimit int
	// MaxTxns skips histories too large for exact checking (default 40).
	MaxTxns int
	// Portfolio > 1 runs each exact check as a parallel portfolio search
	// with that many workers (spec.WithParallelism). Combine with a small
	// jobs count when a few hard cells dominate the soak.
	Portfolio int
}

// checkOpts builds the spec options shared by the soak's checks.
func (c SoakConfig) checkOpts() []spec.Option {
	opts := []spec.Option{spec.WithNodeLimit(c.NodeLimit)}
	if c.Portfolio > 1 {
		opts = append(opts, spec.WithParallelism(c.Portfolio))
	}
	return opts
}

func (c SoakConfig) withDefaults() SoakConfig {
	if len(c.Engines) == 0 {
		c.Engines = SoakEngines()
	}
	if len(c.Criteria) == 0 {
		c.Criteria = spec.AllCriteria()
	}
	if c.Rounds <= 0 {
		c.Rounds = 6
	}
	if c.NodeLimit <= 0 {
		c.NodeLimit = 300_000
	}
	if c.MaxTxns <= 0 {
		c.MaxTxns = 40
	}
	return c
}

// roundWorkload derives round r's workload shape deterministically from
// the soak seed. The shapes stay small (exact checking is exponential in
// the worst case) but contended: few objects, several threads.
func (c SoakConfig) roundWorkload(r int) harness.Workload {
	rng := rand.New(rand.NewSource(c.Seed*1_000_003 + int64(r)))
	return harness.Workload{
		Objects:          2 + rng.Intn(4), // 2..5
		Goroutines:       2 + rng.Intn(5), // 2..6
		TxnsPerGoroutine: 2 + rng.Intn(2), // 2..3
		OpsPerTxn:        2 + rng.Intn(5), // 2..6
		ReadFraction:     []float64{0.3, 0.5, 0.7}[rng.Intn(3)],
		Seed:             c.Seed + int64(r)*7_919_919,
	}
}

// SoakCell is one (engine, round, mode) observation of the soak grid.
type SoakCell struct {
	Engine string
	Round  int
	// Probe marks the deterministic interleaved execution of the round's
	// plan; otherwise the cell ran under real goroutines.
	Probe    bool
	Workload harness.Workload
	// Skipped is set when the recorded history exceeded MaxTxns.
	Skipped  bool
	Verdicts map[spec.Criterion]spec.Verdict
	History  *history.History
	// Degraded is set when the cell could not be observed at all — under
	// distributed execution (internal/certd), a worker that died past its
	// lease retries. A degraded cell is excluded from the per-criterion
	// counts like a skipped one, but the degradation is always reported,
	// never a silent drop (the PR 7 contract).
	Degraded string
}

// Divergence records a history on which the criteria disagree — or, when
// Accepted is empty, a history every criterion rejects. Minimal is the
// greedily shrunk counterexample that still violates Criterion (the
// strongest rejecting criterion in the soak's criteria order).
type Divergence struct {
	Engine    string
	Round     int
	Probe     bool
	Accepted  []spec.Criterion
	Rejected  []spec.Criterion
	Criterion spec.Criterion
	Reason    string
	History   *history.History
	Minimal   *history.History
}

// SoakResult aggregates a differential soak run.
type SoakResult struct {
	Cells       []SoakCell
	Divergences []Divergence
	// Accepted/Rejected/Undecided count decided cells per engine and
	// criterion (skipped cells excluded).
	Accepted, Rejected, Undecided map[string]map[spec.Criterion]int
	// Degraded counts cells lost to dead workers under distributed
	// execution; always 0 for the in-process farm.
	Degraded int
}

// MinimalCounterexample returns the smallest shrunk counterexample the
// soak found for the engine under the criterion, or nil.
func (r *SoakResult) MinimalCounterexample(engine string, c spec.Criterion) *history.History {
	var best *history.History
	for _, d := range r.Divergences {
		if d.Engine != engine || d.Criterion != c || d.Minimal == nil {
			continue
		}
		if best == nil || d.Minimal.Len() < best.Len() {
			best = d.Minimal
		}
	}
	return best
}

// soakTask names one cell of the soak grid. The task order — rounds
// outermost, engines inner, the concurrent cell before its interleaved
// probe — is the soak's canonical shard order, shared by the in-process
// farm and the distributed one (certd jobs index shards into this list).
type soakTask struct {
	engine string
	round  int
	probe  bool
}

// soakTasks expands the grid of a defaulted config into its canonical
// task list.
func soakTasks(cfg SoakConfig) []soakTask {
	var tasks []soakTask
	for r := 0; r < cfg.Rounds; r++ {
		for _, e := range cfg.Engines {
			tasks = append(tasks, soakTask{engine: e, round: r, probe: false})
			tasks = append(tasks, soakTask{engine: e, round: r, probe: true})
		}
	}
	return tasks
}

// runSoakCell observes one cell: run the task's workload (recorded or
// interleaved probe) and check the recorded history against every
// criterion. It is the pure compute unit of the soak — a function of
// (defaulted config, task) with no shared state — which is what lets a
// certd worker run it on another machine.
func runSoakCell(cfg SoakConfig, t soakTask) (SoakCell, error) {
	w := cfg.roundWorkload(t.round)
	w.Engine = t.engine
	cell := SoakCell{Engine: t.engine, Round: t.round, Probe: t.probe, Workload: w}
	var (
		h    *history.History
		rerr error
	)
	if t.probe {
		h, _, rerr = harness.RunInterleaved(w)
	} else {
		h, _, rerr = harness.RunRecorded(w)
	}
	if rerr != nil {
		return cell, fmt.Errorf("checkfarm: soak %s round %d: %w", t.engine, t.round, rerr)
	}
	cell.History = h
	if h.NumTxns() > cfg.MaxTxns {
		cell.Skipped = true
		return cell, nil
	}
	checkOpts := cfg.checkOpts()
	cell.Verdicts = make(map[spec.Criterion]spec.Verdict, len(cfg.Criteria))
	for _, c := range cfg.Criteria {
		cell.Verdicts[c] = spec.Check(h, c, checkOpts...)
	}
	return cell, nil
}

// Soak runs the differential soak: every engine under every criterion over
// the randomized workload grid, cells sharded across jobs workers. Each
// violating history is shrunk to a minimal counterexample before being
// recorded as a divergence. jobs <= 0 uses GOMAXPROCS.
func Soak(ctx context.Context, cfg SoakConfig, jobs int) (*SoakResult, error) {
	cfg = cfg.withDefaults()
	tasks := soakTasks(cfg)
	cells := make([]SoakCell, len(tasks))
	err := shard(ctx, len(tasks), jobs, func(i int) error {
		cell, cerr := runSoakCell(cfg, tasks[i])
		if cerr != nil {
			return cerr
		}
		cells[i] = cell
		return nil
	})
	if err != nil {
		return nil, err
	}
	return foldSoak(ctx, cfg, cells, jobs)
}

// foldSoak aggregates observed cells into the soak result: per-criterion
// counts, divergence extraction, and greedy shrinking of each divergent
// history. It is the fold entry point of the soak — given the cells in
// canonical task order (however they were computed: the in-process shard
// pool or certd workers), it reproduces Soak's aggregation byte for
// byte. cfg must be the same (defaulted) config the cells were computed
// under, since shrinking re-checks with the soak's node limit.
func foldSoak(ctx context.Context, cfg SoakConfig, cells []SoakCell, jobs int) (*SoakResult, error) {
	checkOpts := cfg.checkOpts()
	res := &SoakResult{
		Cells:     cells,
		Accepted:  make(map[string]map[spec.Criterion]int),
		Rejected:  make(map[string]map[spec.Criterion]int),
		Undecided: make(map[string]map[spec.Criterion]int),
	}
	for _, e := range cfg.Engines {
		res.Accepted[e] = make(map[spec.Criterion]int)
		res.Rejected[e] = make(map[spec.Criterion]int)
		res.Undecided[e] = make(map[spec.Criterion]int)
	}
	// Divergence extraction and shrinking, also sharded: shrinking re-runs
	// the checker O(events) times per counterexample.
	divIdx := make([]int, 0, len(cells))
	for i, cell := range cells {
		if cell.Degraded != "" {
			res.Degraded++
			continue
		}
		if cell.Skipped {
			continue
		}
		for _, c := range cfg.Criteria {
			v := cell.Verdicts[c]
			switch {
			case v.Undecided:
				res.Undecided[cell.Engine][c]++
			case v.OK:
				res.Accepted[cell.Engine][c]++
			default:
				res.Rejected[cell.Engine][c]++
			}
		}
		if firstRejected(cfg.Criteria, cell.Verdicts) != 0 {
			divIdx = append(divIdx, i)
		}
	}
	divs := make([]Divergence, len(divIdx))
	err := shard(ctx, len(divIdx), jobs, func(j int) error {
		cell := cells[divIdx[j]]
		target := firstRejected(cfg.Criteria, cell.Verdicts)
		d := Divergence{
			Engine:    cell.Engine,
			Round:     cell.Round,
			Probe:     cell.Probe,
			Criterion: target,
			History:   cell.History,
		}
		for _, c := range cfg.Criteria {
			v := cell.Verdicts[c]
			switch {
			case v.Undecided:
			case v.OK:
				d.Accepted = append(d.Accepted, c)
			default:
				d.Rejected = append(d.Rejected, c)
			}
		}
		// Shrink while preserving the cell's full differential signature:
		// every originally-decided criterion must keep its verdict, so the
		// minimal history demonstrates the same separation (not merely
		// some violation of the target — a plain sourceless read would
		// satisfy that and lose the divergence).
		d.Minimal = gen.Shrink(cell.History, func(g *history.History) bool {
			for _, c := range d.Accepted {
				if v := spec.Check(g, c, checkOpts...); !v.OK {
					return false
				}
			}
			for _, c := range d.Rejected {
				if v := spec.Check(g, c, checkOpts...); v.OK || v.Undecided {
					return false
				}
			}
			return true
		})
		d.Reason = spec.Check(d.Minimal, target, checkOpts...).Reason
		divs[j] = d
		return nil
	})
	if err != nil {
		return nil, err
	}
	res.Divergences = divs
	return res, nil
}

// firstRejected returns the first criterion (in order) with a decided
// rejection, or 0 when every criterion accepts or is undecided.
func firstRejected(criteria []spec.Criterion, verdicts map[spec.Criterion]spec.Verdict) spec.Criterion {
	for _, c := range criteria {
		if v := verdicts[c]; !v.OK && !v.Undecided {
			return c
		}
	}
	return 0
}

// FormatSoakReport renders the aggregate table and the shrunk
// counterexamples: per engine and criterion, accepted/rejected(/undecided)
// cell counts, then one minimal counterexample per (engine, criterion)
// divergence class in histio text format.
func FormatSoakReport(cfg SoakConfig, res *SoakResult) string {
	cfg = cfg.withDefaults()
	var b strings.Builder
	fmt.Fprintf(&b, "differential soak: %d engines x %d criteria, %d cells (%d divergent)\n",
		len(cfg.Engines), len(cfg.Criteria), len(res.Cells), len(res.Divergences))
	if res.Degraded > 0 {
		fmt.Fprintf(&b, "%d cell(s) degraded: lost to dead workers, excluded from the counts below\n", res.Degraded)
	}
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "engine")
	for _, c := range cfg.Criteria {
		fmt.Fprintf(tw, "\t%s", c)
	}
	fmt.Fprintln(tw)
	for _, e := range cfg.Engines {
		fmt.Fprint(tw, e)
		for _, c := range cfg.Criteria {
			cellTxt := fmt.Sprintf("%d/%d", res.Accepted[e][c], res.Rejected[e][c])
			if u := res.Undecided[e][c]; u > 0 {
				cellTxt += fmt.Sprintf("(%d?)", u)
			}
			fmt.Fprintf(tw, "\t%s", cellTxt)
		}
		fmt.Fprintln(tw)
	}
	_ = tw.Flush()
	b.WriteString("cells are accepted/rejected counts (undecided in parentheses)\n")

	// One minimal counterexample per (engine, criterion), smallest first.
	type classKey struct {
		engine string
		c      spec.Criterion
	}
	best := make(map[classKey]Divergence)
	for _, d := range res.Divergences {
		k := classKey{d.Engine, d.Criterion}
		cur, ok := best[k]
		// Prefer a true divergence (some criterion still accepts) over an
		// all-reject violation; among equals, the smaller counterexample.
		switch {
		case !ok:
		case len(d.Accepted) > 0 && len(cur.Accepted) == 0:
		case len(d.Accepted) > 0 == (len(cur.Accepted) > 0) && d.Minimal.Len() < cur.Minimal.Len():
		default:
			continue
		}
		best[k] = d
	}
	keys := make([]classKey, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].engine != keys[j].engine {
			return keys[i].engine < keys[j].engine
		}
		return keys[i].c < keys[j].c
	})
	for _, k := range keys {
		d := best[k]
		mode := "concurrent"
		if d.Probe {
			mode = "interleaved probe"
		}
		fmt.Fprintf(&b, "\n%s violates %s (round %d, %s; shrunk %d -> %d events)\n",
			d.Engine, d.Criterion, d.Round, mode, d.History.Len(), d.Minimal.Len())
		fmt.Fprintf(&b, "  reason: %s\n", d.Reason)
		if len(d.Accepted) > 0 {
			names := make([]string, len(d.Accepted))
			for i, c := range d.Accepted {
				names[i] = c.String()
			}
			fmt.Fprintf(&b, "  still accepted by: %s\n", strings.Join(names, ", "))
		}
		for _, line := range strings.Split(strings.TrimRight(histio.FormatString(d.Minimal), "\n"), "\n") {
			fmt.Fprintf(&b, "  | %s\n", line)
		}
	}
	return b.String()
}
