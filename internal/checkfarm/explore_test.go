package checkfarm

import (
	"context"
	"testing"

	"duopacity/internal/harness"
	"duopacity/internal/histio"
	"duopacity/internal/spec"
	"duopacity/internal/stm"
)

func explorePlans() []stm.Plan {
	return []stm.Plan{
		stm.MustParsePlan("w0\nr0 r0"),
		stm.MustParsePlan("r0 w0\nr0 w0"),
		stm.MustParsePlan("w0 r1\nr0 w1"),
		stm.MustParsePlan("w0 | r0\nr0"),
	}
}

// TestExplorePlansMatchesSequential: the sharded exploration must return
// exactly the reports a sequential loop produces, in input order.
func TestExplorePlansMatchesSequential(t *testing.T) {
	plans := explorePlans()
	for _, eng := range []string{"tl2", "ple"} {
		var want []harness.ExploreReport
		for _, p := range plans {
			r, err := harness.ExplorePlan(eng, p, harness.ExploreConfig{})
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, r)
		}
		for _, jobs := range []int{1, 4} {
			got, err := ExplorePlans(context.Background(), eng, plans, harness.ExploreConfig{}, jobs)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("%s jobs=%d: %d reports, want %d", eng, jobs, len(got), len(want))
			}
			for i := range got {
				if got[i].Outcome != want[i].Outcome || got[i].Schedules != want[i].Schedules ||
					got[i].Steps != want[i].Steps || got[i].SleepPruned != want[i].SleepPruned ||
					got[i].PrefixCut != want[i].PrefixCut {
					t.Errorf("%s jobs=%d plan %d: report diverged: %+v vs %+v", eng, jobs, i, got[i], want[i])
				}
				gv, wv := got[i].Violation, want[i].Violation
				if (gv == nil) != (wv == nil) {
					t.Fatalf("%s jobs=%d plan %d: violation presence diverged", eng, jobs, i)
				}
				if gv != nil && histio.FormatString(gv.History) != histio.FormatString(wv.History) {
					t.Errorf("%s jobs=%d plan %d: pinned violations diverged", eng, jobs, i)
				}
			}
		}
	}
}

// TestExplorePlansError: an invalid engine fails the whole batch.
func TestExplorePlansError(t *testing.T) {
	_, err := ExplorePlans(context.Background(), "bogus", explorePlans(), harness.ExploreConfig{}, 2)
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestCertifyExploreMode: CertConfig.Explore routes the farm's episodes
// through exhaustive exploration — the deferred-update engine's episodes
// are proven (accepted), the in-place engine's refuted (rejected), and
// the sharded statistics equal the sequential ones.
func TestCertifyExploreMode(t *testing.T) {
	criteria := []spec.Criterion{spec.DUOpacity}
	base := harness.CertConfig{
		Workload: harness.Workload{
			Objects:          2,
			Goroutines:       2,
			TxnsPerGoroutine: 1,
			OpsPerTxn:        2,
			ReadFraction:     0.5,
			Seed:             7,
			MaxAttempts:      3,
		},
		Episodes: 6,
		Explore:  true,
	}

	cfg := base
	cfg.Workload.Engine = "tl2"
	seq, err := harness.Certify(cfg, criteria)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Rejected[spec.DUOpacity] != 0 || seq.Undecided[spec.DUOpacity] != 0 {
		t.Errorf("tl2 explore-certify: %d rejected, %d undecided; want none (reason %q)",
			seq.Rejected[spec.DUOpacity], seq.Undecided[spec.DUOpacity], seq.FirstReason[spec.DUOpacity])
	}
	par, err := Certify(context.Background(), cfg, criteria, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.Accepted[spec.DUOpacity] != seq.Accepted[spec.DUOpacity] ||
		par.Rejected[spec.DUOpacity] != seq.Rejected[spec.DUOpacity] ||
		par.FirstReason[spec.DUOpacity] != seq.FirstReason[spec.DUOpacity] {
		t.Errorf("sharded explore-certify diverged from sequential: %+v vs %+v", par, seq)
	}

	cfg = base
	cfg.Workload.Engine = "ple"
	cfg.Workload.ReadFraction = 0.6 // ensure reads appear alongside writes
	stats, err := harness.Certify(cfg, criteria)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rejected[spec.DUOpacity] == 0 {
		t.Error("ple explore-certify found no violating plan")
	}
	if stats.FirstReason[spec.DUOpacity] == "" {
		t.Error("missing pinned schedule in rejection reason")
	}
}

// TestCertifyExploreModeRejectsBadCriterion: non-monitorable criteria
// cannot be proven by exploration and must error loudly.
func TestCertifyExploreModeRejectsBadCriterion(t *testing.T) {
	cfg := harness.CertConfig{
		Workload: harness.Workload{Engine: "tl2", Objects: 2, Goroutines: 2, TxnsPerGoroutine: 1, OpsPerTxn: 1},
		Episodes: 1,
		Explore:  true,
	}
	if _, err := harness.Certify(cfg, []spec.Criterion{spec.TMS2}); err == nil {
		t.Fatal("TMS2 accepted in explore mode")
	}
}
