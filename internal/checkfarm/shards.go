// This file is the farm's process boundary: serializable descriptions of
// farm jobs (JobSpec), of their independent work units (shards), and of
// per-shard results (ShardResult), plus the two entry points a
// distributed deployment needs — RunShard, the worker-side compute of
// one shard, and FoldJob, the coordinator-side ordered aggregation. The
// contract is the one the in-process farm has pinned since PR 1: a shard
// is a pure function of (spec, index), results are folded strictly in
// shard order, and the folded report is byte-identical to the in-process
// farm's for the same spec (TestFoldMatchesLocalFarm). internal/certd
// ships these types as JSON between its coordinator and workers;
// histories, plans and witnesses travel in the histio / stm text
// formats, which are lossless for everything the folds consume.
package checkfarm

import (
	"context"
	"fmt"
	"strings"

	"duopacity/internal/harness"
	"duopacity/internal/histio"
	"duopacity/internal/spec"
	"duopacity/internal/stm"
	"duopacity/internal/stm/engines"
)

// ShardKind names the farm mode a job distributes.
type ShardKind string

const (
	// KindCertify shards the episodes of Certify: shard i is episode i of
	// the certification config.
	KindCertify ShardKind = "certify"
	// KindExplore shards the plans of ExplorePlans: shard i is the
	// exhaustive exploration of plan i.
	KindExplore ShardKind = "explore"
	// KindCheck shards the histories of CheckBatch: shard i checks
	// history i against every requested criterion.
	KindCheck ShardKind = "check"
	// KindSoak shards the cells of Soak: shard i is cell i of the
	// canonical (round, engine, mode) grid order.
	KindSoak ShardKind = "soak"
)

// JobSpec is a complete, serializable description of one farm job. Kind
// selects the mode; exactly the matching payload field must be set.
type JobSpec struct {
	Kind    ShardKind   `json:"kind"`
	Certify *CertifyJob `json:"certify,omitempty"`
	Explore *ExploreJob `json:"explore,omitempty"`
	Check   *CheckJob   `json:"check,omitempty"`
	Soak    *SoakJob    `json:"soak,omitempty"`
}

// CertifyJob distributes Certify: each shard runs one episode.
type CertifyJob struct {
	Config   harness.CertConfig `json:"config"`
	Criteria []spec.Criterion   `json:"criteria"`
}

// ExploreJob distributes ExplorePlans: each shard explores one plan.
type ExploreJob struct {
	Engine string                `json:"engine"`
	Plans  []WirePlan            `json:"plans"`
	Config harness.ExploreConfig `json:"config"`
}

// CheckJob distributes CheckBatch: each shard checks one history (histio
// text format) against every criterion. NodeLimit 0 leaves the searches
// unbounded, as ducheck's batch mode does.
type CheckJob struct {
	Histories []string         `json:"histories"`
	Criteria  []spec.Criterion `json:"criteria"`
	NodeLimit int              `json:"node_limit,omitempty"`
}

// SoakJob distributes the differential soak: each shard observes one
// cell of the canonical grid; divergence extraction and shrinking run at
// the fold.
type SoakJob struct {
	Config SoakConfig `json:"config"`
}

// WirePlan carries an stm.Plan as text plus its explicit object count
// (ParsePlan infers Objects from the largest index used, which loses
// planned-but-untouched objects).
type WirePlan struct {
	Objects int    `json:"objects"`
	Text    string `json:"text"`
}

// WirePlanOf encodes a plan.
func WirePlanOf(p stm.Plan) WirePlan {
	return WirePlan{Objects: p.Objects, Text: p.String()}
}

// Plan decodes the plan back.
func (w WirePlan) Plan() (stm.Plan, error) {
	p, err := stm.ParsePlan(w.Text)
	if err != nil {
		return stm.Plan{}, err
	}
	if w.Objects > p.Objects {
		p.Objects = w.Objects
	}
	return p, nil
}

// Normalize validates the spec and pins every defaulted knob, so that
// NumShards and RunShard become pure functions of the returned spec —
// the property that lets a coordinator and its workers agree on the work
// without sharing memory. It mirrors exactly the defaulting the
// in-process entry points apply (CertConfig.WithDefaults,
// SoakConfig.withDefaults, ExplorePlans' criterion default). Engine
// names — including "engine+cm" matrix cells — are validated through
// engines.Parse, so a bad name fails at submit time on the
// coordinator, not at lease time on some worker.
func (s JobSpec) Normalize() (JobSpec, error) {
	switch s.Kind {
	case KindCertify:
		if s.Certify == nil || len(s.Certify.Criteria) == 0 {
			return s, fmt.Errorf("checkfarm: certify job wants a payload with criteria")
		}
		c := *s.Certify
		c.Config = c.Config.WithDefaults()
		if _, _, err := engines.Parse(c.Config.Engine); err != nil {
			return s, fmt.Errorf("checkfarm: certify job: %w", err)
		}
		s.Certify = &c
	case KindExplore:
		if s.Explore == nil || len(s.Explore.Plans) == 0 {
			return s, fmt.Errorf("checkfarm: explore job wants a payload with plans")
		}
		e := *s.Explore
		if _, _, err := engines.Parse(e.Engine); err != nil {
			return s, fmt.Errorf("checkfarm: explore job: %w", err)
		}
		if e.Config.Criterion == 0 {
			e.Config.Criterion = spec.DUOpacity
		}
		for i, wp := range e.Plans {
			if _, err := wp.Plan(); err != nil {
				return s, fmt.Errorf("checkfarm: explore job plan %d: %w", i, err)
			}
		}
		s.Explore = &e
	case KindCheck:
		if s.Check == nil || len(s.Check.Histories) == 0 || len(s.Check.Criteria) == 0 {
			return s, fmt.Errorf("checkfarm: check job wants histories and criteria")
		}
		for i, src := range s.Check.Histories {
			if _, err := histio.ParseString(src); err != nil {
				return s, fmt.Errorf("checkfarm: check job history %d: %w", i, err)
			}
		}
	case KindSoak:
		if s.Soak == nil {
			return s, fmt.Errorf("checkfarm: soak job wants a payload")
		}
		sk := *s.Soak
		sk.Config = sk.Config.withDefaults()
		for _, e := range sk.Config.Engines {
			if _, _, err := engines.Parse(e); err != nil {
				return s, fmt.Errorf("checkfarm: soak job: %w", err)
			}
		}
		s.Soak = &sk
	default:
		return s, fmt.Errorf("checkfarm: unknown job kind %q", s.Kind)
	}
	return s, nil
}

// NumShards is the number of independent work units of a normalized
// spec.
func (s JobSpec) NumShards() int {
	switch s.Kind {
	case KindCertify:
		return s.Certify.Config.Episodes
	case KindExplore:
		return len(s.Explore.Plans)
	case KindCheck:
		return len(s.Check.Histories)
	case KindSoak:
		return len(soakTasks(s.Soak.Config))
	}
	return 0
}

// WireVerdict is spec.Verdict in serializable form: the witness
// serialization travels as its rendered text (enough to reproduce the
// CLI output byte for byte; the structural Seq stays local).
type WireVerdict struct {
	Criterion spec.Criterion `json:"criterion"`
	OK        bool           `json:"ok,omitempty"`
	Undecided bool           `json:"undecided,omitempty"`
	Reason    string         `json:"reason,omitempty"`
	Nodes     int            `json:"nodes,omitempty"`
	Witness   string         `json:"witness,omitempty"`
}

// WireVerdictOf encodes a verdict.
func WireVerdictOf(v spec.Verdict) WireVerdict {
	w := WireVerdict{Criterion: v.Criterion, OK: v.OK, Undecided: v.Undecided, Reason: v.Reason, Nodes: v.Nodes}
	if v.Serialization != nil {
		w.Witness = v.Serialization.String()
	}
	return w
}

// Verdict decodes back to a spec.Verdict; the witness text cannot be
// rebuilt into a structural Seq, so Serialization stays nil (no fold
// consumes it — aggregation only reads OK/Undecided/Reason).
func (w WireVerdict) Verdict() spec.Verdict {
	return spec.Verdict{Criterion: w.Criterion, OK: w.OK, Undecided: w.Undecided, Reason: w.Reason, Nodes: w.Nodes}
}

// String renders exactly as spec.Verdict.String does, witness included.
func (w WireVerdict) String() string {
	switch {
	case w.Undecided:
		return fmt.Sprintf("%s: undecided (%s)", w.Criterion, w.Reason)
	case w.OK && w.Witness != "":
		return fmt.Sprintf("%s: OK [%s]", w.Criterion, w.Witness)
	case w.OK:
		return fmt.Sprintf("%s: OK", w.Criterion)
	default:
		return fmt.Sprintf("%s: violated (%s)", w.Criterion, w.Reason)
	}
}

// WireEpisode is harness.EpisodeReport without the recorded history
// (certify aggregation never reads it; keeping episodes light is what
// makes remote certification cheap).
type WireEpisode struct {
	Skipped  bool          `json:"skipped,omitempty"`
	Degraded string        `json:"degraded,omitempty"`
	Verdicts []WireVerdict `json:"verdicts,omitempty"`
}

// Report decodes back into the report shape CertStats.AddEpisode folds.
func (w WireEpisode) Report() harness.EpisodeReport {
	r := harness.EpisodeReport{Skipped: w.Skipped, Degraded: w.Degraded}
	if len(w.Verdicts) > 0 {
		r.Verdicts = make(map[spec.Criterion]spec.Verdict, len(w.Verdicts))
		for _, v := range w.Verdicts {
			r.Verdicts[v.Criterion] = v.Verdict()
		}
	}
	return r
}

func wireEpisodeOf(r harness.EpisodeReport, criteria []spec.Criterion) WireEpisode {
	w := WireEpisode{Skipped: r.Skipped, Degraded: r.Degraded}
	if r.Verdicts != nil {
		for _, c := range criteria {
			w.Verdicts = append(w.Verdicts, WireVerdictOf(r.Verdicts[c]))
		}
	}
	return w
}

// WireViolation is ExploreViolation with the violating prefix in histio
// text.
type WireViolation struct {
	Schedule []int       `json:"schedule"`
	History  string      `json:"history"`
	Verdict  WireVerdict `json:"verdict"`
	At       int         `json:"at"`
}

// WireExplore is harness.ExploreReport in serializable form.
type WireExplore struct {
	Engine         string         `json:"engine"`
	Criterion      spec.Criterion `json:"criterion"`
	Plan           WirePlan       `json:"plan"`
	Outcome        uint8          `json:"outcome"`
	Schedules      int            `json:"schedules"`
	PrefixCut      int            `json:"prefix_cut"`
	Violations     int            `json:"violations"`
	Violation      *WireViolation `json:"violation,omitempty"`
	SleepPruned    int            `json:"sleep_pruned"`
	SymmetryPruned int            `json:"symmetry_pruned"`
	Steps          int64          `json:"steps"`
	Replays        int            `json:"replays"`
	MaxFrontier    int            `json:"max_frontier"`
	Undecided      int            `json:"undecided"`
	DegradedReason string         `json:"degraded_reason,omitempty"`
}

// WireExploreOf encodes an exploration report.
func WireExploreOf(r harness.ExploreReport) WireExplore {
	w := WireExplore{
		Engine: r.Engine, Criterion: r.Criterion, Plan: WirePlanOf(r.Plan),
		Outcome: uint8(r.Outcome), Schedules: r.Schedules, PrefixCut: r.PrefixCut,
		Violations: r.Violations, SleepPruned: r.SleepPruned, SymmetryPruned: r.SymmetryPruned,
		Steps: r.Steps, Replays: r.Replays, MaxFrontier: r.MaxFrontier,
		Undecided: r.Undecided, DegradedReason: r.DegradedReason,
	}
	if r.Violation != nil {
		w.Violation = &WireViolation{
			Schedule: r.Violation.Schedule,
			History:  histio.FormatString(r.Violation.History),
			Verdict:  WireVerdictOf(r.Violation.Verdict),
			At:       r.Violation.At,
		}
	}
	return w
}

// Report decodes back; plan and violating history are re-parsed from
// their lossless text forms.
func (w WireExplore) Report() (harness.ExploreReport, error) {
	p, err := w.Plan.Plan()
	if err != nil {
		return harness.ExploreReport{}, err
	}
	r := harness.ExploreReport{
		Engine: w.Engine, Criterion: w.Criterion, Plan: p,
		Outcome: harness.ExploreOutcome(w.Outcome), Schedules: w.Schedules,
		PrefixCut: w.PrefixCut, Violations: w.Violations,
		SleepPruned: w.SleepPruned, SymmetryPruned: w.SymmetryPruned,
		Steps: w.Steps, Replays: w.Replays, MaxFrontier: w.MaxFrontier,
		Undecided: w.Undecided, DegradedReason: w.DegradedReason,
	}
	if w.Violation != nil {
		h, herr := histio.ParseString(w.Violation.History)
		if herr != nil {
			return harness.ExploreReport{}, herr
		}
		r.Violation = &harness.ExploreViolation{
			Schedule: w.Violation.Schedule,
			History:  h,
			Verdict:  w.Violation.Verdict.Verdict(),
			At:       w.Violation.At,
		}
	}
	return r, nil
}

// WireSoakCell is SoakCell with the recorded history in histio text (the
// fold needs it: divergence shrinking replays the checker over it).
type WireSoakCell struct {
	Engine   string        `json:"engine"`
	Round    int           `json:"round"`
	Probe    bool          `json:"probe,omitempty"`
	Skipped  bool          `json:"skipped,omitempty"`
	Degraded string        `json:"degraded,omitempty"`
	Verdicts []WireVerdict `json:"verdicts,omitempty"`
	History  string        `json:"history,omitempty"`
}

// WireSoakCellOf encodes a cell.
func WireSoakCellOf(c SoakCell) WireSoakCell {
	w := WireSoakCell{Engine: c.Engine, Round: c.Round, Probe: c.Probe, Skipped: c.Skipped, Degraded: c.Degraded}
	if c.History != nil {
		w.History = histio.FormatString(c.History)
	}
	for _, v := range c.Verdicts {
		w.Verdicts = append(w.Verdicts, WireVerdictOf(v))
	}
	return w
}

// Cell decodes back. Verdict map iteration order does not matter to the
// fold (it indexes by criterion).
func (w WireSoakCell) Cell(cfg SoakConfig) (SoakCell, error) {
	c := SoakCell{Engine: w.Engine, Round: w.Round, Probe: w.Probe, Skipped: w.Skipped, Degraded: w.Degraded}
	wl := cfg.roundWorkload(w.Round)
	wl.Engine = w.Engine
	c.Workload = wl
	if w.History != "" {
		h, err := histio.ParseString(w.History)
		if err != nil {
			return c, err
		}
		c.History = h
	}
	if len(w.Verdicts) > 0 {
		c.Verdicts = make(map[spec.Criterion]spec.Verdict, len(w.Verdicts))
		for _, v := range w.Verdicts {
			c.Verdicts[v.Criterion] = v.Verdict()
		}
	}
	return c, nil
}

// ShardResult is the serializable outcome of one shard; the field
// matching the job's kind is set.
type ShardResult struct {
	Episode *WireEpisode  `json:"episode,omitempty"`
	Explore *WireExplore  `json:"explore,omitempty"`
	Check   []WireVerdict `json:"check,omitempty"`
	Soak    *WireSoakCell `json:"soak,omitempty"`
	// Degraded is set (with the reason) when the result is a coordinator-
	// substituted degradation artifact rather than a computed one — the
	// distributed analog of a shard panicking past its retries.
	Degraded string `json:"degraded,omitempty"`
}

// RunShard computes shard i of a normalized spec — the worker-side
// compute unit. It is a pure function of (spec, i) up to scheduling
// nondeterminism of real-goroutine workloads (under Interleaved configs
// it is bit-reproducible, exactly as the in-process farm's shards are).
// Cancellation propagates into checks, monitors and explorations.
func (s JobSpec) RunShard(ctx context.Context, i int) (ShardResult, error) {
	if i < 0 || i >= s.NumShards() {
		return ShardResult{}, fmt.Errorf("checkfarm: shard %d out of range (%d shards)", i, s.NumShards())
	}
	switch s.Kind {
	case KindCertify:
		r, err := harness.CertifyEpisodeCtx(ctx, s.Certify.Config, i, s.Certify.Criteria)
		if err != nil {
			return ShardResult{}, err
		}
		ep := wireEpisodeOf(r, s.Certify.Criteria)
		return ShardResult{Episode: &ep}, nil
	case KindExplore:
		p, err := s.Explore.Plans[i].Plan()
		if err != nil {
			return ShardResult{}, err
		}
		r, err := harness.ExplorePlanCtx(ctx, s.Explore.Engine, p, s.Explore.Config)
		if err != nil {
			return ShardResult{}, err
		}
		w := WireExploreOf(r)
		return ShardResult{Explore: &w}, nil
	case KindCheck:
		h, err := histio.ParseString(s.Check.Histories[i])
		if err != nil {
			return ShardResult{}, err
		}
		opts := []spec.Option{spec.WithNodeLimit(s.Check.NodeLimit)}
		if ctx != nil {
			opts = append(opts, spec.WithContext(ctx))
		}
		vs := make([]WireVerdict, len(s.Check.Criteria))
		for j, c := range s.Check.Criteria {
			vs[j] = WireVerdictOf(spec.Check(h, c, opts...))
		}
		return ShardResult{Check: vs}, nil
	case KindSoak:
		cell, err := runSoakCell(s.Soak.Config, soakTasks(s.Soak.Config)[i])
		if err != nil {
			return ShardResult{}, err
		}
		w := WireSoakCellOf(cell)
		return ShardResult{Soak: &w}, nil
	}
	return ShardResult{}, fmt.Errorf("checkfarm: unknown job kind %q", s.Kind)
}

// DegradedShard builds the explicit degradation artifact for a shard
// that could not be computed — a worker dead past its lease retries, or
// a drain with the shard still outstanding. It reuses the PR 7 shapes:
// certify episodes become harness.DegradedEpisode, explorations a
// BudgetExhausted report with DegradedReason, check rows degraded
// undecided verdicts, soak cells a Degraded cell. Folding a degraded
// shard always surfaces in the report (CertStats.Degraded,
// SoakResult.Degraded, per-report DegradedReason) — never a silent drop.
func (s JobSpec) DegradedShard(i int, reason string) ShardResult {
	res := ShardResult{Degraded: reason}
	switch s.Kind {
	case KindCertify:
		ep := wireEpisodeOf(harness.DegradedEpisode(s.Certify.Criteria, reason), s.Certify.Criteria)
		res.Episode = &ep
	case KindExplore:
		w := WireExplore{
			Engine:         s.Explore.Engine,
			Criterion:      s.Explore.Config.Criterion,
			Plan:           s.Explore.Plans[i],
			Outcome:        uint8(harness.BudgetExhausted),
			DegradedReason: reason,
		}
		res.Explore = &w
	case KindCheck:
		vs := make([]WireVerdict, len(s.Check.Criteria))
		for j, c := range s.Check.Criteria {
			vs[j] = WireVerdict{Criterion: c, Undecided: true, Reason: "degraded: " + reason}
		}
		res.Check = vs
	case KindSoak:
		t := soakTasks(s.Soak.Config)[i]
		w := WireSoakCell{Engine: t.engine, Round: t.round, Probe: t.probe, Degraded: reason}
		res.Soak = &w
	}
	return res
}

// JobReport is the folded outcome of a distributed job; the field
// matching the kind is set. Check rows keep the wire verdict form (the
// structural witness stays on the worker); their String renderings match
// the in-process CheckBatch verdicts exactly.
type JobReport struct {
	Kind     ShardKind               `json:"kind"`
	Certify  *harness.CertStats      `json:"certify,omitempty"`
	Explore  []harness.ExploreReport `json:"-"`
	Check    [][]WireVerdict         `json:"check,omitempty"`
	Soak     *SoakResult             `json:"-"`
	Degraded int                     `json:"degraded,omitempty"`
}

// FoldJob aggregates shard results, given in shard order, exactly as the
// in-process farm entry points do: certify results fold through
// CertStats.AddEpisode in episode order, explorations and check rows
// assemble in input order, soak cells run the same divergence extraction
// and shrinking as Soak (jobs bounds the shrinking pool; shrinking is
// the only compute FoldJob performs). results[i] == nil is rejected —
// a missing shard must be degraded explicitly, not skipped.
func FoldJob(ctx context.Context, s JobSpec, results []*ShardResult, jobs int) (*JobReport, error) {
	if len(results) != s.NumShards() {
		return nil, fmt.Errorf("checkfarm: fold wants %d results, got %d", s.NumShards(), len(results))
	}
	rep := &JobReport{Kind: s.Kind}
	for i, r := range results {
		if r == nil {
			return nil, fmt.Errorf("checkfarm: fold: missing result for shard %d (degrade it explicitly)", i)
		}
		if r.Degraded != "" {
			rep.Degraded++
		}
	}
	switch s.Kind {
	case KindCertify:
		stats := harness.NewCertStats(s.Certify.Config.Workload.Engine)
		for i, r := range results {
			if r.Episode == nil {
				return nil, fmt.Errorf("checkfarm: fold: shard %d carries no episode", i)
			}
			stats.AddEpisode(s.Certify.Criteria, r.Episode.Report())
		}
		rep.Certify = &stats
	case KindExplore:
		reports := make([]harness.ExploreReport, len(results))
		for i, r := range results {
			if r.Explore == nil {
				return nil, fmt.Errorf("checkfarm: fold: shard %d carries no exploration", i)
			}
			er, err := r.Explore.Report()
			if err != nil {
				return nil, fmt.Errorf("checkfarm: fold: shard %d: %w", i, err)
			}
			reports[i] = er
		}
		rep.Explore = reports
	case KindCheck:
		rows := make([][]WireVerdict, len(results))
		for i, r := range results {
			if r.Check == nil {
				return nil, fmt.Errorf("checkfarm: fold: shard %d carries no verdicts", i)
			}
			rows[i] = r.Check
		}
		rep.Check = rows
	case KindSoak:
		cells := make([]SoakCell, len(results))
		for i, r := range results {
			if r.Soak == nil {
				return nil, fmt.Errorf("checkfarm: fold: shard %d carries no cell", i)
			}
			cell, err := r.Soak.Cell(s.Soak.Config)
			if err != nil {
				return nil, fmt.Errorf("checkfarm: fold: shard %d: %w", i, err)
			}
			cells[i] = cell
		}
		res, err := foldSoak(ctx, s.Soak.Config, cells, jobs)
		if err != nil {
			return nil, err
		}
		rep.Soak = res
	default:
		return nil, fmt.Errorf("checkfarm: unknown job kind %q", s.Kind)
	}
	return rep, nil
}

// FormatJobReport renders the folded report with the same formatters the
// in-process CLIs use, so a distributed run's output is comparable (and,
// for deterministic jobs, byte-identical) to a local one.
func FormatJobReport(s JobSpec, rep *JobReport) string {
	var b strings.Builder
	if rep.Degraded > 0 {
		fmt.Fprintf(&b, "%d of %d shard(s) degraded (dead workers); their results are explicit undecided artifacts\n",
			rep.Degraded, s.NumShards())
	}
	switch rep.Kind {
	case KindCertify:
		b.WriteString(harness.FormatCertTable(*rep.Certify, s.Certify.Criteria))
	case KindExplore:
		b.WriteString(harness.FormatExploreTable(rep.Explore))
	case KindCheck:
		for i, row := range rep.Check {
			if len(rep.Check) > 1 {
				fmt.Fprintf(&b, "== history %d ==\n", i)
			}
			for _, v := range row {
				fmt.Fprintln(&b, v)
			}
		}
	case KindSoak:
		b.WriteString(FormatSoakReport(s.Soak.Config, rep.Soak))
	}
	return b.String()
}
