package checkfarm

import (
	"context"
	"strings"
	"testing"

	"duopacity/internal/spec"
	"duopacity/internal/stm/engines"
)

func shortSoakConfig() SoakConfig {
	cfg := SoakConfig{Seed: 11, Rounds: 2}
	if testing.Short() {
		cfg.Rounds = 1
	}
	return cfg
}

// TestSoakDifferential is the differential soak smoke: all seven engine
// families against every implemented criterion in one run, with the
// paper's separation surfacing as a shrunk minimal counterexample for the
// pessimistic in-place engine under du-opacity.
func TestSoakDifferential(t *testing.T) {
	cfg := shortSoakConfig()
	res, err := Soak(context.Background(), cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	full := cfg.withDefaults()
	if len(full.Engines) != 7 {
		t.Fatalf("default soak covers %d engines, want 7", len(full.Engines))
	}
	if got, want := len(res.Cells), full.Rounds*len(full.Engines)*2; got != want {
		t.Fatalf("soak ran %d cells, want %d", got, want)
	}
	// Every engine must have produced at least one decided observation per
	// criterion class (the grid is small; undecided and skipped cells are
	// tolerated, a fully empty engine row is not).
	for _, e := range full.Engines {
		decided := 0
		for _, c := range full.Criteria {
			decided += res.Accepted[e][c] + res.Rejected[e][c]
		}
		if decided == 0 {
			t.Errorf("engine %s: no decided cells", e)
		}
	}

	// The paper's Section 5 claim, as a soak finding: ple violates
	// du-opacity, and the violation shrinks to a minimal counterexample
	// that still violates and never grew.
	min := res.MinimalCounterexample("ple", spec.DUOpacity)
	if min == nil {
		t.Fatal("soak found no shrunk ple du-opacity counterexample")
	}
	v := spec.Check(min, spec.DUOpacity)
	if v.OK || v.Undecided {
		t.Fatalf("shrunk counterexample no longer violates du-opacity: %s", v)
	}
	// When the soak surfaced the paper's full separation on ple (du-opacity
	// rejects while final-state opacity accepts), the shrunk witness must
	// still exhibit it — the signature-preserving shrink guarantees this.
	for _, d := range res.Divergences {
		if d.Engine != "ple" || d.Criterion != spec.DUOpacity {
			continue
		}
		for _, c := range d.Accepted {
			if c == spec.FinalStateOpacity {
				if fv := spec.Check(d.Minimal, spec.FinalStateOpacity); !fv.OK {
					t.Errorf("separation witness lost in shrinking: minimal no longer final-state opaque:\n%s", d.Minimal)
				}
			}
		}
	}
	for _, d := range res.Divergences {
		if d.Minimal.Len() > d.History.Len() {
			t.Errorf("%s/%s: shrinking grew the history: %d -> %d events",
				d.Engine, d.Criterion, d.History.Len(), d.Minimal.Len())
		}
		if dv := spec.Check(d.Minimal, d.Criterion, spec.WithNodeLimit(full.NodeLimit)); dv.OK {
			t.Errorf("%s/%s: shrunk history no longer violates", d.Engine, d.Criterion)
		}
	}

	report := FormatSoakReport(cfg, res)
	for _, want := range append([]string{"differential soak", "du-opacity"}, full.Engines...) {
		if !strings.Contains(report, want) {
			t.Errorf("soak report missing %q:\n%s", want, report)
		}
	}
	t.Logf("\n%s", report)
}

// TestSoakDeferredUpdateEnginesStayClean pins the positive side of the
// differential: the deferred-update engines' interleaved probe cells are
// never rejected by du-opacity (probes are deterministic, so this cannot
// flake; concurrent cells are exercised but asserted only for the
// abort-free serial baseline).
func TestSoakDeferredUpdateEnginesStayClean(t *testing.T) {
	cfg := shortSoakConfig()
	cfg.Engines = []string{"gl", "tl2", "norec"}
	cfg.Criteria = []spec.Criterion{spec.DUOpacity}
	res, err := Soak(context.Background(), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range res.Cells {
		if cell.Skipped || !cell.Probe {
			continue
		}
		if !engines.DeferredUpdate(cell.Engine) {
			continue
		}
		v := cell.Verdicts[spec.DUOpacity]
		if !v.OK && !v.Undecided {
			t.Errorf("%s round %d probe: deferred-update engine rejected: %s",
				cell.Engine, cell.Round, v.Reason)
		}
	}
}
