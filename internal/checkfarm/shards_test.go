package checkfarm

import (
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"duopacity/internal/harness"
	"duopacity/internal/histio"
	"duopacity/internal/history"
	"duopacity/internal/spec"
	"duopacity/internal/stm"
	"duopacity/internal/stm/engines"
)

// runRemote simulates the full distributed path of a job: the spec
// crosses the wire as JSON, every shard is computed by RunShard from the
// decoded copy, every result crosses back as JSON, and the decoded
// results are folded. Anything the wire forms lose shows up as a
// difference against the in-process farm.
func runRemote(t *testing.T, s JobSpec) *JobReport {
	t.Helper()
	specBytes, err := json.Marshal(s)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	var remote JobSpec
	if err := json.Unmarshal(specBytes, &remote); err != nil {
		t.Fatalf("unmarshal spec: %v", err)
	}
	remote, err = remote.Normalize()
	if err != nil {
		t.Fatalf("normalize decoded spec: %v", err)
	}
	if got, want := remote.NumShards(), s.NumShards(); got != want {
		t.Fatalf("decoded spec has %d shards, original %d", got, want)
	}
	results := make([]*ShardResult, remote.NumShards())
	for i := range results {
		r, err := remote.RunShard(context.Background(), i)
		if err != nil {
			t.Fatalf("RunShard(%d): %v", i, err)
		}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("marshal result %d: %v", i, err)
		}
		var back ShardResult
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("unmarshal result %d: %v", i, err)
		}
		results[i] = &back
	}
	rep, err := FoldJob(context.Background(), remote, results, 2)
	if err != nil {
		t.Fatalf("FoldJob: %v", err)
	}
	return rep
}

func mustNormalize(t *testing.T, s JobSpec) JobSpec {
	t.Helper()
	n, err := s.Normalize()
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	return n
}

// TestFoldMatchesLocalFarmCertify pins the acceptance criterion at the
// checkfarm layer: a certification distributed shard-by-shard over the
// wire folds byte-identically to the in-process farm.
func TestFoldMatchesLocalFarmCertify(t *testing.T) {
	criteria := []spec.Criterion{spec.DUOpacity, spec.Serializability}
	s := mustNormalize(t, JobSpec{Kind: KindCertify, Certify: &CertifyJob{
		Config: harness.CertConfig{
			Workload: harness.Workload{Engine: "tl2", Objects: 3, Goroutines: 3, TxnsPerGoroutine: 2, OpsPerTxn: 3, Seed: 42},
			Episodes: 8, Interleaved: true,
		},
		Criteria: criteria,
	}})

	local, err := Certify(context.Background(), s.Certify.Config, criteria, 2)
	if err != nil {
		t.Fatalf("local Certify: %v", err)
	}
	rep := runRemote(t, s)
	if rep.Certify == nil {
		t.Fatalf("remote fold produced no certify stats")
	}
	if !reflect.DeepEqual(local, *rep.Certify) {
		t.Fatalf("remote fold diverged from local farm:\nlocal:  %+v\nremote: %+v", local, *rep.Certify)
	}
	want := harness.FormatCertTable(local, criteria)
	got := FormatJobReport(s, rep)
	if got != want {
		t.Fatalf("formatted reports differ:\nlocal:\n%s\nremote:\n%s", want, got)
	}
}

func TestFoldMatchesLocalFarmExplore(t *testing.T) {
	plans := []stm.Plan{
		stm.MustParsePlan("w0 | r0 r1\nw1"),
		stm.MustParsePlan("r0 w1\nr1 w0"),
	}
	wire := make([]WirePlan, len(plans))
	for i, p := range plans {
		wire[i] = WirePlanOf(p)
	}
	s := mustNormalize(t, JobSpec{Kind: KindExplore, Explore: &ExploreJob{
		Engine: "gl", Plans: wire, Config: harness.ExploreConfig{},
	}})

	local, err := ExplorePlans(context.Background(), "gl", plans, harness.ExploreConfig{}, 2)
	if err != nil {
		t.Fatalf("local ExplorePlans: %v", err)
	}
	rep := runRemote(t, s)
	if len(rep.Explore) != len(local) {
		t.Fatalf("remote fold has %d reports, local %d", len(rep.Explore), len(local))
	}
	for i := range local {
		l, r := local[i], rep.Explore[i]
		if l.Outcome != r.Outcome || l.Schedules != r.Schedules || l.Steps != r.Steps ||
			l.Violations != r.Violations || l.SleepPruned != r.SleepPruned ||
			l.Plan.String() != r.Plan.String() || l.Plan.Objects != r.Plan.Objects {
			t.Fatalf("plan %d diverged:\nlocal:  %+v\nremote: %+v", i, l, r)
		}
	}
	want := harness.FormatExploreTable(local)
	got := FormatJobReport(s, rep)
	if got != want {
		t.Fatalf("formatted explore tables differ:\nlocal:\n%s\nremote:\n%s", want, got)
	}
}

func TestFoldMatchesLocalFarmCheck(t *testing.T) {
	histories := []string{
		"write 1 X 1\ncommit 1\nread 2 X 1\ncommit 2\n",
		// Deferred-update violation: T2 reads T1's write before T1 commits.
		"inv write 1 X 5\nres write 1 X 5 ok\nread 2 X 5\ncommit 2\ncommit 1\n",
	}
	criteria := []spec.Criterion{spec.DUOpacity, spec.Serializability}
	s := mustNormalize(t, JobSpec{Kind: KindCheck, Check: &CheckJob{
		Histories: histories, Criteria: criteria, NodeLimit: 200_000,
	}})

	hs := make([]*history.History, len(histories))
	for i, src := range histories {
		h, err := histio.ParseString(src)
		if err != nil {
			t.Fatalf("parse history %d: %v", i, err)
		}
		hs[i] = h
	}
	local, err := CheckBatch(context.Background(), hs, criteria, 2, spec.WithNodeLimit(200_000))
	if err != nil {
		t.Fatalf("local CheckBatch: %v", err)
	}

	rep := runRemote(t, s)
	if len(rep.Check) != len(local) {
		t.Fatalf("remote fold has %d rows, local %d", len(rep.Check), len(local))
	}
	for i := range local {
		for j := range local[i] {
			if got, want := rep.Check[i][j].String(), local[i][j].String(); got != want {
				t.Fatalf("history %d criterion %d: remote %q, local %q", i, j, got, want)
			}
		}
	}
	if local[1][0].OK {
		t.Fatalf("sanity: the early-read history should violate du-opacity")
	}
}

func TestFoldMatchesLocalFarmSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak differential is not -short")
	}
	cfg := SoakConfig{
		Engines:  []string{"gl", "norec"},
		Criteria: []spec.Criterion{spec.DUOpacity, spec.Serializability},
		Rounds:   2,
		Seed:     7,
	}
	s := mustNormalize(t, JobSpec{Kind: KindSoak, Soak: &SoakJob{Config: cfg}})

	local, err := Soak(context.Background(), cfg, 2)
	if err != nil {
		t.Fatalf("local Soak: %v", err)
	}
	rep := runRemote(t, s)
	if rep.Soak == nil {
		t.Fatalf("remote fold produced no soak result")
	}
	want := FormatSoakReport(s.Soak.Config, local)
	got := FormatJobReport(s, rep)
	if got != want {
		t.Fatalf("formatted soak reports differ:\nlocal:\n%s\nremote:\n%s", want, got)
	}
}

// TestDegradedShardFold pins the dead-worker contract per kind: a shard
// substituted by DegradedShard folds into an explicit degradation
// artifact — counted, rendered, never silently dropped.
func TestDegradedShardFold(t *testing.T) {
	criteria := []spec.Criterion{spec.DUOpacity}

	t.Run("certify", func(t *testing.T) {
		s := mustNormalize(t, JobSpec{Kind: KindCertify, Certify: &CertifyJob{
			Config: harness.CertConfig{
				Workload: harness.Workload{Engine: "gl", Objects: 2, Goroutines: 2, TxnsPerGoroutine: 2, OpsPerTxn: 2, Seed: 1},
				Episodes: 3, Interleaved: true,
			},
			Criteria: criteria,
		}})
		results := make([]*ShardResult, s.NumShards())
		for i := range results {
			if i == 1 {
				r := s.DegradedShard(i, "worker w2 lease expired")
				results[i] = &r
				continue
			}
			r, err := s.RunShard(context.Background(), i)
			if err != nil {
				t.Fatal(err)
			}
			results[i] = &r
		}
		rep, err := FoldJob(context.Background(), s, results, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Degraded != 1 || rep.Certify.Degraded != 1 {
			t.Fatalf("degraded counts: fold %d, stats %d (want 1, 1)", rep.Degraded, rep.Certify.Degraded)
		}
		if rep.Certify.Undecided[spec.DUOpacity] != 1 {
			t.Fatalf("degraded episode should be undecided: %+v", rep.Certify)
		}
		out := FormatJobReport(s, rep)
		if !strings.Contains(out, "degraded") {
			t.Fatalf("report does not surface the degradation:\n%s", out)
		}
	})

	t.Run("explore", func(t *testing.T) {
		s := mustNormalize(t, JobSpec{Kind: KindExplore, Explore: &ExploreJob{
			Engine: "gl", Plans: []WirePlan{WirePlanOf(stm.MustParsePlan("w0\nr0"))},
		}})
		r := s.DegradedShard(0, "worker lost")
		rep, err := FoldJob(context.Background(), s, []*ShardResult{&r}, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Degraded != 1 {
			t.Fatalf("fold degraded count %d, want 1", rep.Degraded)
		}
		er := rep.Explore[0]
		if er.Outcome != harness.BudgetExhausted || er.DegradedReason != "worker lost" {
			t.Fatalf("degraded exploration artifact wrong: %+v", er)
		}
	})

	t.Run("check", func(t *testing.T) {
		s := mustNormalize(t, JobSpec{Kind: KindCheck, Check: &CheckJob{
			Histories: []string{"write 1 X 1\ncommit 1\n"},
			Criteria:  criteria,
		}})
		r := s.DegradedShard(0, "worker lost")
		rep, err := FoldJob(context.Background(), s, []*ShardResult{&r}, 1)
		if err != nil {
			t.Fatal(err)
		}
		v := rep.Check[0][0]
		if !v.Undecided || !strings.Contains(v.Reason, "degraded: worker lost") {
			t.Fatalf("degraded check verdict wrong: %+v", v)
		}
	})

	t.Run("soak", func(t *testing.T) {
		s := mustNormalize(t, JobSpec{Kind: KindSoak, Soak: &SoakJob{Config: SoakConfig{
			Engines: []string{"gl"}, Criteria: criteria, Rounds: 1, Seed: 3,
		}}})
		results := make([]*ShardResult, s.NumShards())
		for i := range results {
			if i == 0 {
				r := s.DegradedShard(i, "worker lost")
				results[i] = &r
				continue
			}
			r, err := s.RunShard(context.Background(), i)
			if err != nil {
				t.Fatal(err)
			}
			results[i] = &r
		}
		rep, err := FoldJob(context.Background(), s, results, 1)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Soak.Degraded != 1 {
			t.Fatalf("soak degraded count %d, want 1", rep.Soak.Degraded)
		}
		out := FormatJobReport(s, rep)
		if !strings.Contains(out, "degraded") {
			t.Fatalf("soak report does not surface the degradation:\n%s", out)
		}
	})
}

// TestFoldRejectsMissingResult: a nil slot must be an error, not a
// silent skip — missing shards are degraded explicitly by the caller.
func TestFoldRejectsMissingResult(t *testing.T) {
	s := mustNormalize(t, JobSpec{Kind: KindCheck, Check: &CheckJob{
		Histories: []string{"commit 1\n"}, Criteria: []spec.Criterion{spec.DUOpacity},
	}})
	if _, err := FoldJob(context.Background(), s, []*ShardResult{nil}, 1); err == nil {
		t.Fatalf("FoldJob accepted a missing result")
	}
	if _, err := FoldJob(context.Background(), s, nil, 1); err == nil {
		t.Fatalf("FoldJob accepted a short result slice")
	}
}

// TestJobSpecNormalizeIdempotent: normalization pins every default, so a
// coordinator and a worker normalizing independently agree on the work.
func TestJobSpecNormalizeIdempotent(t *testing.T) {
	specs := []JobSpec{
		{Kind: KindCertify, Certify: &CertifyJob{
			Config:   harness.CertConfig{Workload: harness.Workload{Engine: "tl2"}},
			Criteria: []spec.Criterion{spec.DUOpacity},
		}},
		{Kind: KindExplore, Explore: &ExploreJob{Engine: "gl", Plans: []WirePlan{WirePlanOf(stm.MustParsePlan("w0\nr0"))}}},
		{Kind: KindCheck, Check: &CheckJob{Histories: []string{"commit 1\n"}, Criteria: []spec.Criterion{spec.Opacity}}},
		{Kind: KindSoak, Soak: &SoakJob{Config: SoakConfig{Rounds: 1}}},
	}
	for _, s := range specs {
		n1 := mustNormalize(t, s)
		n2 := mustNormalize(t, n1)
		if !reflect.DeepEqual(n1, n2) {
			t.Fatalf("%s: Normalize not idempotent:\n1: %+v\n2: %+v", s.Kind, n1, n2)
		}
		if n1.NumShards() <= 0 {
			t.Fatalf("%s: normalized spec has no shards", s.Kind)
		}
		b, err := json.Marshal(n1)
		if err != nil {
			t.Fatalf("%s: marshal: %v", s.Kind, err)
		}
		var back JobSpec
		if err := json.Unmarshal(b, &back); err != nil {
			t.Fatalf("%s: unmarshal: %v", s.Kind, err)
		}
		if back.NumShards() != n1.NumShards() {
			t.Fatalf("%s: shard count changed over the wire: %d -> %d", s.Kind, n1.NumShards(), back.NumShards())
		}
	}
}

func TestJobSpecValidation(t *testing.T) {
	okPlan := []WirePlan{WirePlanOf(stm.MustParsePlan("w0\nr0"))}
	bad := []JobSpec{
		{Kind: "nope"},
		{Kind: KindCertify},
		{Kind: KindCertify, Certify: &CertifyJob{}},
		{Kind: KindExplore, Explore: &ExploreJob{Engine: "gl"}},
		{Kind: KindExplore, Explore: &ExploreJob{Engine: "gl", Plans: []WirePlan{{Text: "x9q"}}}},
		{Kind: KindCheck, Check: &CheckJob{Histories: []string{"not a history !!"}, Criteria: []spec.Criterion{spec.DUOpacity}}},
		{Kind: KindSoak},
		// Engine names go through the shared engine[+cm] parser: unknown
		// bases, unknown CM suffixes and CM suffixes on CM-incapable
		// engines all fail at submit time.
		{Kind: KindCertify, Certify: &CertifyJob{
			Config:   harness.CertConfig{Workload: harness.Workload{Engine: "tl2+bogus"}},
			Criteria: []spec.Criterion{spec.DUOpacity},
		}},
		{Kind: KindExplore, Explore: &ExploreJob{Engine: "gl+karma", Plans: okPlan}},
		{Kind: KindExplore, Explore: &ExploreJob{Engine: "nope", Plans: okPlan}},
		{Kind: KindSoak, Soak: &SoakJob{Config: SoakConfig{Engines: []string{"tl2", "nope"}}}},
	}
	for i, s := range bad {
		if _, err := s.Normalize(); err == nil {
			t.Errorf("case %d (%s): Normalize accepted an invalid spec", i, s.Kind)
		}
	}
}

// TestJobSpecAcceptsEngineCMMatrix: every engine[+cm] matrix cell is a
// valid job-spec engine name, so certd jobs can target the full grid.
func TestJobSpecAcceptsEngineCMMatrix(t *testing.T) {
	for _, name := range engines.Matrix() {
		s := JobSpec{Kind: KindExplore, Explore: &ExploreJob{
			Engine: name, Plans: []WirePlan{WirePlanOf(stm.MustParsePlan("w0\nr0"))},
		}}
		if _, err := s.Normalize(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	s := JobSpec{Kind: KindSoak, Soak: &SoakJob{Config: SoakConfig{
		Engines: SoakEngineMatrix(), Rounds: 1,
	}}}
	if _, err := s.Normalize(); err != nil {
		t.Errorf("soak over SoakEngineMatrix: %v", err)
	}
}
