package checkfarm

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"

	"duopacity/internal/chaos"
	"duopacity/internal/harness"
	"duopacity/internal/history"
	"duopacity/internal/litmus"
	"duopacity/internal/spec"
	"duopacity/internal/stm"
)

// acceptingHistories returns a few litmus histories known du-opaque, as
// CheckBatch fodder.
func acceptingHistories(t *testing.T, n int) []*history.History {
	t.Helper()
	var hs []*history.History
	for _, c := range litmus.Cases() {
		if c.Expect[spec.DUOpacity] {
			hs = append(hs, c.H)
		}
		if len(hs) == n {
			return hs
		}
	}
	if len(hs) == 0 {
		t.Fatal("no accepting litmus cases")
	}
	return hs
}

// TestRunProtectedRetriesThenSucceeds pins the recovery unit itself: a
// compute function that panics below the retry bound is retried to
// success; one that panics on every attempt returns ShardPanicError.
func TestRunProtectedRetriesThenSucceeds(t *testing.T) {
	calls := 0
	err := runProtected(context.Background(), 3, func() error {
		calls++
		if calls < shardAttempts {
			panic("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("recovered unit returned error: %v", err)
	}
	if calls != shardAttempts {
		t.Fatalf("fn ran %d times, want %d", calls, shardAttempts)
	}

	calls = 0
	err = runProtected(context.Background(), 7, func() error {
		calls++
		panic("permanent")
	})
	var pe *ShardPanicError
	if !errors.As(err, &pe) {
		t.Fatalf("past-retries panic returned %v, want *ShardPanicError", err)
	}
	if pe.Shard != 7 || pe.Attempt != shardAttempts-1 {
		t.Fatalf("ShardPanicError = %+v", pe)
	}
	if calls != shardAttempts {
		t.Fatalf("fn ran %d times, want %d", calls, shardAttempts)
	}
	if !strings.Contains(pe.Error(), "permanent") {
		t.Fatalf("error %q does not carry the panic value", pe.Error())
	}
}

func TestRunProtectedOrdinaryErrorIsNotRetried(t *testing.T) {
	calls := 0
	want := errors.New("a verdict, not a crash")
	err := runProtected(context.Background(), 0, func() error {
		calls++
		return want
	})
	if err != want || calls != 1 {
		t.Fatalf("err=%v calls=%d; ordinary errors must pass through once", err, calls)
	}
}

// TestCheckBatchRecoversInjectedPanic: a fault schedule whose panics stay
// below the retry bound must leave the results byte-identical to a
// fault-free run.
func TestCheckBatchRecoversInjectedPanic(t *testing.T) {
	hs := acceptingHistories(t, 4)
	criteria := []spec.Criterion{spec.DUOpacity, spec.FinalStateOpacity}
	want, err := CheckBatch(context.Background(), hs, criteria, 2)
	if err != nil {
		t.Fatal(err)
	}
	ff := &chaos.FarmFaults{PanicEvery: 1, PanicAttempts: shardAttempts - 1}
	ctx := chaos.WithFarmFaults(context.Background(), ff)
	got, err := CheckBatch(ctx, hs, criteria, 2)
	if err != nil {
		t.Fatalf("recovered panics failed the farm: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("results differ after recovered panics:\ngot  %v\nwant %v", got, want)
	}
	if ff.Panics() != int64(len(hs)*(shardAttempts-1)) {
		t.Fatalf("injected %d panics, want %d", ff.Panics(), len(hs)*(shardAttempts-1))
	}
}

// TestCheckBatchDegradesPastRetries: a shard that panics on every attempt
// degrades into explicit undecided verdicts instead of failing the batch,
// and the other shards are untouched.
func TestCheckBatchDegradesPastRetries(t *testing.T) {
	hs := acceptingHistories(t, 3)
	criteria := []spec.Criterion{spec.DUOpacity}
	want, err := CheckBatch(context.Background(), hs, criteria, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Strike only shard 0, forever.
	ff := &chaos.FarmFaults{PanicEvery: len(hs), PanicAttempts: 100}
	ctx := chaos.WithFarmFaults(context.Background(), ff)
	got, err := CheckBatch(ctx, hs, criteria, 2)
	if err != nil {
		t.Fatalf("degraded shard failed the batch: %v", err)
	}
	v := got[0][0]
	if !v.Undecided {
		t.Fatalf("degraded shard verdict decided: %v", v)
	}
	if !strings.Contains(v.Reason, "degraded:") || !strings.Contains(v.Reason, "panicked") {
		t.Fatalf("degraded reason %q does not report the panic", v.Reason)
	}
	for i := 1; i < len(hs); i++ {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("healthy shard %d changed: %v vs %v", i, got[i], want[i])
		}
	}
}

// TestCertifyStreamDegradesPastRetries: episode shards that crash past
// the retry bound arrive as DegradedEpisode reports, in order, with every
// verdict undecided and the panic reason attached.
func TestCertifyStreamDegradesPastRetries(t *testing.T) {
	criteria := []spec.Criterion{spec.DUOpacity, spec.FinalStateOpacity}
	cfg := interleavedCfg("tl2", 6)
	ff := &chaos.FarmFaults{PanicEvery: 3, PanicAttempts: 100} // episodes 0 and 3
	ctx := chaos.WithFarmFaults(context.Background(), ff)
	var got []harness.EpisodeReport
	err := CertifyStream(ctx, cfg, criteria, 2, func(ep int, r harness.EpisodeReport) error {
		got = append(got, r)
		return nil
	})
	if err != nil {
		t.Fatalf("degraded episodes failed the stream: %v", err)
	}
	if len(got) != cfg.Episodes {
		t.Fatalf("emitted %d reports, want %d", len(got), cfg.Episodes)
	}
	for ep, r := range got {
		wantDegraded := ep%3 == 0
		if (r.Degraded != "") != wantDegraded {
			t.Fatalf("episode %d degraded=%q, want degraded=%v", ep, r.Degraded, wantDegraded)
		}
		if wantDegraded {
			for _, c := range criteria {
				v := r.Verdicts[c]
				if !v.Undecided || !strings.Contains(v.Reason, "degraded:") {
					t.Fatalf("episode %d criterion %v: verdict %v not honestly degraded", ep, c, v)
				}
			}
		}
	}

	// The aggregate counts degraded episodes (and never as accepted).
	stats, err := Certify(ctx, cfg, criteria, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Degraded != 2 {
		t.Fatalf("CertStats.Degraded = %d, want 2", stats.Degraded)
	}
}

// TestCertifyStreamRecoversInjectedPanic: below the bound, sharded
// results stay byte-identical to the fault-free run.
func TestCertifyStreamRecoversInjectedPanic(t *testing.T) {
	criteria := []spec.Criterion{spec.DUOpacity}
	cfg := interleavedCfg("tl2", 6)
	want, err := Certify(context.Background(), cfg, criteria, 2)
	if err != nil {
		t.Fatal(err)
	}
	ff := &chaos.FarmFaults{PanicEvery: 2, PanicAttempts: shardAttempts - 1}
	ctx := chaos.WithFarmFaults(context.Background(), ff)
	got, err := Certify(ctx, cfg, criteria, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered panics changed certification:\ngot  %#v\nwant %#v", got, want)
	}
}

// TestCertifyOnlineDegradesPastRetries: the online farm counts degraded
// episodes and their verdicts land in Undecided, never Accepted.
func TestCertifyOnlineDegradesPastRetries(t *testing.T) {
	cfg := interleavedCfg("tl2", 4)
	ff := &chaos.FarmFaults{PanicEvery: 2, PanicAttempts: 100} // episodes 0 and 2
	ctx := chaos.WithFarmFaults(context.Background(), ff)
	stats, err := CertifyOnline(ctx, cfg, spec.DUOpacity, 2)
	if err != nil {
		t.Fatalf("degraded episodes failed the online farm: %v", err)
	}
	if stats.Degraded != 2 {
		t.Fatalf("OnlineStats.Degraded = %d, want 2", stats.Degraded)
	}
	if stats.Undecided < 2 {
		t.Fatalf("degraded episodes not counted undecided: %+v", stats)
	}
	if stats.Accepted+stats.Rejected+stats.Undecided != stats.Episodes {
		t.Fatalf("episode accounting broken: %+v", stats)
	}
}

// TestExplorePlansDegradesPastRetries: a crashed exploration shard
// surfaces as BudgetExhausted with DegradedReason — an honest undecided
// proof obligation, not a dropped plan or a failed batch.
func TestExplorePlansDegradesPastRetries(t *testing.T) {
	plans := []stm.Plan{
		harness.PlanOf(harness.Workload{Engine: "tl2", Objects: 2, Goroutines: 2, TxnsPerGoroutine: 1, OpsPerTxn: 2, Seed: 1}),
		harness.PlanOf(harness.Workload{Engine: "tl2", Objects: 2, Goroutines: 2, TxnsPerGoroutine: 1, OpsPerTxn: 2, Seed: 2}),
	}
	ff := &chaos.FarmFaults{PanicEvery: 2, PanicAttempts: 100} // plan 0 only
	ctx := chaos.WithFarmFaults(context.Background(), ff)
	reports, err := ExplorePlans(ctx, "tl2", plans, harness.ExploreConfig{}, 2)
	if err != nil {
		t.Fatalf("degraded exploration failed the batch: %v", err)
	}
	r0 := reports[0]
	if r0.Outcome != harness.BudgetExhausted || r0.DegradedReason == "" {
		t.Fatalf("crashed shard report: outcome=%v degraded=%q, want budget-exhausted with a reason", r0.Outcome, r0.DegradedReason)
	}
	if r0.Engine != "tl2" || len(r0.Plan.Threads) == 0 {
		t.Fatalf("degraded report lost its identity: %+v", r0)
	}
	if reports[1].Outcome != harness.ProvenDUOpaque {
		t.Fatalf("healthy plan outcome = %v, want proven", reports[1].Outcome)
	}
}

// TestCertifyCancelledContext: an already-cancelled context stops the
// farm promptly with the context's error and no partial emission damage.
func TestCertifyCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Certify(ctx, interleavedCfg("tl2", 8), []spec.Criterion{spec.DUOpacity}, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled farm returned %v, want context.Canceled", err)
	}
}

// farmStage wires the soak's farm hook through the real batch path, as
// cmd/stmbench does.
func farmStage(ctx context.Context, h *history.History, c spec.Criterion, nodeLimit int) (spec.Verdict, string, error) {
	vs, err := CheckBatch(ctx, []*history.History{h}, []spec.Criterion{c}, 1, spec.WithNodeLimit(nodeLimit))
	if err != nil {
		return spec.Verdict{}, "", err
	}
	v := vs[0][0]
	if reason, ok := strings.CutPrefix(v.Reason, "degraded: "); ok {
		return v, reason, nil
	}
	return v, "", nil
}

// TestChaosSoakEndToEnd is the PR's acceptance gate: ≥500 randomized
// fault schedules across the three kill-safe engines, each trial running
// engine, stream and farm faults through the full pipeline, with zero
// soundness flips and exact junk accounting. CI runs this under -race.
func TestChaosSoakEndToEnd(t *testing.T) {
	trials := 170 // 3 engines × 170 = 510 schedules
	if testing.Short() {
		trials = 12
	}
	rep, err := harness.ChaosSoak(harness.ChaosConfig{
		Engines: []string{"tl2", "norec", "dstm"},
		Trials:  trials,
		Seed:    20260808,
		Farm:    farmStage,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	for _, f := range rep.Flips {
		t.Errorf("soundness flip: %s", f)
	}
	if rep.Trials != 3*trials {
		t.Fatalf("ran %d trials, want %d", rep.Trials, 3*trials)
	}
	if rep.SpuriousAborts == 0 || rep.CommitDelays == 0 || rep.Kills == 0 {
		t.Errorf("engine faults not exercised: %s", rep.String())
	}
	if rep.JunkInjected == 0 || rep.JunkInjected != rep.JunkRejected {
		t.Errorf("junk contract broken: injected=%d rejected=%d", rep.JunkInjected, rep.JunkRejected)
	}
	if rep.Truncated == 0 {
		t.Errorf("truncation faults not exercised")
	}
	if rep.FarmDegraded == 0 {
		t.Errorf("farm degradation not exercised")
	}
}
