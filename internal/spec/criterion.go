// Package spec implements the TM correctness criteria studied in Attiya,
// Hans, Kuznetsov and Ravi, "Safety of Deferred Update in Transactional
// Memory" (ICDCS 2013) as decision procedures over finite histories:
//
//   - DU-opacity (Definition 3): there is a legal t-complete t-sequential
//     history S equivalent to a completion of H, respecting the real-time
//     order of H, in which every t-read is also legal in its local
//     serialization with respect to H and S — the deferred-update condition
//     forbidding reads from transactions that have not started committing.
//   - Final-state opacity (Definition 4) and opacity (Definition 5: every
//     prefix final-state opaque), following Guerraoui and Kapalka.
//   - TMS2 and the read-commit-order (RCO) opacity of Guerraoui, Henzinger
//     and Singh, as discussed in Section 4.2; the paper gives these
//     informally, and the exact interpretation implemented here is pinned
//     down in the doc comments of CheckTMS2 and CheckRCO.
//   - (Strict) serializability of committed transactions, as baselines.
//
// Deciding these criteria is NP-hard in general; the checkers perform an
// exhaustive search over serialization orders and completion choices with
// aggressive pruning and memoization, which is exact and fast for the small
// histories produced by litmus tests and recorded engine episodes. The
// search state is held in multi-word bitsets, so there is no a-priori
// bound on the number of transactions (the old 64-transaction mask
// ceiling is gone); cost still grows with the number of *overlapping*
// transactions, which the online monitor bounds via WithRetirement.
package spec

import (
	"context"
	"fmt"

	"duopacity/internal/history"
)

// Criterion identifies a correctness criterion.
type Criterion uint8

const (
	// DUOpacity is the paper's Definition 3.
	DUOpacity Criterion = iota + 1
	// FinalStateOpacity is Definition 4 (Guerraoui and Kapalka).
	FinalStateOpacity
	// Opacity is Definition 5: every finite prefix is final-state opaque.
	Opacity
	// TMS2 is the conflict-ordered restriction of final-state opacity
	// discussed in Section 4.2.
	TMS2
	// RCO is the read-commit-order opacity of Guerraoui, Henzinger and
	// Singh, discussed in Section 4.2.
	RCO
	// StrictSerializability requires a legal order of the committed
	// transactions respecting real-time order (aborted transactions and
	// their reads are ignored).
	StrictSerializability
	// Serializability is StrictSerializability without the real-time
	// requirement.
	Serializability
)

var criterionNames = map[Criterion]string{
	DUOpacity:             "du-opacity",
	FinalStateOpacity:     "final-state opacity",
	Opacity:               "opacity",
	TMS2:                  "TMS2",
	RCO:                   "rco-opacity",
	StrictSerializability: "strict serializability",
	Serializability:       "serializability",
}

// String returns the criterion's conventional name.
func (c Criterion) String() string {
	if s, ok := criterionNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Criterion(%d)", uint8(c))
}

// criterionAliases are the short flag names the CLIs use (ducheck
// -criteria, the certd stream hello), accepted anywhere a criterion
// parses from text.
var criterionAliases = map[string]Criterion{
	"du":         DUOpacity,
	"opacity":    Opacity,
	"finalstate": FinalStateOpacity,
	"tms2":       TMS2,
	"rco":        RCO,
	"strictser":  StrictSerializability,
	"ser":        Serializability,
}

// ParseCriterion resolves a criterion from its conventional name
// (String's output, e.g. "du-opacity") or its short CLI alias (du,
// opacity, finalstate, tms2, rco, strictser, ser).
func ParseCriterion(name string) (Criterion, bool) {
	for c, s := range criterionNames {
		if s == name {
			return c, true
		}
	}
	c, ok := criterionAliases[name]
	return c, ok
}

// CriterionAlias returns the short CLI alias for c — the name wire
// protocols use where conventional names cannot appear (they contain
// spaces).
func CriterionAlias(c Criterion) (string, bool) {
	for alias, got := range criterionAliases {
		if got == c {
			return alias, true
		}
	}
	return "", false
}

// MarshalText encodes the criterion as its conventional name, so JSON
// job specs (checkfarm.JobSpec, the certd wire protocol) read
// "du-opacity" rather than a bare enum number. The zero value (no
// criterion chosen yet — configs leave it unset to mean "default")
// round-trips as the empty string.
func (c Criterion) MarshalText() ([]byte, error) {
	if c == 0 {
		return nil, nil
	}
	if _, ok := criterionNames[c]; !ok {
		return nil, fmt.Errorf("unknown criterion %d", uint8(c))
	}
	return []byte(c.String()), nil
}

// UnmarshalText is the inverse of MarshalText; it also accepts the
// short CLI aliases.
func (c *Criterion) UnmarshalText(text []byte) error {
	if len(text) == 0 {
		*c = 0
		return nil
	}
	got, ok := ParseCriterion(string(text))
	if !ok {
		return fmt.Errorf("unknown criterion %q", text)
	}
	*c = got
	return nil
}

// AllCriteria lists every implemented criterion in decreasing strength
// (roughly: du-opacity refines opacity refines final-state opacity; TMS2
// and RCO are incomparable restrictions; serializability is weakest).
func AllCriteria() []Criterion {
	return []Criterion{
		DUOpacity, TMS2, RCO, Opacity, FinalStateOpacity,
		StrictSerializability, Serializability,
	}
}

// monitorableCriteria is the single source of truth for which criteria
// NewMonitor accepts. The NewMonitor error message, the CLI help
// (ducheck -follow, the certd STREAM hello) and the docs criteria matrix
// all derive from this table, so they cannot drift from the switch that
// used to encode it.
var monitorableCriteria = []Criterion{
	DUOpacity, TMS2, RCO, Opacity, FinalStateOpacity,
}

// MonitorableCriteria lists the criteria NewMonitor supports, in
// AllCriteria order. DUOpacity and Opacity are prefix-closed by the
// paper's Corollary 2 and Definition 5; FinalStateOpacity, TMS2 and RCO
// are monitored as the latched property "every response prefix observed
// so far satisfies the criterion", which is prefix-closed by
// construction. The serializability baselines ignore aborted
// transactions entirely, so a violation can appear and disappear as
// completions resolve — they stay batch-only.
func MonitorableCriteria() []Criterion {
	return append([]Criterion(nil), monitorableCriteria...)
}

// Monitorable reports whether NewMonitor accepts c.
func Monitorable(c Criterion) bool {
	for _, mc := range monitorableCriteria {
		if mc == c {
			return true
		}
	}
	return false
}

// MonitorableNames renders the monitorable criteria as a comma-separated
// list of short CLI aliases (e.g. "du, tms2, rco, opacity, finalstate")
// for error messages and flag help.
func MonitorableNames() string {
	s := ""
	for i, c := range monitorableCriteria {
		if i > 0 {
			s += ", "
		}
		if alias, ok := CriterionAlias(c); ok {
			s += alias
		} else {
			s += c.String()
		}
	}
	return s
}

// Verdict is the result of checking a history against a criterion.
type Verdict struct {
	Criterion Criterion
	// OK reports whether the history satisfies the criterion.
	OK bool
	// Serialization is a witness when OK: a legal t-complete t-sequential
	// history satisfying the criterion's conditions. For Opacity the
	// witness is the final-state serialization of the full history.
	Serialization *history.Seq
	// Reason explains a rejection (or an undecided result).
	Reason string
	// Undecided is set when the search hit the node limit before deciding;
	// OK is false in that case but the history was not refuted.
	Undecided bool
	// Nodes counts search nodes explored across the check.
	Nodes int
}

// String renders a one-line summary.
func (v Verdict) String() string {
	switch {
	case v.Undecided:
		return fmt.Sprintf("%s: undecided (%s)", v.Criterion, v.Reason)
	case v.OK && v.Serialization != nil:
		return fmt.Sprintf("%s: OK [%s]", v.Criterion, v.Serialization)
	case v.OK:
		return fmt.Sprintf("%s: OK", v.Criterion)
	default:
		return fmt.Sprintf("%s: violated (%s)", v.Criterion, v.Reason)
	}
}

// Option configures a check.
type Option func(*options)

type options struct {
	nodeLimit            int
	parallelism          int
	tms2AbortedExemption bool
	retireWindow         int
	ctx                  context.Context
}

// WithNodeLimit bounds the number of search nodes explored before the
// checker gives up with an undecided verdict. Zero means unlimited. Under
// WithParallelism the limit becomes a shared budget that all portfolio
// workers draw from.
func WithNodeLimit(n int) Option {
	return func(o *options) { o.nodeLimit = n }
}

// WithContext makes the search abandon work when ctx is cancelled (or its
// deadline passes): the check returns an undecided verdict with reason
// "context cancelled" instead of running to the node limit. The search
// polls the context every few hundred nodes, so cancellation stops even a
// pathological search promptly without slowing the per-node hot path.
// Under WithParallelism every portfolio worker polls the same context.
// A nil context (the default) disables polling entirely.
func WithContext(ctx context.Context) Option {
	return func(o *options) { o.ctx = ctx }
}

// WithParallelism fans the top-level branches of the serialization search
// across n workers with first-witness-wins cancellation and a shared
// atomic node budget. Values <= 1 keep the sequential search.
//
// Acceptance and refutation are unaffected by parallelism; the specific
// witness, the node count, and — when a node limit is set — which checks
// come back undecided at the budget boundary may vary between runs. The
// sequential path stays bit-reproducible.
func WithParallelism(n int) Option {
	return func(o *options) { o.parallelism = n }
}

// WithTMS2AbortedReaderExemption drops the TMS2 conflict-order edges
// whose reader ends aborted: for committed writer T1 and reader T2 with
// X in Wset(T1) ∩ Rset(T2) and res(tryC_1) before inv(tryC_2) in H, the
// edge T1 <_S T2 is imposed only when T2 is not aborted.
//
// This is the executable form of the ROADMAP's open interpretation
// question. The paper pins TMS2 only informally; TMS2's operational
// model validates a reader against the snapshot current at its reads, so
// an aborted reader that observed a value and was then overtaken by the
// writer's commit can arguably serialize before that commit — exactly
// the divergence the differential soak surfaces on committed-state
// deferred-update engines (see the pinned
// internal/harness/testdata/tms2_aborted_reader.hist golden, which this
// option flips from reject to accept). The default reading keeps the
// edges for all readers.
//
// The option only affects CheckTMS2, Check with the TMS2 criterion, and
// NewMonitor(TMS2) — whose incremental edge state drops a reader's
// incoming edges the moment its tryC aborts; other criteria ignore it.
func WithTMS2AbortedReaderExemption() Option {
	return func(o *options) { o.tms2AbortedExemption = true }
}

// WithRetirement enables windowed retirement in the Monitor: once the
// monitored stream holds at least 2*window transactions, the monitor
// looks for a settled prefix — t-complete transactions that real-time
// precede everything still live, with a uniquely forced final committed
// value per object — and replaces it with a checkpoint transaction
// writing those values. Retirement is exact (see DESIGN.md): the verdict
// stream is unchanged, but the monitor's memory and per-event cost stay
// proportional to the live window instead of the whole history.
//
// The option only affects NewMonitor; batch checks ignore it. Values
// <= 0 disable retirement (the default).
func WithRetirement(window int) Option {
	return func(o *options) { o.retireWindow = window }
}

func buildOptions(opts []Option) options {
	var o options
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// Check dispatches to the checker for the given criterion.
//
// Check is safe for concurrent use, including on the same History value:
// histories are immutable once built, and every call allocates its own
// search engine with a per-call memo table. The certification farm
// (internal/checkfarm) relies on this to run checks from many goroutines.
func Check(h *history.History, c Criterion, opts ...Option) Verdict {
	switch c {
	case DUOpacity:
		return CheckDUOpacity(h, opts...)
	case FinalStateOpacity:
		return CheckFinalStateOpacity(h, opts...)
	case Opacity:
		return CheckOpacity(h, opts...)
	case TMS2:
		return CheckTMS2(h, opts...)
	case RCO:
		return CheckRCO(h, opts...)
	case StrictSerializability:
		return CheckStrictSerializability(h, opts...)
	case Serializability:
		return CheckSerializability(h, opts...)
	default:
		return Verdict{Criterion: c, Reason: "unknown criterion"}
	}
}
