package spec

import (
	"context"
	"strings"
	"testing"
	"time"

	"duopacity/internal/history"
)

// searchyHistory builds a small accepting history that defeats the
// unique-writes fast path (two transactions write the same value), so
// every check must run the serialization search — the loop WithContext's
// cancellation polling lives in.
func searchyHistory() *history.History {
	return history.NewBuilder().
		Write(1, "X", 1).Commit(1).
		Write(2, "X", 1).Commit(2).
		Write(3, "Y", 1).Commit(3).
		Read(4, "X", 1).Read(4, "Y", 1).Commit(4).
		History()
}

func TestCheckDecidesSearchyHistoryWithoutContext(t *testing.T) {
	// Sanity for the cancellation tests below: the history is accepted
	// when nothing interferes, so an undecided verdict under a cancelled
	// context is attributable to the context alone.
	for _, c := range []Criterion{DUOpacity, FinalStateOpacity, Opacity} {
		v := Check(searchyHistory(), c)
		if !v.OK || v.Undecided {
			t.Fatalf("%v: reference verdict not accepting: %v", c, v)
		}
	}
}

func TestCheckAlreadyCancelledContextIsUndecided(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, c := range []Criterion{DUOpacity, FinalStateOpacity, Opacity} {
		start := time.Now()
		v := Check(searchyHistory(), c, WithContext(ctx))
		if !v.Undecided {
			t.Fatalf("%v: cancelled context produced a decided verdict: %v", c, v)
		}
		if !strings.Contains(v.Reason, "context cancelled") {
			t.Fatalf("%v: undecided reason %q does not name the context", c, v.Reason)
		}
		if d := time.Since(start); d > 2*time.Second {
			t.Fatalf("%v: cancelled check took %v, want prompt return", c, d)
		}
	}
}

func TestCheckAlreadyCancelledContextPortfolio(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	v := Check(searchyHistory(), DUOpacity, WithContext(ctx), WithParallelism(4))
	if !v.Undecided {
		t.Fatalf("portfolio search under cancelled context decided: %v", v)
	}
	if !strings.Contains(v.Reason, "context cancelled") {
		t.Fatalf("portfolio undecided reason %q does not name the context", v.Reason)
	}
}

func TestCheckContextBackgroundIsHarmless(t *testing.T) {
	v := Check(searchyHistory(), DUOpacity, WithContext(context.Background()))
	if !v.OK || v.Undecided {
		t.Fatalf("background context changed the verdict: %v", v)
	}
}

func TestMonitorAlreadyCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := NewMonitor(DUOpacity, WithContext(ctx))
	if err != nil {
		t.Fatal(err)
	}
	// The monitor's incremental witness can decide cheap streams without
	// ever searching; cancellation only turns searches into undecided
	// verdicts. Force one: duplicate writes on Y defeat the unique-writes
	// theorem inside the batch check, and T3 reading T1's value while T2's
	// later write is already committed defeats the completion-order
	// witness, so the recheck at T3's commit must search — and come back
	// undecided under the cancelled context.
	h := history.NewBuilder().
		Write(5, "Y", 7).Commit(5).
		Write(6, "Y", 7).Commit(6).
		Write(1, "X", 1).Commit(1).
		InvWrite(2, "X", 2).ResWrite(2, "X", 2).
		Read(3, "X", 1).
		Commit(2).
		Commit(3).
		History()
	var last Verdict
	for _, e := range h.Events() {
		v, aerr := m.Append(e)
		if aerr != nil {
			t.Fatalf("well-formed event rejected: %v", aerr)
		}
		last = v
	}
	if !last.Undecided {
		t.Fatalf("monitor under cancelled context decided: %v", last)
	}
	if !strings.Contains(last.Reason, "context cancelled") {
		t.Fatalf("monitor undecided reason %q does not name the context", last.Reason)
	}
	// The same stream on an un-cancelled monitor is accepted, so the
	// undecided verdict above is the context's doing.
	m2, err := NewMonitor(DUOpacity)
	if err != nil {
		t.Fatal(err)
	}
	var ref Verdict
	for _, e := range h.Events() {
		v, aerr := m2.Append(e)
		if aerr != nil {
			t.Fatalf("well-formed event rejected by reference monitor: %v", aerr)
		}
		ref = v
	}
	if !ref.OK || ref.Undecided {
		t.Fatalf("reference monitor verdict not accepting: %v", ref)
	}
}
