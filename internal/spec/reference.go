package spec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"duopacity/internal/history"
)

// This file freezes the PR 1 search engine as an executable reference
// implementation. The optimized engine in checker.go replaces its
// string-keyed memoization, map-based analysis and O(n) candidate scans
// with the indexed-history view, Zobrist fingerprints and bitmask
// iteration — but it must decide exactly like this one. The differential
// fuzz target (FuzzCheckerDifferential) and the differential tests assert
// verdict equality (OK / reason / undecided) between the two on every
// criterion; keep this file semantically frozen.

// refMaxTxns bounds the frozen reference engine: its placed sets and
// predecessor rows are single uint64 masks. The optimized engine has no
// such limit; differential comparisons against this engine must stay
// within this bound.
const refMaxTxns = 64

// refReadReq is an external read of a transaction: a read that returned a
// value and is not preceded by an own write to the same object, so its
// legality depends on the serialization order.
type refReadReq struct {
	obj    int // object index
	val    history.Value
	resIdx int // index in H of the read's response event
	op     history.Op
}

// refWriterEntry records a committed transaction's write on a per-object
// stack, in serialization order.
type refWriterEntry struct {
	txn     int // transaction index
	val     history.Value
	tryCInv int // index in H of the writer's tryC invocation (>= 0)
}

// refEngine is the frozen exhaustive serialization search shared by all
// criteria.
type refEngine struct {
	h    *history.History
	mode searchMode
	opts options

	ids  []history.TxnID
	idx  map[history.TxnID]int
	txs  []*history.TxnInfo
	role []txnRole

	objs   []history.Var
	objIdx map[history.Var]int

	reads      [][]refReadReq          // external reads per txn
	lastWrites []map[int]history.Value // committed values per txn, by object index
	writeObjs  [][]int                 // sorted object indexes written per txn

	pred []uint64 // required predecessors per txn (real-time + extra edges)

	// Search state.
	placed  uint64
	order   []int
	commits []bool
	stacks  [][]refWriterEntry
	memo    map[string]struct{}
	nodes   int

	// Enumeration state (nil unless enumerating).
	collect func(*history.Seq) bool

	witness *history.Seq
	reason  string
	bailed  bool // node limit reached
}

// newRefEngine analyzes h for the given mode. It returns an error verdict
// reason if h is statically refuted or out of scope.
func newRefEngine(h *history.History, mode searchMode, opts options) (*refEngine, string) {
	e := &refEngine{h: h, mode: mode, opts: opts, memo: make(map[string]struct{})}
	all := h.Txns()
	e.idx = make(map[history.TxnID]int, len(all))
	for _, k := range all {
		t := h.Txn(k)
		if mode.committedOnly && !(t.Committed() || t.CommitPending()) {
			continue
		}
		e.idx[k] = len(e.ids)
		e.ids = append(e.ids, k)
		e.txs = append(e.txs, t)
	}
	n := len(e.ids)
	if n > refMaxTxns {
		return nil, fmt.Sprintf("history has %d transactions; exact checking is limited to %d", n, refMaxTxns)
	}

	e.objIdx = make(map[history.Var]int)
	for _, v := range h.Vars() {
		e.objIdx[v] = len(e.objs)
		e.objs = append(e.objs, v)
	}
	e.stacks = make([][]refWriterEntry, len(e.objs))

	e.role = make([]txnRole, n)
	e.reads = make([][]refReadReq, n)
	e.lastWrites = make([]map[int]history.Value, n)
	e.writeObjs = make([][]int, n)
	e.pred = make([]uint64, n)

	for i, t := range e.txs {
		switch {
		case t.Committed():
			e.role[i] = roleMustCommit
		case t.CommitPending():
			e.role[i] = roleEither
		default:
			e.role[i] = roleMustAbort
		}
		// Analyze H|k: own-write overlay, external reads, last writes.
		overlay := make(map[history.Var]history.Value)
		for _, op := range t.Ops {
			if op.Pending {
				break
			}
			switch op.Kind {
			case history.OpRead:
				if op.Out != history.OutOK {
					continue
				}
				if v, ok := overlay[op.Obj]; ok {
					if v != op.Val {
						return nil, fmt.Sprintf(
							"T%d: %v returned %d but the transaction's own latest write to %s is %d",
							t.ID, op, op.Val, op.Obj, v)
					}
					continue // own-write read: legal in every serialization
				}
				e.reads[i] = append(e.reads[i], refReadReq{
					obj: e.objIdx[op.Obj], val: op.Val, resIdx: op.ResIndex, op: op,
				})
			case history.OpWrite:
				if op.Out == history.OutOK {
					overlay[op.Obj] = op.Arg
				}
			}
		}
		lw := make(map[int]history.Value, len(overlay))
		for v, val := range overlay {
			lw[e.objIdx[v]] = val
		}
		e.lastWrites[i] = lw
		for o := range lw {
			e.writeObjs[i] = append(e.writeObjs[i], o)
		}
		sort.Ints(e.writeObjs[i])
	}

	// Ordering constraints.
	if mode.realTime {
		for _, m := range e.ids {
			mi := e.idx[m]
			for _, k := range e.ids {
				if h.RealTimePrecedes(k, m) {
					e.pred[mi] |= 1 << uint(e.idx[k])
				}
			}
		}
	}
	for _, edge := range mode.extraEdges {
		ai, aok := e.idx[edge[0]]
		bi, bok := e.idx[edge[1]]
		if aok && bok {
			e.pred[bi] |= 1 << uint(ai)
		}
	}
	if reason := e.staticReject(); reason != "" {
		return nil, reason
	}
	return e, ""
}

// staticReject performs order-independent feasibility checks so that common
// violations are refuted without search, with a precise reason.
func (e *refEngine) staticReject() string {
	// Candidate writers per (object, value): transactions that can commit
	// that value.
	type key struct {
		obj int
		val history.Value
	}
	capable := make(map[key][]int)
	for i := range e.txs {
		if e.role[i] == roleMustAbort {
			continue
		}
		for o, v := range e.lastWrites[i] {
			capable[key{o, v}] = append(capable[key{o, v}], i)
		}
	}
	for i, t := range e.txs {
		for _, r := range e.reads[i] {
			if r.val == history.InitValue {
				continue // T_0 is always a legal source
			}
			cands := capable[key{r.obj, r.val}]
			found := false
			foundLocal := false
			for _, c := range cands {
				if c == i {
					continue
				}
				found = true
				if e.txs[c].TryCInv >= 0 && e.txs[c].TryCInv < r.resIdx {
					foundLocal = true
				}
			}
			if !found {
				return fmt.Sprintf("T%d: %v has no possible source: no committable transaction writes %s=%d",
					t.ID, r.op, e.objs[r.obj], r.val)
			}
			if e.mode.local && !foundLocal {
				return fmt.Sprintf(
					"T%d: %v violates deferred update: no transaction writing %s=%d invoked tryC before the read's response",
					t.ID, r.op, e.objs[r.obj], r.val)
			}
		}
	}
	return ""
}

// run performs the search and returns the verdict fields.
func (e *refEngine) run() (ok bool, witness *history.Seq, reason string, bailed bool, nodes int) {
	if e.search() {
		return true, e.witness, "", false, e.nodes
	}
	if e.bailed {
		return false, nil, "node limit exceeded", true, e.nodes
	}
	if e.reason == "" {
		e.reason = "no serialization satisfies the criterion"
	}
	return false, nil, e.reason, false, e.nodes
}

// search tries to extend the current partial serialization to a full one.
func (e *refEngine) search() bool {
	if e.opts.nodeLimit > 0 && e.nodes > e.opts.nodeLimit {
		e.bailed = true
		return false
	}
	e.nodes++
	n := len(e.ids)

	// Greedy dominance phase (skipped when enumerating): see checker.go.
	greedy := 0
	if e.collect == nil {
		for progress := true; progress; {
			progress = false
			for i := 0; i < n; i++ {
				bit := uint64(1) << uint(i)
				if e.placed&bit != 0 || e.pred[i]&^e.placed != 0 || len(e.writeObjs[i]) > 0 {
					continue
				}
				if e.pushTxn(i, e.role[i] == roleMustCommit) {
					greedy++
					progress = true
				}
			}
		}
	}
	defer func() {
		for ; greedy > 0; greedy-- {
			e.popTxn()
		}
	}()

	if len(e.order) == n {
		return e.emit()
	}
	key := e.stateKey()
	if _, dead := e.memo[key]; dead {
		return false
	}
	found := false
	for i := 0; i < n; i++ {
		bit := uint64(1) << uint(i)
		if e.placed&bit != 0 || e.pred[i]&^e.placed != 0 {
			continue
		}
		switch e.role[i] {
		case roleMustCommit:
			found = e.place(i, true)
		case roleMustAbort:
			found = e.place(i, false)
		case roleEither:
			found = e.place(i, true) || e.place(i, false)
		}
		if found {
			return true
		}
		if e.bailed {
			return false
		}
	}
	if e.collect == nil {
		e.memo[key] = struct{}{}
	}
	return false
}

// pushTxn checks transaction i's reads against the current stacks and, if
// legal, appends it with the given commit decision, updating the stacks.
func (e *refEngine) pushTxn(i int, commit bool) bool {
	for _, r := range e.reads[i] {
		st := e.stacks[r.obj]
		if len(st) > 0 {
			if st[len(st)-1].val != r.val {
				return false
			}
		} else if r.val != history.InitValue {
			return false
		}
		if e.mode.local {
			legal := false
			foundIncluded := false
			for j := len(st) - 1; j >= 0; j-- {
				if st[j].tryCInv < r.resIdx {
					foundIncluded = true
					legal = st[j].val == r.val
					break
				}
			}
			if !foundIncluded {
				legal = r.val == history.InitValue
			}
			if !legal {
				return false
			}
		}
	}
	e.placed |= uint64(1) << uint(i)
	e.order = append(e.order, i)
	e.commits = append(e.commits, commit)
	if commit {
		for _, o := range e.writeObjs[i] {
			e.stacks[o] = append(e.stacks[o], refWriterEntry{
				txn: i, val: e.lastWrites[i][o], tryCInv: e.txs[i].TryCInv,
			})
		}
	}
	return true
}

// popTxn undoes the most recent pushTxn.
func (e *refEngine) popTxn() {
	i := e.order[len(e.order)-1]
	if e.commits[len(e.commits)-1] {
		for _, o := range e.writeObjs[i] {
			e.stacks[o] = e.stacks[o][:len(e.stacks[o])-1]
		}
	}
	e.order = e.order[:len(e.order)-1]
	e.commits = e.commits[:len(e.commits)-1]
	e.placed &^= uint64(1) << uint(i)
}

// place appends transaction i with the given commit decision, recurses, and
// restores state.
func (e *refEngine) place(i int, commit bool) bool {
	if !e.pushTxn(i, commit) {
		return false
	}
	found := e.search()
	e.popTxn()
	return found
}

// emit materializes the witness for the current complete order.
func (e *refEngine) emit() bool {
	order := make([]history.TxnID, len(e.order))
	commit := make(map[history.TxnID]bool, len(e.order))
	for pos, i := range e.order {
		order[pos] = e.ids[i]
		commit[e.ids[i]] = e.commits[pos]
	}
	var s *history.Seq
	if e.mode.committedOnly {
		s = e.committedSeq(order, commit)
	} else {
		var err error
		s, err = history.SeqFromHistory(e.h, order, commit)
		if err != nil {
			panic("spec: internal error materializing witness: " + err.Error())
		}
	}
	if e.collect != nil {
		stop := e.collect(s)
		if stop {
			e.witness = s
			return true
		}
		return false
	}
	e.witness = s
	return true
}

// committedSeq builds the witness for the serializability baselines, which
// order only the committed transactions.
func (e *refEngine) committedSeq(order []history.TxnID, commit map[history.TxnID]bool) *history.Seq {
	s := &history.Seq{}
	for _, k := range order {
		t := e.h.Txn(k)
		ops := append([]history.Op(nil), t.Ops...)
		if t.CommitPending() {
			last := &ops[len(ops)-1]
			last.Pending = false
			if commit[k] {
				last.Out = history.OutCommit
			} else {
				last.Out = history.OutAbort
			}
		}
		s.Txns = append(s.Txns, history.SeqTxn{ID: k, Ops: ops})
	}
	return s
}

// stateKey fingerprints the search state: the placed set plus, per object,
// the stack of committed writers in placement order.
func (e *refEngine) stateKey() string {
	var b strings.Builder
	b.Grow(16 + 4*len(e.objs))
	b.WriteString(strconv.FormatUint(e.placed, 16))
	for _, st := range e.stacks {
		b.WriteByte('|')
		for _, w := range st {
			b.WriteString(strconv.Itoa(w.txn))
			b.WriteByte(',')
		}
	}
	return b.String()
}

// refDecide runs the reference engine for one mode.
func refDecide(h *history.History, c Criterion, mode searchMode, o options) Verdict {
	e, reject := newRefEngine(h, mode, o)
	if reject != "" {
		return Verdict{Criterion: c, Reason: reject}
	}
	ok, witness, reason, bailed, nodes := e.run()
	return Verdict{
		Criterion:     c,
		OK:            ok,
		Serialization: witness,
		Reason:        reason,
		Undecided:     bailed,
		Nodes:         nodes,
	}
}

// checkReference dispatches a criterion to the frozen reference engine,
// mirroring Check: the differential fuzz target asserts that the optimized
// engine and this path agree on every history.
func checkReference(h *history.History, c Criterion, o options) Verdict {
	switch c {
	case DUOpacity:
		return refDecide(h, c, searchMode{local: true, realTime: true}, o)
	case FinalStateOpacity:
		return refDecide(h, c, searchMode{realTime: true}, o)
	case Opacity:
		total := 0
		for i := 1; i <= h.Len(); i++ {
			if i < h.Len() && h.At(i-1).Kind != history.Res {
				continue
			}
			v := refDecide(h.Prefix(i), FinalStateOpacity, searchMode{realTime: true}, o)
			total += v.Nodes
			if v.Undecided {
				v.Criterion = Opacity
				v.Nodes = total
				v.Reason = fmt.Sprintf("prefix of length %d: %s", i, v.Reason)
				return v
			}
			if !v.OK {
				return Verdict{
					Criterion: Opacity,
					Reason:    fmt.Sprintf("prefix of length %d is not final-state opaque: %s", i, v.Reason),
					Nodes:     total,
				}
			}
			if i == h.Len() {
				v.Criterion = Opacity
				v.Nodes = total
				return v
			}
		}
		return Verdict{Criterion: Opacity, OK: true, Serialization: &history.Seq{}}
	case TMS2:
		return refDecide(h, c, searchMode{realTime: true, extraEdges: tms2Edges(h, o.tms2AbortedExemption)}, o)
	case RCO:
		return refDecide(h, c, searchMode{realTime: true, extraEdges: rcoEdges(h)}, o)
	case StrictSerializability:
		return refDecide(h, c, searchMode{realTime: true, committedOnly: true}, o)
	case Serializability:
		return refDecide(h, c, searchMode{committedOnly: true}, o)
	default:
		return Verdict{Criterion: c, Reason: "unknown criterion"}
	}
}
