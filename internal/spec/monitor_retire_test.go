package spec_test

import (
	"fmt"
	"math/rand"
	"testing"

	"duopacity/internal/gen"
	"duopacity/internal/history"
	"duopacity/internal/spec"
)

// seqTxnEvents appends the four events of one sequential read-write
// transaction (read the object's current value, write its own, commit)
// to evs and returns the slice. Streams built from these are du-opaque
// by construction: every transaction is a committed serial step.
func seqTxnEvents(evs []history.Event, k history.TxnID, obj history.Var, read, write history.Value) []history.Event {
	return append(evs,
		history.Event{Kind: history.Inv, Op: history.OpRead, Txn: k, Obj: obj},
		history.Event{Kind: history.Res, Op: history.OpRead, Txn: k, Obj: obj, Val: read, Out: history.OutOK},
		history.Event{Kind: history.Inv, Op: history.OpWrite, Txn: k, Obj: obj, Arg: write},
		history.Event{Kind: history.Res, Op: history.OpWrite, Txn: k, Obj: obj, Arg: write, Out: history.OutOK},
		history.Event{Kind: history.Inv, Op: history.OpTryCommit, Txn: k},
		history.Event{Kind: history.Res, Op: history.OpTryCommit, Txn: k, Out: history.OutCommit},
	)
}

// seqStream builds n sequential read-write transactions round-robin over
// objs objects.
func seqStream(n, objs int) []history.Event {
	var evs []history.Event
	last := make([]history.Value, objs)
	for k := 1; k <= n; k++ {
		oi := k % objs
		obj := history.Var(fmt.Sprintf("X%d", oi))
		evs = seqTxnEvents(evs, history.TxnID(k), obj, last[oi], history.Value(k))
		last[oi] = history.Value(k)
	}
	return evs
}

// TestMonitorManyTxnsStaysDecided inverts the old 64-transaction wall:
// the monitor used to return a blanket undecided verdict ("limited to
// 64") past 64 transactions. With multi-word bitsets every response of a
// 130-transaction stream must be decided OK, without retirement.
func TestMonitorManyTxnsStaysDecided(t *testing.T) {
	m, err := spec.NewMonitor(spec.DUOpacity)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range seqStream(130, 3) {
		v, err := m.Append(e)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !v.OK || v.Undecided {
			t.Fatalf("event %d (%v): verdict %+v, want decided OK", i, e, v)
		}
	}
	if n := m.LiveTxns(); n != 130 {
		t.Fatalf("LiveTxns = %d, want 130 (no retirement configured)", n)
	}
	if m.Retired() != 0 {
		t.Fatalf("Retired = %d without WithRetirement", m.Retired())
	}
}

// TestMonitorRetirementBoundedLive pins the memory bound: with
// retirement enabled, a long sequential stream keeps the live index at
// O(window) transactions while every verdict stays decided OK.
func TestMonitorRetirementBoundedLive(t *testing.T) {
	const window = 8
	m, err := spec.NewMonitor(spec.DUOpacity, spec.WithRetirement(window))
	if err != nil {
		t.Fatal(err)
	}
	evs := seqStream(2000, 4)
	for i, e := range evs {
		v, err := m.Append(e)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !v.OK || v.Undecided {
			t.Fatalf("event %d: verdict %+v, want decided OK", i, v)
		}
		if live := m.LiveTxns(); live > 2*window+1 {
			t.Fatalf("event %d: %d live transactions, want <= %d", i, live, 2*window+1)
		}
	}
	if m.Retired() < 2000-2*window-1 {
		t.Fatalf("Retired = %d, want nearly all of 2000", m.Retired())
	}
	if m.Len() != len(evs) {
		t.Fatalf("Len = %d, want %d observed events", m.Len(), len(evs))
	}
	searches, fastHits := m.Stats()
	if searches > 2 {
		t.Fatalf("retirement must not force searches: %d searches, %d fast hits", searches, fastHits)
	}
}

// feedBoth drives a retiring and a full monitor over the same events and
// requires identical verdicts (OK, Undecided, latching point) at every
// step. It returns the two monitors for post-hoc assertions.
func feedBoth(t *testing.T, c spec.Criterion, window int, evs []history.Event) (retiring, full *spec.Monitor) {
	t.Helper()
	retiring, err := spec.NewMonitor(c, spec.WithRetirement(window))
	if err != nil {
		t.Fatal(err)
	}
	full, err = spec.NewMonitor(c)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range evs {
		vr, errR := retiring.Append(e)
		vf, errF := full.Append(e)
		if (errR == nil) != (errF == nil) {
			t.Fatalf("event %d (%v): retiring err %v, full err %v", i, e, errR, errF)
		}
		if errR != nil {
			continue
		}
		if vr.OK != vf.OK || vr.Undecided != vf.Undecided {
			t.Fatalf("event %d (%v): retiring %+v, full %+v", i, e, vr, vf)
		}
	}
	return retiring, full
}

// chunkedStream concatenates chunks generated du-opaque concurrent
// histories (transaction ids remapped to stay globally unique), each
// followed by one serial sync transaction that commits a write of
// InitValue to every object. The sync resets the abstract state so the
// next chunk's reads (generated against a fresh initial state) stay
// legal, and it gives retirement what pipelined traffic denies it:
// a real-time barrier with a forced final committed state.
func chunkedStream(t *testing.T, chunks, txnsPerChunk int, seed int64) []history.Event {
	t.Helper()
	var evs []history.Event
	objs := []history.Var{"XA", "XB", "XC", "XD"}
	for c := 0; c < chunks; c++ {
		// Every transaction t-completes (commits or aborts): a transaction
		// that never finishes legitimately pins the retirement window, so
		// shapes that stay incomplete forever would make "nothing retired"
		// the correct outcome.
		h := gen.DUOpaque(gen.Config{
			Txns: txnsPerChunk, Objects: len(objs), OpsPerTxn: 3, ReadFraction: 0.4,
			PAbort: 0.15, Relax: 4, Seed: seed*100 + int64(c),
		})
		off := history.TxnID(1 + c*1000)
		for _, e := range h.Events() {
			e.Txn += off
			evs = append(evs, e)
		}
		sync := off + history.TxnID(txnsPerChunk) + 1
		for _, o := range objs {
			evs = append(evs,
				history.Event{Kind: history.Inv, Op: history.OpWrite, Txn: sync, Obj: o, Arg: history.InitValue},
				history.Event{Kind: history.Res, Op: history.OpWrite, Txn: sync, Obj: o, Arg: history.InitValue, Out: history.OutOK},
			)
		}
		evs = append(evs,
			history.Event{Kind: history.Inv, Op: history.OpTryCommit, Txn: sync},
			history.Event{Kind: history.Res, Op: history.OpTryCommit, Txn: sync, Out: history.OutCommit},
		)
	}
	return evs
}

// TestMonitorRetirementDifferential pins the retiring monitor against a
// full monitor over generated concurrent du-opaque streams and over
// streams with planted violations: retirement must never change a
// verdict, only the memory footprint.
func TestMonitorRetirementDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for seed := int64(0); seed < 4; seed++ {
		evs := chunkedStream(t, 8, 12, 900+seed)
		retiring, _ := feedBoth(t, spec.DUOpacity, 8, evs)
		if retiring.Retired() == 0 {
			t.Errorf("seed %d: nothing retired over %d transactions", seed, 8*13)
		}
		if live := retiring.LiveTxns(); live >= 8*13 {
			t.Errorf("seed %d: live index not bounded: %d", seed, live)
		}
		// Heavily pipelined traffic without quiescent points: overlapping
		// committed writers keep the final state ambiguous, so little or
		// nothing retires — but the verdicts must still match exactly.
		h := gen.DUOpaque(gen.Config{
			Txns: 150, Objects: 4, OpsPerTxn: 3, ReadFraction: 0.4,
			PAbort: 0.15, Relax: 4, Seed: 900 + seed,
		})
		feedBoth(t, spec.DUOpacity, 8, h.Events())
		// Planted violation: both monitors must refute at the same event.
		if mut, ok := gen.MutateSourcelessRead(h, rng); ok {
			feedBoth(t, spec.DUOpacity, 8, mut.Events())
		}
	}
}

// TestMonitorRetirementViolationAfterRetire plants the violation deep in
// the stream, long after the prefix that makes it stale has been
// retired: a read of a value overwritten thousands of events ago must
// still be refuted, via the checkpoint's forced final state.
func TestMonitorRetirementViolationAfterRetire(t *testing.T) {
	evs := seqStream(500, 3)
	// T_501 reads X0's long-retired value written by T_3 (object X0 was
	// last written by T_498).
	evs = append(evs,
		history.Event{Kind: history.Inv, Op: history.OpRead, Txn: 501, Obj: "X0"},
		history.Event{Kind: history.Res, Op: history.OpRead, Txn: 501, Obj: "X0", Val: 3, Out: history.OutOK},
	)
	retiring, _ := feedBoth(t, spec.DUOpacity, 8, evs)
	if v := retiring.Verdict(); v.OK || v.Undecided {
		t.Fatalf("stale read survived retirement: %+v", v)
	}
	if retiring.Retired() == 0 {
		t.Fatal("nothing retired before the violation")
	}
}

// TestMonitorRetirementAmbiguityBlocks exercises the forced-state
// condition. Two overlapping committed writers of X leave X's final
// value ambiguous — a later read may legally observe either order — so
// the pair must stay live (retiring them behind a checkpoint would pick
// one value and wrongly refute a read of the other). Once a later
// writer that real-time follows both commits, the ambiguity is dead and
// retirement resumes.
func TestMonitorRetirementAmbiguityBlocks(t *testing.T) {
	var evs []history.Event
	// T1 and T2 overlap: both write X, neither real-time precedes the other.
	evs = append(evs,
		history.Event{Kind: history.Inv, Op: history.OpWrite, Txn: 1, Obj: "X", Arg: 1},
		history.Event{Kind: history.Inv, Op: history.OpWrite, Txn: 2, Obj: "X", Arg: 2},
		history.Event{Kind: history.Res, Op: history.OpWrite, Txn: 1, Obj: "X", Arg: 1, Out: history.OutOK},
		history.Event{Kind: history.Res, Op: history.OpWrite, Txn: 2, Obj: "X", Arg: 2, Out: history.OutOK},
		history.Event{Kind: history.Inv, Op: history.OpTryCommit, Txn: 1},
		history.Event{Kind: history.Res, Op: history.OpTryCommit, Txn: 1, Out: history.OutCommit},
		history.Event{Kind: history.Inv, Op: history.OpTryCommit, Txn: 2},
		history.Event{Kind: history.Res, Op: history.OpTryCommit, Txn: 2, Out: history.OutCommit},
	)
	// Sequential traffic on another object: triggers retirement attempts
	// but must not retire the ambiguous pair.
	last := history.Value(0)
	for k := history.TxnID(3); k <= 12; k++ {
		evs = seqTxnEvents(evs, k, "Y", last, history.Value(k)*10)
		last = history.Value(k) * 10
	}
	// A read of T1's value: legal only with T2 <S T1, which must still be
	// available — the retiring monitor must accept exactly like the full
	// one.
	evs = append(evs,
		history.Event{Kind: history.Inv, Op: history.OpRead, Txn: 13, Obj: "X"},
		history.Event{Kind: history.Res, Op: history.OpRead, Txn: 13, Obj: "X", Val: 1, Out: history.OutOK},
		history.Event{Kind: history.Inv, Op: history.OpTryCommit, Txn: 13},
		history.Event{Kind: history.Res, Op: history.OpTryCommit, Txn: 13, Out: history.OutCommit},
	)
	// A dominating writer of X commits: the pair's values are now dead,
	// the prefix's final state is forced, retirement resumes.
	evs = seqTxnEvents(evs, 14, "X", 1, 99)
	for k := history.TxnID(15); k <= 24; k++ {
		evs = seqTxnEvents(evs, k, "Y", last, history.Value(k)*10)
		last = history.Value(k) * 10
	}
	retiring, _ := feedBoth(t, spec.DUOpacity, 2, evs)
	if v := retiring.Verdict(); !v.OK {
		t.Fatalf("final verdict %+v, want OK", v)
	}
	if retiring.Retired() == 0 {
		t.Fatal("retirement never resumed after the ambiguity resolved")
	}
	// And the converse: after the dominating writer, a read of the
	// retired ambiguous values must be refuted by both monitors alike.
	evs = append(evs,
		history.Event{Kind: history.Inv, Op: history.OpRead, Txn: 25, Obj: "X"},
		history.Event{Kind: history.Res, Op: history.OpRead, Txn: 25, Obj: "X", Val: 2, Out: history.OutOK},
	)
	retiring, _ = feedBoth(t, spec.DUOpacity, 2, evs)
	if v := retiring.Verdict(); v.OK {
		t.Fatal("read of a dead value accepted after retirement")
	}
}

// TestMonitorRetirementRejectsCheckpointID: the reserved checkpoint
// transaction id must be refused from the outside when retirement is on.
func TestMonitorRetirementRejectsCheckpointID(t *testing.T) {
	m, err := spec.NewMonitor(spec.DUOpacity, spec.WithRetirement(4))
	if err != nil {
		t.Fatal(err)
	}
	e := history.Event{Kind: history.Inv, Op: history.OpWrite, Txn: -1, Obj: "X", Arg: 1}
	if _, err := m.Append(e); err == nil {
		t.Fatal("reserved checkpoint id accepted")
	}
	if m.Len() != 0 {
		t.Fatalf("rejected event moved the monitor: Len = %d", m.Len())
	}
}

// TestMonitorCleanResponseAllocs gates the copy-on-write witness: clean
// (non-commit) responses on the fast path must be allocation-free on
// average once the monitor's buffers are warm (amortized slice growth is
// the only remaining source).
func TestMonitorCleanResponseAllocs(t *testing.T) {
	m, err := spec.NewMonitor(spec.DUOpacity)
	if err != nil {
		t.Fatal(err)
	}
	// Warm: one live transaction with 64 writes grows every buffer.
	w := func(v history.Value) {
		inv := history.Event{Kind: history.Inv, Op: history.OpWrite, Txn: 1, Obj: "X", Arg: v}
		res := history.Event{Kind: history.Res, Op: history.OpWrite, Txn: 1, Obj: "X", Arg: v, Out: history.OutOK}
		if _, err := m.Append(inv); err != nil {
			t.Fatal(err)
		}
		v2, err := m.Append(res)
		if err != nil {
			t.Fatal(err)
		}
		if !v2.OK {
			t.Fatalf("clean write refused: %+v", v2)
		}
	}
	for i := 0; i < 64; i++ {
		w(history.Value(i))
	}
	v := history.Value(64)
	avg := testing.AllocsPerRun(200, func() {
		w(v)
		v++
	})
	if avg > 0.5 {
		t.Fatalf("clean response allocates %.2f objects/op on average, want ~0", avg)
	}
}
