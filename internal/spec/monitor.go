package spec

import (
	"fmt"

	"duopacity/internal/history"
)

// Monitor checks a criterion online while a history is being produced —
// the use the paper's Section 5 envisions for a constructive correctness
// condition. Prefix closure (Corollary 2 for du-opacity; Definition 5 for
// opacity) makes monitoring sound: once a prefix is rejected, every
// extension is rejected, so the monitor latches the violation.
//
// The monitor rides the streaming ingestion core (history.Stream): each
// event is validated in O(1) amortized time and folded into the live
// history and its incrementally maintained index — unlike the
// pre-stream monitor, which re-ran history.FromEvents over the whole
// event log at every append. The witness Seq carried by the returned
// Verdict is materialized copy-on-write into monitor-owned buffers:
// t-complete transactions alias their (now immutable) observed
// operations, and only live transactions are completed into reusable
// scratch. A clean response on the fast path therefore allocates
// nothing once the buffers are warm. The flip side is an ownership rule:
// the Verdict's Serialization is valid only until the next Append;
// callers that retain witnesses across events must copy them.
//
// With WithRetirement(window) the monitor also bounds its *memory*: once
// the live history holds 2*window transactions it retires a settled
// prefix — t-complete transactions that real-time precede everything
// still running, whose final committed value per object is forced the
// same way in every serialization — replacing it with a single committed
// checkpoint transaction that writes those values. Prefix closure
// (Corollary 2) makes the cut sound and the forced-state condition makes
// it exact (see DESIGN.md): the verdict stream is identical to an
// unretired monitor's, but state and per-event cost stay O(live window)
// over arbitrarily long runs.
//
// Verdict work happens only at response events (appending an invocation
// to an accepted history preserves acceptance: the new pending operation
// is aborted by every completion without constraining legality, and a new
// pending tryC only adds completion choices — for TMS2 a tryC invocation
// can add conflict-order edges, which the monitor records immediately but
// enforces from the next response prefix on; see NewMonitor). At a
// response, the monitor
// maintains a witness serialization order incrementally instead of
// searching:
//
//   - transactions enter the witness order at the end when they first
//     appear, which can never violate real-time order (nothing real-time
//     precedes a transaction that just performed its first event except
//     transactions already placed earlier);
//   - a response that aborts a transaction the witness already aborts, or
//     commits one it already commits, adds no constraint;
//   - a successful write by a live transaction installs nothing until its
//     tryC commits, so it only needs the witness re-materialized;
//   - a value-returning external read is checked — alone — against the
//     committed writers placed before its transaction (both the latest
//     committed value and the deferred-update local-serialization value);
//   - only commit-decision flips (a pending tryC resolving against the
//     witness's guess) trigger a full re-validation of the order, and
//     only its failure falls back to the exhaustive search.
//
// Appending a malformed event returns an error and leaves the monitor
// completely unchanged (the stream's rejection is side-effect-free), so a
// monitor can skip one bad event and keep consuming the stream.
//
// A Monitor must be fed from one goroutine at a time; use an external
// lock (e.g. the recorder's capture mutex, see recorder.Recorder.Tap) to
// monitor concurrent executions.
type Monitor struct {
	crit Criterion
	opts options
	// recheckOpts is the resolved option set recheck hands to the batch
	// decision procedure: the monitor's node limit and context only —
	// never e.g. its retirement window — built once so the hot path
	// allocates nothing for it.
	recheckOpts options

	st      *history.Stream
	verdict Verdict
	// latched is set once a violation is definitive (prefix closure).
	latched bool
	// searches and fastHits count full searches vs. incremental witness
	// reuses, for introspection and benchmarks.
	searches int
	fastHits int

	// The incrementally maintained witness: a serialization order over
	// dense transaction indexes with per-position commit decisions. It
	// certifies the history observed so far whenever verdict.OK and
	// witnessOK both hold (witnessOK only drops on defensive paths that
	// should be unreachable; the search then re-establishes it).
	order     []int
	commit    []bool
	pos       []int // dense txn index -> position in order
	witnessOK bool

	// undecidedPrefix records the first response prefix whose opacity
	// check hit the node limit. Monitored opacity decides "every prefix
	// final-state opaque" by induction over accepted prefixes; a skipped
	// (undecided) prefix breaks the induction permanently, so the monitor
	// stays undecided from then on instead of reporting a definitive OK
	// it cannot justify. Unused for the other criteria, which are
	// properties of the current history alone.
	undecidedPrefix string

	// edges maintains the criterion's extra conflict-order constraints
	// incrementally (TMS2 / RCO only, nil otherwise): standing edges feed
	// every full search, edges added since the last recheck are validated
	// against the witness on the fast path. See monitor_edges.go.
	edges *edgeTracker
	// localReads selects the read-legality the fast path enforces:
	// du-opacity checks each external read against both the latest
	// committed writer placed before it and the deferred-update local
	// serialization; the other criteria need only the former, and
	// checking both would reject valid witnesses adopted from their
	// weaker searches, degrading the fast path to a search per event.
	localReads bool

	// seq and seqOps are the copy-on-write witness materialization owned
	// by the monitor (see materialize): seq is the Seq handed out via
	// Verdict.Serialization, seqOps the per-position completion scratch
	// for transactions that are not yet t-complete.
	seq    history.Seq
	seqOps [][]history.Op

	// totalEvents and retired count everything the monitor has observed,
	// including what windowed retirement has discarded from the live
	// stream.
	totalEvents int
	retired     int
}

// ckptTxn is the transaction identifier reserved for the retirement
// checkpoint: the committed transaction that replaces a retired prefix,
// writing the prefix's forced final committed values. At most one exists
// at a time (a retirement always swallows the previous checkpoint, which
// sits at dense index 0), so one reserved identifier suffices. A monitor
// with retirement enabled rejects events carrying it.
const ckptTxn history.TxnID = -1

// NewMonitor returns a monitor for the given criterion. The supported
// criteria are exactly MonitorableCriteria(): du-opacity and opacity are
// prefix-closed by the paper's Corollary 2 and Definition 5, and
// final-state opacity, TMS2 and RCO are monitored as the latched property
// "every response prefix observed so far satisfies the criterion" —
// prefix-closed by construction, and equal to the batch verdict at every
// response prefix up to and including the first violation. (The
// distinction matters only for TMS2 with the aborted-reader exemption,
// whose edge removals can heal a batch violation in a later prefix; a
// latched monitor keeps reporting the violation it proved.) TMS2 edges
// appear at tryC invocations; the monitor, which recomputes verdicts only
// at responses, enforces them from the next response prefix on — batch
// verdicts at response prefixes are unaffected.
func NewMonitor(c Criterion, opts ...Option) (*Monitor, error) {
	if !Monitorable(c) {
		return nil, fmt.Errorf("spec: criterion %v not supported by the monitor (monitorable criteria: %s)", c, MonitorableNames())
	}
	m := &Monitor{crit: c, opts: buildOptions(opts), st: history.NewStream(), witnessOK: true}
	m.localReads = c == DUOpacity
	if c == TMS2 || c == RCO {
		m.edges = newEdgeTracker(c, m.opts.tms2AbortedExemption, m.opts.retireWindow > 0)
	}
	// Deadline/cancellation propagation (spec.WithContext on the monitor):
	// a cancelled context turns further rechecks into prompt undecided
	// verdicts instead of full searches.
	m.recheckOpts = options{nodeLimit: m.opts.nodeLimit, ctx: m.opts.ctx}
	m.verdict = Verdict{Criterion: c, OK: true, Serialization: &history.Seq{}}
	return m, nil
}

// Stats reports how many full searches and incremental witness reuses the
// monitor has performed.
func (m *Monitor) Stats() (searches, fastHits int) {
	return m.searches, m.fastHits
}

// History returns a snapshot of the live history: everything observed so
// far, minus any prefix windowed retirement has replaced by its
// checkpoint transaction (T_-1). Without WithRetirement it is the whole
// observed history.
func (m *Monitor) History() *history.History { return m.st.History() }

// Len returns the number of events observed so far, including events of
// retired transactions no longer in the live history.
func (m *Monitor) Len() int { return m.totalEvents }

// Retired returns the number of observed transactions that windowed
// retirement has replaced by a checkpoint. Zero without WithRetirement.
func (m *Monitor) Retired() int { return m.retired }

// LiveTxns returns the number of transactions in the live history
// (including the retirement checkpoint, when one exists).
func (m *Monitor) LiveTxns() int { return m.st.NumTxns() }

// Verdict returns the verdict for the history observed so far.
func (m *Monitor) Verdict() Verdict { return m.verdict }

// Append observes one event and returns the updated verdict. It returns
// an error (leaving the monitor unchanged) when the event would make the
// history ill-formed, or when retirement is enabled and the event
// carries the reserved checkpoint transaction identifier.
//
// The returned Verdict's Serialization is owned by the monitor and valid
// only until the next Append; copy it to retain a witness across events.
func (m *Monitor) Append(e history.Event) (Verdict, error) {
	if m.opts.retireWindow > 0 && e.Txn == ckptTxn {
		return m.verdict, fmt.Errorf("spec: transaction id %d is reserved for the monitor's retirement checkpoint", ckptTxn)
	}
	if err := m.st.Append(e); err != nil {
		return m.verdict, err
	}
	m.totalEvents++
	if m.latched {
		// Prefix closure: the violation is permanent. Keep the original
		// refutation.
		return m.verdict, nil
	}
	if m.edges != nil {
		// Fold the event into the incremental edge state before any
		// verdict work — TMS2 edges appear at tryC invocations, RCO edges
		// and TMS2 exemption removals at tryC responses.
		m.edges.observe(m.st.Live().Index(), e)
	}
	if e.Kind == history.Inv {
		// Invocation events cannot break acceptance; the verdict carries
		// over (the witness order catches up at the next response).
		return m.verdict, nil
	}
	m.verdict = m.recheck(e)
	if !m.verdict.OK && !m.verdict.Undecided {
		m.latched = true
	} else if m.verdict.OK {
		m.maybeRetire()
	}
	return m.verdict, nil
}

// recheck computes the verdict after response event e, trying the
// incremental witness first. The fast path validates the witness against
// the monitored criterion's own conditions — read legality (plus the
// deferred-update local condition for du-opacity only, see localReads)
// and, for TMS2/RCO, the conflict-order edges added since the last
// recheck — so a fast hit certifies exactly; any failure falls through to
// the exhaustive search, which decides exactly.
func (m *Monitor) recheck(e history.Event) Verdict {
	h := m.st.Live()
	if m.crit == Opacity && m.undecidedPrefix != "" {
		// A skipped prefix can never be revisited; opacity of the stream
		// stays undecidable (see undecidedPrefix).
		return Verdict{Criterion: Opacity, Undecided: true, Reason: m.undecidedPrefix}
	}
	ix := h.Index()
	if m.verdict.OK && m.witnessOK && m.fastRecheck(ix, e) {
		m.fastHits++
		if m.edges != nil {
			m.edges.clearPending()
		}
		return Verdict{Criterion: m.crit, OK: true, Serialization: m.materialize(ix)}
	}
	m.searches++
	if m.edges != nil {
		// The search enforces the whole standing edge set; nothing stays
		// pending past it, whatever the outcome.
		defer m.edges.clearPending()
	}
	var v Verdict
	switch m.crit {
	case DUOpacity:
		v = decide(h, DUOpacity, searchMode{local: true, realTime: true}, m.recheckOpts)
	case FinalStateOpacity:
		v = decide(h, FinalStateOpacity, searchMode{realTime: true}, m.recheckOpts)
	case TMS2, RCO:
		// Like final-state opacity, a property of the current history
		// alone — with the incrementally maintained conflict-order edges
		// as extra constraints, exactly the batch checkers' edge sets.
		v = decide(h, m.crit, searchMode{realTime: true, extraEdges: m.edges.edges}, m.recheckOpts)
	default:
		// Opacity: every response prefix seen so far was accepted (or the
		// monitor would have latched, or undecidedPrefix would be set),
		// so final-state opacity of the current history decides opacity
		// incrementally — the monitor never re-walks earlier prefixes the
		// way batch CheckOpacity must.
		v = decide(h, FinalStateOpacity, searchMode{realTime: true}, m.recheckOpts)
		v.Criterion = Opacity
		if v.Undecided {
			m.undecidedPrefix = fmt.Sprintf("prefix of length %d: %s", h.Len(), v.Reason)
			v.Reason = m.undecidedPrefix
		} else if !v.OK {
			v.Reason = fmt.Sprintf("prefix of length %d is not final-state opaque: %s", h.Len(), v.Reason)
		}
	}
	if v.OK && v.Serialization != nil {
		m.adoptWitness(ix, v.Serialization)
	}
	return v
}

// syncOrder appends transactions that entered the history since the last
// response to the end of the witness order. A fresh transaction has a
// single pending operation — no reads to justify, no installed writes —
// and nothing real-time precedes it that is not already placed, so the
// extension is always valid.
func (m *Monitor) syncOrder(ix *history.Indexed) {
	for gi := len(m.pos); gi < ix.NumTxns(); gi++ {
		m.pos = append(m.pos, len(m.order))
		m.order = append(m.order, gi)
		m.commit = append(m.commit, false)
	}
}

// adoptWitness replaces the incremental witness with the order and commit
// decisions of a search-produced serialization.
func (m *Monitor) adoptWitness(ix *history.Indexed, s *history.Seq) {
	n := ix.NumTxns()
	m.order = m.order[:0]
	m.commit = m.commit[:0]
	m.pos = m.pos[:0]
	if len(s.Txns) != n {
		// The search witnesses of the monitorable criteria place every
		// transaction; anything else cannot seed the incremental state.
		m.witnessOK = false
		return
	}
	for i := 0; i < n; i++ {
		m.pos = append(m.pos, 0)
	}
	for i := range s.Txns {
		ti := ix.TxnIndexOf(s.Txns[i].ID)
		if ti < 0 {
			m.order, m.commit, m.pos = m.order[:0], m.commit[:0], m.pos[:0]
			m.witnessOK = false
			return
		}
		m.pos[ti] = i
		m.order = append(m.order, ti)
		m.commit = append(m.commit, s.Txns[i].Committed())
	}
	m.witnessOK = true
}

// fastRecheck decides whether the witness order, incrementally updated,
// still certifies the history extended by response event e. It reports
// false when only the exhaustive search can decide.
func (m *Monitor) fastRecheck(ix *history.Indexed, e history.Event) bool {
	m.syncOrder(ix)
	if m.edges != nil && !m.edges.pendingOK(ix, m.pos) {
		// A conflict-order edge added since the last recheck is violated
		// by the standing witness order; only the search (which enforces
		// the whole edge set) can decide. Standing edges need no per-event
		// check: they were validated when pending, and witness positions
		// only change through adoptWitness, which re-validates everything.
		return false
	}
	gi := ix.TxnIndexOf(e.Txn)
	if gi < 0 {
		return false
	}
	it := &ix.Txns[gi]
	p := m.pos[gi]
	switch {
	case e.Op == history.OpTryCommit && e.Out == history.OutCommit:
		if m.commit[p] {
			return true // the witness had already committed the pending tryC
		}
		// Flip to committed: the transaction's writes enter the stacks at
		// its position; re-validate the whole order.
		m.commit[p] = true
		if m.revalidate(ix) {
			return true
		}
		m.commit[p] = false
		return false
	case e.Out != history.OutOK:
		// A_k on any operation. The witness aborts live transactions, so
		// an abort adds no constraint — unless it had committed a
		// commit-pending transaction that now aborted.
		if !m.commit[p] {
			return true
		}
		m.commit[p] = false
		if m.revalidate(ix) {
			return true
		}
		m.commit[p] = true
		return false
	case e.Op == history.OpRead:
		// A value-returning read. An own-write read constrains nothing
		// once consistent; BadReadOp >= 0 here means e just made the
		// transaction internally inconsistent (earlier inconsistencies
		// would have latched) — let the search produce the exact reason.
		if it.BadReadOp >= 0 {
			return false
		}
		if n := len(it.Reads); n > 0 && it.Reads[n-1].ResIdx == m.st.Len()-1 {
			return m.checkRead(ix, p, it.Reads[n-1])
		}
		return true
	case e.Op == history.OpWrite:
		// A successful write by a (necessarily live) transaction installs
		// nothing until its tryC commits; if the witness somehow commits
		// it already, fall back to a full re-validation.
		if !m.commit[p] {
			return true
		}
		return m.revalidate(ix)
	default:
		return false
	}
}

// checkRead verifies one external value-returning read of the transaction
// at position readerPos against the committed writers placed before it:
// the latest committed write to the object must be the value read
// (legality) and — when the monitored criterion is du-opacity
// (localReads) — so must the latest one whose tryC invocation precedes
// the read's response in H (the deferred-update local serialization),
// with T_0's InitValue as the base case for both.
func (m *Monitor) checkRead(ix *history.Indexed, readerPos int, r history.IndexedRead) bool {
	top := history.InitValue
	local := history.InitValue
	for q := 0; q < readerPos; q++ {
		if !m.commit[q] {
			continue
		}
		wt := &ix.Txns[m.order[q]]
		for wi := range wt.Writes {
			w := &wt.Writes[wi]
			if w.Obj > r.Obj {
				break // Writes are sorted by object index
			}
			if w.Obj == r.Obj {
				top = w.Val
				if wt.TryCInv >= 0 && wt.TryCInv < r.ResIdx {
					local = w.Val
				}
			}
		}
	}
	if m.localReads && local != r.Val {
		return false
	}
	return top == r.Val
}

// revalidate re-checks the whole witness order: commit decisions against
// transaction roles, and every external read via checkRead. It runs only
// when a commit decision flips (or defensively), not on the per-event
// fast path.
func (m *Monitor) revalidate(ix *history.Indexed) bool {
	for p, gi := range m.order {
		it := &ix.Txns[gi]
		if it.Committed && !m.commit[p] {
			return false
		}
		if m.commit[p] && !(it.Committed || it.CommitPending) {
			return false
		}
		for _, r := range it.Reads {
			if !m.checkRead(ix, p, r) {
				return false
			}
		}
	}
	return true
}

// materialize builds the Seq for the current witness order copy-on-write
// into the monitor-owned buffers: a t-complete transaction's operations
// are immutable from its last response on, so its SeqTxn aliases the
// observed H|k directly; only transactions that still need a completion
// (Definition 2) are copied into per-position scratch and completed
// there. On the fast path of a clean response this allocates nothing
// once the buffers have grown to the live-window size. The returned Seq
// is valid until the next Append.
func (m *Monitor) materialize(ix *history.Indexed) *history.Seq {
	n := len(m.order)
	if cap(m.seq.Txns) < n {
		m.seq.Txns = make([]history.SeqTxn, n)
	}
	m.seq.Txns = m.seq.Txns[:n]
	for len(m.seqOps) < n {
		m.seqOps = append(m.seqOps, nil)
	}
	for pos, gi := range m.order {
		it := &ix.Txns[gi]
		t := it.Info
		if it.TComplete {
			m.seq.Txns[pos] = history.SeqTxn{ID: t.ID, Ops: t.Ops}
			continue
		}
		buf := append(m.seqOps[pos][:0], t.Ops...)
		switch {
		case it.CommitPending:
			last := &buf[len(buf)-1]
			last.Pending = false
			if m.commit[pos] {
				last.Out = history.OutCommit
			} else {
				last.Out = history.OutAbort
			}
		case !it.Complete:
			// Pending read, write or tryA: completed with A_k.
			last := &buf[len(buf)-1]
			last.Pending = false
			last.Out = history.OutAbort
		default:
			// Complete but not t-complete: synthetic tryC·A_k.
			buf = append(buf, history.Op{Kind: history.OpTryCommit, Out: history.OutAbort, InvIndex: -1, ResIndex: -1})
		}
		m.seqOps[pos] = buf
		m.seq.Txns[pos] = history.SeqTxn{ID: t.ID, Ops: buf}
	}
	return &m.seq
}

// maybeRetire attempts a windowed retirement after an accepting response.
// It looks for the largest settled prefix — contiguous t-complete
// transactions behind a real-time barrier whose per-object final
// committed state is forced — and retires it when it is worth a rebuild
// (at least half a window). Soundness and exactness are argued in
// DESIGN.md ("Windowed retirement").
func (m *Monitor) maybeRetire() {
	w := m.opts.retireWindow
	if w <= 0 || !m.verdict.OK || m.latched {
		return
	}
	ix := m.st.Live().Index()
	n := ix.NumTxns()
	if n < 2*w {
		return
	}
	min := w / 2
	if min < 1 {
		min = 1
	}
	limit := n
	for {
		r := m.settledPrefix(ix, limit)
		if r < min {
			return
		}
		sigma, bound := m.forcedState(ix, r)
		if bound < 0 {
			m.retire(ix, r, sigma)
			return
		}
		// The final committed value of some object is not forced with the
		// transaction at index bound included; shrink the prefix past it
		// and retry. The loop terminates: limit strictly decreases.
		limit = bound
	}
}

// settledPrefix returns the largest r <= limit such that transactions
// [0,r) are all t-complete and sit behind a real-time barrier: every one
// of them finished before the first event of transaction r (dense order
// is first-appearance order, so transaction r's first event bounds every
// live and future transaction's). Such a prefix real-time precedes
// everything still running or yet to come, so any serialization of any
// extension must place it first, as a block.
func (m *Monitor) settledPrefix(ix *history.Indexed, limit int) int {
	n := ix.NumTxns()
	if limit > n {
		limit = n
	}
	best := 0
	maxLast := -1
	for i := 0; i < limit; i++ {
		it := &ix.Txns[i]
		if maxLast < it.First {
			best = i
		}
		if !it.TComplete {
			return best
		}
		if it.Last > maxLast {
			maxLast = it.Last
		}
	}
	if limit == n {
		// Every transaction is t-complete: the whole history is settled.
		return n
	}
	if maxLast < ix.Txns[limit].First {
		return limit
	}
	return best
}

// forcedState computes the retired prefix's final committed state. For
// each object the candidate is its highest-indexed committed writer wl
// below r; the state is forced when every other committed writer of the
// object in the prefix real-time precedes wl, so every serialization
// (all respect real-time order) installs wl's value last. When some
// committed writer overlaps wl instead, the final value is ambiguous —
// a future read could legally observe either order — and forcedState
// returns that wl as the bound the prefix must shrink below (the
// barrier recheck in settledPrefix then also excludes the overlapping
// writer). InitValue writes are dropped from sigma: a checkpoint write
// of the initial value is indistinguishable from T_0's.
func (m *Monitor) forcedState(ix *history.Indexed, r int) (sigma []history.IndexedWrite, bound int) {
	for oi := range ix.Writers {
		wl := -1
		ix.Writers[oi].Range(func(wr int) bool {
			if wr >= r {
				return false
			}
			if ix.Txns[wr].Committed {
				wl = wr
			}
			return true
		})
		if wl < 0 {
			continue
		}
		first := ix.Txns[wl].First
		conflict := false
		ix.Writers[oi].Range(func(wr int) bool {
			if wr >= wl {
				return false
			}
			if ix.Txns[wr].Committed && ix.Txns[wr].Last >= first {
				conflict = true
				return false
			}
			return true
		})
		if conflict {
			return nil, wl
		}
		for _, wv := range ix.Txns[wl].Writes {
			if wv.Obj == oi {
				if wv.Val != history.InitValue {
					sigma = append(sigma, history.IndexedWrite{Obj: oi, Val: wv.Val})
				}
				break
			}
		}
	}
	return sigma, -1
}

// retire replaces the settled prefix [0,r) by a checkpoint transaction
// committing sigma, rebuilding the live stream from the checkpoint's
// events followed by the live transactions' events (the real-time
// barrier guarantees the prefix's events and the live events do not
// interleave, so the suffix of the event log from transaction r's first
// event is exactly the live transactions' history). The incremental
// witness carries over by index shift — the barrier forces every
// witness to place the retired prefix first, so its live tail plus the
// checkpoint at position 0 is a witness for the rebuilt stream — and no
// search is needed.
func (m *Monitor) retire(ix *history.Indexed, r int, sigma []history.IndexedWrite) {
	old := m.st.Live()
	n := ix.NumTxns()
	firstLive := old.Len()
	if r < n {
		firstLive = ix.Txns[r].First
	}
	ns := history.NewStream()
	ok := func(err error) bool { return err == nil }
	for _, wv := range sigma {
		obj := ix.Objs[wv.Obj]
		if !ok(ns.Append(history.Event{Kind: history.Inv, Op: history.OpWrite, Txn: ckptTxn, Obj: obj, Arg: wv.Val})) ||
			!ok(ns.Append(history.Event{Kind: history.Res, Op: history.OpWrite, Txn: ckptTxn, Obj: obj, Arg: wv.Val, Out: history.OutOK})) {
			return
		}
	}
	if !ok(ns.Append(history.Event{Kind: history.Inv, Op: history.OpTryCommit, Txn: ckptTxn})) ||
		!ok(ns.Append(history.Event{Kind: history.Res, Op: history.OpTryCommit, Txn: ckptTxn, Out: history.OutCommit})) {
		return
	}
	for i := firstLive; i < old.Len(); i++ {
		if !ok(ns.Append(old.At(i))) {
			// Unreachable: the suffix was valid in the old stream and the
			// checkpoint prefix cannot invalidate other transactions'
			// events. Abandon the retirement; the old stream is untouched.
			return
		}
	}
	for i := 0; i < r; i++ {
		if ix.TxnIDs[i] != ckptTxn {
			m.retired++
		}
	}
	m.st = ns
	nix := ns.Live().Index()
	if m.edges != nil {
		// Edges touching retired transactions are discarded: the barrier's
		// real-time order subsumes retired-to-live edges, and the others
		// were frozen-satisfied by the witness that accepted the prefix.
		m.edges.dropRetired(nix)
	}
	if m.witnessOK && len(m.order) == n {
		// Index shift: retired entries occupy the first r witness
		// positions (the barrier forces them first); the tail maps to the
		// rebuilt stream's dense indexes offset by the checkpoint.
		order := make([]int, 0, n-r+1)
		commit := make([]bool, 0, n-r+1)
		order = append(order, 0)
		commit = append(commit, true)
		for p, gi := range m.order {
			if gi >= r {
				order = append(order, gi-r+1)
				commit = append(commit, m.commit[p])
			}
		}
		pos := make([]int, len(order))
		for p, gi := range order {
			pos[gi] = p
		}
		m.order, m.commit, m.pos = order, commit, pos
		m.verdict.Serialization = m.materialize(nix)
	} else {
		// Defensive: without a full witness the incremental state cannot
		// shift; drop it and let the next response search.
		m.order, m.commit, m.pos = m.order[:0], m.commit[:0], m.pos[:0]
		m.witnessOK = false
	}
}
