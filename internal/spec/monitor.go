package spec

import (
	"fmt"

	"duopacity/internal/history"
)

// Monitor checks a criterion online while a history is being produced —
// the use the paper's Section 5 envisions for a constructive correctness
// condition. Prefix closure (Corollary 2 for du-opacity; Definition 5 for
// opacity) makes monitoring sound: once a prefix is rejected, every
// extension is rejected, so the monitor latches the violation.
//
// The monitor rides the streaming ingestion core (history.Stream): each
// event is validated in O(1) amortized time and folded into the live
// history and its incrementally maintained index — unlike the
// pre-stream monitor, which re-ran history.FromEvents over the whole
// event log at every append. The one per-response cost that still grows
// with the history is materializing the witness Seq carried by the
// returned Verdict (a slab copy of the observed operations); making that
// lazy is the recorded follow-up in ROADMAP.md.
//
// Verdict work happens only at response events (appending an invocation
// to an accepted history preserves acceptance: the new pending operation
// is aborted by every completion without constraining legality, and a new
// pending tryC only adds completion choices). At a response, the monitor
// maintains a witness serialization order incrementally instead of
// searching:
//
//   - transactions enter the witness order at the end when they first
//     appear, which can never violate real-time order (nothing real-time
//     precedes a transaction that just performed its first event except
//     transactions already placed earlier);
//   - a response that aborts a transaction the witness already aborts, or
//     commits one it already commits, adds no constraint;
//   - a successful write by a live transaction installs nothing until its
//     tryC commits, so it only needs the witness re-materialized;
//   - a value-returning external read is checked — alone — against the
//     committed writers placed before its transaction (both the latest
//     committed value and the deferred-update local-serialization value);
//   - only commit-decision flips (a pending tryC resolving against the
//     witness's guess) trigger a full re-validation of the order, and
//     only its failure falls back to the exhaustive search.
//
// Appending a malformed event returns an error and leaves the monitor
// completely unchanged (the stream's rejection is side-effect-free), so a
// monitor can skip one bad event and keep consuming the stream.
//
// A Monitor must be fed from one goroutine at a time; use an external
// lock (e.g. the recorder's capture mutex, see recorder.Recorder.Tap) to
// monitor concurrent executions.
type Monitor struct {
	crit Criterion
	opts options

	st      *history.Stream
	verdict Verdict
	// latched is set once a violation is definitive (prefix closure).
	latched bool
	// searches and fastHits count full searches vs. incremental witness
	// reuses, for introspection and benchmarks.
	searches int
	fastHits int

	// The incrementally maintained witness: a serialization order over
	// dense transaction indexes with per-position commit decisions. It
	// certifies the history observed so far whenever verdict.OK and
	// witnessOK both hold (witnessOK only drops on defensive paths that
	// should be unreachable; the search then re-establishes it).
	order     []int
	commit    []bool
	pos       []int // dense txn index -> position in order
	witnessOK bool

	// undecidedPrefix records the first response prefix whose opacity
	// check hit the node limit. Monitored opacity decides "every prefix
	// final-state opaque" by induction over accepted prefixes; a skipped
	// (undecided) prefix breaks the induction permanently, so the monitor
	// stays undecided from then on instead of reporting a definitive OK
	// it cannot justify. Unused for the other criteria, which are
	// properties of the current history alone.
	undecidedPrefix string
}

// NewMonitor returns a monitor for the given criterion. Supported
// criteria are DUOpacity, FinalStateOpacity and Opacity (for which
// prefix-wise monitoring is the definition itself).
func NewMonitor(c Criterion, opts ...Option) (*Monitor, error) {
	switch c {
	case DUOpacity, FinalStateOpacity, Opacity:
	default:
		return nil, fmt.Errorf("spec: criterion %v not supported by the monitor", c)
	}
	m := &Monitor{crit: c, opts: buildOptions(opts), st: history.NewStream(), witnessOK: true}
	m.verdict = Verdict{Criterion: c, OK: true, Serialization: &history.Seq{}}
	return m, nil
}

// Stats reports how many full searches and incremental witness reuses the
// monitor has performed.
func (m *Monitor) Stats() (searches, fastHits int) {
	return m.searches, m.fastHits
}

// History returns a snapshot of the history observed so far.
func (m *Monitor) History() *history.History { return m.st.History() }

// Len returns the number of events observed so far.
func (m *Monitor) Len() int { return m.st.Len() }

// Verdict returns the verdict for the history observed so far.
func (m *Monitor) Verdict() Verdict { return m.verdict }

// Append observes one event and returns the updated verdict. It returns
// an error (leaving the monitor unchanged) when the event would make the
// history ill-formed.
func (m *Monitor) Append(e history.Event) (Verdict, error) {
	if err := m.st.Append(e); err != nil {
		return m.verdict, err
	}
	if m.latched {
		// Prefix closure: the violation is permanent. Keep the original
		// refutation.
		return m.verdict, nil
	}
	if e.Kind == history.Inv {
		// Invocation events cannot break acceptance; the verdict carries
		// over (the witness order catches up at the next response).
		return m.verdict, nil
	}
	m.verdict = m.recheck(e)
	if !m.verdict.OK && !m.verdict.Undecided {
		m.latched = true
	}
	return m.verdict, nil
}

// recheck computes the verdict after response event e, trying the
// incremental witness first. The witness is validated against the
// deferred-update conditions, which imply final-state opacity, so the
// fast path is sound for every monitorable criterion (a du-invalid
// witness may still satisfy the weaker criteria — the search then decides
// exactly).
func (m *Monitor) recheck(e history.Event) Verdict {
	h := m.st.Live()
	if h.NumTxns() > 64 {
		// Out of the exact checkers' scope: undecided, not latched, so a
		// long-running monitor degrades explicitly instead of latching a
		// spurious violation.
		return Verdict{
			Criterion: m.crit,
			Undecided: true,
			Reason:    fmt.Sprintf("history has %d transactions; exact monitoring is limited to 64", h.NumTxns()),
		}
	}
	if m.crit == Opacity && m.undecidedPrefix != "" {
		// A skipped prefix can never be revisited; opacity of the stream
		// stays undecidable (see undecidedPrefix).
		return Verdict{Criterion: Opacity, Undecided: true, Reason: m.undecidedPrefix}
	}
	ix := h.Index()
	if m.verdict.OK && m.witnessOK && m.fastRecheck(ix, e) {
		m.fastHits++
		return Verdict{Criterion: m.crit, OK: true, Serialization: m.materialize(ix)}
	}
	m.searches++
	var v Verdict
	switch m.crit {
	case DUOpacity:
		v = CheckDUOpacity(h, WithNodeLimit(m.opts.nodeLimit))
	case FinalStateOpacity:
		v = CheckFinalStateOpacity(h, WithNodeLimit(m.opts.nodeLimit))
	default:
		// Opacity: every response prefix seen so far was accepted (or the
		// monitor would have latched, or undecidedPrefix would be set),
		// so final-state opacity of the current history decides opacity
		// incrementally — the monitor never re-walks earlier prefixes the
		// way batch CheckOpacity must.
		v = CheckFinalStateOpacity(h, WithNodeLimit(m.opts.nodeLimit))
		v.Criterion = Opacity
		if v.Undecided {
			m.undecidedPrefix = fmt.Sprintf("prefix of length %d: %s", h.Len(), v.Reason)
			v.Reason = m.undecidedPrefix
		} else if !v.OK {
			v.Reason = fmt.Sprintf("prefix of length %d is not final-state opaque: %s", h.Len(), v.Reason)
		}
	}
	if v.OK && v.Serialization != nil {
		m.adoptWitness(ix, v.Serialization)
	}
	return v
}

// syncOrder appends transactions that entered the history since the last
// response to the end of the witness order. A fresh transaction has a
// single pending operation — no reads to justify, no installed writes —
// and nothing real-time precedes it that is not already placed, so the
// extension is always valid.
func (m *Monitor) syncOrder(ix *history.Indexed) {
	for gi := len(m.pos); gi < ix.NumTxns(); gi++ {
		m.pos = append(m.pos, len(m.order))
		m.order = append(m.order, gi)
		m.commit = append(m.commit, false)
	}
}

// adoptWitness replaces the incremental witness with the order and commit
// decisions of a search-produced serialization.
func (m *Monitor) adoptWitness(ix *history.Indexed, s *history.Seq) {
	n := ix.NumTxns()
	m.order = m.order[:0]
	m.commit = m.commit[:0]
	m.pos = m.pos[:0]
	if len(s.Txns) != n {
		// The search witnesses of the monitorable criteria place every
		// transaction; anything else cannot seed the incremental state.
		m.witnessOK = false
		return
	}
	for i := 0; i < n; i++ {
		m.pos = append(m.pos, 0)
	}
	for i := range s.Txns {
		ti := ix.TxnIndexOf(s.Txns[i].ID)
		if ti < 0 {
			m.order, m.commit, m.pos = m.order[:0], m.commit[:0], m.pos[:0]
			m.witnessOK = false
			return
		}
		m.pos[ti] = i
		m.order = append(m.order, ti)
		m.commit = append(m.commit, s.Txns[i].Committed())
	}
	m.witnessOK = true
}

// fastRecheck decides whether the witness order, incrementally updated,
// still certifies the history extended by response event e. It reports
// false when only the exhaustive search can decide.
func (m *Monitor) fastRecheck(ix *history.Indexed, e history.Event) bool {
	m.syncOrder(ix)
	gi := ix.TxnIndexOf(e.Txn)
	if gi < 0 {
		return false
	}
	it := &ix.Txns[gi]
	p := m.pos[gi]
	switch {
	case e.Op == history.OpTryCommit && e.Out == history.OutCommit:
		if m.commit[p] {
			return true // the witness had already committed the pending tryC
		}
		// Flip to committed: the transaction's writes enter the stacks at
		// its position; re-validate the whole order.
		m.commit[p] = true
		if m.revalidate(ix) {
			return true
		}
		m.commit[p] = false
		return false
	case e.Out != history.OutOK:
		// A_k on any operation. The witness aborts live transactions, so
		// an abort adds no constraint — unless it had committed a
		// commit-pending transaction that now aborted.
		if !m.commit[p] {
			return true
		}
		m.commit[p] = false
		if m.revalidate(ix) {
			return true
		}
		m.commit[p] = true
		return false
	case e.Op == history.OpRead:
		// A value-returning read. An own-write read constrains nothing
		// once consistent; BadReadOp >= 0 here means e just made the
		// transaction internally inconsistent (earlier inconsistencies
		// would have latched) — let the search produce the exact reason.
		if it.BadReadOp >= 0 {
			return false
		}
		if n := len(it.Reads); n > 0 && it.Reads[n-1].ResIdx == m.st.Len()-1 {
			return m.checkRead(ix, p, it.Reads[n-1])
		}
		return true
	case e.Op == history.OpWrite:
		// A successful write by a (necessarily live) transaction installs
		// nothing until its tryC commits; if the witness somehow commits
		// it already, fall back to a full re-validation.
		if !m.commit[p] {
			return true
		}
		return m.revalidate(ix)
	default:
		return false
	}
}

// checkRead verifies one external value-returning read of the transaction
// at position readerPos against the committed writers placed before it:
// the latest committed write to the object must be the value read
// (legality), and so must the latest one whose tryC invocation precedes
// the read's response in H (the deferred-update local serialization),
// with T_0's InitValue as the base case for both.
func (m *Monitor) checkRead(ix *history.Indexed, readerPos int, r history.IndexedRead) bool {
	top := history.InitValue
	local := history.InitValue
	for q := 0; q < readerPos; q++ {
		if !m.commit[q] {
			continue
		}
		wt := &ix.Txns[m.order[q]]
		for wi := range wt.Writes {
			w := &wt.Writes[wi]
			if w.Obj > r.Obj {
				break // Writes are sorted by object index
			}
			if w.Obj == r.Obj {
				top = w.Val
				if wt.TryCInv >= 0 && wt.TryCInv < r.ResIdx {
					local = w.Val
				}
			}
		}
	}
	return top == r.Val && local == r.Val
}

// revalidate re-checks the whole witness order: commit decisions against
// transaction roles, and every external read via checkRead. It runs only
// when a commit decision flips (or defensively), not on the per-event
// fast path.
func (m *Monitor) revalidate(ix *history.Indexed) bool {
	for p, gi := range m.order {
		it := &ix.Txns[gi]
		if it.Committed && !m.commit[p] {
			return false
		}
		if m.commit[p] && !(it.Committed || it.CommitPending) {
			return false
		}
		for _, r := range it.Reads {
			if !m.checkRead(ix, p, r) {
				return false
			}
		}
	}
	return true
}

// materialize builds the Seq for the current witness order via the
// index's slab builder.
func (m *Monitor) materialize(ix *history.Indexed) *history.Seq {
	return ix.SeqForOrder(m.order, m.commit)
}
