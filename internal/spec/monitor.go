package spec

import (
	"fmt"

	"duopacity/internal/history"
)

// Monitor checks a criterion online while a history is being produced —
// the use the paper's Section 5 envisions for a constructive correctness
// condition. Prefix closure (Corollary 2 for du-opacity; Definition 5 for
// opacity) makes monitoring sound: once a prefix is rejected, every
// extension is rejected, so the monitor latches the violation.
//
// Two optimizations keep the per-event cost low:
//
//   - only response events can change the verdict (appending an invocation
//     to an accepted history preserves acceptance: the new pending
//     operation is aborted by every completion without constraining
//     legality, and a new pending tryC only adds completion choices);
//   - before searching, the monitor tries to re-validate the previous
//     witness — extended with any transactions that appeared since —
//     using the search-free validator, which usually succeeds when the
//     new event does not change who must precede whom.
type Monitor struct {
	crit Criterion
	opts options

	evs     []history.Event
	h       *history.History
	verdict Verdict
	// latched is set once a violation is definitive (prefix closure).
	latched bool
	// searches and fastHits count full searches vs. witness reuses, for
	// introspection and benchmarks.
	searches int
	fastHits int
}

// NewMonitor returns a monitor for the given criterion. Supported
// criteria are DUOpacity, FinalStateOpacity and Opacity (for which
// prefix-wise monitoring is the definition itself).
func NewMonitor(c Criterion, opts ...Option) (*Monitor, error) {
	switch c {
	case DUOpacity, FinalStateOpacity, Opacity:
	default:
		return nil, fmt.Errorf("spec: criterion %v not supported by the monitor", c)
	}
	m := &Monitor{crit: c, opts: buildOptions(opts)}
	m.h = history.MustFromEvents(nil)
	m.verdict = Verdict{Criterion: c, OK: true, Serialization: &history.Seq{}}
	return m, nil
}

// Stats reports how many full searches and witness reuses the monitor has
// performed.
func (m *Monitor) Stats() (searches, fastHits int) {
	return m.searches, m.fastHits
}

// History returns the history observed so far.
func (m *Monitor) History() *history.History { return m.h }

// Verdict returns the verdict for the history observed so far.
func (m *Monitor) Verdict() Verdict { return m.verdict }

// Append observes one event and returns the updated verdict. It returns
// an error (leaving the monitor unchanged) when the event would make the
// history ill-formed.
func (m *Monitor) Append(e history.Event) (Verdict, error) {
	evs := append(m.evs, e)
	h, err := history.FromEvents(evs)
	if err != nil {
		return m.verdict, err
	}
	m.evs = evs
	m.h = h
	if m.latched {
		// Prefix closure: the violation is permanent. Keep the original
		// refutation.
		return m.verdict, nil
	}
	if e.Kind == history.Inv {
		// Invocation events cannot break acceptance; the verdict carries
		// over (the witness may name fewer transactions than the history;
		// re-derive lazily on the next response).
		return m.verdict, nil
	}
	m.verdict = m.recheck()
	if !m.verdict.OK && !m.verdict.Undecided {
		m.latched = true
	}
	return m.verdict, nil
}

// recheck computes the verdict for the current history, trying witness
// reuse first (for the du / final-state criteria whose witnesses we can
// cheaply re-validate).
func (m *Monitor) recheck() Verdict {
	if m.crit == DUOpacity && m.verdict.OK && m.verdict.Serialization != nil {
		if s := m.extendWitness(m.verdict.Serialization); s != nil {
			if err := VerifySerialization(m.h, s); err == nil {
				m.fastHits++
				return Verdict{Criterion: m.crit, OK: true, Serialization: s}
			}
		}
	}
	m.searches++
	switch m.crit {
	case DUOpacity:
		return CheckDUOpacity(m.h, WithNodeLimit(m.opts.nodeLimit))
	case FinalStateOpacity:
		return CheckFinalStateOpacity(m.h, WithNodeLimit(m.opts.nodeLimit))
	default:
		return CheckOpacity(m.h, WithNodeLimit(m.opts.nodeLimit))
	}
}

// extendWitness rebuilds the previous witness against the current history:
// same transaction order and commit decisions, with transactions that
// appeared since appended at the end (committing those whose tryC
// committed in H). Returns nil when the previous order is no longer
// constructible. The rebuild runs on the indexed view — dense positions
// and the slab Seq builder — so the monitor's per-response fast path stops
// reconstructing transaction maps.
func (m *Monitor) extendWitness(prev *history.Seq) *history.Seq {
	ix := m.h.Index()
	n := ix.NumTxns()
	inPrev := make([]bool, n)
	order := make([]int, 0, n)
	commit := make([]bool, 0, n)
	for i := range prev.Txns {
		st := &prev.Txns[i]
		ti := ix.TxnIndexOf(st.ID)
		if ti < 0 {
			return nil
		}
		inPrev[ti] = true
		order = append(order, ti)
		commit = append(commit, st.Committed())
	}
	for ti := range ix.Txns {
		if !inPrev[ti] {
			it := &ix.Txns[ti]
			order = append(order, ti)
			commit = append(commit, it.Committed || it.CommitPending)
		}
	}
	if len(order) != n {
		return nil // duplicate transactions in the previous witness
	}
	return ix.SeqForOrder(order, commit)
}
