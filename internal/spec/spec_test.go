package spec

import (
	"strings"
	"testing"

	"duopacity/internal/history"
)

// serialWriteRead is the simplest legal history: T1 writes and commits,
// then T2 reads the value and commits.
func serialWriteRead() *history.History {
	return history.NewBuilder().
		Write(1, "X", 1).Commit(1).
		Read(2, "X", 1).Commit(2).
		History()
}

func TestCheckDUOpacityAcceptsSerial(t *testing.T) {
	v := CheckDUOpacity(serialWriteRead())
	if !v.OK {
		t.Fatalf("du-opacity rejected a serial legal history: %s", v.Reason)
	}
	if v.Serialization == nil {
		t.Fatal("no witness serialization")
	}
	if ord := v.Serialization.Order(); ord[0] != 1 || ord[1] != 2 {
		t.Errorf("witness order = %v, want [1 2]", ord)
	}
	if err := v.Serialization.Legal(); err != nil {
		t.Errorf("witness not legal: %v", err)
	}
	if err := v.Serialization.MatchesCompletionOf(serialWriteRead()); err != nil {
		t.Errorf("witness does not match a completion: %v", err)
	}
}

func TestCheckDUOpacityRejectsWrongValue(t *testing.T) {
	h := history.NewBuilder().
		Write(1, "X", 1).Commit(1).
		Read(2, "X", 7).Commit(2).
		History()
	v := CheckDUOpacity(h)
	if v.OK {
		t.Fatal("du-opacity accepted a read of a never-written value")
	}
	if !strings.Contains(v.Reason, "no possible source") {
		t.Errorf("reason = %q, want mention of missing source", v.Reason)
	}
}

func TestCheckDUOpacityRejectsReadFromPreTryC(t *testing.T) {
	// T2 reads T1's value before T1 invokes tryC: final-state opaque
	// (T1 does commit) but a deferred-update violation.
	h := history.NewBuilder().
		InvWrite(1, "X", 1).ResWrite(1, "X", 1).
		Read(2, "X", 1).Commit(2).
		Commit(1).
		History()
	du := CheckDUOpacity(h)
	if du.OK {
		t.Fatal("du-opacity accepted a read from a transaction that had not started committing")
	}
	if !strings.Contains(du.Reason, "deferred update") {
		t.Errorf("reason = %q, want deferred-update explanation", du.Reason)
	}
	fs := CheckFinalStateOpacity(h)
	if !fs.OK {
		t.Fatalf("final-state opacity should accept: %s", fs.Reason)
	}
}

func TestCheckDUOpacityCommitPendingChoice(t *testing.T) {
	// T1's tryC is pending; T2 read its value after the tryC invocation.
	// A completion committing T1 makes the history du-opaque.
	h := history.NewBuilder().
		Write(1, "X", 1).InvTryCommit(1).
		Read(2, "X", 1).Commit(2).
		History()
	v := CheckDUOpacity(h)
	if !v.OK {
		t.Fatalf("du-opacity rejected commit-pending source: %s", v.Reason)
	}
	// The witness must commit T1.
	for _, st := range v.Serialization.Txns {
		if st.ID == 1 && !st.Committed() {
			t.Error("witness does not commit T1")
		}
	}
}

func TestCheckDUOpacityRealTimeOrder(t *testing.T) {
	// T1 reads 1 and fully precedes T2, which writes 1: the only legal
	// order inverts real time, so every real-time-respecting criterion
	// rejects, while plain serializability accepts.
	h := history.NewBuilder().
		Read(1, "X", 1).Commit(1).
		Write(2, "X", 1).Commit(2).
		History()
	for _, c := range []Criterion{DUOpacity, Opacity, FinalStateOpacity, StrictSerializability} {
		if v := Check(h, c); v.OK {
			t.Errorf("%s accepted a real-time inversion", c)
		}
	}
	if v := CheckSerializability(h); !v.OK {
		t.Errorf("serializability should accept the inverted order: %s", v.Reason)
	}
}

func TestCheckDUOpacityAbortedWriterInvisible(t *testing.T) {
	h := history.NewBuilder().
		Write(1, "X", 1).CommitAbort(1).
		Read(2, "X", 1).Commit(2).
		History()
	if v := CheckDUOpacity(h); v.OK {
		t.Fatal("du-opacity accepted a read from an aborted transaction")
	}
	if v := CheckFinalStateOpacity(h); v.OK {
		t.Fatal("final-state opacity accepted a read from an aborted transaction")
	}
}

func TestCheckDUOpacityOwnWrites(t *testing.T) {
	h := history.NewBuilder().
		Write(1, "X", 5).Read(1, "X", 5).Commit(1).
		History()
	if v := CheckDUOpacity(h); !v.OK {
		t.Fatalf("own-write read rejected: %s", v.Reason)
	}
	bad := history.NewBuilder().
		Write(1, "X", 5).Read(1, "X", 6).CommitAbort(1).
		History()
	if v := CheckDUOpacity(bad); v.OK {
		t.Fatal("own-write mismatch accepted")
	}
}

func TestCheckDUOpacityAbortedReaderChecked(t *testing.T) {
	// Reads by transactions that later abort must still be consistent
	// (that is the whole point of opacity-style criteria).
	h := history.NewBuilder().
		Write(1, "X", 1).Commit(1).
		Read(2, "X", 0).Read(2, "Y", 9).Abort(2).
		History()
	if v := CheckDUOpacity(h); v.OK {
		t.Fatal("aborted reader with impossible value accepted")
	}
	// But a consistent aborted reader is fine: T2 must serialize before T1.
	ok := history.NewBuilder().
		InvWrite(1, "X", 1).
		Read(2, "X", 0).Abort(2).
		ResWrite(1, "X", 1).Commit(1).
		History()
	if v := CheckDUOpacity(ok); !v.OK {
		t.Fatalf("consistent aborted reader rejected: %s", v.Reason)
	}
}

func TestCheckDUOpacityIntermediateVsLastWrite(t *testing.T) {
	// T1 writes X=1 then X=2 and commits; a committed reader can only see
	// 2 (the latest write), never the intermediate 1.
	h := history.NewBuilder().
		Write(1, "X", 1).Write(1, "X", 2).Commit(1).
		Read(2, "X", 2).Commit(2).
		History()
	if v := CheckDUOpacity(h); !v.OK {
		t.Fatalf("read of final write rejected: %s", v.Reason)
	}
	bad := history.NewBuilder().
		Write(1, "X", 1).Write(1, "X", 2).Commit(1).
		Read(2, "X", 1).Commit(2).
		History()
	if v := CheckDUOpacity(bad); v.OK {
		t.Fatal("read of intermediate write accepted")
	}
}

func TestCheckOpacityFigure3Shape(t *testing.T) {
	// W1(X,1) · R2(X)->1 · tryC1->C1 · tryC2->C2: final-state opaque but
	// its prefix before tryC1's invocation is not (Figure 3).
	h := history.NewBuilder().
		Write(1, "X", 1).
		Read(2, "X", 1).
		Commit(1).
		Commit(2).
		History()
	if v := CheckFinalStateOpacity(h); !v.OK {
		t.Fatalf("final-state opacity should accept H: %s", v.Reason)
	}
	hp := h.Prefix(4) // W1(X,1) complete, R2(X)->1 complete
	if v := CheckFinalStateOpacity(hp); v.OK {
		t.Fatal("prefix H' should not be final-state opaque")
	}
	if v := CheckOpacity(h); v.OK {
		t.Fatal("opacity should reject H (prefix not final-state opaque)")
	}
	if v := CheckDUOpacity(h); v.OK {
		t.Fatal("du-opacity should reject H")
	}
}

// checkOpacityAllPrefixes is the unoptimized Definition 5: every prefix,
// event by event.
func checkOpacityAllPrefixes(h *history.History) bool {
	for i := 1; i <= h.Len(); i++ {
		if !CheckFinalStateOpacity(h.Prefix(i)).OK {
			return false
		}
	}
	return true
}

func TestOpacityResponsePrefixOptimization(t *testing.T) {
	// The response-only prefix pruning must agree with the all-prefixes
	// definition on a set of tricky histories.
	histories := []*history.History{
		serialWriteRead(),
		history.NewBuilder(). // Figure 3 shape
					Write(1, "X", 1).Read(2, "X", 1).Commit(1).Commit(2).History(),
		history.NewBuilder(). // commit-pending source
					Write(1, "X", 1).InvTryCommit(1).Read(2, "X", 1).Commit(2).History(),
		history.NewBuilder(). // aborted writer
					Write(1, "X", 1).CommitAbort(1).Read(2, "X", 0).Commit(2).History(),
		history.NewBuilder(). // interleaved txns
					InvWrite(1, "X", 1).InvRead(2, "Y").ResWrite(1, "X", 1).
					Write(1, "Y", 2).Commit(1).ResRead(2, "Y", 0).Commit(2).History(),
		history.NewBuilder(). // pending read at the end
					Write(1, "X", 1).Commit(1).InvRead(2, "X").History(),
	}
	for i, h := range histories {
		want := checkOpacityAllPrefixes(h)
		got := CheckOpacity(h).OK
		if got != want {
			t.Errorf("history %d: optimized opacity = %v, all-prefixes = %v", i, got, want)
		}
	}
}

func TestCheckTMS2CommitOrderConstraint(t *testing.T) {
	// Figure 6 shape: T1 commits a write to X before T2's tryC, T2 read
	// X=0 earlier; TMS2 forces T1 <_S T2 which contradicts legality.
	h := history.NewBuilder().
		Read(1, "X", 0).Write(1, "X", 1).
		InvRead(2, "X").ResRead(2, "X", 0).
		Commit(1).
		Write(2, "Y", 1).Commit(2).
		History()
	if v := CheckDUOpacity(h); !v.OK {
		t.Fatalf("du-opacity should accept (serialize T2 before T1): %s", v.Reason)
	}
	if v := CheckTMS2(h); v.OK {
		t.Fatal("TMS2 should reject: T1's commit precedes T2's tryC")
	}
}

func TestCheckRCOReadCommitOrder(t *testing.T) {
	// Figure 5 shape (sequential): T2 reads X=1 from T1, then T3 writes
	// X=1, Y=1 and commits, then T2 reads Y=1. RCO forces T2 <_S T3;
	// legality of the Y read forces T3 <_S T2.
	h := history.NewBuilder().
		Write(1, "X", 1).Commit(1).
		Read(2, "X", 1).
		Write(3, "X", 1).Write(3, "Y", 1).Commit(3).
		Read(2, "Y", 1).
		History()
	if v := CheckDUOpacity(h); !v.OK {
		t.Fatalf("du-opacity should accept with T1,T3,T2: %s", v.Reason)
	}
	if v := CheckRCO(h); v.OK {
		t.Fatal("RCO should reject")
	}
}

func TestCheckSerializabilityIgnoresAborted(t *testing.T) {
	// An aborted transaction with an impossible read: rejected by
	// (du/final-state) opacity, invisible to serializability.
	h := history.NewBuilder().
		Write(1, "X", 1).Commit(1).
		Read(2, "X", 9).Abort(2).
		History()
	if v := CheckFinalStateOpacity(h); v.OK {
		t.Fatal("final-state opacity must check aborted reads")
	}
	if v := CheckStrictSerializability(h); !v.OK {
		t.Fatalf("strict serializability must ignore aborted reads: %s", v.Reason)
	}
}

func TestCheckSerializabilityLostUpdate(t *testing.T) {
	h := history.NewBuilder().
		InvRead(1, "X").InvRead(2, "X").
		ResRead(1, "X", 0).ResRead(2, "X", 0).
		Write(1, "X", 1).Write(2, "X", 2).
		Commit(1).Commit(2).
		History()
	if v := CheckSerializability(h); v.OK {
		t.Fatal("lost update accepted by serializability")
	}
	if v := CheckDUOpacity(h); v.OK {
		t.Fatal("lost update accepted by du-opacity")
	}
}

func TestVerdictStringAndDispatch(t *testing.T) {
	h := serialWriteRead()
	for _, c := range AllCriteria() {
		v := Check(h, c)
		if !v.OK {
			t.Errorf("%s rejected the serial history: %s", c, v.Reason)
		}
		if !strings.Contains(v.String(), "OK") {
			t.Errorf("verdict string %q missing OK", v.String())
		}
	}
	bad := Check(h, Criterion(99))
	if bad.OK || bad.Reason == "" {
		t.Error("unknown criterion should yield a reasoned rejection")
	}
}

func TestNodeLimitUndecided(t *testing.T) {
	// A history large enough that one node is never sufficient.
	b := history.NewBuilder()
	for k := history.TxnID(1); k <= 6; k++ {
		b.InvWrite(k, "X", history.Value(k))
	}
	for k := history.TxnID(1); k <= 6; k++ {
		b.ResWrite(k, "X", history.Value(k)).Commit(k)
	}
	h := b.History()
	v := CheckDUOpacity(h, WithNodeLimit(1))
	if v.OK || !v.Undecided {
		t.Fatalf("want undecided verdict, got %+v", v)
	}
	if !strings.Contains(v.String(), "undecided") {
		t.Errorf("String() = %q, want undecided", v.String())
	}
}

func TestManyTxnsDecided(t *testing.T) {
	// Inversion of the old TestTxnLimit: the multi-word bitset engine has
	// no transaction-count ceiling, so histories crossing 64 (one mask
	// word) and 128 (two words) transactions must be decided exactly, not
	// rejected with a "limited to 64" reason.
	for _, n := range []history.TxnID{65, 130} {
		b := history.NewBuilder()
		for k := history.TxnID(1); k <= n; k++ {
			b.Write(k, "X", history.Value(k)).Commit(k)
		}
		h := b.History()
		v := CheckDUOpacity(h)
		if !v.OK || v.Undecided {
			t.Fatalf("n=%d: sequential committed writers must be du-opaque, got %+v", n, v)
		}
		if v.Serialization == nil {
			t.Fatalf("n=%d: no witness", n)
		}
		if err := VerifySerialization(h, v.Serialization); err != nil {
			t.Fatalf("n=%d: witness invalid: %v", n, err)
		}
		// A read of a stale (overwritten) value must still be refuted
		// exactly above the old ceiling.
		b = history.NewBuilder()
		for k := history.TxnID(1); k <= n; k++ {
			b.Write(k, "X", history.Value(k)).Commit(k)
		}
		b.Read(n+1, "X", 1).Commit(n + 1) // value of T_1, overwritten long ago
		if v := CheckDUOpacity(b.History()); v.OK || v.Undecided {
			t.Fatalf("n=%d: stale read must be refuted, got %+v", n, v)
		}
	}
}

func TestAllDUSerializationsEnumerates(t *testing.T) {
	// Two independent committed transactions on different objects overlap:
	// both orders are du-opaque serializations.
	h := history.NewBuilder().
		InvWrite(1, "X", 1).InvWrite(2, "Y", 2).
		ResWrite(1, "X", 1).ResWrite(2, "Y", 2).
		InvTryCommit(1).InvTryCommit(2).
		ResCommit(1).ResCommit(2).
		History()
	var orders [][]history.TxnID
	n := AllDUSerializations(h, 0, func(s *history.Seq) bool {
		orders = append(orders, s.Order())
		return true
	})
	if n != 2 || len(orders) != 2 {
		t.Fatalf("enumerated %d serializations, want 2 (%v)", n, orders)
	}
	// The limit is honored.
	n = AllDUSerializations(h, 1, func(*history.Seq) bool { return true })
	if n != 1 {
		t.Fatalf("limit ignored: %d", n)
	}
	// Early stop by the callback.
	n = AllDUSerializations(h, 0, func(*history.Seq) bool { return false })
	if n != 1 {
		t.Fatalf("early stop ignored: %d", n)
	}
}

func TestUniqueWrites(t *testing.T) {
	uniq := history.NewBuilder().
		Write(1, "X", 1).Commit(1).
		Write(2, "X", 2).Commit(2).
		Write(3, "Y", 1).Commit(3). // same value, different object: fine
		History()
	if !UniqueWrites(uniq) {
		t.Error("unique-writes history misclassified")
	}
	dup := history.NewBuilder().
		Write(1, "X", 1).Commit(1).
		Write(2, "X", 1).Commit(2).
		History()
	if UniqueWrites(dup) {
		t.Error("duplicate writes misclassified as unique")
	}
	initClash := history.NewBuilder().
		Write(1, "X", 0).Commit(1).
		History()
	if UniqueWrites(initClash) {
		t.Error("write of InitValue collides with T_0")
	}
	// Same transaction writing the same value twice does not violate
	// uniqueness across transactions.
	same := history.NewBuilder().
		Write(1, "X", 1).Write(1, "X", 1).Commit(1).
		History()
	if !UniqueWrites(same) {
		t.Error("same-transaction duplicate writes should not break uniqueness")
	}
}

func TestCheckDUOpacityFastAgrees(t *testing.T) {
	histories := []*history.History{
		serialWriteRead(),
		history.NewBuilder().
			InvWrite(1, "X", 1).ResWrite(1, "X", 1).
			Read(2, "X", 1).Commit(2).Commit(1).
			History(), // du violation
		history.NewBuilder().
			Write(1, "X", 1).Commit(1).
			Write(2, "X", 2).Commit(2).
			Read(3, "X", 2).Commit(3).
			History(),
		history.NewBuilder().
			Write(1, "X", 1).InvTryCommit(1).
			Read(2, "X", 1).Commit(2).
			History(),
	}
	for i, h := range histories {
		want := CheckDUOpacity(h).OK
		got := CheckDUOpacityFast(h).OK
		if got != want {
			t.Errorf("history %d: fast = %v, exact = %v", i, got, want)
		}
	}
}

func TestEmptyAndTrivialHistories(t *testing.T) {
	empty := history.MustFromEvents(nil)
	for _, c := range AllCriteria() {
		if v := Check(empty, c); !v.OK {
			t.Errorf("%s rejected the empty history: %s", c, v.Reason)
		}
	}
	pendingOnly := history.NewBuilder().InvRead(1, "X").History()
	if v := CheckDUOpacity(pendingOnly); !v.OK {
		t.Errorf("single pending read rejected: %s", v.Reason)
	}
}

func TestWitnessRespectsRealTime(t *testing.T) {
	h := history.NewBuilder().
		Write(1, "X", 1).Commit(1).
		Write(2, "X", 2).Commit(2).
		Read(3, "X", 2).Commit(3).
		History()
	v := CheckDUOpacity(h)
	if !v.OK {
		t.Fatalf("rejected: %s", v.Reason)
	}
	s := v.Serialization
	for _, a := range h.Txns() {
		for _, b := range h.Txns() {
			if h.RealTimePrecedes(a, b) && s.Position(a) > s.Position(b) {
				t.Errorf("witness violates real time: T%d should precede T%d in %s", a, b, s)
			}
		}
	}
}
