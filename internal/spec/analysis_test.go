package spec

import (
	"strings"
	"testing"

	"duopacity/internal/history"
)

func TestAnalyzeReadsClassification(t *testing.T) {
	// T1 writes X=1 but aborts (never a source); T2 writes X=1 and has a
	// pending tryC (du-eligible source after its invocation); T3 reads 1
	// after T2's tryC invocation; T4 reads its own write; T5 reads 0.
	b := history.NewBuilder()
	b.Write(1, "X", 1).CommitAbort(1)
	b.Write(2, "X", 1).InvTryCommit(2)
	b.Read(3, "X", 1)
	b.Write(4, "Y", 9).Read(4, "Y", 9).Commit(4)
	b.Read(5, "Z", 0)
	h := b.History()

	infos := AnalyzeReads(h)
	if len(infos) != 3 {
		t.Fatalf("got %d reads, want 3", len(infos))
	}
	byTxn := make(map[history.TxnID]ReadInfo)
	for _, ri := range infos {
		byTxn[ri.Txn] = ri
	}

	r3 := byTxn[3]
	if r3.OwnWrite || r3.FromInit {
		t.Fatalf("T3 misclassified: %+v", r3)
	}
	if len(r3.Sources) != 1 || r3.Sources[0] != 2 {
		t.Errorf("T3 sources = %v, want [2] (T1 aborted)", r3.Sources)
	}
	if len(r3.DUSources) != 1 || r3.DUSources[0] != 2 {
		t.Errorf("T3 du-sources = %v, want [2]", r3.DUSources)
	}
	if !strings.Contains(r3.String(), "du-eligible {T2}") {
		t.Errorf("T3 rendering: %s", r3.String())
	}

	if r4 := byTxn[4]; !r4.OwnWrite {
		t.Errorf("T4 should be an own-write read: %+v", r4)
	}
	if r5 := byTxn[5]; !r5.FromInit {
		t.Errorf("T5 should read the initial value: %+v", r5)
	}
}

func TestAnalyzeReadsFlagsDuViolation(t *testing.T) {
	// Figure 4 shape: the read's only source invokes tryC after the
	// read's response — Sources nonempty, DUSources empty.
	b := history.NewBuilder()
	b.InvWrite(1, "X", 1).ResWrite(1, "X", 1)
	b.Read(2, "X", 1)
	b.Commit(1)
	h := b.History()

	infos := AnalyzeReads(h)
	if len(infos) != 1 {
		t.Fatalf("got %d reads, want 1", len(infos))
	}
	ri := infos[0]
	if len(ri.Sources) != 1 || len(ri.DUSources) != 0 {
		t.Fatalf("want a source but no du-source, got %+v", ri)
	}
	if !strings.Contains(ri.String(), "du-eligible {}") {
		t.Errorf("rendering: %s", ri.String())
	}
	// The analysis agrees with the checker's refutation.
	if CheckDUOpacity(h).OK {
		t.Fatal("checker should reject")
	}
	if !CheckFinalStateOpacity(h).OK {
		t.Fatal("final-state should accept")
	}
}

func TestAnalyzeReadsOrderedByResponse(t *testing.T) {
	b := history.NewBuilder()
	b.Write(1, "X", 1).Commit(1)
	b.InvRead(2, "X")
	b.Read(3, "X", 1)
	b.ResRead(2, "X", 1)
	h := b.History()
	infos := AnalyzeReads(h)
	if len(infos) != 2 {
		t.Fatalf("got %d reads, want 2", len(infos))
	}
	if infos[0].Txn != 3 || infos[1].Txn != 2 {
		t.Fatalf("reads not ordered by response index: %v, %v", infos[0], infos[1])
	}
}
