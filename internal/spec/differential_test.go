package spec_test

import (
	"math/rand"
	"testing"

	"duopacity/internal/gen"
	"duopacity/internal/history"
	"duopacity/internal/spec"
)

// diffCompare asserts that the optimized engine and the frozen reference
// engine agree on (OK, Reason, Undecided, Nodes) for one history and
// criterion.
func diffCompare(t *testing.T, h *history.History, c spec.Criterion, nodeLimit int) {
	t.Helper()
	got := spec.Check(h, c, spec.WithNodeLimit(nodeLimit))
	want := spec.CheckReference(h, c, spec.WithNodeLimit(nodeLimit))
	if got.OK != want.OK || got.Undecided != want.Undecided || got.Reason != want.Reason || got.Nodes != want.Nodes {
		t.Fatalf("%s: engine disagreement\n  new: OK=%v undecided=%v nodes=%d reason=%q\n  ref: OK=%v undecided=%v nodes=%d reason=%q\nhistory:\n%s",
			c, got.OK, got.Undecided, got.Nodes, got.Reason,
			want.OK, want.Undecided, want.Nodes, want.Reason, h)
	}
	if got.OK && c == spec.DUOpacity {
		if err := spec.VerifySerialization(h, got.Serialization); err != nil {
			t.Fatalf("du-opacity witness rejected by the independent validator: %v\nhistory:\n%s", err, h)
		}
	}
}

// TestDifferentialGenerated compares the engines across all criteria on
// generated du-opaque histories and on planted violations of them — the
// deterministic counterpart of FuzzCheckerDifferential.
func TestDifferentialGenerated(t *testing.T) {
	criteria := spec.AllCriteria()
	for seed := int64(1); seed <= 25; seed++ {
		h := gen.DUOpaque(gen.Config{
			Txns: 8, Objects: 3, OpsPerTxn: 3, ReadFraction: 0.5,
			PAbort: 0.2, PNoTryC: 0.15, Relax: 5, Seed: seed,
		})
		for _, c := range criteria {
			diffCompare(t, h, c, 200_000)
		}
		if m, ok := gen.MutateFutureRead(h, rand.New(rand.NewSource(seed))); ok {
			for _, c := range criteria {
				diffCompare(t, m, c, 200_000)
			}
		}
	}
}

// TestDifferentialUnderNodeLimit pins the bail behavior: both engines
// explore nodes in the same order, so a tight limit must yield identical
// undecided verdicts and node counts.
func TestDifferentialUnderNodeLimit(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		h := gen.DUOpaque(gen.Config{
			Txns: 10, Objects: 2, OpsPerTxn: 4, ReadFraction: 0.4, Relax: 8, Seed: 100 + seed,
		})
		for _, limit := range []int{1, 5, 50} {
			diffCompare(t, h, spec.DUOpacity, limit)
			diffCompare(t, h, spec.FinalStateOpacity, limit)
		}
	}
}
