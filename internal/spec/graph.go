package spec

import (
	"fmt"
	"strings"

	"duopacity/internal/history"
)

// EdgeKind labels why one transaction must precede another in every
// serialization.
type EdgeKind uint8

const (
	// EdgeRealTime is Definition 3 condition 2: T_a ≺RT T_b.
	EdgeRealTime EdgeKind = iota + 1
	// EdgeReadsFrom is a value-forced source: under unique writes, a read
	// of X=v must follow the only transaction that writes v to X.
	EdgeReadsFrom
	// EdgeConflictOrder is a criterion-mandated conflict-order constraint:
	// a TMS2 edge (committed writer before later-committing reader of a
	// shared object) or an RCO edge (reader before the later-committing
	// writer of an object it read). These are necessary in every
	// serialization the criterion admits, so a cycle through them refutes
	// the criterion without search.
	EdgeConflictOrder
)

// String names the edge kind.
func (k EdgeKind) String() string {
	switch k {
	case EdgeRealTime:
		return "real-time"
	case EdgeReadsFrom:
		return "reads-from"
	case EdgeConflictOrder:
		return "conflict-order"
	default:
		return fmt.Sprintf("EdgeKind(%d)", uint8(k))
	}
}

// Edge is a mandatory ordering constraint between two transactions.
type Edge struct {
	From, To history.TxnID
	Kind     EdgeKind
	Obj      history.Var // reads-from edges only
}

// String renders the edge with its justification.
func (e Edge) String() string {
	if e.Kind == EdgeReadsFrom {
		return fmt.Sprintf("T%d -> T%d (%s on %s)", e.From, e.To, e.Kind, e.Obj)
	}
	return fmt.Sprintf("T%d -> T%d (%s)", e.From, e.To, e.Kind)
}

// PrecedenceGraph holds the constraints every du-opaque serialization of a
// history must satisfy. Under unique writes the reads-from edges are
// value-forced and therefore necessary; a cycle refutes du-opacity (and,
// by Theorem 11, opacity) without any search.
type PrecedenceGraph struct {
	Txns  []history.TxnID
	Edges []Edge

	adj map[history.TxnID][]history.TxnID
}

// BuildPrecedenceGraph collects the real-time edges and — when the
// history has unique writes — the value-forced reads-from edges.
func BuildPrecedenceGraph(h *history.History) *PrecedenceGraph {
	g := &PrecedenceGraph{Txns: h.Txns(), adj: make(map[history.TxnID][]history.TxnID)}
	for _, a := range g.Txns {
		for _, b := range g.Txns {
			if h.RealTimePrecedes(a, b) {
				g.addEdge(Edge{From: a, To: b, Kind: EdgeRealTime})
			}
		}
	}
	if UniqueWrites(h) {
		for _, e := range readsFromEdges(h) {
			g.addEdge(Edge{From: e[0], To: e[1], Kind: EdgeReadsFrom, Obj: readsFromObj(h, e[0], e[1])})
		}
	}
	return g
}

// readsFromObj recovers the object linking a forced reads-from pair (used
// only to annotate edges for diagnostics).
func readsFromObj(h *history.History, w, r history.TxnID) history.Var {
	lw := h.Txn(w).LastWrites()
	for _, op := range h.Txn(r).Ops {
		if op.Kind == history.OpRead && !op.Pending && op.Out == history.OutOK {
			if v, ok := lw[op.Obj]; ok && v == op.Val {
				return op.Obj
			}
		}
	}
	return ""
}

// ConflictOrderEdges returns the criterion's mandatory conflict-order
// constraints as diagnostic edges: the TMS2 or RCO edge set the checkers
// (and the online monitor, incrementally) impose on every serialization.
// Other criteria have none. WithTMS2AbortedReaderExemption is honored for
// TMS2.
func ConflictOrderEdges(h *history.History, c Criterion, opts ...Option) []Edge {
	var pairs [][2]history.TxnID
	switch c {
	case TMS2:
		pairs = tms2Edges(h, buildOptions(opts).tms2AbortedExemption)
	case RCO:
		pairs = rcoEdges(h)
	default:
		return nil
	}
	edges := make([]Edge, 0, len(pairs))
	for _, p := range pairs {
		edges = append(edges, Edge{From: p[0], To: p[1], Kind: EdgeConflictOrder})
	}
	return edges
}

// BuildConflictGraph is BuildPrecedenceGraph extended with the
// criterion's conflict-order edges. Every edge is necessary (real-time
// always; reads-from under unique writes; conflict-order by the
// criterion's definition), so a Cycle in the result refutes the
// criterion polynomially — the diagnostic counterpart of handing
// tms2Edges/rcoEdges to the search as extraEdges.
func BuildConflictGraph(h *history.History, c Criterion, opts ...Option) *PrecedenceGraph {
	g := BuildPrecedenceGraph(h)
	for _, e := range ConflictOrderEdges(h, c, opts...) {
		g.addEdge(e)
	}
	return g
}

func (g *PrecedenceGraph) addEdge(e Edge) {
	g.Edges = append(g.Edges, e)
	g.adj[e.From] = append(g.adj[e.From], e.To)
}

// Cycle returns a cycle of transactions (first element repeated at the
// end), or nil when the graph is acyclic.
func (g *PrecedenceGraph) Cycle() []history.TxnID {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[history.TxnID]int, len(g.Txns))
	parent := make(map[history.TxnID]history.TxnID)
	var cycle []history.TxnID
	var dfs func(u history.TxnID) bool
	dfs = func(u history.TxnID) bool {
		color[u] = grey
		for _, v := range g.adj[u] {
			switch color[v] {
			case white:
				parent[v] = u
				if dfs(v) {
					return true
				}
			case grey:
				// Unwind u back to v.
				cycle = []history.TxnID{v}
				for x := u; x != v; x = parent[x] {
					cycle = append(cycle, x)
				}
				// Reverse into forward order and close the loop.
				for i, j := 1, len(cycle)-1; i < j; i, j = i+1, j-1 {
					cycle[i], cycle[j] = cycle[j], cycle[i]
				}
				cycle = append(cycle, v)
				return true
			}
		}
		color[u] = black
		return false
	}
	for _, u := range g.Txns {
		if color[u] == white && dfs(u) {
			return cycle
		}
	}
	return nil
}

// CheckDUOpacityGraph decides du-opacity with a polynomial refutation fast
// path: if the necessary-edge graph has a cycle the history is rejected
// immediately with the cycle as the reason; otherwise the exact search
// runs (seeded with the same forced edges). The verdict is always exact.
func CheckDUOpacityGraph(h *history.History, opts ...Option) Verdict {
	g := BuildPrecedenceGraph(h)
	if cyc := g.Cycle(); cyc != nil {
		parts := make([]string, len(cyc))
		for i, k := range cyc {
			parts[i] = fmt.Sprintf("T%d", k)
		}
		return Verdict{
			Criterion: DUOpacity,
			Reason: fmt.Sprintf("mandatory precedence cycle %s (real-time and value-forced reads-from edges)",
				strings.Join(parts, " -> ")),
		}
	}
	return CheckDUOpacityFast(h, opts...)
}
