package spec

import (
	"fmt"
	"math/bits"
	"sync"
	"sync/atomic"

	"duopacity/internal/history"
)

// txnRole describes how a transaction may end in a serialization.
type txnRole uint8

const (
	roleMustCommit txnRole = iota + 1 // t-committed in H
	roleMustAbort                     // t-aborted, incomplete op, or complete-not-t-complete
	roleEither                        // commit-pending: the completion chooses
)

// searchMode tunes which conditions the engine enforces.
type searchMode struct {
	// local enforces the deferred-update condition: every external read
	// must be legal in its local serialization w.r.t. H and S
	// (Definition 3, condition 3).
	local bool
	// realTime enforces Definition 3 condition 2.
	realTime bool
	// committedOnly restricts the serialization to committed transactions
	// (serializability baselines).
	committedOnly bool
	// extraEdges adds ordering constraints (TMS2 / RCO): an edge (a, b)
	// requires a <_S b.
	extraEdges [][2]history.TxnID
}

// stackEntry records a committed transaction's write on a per-object stack,
// in serialization order. The stacks live in one slab (engine.stackSlab)
// with per-object offsets, sized from the per-object writer counts.
type stackEntry struct {
	txn     int32 // engine transaction index
	tryCInv int32 // index in H of the writer's tryC invocation (>= 0)
	val     history.Value
}

// engine is the exhaustive serialization search shared by all criteria.
//
// It is the allocation-free rewrite of the reference engine (reference.go):
// the per-check analysis comes from the history's cached Indexed view, the
// memo table stores 64-bit Zobrist-style fingerprints maintained
// incrementally by pushTxn/popTxn instead of built strings, candidate
// selection iterates transaction bitmasks, and the whole scratch state is
// pooled across checks.
//
// Memo hits are accepted on the 64-bit fingerprint alone: a collision
// between two distinct (placed set, stacks) states would prune a live
// state and could refute a satisfiable history. The probability is
// bounded by states²/2⁶⁴ per check — about 10⁻⁷ at the default
// 2-million-node certification limit, and far smaller for the
// ~thousand-node checks that dominate in practice — which the exactness
// claim of this package accepts as negligible; the string-keyed reference
// engine has no such caveat and remains the arbiter in the differential
// tests.
type engine struct {
	h    *history.History
	ix   *history.Indexed
	mode searchMode
	opts options

	n     int                   // participating transactions
	words int                   // word count of the engine bitsets: bitsWords(n)
	gidx  []int                 // engine index -> dense index in ix
	txs   []*history.IndexedTxn // per engine txn, aliasing ix.Txns
	role  []txnRole
	// pred holds the required predecessors per engine txn. Rows may alias
	// ix.RTPred (and then are ragged: row i spans bitsWords(i) words).
	pred []history.Bits
	// predBuf/predSlab are the engine-owned rows behind pred whenever it
	// must differ from the shared real-time sets (extra edges,
	// committedOnly compaction, no real-time order): n rows of `words`
	// words carved out of one slab.
	predBuf  []history.Bits
	predSlab []uint64

	all     history.Bits // set of all engine transactions
	noWrite history.Bits // engine transactions that install no writes
	// dead is the greedy phase's scratch set of transactions whose reads
	// failed against the phase's constant stacks. One buffer suffices:
	// greedyPlace never recurses, so its lifetime ends before search
	// descends.
	dead history.Bits

	// Per-object committed-writer stacks in one slab.
	stackOff  []int32
	stackLen  []int32
	stackSlab []stackEntry

	// Search state.
	placed      history.Bits
	placedCount int
	fp          uint64 // incremental fingerprint of (placed, stacks)
	order       []int32
	commits     []bool
	memo        fpTable
	nodes       int

	// Portfolio state (nil when searching sequentially): a shared
	// first-witness-wins cancellation flag and a shared node budget that
	// workers claim in chunks.
	stop      *atomic.Bool
	budget    *atomic.Int64
	chunk     int // nodes left in the locally claimed budget chunk
	chunkSize int // claim granularity, sized by decideParallel to the budget

	// Cancellation state (nil unless WithContext was given): the context's
	// Done channel, polled every ctxPollMask+1 nodes in search().
	ctxDone   <-chan struct{}
	cancelled bool // bailed because the context was cancelled

	// Enumeration state (nil unless enumerating).
	collect func(*history.Seq) bool

	// Scratch for witness materialization.
	orderBuf []int

	witness *history.Seq
	reason  string
	bailed  bool // node limit reached
}

var enginePool = sync.Pool{New: func() any { return new(engine) }}

// grow returns a slice of length n, reusing s's backing array when it is
// large enough. Contents are unspecified.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// bitsWords returns the number of bitset words needed for n bits.
func bitsWords(n int) int { return (n + 63) >> 6 }

// growBits returns a zeroed bitset of the given word count, reusing b's
// backing array when it is large enough.
func growBits(b history.Bits, words int) history.Bits {
	b = grow(b, words)
	for i := range b {
		b[i] = 0
	}
	return b
}

// release returns the engine's scratch to the pool, dropping references
// into the checked history.
func (e *engine) release() {
	e.h, e.ix = nil, nil
	e.mode = searchMode{}
	e.pred = nil // may alias ix.RTPred; predBuf stays pooled
	e.stop, e.budget = nil, nil
	e.ctxDone, e.cancelled = nil, false
	e.collect = nil
	e.witness = nil
	for i := range e.txs {
		e.txs[i] = nil
	}
	enginePool.Put(e)
}

// newEngine analyzes h for the given mode using the cached indexed view.
// It returns an error verdict reason if h is statically refuted or out of
// scope; the engine is already released in that case.
func newEngine(h *history.History, mode searchMode, opts options) (*engine, string) {
	ix := h.Index()
	e := enginePool.Get().(*engine)
	e.h, e.ix, e.mode, e.opts = h, ix, mode, opts
	e.placedCount, e.fp, e.nodes, e.chunk, e.chunkSize = 0, 0, 0, 0, 0
	e.order = grow(e.order, 0)
	e.commits = grow(e.commits, 0)
	e.witness, e.reason, e.bailed = nil, "", false
	e.stop, e.budget, e.collect = nil, nil, nil
	e.ctxDone, e.cancelled = nil, false
	if opts.ctx != nil {
		e.ctxDone = opts.ctx.Done()
	}

	// Participating transactions, in first-appearance order.
	N := ix.NumTxns()
	e.gidx = grow(e.gidx, 0)
	for gi := 0; gi < N; gi++ {
		it := &ix.Txns[gi]
		if mode.committedOnly && !(it.Committed || it.CommitPending) {
			continue
		}
		e.gidx = append(e.gidx, gi)
	}
	n := len(e.gidx)
	e.n = n
	e.words = bitsWords(n)
	e.all = growBits(e.all, e.words)
	for w := range e.all {
		e.all[w] = ^uint64(0)
	}
	if r := uint(n & 63); r != 0 {
		e.all[e.words-1] = (uint64(1) << r) - 1
	}
	e.placed = growBits(e.placed, e.words)
	e.dead = growBits(e.dead, e.words)

	e.txs = grow(e.txs, n)
	e.role = grow(e.role, n)
	e.noWrite = growBits(e.noWrite, e.words)
	for i, gi := range e.gidx {
		it := &ix.Txns[gi]
		e.txs[i] = it
		switch {
		case it.Committed:
			e.role[i] = roleMustCommit
		case it.CommitPending:
			e.role[i] = roleEither
		default:
			e.role[i] = roleMustAbort
		}
		if len(it.Writes) == 0 {
			e.noWrite.Set(i)
		}
	}
	// A read that misses the transaction's own latest preceding write is
	// inconsistent in every serialization (checked in the reference engine
	// during analysis, so it precedes the static-reject reasons).
	for _, it := range e.txs[:n] {
		if it.BadReadOp >= 0 {
			op := it.Info.Ops[it.BadReadOp]
			reason := fmt.Sprintf(
				"T%d: %v returned %d but the transaction's own latest write to %s is %d",
				it.Info.ID, op, op.Val, op.Obj, it.BadReadWant)
			e.release()
			return nil, reason
		}
	}

	// Ordering constraints. The common fast path — every transaction
	// participates, real-time order, no extra edges — aliases the index's
	// precomputed masks; every other combination fills the engine's buffer.
	identity := n == N
	if mode.realTime && identity && len(mode.extraEdges) == 0 {
		e.pred = ix.RTPred
	} else {
		e.predSlab = grow(e.predSlab, n*e.words)
		for i := range e.predSlab {
			e.predSlab[i] = 0
		}
		e.predBuf = grow(e.predBuf, n)
		for i := 0; i < n; i++ {
			e.predBuf[i] = history.Bits(e.predSlab[i*e.words : (i+1)*e.words])
		}
		if mode.realTime {
			for bi, gb := range e.gidx {
				first := ix.Txns[gb].First
				for ai, ga := range e.gidx {
					if ai == bi {
						continue
					}
					ta := &ix.Txns[ga]
					if ta.TComplete && ta.Last < first {
						e.predBuf[bi].Set(ai)
					}
				}
			}
		}
		for _, edge := range mode.extraEdges {
			ai := e.engineIndexOf(edge[0])
			bi := e.engineIndexOf(edge[1])
			if ai >= 0 && bi >= 0 {
				e.predBuf[bi].Set(ai)
			}
		}
		e.pred = e.predBuf
	}

	// Per-object committed-writer stacks: offsets sized from the number of
	// commit-capable writers per object.
	numObjs := ix.NumObjs()
	e.stackOff = grow(e.stackOff, numObjs)
	e.stackLen = grow(e.stackLen, numObjs)
	for o := 0; o < numObjs; o++ {
		e.stackOff[o] = 0
		e.stackLen[o] = 0
	}
	for i, it := range e.txs[:n] {
		if e.role[i] == roleMustAbort {
			continue
		}
		for _, w := range it.Writes {
			e.stackOff[w.Obj]++ // count pass
		}
	}
	total := int32(0)
	for o := 0; o < numObjs; o++ {
		c := e.stackOff[o]
		e.stackOff[o] = total
		total += c
	}
	e.stackSlab = grow(e.stackSlab, int(total))

	if reason := e.staticReject(); reason != "" {
		e.release()
		return nil, reason
	}
	e.memo.reset()
	return e, ""
}

// engineIndexOf maps a transaction identifier to its engine index, or -1.
func (e *engine) engineIndexOf(k history.TxnID) int {
	gi := e.ix.TxnIndexOf(k)
	if gi < 0 {
		return -1
	}
	if e.n == e.ix.NumTxns() {
		return gi
	}
	// Compacted (committedOnly) mapping; n is small, scan.
	for i, g := range e.gidx {
		if g == gi {
			return i
		}
	}
	return -1
}

// staticReject performs order-independent feasibility checks so that common
// violations are refuted without search, with a precise reason. It matches
// the reference engine's messages exactly but scans the indexed writer
// summaries instead of building a (object, value) -> writers map.
func (e *engine) staticReject() string {
	// When every transaction participates, the engine index space matches
	// the index's, and the per-object writer sets narrow the candidate
	// scan to the transactions that actually write the read's object.
	useWriterMasks := e.n == e.ix.NumTxns()
	for i, it := range e.txs[:e.n] {
		for _, r := range it.Reads {
			if r.Val == history.InitValue {
				continue // T_0 is always a legal source
			}
			found := false
			foundLocal := false
			if useWriterMasks {
				row := e.ix.Writers[r.Obj]
				for w := 0; w < len(row) && !foundLocal; w++ {
					m := row[w]
					if w == i>>6 {
						m &^= uint64(1) << uint(i&63)
					}
					for ; m != 0 && !foundLocal; m &= m - 1 {
						c := w<<6 + bits.TrailingZeros64(m)
						if e.role[c] == roleMustAbort {
							continue
						}
						ct := e.txs[c]
						for _, wr := range ct.Writes {
							if wr.Obj != r.Obj || wr.Val != r.Val {
								continue
							}
							found = true
							if ct.TryCInv >= 0 && ct.TryCInv < r.ResIdx {
								foundLocal = true
							}
							break
						}
					}
				}
			} else {
				for c, ct := range e.txs[:e.n] {
					if c == i || e.role[c] == roleMustAbort {
						continue
					}
					for _, w := range ct.Writes {
						if w.Obj != r.Obj || w.Val != r.Val {
							continue
						}
						found = true
						if ct.TryCInv >= 0 && ct.TryCInv < r.ResIdx {
							foundLocal = true
						}
						break
					}
					if foundLocal {
						break
					}
				}
			}
			if !found {
				return fmt.Sprintf("T%d: %v has no possible source: no committable transaction writes %s=%d",
					it.Info.ID, r.Op, e.ix.Objs[r.Obj], r.Val)
			}
			if e.mode.local && !foundLocal {
				return fmt.Sprintf(
					"T%d: %v violates deferred update: no transaction writing %s=%d invoked tryC before the read's response",
					it.Info.ID, r.Op, e.ix.Objs[r.Obj], r.Val)
			}
		}
	}
	return ""
}

// run performs the search and returns the verdict fields.
func (e *engine) run() (ok bool, witness *history.Seq, reason string, bailed bool, nodes int) {
	if e.search() {
		return true, e.witness, "", false, e.nodes
	}
	if e.bailed {
		if e.cancelled {
			return false, nil, "context cancelled", true, e.nodes
		}
		return false, nil, "node limit exceeded", true, e.nodes
	}
	if e.reason == "" {
		e.reason = "no serialization satisfies the criterion"
	}
	return false, nil, e.reason, false, e.nodes
}

// ctxPollMask gates the cancellation poll in search(): the context's Done
// channel is checked only when nodes&ctxPollMask == 0 (every 256 nodes,
// plus the very first node so an already-cancelled context never starts
// searching), keeping the per-node cost of WithContext to a nil check.
const ctxPollMask = 255

// claimNode draws one search node from the shared portfolio budget,
// claiming it in chunks to keep the atomic traffic low. It reports false
// when the budget is exhausted. Workers refund unused chunk remainders
// between branches (decideParallel), so short branches don't strand
// budget.
func (e *engine) claimNode() bool {
	if e.chunk > 0 {
		e.chunk--
		return true
	}
	size := e.chunkSize
	if size <= 0 {
		size = 256
	}
	after := e.budget.Add(-int64(size))
	claimed := size + int(after)
	if claimed > size {
		claimed = size
	}
	if claimed <= 0 {
		return false
	}
	e.chunk = claimed - 1
	return true
}

// search tries to extend the current partial serialization to a full one.
// It returns true when a witness has been found (and, when not
// enumerating, the search should stop).
func (e *engine) search() bool {
	if e.stop != nil && e.stop.Load() {
		// Another portfolio worker already found a witness.
		return false
	}
	if e.ctxDone != nil && e.nodes&ctxPollMask == 0 {
		select {
		case <-e.ctxDone:
			e.bailed, e.cancelled = true, true
			return false
		default:
		}
	}
	if e.budget != nil {
		if !e.claimNode() {
			e.bailed = true
			return false
		}
	} else if e.opts.nodeLimit > 0 && e.nodes > e.opts.nodeLimit {
		e.bailed = true
		return false
	}
	e.nodes++

	// Greedy dominance phase (skipped when enumerating, where it would
	// hide valid orders): a transaction that installs no writes never
	// changes the per-object stacks, so if its reads are legal in the
	// current state it can be placed immediately — any completion placing
	// it later maps to one placing it now with identical stack evolution.
	// This collapses the exponential interchangeability of concurrent
	// readers (e.g. the Figure 2 family). The stacks are constant
	// throughout the phase, so a transaction whose reads fail once is dead
	// for the whole phase and the fixpoint loop only re-examines
	// predecessor availability.
	greedy := 0
	if e.collect == nil {
		greedy = e.greedyPlace()
	}
	defer func() {
		for ; greedy > 0; greedy-- {
			e.popTxn()
		}
	}()

	if e.placedCount == e.n {
		return e.emit()
	}
	if e.collect == nil && e.memo.seen(e.fp) {
		return false
	}
	// Try available transactions in first-event order (the analysis order),
	// which finds witnesses quickly on realistic histories.
	found := false
	for w := 0; w < e.words; w++ {
		for m := e.all[w] &^ e.placed[w]; m != 0; m &= m - 1 {
			i := w<<6 + bits.TrailingZeros64(m)
			if !e.predOK(i) {
				continue
			}
			switch e.role[i] {
			case roleMustCommit:
				found = e.place(i, true)
			case roleMustAbort:
				found = e.place(i, false)
			case roleEither:
				// Prefer committing: transactions whose values someone read
				// must commit, and committing a pending tryC is never required
				// to fail.
				found = e.place(i, true) || e.place(i, false)
			}
			if found {
				return true
			}
			if e.bailed {
				return false
			}
		}
	}
	if e.collect == nil {
		e.memo.insert(e.fp)
	}
	return false
}

// predOK reports whether every required predecessor of engine transaction
// i is already placed. pred rows may be ragged (aliasing the index's
// real-time sets), never longer than the engine's word count.
func (e *engine) predOK(i int) bool {
	for w, rw := range e.pred[i] {
		if rw&^e.placed[w] != 0 {
			return false
		}
	}
	return true
}

// greedyPlace runs the greedy dominance phase and returns how many
// transactions it placed (the caller pops them when unwinding).
func (e *engine) greedyPlace() int {
	greedy := 0
	for w := range e.dead {
		e.dead[w] = 0
	}
	for {
		progress := false
		for w := 0; w < e.words; w++ {
			for m := e.noWrite[w] &^ e.placed[w] &^ e.dead[w]; m != 0; m &= m - 1 {
				i := w<<6 + bits.TrailingZeros64(m)
				if !e.predOK(i) {
					continue
				}
				// Commit read-only t-committed transactions; abort the rest
				// (for a no-write transaction the two are interchangeable
				// except for equivalence to H).
				if e.pushTxn(i, e.role[i] == roleMustCommit) {
					greedy++
					progress = true
				} else {
					e.dead.Set(i)
				}
			}
		}
		if !progress {
			break
		}
	}
	return greedy
}

// pushTxn checks transaction i's reads against the current stacks and, if
// legal, appends it with the given commit decision, updating the stacks
// and the incremental fingerprint.
func (e *engine) pushTxn(i int, commit bool) bool {
	t := e.txs[i]
	for _, r := range t.Reads {
		base := e.stackOff[r.Obj]
		sl := e.stackLen[r.Obj]
		if sl > 0 {
			if e.stackSlab[base+sl-1].val != r.Val {
				return false
			}
		} else if r.Val != history.InitValue {
			return false
		}
		if e.mode.local {
			legal := false
			foundIncluded := false
			for j := sl - 1; j >= 0; j-- {
				w := &e.stackSlab[base+j]
				if int(w.tryCInv) < r.ResIdx {
					foundIncluded = true
					legal = w.val == r.Val
					break
				}
			}
			if !foundIncluded {
				legal = r.Val == history.InitValue
			}
			if !legal {
				return false
			}
		}
	}
	e.placed.Set(i)
	e.placedCount++
	e.fp ^= zPlaced(i)
	e.order = append(e.order, int32(i))
	e.commits = append(e.commits, commit)
	if commit {
		for _, w := range t.Writes {
			d := e.stackLen[w.Obj]
			e.stackSlab[e.stackOff[w.Obj]+d] = stackEntry{
				txn: int32(i), tryCInv: int32(t.TryCInv), val: w.Val,
			}
			e.stackLen[w.Obj] = d + 1
			e.fp ^= zStack(w.Obj, int(d), i)
		}
	}
	return true
}

// popTxn undoes the most recent pushTxn.
func (e *engine) popTxn() {
	i := int(e.order[len(e.order)-1])
	if e.commits[len(e.commits)-1] {
		t := e.txs[i]
		for _, w := range t.Writes {
			d := e.stackLen[w.Obj] - 1
			e.stackLen[w.Obj] = d
			e.fp ^= zStack(w.Obj, int(d), i)
		}
	}
	e.order = e.order[:len(e.order)-1]
	e.commits = e.commits[:len(e.commits)-1]
	e.placed.Clear(i)
	e.placedCount--
	e.fp ^= zPlaced(i)
}

// place appends transaction i with the given commit decision — checking
// its reads (Definition 3 conditions 1 and 3: the latest committed writer
// on the stack must have written the value read, and so must the latest
// writer whose tryC invocation precedes the read's response in H, with
// T_0's InitValue as the base case) — recurses, and restores state.
func (e *engine) place(i int, commit bool) bool {
	if !e.pushTxn(i, commit) {
		return false
	}
	found := e.search()
	e.popTxn()
	return found
}

// emit materializes the witness for the current complete order. When
// enumerating it forwards the witness to the collector and reports whether
// to stop.
func (e *engine) emit() bool {
	e.orderBuf = grow(e.orderBuf, len(e.order))
	for pos, i := range e.order {
		e.orderBuf[pos] = e.gidx[i]
	}
	s := e.ix.SeqForOrder(e.orderBuf, e.commits)
	if e.collect != nil {
		stop := e.collect(s)
		if stop {
			e.witness = s
			return true
		}
		return false
	}
	e.witness = s
	return true
}

// --- Fingerprints ---------------------------------------------------------

// mix64 is the splitmix64 finalizer: a cheap bijective mixer whose outputs
// serve as the Zobrist keys, computed on demand instead of from tables.
func mix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// zPlaced keys membership of transaction i in the placed set.
func zPlaced(i int) uint64 {
	return mix64(0xA5A5A5A500000000 | uint64(i))
}

// zStack keys the presence of transaction txn at depth d of object o's
// committed-writer stack, so the accumulated XOR identifies the full stack
// contents in order — the exact state the reference engine's string key
// rendered. The packing keeps the inputs injective for up to 2²⁰
// transactions and stack depths and 2²⁴ objects — far past anything the
// multi-word engine meets (the pre-bitset packing overflowed at 256).
func zStack(obj, depth, txn int) uint64 {
	return mix64(uint64(obj)<<40 | uint64(depth)<<20 | uint64(txn))
}

// fpTable is an open-addressing set of 64-bit fingerprints with epoch-based
// O(1) clearing: a slot is occupied only when its epoch matches the current
// one, so reset is a counter bump rather than a table wipe.
type fpTable struct {
	keys   []uint64
	epochs []uint32
	epoch  uint32
	used   int
}

const fpTableMinSize = 1024

func (t *fpTable) reset() {
	if len(t.keys) == 0 {
		t.keys = make([]uint64, fpTableMinSize)
		t.epochs = make([]uint32, fpTableMinSize)
	}
	t.epoch++
	if t.epoch == 0 { // epoch counter wrapped: actually clear once
		for i := range t.epochs {
			t.epochs[i] = 0
		}
		t.epoch = 1
	}
	t.used = 0
}

func (t *fpTable) seen(fp uint64) bool {
	mask := uint64(len(t.keys) - 1)
	for s := fp & mask; ; s = (s + 1) & mask {
		if t.epochs[s] != t.epoch {
			return false
		}
		if t.keys[s] == fp {
			return true
		}
	}
}

func (t *fpTable) insert(fp uint64) {
	if 2*t.used >= len(t.keys) {
		t.growTable()
	}
	mask := uint64(len(t.keys) - 1)
	for s := fp & mask; ; s = (s + 1) & mask {
		if t.epochs[s] != t.epoch {
			t.epochs[s] = t.epoch
			t.keys[s] = fp
			t.used++
			return
		}
		if t.keys[s] == fp {
			return
		}
	}
}

func (t *fpTable) growTable() {
	oldKeys, oldEpochs, oldEpoch := t.keys, t.epochs, t.epoch
	t.keys = make([]uint64, 2*len(oldKeys))
	t.epochs = make([]uint32, 2*len(oldKeys))
	t.epoch = 1
	mask := uint64(len(t.keys) - 1)
	for i, ep := range oldEpochs {
		if ep != oldEpoch {
			continue
		}
		fp := oldKeys[i]
		for s := fp & mask; ; s = (s + 1) & mask {
			if t.epochs[s] != t.epoch {
				t.epochs[s] = t.epoch
				t.keys[s] = fp
				break
			}
		}
	}
}
