package spec

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"duopacity/internal/history"
)

// maxTxns bounds the exact checkers: placed-transaction sets are tracked as
// 64-bit masks.
const maxTxns = 64

// readReq is an external read of a transaction: a read that returned a
// value and is not preceded by an own write to the same object, so its
// legality depends on the serialization order.
type readReq struct {
	obj    int // object index
	val    history.Value
	resIdx int // index in H of the read's response event
	op     history.Op
}

// writerEntry records a committed transaction's write on a per-object
// stack, in serialization order.
type writerEntry struct {
	txn     int // transaction index
	val     history.Value
	tryCInv int // index in H of the writer's tryC invocation (>= 0)
}

// txnRole describes how a transaction may end in a serialization.
type txnRole uint8

const (
	roleMustCommit txnRole = iota + 1 // t-committed in H
	roleMustAbort                     // t-aborted, incomplete op, or complete-not-t-complete
	roleEither                        // commit-pending: the completion chooses
)

// searchMode tunes which conditions the engine enforces.
type searchMode struct {
	// local enforces the deferred-update condition: every external read
	// must be legal in its local serialization w.r.t. H and S
	// (Definition 3, condition 3).
	local bool
	// realTime enforces Definition 3 condition 2.
	realTime bool
	// committedOnly restricts the serialization to committed transactions
	// (serializability baselines).
	committedOnly bool
	// extraEdges adds ordering constraints (TMS2 / RCO): an edge (a, b)
	// requires a <_S b.
	extraEdges [][2]history.TxnID
}

// engine is the exhaustive serialization search shared by all criteria.
type engine struct {
	h    *history.History
	mode searchMode
	opts options

	ids  []history.TxnID
	idx  map[history.TxnID]int
	txs  []*history.TxnInfo
	role []txnRole

	objs   []history.Var
	objIdx map[history.Var]int

	reads      [][]readReq             // external reads per txn
	lastWrites []map[int]history.Value // committed values per txn, by object index
	writeObjs  [][]int                 // sorted object indexes written per txn

	pred []uint64 // required predecessors per txn (real-time + extra edges)

	// Search state.
	placed  uint64
	order   []int
	commits []bool
	stacks  [][]writerEntry
	memo    map[string]struct{}
	nodes   int

	// Enumeration state (nil unless enumerating).
	collect func(*history.Seq) bool

	witness *history.Seq
	reason  string
	bailed  bool // node limit reached
}

// newEngine analyzes h for the given mode. It returns an error verdict
// reason if h is statically refuted or out of scope.
func newEngine(h *history.History, mode searchMode, opts options) (*engine, string) {
	e := &engine{h: h, mode: mode, opts: opts, memo: make(map[string]struct{})}
	all := h.Txns()
	e.idx = make(map[history.TxnID]int, len(all))
	for _, k := range all {
		t := h.Txn(k)
		if mode.committedOnly && !(t.Committed() || t.CommitPending()) {
			continue
		}
		e.idx[k] = len(e.ids)
		e.ids = append(e.ids, k)
		e.txs = append(e.txs, t)
	}
	n := len(e.ids)
	if n > maxTxns {
		return nil, fmt.Sprintf("history has %d transactions; exact checking is limited to %d", n, maxTxns)
	}

	e.objIdx = make(map[history.Var]int)
	for _, v := range h.Vars() {
		e.objIdx[v] = len(e.objs)
		e.objs = append(e.objs, v)
	}
	e.stacks = make([][]writerEntry, len(e.objs))

	e.role = make([]txnRole, n)
	e.reads = make([][]readReq, n)
	e.lastWrites = make([]map[int]history.Value, n)
	e.writeObjs = make([][]int, n)
	e.pred = make([]uint64, n)

	for i, t := range e.txs {
		switch {
		case t.Committed():
			e.role[i] = roleMustCommit
		case t.CommitPending():
			e.role[i] = roleEither
		default:
			e.role[i] = roleMustAbort
		}
		// Analyze H|k: own-write overlay, external reads, last writes.
		overlay := make(map[history.Var]history.Value)
		for _, op := range t.Ops {
			if op.Pending {
				break
			}
			switch op.Kind {
			case history.OpRead:
				if op.Out != history.OutOK {
					continue
				}
				if v, ok := overlay[op.Obj]; ok {
					if v != op.Val {
						return nil, fmt.Sprintf(
							"T%d: %v returned %d but the transaction's own latest write to %s is %d",
							t.ID, op, op.Val, op.Obj, v)
					}
					continue // own-write read: legal in every serialization
				}
				e.reads[i] = append(e.reads[i], readReq{
					obj: e.objIdx[op.Obj], val: op.Val, resIdx: op.ResIndex, op: op,
				})
			case history.OpWrite:
				if op.Out == history.OutOK {
					overlay[op.Obj] = op.Arg
				}
			}
		}
		lw := make(map[int]history.Value, len(overlay))
		for v, val := range overlay {
			lw[e.objIdx[v]] = val
		}
		e.lastWrites[i] = lw
		for o := range lw {
			e.writeObjs[i] = append(e.writeObjs[i], o)
		}
		sort.Ints(e.writeObjs[i])
	}

	// Ordering constraints.
	if mode.realTime {
		for _, m := range e.ids {
			mi := e.idx[m]
			for _, k := range e.ids {
				if h.RealTimePrecedes(k, m) {
					e.pred[mi] |= 1 << uint(e.idx[k])
				}
			}
		}
	}
	for _, edge := range mode.extraEdges {
		ai, aok := e.idx[edge[0]]
		bi, bok := e.idx[edge[1]]
		if aok && bok {
			e.pred[bi] |= 1 << uint(ai)
		}
	}
	if reason := e.staticReject(); reason != "" {
		return nil, reason
	}
	return e, ""
}

// staticReject performs order-independent feasibility checks so that common
// violations are refuted without search, with a precise reason.
func (e *engine) staticReject() string {
	// Candidate writers per (object, value): transactions that can commit
	// that value.
	type key struct {
		obj int
		val history.Value
	}
	capable := make(map[key][]int)
	for i := range e.txs {
		if e.role[i] == roleMustAbort {
			continue
		}
		for o, v := range e.lastWrites[i] {
			capable[key{o, v}] = append(capable[key{o, v}], i)
		}
	}
	for i, t := range e.txs {
		for _, r := range e.reads[i] {
			if r.val == history.InitValue {
				continue // T_0 is always a legal source
			}
			cands := capable[key{r.obj, r.val}]
			found := false
			foundLocal := false
			for _, c := range cands {
				if c == i {
					continue
				}
				found = true
				if e.txs[c].TryCInv >= 0 && e.txs[c].TryCInv < r.resIdx {
					foundLocal = true
				}
			}
			if !found {
				return fmt.Sprintf("T%d: %v has no possible source: no committable transaction writes %s=%d",
					t.ID, r.op, e.objs[r.obj], r.val)
			}
			if e.mode.local && !foundLocal {
				return fmt.Sprintf(
					"T%d: %v violates deferred update: no transaction writing %s=%d invoked tryC before the read's response",
					t.ID, r.op, e.objs[r.obj], r.val)
			}
		}
	}
	return ""
}

// run performs the search and returns the verdict fields.
func (e *engine) run() (ok bool, witness *history.Seq, reason string, bailed bool, nodes int) {
	if e.search() {
		return true, e.witness, "", false, e.nodes
	}
	if e.bailed {
		return false, nil, "node limit exceeded", true, e.nodes
	}
	if e.reason == "" {
		e.reason = "no serialization satisfies the criterion"
	}
	return false, nil, e.reason, false, e.nodes
}

// search tries to extend the current partial serialization to a full one.
// It returns true when a witness has been found (and, when not
// enumerating, the search should stop).
func (e *engine) search() bool {
	if e.opts.nodeLimit > 0 && e.nodes > e.opts.nodeLimit {
		e.bailed = true
		return false
	}
	e.nodes++
	n := len(e.ids)

	// Greedy dominance phase (skipped when enumerating, where it would
	// hide valid orders): a transaction that installs no writes never
	// changes the per-object stacks, so if its reads are legal in the
	// current state it can be placed immediately — any completion placing
	// it later maps to one placing it now with identical stack evolution.
	// This collapses the exponential interchangeability of concurrent
	// readers (e.g. the Figure 2 family).
	greedy := 0
	if e.collect == nil {
		for progress := true; progress; {
			progress = false
			for i := 0; i < n; i++ {
				bit := uint64(1) << uint(i)
				if e.placed&bit != 0 || e.pred[i]&^e.placed != 0 || len(e.writeObjs[i]) > 0 {
					continue
				}
				// Commit read-only t-committed transactions; abort the
				// rest (for a no-write transaction the two are
				// interchangeable except for equivalence to H).
				if e.pushTxn(i, e.role[i] == roleMustCommit) {
					greedy++
					progress = true
				}
			}
		}
	}
	defer func() {
		for ; greedy > 0; greedy-- {
			e.popTxn()
		}
	}()

	if len(e.order) == n {
		return e.emit()
	}
	key := e.stateKey()
	if _, dead := e.memo[key]; dead {
		return false
	}
	// Try available transactions in first-event order (the analysis order),
	// which finds witnesses quickly on realistic histories.
	found := false
	for i := 0; i < n; i++ {
		bit := uint64(1) << uint(i)
		if e.placed&bit != 0 || e.pred[i]&^e.placed != 0 {
			continue
		}
		switch e.role[i] {
		case roleMustCommit:
			found = e.place(i, true)
		case roleMustAbort:
			found = e.place(i, false)
		case roleEither:
			// Prefer committing: transactions whose values someone read
			// must commit, and committing a pending tryC is never required
			// to fail.
			found = e.place(i, true) || e.place(i, false)
		}
		if found {
			return true
		}
		if e.bailed {
			return false
		}
	}
	if e.collect == nil {
		e.memo[key] = struct{}{}
	}
	return false
}

// pushTxn checks transaction i's reads against the current stacks and, if
// legal, appends it with the given commit decision, updating the stacks.
func (e *engine) pushTxn(i int, commit bool) bool {
	for _, r := range e.reads[i] {
		st := e.stacks[r.obj]
		if len(st) > 0 {
			if st[len(st)-1].val != r.val {
				return false
			}
		} else if r.val != history.InitValue {
			return false
		}
		if e.mode.local {
			legal := false
			foundIncluded := false
			for j := len(st) - 1; j >= 0; j-- {
				if st[j].tryCInv < r.resIdx {
					foundIncluded = true
					legal = st[j].val == r.val
					break
				}
			}
			if !foundIncluded {
				legal = r.val == history.InitValue
			}
			if !legal {
				return false
			}
		}
	}
	e.placed |= uint64(1) << uint(i)
	e.order = append(e.order, i)
	e.commits = append(e.commits, commit)
	if commit {
		for _, o := range e.writeObjs[i] {
			e.stacks[o] = append(e.stacks[o], writerEntry{
				txn: i, val: e.lastWrites[i][o], tryCInv: e.txs[i].TryCInv,
			})
		}
	}
	return true
}

// popTxn undoes the most recent pushTxn.
func (e *engine) popTxn() {
	i := e.order[len(e.order)-1]
	if e.commits[len(e.commits)-1] {
		for _, o := range e.writeObjs[i] {
			e.stacks[o] = e.stacks[o][:len(e.stacks[o])-1]
		}
	}
	e.order = e.order[:len(e.order)-1]
	e.commits = e.commits[:len(e.commits)-1]
	e.placed &^= uint64(1) << uint(i)
}

// place appends transaction i with the given commit decision — checking
// its reads (Definition 3 conditions 1 and 3: the latest committed writer
// on the stack must have written the value read, and so must the latest
// writer whose tryC invocation precedes the read's response in H, with
// T_0's InitValue as the base case) — recurses, and restores state.
func (e *engine) place(i int, commit bool) bool {
	if !e.pushTxn(i, commit) {
		return false
	}
	found := e.search()
	e.popTxn()
	return found
}

// emit materializes the witness for the current complete order. When
// enumerating it forwards the witness to the collector and reports whether
// to stop.
func (e *engine) emit() bool {
	order := make([]history.TxnID, len(e.order))
	commit := make(map[history.TxnID]bool, len(e.order))
	for pos, i := range e.order {
		order[pos] = e.ids[i]
		commit[e.ids[i]] = e.commits[pos]
	}
	var s *history.Seq
	if e.mode.committedOnly {
		s = e.committedSeq(order, commit)
	} else {
		var err error
		s, err = history.SeqFromHistory(e.h, order, commit)
		if err != nil {
			// The order contains exactly the history's transactions.
			panic("spec: internal error materializing witness: " + err.Error())
		}
	}
	if e.collect != nil {
		stop := e.collect(s)
		if stop {
			e.witness = s
			return true
		}
		return false
	}
	e.witness = s
	return true
}

// committedSeq builds the witness for the serializability baselines, which
// order only the committed transactions.
func (e *engine) committedSeq(order []history.TxnID, commit map[history.TxnID]bool) *history.Seq {
	s := &history.Seq{}
	for _, k := range order {
		t := e.h.Txn(k)
		ops := append([]history.Op(nil), t.Ops...)
		if t.CommitPending() {
			last := &ops[len(ops)-1]
			last.Pending = false
			if commit[k] {
				last.Out = history.OutCommit
			} else {
				last.Out = history.OutAbort
			}
		}
		s.Txns = append(s.Txns, history.SeqTxn{ID: k, Ops: ops})
	}
	return s
}

// stateKey fingerprints the search state: the placed set plus, per object,
// the stack of committed writers in placement order. Two states with equal
// keys admit exactly the same completions.
func (e *engine) stateKey() string {
	var b strings.Builder
	b.Grow(16 + 4*len(e.objs))
	b.WriteString(strconv.FormatUint(e.placed, 16))
	for _, st := range e.stacks {
		b.WriteByte('|')
		for _, w := range st {
			b.WriteString(strconv.Itoa(w.txn))
			b.WriteByte(',')
		}
	}
	return b.String()
}
