package spec_test

import (
	"testing"

	"duopacity/internal/history"
	"duopacity/internal/spec"
)

// historyFromBytes decodes a fuzz payload into a well-formed history by
// construction: bytes are consumed in pairs (transaction selector, action
// selector). A transaction with a pending operation gets its response (the
// action byte picks the outcome and read value); otherwise the action byte
// picks a new invocation. Unconsumed choices (transaction already ended,
// invocation after tryC) are skipped, so every byte string maps to some
// well-formed history — including ones with pending operations,
// commit-pending transactions, interleaved responses, aborted reads and
// value collisions across writers (small value domain).
func historyFromBytes(data []byte) *history.History {
	const (
		maxEvents = 44
		numTxns   = 5
		numObjs   = 3
	)
	objs := [numObjs]history.Var{"X", "Y", "Z"}
	type txnState struct {
		pending     bool
		pendingKind history.OpKind
		pendingObj  history.Var
		pendingArg  history.Value
		afterTry    bool
		ended       bool
	}
	var states [numTxns + 1]txnState
	var evs []history.Event
	for p := 0; p+1 < len(data) && len(evs) < maxEvents; p += 2 {
		k := history.TxnID(data[p]%numTxns) + 1
		b := data[p+1]
		t := &states[k]
		if t.ended {
			continue
		}
		if t.pending {
			// Response to the pending invocation.
			ev := history.Event{Kind: history.Res, Op: t.pendingKind, Txn: k, Obj: t.pendingObj, Arg: t.pendingArg}
			switch t.pendingKind {
			case history.OpRead:
				if b%5 == 0 {
					ev.Out = history.OutAbort
					t.ended = true
				} else {
					ev.Out = history.OutOK
					ev.Val = history.Value((b >> 2) % 4)
				}
			case history.OpWrite:
				if b%7 == 0 {
					ev.Out = history.OutAbort
					t.ended = true
				} else {
					ev.Out = history.OutOK
				}
			case history.OpTryCommit:
				if b%3 == 0 {
					ev.Out = history.OutAbort
				} else {
					ev.Out = history.OutCommit
				}
				t.ended = true
			default: // OpTryAbort
				ev.Out = history.OutAbort
				t.ended = true
			}
			t.pending = false
			evs = append(evs, ev)
			continue
		}
		if t.afterTry {
			continue // no invocations after tryC/tryA
		}
		// New invocation.
		ev := history.Event{Kind: history.Inv, Txn: k}
		switch b % 10 {
		case 0, 1, 2, 3:
			ev.Op = history.OpRead
			ev.Obj = objs[(b>>4)%numObjs]
		case 4, 5, 6, 7:
			ev.Op = history.OpWrite
			ev.Obj = objs[(b>>4)%numObjs]
			ev.Arg = history.Value((b>>6)%3 + 1)
		case 8:
			ev.Op = history.OpTryCommit
			t.afterTry = true
		default:
			ev.Op = history.OpTryAbort
			t.afterTry = true
		}
		t.pending = true
		t.pendingKind = ev.Op
		t.pendingObj = ev.Obj
		t.pendingArg = ev.Arg
		evs = append(evs, ev)
	}
	h, err := history.FromEvents(evs)
	if err != nil {
		// The state machine mirrors the well-formedness rules; this would
		// be a bug in the generator.
		panic("fuzz generator produced a malformed history: " + err.Error())
	}
	return h
}

// FuzzCheckerDifferential asserts verdict equality — OK, rejection reason,
// undecided flag and explored node count — between the optimized engine
// and the frozen reference engine, for every criterion, on histories
// decoded from the fuzz payload. It also cross-checks the parallel
// portfolio search against the sequential verdict whenever both decide.
func FuzzCheckerDifferential(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 44, 0, 8, 1, 0, 1, 4, 0, 88, 1, 9})
	f.Add([]byte{0, 4, 0, 1, 1, 0, 1, 6, 0, 8, 0, 1, 1, 8, 1, 1})
	f.Add([]byte{2, 0, 2, 4, 0, 4, 0, 1, 1, 0, 1, 4, 2, 8, 2, 1, 0, 8, 0, 2, 1, 8, 1, 2})
	f.Add([]byte{0, 4, 0, 1, 0, 8, 1, 0, 1, 4, 0, 1, 2, 0, 2, 4, 1, 8, 2, 8, 0, 1, 1, 1, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := historyFromBytes(data)
		if h.Len() == 0 {
			t.Skip()
		}
		const limit = 30_000
		for _, c := range spec.AllCriteria() {
			got := spec.Check(h, c, spec.WithNodeLimit(limit))
			want := spec.CheckReference(h, c, spec.WithNodeLimit(limit))
			if got.OK != want.OK || got.Undecided != want.Undecided || got.Reason != want.Reason || got.Nodes != want.Nodes {
				t.Fatalf("%s: engine disagreement\n  new: OK=%v undecided=%v nodes=%d reason=%q\n  ref: OK=%v undecided=%v nodes=%d reason=%q\nhistory:\n%s",
					c, got.OK, got.Undecided, got.Nodes, got.Reason,
					want.OK, want.Undecided, want.Nodes, want.Reason, h)
			}
			if got.OK && c == spec.DUOpacity {
				if err := spec.VerifySerialization(h, got.Serialization); err != nil {
					t.Fatalf("du-opacity witness rejected by the independent validator: %v\nhistory:\n%s", err, h)
				}
			}
		}
		// Portfolio: acceptance must match whenever both runs decide.
		seq := spec.Check(h, spec.DUOpacity, spec.WithNodeLimit(limit))
		par := spec.Check(h, spec.DUOpacity, spec.WithNodeLimit(limit), spec.WithParallelism(4))
		if !seq.Undecided && !par.Undecided && seq.OK != par.OK {
			t.Fatalf("portfolio disagreement: sequential OK=%v, parallel OK=%v\nhistory:\n%s",
				seq.OK, par.OK, h)
		}
		if par.OK {
			if err := spec.VerifySerialization(h, par.Serialization); err != nil {
				t.Fatalf("portfolio witness rejected by the validator: %v\nhistory:\n%s", err, h)
			}
		}
	})
}
