package spec_test

import (
	"testing"

	"duopacity/internal/harness"
	"duopacity/internal/history"
	"duopacity/internal/litmus"
	"duopacity/internal/spec"
)

// historyFromBytes decodes a fuzz payload into a well-formed history by
// construction: bytes are consumed in pairs (transaction selector, action
// selector). A transaction with a pending operation gets its response (the
// action byte picks the outcome and read value); otherwise the action byte
// picks a new invocation. Unconsumed choices (transaction already ended,
// invocation after tryC) are skipped, so every byte string maps to some
// well-formed history — including ones with pending operations,
// commit-pending transactions, interleaved responses, aborted reads and
// value collisions across writers (small value domain).
func historyFromBytes(data []byte) *history.History {
	const (
		maxEvents = 44
		numTxns   = 5
		numObjs   = 3
	)
	objs := [numObjs]history.Var{"X", "Y", "Z"}
	type txnState struct {
		pending     bool
		pendingKind history.OpKind
		pendingObj  history.Var
		pendingArg  history.Value
		afterTry    bool
		ended       bool
	}
	var states [numTxns + 1]txnState
	var evs []history.Event
	for p := 0; p+1 < len(data) && len(evs) < maxEvents; p += 2 {
		k := history.TxnID(data[p]%numTxns) + 1
		b := data[p+1]
		t := &states[k]
		if t.ended {
			continue
		}
		if t.pending {
			// Response to the pending invocation.
			ev := history.Event{Kind: history.Res, Op: t.pendingKind, Txn: k, Obj: t.pendingObj, Arg: t.pendingArg}
			switch t.pendingKind {
			case history.OpRead:
				if b%5 == 0 {
					ev.Out = history.OutAbort
					t.ended = true
				} else {
					ev.Out = history.OutOK
					ev.Val = history.Value((b >> 2) % 4)
				}
			case history.OpWrite:
				if b%7 == 0 {
					ev.Out = history.OutAbort
					t.ended = true
				} else {
					ev.Out = history.OutOK
				}
			case history.OpTryCommit:
				if b%3 == 0 {
					ev.Out = history.OutAbort
				} else {
					ev.Out = history.OutCommit
				}
				t.ended = true
			default: // OpTryAbort
				ev.Out = history.OutAbort
				t.ended = true
			}
			t.pending = false
			evs = append(evs, ev)
			continue
		}
		if t.afterTry {
			continue // no invocations after tryC/tryA
		}
		// New invocation.
		ev := history.Event{Kind: history.Inv, Txn: k}
		switch b % 10 {
		case 0, 1, 2, 3:
			ev.Op = history.OpRead
			ev.Obj = objs[(b>>4)%numObjs]
		case 4, 5, 6, 7:
			ev.Op = history.OpWrite
			ev.Obj = objs[(b>>4)%numObjs]
			ev.Arg = history.Value((b>>6)%3 + 1)
		case 8:
			ev.Op = history.OpTryCommit
			t.afterTry = true
		default:
			ev.Op = history.OpTryAbort
			t.afterTry = true
		}
		t.pending = true
		t.pendingKind = ev.Op
		t.pendingObj = ev.Obj
		t.pendingArg = ev.Arg
		evs = append(evs, ev)
	}
	h, err := history.FromEvents(evs)
	if err != nil {
		// The state machine mirrors the well-formedness rules; this would
		// be a bug in the generator.
		panic("fuzz generator produced a malformed history: " + err.Error())
	}
	return h
}

// encodeHistory inverts historyFromBytes: it renders a history as the
// byte-pair fuzz payload, renaming objects to the decoder's fixed X/Y/Z
// alphabet in order of first use and remapping written values into the
// decoder's 1..3 domain. Histories that do not fit the decoder's shape
// (more than 5 transactions, 3 objects, 3 distinct written values, a
// read of a value nothing wrote, or over 44 events) return ok=false.
// It exists to plant real engine executions — pdur's partitioned
// certifier interleavings in particular — into the fuzz corpus.
func encodeHistory(h *history.History) (data []byte, ok bool) {
	objIdx := map[history.Var]int{}
	valMap := map[history.Value]history.Value{0: 0}
	next := history.Value(1)
	mapVal := func(v history.Value, extend bool) (history.Value, bool) {
		if m, ok := valMap[v]; ok {
			return m, true
		}
		if !extend || next > 3 {
			return 0, false
		}
		m := next
		next++
		valMap[v] = m
		return m, true
	}
	evs := h.Events()
	if len(evs) > 44 {
		return nil, false
	}
	for _, ev := range evs {
		if ev.Txn < 1 || ev.Txn > 5 {
			return nil, false
		}
		oi := 0
		if ev.Op == history.OpRead || ev.Op == history.OpWrite {
			idx, seen := objIdx[ev.Obj]
			if !seen {
				idx = len(objIdx)
				if idx >= 3 {
					return nil, false
				}
				objIdx[ev.Obj] = idx
			}
			oi = idx
		}
		// Brute-force the action byte: the decoder's arithmetic is cheap
		// enough to invert by search over all 256 candidates.
		found := false
		for c := 0; c < 256 && !found; c++ {
			b := byte(c)
			if ev.Kind == history.Inv {
				switch ev.Op {
				case history.OpRead:
					found = b%10 <= 3 && int((b>>4)%3) == oi
				case history.OpWrite:
					arg, okv := mapVal(ev.Arg, true)
					if !okv {
						return nil, false
					}
					found = b%10 >= 4 && b%10 <= 7 && int((b>>4)%3) == oi && history.Value((b>>6)%3+1) == arg
				case history.OpTryCommit:
					found = b%10 == 8
				default: // OpTryAbort
					found = b%10 == 9
				}
			} else {
				switch ev.Op {
				case history.OpRead:
					if ev.Out == history.OutAbort {
						found = b%5 == 0
					} else {
						// Only values some write introduced (or 0) decode back.
						v, okv := mapVal(ev.Val, false)
						if !okv {
							return nil, false
						}
						found = b%5 != 0 && history.Value((b>>2)%4) == v
					}
				case history.OpWrite:
					if ev.Out == history.OutAbort {
						found = b%7 == 0
					} else {
						found = b%7 != 0
					}
				case history.OpTryCommit:
					if ev.Out == history.OutCommit {
						found = b%3 != 0
					} else {
						found = b%3 == 0
					}
				default: // OpTryAbort: any byte decodes to the abort response
					found = true
				}
			}
			if found {
				data = append(data, byte(ev.Txn-1), b)
			}
		}
		if !found {
			return nil, false
		}
	}
	return data, true
}

// pdurSeedWorkload is the shape of the pdur episodes planted into the
// fuzz corpus: small enough to fit the decoder's alphabet, contended
// enough (3 objects, 2 partitions) that cross-partition validation and
// partition-lock ordering show up in the recorded interleavings.
func pdurSeedWorkload(seed int64) harness.Workload {
	return harness.Workload{
		Engine: "pdur", Objects: 3, Goroutines: 2,
		TxnsPerGoroutine: 1, OpsPerTxn: 3, ReadFraction: 0.5, Seed: seed,
	}
}

// TestPdurSeedEncoderRoundTrips pins the corpus encoder: a recorded
// pdur episode decodes back with the same event skeleton (kind, op,
// transaction, outcome per event), and enough of the seed range
// actually fits the decoder's alphabet to be worth planting.
func TestPdurSeedEncoderRoundTrips(t *testing.T) {
	encoded := 0
	for seed := int64(1); seed <= 12; seed++ {
		h, _, err := harness.RunInterleaved(pdurSeedWorkload(seed))
		if err != nil {
			t.Fatal(err)
		}
		data, ok := encodeHistory(h)
		if !ok {
			continue
		}
		encoded++
		got := historyFromBytes(data)
		if got.Len() != h.Len() {
			t.Fatalf("seed %d: decoded %d events, want %d\noriginal:\n%s\ndecoded:\n%s",
				seed, got.Len(), h.Len(), h, got)
		}
		gevs, wevs := got.Events(), h.Events()
		for i := range wevs {
			g, w := gevs[i], wevs[i]
			if g.Kind != w.Kind || g.Op != w.Op || g.Txn != w.Txn || g.Out != w.Out {
				t.Fatalf("seed %d event %d: decoded %+v, want skeleton of %+v", seed, i, g, w)
			}
		}
	}
	if encoded < 4 {
		t.Fatalf("only %d/12 pdur seeds fit the fuzz alphabet; corpus planting is ineffective", encoded)
	}
}

// FuzzCheckerDifferential asserts verdict equality — OK, rejection reason,
// undecided flag and explored node count — between the optimized engine
// and the frozen reference engine, for every criterion, on histories
// decoded from the fuzz payload. It also cross-checks the parallel
// portfolio search against the sequential verdict whenever both decide,
// and — drawing a monitorable criterion, a retirement window and the
// TMS2 exemption from the sel byte — runs the online monitor over the
// same history, pinned per response prefix against the batch checker
// (the fuzzed counterpart of TestMonitorDifferentialAllCriteria).
func FuzzCheckerDifferential(f *testing.F) {
	f.Add([]byte{}, byte(0))
	f.Add([]byte{0, 44, 0, 8, 1, 0, 1, 4, 0, 88, 1, 9}, byte(0))
	f.Add([]byte{0, 4, 0, 1, 1, 0, 1, 6, 0, 8, 0, 1, 1, 8, 1, 1}, byte(1))
	f.Add([]byte{2, 0, 2, 4, 0, 4, 0, 1, 1, 0, 1, 4, 2, 8, 2, 1, 0, 8, 0, 2, 1, 8, 1, 2}, byte(2))
	f.Add([]byte{0, 4, 0, 1, 0, 8, 1, 0, 1, 4, 0, 1, 2, 0, 2, 4, 1, 8, 2, 8, 0, 1, 1, 1, 2, 1}, byte(0x21))
	// Conflict-order litmus corpus: Figure 6 (du-opaque but not TMS2) and
	// its mirror Figure 5 (du-opaque but not RCO), planted with sel bytes
	// that draw the criterion each figure separates — and, for Figure 6's
	// shape, the TMS2 aborted-reader variant (the pinned
	// harness/testdata/tms2_aborted_reader.hist golden renumbered into the
	// fuzz alphabet) under both exemption settings.
	if data, ok := encodeHistory(litmus.Figure6()); ok {
		f.Add(data, byte(1)) // TMS2
		f.Add(data, byte(2)) // RCO accepts the same history
	}
	if data, ok := encodeHistory(litmus.Figure5()); ok {
		f.Add(data, byte(2)) // RCO
		f.Add(data, byte(1)) // TMS2 accepts the same history
	}
	abortedReader := history.NewBuilder().
		Write(1, "X", 1).Commit(1).
		Read(2, "X", 1).
		Write(3, "X", 2).Commit(3).
		CommitAbort(2).
		History()
	if data, ok := encodeHistory(abortedReader); ok {
		f.Add(data, byte(1))    // strict TMS2 rejects
		f.Add(data, byte(0x81)) // the exemption flips it to accept
	}
	// Real pdur executions, recorded under the deterministic interleaved
	// scheduler and re-encoded into the fuzz alphabet: the corpus starts
	// from interleavings a partitioned certifier actually produces
	// (cross-partition reads, disjoint commits, partition-ordered locks)
	// rather than only synthetic shapes.
	for seed := int64(1); seed <= 12; seed++ {
		if h, _, err := harness.RunInterleaved(pdurSeedWorkload(seed)); err == nil {
			if data, ok := encodeHistory(h); ok {
				f.Add(data, byte(seed%5))
			}
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, sel byte) {
		h := historyFromBytes(data)
		if h.Len() == 0 {
			t.Skip()
		}
		const limit = 30_000
		for _, c := range spec.AllCriteria() {
			got := spec.Check(h, c, spec.WithNodeLimit(limit))
			want := spec.CheckReference(h, c, spec.WithNodeLimit(limit))
			if got.OK != want.OK || got.Undecided != want.Undecided || got.Reason != want.Reason || got.Nodes != want.Nodes {
				t.Fatalf("%s: engine disagreement\n  new: OK=%v undecided=%v nodes=%d reason=%q\n  ref: OK=%v undecided=%v nodes=%d reason=%q\nhistory:\n%s",
					c, got.OK, got.Undecided, got.Nodes, got.Reason,
					want.OK, want.Undecided, want.Nodes, want.Reason, h)
			}
			if got.OK && c == spec.DUOpacity {
				if err := spec.VerifySerialization(h, got.Serialization); err != nil {
					t.Fatalf("du-opacity witness rejected by the independent validator: %v\nhistory:\n%s", err, h)
				}
			}
		}
		// Portfolio: acceptance must match whenever both runs decide.
		seq := spec.Check(h, spec.DUOpacity, spec.WithNodeLimit(limit))
		par := spec.Check(h, spec.DUOpacity, spec.WithNodeLimit(limit), spec.WithParallelism(4))
		if !seq.Undecided && !par.Undecided && seq.OK != par.OK {
			t.Fatalf("portfolio disagreement: sequential OK=%v, parallel OK=%v\nhistory:\n%s",
				seq.OK, par.OK, h)
		}
		if par.OK {
			if err := spec.VerifySerialization(h, par.Serialization); err != nil {
				t.Fatalf("portfolio witness rejected by the validator: %v\nhistory:\n%s", err, h)
			}
		}
		// Online monitor differential: sel draws a monitorable criterion,
		// a retirement window and (for TMS2) the aborted-reader exemption;
		// feedCompareOpts pins monitor == batch at every response prefix
		// while unlatched, and the incremental edge set against the batch
		// edge builders at every prefix when no window retires state.
		mcs := spec.MonitorableCriteria()
		mc := mcs[int(sel&0x0f)%len(mcs)]
		window := []int{0, 0, 4, 16}[int(sel>>4)%4]
		exempt := mc == spec.TMS2 && sel&0x80 != 0
		feedCompareOpts(t, mc, h, window, exempt)
	})
}
