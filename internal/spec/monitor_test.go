package spec_test

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"duopacity/internal/gen"
	"duopacity/internal/history"
	"duopacity/internal/litmus"
	"duopacity/internal/spec"
)

func feed(t *testing.T, m *spec.Monitor, h *history.History) spec.Verdict {
	t.Helper()
	var v spec.Verdict
	for _, e := range h.Events() {
		var err error
		v, err = m.Append(e)
		if err != nil {
			t.Fatalf("append %v: %v", e, err)
		}
	}
	return v
}

func TestMonitorMatchesBatchOnLitmus(t *testing.T) {
	for _, c := range litmus.Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			m, err := spec.NewMonitor(spec.DUOpacity)
			if err != nil {
				t.Fatal(err)
			}
			v := feed(t, m, c.H)
			want := spec.CheckDUOpacity(c.H).OK
			if v.OK != want {
				t.Fatalf("monitor = %v, batch = %v (reason: %s)", v.OK, want, v.Reason)
			}
		})
	}
}

func TestMonitorLatchesViolation(t *testing.T) {
	m, err := spec.NewMonitor(spec.DUOpacity)
	if err != nil {
		t.Fatal(err)
	}
	// Read of a never-written value: violated at the read's response.
	h := history.NewBuilder().
		Read(1, "X", 7).
		Commit(1).
		History()
	evs := h.Events()
	var v spec.Verdict
	for i, e := range evs {
		v, err = m.Append(e)
		if err != nil {
			t.Fatal(err)
		}
		if i >= 1 && v.OK {
			t.Fatalf("event %d: violation not detected", i)
		}
	}
	if v.OK {
		t.Fatal("final verdict should be violated")
	}
	// The refutation reason survives later events (latched).
	if v.Reason == "" {
		t.Fatal("missing reason")
	}
}

func TestMonitorDetectsAtTheRightEvent(t *testing.T) {
	// Figure 3: the violation becomes definitive exactly at read_2's
	// response (the first prefix that is not final-state opaque), not
	// before.
	m, err := spec.NewMonitor(spec.FinalStateOpacity)
	if err != nil {
		t.Fatal(err)
	}
	h := litmus.Figure3()
	evs := h.Events()
	for i, e := range evs {
		v, err := m.Append(e)
		if err != nil {
			t.Fatal(err)
		}
		if i < litmus.Figure3PrefixLen-1 && !v.OK {
			t.Fatalf("event %d: premature violation", i)
		}
		if i == litmus.Figure3PrefixLen-1 && v.OK {
			t.Fatalf("event %d: violation missed", i)
		}
	}
	// Note: monitored final-state opacity is prefix-latched, i.e. it
	// decides *opacity*; the full Figure 3 history itself is final-state
	// opaque again, which is exactly the non-prefix-closure anomaly.
	if spec.CheckFinalStateOpacity(h).OK != true {
		t.Fatal("figure 3 should be final-state opaque as a whole")
	}
	if m.Verdict().OK {
		t.Fatal("monitor must stay latched")
	}
}

func TestMonitorFastPathHits(t *testing.T) {
	m, err := spec.NewMonitor(spec.DUOpacity)
	if err != nil {
		t.Fatal(err)
	}
	h := gen.DUOpaque(gen.Config{Txns: 8, Objects: 3, OpsPerTxn: 3, Relax: 4, Seed: 5})
	feed(t, m, h)
	if !m.Verdict().OK {
		t.Fatalf("generated du-opaque history rejected: %s", m.Verdict().Reason)
	}
	searches, hits := m.Stats()
	if hits == 0 {
		t.Error("witness reuse never succeeded on an extending du-opaque history")
	}
	if searches == 0 {
		t.Error("expected at least one full search (the first response)")
	}
	t.Logf("searches=%d fastHits=%d", searches, hits)
}

func TestMonitorRejectsMalformedEvent(t *testing.T) {
	m, err := spec.NewMonitor(spec.DUOpacity)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(history.Event{Kind: history.Res, Op: history.OpRead, Txn: 1, Obj: "X", Out: history.OutOK}); err == nil {
		t.Fatal("orphan response accepted")
	}
	// The monitor state is unchanged and usable.
	if m.History().Len() != 0 {
		t.Fatal("failed append mutated the monitor")
	}
	if _, err := m.Append(history.Event{Kind: history.Inv, Op: history.OpRead, Txn: 1, Obj: "X"}); err != nil {
		t.Fatalf("valid append after failure: %v", err)
	}
}

// TestMonitorRejectionMidStreamIsSideEffectFree is the regression test
// for the pre-stream Monitor.Append bug where the rejected event was
// written into the event slice's spare capacity before validation. With
// the stream core, a rejected append must leave the monitor byte-for-byte
// where it was: same history, same verdict, and subsequent appends behave
// as if the bad event was never offered.
func TestMonitorRejectionMidStreamIsSideEffectFree(t *testing.T) {
	h := gen.DUOpaque(gen.Config{Txns: 6, Objects: 3, OpsPerTxn: 3, Relax: 4, Seed: 11})
	evs := h.Events()
	m, err := spec.NewMonitor(spec.DUOpacity)
	if err != nil {
		t.Fatal(err)
	}
	bad := []history.Event{
		{Kind: history.Res, Op: history.OpRead, Txn: 99, Obj: "X", Out: history.OutOK, Val: 1},
		{Kind: history.Inv, Op: history.OpWrite, Txn: history.InitTxn, Obj: "X", Arg: 1},
	}
	for i, e := range evs {
		// Offer malformed events before every real one.
		before := m.Verdict()
		for _, b := range bad {
			if _, err := m.Append(b); err == nil {
				t.Fatalf("event %d: malformed event %v accepted", i, b)
			}
		}
		if m.History().Len() != i {
			t.Fatalf("event %d: rejected appends changed the history length to %d", i, m.History().Len())
		}
		after := m.Verdict()
		if before.OK != after.OK || before.Reason != after.Reason {
			t.Fatalf("event %d: rejected appends changed the verdict", i)
		}
		if _, err := m.Append(e); err != nil {
			t.Fatalf("event %d (%v): %v", i, e, err)
		}
	}
	// The final verdict matches the batch checker on the clean history.
	if got, want := m.Verdict().OK, spec.CheckDUOpacity(h).OK; got != want {
		t.Fatalf("final verdict %v, batch %v", got, want)
	}
	if !m.History().Equivalent(h) {
		t.Fatal("monitored history diverged from the input")
	}
}

// feedCompare appends h's events one at a time, comparing the monitor's
// verdict against the batch checker at every response prefix. It pins the
// incremental witness maintenance (commit flips, per-read checks,
// rebuild-only paths) against the exhaustive search.
func feedCompare(t *testing.T, c spec.Criterion, h *history.History) {
	t.Helper()
	m, err := spec.NewMonitor(c)
	if err != nil {
		t.Fatal(err)
	}
	evs := h.Events()
	latched := false
	for i, e := range evs {
		v, err := m.Append(e)
		if err != nil {
			t.Fatalf("append %d (%v): %v", i, e, err)
		}
		if e.Kind != history.Res {
			continue
		}
		want := spec.Check(h.Prefix(i+1), c)
		// The monitor latches (prefix-closed semantics); past the first
		// violation the batch verdict of a non-prefix-closed criterion
		// may recover, so only compare while unlatched.
		if !latched && v.OK != want.OK {
			t.Fatalf("prefix %d: monitor=%v batch=%v (monitor reason: %s; batch reason: %s)",
				i+1, v.OK, want.OK, v.Reason, want.Reason)
		}
		if !v.OK {
			latched = true
		}
		if v.OK && c == spec.DUOpacity {
			// A claimed witness must independently validate.
			if err := spec.VerifySerialization(h.Prefix(i+1), v.Serialization); err != nil {
				t.Fatalf("prefix %d: monitor witness invalid: %v", i+1, err)
			}
		}
	}
}

// sortedEdges canonicalizes an edge list for set comparison.
func sortedEdges(edges [][2]history.TxnID) [][2]history.TxnID {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i][0] != edges[j][0] {
			return edges[i][0] < edges[j][0]
		}
		return edges[i][1] < edges[j][1]
	})
	return edges
}

// feedCompareOpts is the windowed, option-aware feedCompare: it feeds h
// event by event through a monitor with the given retirement window
// (0 disables) and — for TMS2 — the aborted-reader exemption, pinning the
// monitor verdict against the batch checker at every response prefix
// while unlatched. With window 0 it additionally pins the monitor's
// incrementally maintained conflict-order edge set against the batch
// tms2Edges/rcoEdges builders at every prefix, invocation prefixes
// included (with retirement the live history diverges from the raw
// prefix, so the edge oracle no longer applies event-for-event).
func feedCompareOpts(t *testing.T, c spec.Criterion, h *history.History, window int, exempt bool) {
	t.Helper()
	var batchOpts []spec.Option
	if exempt {
		batchOpts = append(batchOpts, spec.WithTMS2AbortedReaderExemption())
	}
	monOpts := append([]spec.Option(nil), batchOpts...)
	if window > 0 {
		monOpts = append(monOpts, spec.WithRetirement(window))
	}
	m, err := spec.NewMonitor(c, monOpts...)
	if err != nil {
		t.Fatal(err)
	}
	evs := h.Events()
	latched := false
	for i, e := range evs {
		v, err := m.Append(e)
		if err != nil {
			t.Fatalf("append %d (%v): %v", i, e, err)
		}
		if !latched && window == 0 && (c == spec.TMS2 || c == spec.RCO) {
			got := sortedEdges(spec.MonitorEdges(m))
			want := sortedEdges(spec.BatchConflictEdges(h.Prefix(i+1), c, exempt))
			if len(got) != len(want) {
				t.Fatalf("prefix %d: monitor has %d edges %v, batch %d edges %v", i+1, len(got), got, len(want), want)
			}
			for k := range got {
				if got[k] != want[k] {
					t.Fatalf("prefix %d: edge sets diverge: monitor %v, batch %v", i+1, got, want)
				}
			}
		}
		if e.Kind != history.Res {
			continue
		}
		want := spec.Check(h.Prefix(i+1), c, batchOpts...)
		if !latched && v.OK != want.OK {
			t.Fatalf("prefix %d (window %d, exempt %v): monitor=%v batch=%v (monitor reason: %s; batch reason: %s)",
				i+1, window, exempt, v.OK, want.OK, v.Reason, want.Reason)
		}
		if !v.OK {
			latched = true
		}
		if v.OK && c == spec.DUOpacity && window == 0 {
			// With retirement the witness serializes the checkpointed live
			// history, not the raw prefix; the retirement differential
			// tests pin that path.
			if err := spec.VerifySerialization(h.Prefix(i+1), v.Serialization); err != nil {
				t.Fatalf("prefix %d: monitor witness invalid: %v", i+1, err)
			}
		}
	}
}

// TestMonitorDifferentialAllCriteria is the per-prefix differential
// suite for the whole monitorable lattice: golden litmus streams and
// randomized generator/mutator streams are fed event by event to a
// monitor for each of the five monitorable criteria, and the monitor's
// verdict must equal the batch Check verdict at every response prefix —
// with retirement off and with windows 4 and 16, and for TMS2 with the
// aborted-reader exemption both off and on. For TMS2/RCO the unretired
// runs additionally pin the incremental edge state itself against the
// batch edge builders at every prefix.
func TestMonitorDifferentialAllCriteria(t *testing.T) {
	type entry struct {
		name string
		h    *history.History
	}
	var histories []entry
	for _, lc := range litmus.Cases() {
		histories = append(histories, entry{lc.Name, lc.H})
	}
	rng := rand.New(rand.NewSource(99))
	for seed := int64(0); seed < 6; seed++ {
		h := gen.DUOpaque(gen.Config{
			Txns: 8, Objects: 3, OpsPerTxn: 3, ReadFraction: 0.5,
			PAbort: 0.2, PNoTryC: 0.15, Relax: 5, Seed: 300 + seed,
		})
		histories = append(histories, entry{fmt.Sprintf("gen-%d", seed), h})
		hu := gen.DUOpaque(gen.Config{
			Txns: 8, Objects: 3, OpsPerTxn: 3, UniqueWrites: true,
			PAbort: 0.15, Relax: 5, Seed: 400 + seed,
		})
		if mh, ok := gen.MutateFutureRead(hu, rng); ok {
			histories = append(histories, entry{fmt.Sprintf("future-read-%d", seed), mh})
		}
		if mh, ok := gen.MutateSourcelessRead(hu, rng); ok {
			histories = append(histories, entry{fmt.Sprintf("sourceless-%d", seed), mh})
		}
		if mh, ok := gen.MutateAbortWriter(hu, rng); ok {
			histories = append(histories, entry{fmt.Sprintf("abort-writer-%d", seed), mh})
		}
	}
	windows := []int{0, 4, 16}
	for _, hh := range histories {
		hh := hh
		t.Run(hh.name, func(t *testing.T) {
			for _, c := range spec.MonitorableCriteria() {
				for _, w := range windows {
					feedCompareOpts(t, c, hh.h, w, false)
				}
				if c == spec.TMS2 {
					for _, w := range windows {
						feedCompareOpts(t, c, hh.h, w, true)
					}
				}
			}
		})
	}
}

// TestMonitorDifferentialAccepting cross-checks the monitor against the
// batch checkers on generated du-opaque histories, for all monitorable
// criteria.
func TestMonitorDifferentialAccepting(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		h := gen.DUOpaque(gen.Config{
			Txns: 8, Objects: 3, OpsPerTxn: 3, ReadFraction: 0.5,
			PAbort: 0.2, PNoTryC: 0.15, Relax: 5, Seed: 100 + seed,
		})
		for _, c := range []spec.Criterion{spec.DUOpacity, spec.FinalStateOpacity, spec.Opacity} {
			feedCompare(t, c, h)
		}
	}
}

// TestMonitorDifferentialViolating cross-checks the monitor on histories
// with planted deferred-update violations and sourceless reads.
func TestMonitorDifferentialViolating(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	planted := 0
	for seed := int64(0); seed < 24 && planted < 8; seed++ {
		h := gen.DUOpaque(gen.Config{
			Txns: 8, Objects: 3, OpsPerTxn: 3, UniqueWrites: true,
			PAbort: 0.15, Relax: 5, Seed: 200 + seed,
		})
		if m, ok := gen.MutateFutureRead(h, rng); ok {
			feedCompare(t, spec.DUOpacity, m)
			planted++
		}
		if m, ok := gen.MutateSourcelessRead(h, rng); ok {
			feedCompare(t, spec.DUOpacity, m)
			feedCompare(t, spec.FinalStateOpacity, m)
			feedCompare(t, spec.Opacity, m)
		}
	}
	if planted == 0 {
		t.Fatal("no deferred-update violations planted")
	}
}

// TestMonitorOpacityStaysUndecidedAfterSkippedPrefix is the regression
// test for the incremental opacity induction: once a response prefix's
// check hits the node limit (the prefix is skipped, not decided), the
// monitor must never report a definitive OK again — batch CheckOpacity
// of the same stream stays undecided, and so must the monitor.
func TestMonitorOpacityStaysUndecidedAfterSkippedPrefix(t *testing.T) {
	h := gen.DUOpaque(gen.Config{Txns: 8, Objects: 3, OpsPerTxn: 3, ReadFraction: 0.5,
		PAbort: 0.2, PNoTryC: 0.1, Relax: 5, Seed: 25})
	m, err := spec.NewMonitor(spec.Opacity, spec.WithNodeLimit(5))
	if err != nil {
		t.Fatal(err)
	}
	v := feed(t, m, h)
	want := spec.CheckOpacity(h, spec.WithNodeLimit(5))
	if !want.Undecided {
		t.Skipf("seed no longer produces an undecided prefix at this limit (batch: %v)", want)
	}
	if v.OK || !v.Undecided {
		t.Fatalf("monitor reported %v after an undecided prefix; batch says %v", v, want)
	}
	if v.Reason == "" {
		t.Fatal("undecided verdict without a reason")
	}
}

func TestMonitorUnsupportedCriterion(t *testing.T) {
	for _, c := range []spec.Criterion{spec.StrictSerializability, spec.Serializability} {
		_, err := spec.NewMonitor(c)
		if err == nil {
			t.Fatalf("%v monitoring should be rejected", c)
		}
		// The error lists the supported criteria from the shared table, so
		// the message cannot drift from what NewMonitor actually accepts.
		if !strings.Contains(err.Error(), spec.MonitorableNames()) {
			t.Fatalf("error %q does not list the monitorable criteria %q", err, spec.MonitorableNames())
		}
	}
}

// TestMonitorAcceptsAllMonitorableCriteria pins the shared table against
// the constructor: every criterion MonitorableCriteria lists — TMS2 and
// RCO included — must yield a working monitor, and nothing else may.
func TestMonitorAcceptsAllMonitorableCriteria(t *testing.T) {
	for _, c := range spec.MonitorableCriteria() {
		m, err := spec.NewMonitor(c)
		if err != nil {
			t.Fatalf("NewMonitor(%v): %v", c, err)
		}
		if v := feed(t, m, litmus.ByName("serial-chain").H); !v.OK {
			t.Fatalf("%v monitor rejected the serial chain: %s", c, v.Reason)
		}
	}
	for _, c := range spec.AllCriteria() {
		_, err := spec.NewMonitor(c)
		if spec.Monitorable(c) != (err == nil) {
			t.Fatalf("Monitorable(%v)=%v but NewMonitor error=%v", c, spec.Monitorable(c), err)
		}
	}
}

// TestMonitorTMS2RCOSeparations replays the paper's conflict-order
// litmus pair through the online path: Figure 6 (du-opaque but not TMS2)
// must be rejected by the TMS2 monitor and accepted by the RCO monitor,
// and its mirror Figure 5 (du-opaque but not RCO) the other way around.
func TestMonitorTMS2RCOSeparations(t *testing.T) {
	cases := []struct {
		name    string
		h       *history.History
		rejects spec.Criterion
		accepts spec.Criterion
	}{
		{"figure-6", litmus.Figure6(), spec.TMS2, spec.RCO},
		{"figure-5", litmus.Figure5(), spec.RCO, spec.TMS2},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			mr, err := spec.NewMonitor(c.rejects)
			if err != nil {
				t.Fatal(err)
			}
			if v := feed(t, mr, c.h); v.OK {
				t.Fatalf("%v monitor accepted %s", c.rejects, c.name)
			}
			ma, err := spec.NewMonitor(c.accepts)
			if err != nil {
				t.Fatal(err)
			}
			if v := feed(t, ma, c.h); !v.OK {
				t.Fatalf("%v monitor rejected %s: %s", c.accepts, c.name, v.Reason)
			}
		})
	}
}

func TestMonitorOpacityCriterion(t *testing.T) {
	m, err := spec.NewMonitor(spec.Opacity)
	if err != nil {
		t.Fatal(err)
	}
	v := feed(t, m, litmus.Figure4())
	if !v.OK {
		t.Fatalf("figure 4 is opaque; monitor said %s", v.Reason)
	}
	m2, err := spec.NewMonitor(spec.Opacity)
	if err != nil {
		t.Fatal(err)
	}
	if v := feed(t, m2, litmus.Figure3()); v.OK {
		t.Fatal("figure 3 is not opaque; monitor accepted")
	}
}
