package spec_test

import (
	"testing"

	"duopacity/internal/gen"
	"duopacity/internal/history"
	"duopacity/internal/litmus"
	"duopacity/internal/spec"
)

func feed(t *testing.T, m *spec.Monitor, h *history.History) spec.Verdict {
	t.Helper()
	var v spec.Verdict
	for _, e := range h.Events() {
		var err error
		v, err = m.Append(e)
		if err != nil {
			t.Fatalf("append %v: %v", e, err)
		}
	}
	return v
}

func TestMonitorMatchesBatchOnLitmus(t *testing.T) {
	for _, c := range litmus.Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			m, err := spec.NewMonitor(spec.DUOpacity)
			if err != nil {
				t.Fatal(err)
			}
			v := feed(t, m, c.H)
			want := spec.CheckDUOpacity(c.H).OK
			if v.OK != want {
				t.Fatalf("monitor = %v, batch = %v (reason: %s)", v.OK, want, v.Reason)
			}
		})
	}
}

func TestMonitorLatchesViolation(t *testing.T) {
	m, err := spec.NewMonitor(spec.DUOpacity)
	if err != nil {
		t.Fatal(err)
	}
	// Read of a never-written value: violated at the read's response.
	h := history.NewBuilder().
		Read(1, "X", 7).
		Commit(1).
		History()
	evs := h.Events()
	var v spec.Verdict
	for i, e := range evs {
		v, err = m.Append(e)
		if err != nil {
			t.Fatal(err)
		}
		if i >= 1 && v.OK {
			t.Fatalf("event %d: violation not detected", i)
		}
	}
	if v.OK {
		t.Fatal("final verdict should be violated")
	}
	// The refutation reason survives later events (latched).
	if v.Reason == "" {
		t.Fatal("missing reason")
	}
}

func TestMonitorDetectsAtTheRightEvent(t *testing.T) {
	// Figure 3: the violation becomes definitive exactly at read_2's
	// response (the first prefix that is not final-state opaque), not
	// before.
	m, err := spec.NewMonitor(spec.FinalStateOpacity)
	if err != nil {
		t.Fatal(err)
	}
	h := litmus.Figure3()
	evs := h.Events()
	for i, e := range evs {
		v, err := m.Append(e)
		if err != nil {
			t.Fatal(err)
		}
		if i < litmus.Figure3PrefixLen-1 && !v.OK {
			t.Fatalf("event %d: premature violation", i)
		}
		if i == litmus.Figure3PrefixLen-1 && v.OK {
			t.Fatalf("event %d: violation missed", i)
		}
	}
	// Note: monitored final-state opacity is prefix-latched, i.e. it
	// decides *opacity*; the full Figure 3 history itself is final-state
	// opaque again, which is exactly the non-prefix-closure anomaly.
	if spec.CheckFinalStateOpacity(h).OK != true {
		t.Fatal("figure 3 should be final-state opaque as a whole")
	}
	if m.Verdict().OK {
		t.Fatal("monitor must stay latched")
	}
}

func TestMonitorFastPathHits(t *testing.T) {
	m, err := spec.NewMonitor(spec.DUOpacity)
	if err != nil {
		t.Fatal(err)
	}
	h := gen.DUOpaque(gen.Config{Txns: 8, Objects: 3, OpsPerTxn: 3, Relax: 4, Seed: 5})
	feed(t, m, h)
	if !m.Verdict().OK {
		t.Fatalf("generated du-opaque history rejected: %s", m.Verdict().Reason)
	}
	searches, hits := m.Stats()
	if hits == 0 {
		t.Error("witness reuse never succeeded on an extending du-opaque history")
	}
	if searches == 0 {
		t.Error("expected at least one full search (the first response)")
	}
	t.Logf("searches=%d fastHits=%d", searches, hits)
}

func TestMonitorRejectsMalformedEvent(t *testing.T) {
	m, err := spec.NewMonitor(spec.DUOpacity)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(history.Event{Kind: history.Res, Op: history.OpRead, Txn: 1, Obj: "X", Out: history.OutOK}); err == nil {
		t.Fatal("orphan response accepted")
	}
	// The monitor state is unchanged and usable.
	if m.History().Len() != 0 {
		t.Fatal("failed append mutated the monitor")
	}
	if _, err := m.Append(history.Event{Kind: history.Inv, Op: history.OpRead, Txn: 1, Obj: "X"}); err != nil {
		t.Fatalf("valid append after failure: %v", err)
	}
}

func TestMonitorUnsupportedCriterion(t *testing.T) {
	if _, err := spec.NewMonitor(spec.TMS2); err == nil {
		t.Fatal("spec.TMS2 monitoring should be rejected")
	}
}

func TestMonitorOpacityCriterion(t *testing.T) {
	m, err := spec.NewMonitor(spec.Opacity)
	if err != nil {
		t.Fatal(err)
	}
	v := feed(t, m, litmus.Figure4())
	if !v.OK {
		t.Fatalf("figure 4 is opaque; monitor said %s", v.Reason)
	}
	m2, err := spec.NewMonitor(spec.Opacity)
	if err != nil {
		t.Fatal(err)
	}
	if v := feed(t, m2, litmus.Figure3()); v.OK {
		t.Fatal("figure 3 is not opaque; monitor accepted")
	}
}
