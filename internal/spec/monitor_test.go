package spec_test

import (
	"math/rand"
	"testing"

	"duopacity/internal/gen"
	"duopacity/internal/history"
	"duopacity/internal/litmus"
	"duopacity/internal/spec"
)

func feed(t *testing.T, m *spec.Monitor, h *history.History) spec.Verdict {
	t.Helper()
	var v spec.Verdict
	for _, e := range h.Events() {
		var err error
		v, err = m.Append(e)
		if err != nil {
			t.Fatalf("append %v: %v", e, err)
		}
	}
	return v
}

func TestMonitorMatchesBatchOnLitmus(t *testing.T) {
	for _, c := range litmus.Cases() {
		c := c
		t.Run(c.Name, func(t *testing.T) {
			m, err := spec.NewMonitor(spec.DUOpacity)
			if err != nil {
				t.Fatal(err)
			}
			v := feed(t, m, c.H)
			want := spec.CheckDUOpacity(c.H).OK
			if v.OK != want {
				t.Fatalf("monitor = %v, batch = %v (reason: %s)", v.OK, want, v.Reason)
			}
		})
	}
}

func TestMonitorLatchesViolation(t *testing.T) {
	m, err := spec.NewMonitor(spec.DUOpacity)
	if err != nil {
		t.Fatal(err)
	}
	// Read of a never-written value: violated at the read's response.
	h := history.NewBuilder().
		Read(1, "X", 7).
		Commit(1).
		History()
	evs := h.Events()
	var v spec.Verdict
	for i, e := range evs {
		v, err = m.Append(e)
		if err != nil {
			t.Fatal(err)
		}
		if i >= 1 && v.OK {
			t.Fatalf("event %d: violation not detected", i)
		}
	}
	if v.OK {
		t.Fatal("final verdict should be violated")
	}
	// The refutation reason survives later events (latched).
	if v.Reason == "" {
		t.Fatal("missing reason")
	}
}

func TestMonitorDetectsAtTheRightEvent(t *testing.T) {
	// Figure 3: the violation becomes definitive exactly at read_2's
	// response (the first prefix that is not final-state opaque), not
	// before.
	m, err := spec.NewMonitor(spec.FinalStateOpacity)
	if err != nil {
		t.Fatal(err)
	}
	h := litmus.Figure3()
	evs := h.Events()
	for i, e := range evs {
		v, err := m.Append(e)
		if err != nil {
			t.Fatal(err)
		}
		if i < litmus.Figure3PrefixLen-1 && !v.OK {
			t.Fatalf("event %d: premature violation", i)
		}
		if i == litmus.Figure3PrefixLen-1 && v.OK {
			t.Fatalf("event %d: violation missed", i)
		}
	}
	// Note: monitored final-state opacity is prefix-latched, i.e. it
	// decides *opacity*; the full Figure 3 history itself is final-state
	// opaque again, which is exactly the non-prefix-closure anomaly.
	if spec.CheckFinalStateOpacity(h).OK != true {
		t.Fatal("figure 3 should be final-state opaque as a whole")
	}
	if m.Verdict().OK {
		t.Fatal("monitor must stay latched")
	}
}

func TestMonitorFastPathHits(t *testing.T) {
	m, err := spec.NewMonitor(spec.DUOpacity)
	if err != nil {
		t.Fatal(err)
	}
	h := gen.DUOpaque(gen.Config{Txns: 8, Objects: 3, OpsPerTxn: 3, Relax: 4, Seed: 5})
	feed(t, m, h)
	if !m.Verdict().OK {
		t.Fatalf("generated du-opaque history rejected: %s", m.Verdict().Reason)
	}
	searches, hits := m.Stats()
	if hits == 0 {
		t.Error("witness reuse never succeeded on an extending du-opaque history")
	}
	if searches == 0 {
		t.Error("expected at least one full search (the first response)")
	}
	t.Logf("searches=%d fastHits=%d", searches, hits)
}

func TestMonitorRejectsMalformedEvent(t *testing.T) {
	m, err := spec.NewMonitor(spec.DUOpacity)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Append(history.Event{Kind: history.Res, Op: history.OpRead, Txn: 1, Obj: "X", Out: history.OutOK}); err == nil {
		t.Fatal("orphan response accepted")
	}
	// The monitor state is unchanged and usable.
	if m.History().Len() != 0 {
		t.Fatal("failed append mutated the monitor")
	}
	if _, err := m.Append(history.Event{Kind: history.Inv, Op: history.OpRead, Txn: 1, Obj: "X"}); err != nil {
		t.Fatalf("valid append after failure: %v", err)
	}
}

// TestMonitorRejectionMidStreamIsSideEffectFree is the regression test
// for the pre-stream Monitor.Append bug where the rejected event was
// written into the event slice's spare capacity before validation. With
// the stream core, a rejected append must leave the monitor byte-for-byte
// where it was: same history, same verdict, and subsequent appends behave
// as if the bad event was never offered.
func TestMonitorRejectionMidStreamIsSideEffectFree(t *testing.T) {
	h := gen.DUOpaque(gen.Config{Txns: 6, Objects: 3, OpsPerTxn: 3, Relax: 4, Seed: 11})
	evs := h.Events()
	m, err := spec.NewMonitor(spec.DUOpacity)
	if err != nil {
		t.Fatal(err)
	}
	bad := []history.Event{
		{Kind: history.Res, Op: history.OpRead, Txn: 99, Obj: "X", Out: history.OutOK, Val: 1},
		{Kind: history.Inv, Op: history.OpWrite, Txn: history.InitTxn, Obj: "X", Arg: 1},
	}
	for i, e := range evs {
		// Offer malformed events before every real one.
		before := m.Verdict()
		for _, b := range bad {
			if _, err := m.Append(b); err == nil {
				t.Fatalf("event %d: malformed event %v accepted", i, b)
			}
		}
		if m.History().Len() != i {
			t.Fatalf("event %d: rejected appends changed the history length to %d", i, m.History().Len())
		}
		after := m.Verdict()
		if before.OK != after.OK || before.Reason != after.Reason {
			t.Fatalf("event %d: rejected appends changed the verdict", i)
		}
		if _, err := m.Append(e); err != nil {
			t.Fatalf("event %d (%v): %v", i, e, err)
		}
	}
	// The final verdict matches the batch checker on the clean history.
	if got, want := m.Verdict().OK, spec.CheckDUOpacity(h).OK; got != want {
		t.Fatalf("final verdict %v, batch %v", got, want)
	}
	if !m.History().Equivalent(h) {
		t.Fatal("monitored history diverged from the input")
	}
}

// feedCompare appends h's events one at a time, comparing the monitor's
// verdict against the batch checker at every response prefix. It pins the
// incremental witness maintenance (commit flips, per-read checks,
// rebuild-only paths) against the exhaustive search.
func feedCompare(t *testing.T, c spec.Criterion, h *history.History) {
	t.Helper()
	m, err := spec.NewMonitor(c)
	if err != nil {
		t.Fatal(err)
	}
	evs := h.Events()
	latched := false
	for i, e := range evs {
		v, err := m.Append(e)
		if err != nil {
			t.Fatalf("append %d (%v): %v", i, e, err)
		}
		if e.Kind != history.Res {
			continue
		}
		want := spec.Check(h.Prefix(i+1), c)
		// The monitor latches (prefix-closed semantics); past the first
		// violation the batch verdict of a non-prefix-closed criterion
		// may recover, so only compare while unlatched.
		if !latched && v.OK != want.OK {
			t.Fatalf("prefix %d: monitor=%v batch=%v (monitor reason: %s; batch reason: %s)",
				i+1, v.OK, want.OK, v.Reason, want.Reason)
		}
		if !v.OK {
			latched = true
		}
		if v.OK && c == spec.DUOpacity {
			// A claimed witness must independently validate.
			if err := spec.VerifySerialization(h.Prefix(i+1), v.Serialization); err != nil {
				t.Fatalf("prefix %d: monitor witness invalid: %v", i+1, err)
			}
		}
	}
}

// TestMonitorDifferentialAccepting cross-checks the monitor against the
// batch checkers on generated du-opaque histories, for all monitorable
// criteria.
func TestMonitorDifferentialAccepting(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		h := gen.DUOpaque(gen.Config{
			Txns: 8, Objects: 3, OpsPerTxn: 3, ReadFraction: 0.5,
			PAbort: 0.2, PNoTryC: 0.15, Relax: 5, Seed: 100 + seed,
		})
		for _, c := range []spec.Criterion{spec.DUOpacity, spec.FinalStateOpacity, spec.Opacity} {
			feedCompare(t, c, h)
		}
	}
}

// TestMonitorDifferentialViolating cross-checks the monitor on histories
// with planted deferred-update violations and sourceless reads.
func TestMonitorDifferentialViolating(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	planted := 0
	for seed := int64(0); seed < 24 && planted < 8; seed++ {
		h := gen.DUOpaque(gen.Config{
			Txns: 8, Objects: 3, OpsPerTxn: 3, UniqueWrites: true,
			PAbort: 0.15, Relax: 5, Seed: 200 + seed,
		})
		if m, ok := gen.MutateFutureRead(h, rng); ok {
			feedCompare(t, spec.DUOpacity, m)
			planted++
		}
		if m, ok := gen.MutateSourcelessRead(h, rng); ok {
			feedCompare(t, spec.DUOpacity, m)
			feedCompare(t, spec.FinalStateOpacity, m)
			feedCompare(t, spec.Opacity, m)
		}
	}
	if planted == 0 {
		t.Fatal("no deferred-update violations planted")
	}
}

// TestMonitorOpacityStaysUndecidedAfterSkippedPrefix is the regression
// test for the incremental opacity induction: once a response prefix's
// check hits the node limit (the prefix is skipped, not decided), the
// monitor must never report a definitive OK again — batch CheckOpacity
// of the same stream stays undecided, and so must the monitor.
func TestMonitorOpacityStaysUndecidedAfterSkippedPrefix(t *testing.T) {
	h := gen.DUOpaque(gen.Config{Txns: 8, Objects: 3, OpsPerTxn: 3, ReadFraction: 0.5,
		PAbort: 0.2, PNoTryC: 0.1, Relax: 5, Seed: 25})
	m, err := spec.NewMonitor(spec.Opacity, spec.WithNodeLimit(5))
	if err != nil {
		t.Fatal(err)
	}
	v := feed(t, m, h)
	want := spec.CheckOpacity(h, spec.WithNodeLimit(5))
	if !want.Undecided {
		t.Skipf("seed no longer produces an undecided prefix at this limit (batch: %v)", want)
	}
	if v.OK || !v.Undecided {
		t.Fatalf("monitor reported %v after an undecided prefix; batch says %v", v, want)
	}
	if v.Reason == "" {
		t.Fatal("undecided verdict without a reason")
	}
}

func TestMonitorUnsupportedCriterion(t *testing.T) {
	if _, err := spec.NewMonitor(spec.TMS2); err == nil {
		t.Fatal("spec.TMS2 monitoring should be rejected")
	}
}

func TestMonitorOpacityCriterion(t *testing.T) {
	m, err := spec.NewMonitor(spec.Opacity)
	if err != nil {
		t.Fatal(err)
	}
	v := feed(t, m, litmus.Figure4())
	if !v.OK {
		t.Fatalf("figure 4 is opaque; monitor said %s", v.Reason)
	}
	m2, err := spec.NewMonitor(spec.Opacity)
	if err != nil {
		t.Fatal(err)
	}
	if v := feed(t, m2, litmus.Figure3()); v.OK {
		t.Fatal("figure 3 is not opaque; monitor accepted")
	}
}
