package spec

import (
	"fmt"
	"sort"
	"strings"

	"duopacity/internal/history"
)

// ReadInfo is the deferred-update analysis of one value-returning external
// read: which transactions could source it in some serialization, and
// which of those had invoked tryC before the read's response (the only
// ones its local serialization may contain).
type ReadInfo struct {
	Txn history.TxnID
	Op  history.Op
	// OwnWrite is true when the read is satisfied by the transaction's own
	// earlier write (always legal; no sources apply).
	OwnWrite bool
	// FromInit is true when the read returned InitValue, which T_0 can
	// always explain.
	FromInit bool
	// Sources lists transactions that can commit the value read.
	Sources []history.TxnID
	// DUSources is the subset of Sources whose tryC invocation precedes
	// the read's response in H. Empty DUSources with FromInit == false is
	// a certain deferred-update violation (the static refutation the
	// checker reports).
	DUSources []history.TxnID
}

// String renders the analysis of the read.
func (r ReadInfo) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "T%d %v: ", r.Txn, r.Op)
	switch {
	case r.OwnWrite:
		b.WriteString("own write")
	case r.FromInit:
		b.WriteString("initial value (T_0)")
	default:
		fmt.Fprintf(&b, "sources %s", txnList(r.Sources))
		fmt.Fprintf(&b, ", du-eligible %s", txnList(r.DUSources))
	}
	return b.String()
}

func txnList(ids []history.TxnID) string {
	if len(ids) == 0 {
		return "{}"
	}
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("T%d", id)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// AnalyzeReads computes the ReadInfo of every value-returning read in h,
// in history order of the reads' responses. It is the explanatory
// counterpart of the checker's static refutations, surfaced by
// cmd/ducheck -explain.
func AnalyzeReads(h *history.History) []ReadInfo {
	type key struct {
		obj history.Var
		val history.Value
	}
	writers := make(map[key][]history.TxnID)
	for _, k := range h.Txns() {
		t := h.Txn(k)
		if t.Aborted() {
			continue // can never commit
		}
		for obj, v := range t.LastWrites() {
			writers[key{obj, v}] = append(writers[key{obj, v}], k)
		}
	}
	var out []ReadInfo
	for _, k := range h.Txns() {
		t := h.Txn(k)
		overlay := make(map[history.Var]bool)
		for _, op := range t.Ops {
			if op.Pending {
				break
			}
			switch op.Kind {
			case history.OpWrite:
				if op.Out == history.OutOK {
					overlay[op.Obj] = true
				}
			case history.OpRead:
				if op.Out != history.OutOK {
					continue
				}
				ri := ReadInfo{Txn: k, Op: op}
				switch {
				case overlay[op.Obj]:
					ri.OwnWrite = true
				case op.Val == history.InitValue:
					ri.FromInit = true
				default:
					for _, w := range writers[key{op.Obj, op.Val}] {
						if w == k {
							continue
						}
						ri.Sources = append(ri.Sources, w)
						if inv := h.Txn(w).TryCInv; inv >= 0 && inv < op.ResIndex {
							ri.DUSources = append(ri.DUSources, w)
						}
					}
				}
				out = append(out, ri)
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].Op.ResIndex < out[j].Op.ResIndex
	})
	return out
}
