package spec

import (
	"fmt"

	"duopacity/internal/history"
)

// CheckDUOpacity decides Definition 3: whether there is a legal t-complete
// t-sequential history S, equivalent to a completion of H, respecting H's
// real-time order, in which every t-read that returns a value is also legal
// in its local serialization with respect to H and S.
//
// The local serialization S^{k,X}_H for read_k(X) keeps the reading
// transaction's own events up to the read and removes every other
// transaction whose tryC invocation is not contained in the prefix of H up
// to the read's response (this is the reading of Definition 3 consistent
// with the paper's Figure 1 walk-through, where T1's own pending events are
// retained). T_0 — the imaginary transaction writing InitValue to every
// object — is always contained.
func CheckDUOpacity(h *history.History, opts ...Option) Verdict {
	return decide(h, DUOpacity, searchMode{local: true, realTime: true}, buildOptions(opts))
}

// CheckFinalStateOpacity decides Definition 4 (Guerraoui and Kapalka):
// whether some completion of H is equivalent to a legal t-complete
// t-sequential history respecting H's real-time order.
func CheckFinalStateOpacity(h *history.History, opts ...Option) Verdict {
	return decide(h, FinalStateOpacity, searchMode{realTime: true}, buildOptions(opts))
}

// CheckOpacity decides Definition 5: every finite prefix of H (including H
// itself) is final-state opaque.
//
// Only prefixes ending in a response event (plus the empty prefix and H
// itself) are checked: appending an invocation event to a final-state
// opaque history preserves final-state opacity, because the new pending
// operation is aborted by every completion without constraining legality,
// and a new pending tryC only adds completion choices. (This pruning is
// validated against the all-prefixes definition in the tests.)
func CheckOpacity(h *history.History, opts ...Option) Verdict {
	o := buildOptions(opts)
	total := 0
	for i := 1; i <= h.Len(); i++ {
		if i < h.Len() && h.At(i-1).Kind != history.Res {
			continue
		}
		v := decide(h.Prefix(i), FinalStateOpacity, searchMode{realTime: true}, o)
		total += v.Nodes
		if v.Undecided {
			v.Criterion = Opacity
			v.Nodes = total
			v.Reason = fmt.Sprintf("prefix of length %d: %s", i, v.Reason)
			return v
		}
		if !v.OK {
			return Verdict{
				Criterion: Opacity,
				Reason:    fmt.Sprintf("prefix of length %d is not final-state opaque: %s", i, v.Reason),
				Nodes:     total,
			}
		}
		if i == h.Len() {
			v.Criterion = Opacity
			v.Nodes = total
			return v
		}
	}
	// Empty history.
	return Verdict{Criterion: Opacity, OK: true, Serialization: &history.Seq{}}
}

// CheckTMS2 decides the TMS2-style restriction discussed in Section 4.2:
// final-state opacity plus the conflict-order requirement. The paper's
// informal statement is pinned down as follows: for transactions T1, T2
// with X ∈ Wset(T1) ∩ Rset(T2), if T1 committed in H and the response of
// tryC_1 precedes the invocation of tryC_2 in H, then T1 <_S T2.
// (Overlapping tryC operations impose no constraint, matching the
// linearization freedom TMS2 gives concurrent commits.) This reproduces the
// paper's Figure 6 separation: du-opaque but not TMS2.
//
// WithTMS2AbortedReaderExemption switches to the alternative reading in
// which edges sourced at aborted readers are dropped (see the option's
// documentation for the interpretation question it resolves).
func CheckTMS2(h *history.History, opts ...Option) Verdict {
	o := buildOptions(opts)
	return decide(h, TMS2, searchMode{realTime: true, extraEdges: tms2Edges(h, o.tms2AbortedExemption)}, o)
}

func tms2Edges(h *history.History, exemptAbortedReaders bool) [][2]history.TxnID {
	ix := h.Index()
	var edges [][2]history.TxnID
	for ai := range ix.Txns {
		t1 := &ix.Txns[ai]
		if !t1.Committed || len(t1.Writes) == 0 || t1.TryCRes < 0 {
			continue
		}
		for bi := range ix.Txns {
			if bi == ai {
				continue
			}
			t2 := &ix.Txns[bi]
			if t2.TryCInv < 0 || t1.TryCRes >= t2.TryCInv {
				continue
			}
			if exemptAbortedReaders && t2.TComplete && !t2.Committed {
				continue
			}
			if readsObjectWrittenBy(ix, t2, t1) {
				edges = append(edges, [2]history.TxnID{t1.Info.ID, t2.Info.ID})
			}
		}
	}
	return edges
}

// writesObj reports whether the transaction installs a write to the dense
// object index obj.
func writesObj(t *history.IndexedTxn, obj int) bool {
	for _, w := range t.Writes {
		if w.Obj == obj {
			return true
		}
		if w.Obj > obj { // Writes are sorted by object index
			return false
		}
	}
	return false
}

// readsObjectWrittenBy reports whether reader has a completed successful
// read (Rset membership, own-write reads included) of an object writer
// installs.
func readsObjectWrittenBy(ix *history.Indexed, reader, writer *history.IndexedTxn) bool {
	for _, op := range reader.Info.Ops {
		if op.Kind != history.OpRead || op.Pending || op.Out != history.OutOK {
			continue
		}
		if writesObj(writer, ix.ObjIndexOf(op.Obj)) {
			return true
		}
	}
	return false
}

// CheckRCO decides the read-commit-order opacity of Guerraoui, Henzinger
// and Singh ([6] in the paper), discussed in Section 4.2: final-state
// opacity plus the requirement that if the response of a t-read of X by T_k
// precedes the invocation of tryC_m of a transaction T_m that commits a
// write to X in H, then T_k <_S T_m. This reproduces the paper's Figure 5
// separation: du-opaque (hence opaque) but not RCO-opaque.
func CheckRCO(h *history.History, opts ...Option) Verdict {
	return decide(h, RCO, searchMode{realTime: true, extraEdges: rcoEdges(h)}, buildOptions(opts))
}

func rcoEdges(h *history.History) [][2]history.TxnID {
	ix := h.Index()
	var edges [][2]history.TxnID
	for mi := range ix.Txns {
		tm := &ix.Txns[mi]
		if !tm.Committed || tm.TryCInv < 0 || len(tm.Writes) == 0 {
			continue
		}
		for ki := range ix.Txns {
			if ki == mi {
				continue
			}
			tk := &ix.Txns[ki]
			for _, op := range tk.Info.Ops {
				if op.Kind != history.OpRead || op.Pending || op.Out != history.OutOK {
					continue
				}
				if op.ResIndex < tm.TryCInv && writesObj(tm, ix.ObjIndexOf(op.Obj)) {
					edges = append(edges, [2]history.TxnID{tk.Info.ID, tm.Info.ID})
					break
				}
			}
		}
	}
	return edges
}

// CheckStrictSerializability checks that the committed transactions
// (counting commit-pending ones as free to commit or abort) admit a legal
// total order respecting H's real-time order. Aborted and incomplete
// transactions — and their reads — are ignored.
func CheckStrictSerializability(h *history.History, opts ...Option) Verdict {
	return decide(h, StrictSerializability, searchMode{realTime: true, committedOnly: true}, buildOptions(opts))
}

// CheckSerializability is CheckStrictSerializability without the real-time
// requirement.
func CheckSerializability(h *history.History, opts ...Option) Verdict {
	return decide(h, Serializability, searchMode{committedOnly: true}, buildOptions(opts))
}

func decide(h *history.History, c Criterion, mode searchMode, o options) Verdict {
	if o.parallelism > 1 {
		return decideParallel(h, c, mode, o)
	}
	e, reject := newEngine(h, mode, o)
	if reject != "" {
		return Verdict{Criterion: c, Reason: reject}
	}
	ok, witness, reason, bailed, nodes := e.run()
	e.release()
	return Verdict{
		Criterion:     c,
		OK:            ok,
		Serialization: witness,
		Reason:        reason,
		Undecided:     bailed,
		Nodes:         nodes,
	}
}

// AllDUSerializations enumerates du-opaque serializations of h, invoking fn
// for each; enumeration stops when fn returns false or when max witnesses
// (0 = unlimited) have been produced. It returns the number of witnesses
// produced. Enumeration disables memoization and is exponential; use it
// only on small histories (e.g. to verify that a property holds in every
// serialization, as in the paper's Proposition 1 argument).
func AllDUSerializations(h *history.History, max int, fn func(*history.Seq) bool) int {
	e, reject := newEngine(h, searchMode{local: true, realTime: true}, options{})
	if reject != "" {
		return 0
	}
	count := 0
	e.collect = func(s *history.Seq) bool {
		count++
		if !fn(s) {
			return true
		}
		return max > 0 && count >= max
	}
	e.search()
	e.release()
	return count
}

// UniqueWrites reports whether no two distinct transactions write the same
// value to the same t-object in H — the hypothesis of Theorem 11, under
// which opacity and du-opacity coincide. Writes of InitValue also violate
// uniqueness (they collide with T_0).
func UniqueWrites(h *history.History) bool {
	type key struct {
		obj history.Var
		val history.Value
	}
	writer := make(map[key]history.TxnID)
	for _, k := range h.Txns() {
		for _, op := range h.Txn(k).Ops {
			if op.Kind != history.OpWrite || op.Pending || op.Out != history.OutOK {
				continue
			}
			if op.Arg == history.InitValue {
				return false
			}
			kk := key{op.Obj, op.Arg}
			if w, ok := writer[kk]; ok && w != k {
				return false
			}
			writer[kk] = k
		}
	}
	return true
}

// CheckDUOpacityFast decides du-opacity like CheckDUOpacity but, when the
// history has unique writes, seeds the search with the forced reads-from
// edges (the unique writer of X=v must precede and commit for any read of
// X=v), which typically collapses the search to a single candidate order.
// The result is always exact; the hints only prune orders that cannot be
// witnesses.
func CheckDUOpacityFast(h *history.History, opts ...Option) Verdict {
	mode := searchMode{local: true, realTime: true}
	if UniqueWrites(h) {
		mode.extraEdges = readsFromEdges(h)
	}
	return decide(h, DUOpacity, mode, buildOptions(opts))
}

// readsFromEdges computes, under unique writes, the forced reads-from
// precedence: for every external read of X=v (v != InitValue), the unique
// transaction writing v to X must precede the reader in any legal
// serialization.
func readsFromEdges(h *history.History) [][2]history.TxnID {
	type key struct {
		obj history.Var
		val history.Value
	}
	writer := make(map[key]history.TxnID)
	for _, k := range h.Txns() {
		for _, op := range h.Txn(k).Ops {
			if op.Kind == history.OpWrite && !op.Pending && op.Out == history.OutOK {
				writer[key{op.Obj, op.Arg}] = k
			}
		}
	}
	var edges [][2]history.TxnID
	for _, k := range h.Txns() {
		overlay := make(map[history.Var]bool)
		for _, op := range h.Txn(k).Ops {
			if op.Pending {
				break
			}
			switch op.Kind {
			case history.OpWrite:
				if op.Out == history.OutOK {
					overlay[op.Obj] = true
				}
			case history.OpRead:
				if op.Out != history.OutOK || overlay[op.Obj] || op.Val == history.InitValue {
					continue
				}
				if w, ok := writer[key{op.Obj, op.Val}]; ok && w != k {
					edges = append(edges, [2]history.TxnID{w, k})
				}
			}
		}
	}
	return edges
}
