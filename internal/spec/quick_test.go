package spec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"duopacity/internal/history"
)

// randHist is a quick generator of arbitrary (mostly inconsistent)
// well-formed histories, for checking relationships between the criteria
// on inputs neither hand-written nor correct by construction.
type randHist struct {
	H *history.History
}

// Generate implements quick.Generator: a small random history driven by a
// per-transaction automaton, with random read values so that both
// accepted and rejected histories occur.
func (randHist) Generate(r *rand.Rand, _ int) reflect.Value {
	nTxns := 1 + r.Intn(4)
	b := history.NewBuilder()
	type tstate struct{ done bool }
	states := make([]tstate, nTxns+1)
	steps := 3 + r.Intn(14)
	for i := 0; i < steps; i++ {
		k := history.TxnID(1 + r.Intn(nTxns))
		if states[k].done {
			continue
		}
		obj := history.Var(rune('X' + r.Intn(2)))
		val := history.Value(r.Intn(3))
		switch r.Intn(8) {
		case 0:
			b.Commit(k)
			states[k].done = true
		case 1:
			if r.Intn(2) == 0 {
				b.CommitAbort(k)
			} else {
				b.Abort(k)
			}
			states[k].done = true
		case 2, 3, 4:
			b.Read(k, obj, val)
		default:
			b.Write(k, obj, val)
		}
	}
	return reflect.ValueOf(randHist{H: b.History()})
}

var quickCfg = &quick.Config{MaxCount: 250}

// TestQuickDUImpliesOpacityImpliesFinalState checks the containment chain
// of Theorem 10 (and the trivial half of Definition 5) on arbitrary
// histories: du-opaque ⊆ opaque ⊆ final-state opaque.
func TestQuickDUImpliesOpacityImpliesFinalState(t *testing.T) {
	prop := func(rh randHist) bool {
		du := CheckDUOpacity(rh.H).OK
		op := CheckOpacity(rh.H).OK
		fs := CheckFinalStateOpacity(rh.H).OK
		if du && !op {
			return false
		}
		if op && !fs {
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickExtraEdgesOnlyRestrict: TMS2 and RCO are final-state opacity
// plus constraints, so acceptance implies final-state acceptance.
func TestQuickExtraEdgesOnlyRestrict(t *testing.T) {
	prop := func(rh randHist) bool {
		fs := CheckFinalStateOpacity(rh.H).OK
		if CheckTMS2(rh.H).OK && !fs {
			return false
		}
		if CheckRCO(rh.H).OK && !fs {
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWitnessesVerify: every witness the search returns must pass the
// independent, search-free validator.
func TestQuickWitnessesVerify(t *testing.T) {
	prop := func(rh randHist) bool {
		v := CheckDUOpacity(rh.H)
		if !v.OK {
			return true
		}
		return VerifySerialization(rh.H, v.Serialization) == nil
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFinalStateImpliesStrictSerializability: ignoring aborted
// transactions can only make more histories acceptable.
func TestQuickFinalStateImpliesStrictSerializability(t *testing.T) {
	prop := func(rh randHist) bool {
		if !CheckFinalStateOpacity(rh.H).OK {
			return true
		}
		ss := CheckStrictSerializability(rh.H).OK
		ser := CheckSerializability(rh.H).OK
		return ss && ser
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFastPathAgrees: the unique-writes fast path is exact.
func TestQuickFastPathAgrees(t *testing.T) {
	prop := func(rh randHist) bool {
		return CheckDUOpacityFast(rh.H).OK == CheckDUOpacity(rh.H).OK
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickGraphCheckerAgrees: the cycle-refutation wrapper is exact.
func TestQuickGraphCheckerAgrees(t *testing.T) {
	prop := func(rh randHist) bool {
		return CheckDUOpacityGraph(rh.H).OK == CheckDUOpacity(rh.H).OK
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}

// TestQuickPrefixClosureOnAccepted: Corollary 2 on arbitrary accepted
// histories — every prefix of a du-opaque history is du-opaque.
func TestQuickPrefixClosureOnAccepted(t *testing.T) {
	prop := func(rh randHist) bool {
		if !CheckDUOpacity(rh.H).OK {
			return true
		}
		for i := 0; i <= rh.H.Len(); i++ {
			if !CheckDUOpacity(rh.H.Prefix(i)).OK {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterminism: checking is a pure function of the history.
func TestQuickDeterminism(t *testing.T) {
	prop := func(rh randHist) bool {
		a := CheckDUOpacity(rh.H)
		b := CheckDUOpacity(rh.H)
		if a.OK != b.OK || a.Nodes != b.Nodes {
			return false
		}
		if a.OK && a.Serialization.String() != b.Serialization.String() {
			return false
		}
		return true
	}
	if err := quick.Check(prop, quickCfg); err != nil {
		t.Fatal(err)
	}
}
