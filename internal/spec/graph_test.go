package spec

import (
	"strings"
	"testing"

	"duopacity/internal/history"
)

func TestPrecedenceGraphEdges(t *testing.T) {
	// T1 fully precedes T2 (real time); T3 reads T1's unique value
	// (reads-from).
	h := history.NewBuilder().
		Write(1, "X", 1).Commit(1).
		Write(2, "Y", 2).Commit(2).
		Read(3, "X", 1).Commit(3).
		History()
	g := BuildPrecedenceGraph(h)
	var rt, rf int
	for _, e := range g.Edges {
		switch e.Kind {
		case EdgeRealTime:
			rt++
		case EdgeReadsFrom:
			rf++
			if e.From != 1 || e.To != 3 || e.Obj != "X" {
				t.Errorf("unexpected reads-from edge %s", e)
			}
			if !strings.Contains(e.String(), "reads-from on X") {
				t.Errorf("edge rendering: %s", e)
			}
		}
	}
	if rt == 0 || rf != 1 {
		t.Fatalf("edges: %d real-time, %d reads-from; want >0 and 1", rt, rf)
	}
	if cyc := g.Cycle(); cyc != nil {
		t.Fatalf("unexpected cycle %v", cyc)
	}
}

func TestPrecedenceGraphCycleRefutation(t *testing.T) {
	// The real-time inversion: T1 (reads X=1, commits) fully precedes T2
	// (writes X=1, commits). Reads-from forces T2 -> T1, real time forces
	// T1 -> T2: cycle.
	h := history.NewBuilder().
		Read(1, "X", 1).Commit(1).
		Write(2, "X", 1).Commit(2).
		History()
	g := BuildPrecedenceGraph(h)
	cyc := g.Cycle()
	if cyc == nil {
		t.Fatal("expected a cycle")
	}
	if len(cyc) < 3 || cyc[0] != cyc[len(cyc)-1] {
		t.Fatalf("malformed cycle %v", cyc)
	}
	v := CheckDUOpacityGraph(h)
	if v.OK {
		t.Fatal("cycle should refute du-opacity")
	}
	if !strings.Contains(v.Reason, "precedence cycle") {
		t.Fatalf("reason %q should mention the cycle", v.Reason)
	}
	if v.Nodes != 0 {
		t.Fatalf("refutation should not search (nodes=%d)", v.Nodes)
	}
}

func TestCheckDUOpacityGraphAgreesWithExact(t *testing.T) {
	histories := []*history.History{
		history.NewBuilder().Write(1, "X", 1).Commit(1).Read(2, "X", 1).Commit(2).History(),
		history.NewBuilder().Read(1, "X", 1).Commit(1).Write(2, "X", 1).Commit(2).History(),
		history.NewBuilder().
			InvWrite(1, "X", 1).ResWrite(1, "X", 1).
			Read(2, "X", 1).Commit(2).Commit(1).History(), // du violation, acyclic graph
		history.NewBuilder().
			Write(1, "X", 1).InvTryCommit(1).
			Read(2, "X", 1).Commit(2).History(),
	}
	for i, h := range histories {
		exact := CheckDUOpacity(h).OK
		graph := CheckDUOpacityGraph(h).OK
		if exact != graph {
			t.Errorf("history %d: exact=%v graph=%v", i, exact, graph)
		}
	}
}

func TestPrecedenceGraphNonUniqueWritesSkipsReadsFrom(t *testing.T) {
	// Two writers of the same value: reads-from is ambiguous, so no
	// reads-from edges may be forced.
	h := history.NewBuilder().
		Write(1, "X", 1).Commit(1).
		Write(2, "X", 1).Commit(2).
		Read(3, "X", 1).Commit(3).
		History()
	g := BuildPrecedenceGraph(h)
	for _, e := range g.Edges {
		if e.Kind == EdgeReadsFrom {
			t.Fatalf("forced reads-from edge %s despite ambiguous writers", e)
		}
	}
}
