package spec

import (
	"fmt"

	"duopacity/internal/history"
)

// VerifySerialization independently checks that s is a du-opaque
// serialization of h per Definition 3, without any search:
//
//  1. s is equivalent to some completion of h and is legal;
//  2. s respects the real-time order of h;
//  3. every read that returns a value is legal in its local serialization
//     with respect to h and s.
//
// It returns nil when s is a valid witness. The checkers' witnesses and
// the constructions of package koenig (Lemma 1, Lemma 4, Theorem 5) are
// validated with this function, so the exhaustive search and the
// definition are implemented independently and checked against each other.
// The real-time and local-serialization walks run on the history's cached
// indexed view, which the online monitor relies on for cheap witness
// revalidation at every response event.
func VerifySerialization(h *history.History, s *history.Seq) error {
	if err := s.MatchesCompletionOf(h); err != nil {
		return fmt.Errorf("spec: not a completion: %w", err)
	}
	if err := s.Legal(); err != nil {
		return fmt.Errorf("spec: not legal: %w", err)
	}
	ix := h.Index()
	// Condition 2: real-time order. Walking s in order, every transaction's
	// real-time predecessors must already have been placed. The index's
	// bitset rows cover histories of any size (the old 64-transaction mask
	// fallback is gone).
	placed := history.MakeBits(ix.NumTxns())
	for i := range s.Txns {
		bi := ix.TxnIndexOf(s.Txns[i].ID)
		if missing := ix.RTPred[bi].FirstNotIn(placed); missing >= 0 {
			a := ix.TxnIDs[missing]
			b := s.Txns[i].ID
			return fmt.Errorf("spec: real-time violation: T%d ≺RT T%d but T%d <S T%d", a, b, b, a)
		}
		placed.Set(bi)
	}
	// Condition 3: local-serialization legality of every value-returning
	// read. Walk s in order, maintaining per-object stacks of committed
	// writers with their tryC invocation index in h.
	type writer struct {
		tryCInv int
		val     history.Value
	}
	stacks := make([][]writer, ix.NumObjs())
	for i := range s.Txns {
		st := &s.Txns[i]
		ti := ix.TxnIndexOf(st.ID)
		it := &ix.Txns[ti]
		ht := it.Info
		for opIdx, op := range st.Ops {
			if op.Kind != history.OpRead || op.Pending || op.Out != history.OutOK {
				continue
			}
			// Own-write reads are legal whenever consistent; consistency is
			// part of s.Legal above. The index classifies them once.
			if !isExternalRead(it, opIdx) {
				continue
			}
			obj := ix.ObjIndexOf(op.Obj)
			// The read's response index in h (the op exists in h because it
			// returned a value).
			resIdx := ht.Ops[opIdx].ResIndex
			want := history.InitValue
			for j := len(stacks[obj]) - 1; j >= 0; j-- {
				w := stacks[obj][j]
				if w.tryCInv >= 0 && w.tryCInv < resIdx {
					want = w.val
					break
				}
			}
			if op.Val != want {
				return fmt.Errorf(
					"spec: T%d: %v is not legal in its local serialization (latest included committed write is %d)",
					st.ID, op, want)
			}
		}
		if st.Committed() {
			// The writer's tryC invocation index in h: -1 for synthetic
			// completions, which cannot happen for committed transactions
			// (a committed transaction's tryC was invoked in h).
			for _, w := range it.Writes {
				stacks[w.Obj] = append(stacks[w.Obj], writer{tryCInv: it.TryCInv, val: w.Val})
			}
		}
	}
	return nil
}

// isExternalRead reports whether the read at op position opIdx of the
// transaction is one of its external reads (not satisfied by an earlier
// own write).
func isExternalRead(it *history.IndexedTxn, opIdx int) bool {
	res := it.Info.Ops[opIdx].ResIndex
	for _, r := range it.Reads {
		if r.ResIdx == res {
			return true
		}
	}
	return false
}
