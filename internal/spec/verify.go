package spec

import (
	"fmt"

	"duopacity/internal/history"
)

// VerifySerialization independently checks that s is a du-opaque
// serialization of h per Definition 3, without any search:
//
//  1. s is equivalent to some completion of h and is legal;
//  2. s respects the real-time order of h;
//  3. every read that returns a value is legal in its local serialization
//     with respect to h and s.
//
// It returns nil when s is a valid witness. The checkers' witnesses and
// the constructions of package koenig (Lemma 1, Lemma 4, Theorem 5) are
// validated with this function, so the exhaustive search and the
// definition are implemented independently and checked against each other.
func VerifySerialization(h *history.History, s *history.Seq) error {
	if err := s.MatchesCompletionOf(h); err != nil {
		return fmt.Errorf("spec: not a completion: %w", err)
	}
	if err := s.Legal(); err != nil {
		return fmt.Errorf("spec: not legal: %w", err)
	}
	// Condition 2: real-time order.
	pos := make(map[history.TxnID]int, len(s.Txns))
	for i := range s.Txns {
		pos[s.Txns[i].ID] = i
	}
	for _, a := range h.Txns() {
		for _, b := range h.Txns() {
			if h.RealTimePrecedes(a, b) && pos[a] > pos[b] {
				return fmt.Errorf("spec: real-time violation: T%d ≺RT T%d but T%d <S T%d", a, b, b, a)
			}
		}
	}
	// Condition 3: local-serialization legality of every value-returning
	// read. Walk s in order, maintaining per-object stacks of committed
	// writers with their tryC invocation index in h.
	type writer struct {
		tryCInv int
		val     history.Value
	}
	stacks := make(map[history.Var][]writer)
	for i := range s.Txns {
		st := &s.Txns[i]
		ht := h.Txn(st.ID)
		overlay := make(map[history.Var]history.Value)
		for opIdx, op := range st.Ops {
			switch op.Kind {
			case history.OpWrite:
				if !op.Pending && op.Out == history.OutOK {
					overlay[op.Obj] = op.Arg
				}
			case history.OpRead:
				if op.Pending || op.Out != history.OutOK {
					continue
				}
				if v, ok := overlay[op.Obj]; ok {
					if v != op.Val {
						return fmt.Errorf("spec: T%d op %d: own-write read %v, want %d", st.ID, opIdx, op, v)
					}
					continue
				}
				// The read's response index in h (the op exists in h
				// because it returned a value).
				resIdx := ht.Ops[opIdx].ResIndex
				want := history.InitValue
				for j := len(stacks[op.Obj]) - 1; j >= 0; j-- {
					w := stacks[op.Obj][j]
					if w.tryCInv >= 0 && w.tryCInv < resIdx {
						want = w.val
						break
					}
				}
				if op.Val != want {
					return fmt.Errorf(
						"spec: T%d: %v is not legal in its local serialization (latest included committed write is %d)",
						st.ID, op, want)
				}
			}
		}
		if st.Committed() {
			// The writer's tryC invocation index in h: -1 for synthetic
			// completions, which cannot happen for committed transactions
			// (a committed transaction's tryC was invoked in h).
			for obj, val := range st.LastWrites() {
				stacks[obj] = append(stacks[obj], writer{tryCInv: ht.TryCInv, val: val})
			}
		}
	}
	return nil
}
