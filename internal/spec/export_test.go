package spec

import "duopacity/internal/history"

// CheckReference exposes the frozen PR 1 engine (reference.go) to the
// differential tests and the fuzz target in package spec_test.
func CheckReference(h *history.History, c Criterion, opts ...Option) Verdict {
	return checkReference(h, c, buildOptions(opts))
}
