package spec

import "duopacity/internal/history"

// CheckReference exposes the frozen PR 1 engine (reference.go) to the
// differential tests and the fuzz target in package spec_test.
func CheckReference(h *history.History, c Criterion, opts ...Option) Verdict {
	return checkReference(h, c, buildOptions(opts))
}

// MonitorEdges exposes a snapshot of the monitor's incrementally
// maintained conflict-order edge set (nil for criteria without one) so
// the differential tests can pin it against the batch edge builders.
func MonitorEdges(m *Monitor) [][2]history.TxnID {
	if m.edges == nil {
		return nil
	}
	return append([][2]history.TxnID(nil), m.edges.edges...)
}

// BatchConflictEdges recomputes the batch checkers' edge set for c over
// the whole history — the oracle the incremental tracker must match.
func BatchConflictEdges(h *history.History, c Criterion, exemptAborted bool) [][2]history.TxnID {
	switch c {
	case TMS2:
		return tms2Edges(h, exemptAborted)
	case RCO:
		return rcoEdges(h)
	}
	return nil
}
