package spec_test

import (
	"sync"
	"testing"

	"duopacity/internal/gen"
	"duopacity/internal/history"
	"duopacity/internal/litmus"
	"duopacity/internal/spec"
)

type testHist struct {
	name string
	h    *history.History
}

// TestParallelPortfolioAgrees pins the portfolio search's semantics:
// acceptance, rejection reasons of decided verdicts, and witness validity
// all match the sequential search, across criteria, on accepted and
// violating histories.
func TestParallelPortfolioAgrees(t *testing.T) {
	var histories []testHist
	for seed := int64(1); seed <= 12; seed++ {
		histories = append(histories, testHist{"gen", gen.DUOpaque(gen.Config{
			Txns: 9, Objects: 3, OpsPerTxn: 3, ReadFraction: 0.5,
			PAbort: 0.2, PNoTryC: 0.1, Relax: 5, Seed: seed,
		})})
	}
	for _, c := range litmus.Cases() {
		histories = append(histories, testHist{c.Name, c.H})
	}
	criteria := []spec.Criterion{
		spec.DUOpacity, spec.FinalStateOpacity, spec.TMS2, spec.RCO,
		spec.StrictSerializability, spec.Serializability,
	}
	for _, th := range histories {
		for _, c := range criteria {
			seq := spec.Check(th.h, c)
			par := spec.Check(th.h, c, spec.WithParallelism(4))
			if seq.OK != par.OK || seq.Undecided != par.Undecided || seq.Reason != par.Reason {
				t.Errorf("%s/%s: portfolio disagrees with sequential:\n  seq OK=%v undecided=%v reason=%q\n  par OK=%v undecided=%v reason=%q",
					th.name, c, seq.OK, seq.Undecided, seq.Reason, par.OK, par.Undecided, par.Reason)
			}
			if par.OK && c == spec.DUOpacity {
				if err := spec.VerifySerialization(th.h, par.Serialization); err != nil {
					t.Errorf("%s: portfolio witness invalid: %v", th.name, err)
				}
			}
		}
	}
}

// TestParallelPortfolioBudgetNotStranded pins the shared-budget
// accounting: with a node limit comfortably above the sequential search's
// need, the portfolio must still decide — workers refund unused chunk
// remainders between branches and size their claims to the budget, so
// small limits aren't stranded in in-flight chunks.
func TestParallelPortfolioBudgetNotStranded(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		h := gen.DUOpaque(gen.Config{
			Txns: 10, Objects: 3, OpsPerTxn: 3, ReadFraction: 0.5, Relax: 5, Seed: 200 + seed,
		})
		seq := spec.CheckDUOpacity(h)
		if seq.Undecided {
			t.Fatalf("seed %d: unlimited sequential check undecided", seed)
		}
		limit := 100*seq.Nodes + 1000
		par := spec.Check(h, spec.DUOpacity, spec.WithNodeLimit(limit), spec.WithParallelism(8))
		if par.Undecided {
			t.Errorf("seed %d: portfolio undecided at limit %d though sequential needed %d nodes",
				seed, limit, seq.Nodes)
		} else if par.OK != seq.OK {
			t.Errorf("seed %d: portfolio OK=%v, sequential OK=%v", seed, par.OK, seq.OK)
		}
	}
}

// TestParallelPortfolioConcurrent exercises concurrent portfolio checks of
// the same shared history from many goroutines — the checkfarm shape — so
// `go test -race` covers the shared index, the engine pool and the
// first-witness-wins cancellation together.
func TestParallelPortfolioConcurrent(t *testing.T) {
	h := gen.DUOpaque(gen.Config{
		Txns: 10, Objects: 3, OpsPerTxn: 3, ReadFraction: 0.5, Relax: 5, Seed: 42,
	})
	want := spec.CheckDUOpacity(h)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				v := spec.Check(h, spec.DUOpacity, spec.WithParallelism(3))
				if v.OK != want.OK {
					t.Errorf("concurrent portfolio check flipped: OK=%v want %v", v.OK, want.OK)
					return
				}
			}
		}()
	}
	wg.Wait()
}
