package spec

import (
	"sync"
	"testing"

	"duopacity/internal/history"
)

// TestCheckConcurrent pins the contract package checkfarm builds on:
// Check is safe to call from many goroutines, including on the SAME
// history value — every call builds its own search engine and per-call
// memo over the immutable history, and histories analyze eagerly at
// construction. Run under -race this is the goroutine-safety proof.
func TestCheckConcurrent(t *testing.T) {
	shared := func() *history.History {
		b := history.NewBuilder()
		b.InvWrite(1, "X", 1)
		b.Read(2, "X", 0).Commit(2)
		b.ResWrite(1, "X", 1)
		b.Commit(1)
		b.Read(3, "X", 1)
		b.Write(3, "Y", 2).Commit(3)
		b.Read(4, "Y", 2).Commit(4)
		return b.History()
	}()
	criteria := AllCriteria()

	var wg sync.WaitGroup
	results := make([][]Verdict, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vs := make([]Verdict, len(criteria))
			for i, c := range criteria {
				vs[i] = Check(shared, c, WithNodeLimit(1_000_000))
			}
			results[g] = vs
		}(g)
	}
	wg.Wait()

	for g := 1; g < 8; g++ {
		for i, c := range criteria {
			if results[g][i].OK != results[0][i].OK || results[g][i].Undecided != results[0][i].Undecided {
				t.Errorf("goroutine %d: %s verdict diverged: %v vs %v", g, c, results[g][i], results[0][i])
			}
		}
	}
}

// TestCheckConcurrentDistinctHistories exercises concurrent checks over a
// mix of distinct histories, mimicking the farm's sharding pattern.
func TestCheckConcurrentDistinctHistories(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := history.NewBuilder()
			for k := history.TxnID(1); k <= history.TxnID(3+g%3); k++ {
				b.Write(k, "X", history.Value(10*int(k)+g)).Commit(k)
				b.Read(k+10, "X", history.Value(10*int(k)+g)).Commit(k + 10)
			}
			h := b.History()
			for _, c := range AllCriteria() {
				if v := Check(h, c, WithNodeLimit(1_000_000)); !v.OK && !v.Undecided {
					t.Errorf("goroutine %d: %s rejected a serial legal history: %s", g, c, v.Reason)
				}
			}
		}(g)
	}
	wg.Wait()
}
