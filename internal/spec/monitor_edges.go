package spec

import "duopacity/internal/history"

// edgeTracker maintains a criterion's extra conflict-order edges (TMS2 /
// RCO) incrementally while the monitor's stream grows, so a recheck never
// rebuilds tms2Edges/rcoEdges from the whole history. The key observation
// is that each edge's defining condition becomes true at exactly one
// event and — except for TMS2's aborted-reader exemption — stays true in
// every extension:
//
//   - A TMS2 edge T1 <_S T2 (X ∈ Wset(T1) ∩ Rset(T2), T1 committed,
//     res(tryC_1) before inv(tryC_2)) is decided entirely by the prefix
//     ending at inv(tryC_2): T2's read set is final there, and any writer
//     committing later fails res(tryC_1) < inv(tryC_2) forever. So the
//     tracker scans the live transactions once per tryC invocation —
//     O(live window), never O(history).
//   - An RCO edge T_k <_S T_m (some t-read of X by T_k responds before
//     inv(tryC_m), T_m commits a write to X) is decided at T_m's commit
//     response: T_m's write set is final there, and reads responding
//     later fail the event-order test forever. One scan per commit.
//   - Under WithTMS2AbortedReaderExemption an edge targeting T2 dies at
//     exactly one event too: the abort response of tryC_2 (the only way a
//     transaction with an invoked tryC becomes t-complete without
//     committing). Removal makes the edge set non-monotone, which is why
//     a TMS2 monitor with the exemption reports the latched property
//     "every response prefix seen so far" (see NewMonitor).
//
// Edges are held by transaction identifier, so they survive the dense
// index reshuffle of windowed retirement; retire() calls dropRetired to
// discard edges touching retired transactions (sound and exact: a
// retired-to-live edge is implied by the retirement barrier's real-time
// order, and live-to-retired edges are impossible — the live side's first
// event follows the retired side's last, contradicting the edge's event
// ordering; see DESIGN.md "Incremental conflict-order edges").
//
// pending accumulates the edges added since the monitor's last recheck:
// the fast path only has to test those against the standing witness
// (standing edges were validated when they were pending and witness
// positions never reorder outside adoptWitness, which re-validates
// everything through the search).
type edgeTracker struct {
	crit   Criterion
	exempt bool
	// skipCkpt is set when retirement is on: the checkpoint transaction
	// (ckptTxn) is a committed writer and would source TMS2 edges to
	// every later reader of its objects, but those edges are implied by
	// real-time order (the checkpoint precedes every live transaction),
	// and keeping extraEdges empty preserves the engine's RTPred-aliasing
	// fast path. Without retirement the identifier is ordinary and the
	// edges are kept.
	skipCkpt bool

	edges   [][2]history.TxnID
	pending [][2]history.TxnID
}

func newEdgeTracker(c Criterion, exempt, retiring bool) *edgeTracker {
	return &edgeTracker{crit: c, exempt: exempt && c == TMS2, skipCkpt: retiring}
}

// observe folds one just-appended event into the edge state. ix must be
// the live index already updated with e. It is called for every event
// (TMS2 edges appear at invocations); the verdict itself is only
// recomputed at responses, so an edge created by inv(tryC) is enforced
// from the next response prefix on — which is exact, because batch
// verdicts are only compared at response prefixes and the edge set at
// every response prefix matches the batch edge set (pinned by the
// per-prefix differential tests).
func (et *edgeTracker) observe(ix *history.Indexed, e history.Event) {
	if e.Op != history.OpTryCommit {
		return
	}
	switch et.crit {
	case TMS2:
		if e.Kind == history.Inv {
			et.tms2ReaderArrived(ix, e.Txn)
		} else if et.exempt && e.Out != history.OutCommit {
			et.dropTarget(e.Txn)
		}
	case RCO:
		if e.Kind == history.Res && e.Out == history.OutCommit {
			et.rcoWriterCommitted(ix, e.Txn)
		}
	}
}

// tms2ReaderArrived adds the TMS2 edges decided by inv(tryC_2): one from
// every already-committed writer of an object in T2's read set. Committed
// writers necessarily satisfy res(tryC_1) < inv(tryC_2) — their commit
// response is already in the history.
func (et *edgeTracker) tms2ReaderArrived(ix *history.Indexed, reader history.TxnID) {
	gi := ix.TxnIndexOf(reader)
	if gi < 0 {
		return
	}
	t2 := &ix.Txns[gi]
	for ai := range ix.Txns {
		if ai == gi {
			continue
		}
		t1 := &ix.Txns[ai]
		if !t1.Committed || len(t1.Writes) == 0 || t1.TryCRes < 0 {
			continue
		}
		if et.skipCkpt && t1.Info.ID == ckptTxn {
			continue
		}
		if readsObjectWrittenBy(ix, t2, t1) {
			et.add(t1.Info.ID, reader)
		}
	}
}

// rcoWriterCommitted adds the RCO edges decided by T_m's commit response:
// one from every transaction with a completed successful read of an
// object in Wset(T_m) whose response precedes inv(tryC_m).
func (et *edgeTracker) rcoWriterCommitted(ix *history.Indexed, writer history.TxnID) {
	mi := ix.TxnIndexOf(writer)
	if mi < 0 {
		return
	}
	tm := &ix.Txns[mi]
	if len(tm.Writes) == 0 || tm.TryCInv < 0 {
		return
	}
	for ki := range ix.Txns {
		if ki == mi {
			continue
		}
		tk := &ix.Txns[ki]
		for _, op := range tk.Info.Ops {
			if op.Kind != history.OpRead || op.Pending || op.Out != history.OutOK {
				continue
			}
			if op.ResIndex < tm.TryCInv && writesObj(tm, ix.ObjIndexOf(op.Obj)) {
				et.add(tk.Info.ID, writer)
				break
			}
		}
	}
}

func (et *edgeTracker) add(from, to history.TxnID) {
	et.edges = append(et.edges, [2]history.TxnID{from, to})
	et.pending = append(et.pending, [2]history.TxnID{from, to})
}

// dropTarget removes every edge into the aborted reader (the exemption).
func (et *edgeTracker) dropTarget(to history.TxnID) {
	et.edges = dropEdgesTo(et.edges, to)
	et.pending = dropEdgesTo(et.pending, to)
}

func dropEdgesTo(edges [][2]history.TxnID, to history.TxnID) [][2]history.TxnID {
	out := edges[:0]
	for _, e := range edges {
		if e[1] != to {
			out = append(out, e)
		}
	}
	return out
}

// clearPending marks the current edge set validated: either the fast path
// checked the pending edges against the witness, or a full search (which
// enforces the whole standing set) just ran.
func (et *edgeTracker) clearPending() { et.pending = et.pending[:0] }

// pendingOK reports whether the witness order satisfies every edge added
// since the last recheck: the source must be placed before the target.
func (et *edgeTracker) pendingOK(ix *history.Indexed, pos []int) bool {
	for _, e := range et.pending {
		fi, ti := ix.TxnIndexOf(e[0]), ix.TxnIndexOf(e[1])
		if fi < 0 || ti < 0 || fi >= len(pos) || ti >= len(pos) {
			return false
		}
		if pos[fi] >= pos[ti] {
			return false
		}
	}
	return true
}

// dropRetired discards edges with an endpoint outside the rebuilt live
// index — the transactions windowed retirement just folded into the
// checkpoint. Exact: live-to-retired edges cannot exist, and a
// retired-to-live edge restates the real-time precedence the retirement
// barrier already guarantees.
func (et *edgeTracker) dropRetired(live *history.Indexed) {
	keep := et.edges[:0]
	for _, e := range et.edges {
		if live.TxnIndexOf(e[0]) >= 0 && live.TxnIndexOf(e[1]) >= 0 {
			keep = append(keep, e)
		}
	}
	et.edges = keep
	// pending is empty here (retirement runs after an accepting recheck),
	// but filter defensively so a stale entry cannot outlive its txn.
	keepP := et.pending[:0]
	for _, e := range et.pending {
		if live.TxnIndexOf(e[0]) >= 0 && live.TxnIndexOf(e[1]) >= 0 {
			keepP = append(keepP, e)
		}
	}
	et.pending = keepP
}
