package spec

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"duopacity/internal/history"
)

// This file implements the parallel portfolio search behind
// WithParallelism: the top-level branches of the serialization search —
// the (transaction, commit-decision) moves available at the root after the
// greedy phase — are fanned out across workers. Each worker owns a full
// engine (scratch, memo) and explores whole branches; a shared atomic
// budget meters the node limit across all workers and a shared flag
// cancels the portfolio as soon as any branch finds a witness
// (first-witness-wins).
//
// Acceptance is deterministic: a history is accepted iff some branch
// contains a witness, and refutation requires every branch to be
// exhausted. The specific witness returned, the node count, and — when a
// node limit is set — which checks come back undecided near the budget
// boundary may vary between runs; callers needing bit-reproducible
// undecided verdicts should keep the sequential path.

// rootMove is one top-level branch of the search.
type rootMove struct {
	i      int
	commit bool
}

// rootMoves replicates the root search node's expansion — greedy phase,
// then the available (transaction, commit) moves in sequential try order —
// and restores the engine. A nil result means the greedy phase already
// completes the serialization (or nothing is available) and the portfolio
// has nothing to fan out.
func (e *engine) rootMoves() []rootMove {
	greedy := e.greedyPlace()
	var moves []rootMove
	if e.placedCount != e.n {
		for w := 0; w < e.words; w++ {
			for m := e.all[w] &^ e.placed[w]; m != 0; m &= m - 1 {
				i := w<<6 + bits.TrailingZeros64(m)
				if !e.predOK(i) {
					continue
				}
				switch e.role[i] {
				case roleMustCommit:
					moves = append(moves, rootMove{i, true})
				case roleMustAbort:
					moves = append(moves, rootMove{i, false})
				case roleEither:
					moves = append(moves, rootMove{i, true}, rootMove{i, false})
				}
			}
		}
	}
	for ; greedy > 0; greedy-- {
		e.popTxn()
	}
	return moves
}

// searchBranch explores the single top-level branch mv to exhaustion: it
// replays the root greedy phase, forces the branch's first move, and
// searches the subtree.
func (e *engine) searchBranch(mv rootMove) bool {
	greedy := e.greedyPlace()
	var found bool
	if e.placedCount == e.n {
		found = e.emit()
	} else {
		found = e.place(mv.i, mv.commit)
	}
	for ; greedy > 0; greedy-- {
		e.popTxn()
	}
	return found
}

// decideParallel runs the portfolio search with o.parallelism workers.
func decideParallel(h *history.History, c Criterion, mode searchMode, o options) Verdict {
	root, reject := newEngine(h, mode, o)
	if reject != "" {
		return Verdict{Criterion: c, Reason: reject}
	}
	moves := root.rootMoves()
	if len(moves) <= 1 {
		// Nothing to fan out: the greedy phase decides the root alone, or a
		// single branch would serialize the portfolio anyway.
		ok, witness, reason, bailed, nodes := root.run()
		root.release()
		return Verdict{
			Criterion: c, OK: ok, Serialization: witness,
			Reason: reason, Undecided: bailed, Nodes: nodes,
		}
	}
	root.release()

	var (
		stop   atomic.Bool
		budget *atomic.Int64
	)
	if o.nodeLimit > 0 {
		budget = new(atomic.Int64)
		budget.Store(int64(o.nodeLimit))
	}
	workers := o.parallelism
	if workers > len(moves) {
		workers = len(moves)
	}
	// Claim granularity: small enough that the workers' in-flight chunks
	// cannot strand more than half of a small budget, capped at 256 to
	// keep the atomic traffic low on large budgets.
	chunkSize := 256
	if o.nodeLimit > 0 {
		if c := o.nodeLimit / (2 * workers); c < chunkSize {
			chunkSize = c
			if chunkSize < 1 {
				chunkSize = 1
			}
		}
	}
	type branchResult struct {
		found   bool
		bailed  bool
		nodes   int
		witness *history.Seq
	}
	results := make([]branchResult, len(moves))
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One engine per worker: the analysis products (roles,
			// predecessor masks, stack sizing, static checks) are
			// branch-invariant, and the memo stays valid across branches of
			// the same check — exactly as it does for the sequential search.
			var we *engine
			defer func() {
				if we != nil {
					we.release()
				}
			}()
			for {
				b := int(next.Add(1)) - 1
				if b >= len(moves) || stop.Load() {
					return
				}
				if we == nil {
					var rej string
					we, rej = newEngine(h, mode, o)
					if rej != "" {
						// Unreachable: the root engine validated the history.
						return
					}
					we.stop = &stop
					we.budget = budget
					we.chunkSize = chunkSize
				}
				we.witness, we.bailed = nil, false
				prevNodes := we.nodes
				found := we.searchBranch(moves[b])
				results[b] = branchResult{
					found: found, bailed: we.bailed, nodes: we.nodes - prevNodes, witness: we.witness,
				}
				// Refund the unused part of the locally claimed budget chunk
				// so short branches don't strand shared budget.
				if budget != nil && we.chunk > 0 {
					budget.Add(int64(we.chunk))
					we.chunk = 0
				}
				if found {
					stop.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()

	nodes := 0
	bailed := false
	var witness *history.Seq
	for _, r := range results {
		nodes += r.nodes
		bailed = bailed || r.bailed
		if witness == nil && r.found {
			witness = r.witness
		}
	}
	switch {
	case witness != nil:
		return Verdict{Criterion: c, OK: true, Serialization: witness, Nodes: nodes}
	case bailed:
		reason := "node limit exceeded"
		if o.ctx != nil && o.ctx.Err() != nil {
			reason = "context cancelled"
		}
		return Verdict{Criterion: c, Reason: reason, Undecided: true, Nodes: nodes}
	default:
		return Verdict{Criterion: c, Reason: "no serialization satisfies the criterion", Nodes: nodes}
	}
}
