// Package koenig makes the safety proofs of the paper executable on
// bounded instances:
//
//   - RestrictSerialization is the construction of Lemma 1: from a
//     serialization S of H it derives, for any prefix H^i, a serialization
//     S^i whose transaction sequence is a subsequence of seq(S).
//   - LiveSetOrder is the reordering procedure of Lemma 4: it transforms a
//     serialization into one that places every transaction before all
//     transactions that succeed its live set (T_k ≺LS T_m ⟹ T_k <_S T_m).
//   - Graph builds the rooted directed graph G_H from the proof of
//     Theorem 5 — vertices are (prefix, serialization) pairs, with an edge
//     when the serializations agree on the transactions already complete —
//     and checks the properties König's Path Lemma needs: finite
//     branching and connectivity; DeepestPath extracts the path whose
//     infinite analogue the proof uses to assemble a serialization of the
//     limit history.
package koenig

import (
	"fmt"

	"duopacity/internal/history"
	"duopacity/internal/spec"
)

// RestrictSerialization implements Lemma 1's construction: given a
// du-opaque serialization s of h, it returns a serialization of the prefix
// of h of length i whose sequence is the subsequence of seq(s) restricted
// to the prefix's transactions, with each transaction completed per the
// prefix's status (keeping s's commit decision for transactions whose tryC
// is pending in the prefix).
func RestrictSerialization(h *history.History, s *history.Seq, i int) (*history.Seq, error) {
	// The prefix's per-transaction views are computed by Prefix itself;
	// building the dense index here would cost more than it saves, since
	// each restriction touches each transaction once.
	hi := h.Prefix(i)
	commit := make(map[history.TxnID]bool)
	var order []history.TxnID
	for idx := range s.Txns {
		st := &s.Txns[idx]
		t := hi.Txn(st.ID)
		if t == nil {
			continue // transaction not yet started in the prefix
		}
		order = append(order, st.ID)
		if t.CommitPending() {
			commit[st.ID] = st.Committed()
		}
	}
	si, err := history.SeqFromHistory(hi, order, commit)
	if err != nil {
		return nil, fmt.Errorf("koenig: restriction failed: %w", err)
	}
	return si, nil
}

// LiveSetOrder implements the reordering of Lemma 4: starting from seq(s),
// each transaction T_k is moved to immediately precede the earliest
// transaction T_l with T_k ≺LS T_l whenever T_l currently precedes it. The
// resulting sequence serializes every transaction before the transactions
// that succeed its live set.
func LiveSetOrder(h *history.History, s *history.Seq) (*history.Seq, error) {
	order := s.Order()
	commit := commitDecisions(s)
	pos := func(k history.TxnID) int {
		for i, id := range order {
			if id == k {
				return i
			}
		}
		return -1
	}
	for _, k := range h.Txns() {
		// Earliest transaction in the current order succeeding k's live set.
		earliest := -1
		for i, m := range order {
			if m != k && h.SucceedsLiveSet(k, m) {
				earliest = i
				break
			}
		}
		if earliest < 0 {
			continue
		}
		kp := pos(k)
		if kp < earliest {
			continue // already before T_l
		}
		// Move k to immediately precede order[earliest].
		id := order[kp]
		copy(order[earliest+1:kp+1], order[earliest:kp])
		order[earliest] = id
	}
	out, err := history.SeqFromHistory(h, order, commit)
	if err != nil {
		return nil, fmt.Errorf("koenig: live-set reorder failed: %w", err)
	}
	return out, nil
}

func commitDecisions(s *history.Seq) map[history.TxnID]bool {
	m := make(map[history.TxnID]bool, len(s.Txns))
	for i := range s.Txns {
		m[s.Txns[i].ID] = s.Txns[i].Committed()
	}
	return m
}

// Vertex is a node of G_H: a prefix length and one du-opaque serialization
// of that prefix.
type Vertex struct {
	Level    int // prefix length
	S        *history.Seq
	Children []*Vertex
}

// Graph is the bounded construction of G_H from Theorem 5's proof, with
// one level per prefix length of h (levels at non-response events are
// skipped: the serialization set does not change there).
type Graph struct {
	H      *history.History
	Root   *Vertex
	Levels [][]*Vertex
}

// BuildGraph constructs G_H for the history h, sampling at most perLevel
// serializations per prefix by enumeration and then closing the vertex set
// downwards under Lemma 1: the restriction of every level-(i+1)
// serialization is added to level i, so — exactly as in the paper's proof
// of connectivity — every vertex has a predecessor all the way to the
// root. The root is the empty prefix with the empty serialization. An edge
// connects (H^i, S^i) to (H^j, S^j) of the next level when
// cseq_i(S^i) = cseq_i(S^j) — the serializations agree on the transactions
// complete in H^i with respect to H.
func BuildGraph(h *history.History, perLevel int) (*Graph, error) {
	// Prefix lengths that form the levels: response boundaries plus the
	// full history (invocation-only extensions have the same
	// serializations).
	var levels []int
	for i := 1; i <= h.Len(); i++ {
		if h.At(i-1).Kind == history.Res || i == h.Len() {
			levels = append(levels, i)
		}
	}

	// Sample serializations per level by enumeration.
	byLevel := make([][]*Vertex, len(levels))
	for li, plen := range levels {
		var vs []*Vertex
		spec.AllDUSerializations(h.Prefix(plen), perLevel, func(s *history.Seq) bool {
			vs = append(vs, &Vertex{Level: plen, S: s})
			return true
		})
		if len(vs) == 0 {
			return nil, fmt.Errorf("koenig: prefix of length %d has no du-opaque serialization", plen)
		}
		byLevel[li] = vs
	}

	// Close downwards under Lemma 1 restrictions (dedupe by rendering).
	for li := len(levels) - 1; li > 0; li-- {
		lower := levels[li-1]
		seen := make(map[string]bool, len(byLevel[li-1]))
		for _, v := range byLevel[li-1] {
			seen[v.S.String()] = true
		}
		for _, v := range byLevel[li] {
			r, err := RestrictSerialization(h, v.S, lower)
			if err != nil {
				return nil, err
			}
			if key := r.String(); !seen[key] {
				seen[key] = true
				byLevel[li-1] = append(byLevel[li-1], &Vertex{Level: lower, S: r})
			}
		}
	}

	g := &Graph{H: h, Root: &Vertex{Level: 0, S: &history.Seq{}}}
	g.Levels = append(g.Levels, []*Vertex{g.Root})
	prev := []*Vertex{g.Root}
	prevLevel := 0
	for li := range levels {
		vs := byLevel[li]
		for _, p := range prev {
			pc := completeSeq(h, p.S, prevLevel)
			for _, v := range vs {
				if sliceEq(pc, completeSeq(h, v.S, prevLevel)) {
					p.Children = append(p.Children, v)
				}
			}
		}
		g.Levels = append(g.Levels, vs)
		prev = vs
		prevLevel = levels[li]
	}
	return g, nil
}

// completeSeq computes cseq_i(S): the subsequence of seq(S) restricted to
// transactions that are complete in H^i with respect to H — their last
// event in H is a response and lies within the first i events.
func completeSeq(h *history.History, s *history.Seq, i int) []history.TxnID {
	ix := h.Index()
	var out []history.TxnID
	for idx := range s.Txns {
		k := s.Txns[idx].ID
		ti := ix.TxnIndexOf(k)
		if ti < 0 {
			continue
		}
		if t := &ix.Txns[ti]; t.Last < i && t.Complete {
			out = append(out, k)
		}
	}
	return out
}

func sliceEq(a, b []history.TxnID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Connected reports whether every vertex is reachable from the root.
func (g *Graph) Connected() bool {
	reach := map[*Vertex]bool{g.Root: true}
	frontier := []*Vertex{g.Root}
	for len(frontier) > 0 {
		v := frontier[0]
		frontier = frontier[1:]
		for _, c := range v.Children {
			if !reach[c] {
				reach[c] = true
				frontier = append(frontier, c)
			}
		}
	}
	for _, lvl := range g.Levels {
		for _, v := range lvl {
			if !reach[v] {
				return false
			}
		}
	}
	return true
}

// MaxOutDegree returns the largest out-degree in the graph (finite
// branching is immediate for bounded instances; the value documents how
// bushy the instance is).
func (g *Graph) MaxOutDegree() int {
	max := 0
	for _, lvl := range g.Levels {
		for _, v := range lvl {
			if d := len(v.Children); d > max {
				max = d
			}
		}
	}
	return max
}

// DeepestPath returns a root-to-leaf path reaching the last level — the
// bounded analogue of the infinite path König's Path Lemma yields in the
// proof of Theorem 5. It returns nil if no such path exists.
func (g *Graph) DeepestPath() []*Vertex {
	target := len(g.Levels) - 1
	var path []*Vertex
	var dfs func(v *Vertex, depth int) bool
	dfs = func(v *Vertex, depth int) bool {
		path = append(path, v)
		if depth == target {
			return true
		}
		for _, c := range v.Children {
			if dfs(c, depth+1) {
				return true
			}
		}
		path = path[:len(path)-1]
		return false
	}
	if dfs(g.Root, 0) {
		return path
	}
	return nil
}
