package koenig

import (
	"testing"

	"duopacity/internal/gen"
	"duopacity/internal/history"
	"duopacity/internal/litmus"
	"duopacity/internal/spec"
)

// completeCfg generates histories in which every transaction is complete
// (the hypothesis of Lemma 4 and Theorem 5): no pending operations.
func completeCfg(seed int64) gen.Config {
	return gen.Config{
		Txns:         6,
		Objects:      3,
		OpsPerTxn:    3,
		ReadFraction: 0.5,
		PAbort:       0.2,
		PNoTryC:      0.15,
		Relax:        5,
		Seed:         seed,
	}
}

// TestLemma1PrefixSerializations is the executable Lemma 1: restricting a
// serialization of H to any prefix yields a serialization of the prefix
// whose sequence is a subsequence of seq(S).
func TestLemma1PrefixSerializations(t *testing.T) {
	check := func(t *testing.T, h *history.History) {
		t.Helper()
		v := spec.CheckDUOpacity(h)
		if !v.OK {
			t.Fatalf("history not du-opaque: %s", v.Reason)
		}
		full := v.Serialization.Order()
		for i := 0; i <= h.Len(); i++ {
			si, err := RestrictSerialization(h, v.Serialization, i)
			if err != nil {
				t.Fatalf("prefix %d: %v", i, err)
			}
			if err := spec.VerifySerialization(h.Prefix(i), si); err != nil {
				t.Fatalf("prefix %d: restriction is not a serialization: %v", i, err)
			}
			if !isSubsequence(si.Order(), full) {
				t.Fatalf("prefix %d: %v is not a subsequence of %v", i, si.Order(), full)
			}
		}
	}
	t.Run("figure-1", func(t *testing.T) { check(t, litmus.Figure1()) })
	t.Run("figure-2-j5", func(t *testing.T) { check(t, litmus.Figure2Family(5)) })
	t.Run("figure-6", func(t *testing.T) { check(t, litmus.Figure6()) })
	for seed := int64(0); seed < 15; seed++ {
		h := gen.DUOpaque(completeCfg(seed))
		t.Run("generated", func(t *testing.T) { check(t, h) })
	}
}

func isSubsequence(sub, full []history.TxnID) bool {
	j := 0
	for _, x := range full {
		if j < len(sub) && sub[j] == x {
			j++
		}
	}
	return j == len(sub)
}

// TestLemma4LiveSetOrder is the executable Lemma 4: on histories whose
// transactions are all complete, the reordering yields a serialization in
// which T_k precedes every transaction that succeeds its live set.
func TestLemma4LiveSetOrder(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		h := gen.DUOpaque(completeCfg(seed))
		if !h.Complete() {
			t.Fatalf("seed %d: generator produced incomplete transactions", seed)
		}
		v := spec.CheckDUOpacity(h)
		if !v.OK {
			t.Fatalf("seed %d: not du-opaque: %s", seed, v.Reason)
		}
		s, err := LiveSetOrder(h, v.Serialization)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := spec.VerifySerialization(h, s); err != nil {
			t.Fatalf("seed %d: reordered sequence is not a serialization: %v\nbefore: %s\nafter:  %s",
				seed, err, v.Serialization, s)
		}
		for _, k := range h.Txns() {
			for _, m := range h.Txns() {
				if k != m && h.SucceedsLiveSet(k, m) && s.Position(k) > s.Position(m) {
					t.Fatalf("seed %d: T%d ≺LS T%d but order is %s", seed, k, m, s)
				}
			}
		}
	}
}

// TestKoenigGraphProperties builds G_H on bounded instances and checks the
// hypotheses of König's Path Lemma: connectivity and finite branching,
// plus the existence of a full-depth path — the object from which
// Theorem 5 assembles a serialization of the limit.
func TestKoenigGraphProperties(t *testing.T) {
	histories := map[string]*history.History{
		"figure-1":    litmus.Figure1(),
		"figure-2-j5": litmus.Figure2Family(5),
		"figure-6":    litmus.Figure6(),
	}
	for seed := int64(0); seed < 5; seed++ {
		histories["generated"] = gen.DUOpaque(completeCfg(seed))
		for name, h := range histories {
			g, err := BuildGraph(h, 6)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if !g.Connected() {
				t.Errorf("%s: G_H is not connected", name)
			}
			if d := g.MaxOutDegree(); d > 6*len(g.Levels) {
				t.Errorf("%s: out-degree %d exceeds the per-level bound", name, d)
			}
			path := g.DeepestPath()
			if path == nil {
				t.Fatalf("%s: no root-to-leaf path", name)
			}
			// The path's final vertex carries a serialization of H itself.
			last := path[len(path)-1]
			if err := spec.VerifySerialization(h, last.S); err != nil {
				t.Errorf("%s: path endpoint is not a serialization of H: %v", name, err)
			}
		}
	}
}

// TestTheorem5BoundedLimitClosure drives the Theorem 5 scenario: an
// ever-extending chain of prefixes of a complete du-opaque history always
// admits serializations that extend each other along a path of G_H, so the
// (bounded) limit is du-opaque with the path's endpoint as witness.
func TestTheorem5BoundedLimitClosure(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		h := gen.DUOpaque(completeCfg(seed))
		g, err := BuildGraph(h, 4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		path := g.DeepestPath()
		if path == nil {
			t.Fatalf("seed %d: no path to the limit level", seed)
		}
		// Along the path, the complete-transaction sequences agree level
		// to level (the edge condition), which is what pins the limit
		// serialization.
		for i := 0; i+1 < len(path); i++ {
			a, b := path[i], path[i+1]
			ca := completeSeq(h, a.S, a.Level)
			cb := completeSeq(h, b.S, a.Level)
			if !sliceEq(ca, cb) {
				t.Fatalf("seed %d: cseq mismatch along the path at level %d", seed, a.Level)
			}
		}
	}
}

// TestFigure2GraphShowsDivergence: on the Figure 2 family the graph exists
// for every finite j (each prefix is du-opaque), but T1's position in every
// leaf serialization is forced to the end — the executable form of
// Proposition 1's impossibility argument for the infinite limit.
func TestFigure2GraphShowsDivergence(t *testing.T) {
	for j := 3; j <= 6; j++ {
		h := litmus.Figure2Family(j)
		g, err := BuildGraph(h, 8)
		if err != nil {
			t.Fatalf("j=%d: %v", j, err)
		}
		leaves := g.Levels[len(g.Levels)-1]
		if len(leaves) == 0 {
			t.Fatalf("j=%d: no leaf serializations", j)
		}
		for _, v := range leaves {
			n := len(v.S.Txns)
			if p := v.S.Position(1); p != n-2 {
				t.Errorf("j=%d: T1 at position %d of %d, want %d (forced to the tail)", j, p, n, n-2)
			}
		}
	}
}

func TestRestrictSerializationFullPrefixIsIdentity(t *testing.T) {
	h := litmus.Figure1()
	v := spec.CheckDUOpacity(h)
	if !v.OK {
		t.Fatal("figure 1 must be du-opaque")
	}
	s, err := RestrictSerialization(h, v.Serialization, h.Len())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.String(), v.Serialization.String(); got != want {
		t.Fatalf("full-prefix restriction = %s, want %s", got, want)
	}
}
