// Package enum exhaustively enumerates all well-formed histories within a
// bounded scope (events, transactions, objects, values). Where the
// property-based tests sample, this package verifies the paper's theorems
// over *every* history of a small scope — the strongest evidence a
// reproduction can offer for universally quantified claims:
//
//   - Theorem 10: du-opacity ⟹ opacity, for all histories in scope;
//   - Theorem 11: under unique writes, opacity ⟹ du-opacity;
//   - Corollary 2 (prefix closure): a history is never du-opaque when its
//     immediate prefix is not, which the enumerator checks in O(1) per
//     history by walking its own DFS tree.
//
// Enumeration applies a symmetry reduction (transaction k appears only
// after k-1) so that isomorphic histories are visited once.
package enum

import (
	"duopacity/internal/history"
)

// Scope bounds the enumeration.
type Scope struct {
	// MaxEvents bounds the history length.
	MaxEvents int
	// MaxTxns bounds the number of distinct transactions.
	MaxTxns int
	// Objects are the t-objects events may touch.
	Objects []history.Var
	// Values are the candidate written values and read results;
	// InitValue-returning reads are always candidates.
	Values []history.Value
}

// DefaultScope is small enough to enumerate in well under a second yet
// rich enough to contain the paper's Figure 3/4 patterns (two
// transactions, one object, two values).
func DefaultScope() Scope {
	return Scope{
		MaxEvents: 7,
		MaxTxns:   2,
		Objects:   []history.Var{"X"},
		Values:    []history.Value{1},
	}
}

// Node is an enumerated history along with its parent (the history minus
// its last event), enabling O(1) prefix-relation checks during the walk.
type Node struct {
	H *history.History
	// ParentData is the value the visitor returned for the parent node;
	// nil at the root (the empty history).
	ParentData interface{}
}

// Walk enumerates every well-formed history in the scope in DFS order,
// calling visit for each. The value visit returns is passed to all
// children as ParentData. Walk returns the number of histories visited
// (excluding the empty root).
func Walk(s Scope, visit func(Node) interface{}) int {
	e := &enumerator{scope: s, visit: visit}
	rootData := visit(Node{H: history.MustFromEvents(nil)})
	e.walk(rootData)
	return e.count
}

// txnState tracks the per-transaction automaton during enumeration.
type txnState uint8

const (
	stFresh   txnState = iota // not yet started
	stRunning                 // live, no pending operation
	stPending                 // one operation invoked, not yet responded
	stDone                    // t-complete
)

type enumerator struct {
	scope  Scope
	visit  func(Node) interface{}
	evs    []history.Event
	states [65]txnState
	// pending[k] is the pending invocation of transaction k.
	pending [65]history.Event
	started int
	count   int
}

func (e *enumerator) walk(parentData interface{}) {
	if len(e.evs) >= e.scope.MaxEvents {
		return
	}
	for k := 1; k <= e.scope.MaxTxns && k <= e.started+1; k++ {
		kid := history.TxnID(k)
		switch e.states[k] {
		case stDone:
			continue
		case stPending:
			inv := e.pending[k]
			for _, res := range e.responses(inv) {
				e.step(k, res, stateAfterResponse(res), parentData)
			}
		default: // stFresh or stRunning
			for _, inv := range e.invocations(kid) {
				e.step(k, inv, stPending, parentData)
			}
		}
	}
}

// step appends the event, visits the resulting history, recurses, and
// backtracks.
func (e *enumerator) step(k int, ev history.Event, next txnState, parentData interface{}) {
	prevState := e.states[k]
	prevPending := e.pending[k]
	prevStarted := e.started

	if prevState == stFresh {
		e.started++
	}
	e.states[k] = next
	if ev.Kind == history.Inv {
		e.pending[k] = ev
	}
	e.evs = append(e.evs, ev)
	e.count++

	h := history.MustFromEvents(e.evs)
	data := e.visit(Node{H: h, ParentData: parentData})
	e.walk(data)

	e.evs = e.evs[:len(e.evs)-1]
	e.states[k] = prevState
	e.pending[k] = prevPending
	e.started = prevStarted
}

func (e *enumerator) invocations(k history.TxnID) []history.Event {
	var out []history.Event
	for _, obj := range e.scope.Objects {
		out = append(out, history.Event{Kind: history.Inv, Op: history.OpRead, Txn: k, Obj: obj})
		for _, v := range e.scope.Values {
			out = append(out, history.Event{Kind: history.Inv, Op: history.OpWrite, Txn: k, Obj: obj, Arg: v})
		}
	}
	out = append(out,
		history.Event{Kind: history.Inv, Op: history.OpTryCommit, Txn: k},
		history.Event{Kind: history.Inv, Op: history.OpTryAbort, Txn: k},
	)
	return out
}

func (e *enumerator) responses(inv history.Event) []history.Event {
	k := inv.Txn
	switch inv.Op {
	case history.OpRead:
		out := []history.Event{
			{Kind: history.Res, Op: history.OpRead, Txn: k, Obj: inv.Obj, Val: history.InitValue, Out: history.OutOK},
		}
		for _, v := range e.scope.Values {
			if v != history.InitValue {
				out = append(out, history.Event{Kind: history.Res, Op: history.OpRead, Txn: k, Obj: inv.Obj, Val: v, Out: history.OutOK})
			}
		}
		out = append(out, history.Event{Kind: history.Res, Op: history.OpRead, Txn: k, Obj: inv.Obj, Out: history.OutAbort})
		return out
	case history.OpWrite:
		return []history.Event{
			{Kind: history.Res, Op: history.OpWrite, Txn: k, Obj: inv.Obj, Arg: inv.Arg, Out: history.OutOK},
			{Kind: history.Res, Op: history.OpWrite, Txn: k, Obj: inv.Obj, Arg: inv.Arg, Out: history.OutAbort},
		}
	case history.OpTryCommit:
		return []history.Event{
			{Kind: history.Res, Op: history.OpTryCommit, Txn: k, Out: history.OutCommit},
			{Kind: history.Res, Op: history.OpTryCommit, Txn: k, Out: history.OutAbort},
		}
	default: // OpTryAbort
		return []history.Event{
			{Kind: history.Res, Op: history.OpTryAbort, Txn: k, Out: history.OutAbort},
		}
	}
}

func stateAfterResponse(res history.Event) txnState {
	if res.Out == history.OutAbort || res.Out == history.OutCommit {
		return stDone
	}
	return stRunning
}
