package enum

import (
	"testing"

	"duopacity/internal/history"
	"duopacity/internal/spec"
)

func TestWalkCountsAndWellFormedness(t *testing.T) {
	s := Scope{MaxEvents: 4, MaxTxns: 2, Objects: []history.Var{"X"}, Values: []history.Value{1}}
	seen := 0
	n := Walk(s, func(node Node) interface{} {
		if node.H.Len() > 0 {
			seen++
		}
		if node.H.Len() > s.MaxEvents {
			t.Fatalf("history exceeds scope: %d events", node.H.Len())
		}
		return nil
	})
	if n != seen {
		t.Fatalf("Walk returned %d, visited %d", n, seen)
	}
	if n == 0 {
		t.Fatal("nothing enumerated")
	}
}

func TestWalkSymmetryReduction(t *testing.T) {
	// Transaction 2 never appears before transaction 1.
	s := Scope{MaxEvents: 3, MaxTxns: 2, Objects: []history.Var{"X"}, Values: []history.Value{1}}
	Walk(s, func(node Node) interface{} {
		if node.H.Len() == 0 {
			return nil
		}
		first := node.H.At(0)
		if first.Txn != 1 {
			t.Fatalf("first event from T%d, want T1", first.Txn)
		}
		return nil
	})
}

// exhaustiveScope is the scope used by the theorem tests: every
// well-formed history with at most 7 events of 2 transactions over one
// object and values {0,1}. This includes the Figure 3 and Figure 4 (first
// half) patterns.
func exhaustiveScope() Scope {
	return DefaultScope()
}

// verdicts is the ParentData payload: the parent's du verdict.
type verdicts struct {
	du bool
}

// TestExhaustiveTheorem10AndPrefixClosure verifies, for every history in
// the scope: du-opaque ⟹ opaque (Theorem 10), and du-opaque ⟹ parent
// du-opaque (Corollary 2, contrapositive via the DFS tree).
func TestExhaustiveTheorem10AndPrefixClosure(t *testing.T) {
	duCount, total := 0, 0
	n := Walk(exhaustiveScope(), func(node Node) interface{} {
		du := spec.CheckDUOpacity(node.H).OK
		if node.H.Len() == 0 {
			return verdicts{du: du}
		}
		total++
		if du {
			duCount++
			// Theorem 10.
			if !spec.CheckOpacity(node.H).OK {
				t.Fatalf("du-opaque but not opaque:\n%s", node.H)
			}
			// Corollary 2 via the DFS parent.
			if p, ok := node.ParentData.(verdicts); ok && !p.du {
				t.Fatalf("du-opaque history with non-du-opaque prefix:\n%s", node.H)
			}
		}
		return verdicts{du: du}
	})
	if n != total {
		t.Fatalf("visited %d, Walk reported %d", total, n)
	}
	t.Logf("exhaustively verified %d histories (%d du-opaque)", total, duCount)
	if duCount == 0 || duCount == total {
		t.Fatal("degenerate scope: verdicts do not discriminate")
	}
}

// TestExhaustiveTheorem11 verifies, for every unique-writes history in the
// scope, that opacity and du-opacity coincide.
func TestExhaustiveTheorem11(t *testing.T) {
	checked := 0
	Walk(exhaustiveScope(), func(node Node) interface{} {
		if node.H.Len() == 0 || !spec.UniqueWrites(node.H) {
			return nil
		}
		checked++
		du := spec.CheckDUOpacity(node.H).OK
		op := spec.CheckOpacity(node.H).OK
		if du != op {
			t.Fatalf("unique-writes history with du=%v opacity=%v:\n%s", du, op, node.H)
		}
		return nil
	})
	t.Logf("exhaustively verified Theorem 11 on %d unique-writes histories", checked)
	if checked == 0 {
		t.Fatal("no unique-writes histories in scope")
	}
}

// TestExhaustiveFinalStateNotPrefixClosed re-finds the Figure 3 phenomenon
// by exhaustive search: there exists a history in scope that is
// final-state opaque while its immediate prefix is not.
func TestExhaustiveFinalStateNotPrefixClosed(t *testing.T) {
	type fsv struct{ fs bool }
	found := 0
	Walk(exhaustiveScope(), func(node Node) interface{} {
		fs := spec.CheckFinalStateOpacity(node.H).OK
		if p, ok := node.ParentData.(fsv); ok && fs && !p.fs {
			found++
		}
		return fsv{fs: fs}
	})
	if found == 0 {
		t.Fatal("no Figure-3-style witness found: final-state opacity looked prefix-closed in scope")
	}
	t.Logf("found %d witnesses that final-state opacity is not prefix-closed", found)
}

// TestExhaustiveTwoTxnsCannotSeparate: an exhaustive finding that
// complements Proposition 2 — within the 2-transaction scope, opacity and
// du-opacity coincide on every history. Separating them (Figure 4)
// requires a third transaction re-writing the value read, so the paper's
// counter-example is minimal in its transaction count; the litmus tests
// pin Figure 4 itself as the separator.
func TestExhaustiveTwoTxnsCannotSeparate(t *testing.T) {
	separating := 0
	checked := 0
	Walk(exhaustiveScope(), func(node Node) interface{} {
		if node.H.Len() == 0 {
			return nil
		}
		checked++
		if !spec.CheckDUOpacity(node.H).OK && spec.CheckOpacity(node.H).OK {
			separating++
		}
		return nil
	})
	if separating != 0 {
		t.Fatalf("%d two-transaction histories separate opacity from du-opacity — "+
			"unexpected: the known minimal separator (Figure 4) needs three transactions", separating)
	}
	t.Logf("verified on %d histories: no 2-transaction history over one object separates opacity from du-opacity", checked)
}
