package harness

import (
	"duopacity/internal/recorder"
	"duopacity/internal/stm"
	"duopacity/internal/stm/engines"
)

// This file is the single home of the deterministic stepwise execution
// model shared by the seeded sampler (RunInterleaved) and the exhaustive
// schedule explorer (ExplorePlan): virtual threads, the engine-aware
// exclusion policy deciding which threads may take a step without
// blocking the one real goroutine, and the stepper that advances a thread
// by one t-operation. Keeping sampler and explorer on the same stepper is
// what makes the explorer's claim meaningful — the set of schedules it
// enumerates is, by construction, exactly the set the sampler draws from
// (pinned by TestExploreContainsSampledSchedules).

// exclusion names the blocking discipline of an engine, so the stepwise
// scheduler avoids steps that would block the single real goroutine.
type exclusion uint8

const (
	// exclNone: every operation either completes or aborts; any
	// interleaving is schedulable (tl2, norec, dstm, etl, etl+v).
	exclNone exclusion = iota
	// exclWriters: the first write blocks while another transaction that
	// has written is still live (ple's global writer lock).
	exclWriters
	// exclWholeTxn: beginning a transaction blocks while any transaction
	// is live (gl's global lock held from Begin to completion).
	exclWholeTxn
)

// schedulePolicy is the engine-aware exclusion policy: the one piece of
// knowledge about engine blocking that the stepwise scheduler needs.
type schedulePolicy struct {
	excl exclusion
}

// policyFor derives the exclusion policy from the engine's locking
// discipline. The contention-management suffix is irrelevant: every cm
// policy's waits are bounded with an escalation to abort, so a CM'd
// engine still satisfies its base engine's admissibility rule.
func policyFor(engine string) schedulePolicy {
	switch engines.Base(engine) {
	case "gl":
		return schedulePolicy{excl: exclWholeTxn}
	case "ple":
		return schedulePolicy{excl: exclWriters}
	default:
		return schedulePolicy{excl: exclNone}
	}
}

// admissible reports whether stepping t cannot block, under the engine's
// exclusion policy, given the states of all threads.
func (p schedulePolicy) admissible(threads []*vthread, t *vthread) bool {
	switch p.excl {
	case exclWholeTxn:
		// Only beginning a transaction blocks; once inside, the thread
		// holds the global lock and every step completes.
		if t.tx != nil {
			return true
		}
		for _, o := range threads {
			if o != t && o.tx != nil {
				return false
			}
		}
		return true
	case exclWriters:
		// Only the first write of an attempt blocks, and only while
		// another live transaction holds the writer lock. The begin step
		// also executes the attempt's first operation, so a thread between
		// transactions is gated on operation 0.
		if t.wrote {
			return true
		}
		next := t.opIdx
		if t.tx == nil {
			next = 0
		}
		ops := t.plan[t.txnIdx]
		if next >= len(ops) || ops[next].Read {
			return true // commit and reads never block in ple
		}
		for _, o := range threads {
			if o != t && o.tx != nil && o.wrote {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// vthread is one virtual thread of a stepwise execution.
type vthread struct {
	plan []stm.PlanTxn

	txnIdx   int           // index of the current transaction in plan
	opIdx    int           // next operation of the current attempt
	attempts int           // attempts used for the current transaction
	tx       *recorder.Txn // nil between transactions
	wrote    bool          // current attempt has performed a write
	backoff  bool          // aborted; waits for another thread to t-complete
	done     bool
}

// threadsFor builds fresh virtual threads for a plan.
func threadsFor(p stm.Plan) []*vthread {
	threads := make([]*vthread, len(p.Threads))
	for g := range threads {
		threads[g] = &vthread{plan: p.Threads[g]}
	}
	return threads
}

// stepper advances virtual threads one t-operation at a time against a
// recorded engine. It contains no scheduling choice of its own: callers
// pick a thread from runnable() and step() it, so the recorded history is
// a pure function of the sequence of choices (the schedule).
type stepper struct {
	rec         *recorder.Recorder
	threads     []*vthread
	policy      schedulePolicy
	maxAttempts int

	vals    int64 // written-value source (unique writes)
	commits int64
	aborts  int64
	failed  int64
}

// runnable appends the indexes of the threads that may take a step into
// buf (reused across calls) and returns it. When every live thread is
// backing off, the backoffs are lifted and the set recomputed — exactly
// the sampler's historical semantics — so an empty result means the run
// is complete.
func (s *stepper) runnable(buf []int) []int {
	for {
		buf = buf[:0]
		for i, t := range s.threads {
			if !t.done && !t.backoff && s.policy.admissible(s.threads, t) {
				buf = append(buf, i)
			}
		}
		if len(buf) > 0 {
			return buf
		}
		if !s.clearBackoffs() {
			return buf // all threads done
		}
	}
}

// clearBackoffs lifts every backoff; it reports whether any thread was
// waiting (false means the run is complete).
func (s *stepper) clearBackoffs() bool {
	any := false
	for _, t := range s.threads {
		if !t.done && t.backoff {
			t.backoff = false
			any = true
		}
	}
	return any
}

// step advances t by one t-operation (beginning the transaction first when
// needed) and resolves commits, aborts and retries.
func (s *stepper) step(t *vthread) {
	if t.tx == nil {
		t.tx = s.rec.Begin()
		t.attempts++
		t.opIdx = 0
		t.wrote = false
	}
	ops := t.plan[t.txnIdx]
	if t.opIdx == len(ops) {
		// All operations done: this step is the commit.
		if err := t.tx.Commit(); err != nil {
			s.resolveAbort(t)
			return
		}
		s.commits++
		s.aborts += int64(t.attempts - 1)
		s.advance(t)
		return
	}
	op := ops[t.opIdx]
	var err error
	if op.Read {
		_, err = t.tx.Read(op.Obj)
	} else {
		s.vals++
		err = t.tx.Write(op.Obj, s.vals)
		if err == nil {
			t.wrote = true
		}
	}
	if err != nil {
		t.tx.Abort() // no-op when the recorder already observed A_k
		s.resolveAbort(t)
		return
	}
	t.opIdx++
}

// resolveAbort handles a failed attempt: either the transaction retries
// (after backing off until some other thread t-completes a transaction,
// which bounds retry storms in the single-threaded schedule) or it has
// exhausted its attempts and fails.
func (s *stepper) resolveAbort(t *vthread) {
	t.tx = nil
	t.wrote = false
	t.opIdx = 0
	if t.attempts >= s.maxAttempts {
		s.failed++
		s.aborts += int64(t.attempts - 1)
		s.advance(t)
		return
	}
	t.backoff = true
}

// advance moves t to its next planned transaction and lifts the backoff of
// threads waiting on this one's completion.
func (s *stepper) advance(t *vthread) {
	t.txnIdx++
	t.opIdx = 0
	t.attempts = 0
	t.tx = nil
	t.wrote = false
	if t.txnIdx == len(t.plan) {
		t.done = true
	}
	for _, o := range s.threads {
		if o != t {
			o.backoff = false
		}
	}
}
