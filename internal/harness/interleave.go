package harness

import (
	"math/rand"

	"duopacity/internal/history"
	"duopacity/internal/recorder"
	"duopacity/internal/stm/engines"
)

// RunInterleaved executes the workload's plan deterministically: the
// workload's goroutines become virtual threads stepped one t-operation at a
// time by a single real goroutine, in an order drawn from the workload
// seed. The recorded history is a pure function of the workload — it does
// not depend on GOMAXPROCS or the Go scheduler — which makes certification
// reproducible across machines and deterministically exposes interleavings
// that real goroutines hit only under lucky preemption (on a single-CPU
// machine, almost never). In particular, an engine with in-place writes
// ("ple", "etl") is steered through the read-an-uncommitted-write window
// whenever the plan contains it.
//
// Engines that block inside an operation are stepped under an exclusion
// policy derived from the engine's locking discipline (the shared
// schedulePolicy of policy.go, also used by ExplorePlan), so the
// single-threaded scheduler never deadlocks; for "gl", whose global lock
// spans the whole transaction, this degenerates to the serial execution
// the real engine produces anyway.
//
// RunInterleaved samples exactly one schedule of the workload's plan; the
// exhaustive counterpart enumerating every schedule the policy allows is
// ExplorePlan.
func RunInterleaved(w Workload) (*history.History, RunStats, error) {
	return runInterleaved(w, nil)
}

// runInterleaved is RunInterleaved with an optional event tap attached to
// the recorder before the schedule starts (the online-certification
// hook); the tap observes the deterministic event order as it is
// produced.
func runInterleaved(w Workload, tap func(history.Event)) (*history.History, RunStats, error) {
	w = w.withDefaults()
	eng, err := engines.New(w.Engine, w.Objects)
	if err != nil {
		return nil, RunStats{}, err
	}
	rec := recorder.New(eng)
	if tap != nil {
		rec.Tap(tap)
	}
	st := &stepper{
		rec:         rec,
		threads:     threadsFor(planFor(w)),
		policy:      policyFor(w.Engine),
		maxAttempts: w.MaxAttempts,
	}
	rng := rand.New(rand.NewSource(w.Seed*6364136223846793005 + 1442695040888963407))
	buf := make([]int, 0, len(st.threads))
	for {
		r := st.runnable(buf)
		if len(r) == 0 {
			break // all threads done
		}
		st.step(st.threads[r[rng.Intn(len(r))]])
	}
	return rec.History(), RunStats{
		Engine:  w.Engine,
		Commits: st.commits,
		Aborts:  st.aborts,
		Failed:  st.failed,
	}, nil
}
