package harness

import (
	"math/rand"

	"duopacity/internal/history"
	"duopacity/internal/recorder"
	"duopacity/internal/stm/engines"
)

// RunInterleaved executes the workload's plan deterministically: the
// workload's goroutines become virtual threads stepped one t-operation at a
// time by a single real goroutine, in an order drawn from the workload
// seed. The recorded history is a pure function of the workload — it does
// not depend on GOMAXPROCS or the Go scheduler — which makes certification
// reproducible across machines and deterministically exposes interleavings
// that real goroutines hit only under lucky preemption (on a single-CPU
// machine, almost never). In particular, an engine with in-place writes
// ("ple", "etl") is steered through the read-an-uncommitted-write window
// whenever the plan contains it.
//
// Engines that block inside an operation are stepped under an exclusion
// policy derived from the engine's locking discipline (see runnable), so
// the single-threaded scheduler never deadlocks; for "gl", whose global
// lock spans the whole transaction, this degenerates to the serial
// execution the real engine produces anyway.
func RunInterleaved(w Workload) (*history.History, RunStats, error) {
	return runInterleaved(w, nil)
}

// runInterleaved is RunInterleaved with an optional event tap attached to
// the recorder before the schedule starts (the online-certification
// hook); the tap observes the deterministic event order as it is
// produced.
func runInterleaved(w Workload, tap func(history.Event)) (*history.History, RunStats, error) {
	w = w.withDefaults()
	eng, err := engines.New(w.Engine, w.Objects)
	if err != nil {
		return nil, RunStats{}, err
	}
	rec := recorder.New(eng)
	if tap != nil {
		rec.Tap(tap)
	}
	plans := plan(w)

	threads := make([]*vthread, w.Goroutines)
	for g := range threads {
		threads[g] = &vthread{plan: plans[g]}
	}
	rng := rand.New(rand.NewSource(w.Seed*6364136223846793005 + 1442695040888963407))
	sched := scheduler{
		w:       w,
		rec:     rec,
		threads: threads,
		rng:     rng,
		excl:    exclusionFor(w.Engine),
	}
	sched.run()
	return rec.History(), RunStats{
		Engine:  w.Engine,
		Commits: sched.commits,
		Aborts:  sched.aborts,
		Failed:  sched.failed,
	}, nil
}

// exclusion names the blocking discipline of an engine, so the stepwise
// scheduler avoids steps that would block the single real goroutine.
type exclusion uint8

const (
	// exclNone: every operation either completes or aborts; any
	// interleaving is schedulable (tl2, norec, dstm, etl, etl+v).
	exclNone exclusion = iota
	// exclWriters: the first write blocks while another transaction that
	// has written is still live (ple's global writer lock).
	exclWriters
	// exclWholeTxn: beginning a transaction blocks while any transaction
	// is live (gl's global lock held from Begin to completion).
	exclWholeTxn
)

func exclusionFor(engine string) exclusion {
	switch engine {
	case "gl":
		return exclWholeTxn
	case "ple":
		return exclWriters
	default:
		return exclNone
	}
}

// vthread is one virtual thread of the interleaved execution.
type vthread struct {
	plan [][]txnOp

	txnIdx   int           // index of the current transaction in plan
	opIdx    int           // next operation of the current attempt
	attempts int           // attempts used for the current transaction
	tx       *recorder.Txn // nil between transactions
	wrote    bool          // current attempt has performed a write
	backoff  bool          // aborted; waits for another thread to t-complete
	done     bool
}

type scheduler struct {
	w       Workload
	rec     *recorder.Recorder
	threads []*vthread
	rng     *rand.Rand
	excl    exclusion

	vals    int64 // written-value source (unique writes)
	commits int64
	aborts  int64
	failed  int64
}

func (s *scheduler) run() {
	runnable := make([]int, 0, len(s.threads))
	for {
		runnable = runnable[:0]
		for i, t := range s.threads {
			if !t.done && !t.backoff && s.admissible(t) {
				runnable = append(runnable, i)
			}
		}
		if len(runnable) == 0 {
			if !s.clearBackoffs() {
				return // all threads done
			}
			continue
		}
		s.step(s.threads[runnable[s.rng.Intn(len(runnable))]])
	}
}

// clearBackoffs lifts every backoff; it reports whether any thread was
// waiting (false means the run is complete).
func (s *scheduler) clearBackoffs() bool {
	any := false
	for _, t := range s.threads {
		if !t.done && t.backoff {
			t.backoff = false
			any = true
		}
	}
	return any
}

// admissible reports whether stepping t cannot block, under the engine's
// exclusion policy.
func (s *scheduler) admissible(t *vthread) bool {
	switch s.excl {
	case exclWholeTxn:
		// Only beginning a transaction blocks; once inside, the thread
		// holds the global lock and every step completes.
		if t.tx != nil {
			return true
		}
		for _, o := range s.threads {
			if o != t && o.tx != nil {
				return false
			}
		}
		return true
	case exclWriters:
		// Only the first write of an attempt blocks, and only while
		// another live transaction holds the writer lock. The begin step
		// also executes the attempt's first operation, so a thread between
		// transactions is gated on operation 0.
		if t.wrote {
			return true
		}
		next := t.opIdx
		if t.tx == nil {
			next = 0
		}
		ops := t.plan[t.txnIdx]
		if next >= len(ops) || ops[next].read {
			return true // commit and reads never block in ple
		}
		for _, o := range s.threads {
			if o != t && o.tx != nil && o.wrote {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// step advances t by one t-operation (beginning the transaction first when
// needed) and resolves commits, aborts and retries.
func (s *scheduler) step(t *vthread) {
	if t.tx == nil {
		t.tx = s.rec.Begin()
		t.attempts++
		t.opIdx = 0
		t.wrote = false
	}
	ops := t.plan[t.txnIdx]
	if t.opIdx == len(ops) {
		// All operations done: this step is the commit.
		if err := t.tx.Commit(); err != nil {
			s.resolveAbort(t)
			return
		}
		s.commits++
		s.aborts += int64(t.attempts - 1)
		s.advance(t)
		return
	}
	op := ops[t.opIdx]
	var err error
	if op.read {
		_, err = t.tx.Read(op.obj)
	} else {
		s.vals++
		err = t.tx.Write(op.obj, s.vals)
		if err == nil {
			t.wrote = true
		}
	}
	if err != nil {
		t.tx.Abort() // no-op when the recorder already observed A_k
		s.resolveAbort(t)
		return
	}
	t.opIdx++
}

// resolveAbort handles a failed attempt: either the transaction retries
// (after backing off until some other thread t-completes a transaction,
// which bounds retry storms in the single-threaded schedule) or it has
// exhausted its attempts and fails.
func (s *scheduler) resolveAbort(t *vthread) {
	t.tx = nil
	t.wrote = false
	t.opIdx = 0
	if t.attempts >= s.w.MaxAttempts {
		s.failed++
		s.aborts += int64(t.attempts - 1)
		s.advance(t)
		return
	}
	t.backoff = true
}

// advance moves t to its next planned transaction and lifts the backoff of
// threads waiting on this one's completion.
func (s *scheduler) advance(t *vthread) {
	t.txnIdx++
	t.opIdx = 0
	t.attempts = 0
	t.tx = nil
	t.wrote = false
	if t.txnIdx == len(t.plan) {
		t.done = true
	}
	for _, o := range s.threads {
		if o != t {
			o.backoff = false
		}
	}
}
