package harness

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"duopacity/internal/chaos"
	"duopacity/internal/gen"
	"duopacity/internal/histio"
	"duopacity/internal/history"
	"duopacity/internal/recorder"
	"duopacity/internal/spec"
	"duopacity/internal/stm/engines"
)

// This file is the end-to-end driver of the chaos layer (package chaos):
// ChaosSoak runs randomized fault schedules through all three stages of
// the certification pipeline — engine, stream, farm — and asserts the
// soundness-under-chaos invariant on each: faults may turn verdicts into
// honest undecided results or reported-and-rejected input, but they never
// flip OK↔violation against a fault-free differential of the same
// history. Any flip is recorded in ChaosReport.Flips; CI runs the soak
// under -race with a fixed seed grid and fails on a non-empty list. A
// verdict-disagreement flip is shrunk before reporting (gen.Shrink with
// the disagreement as the interestingness predicate — the differential
// analogue of gen.ShrinkViolation), so the flip entry carries a minimal
// reproducing history in the histio text format, not just a seed.

// ChaosFarmFunc is the farm stage of the soak, injected by the caller
// because package checkfarm sits above harness: it certifies h against c
// under the fault schedule attached to ctx (chaos.WithFarmFaults) and
// returns the verdict together with the degradation reason the farm
// reported, or "" for a clean run. checkfarm wires this to CheckBatch in
// its soak test and cmd/stmbench wires it for the chaos subcommand.
type ChaosFarmFunc func(ctx context.Context, h *history.History, c spec.Criterion, nodeLimit int) (spec.Verdict, string, error)

// ChaosConfig parameterizes a soak. The zero value is runnable: kill-safe
// engines, a modest fault profile, tiny workloads (soundness flips need
// crashy schedules, not big histories — every trial batch-checks its
// history as the differential, so trials must stay cheap).
type ChaosConfig struct {
	// Engines to soak (default tl2, norec, dstm — the kill-safe set, so
	// thread-kill faults stay enabled; other engines run with kills
	// downgraded to spurious aborts, see chaos.KillSafe).
	Engines []string
	// Trials per engine (default 50). Each trial is one randomized fault
	// schedule through all three stages.
	Trials int
	// Seed anchors the whole grid; trial t of engine i derives its seed
	// deterministically, so a soak replays exactly.
	Seed int64
	// Criterion to certify against (default spec.DUOpacity).
	Criterion spec.Criterion
	// NodeLimit bounds each check and monitor search (default 200_000).
	NodeLimit int
	// Profile is the engine-fault profile; its Seed field is overwritten
	// per trial. A zero profile defaults to {SpuriousAbort: 0.15,
	// CommitDelay: 0.25} — pass any negative probability to really disable
	// engine faults.
	Profile chaos.Profile
	// Objects, Goroutines, Txns (per goroutine) and Ops (per transaction)
	// shape each trial's workload (defaults 4, 3, 2, 3).
	Objects, Goroutines, Txns, Ops int
	// Farm, when set, runs the farm stage each trial.
	Farm ChaosFarmFunc
}

func (cfg ChaosConfig) withDefaults() ChaosConfig {
	if len(cfg.Engines) == 0 {
		cfg.Engines = []string{"tl2", "norec", "dstm", "pdur"}
	}
	if cfg.Trials <= 0 {
		cfg.Trials = 50
	}
	if cfg.Criterion == 0 {
		cfg.Criterion = spec.DUOpacity
	}
	if cfg.NodeLimit <= 0 {
		cfg.NodeLimit = 200_000
	}
	if cfg.Profile.SpuriousAbort == 0 && cfg.Profile.CommitDelay == 0 {
		cfg.Profile.SpuriousAbort = 0.15
		cfg.Profile.CommitDelay = 0.25
	}
	if cfg.Profile.SpuriousAbort < 0 {
		cfg.Profile.SpuriousAbort = 0
	}
	if cfg.Profile.CommitDelay < 0 {
		cfg.Profile.CommitDelay = 0
	}
	if cfg.Objects <= 0 {
		cfg.Objects = 4
	}
	if cfg.Goroutines <= 0 {
		cfg.Goroutines = 3
	}
	if cfg.Txns <= 0 {
		cfg.Txns = 2
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 3
	}
	return cfg
}

// ChaosReport aggregates a soak. Flips is the soundness ledger: it must
// come back empty — every entry is a fault that changed a decided verdict
// (or slipped junk past the stream layer), which the chaos contract
// forbids.
type ChaosReport struct {
	// Trials actually run (Engines × Trials).
	Trials int
	// SpuriousAborts and CommitDelays total the engine faults injected;
	// Kills counts transactions abandoned mid-flight.
	SpuriousAborts, CommitDelays int64
	Kills                        int
	// JunkInjected and JunkRejected account the stream stage; the contract
	// is exact equality (every junk event rejected, side-effect-free).
	JunkInjected, JunkRejected int
	// Truncated counts trials whose stream was cut short of the full
	// history.
	Truncated int
	// FarmDegraded counts farm-stage runs that reported degradation (each
	// must have returned an undecided verdict).
	FarmDegraded int
	// Undecided counts trials whose fault-free reference check was itself
	// undecided (those trials assert nothing about decided agreement).
	Undecided int
	// Flips lists soundness violations, capped at 32 entries.
	Flips []string
}

// shrinkDisagreement minimizes h while the differential disagreement
// keeps reproducing (gen.Shrink in the style of gen.ShrinkViolation, with
// the disagreement as the interestingness predicate) and renders the
// minimal history in the histio text format, so a flip entry is a
// self-contained reproduction and not just a seed. Shrinking only runs on
// a flip — never in a healthy soak — so its cost is irrelevant. The
// stream-stage predicate re-feeds a junk-free monitor; a disagreement
// that somehow needs the junk interleaving to reproduce is reported
// unshrunk (gen.Shrink returns h when the predicate fails on it).
func shrinkDisagreement(h *history.History, disagree func(*history.History) bool) string {
	min := gen.Shrink(h, disagree)
	if !disagree(min) {
		return " [disagreement did not reproduce in isolation; full history kept]"
	}
	return fmt.Sprintf(" [shrunk to %d events:\n%s]", min.Len(), histio.FormatString(min))
}

func (r *ChaosReport) flip(format string, args ...any) {
	if len(r.Flips) < 32 {
		r.Flips = append(r.Flips, fmt.Sprintf(format, args...))
	}
}

// String renders the soak's one-line summary.
func (r ChaosReport) String() string {
	return fmt.Sprintf(
		"chaos soak: trials=%d aborts=%d delays=%d kills=%d junk=%d/%d truncated=%d degraded=%d undecided=%d flips=%d",
		r.Trials, r.SpuriousAborts, r.CommitDelays, r.Kills,
		r.JunkRejected, r.JunkInjected, r.Truncated, r.FarmDegraded, r.Undecided, len(r.Flips))
}

// ChaosSoak runs the configured grid of randomized fault schedules and
// returns the aggregated report. Each trial:
//
//  1. Engine stage: runs a small concurrent workload on a chaos-wrapped
//     engine (spurious aborts, delayed commits, and — on kill-safe
//     engines — transactions abandoned mid-flight), records the history,
//     and batch-checks it fault-free: that verdict is the trial's
//     reference. A deferred-update engine whose history becomes violating
//     is a flip — the injected faults are legal TM behavior, so Theorem
//     11's guarantee must survive them.
//  2. Stream stage: replays the recorded events into a fresh monitor with
//     guaranteed-ill-formed junk (chaos.JunkSource) interleaved and an
//     optional truncation cut. Every junk event must be rejected without
//     side effects, and the monitor's verdict must agree with a batch
//     check of exactly the prefix it accepted whenever both decide.
//  3. Farm stage (when cfg.Farm is set): certifies the history through
//     the caller's farm hook under an injected worker-fault schedule —
//     recovered panics must leave the verdict equal to the reference,
//     and degraded runs must come back undecided, never decided-wrong.
//
// An error return is an infrastructure failure (unknown engine, monitor
// construction); soundness violations are data, in Flips.
func ChaosSoak(cfg ChaosConfig) (ChaosReport, error) {
	cfg = cfg.withDefaults()
	var rep ChaosReport
	for ei, eng := range cfg.Engines {
		for t := 0; t < cfg.Trials; t++ {
			seed := cfg.Seed + int64(ei)*1_000_003 + int64(t)*7919
			if err := soakTrial(cfg, eng, seed, &rep); err != nil {
				return rep, err
			}
		}
	}
	return rep, nil
}

// soakTrial runs one fault schedule through the three stages.
func soakTrial(cfg ChaosConfig, engine string, seed int64, rep *ChaosReport) error {
	rep.Trials++

	// Stage 1: engine faults. Real goroutines drive a chaos-wrapped engine
	// under the recorder; per-goroutine RNGs keep fault decisions
	// deterministic per trial even though the interleaving is not.
	base, err := engines.New(engine, cfg.Objects)
	if err != nil {
		return err
	}
	prof := cfg.Profile
	prof.Seed = seed
	ceng := chaos.Wrap(base, prof)
	rec := recorder.New(ceng)
	killSafe := chaos.KillSafe(engine)

	var vals atomic.Int64
	var kills atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < cfg.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(g)*104_729))
			for txn := 0; txn < cfg.Txns; txn++ {
				// A kill abandons the transaction mid-flight — no commit, no
				// abort, the recorded transaction stays live in the history.
				// Only legal on kill-safe engines; elsewhere the draw is
				// ignored (the fault downgrades to the profile's spurious
				// aborts).
				kill := killSafe && rng.Float64() < 0.15
				killAt := rng.Intn(cfg.Ops)
				for attempt := 0; attempt < 6; attempt++ {
					tx := rec.Begin()
					aborted, abandoned := false, false
					for op := 0; op < cfg.Ops; op++ {
						if kill && attempt == 0 && op == killAt {
							kills.Add(1)
							abandoned = true
							break
						}
						if rng.Float64() < 0.5 {
							if _, rerr := tx.Read(rng.Intn(cfg.Objects)); rerr != nil {
								aborted = true
								break
							}
						} else if werr := tx.Write(rng.Intn(cfg.Objects), vals.Add(1)); werr != nil {
							aborted = true
							break
						}
					}
					if abandoned {
						break
					}
					if aborted {
						continue
					}
					if tx.Commit() == nil {
						break
					}
				}
			}
		}(g)
	}
	wg.Wait()

	st := ceng.Stats()
	rep.SpuriousAborts += st.SpuriousAborts
	rep.CommitDelays += st.CommitDelays
	rep.Kills += int(kills.Load())

	hf := rec.History()
	crit := cfg.Criterion
	vref := spec.Check(hf, crit, spec.WithNodeLimit(cfg.NodeLimit))
	if vref.Undecided {
		rep.Undecided++
	}
	if engines.DeferredUpdate(engine) && !vref.Undecided && !vref.OK {
		rep.flip("engine=%s seed=%d: deferred-update history became violating under engine faults: %s",
			engine, seed, vref.Reason)
	}

	// Stage 2: stream faults. Feed the recorded events into a fresh
	// monitor with junk interleaved; the monitor's state must stay exactly
	// "the accepted prefix", so its verdict is compared against a batch
	// check of that prefix.
	evs := hf.Events()
	cut := len(evs)
	srng := rand.New(rand.NewSource(seed ^ 0x5dee_ce66d))
	if len(evs) > 0 && srng.Float64() < 0.3 {
		cut = srng.Intn(len(evs) + 1)
		if cut < len(evs) {
			rep.Truncated++
		}
	}
	m, err := spec.NewMonitor(crit, spec.WithNodeLimit(cfg.NodeLimit))
	if err != nil {
		return err
	}
	js := chaos.NewJunkSource(seed)
	for i := 0; i < cut; i++ {
		if srng.Float64() < 0.2 {
			junk, desc := js.Junk()
			before := m.Len()
			if _, aerr := m.Append(junk); aerr == nil {
				rep.flip("engine=%s seed=%d: junk event accepted (%s): %v", engine, seed, desc, junk)
			} else {
				rep.JunkRejected++
				if m.Len() != before {
					rep.flip("engine=%s seed=%d: junk rejection had side effects (%s)", engine, seed, desc)
				}
			}
		}
		if _, aerr := m.Append(evs[i]); aerr != nil {
			rep.flip("engine=%s seed=%d: monitor rejected well-formed recorded event %v: %v",
				engine, seed, evs[i], aerr)
			return nil
		}
		js.Observe(evs[i])
	}
	rep.JunkInjected += js.Injected()

	mv := m.Verdict()
	pv := spec.Check(hf.Prefix(cut), crit, spec.WithNodeLimit(cfg.NodeLimit))
	if !mv.Undecided && !pv.Undecided && mv.OK != pv.OK {
		rep.flip("engine=%s seed=%d cut=%d/%d: monitor said ok=%v but batch check of the same prefix said ok=%v (%s / %s)%s",
			engine, seed, cut, len(evs), mv.OK, pv.OK, mv.Reason, pv.Reason,
			shrinkDisagreement(hf.Prefix(cut), func(g *history.History) bool {
				gm, merr := spec.NewMonitor(crit, spec.WithNodeLimit(cfg.NodeLimit))
				if merr != nil {
					return false
				}
				for _, e := range g.Events() {
					if _, aerr := gm.Append(e); aerr != nil {
						return false
					}
				}
				gv := gm.Verdict()
				gb := spec.Check(g, crit, spec.WithNodeLimit(cfg.NodeLimit))
				return !gv.Undecided && !gb.Undecided && gv.OK != gb.OK
			}))
	}
	if !vref.Undecided && vref.OK && !mv.Undecided && !mv.OK {
		// Prefix closure (Corollary 2): an accepted history has no
		// violating prefix, truncated or not.
		rep.flip("engine=%s seed=%d cut=%d/%d: prefix of an accepted history latched a violation: %s",
			engine, seed, cut, len(evs), mv.Reason)
	}

	// Stage 3: farm faults, against the caller's hook. Schedules rotate
	// through recovered panics (below the farm's retry bound of 3),
	// panics past the bound (must degrade), and slow shards.
	if cfg.Farm != nil {
		ff := &chaos.FarmFaults{}
		frng := rand.New(rand.NewSource(seed ^ 0x2545_F491_4F6C_DD1D))
		forceDegrade := false
		switch frng.Intn(3) {
		case 0:
			ff.PanicEvery, ff.PanicAttempts = 1, 1+frng.Intn(2)
		case 1:
			ff.PanicEvery, ff.PanicAttempts = 1, 8
			forceDegrade = true
		default:
			ff.SlowEvery, ff.Delay = 1, time.Millisecond
		}
		ctx := chaos.WithFarmFaults(context.Background(), ff)
		fv, degraded, ferr := cfg.Farm(ctx, hf, crit, cfg.NodeLimit)
		if ferr != nil {
			return fmt.Errorf("chaos soak: farm stage (engine=%s seed=%d): %w", engine, seed, ferr)
		}
		if degraded != "" {
			rep.FarmDegraded++
			if !fv.Undecided {
				rep.flip("engine=%s seed=%d: degraded farm run returned a decided verdict (ok=%v): %s",
					engine, seed, fv.OK, degraded)
			}
		} else {
			if forceDegrade {
				rep.flip("engine=%s seed=%d: farm swallowed a past-retries panic schedule without reporting degradation",
					engine, seed)
			}
			if !fv.Undecided && !vref.Undecided && fv.OK != vref.OK {
				rep.flip("engine=%s seed=%d: farm verdict flipped vs fault-free reference (farm ok=%v, ref ok=%v)%s",
					engine, seed, fv.OK, vref.OK,
					shrinkDisagreement(hf, func(g *history.History) bool {
						gv, _, gerr := cfg.Farm(ctx, g, crit, cfg.NodeLimit)
						if gerr != nil {
							return false
						}
						gr := spec.Check(g, crit, spec.WithNodeLimit(cfg.NodeLimit))
						return !gv.Undecided && !gr.Undecided && gv.OK != gr.OK
					}))
			}
		}
	}
	return nil
}
