package harness

import (
	"strings"
	"testing"
)

// Disjoint workloads confine each goroutine to its own contiguous
// object block.
func TestPlanForDisjoint(t *testing.T) {
	w := Workload{
		Engine: "tl2", Objects: 32, Goroutines: 4,
		TxnsPerGoroutine: 20, OpsPerTxn: 4, Seed: 7, Disjoint: true,
	}
	p := PlanOf(w)
	for g, txns := range p.Threads {
		lo, hi := g*8, (g+1)*8
		for _, ops := range txns {
			for _, op := range ops {
				if op.Obj < lo || op.Obj >= hi {
					t.Fatalf("goroutine %d accesses object %d outside block [%d,%d)", g, op.Obj, lo, hi)
				}
			}
		}
	}
	// Objects grow to cover every goroutine when too small.
	small := Workload{Engine: "tl2", Objects: 2, Goroutines: 4, Disjoint: true}.withDefaults()
	if small.Objects < small.Goroutines {
		t.Fatalf("Objects = %d not grown to Goroutines = %d", small.Objects, small.Goroutines)
	}
}

func TestScaleWorkloadShapes(t *testing.T) {
	for _, kind := range ScaleWorkloadNames() {
		w, err := ScaleWorkload(kind, "tl2", 8, 100, 1)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if w.Goroutines != 8 || w.TxnsPerGoroutine != 100 {
			t.Errorf("%s: shape lost goroutines/txns: %+v", kind, w)
		}
	}
	if w, _ := ScaleWorkload("disjoint", "pdur", 8, 100, 1); !w.Disjoint || w.Objects != 128 {
		t.Errorf("disjoint shape: %+v", w)
	}
	if _, err := ScaleWorkload("bogus", "tl2", 1, 1, 0); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestScaleCurvesSmoke(t *testing.T) {
	cfg := ScaleConfig{
		Engines:          []string{"tl2", "pdur+backoff"},
		Workloads:        []string{"write-hotspot"},
		Goroutines:       []int{1, 2},
		TxnsPerGoroutine: 200,
		Repeat:           1,
		Seed:             5,
	}
	points, err := ScaleCurves(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	for _, p := range points {
		if p.TxnPerSec <= 0 {
			t.Errorf("%s/%s/g%d: no throughput", p.Engine, p.Workload, p.Goroutines)
		}
		if p.Failed != 0 {
			t.Errorf("%s/%s/g%d: %d failed txns", p.Engine, p.Workload, p.Goroutines, p.Failed)
		}
	}
	table := FormatScaleTable(points)
	for _, want := range []string{"write-hotspot", "tl2", "pdur+backoff", "g=1", "g=2"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	// Invalid engine names fail before measurement.
	if _, err := ScaleCurves(ScaleConfig{Engines: []string{"tl2+bogus"}}); err == nil {
		t.Error("invalid engine accepted")
	}
}
