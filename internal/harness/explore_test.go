package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"duopacity/internal/histio"
	"duopacity/internal/history"
	"duopacity/internal/spec"
	"duopacity/internal/stm"
)

// pleLitmusPlan is the minimal plan separating deferred-update from
// in-place engines: one writer, one double reader of the same object. On
// an in-place engine some schedule lets the reader observe the write
// before the writer invokes tryC — precisely the deferred-update
// violation of the paper's Definition 3 — while deferred-update engines
// admit no such schedule.
const pleLitmusPlan = "w0\nr0 r0"

// abortedReaderPlan mirrors the shape of the pinned
// tms2_aborted_reader.hist divergence: a reader that validates against an
// overtaking committed writer and aborts at its own tryC. Deferred-update
// engines stay du-opaque on every schedule (du-opacity serializes the
// aborted reader before the writer), matching that golden's du verdict.
const abortedReaderPlan = "r0 r0\nw0 w0"

// naiveConfig enumerates the raw schedule space: no prunings, every
// schedule run to completion — the reference the pruned explorer is
// differentially tested against.
func naiveConfig() ExploreConfig {
	return ExploreConfig{DisableSleepSets: true, DisableSymmetry: true, DisablePrefixCut: true}
}

// TestExploreProvesDeferredUpdateEngines is the CI gate for the
// exploration side of experiment S1: on the litmus plan, every schedule
// of the deferred-update engines is enumerated — full enumeration, zero
// violations — so the engines are *proven* du-opaque per plan, not
// sampled (the ROADMAP's "Interleaved scheduler coverage" item).
func TestExploreProvesDeferredUpdateEngines(t *testing.T) {
	for _, plan := range []string{pleLitmusPlan, abortedReaderPlan} {
		p := stm.MustParsePlan(plan)
		for _, eng := range []string{"tl2", "norec", "gl", "dstm", "pdur", "tl2+karma", "pdur+backoff"} {
			r, err := ExplorePlan(eng, p, ExploreConfig{})
			if err != nil {
				t.Fatalf("%s: %v", eng, err)
			}
			if r.Outcome != ProvenDUOpaque {
				t.Errorf("%s on %q: outcome %s, want proven", eng, plan, r.Outcome)
			}
			if r.Schedules == 0 || r.Violations != 0 || r.Undecided != 0 {
				t.Errorf("%s on %q: schedules=%d violations=%d undecided=%d",
					eng, plan, r.Schedules, r.Violations, r.Undecided)
			}
		}
	}
}

// TestExploreProvesAtAcceptanceCeiling is the CI gate at the exploration
// size ceiling the acceptance criteria name (4 transactions / 8
// operations): the write-only plan below is exhausted — full enumeration,
// zero violations, zero undecided checks — so tl2 is proven du-opaque on
// it, with sleep sets (buffered tl2 writes commute) measurably shrinking
// the walk versus the naive space.
func TestExploreProvesAtAcceptanceCeiling(t *testing.T) {
	p := stm.MustParsePlan("w0 w1 | w0 w1\nw1 w0 | w1 w0")
	if p.NumTxns() != 4 || p.NumOps() != 8 {
		t.Fatalf("ceiling plan is %d txns / %d ops, want 4/8", p.NumTxns(), p.NumOps())
	}
	r, err := ExplorePlan("tl2", p, ExploreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != ProvenDUOpaque || r.Violations != 0 || r.Undecided != 0 {
		t.Fatalf("outcome %s (violations=%d undecided=%d), want proven",
			r.Outcome, r.Violations, r.Undecided)
	}
	if r.SleepPruned == 0 {
		t.Error("no sleep-set pruning on a write-only tl2 plan")
	}
	naive, err := ExplorePlan("tl2", p, naiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if naive.Outcome != ProvenDUOpaque {
		t.Fatalf("naive outcome %s, want proven", naive.Outcome)
	}
	if r.Schedules >= naive.Schedules {
		t.Errorf("pruning did not reduce schedules: %d vs naive %d", r.Schedules, naive.Schedules)
	}
}

// TestExplorePinsPLEViolation: the explorer refutes the in-place engine
// on the litmus plan, pinning the violating schedule and the exact event
// that latched it; the violating prefix must also be rejected by the
// batch checker (monitor and checker agree).
func TestExplorePinsPLEViolation(t *testing.T) {
	p := stm.MustParsePlan(pleLitmusPlan)
	r, err := ExplorePlan("ple", p, ExploreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != ViolationFound || r.Violation == nil {
		t.Fatalf("outcome %s, want violation", r.Outcome)
	}
	v := r.Violation
	if got := spec.CheckDUOpacity(v.History); got.OK || got.Undecided {
		t.Errorf("batch checker disagrees with the latched monitor: %s", got)
	}
	if v.At < 0 || v.At >= v.History.Len() {
		t.Errorf("latch index %d out of range (history has %d events)", v.At, v.History.Len())
	}
	// Prefix closure must have cut violating subtrees: the naive space of
	// this plan is strictly larger than what the pruned walk replayed.
	naive, err := ExplorePlan("ple", p, naiveConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.PrefixCut == 0 {
		t.Error("no prefix-closure cuts recorded")
	}
	if r.Replays >= naive.Schedules {
		t.Errorf("pruned walk replayed %d schedules, naive space is %d — no reduction",
			r.Replays, naive.Schedules)
	}
	if naive.Outcome != ViolationFound {
		t.Errorf("naive exploration outcome %s, want violation", naive.Outcome)
	}
}

// TestExploreGolden pins the explorer's first violation byte-for-byte:
// plan, schedule, latching event, reason and violating history must
// reproduce testdata/explore_ple_litmus.golden on every machine.
func TestExploreGolden(t *testing.T) {
	p := stm.MustParsePlan(pleLitmusPlan)
	r, err := ExplorePlan("ple", p, ExploreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Violation == nil {
		t.Fatal("no violation pinned")
	}
	v := r.Violation
	var b strings.Builder
	fmt.Fprintf(&b, "# First du-opacity violation the explorer pins for the ple litmus plan.\n")
	fmt.Fprintf(&b, "# plan (one thread per line):\n")
	for _, ln := range strings.Split(p.String(), "\n") {
		fmt.Fprintf(&b, "#   %s\n", ln)
	}
	fmt.Fprintf(&b, "# engine: %s\n# criterion: %s\n# schedule: %v\n# latched at event: %d\n# reason: %s\n",
		r.Engine, r.Criterion, v.Schedule, v.At, v.Verdict.Reason)
	b.WriteString(histio.FormatString(v.History))

	raw, err := os.ReadFile(filepath.Join("testdata", "explore_ple_litmus.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if b.String() != string(raw) {
		t.Errorf("explorer diverged from the golden pin:\ngot:\n%swant:\n%s", b.String(), raw)
	}
}

// TestExploreContainsSampledSchedules is the sampler/explorer
// differential: every history RunInterleaved can produce for a workload
// must appear among the histories the naive exploration of the same plan
// enumerates — the sampler draws from exactly the space the explorer
// exhausts (shared stepper and schedulePolicy, policy.go).
func TestExploreContainsSampledSchedules(t *testing.T) {
	for _, eng := range []string{"tl2", "norec", "ple", "gl", "etl"} {
		for seed := int64(1); seed <= 5; seed++ {
			w := Workload{
				Engine:           eng,
				Objects:          2,
				Goroutines:       2,
				TxnsPerGoroutine: 1,
				OpsPerTxn:        2,
				ReadFraction:     0.5,
				Seed:             seed,
				MaxAttempts:      3,
			}
			h, _, err := RunInterleaved(w)
			if err != nil {
				t.Fatalf("%s/%d: %v", eng, seed, err)
			}
			sampled := histio.FormatString(h)

			seen := make(map[string]bool)
			cfg := naiveConfig()
			cfg.MaxAttempts = w.MaxAttempts
			cfg.OnSchedule = func(_ []int, eh *history.History, _ spec.Verdict) {
				seen[histio.FormatString(eh)] = true
			}
			r, err := ExplorePlan(eng, PlanOf(w), cfg)
			if err != nil {
				t.Fatalf("%s/%d: %v", eng, seed, err)
			}
			if r.Outcome == BudgetExhausted {
				t.Fatalf("%s/%d: exploration did not exhaust the space", eng, seed)
			}
			if !seen[sampled] {
				t.Errorf("%s/%d: sampled history not among the %d enumerated schedules:\n%s",
					eng, seed, r.Schedules, sampled)
			}
		}
	}
}

// TestExplorePruningSound: the pruned walk must agree with the naive
// reference on the outcome, and every history a pruned complete schedule
// records must be one the naive enumeration also records (prunings only
// ever remove redundant interleavings, never invent new ones).
func TestExplorePruningSound(t *testing.T) {
	plans := []string{
		pleLitmusPlan,
		abortedReaderPlan,
		"w0 w1 w0\nw1 w0 w1", // write-only: sleep sets bite on tl2/norec
		"r0 w0\nr0 w0",       // identical threads: symmetry bites
		"w0 r1 | r0\nr0 w1",  // two txns on one thread
	}
	for _, src := range plans {
		p := stm.MustParsePlan(src)
		for _, eng := range []string{"tl2", "norec", "ple", "gl", "etl", "dstm"} {
			naiveSeen := make(map[string]bool)
			ncfg := naiveConfig()
			ncfg.OnSchedule = func(_ []int, h *history.History, _ spec.Verdict) {
				naiveSeen[histio.FormatString(h)] = true
			}
			naive, err := ExplorePlan(eng, p, ncfg)
			if err != nil {
				t.Fatalf("%s on %q: %v", eng, src, err)
			}

			var pruned ExploreReport
			pcfg := ExploreConfig{}
			pcfg.OnSchedule = func(_ []int, h *history.History, _ spec.Verdict) {
				if !naiveSeen[histio.FormatString(h)] {
					t.Errorf("%s on %q: pruned walk recorded a history the naive space lacks:\n%s",
						eng, src, histio.FormatString(h))
				}
			}
			pruned, err = ExplorePlan(eng, p, pcfg)
			if err != nil {
				t.Fatalf("%s on %q: %v", eng, src, err)
			}
			if pruned.Outcome != naive.Outcome {
				t.Errorf("%s on %q: pruned outcome %s, naive %s", eng, src, pruned.Outcome, naive.Outcome)
			}
			if pruned.Replays > naive.Replays {
				t.Errorf("%s on %q: pruning increased replays (%d > %d)",
					eng, src, pruned.Replays, naive.Replays)
			}
		}
	}
}

// TestExploreRefutesPLEGoldenWorkload: the workload whose sampled episode
// is pinned as testdata/ple_violation.hist is far too large to exhaust,
// but the explorer refutes it within a small budget — the budgeted mode's
// purpose: a violation is definitive evidence regardless of exhaustion.
func TestExploreRefutesPLEGoldenWorkload(t *testing.T) {
	p := PlanOf(pleGoldenWorkload())
	r, err := ExplorePlan("ple", p, ExploreConfig{
		MaxSchedules:         5_000,
		StopAtFirstViolation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != ViolationFound || r.Violation == nil {
		t.Fatalf("outcome %s after %d replays, want violation", r.Outcome, r.Replays)
	}
	if v := spec.CheckDUOpacity(r.Violation.History); v.OK || v.Undecided {
		t.Errorf("pinned violating prefix accepted by the batch checker: %s", v)
	}
}

// TestExploreTruncatedScheduleKeepsLatchedViolation: a violation the
// monitor latched before the step budget truncates the schedule is
// definitive (prefix closure) and must yield ViolationFound, not
// BudgetExhausted — reachable only with DisablePrefixCut, where no cut
// returns at the latching step.
func TestExploreTruncatedScheduleKeepsLatchedViolation(t *testing.T) {
	p := stm.MustParsePlan(pleLitmusPlan)
	r, err := ExplorePlan("ple", p, ExploreConfig{DisablePrefixCut: true, MaxSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != ViolationFound || r.Violation == nil {
		t.Fatalf("outcome %s (violations=%d), want violation despite the step truncation",
			r.Outcome, r.Violations)
	}
	if v := spec.CheckDUOpacity(r.Violation.History); v.OK || v.Undecided {
		t.Errorf("pinned truncated prefix accepted by the batch checker: %s", v)
	}
}

// TestExploreBudgetExhausted: an unexhaustible plan under a tiny budget
// reports the frontier rather than claiming a proof.
func TestExploreBudgetExhausted(t *testing.T) {
	p := PlanOf(Workload{
		Engine: "tl2", Objects: 4, Goroutines: 4,
		TxnsPerGoroutine: 2, OpsPerTxn: 4, Seed: 1,
	})
	r, err := ExplorePlan("tl2", p, ExploreConfig{MaxSchedules: 50})
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != BudgetExhausted {
		t.Fatalf("outcome %s, want budget-exhausted", r.Outcome)
	}
	if r.Replays != 50 || r.MaxFrontier == 0 {
		t.Errorf("replays=%d frontier=%d", r.Replays, r.MaxFrontier)
	}
}

// TestExploreOpacity: the monitorable prefix-closed criteria both work as
// the exploration target; the ple litmus violates opacity too (the prefix
// where the reader has observed the in-flight write admits no final-state
// opaque completion).
func TestExploreOpacity(t *testing.T) {
	p := stm.MustParsePlan(pleLitmusPlan)
	r, err := ExplorePlan("ple", p, ExploreConfig{Criterion: spec.Opacity})
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != ViolationFound {
		t.Errorf("ple/opacity outcome %s, want violation", r.Outcome)
	}
	r, err = ExplorePlan("tl2", p, ExploreConfig{Criterion: spec.Opacity})
	if err != nil {
		t.Fatal(err)
	}
	if r.Outcome != ProvenDUOpaque {
		t.Errorf("tl2/opacity outcome %s, want proven", r.Outcome)
	}
}

// TestExploreDeterministic: two explorations of the same configuration
// agree byte-for-byte — reports, counters, pinned schedule.
func TestExploreDeterministic(t *testing.T) {
	p := stm.MustParsePlan("w0 r1\nr0 w1")
	for _, eng := range []string{"tl2", "ple"} {
		a, err := ExplorePlan(eng, p, ExploreConfig{})
		if err != nil {
			t.Fatal(err)
		}
		b, err := ExplorePlan(eng, p, ExploreConfig{})
		if err != nil {
			t.Fatal(err)
		}
		if a.Schedules != b.Schedules || a.Steps != b.Steps || a.Outcome != b.Outcome ||
			a.SleepPruned != b.SleepPruned || a.PrefixCut != b.PrefixCut {
			t.Errorf("%s: two explorations diverged: %+v vs %+v", eng, a, b)
		}
		if (a.Violation == nil) != (b.Violation == nil) {
			t.Fatalf("%s: violation presence diverged", eng)
		}
		if a.Violation != nil && histio.FormatString(a.Violation.History) != histio.FormatString(b.Violation.History) {
			t.Errorf("%s: pinned violations diverged", eng)
		}
	}
}

// TestExploreErrors pins the input validation.
func TestExploreErrors(t *testing.T) {
	good := stm.MustParsePlan(pleLitmusPlan)
	if _, err := ExplorePlan("bogus", good, ExploreConfig{}); err == nil {
		t.Error("unknown engine accepted")
	}
	if _, err := ExplorePlan("tl2", stm.Plan{}, ExploreConfig{}); err == nil {
		t.Error("invalid plan accepted")
	}
	for _, c := range []spec.Criterion{spec.FinalStateOpacity, spec.TMS2, spec.RCO, spec.Serializability} {
		if _, err := ExplorePlan("tl2", good, ExploreConfig{Criterion: c}); err == nil {
			t.Errorf("non-prefix-closed criterion %v accepted", c)
		}
	}
	big := stm.Plan{Objects: 1, Threads: make([][]stm.PlanTxn, 65)}
	for i := range big.Threads {
		big.Threads[i] = []stm.PlanTxn{{{Read: true}}}
	}
	if _, err := ExplorePlan("tl2", big, ExploreConfig{}); err == nil {
		t.Error("65-thread plan accepted")
	}
}

// TestFormatExploreTable smoke-checks the CLI rendering.
func TestFormatExploreTable(t *testing.T) {
	p := stm.MustParsePlan(pleLitmusPlan)
	r, err := ExplorePlan("ple", p, ExploreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatExploreTable([]ExploreReport{r})
	for _, want := range []string{"ple", "violation", "du-opacity", "schedule"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}
