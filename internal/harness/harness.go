// Package harness drives the STM engines under configurable workloads and
// certifies what they did against the correctness criteria of the paper
// (Attiya, Hans, Kuznetsov and Ravi, "Safety of Deferred Update in
// Transactional Memory", ICDCS 2013). It is the reproduction of the
// paper's experimental claim — deferred-update engines produce only
// du-opaque histories (Definition 3), the pessimistic in-place engine
// does not — as an executable pipeline, at three levels of assurance:
//
//   - Run / RunRecorded execute a Workload on real goroutines; recorded
//     histories satisfy the unique-writes hypothesis of Theorem 11 (every
//     written value is fresh), so checks take the fast path.
//   - RunInterleaved replaces the Go scheduler with a deterministic
//     stepwise scheduler: a seeded sample from the schedule space of the
//     workload's plan (stm.Plan), reproducible bit-for-bit anywhere and
//     able to steer through preemption windows real goroutines almost
//     never hit.
//   - ExplorePlan exhausts that same schedule space: every interleaving
//     the engine's exclusion policy (policy.go) allows is enumerated and
//     certified online, with the prefix-closure cut of Corollary 2, sleep
//     sets, and symmetry reduction pruning redundant subtrees — turning
//     per-plan certification from sampled evidence into a proof
//     (ProvenDUOpaque / ViolationFound / BudgetExhausted).
//
// Certify aggregates episodes (sampled or, with CertConfig.Explore,
// proven) per criterion; RunMonitored attaches a spec.Monitor to the
// recorder's tap so violations are latched at the causing event while the
// engine runs. Package checkfarm shards all of it across workers. The
// package backs cmd/stmbench, cmd/ducheck -explore, the certification
// examples and the engine benchmarks; see docs/ARCHITECTURE.md for the
// pipeline map.
package harness

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"duopacity/internal/gen"
	"duopacity/internal/history"
	"duopacity/internal/recorder"
	"duopacity/internal/spec"
	"duopacity/internal/stm"
	"duopacity/internal/stm/engines"
)

// Workload parameterizes a run.
type Workload struct {
	Engine           string
	Objects          int
	Goroutines       int
	TxnsPerGoroutine int
	OpsPerTxn        int
	// ReadFraction in [0,1] is the probability that an operation reads.
	// 0 means unset (default 0.5); pass any negative value for an
	// explicit zero — write-only workloads (normalized to 0 by the
	// defaulting, so consumers always see a value in [0,1]).
	ReadFraction float64
	Seed         int64
	// MaxAttempts bounds retries per transaction (default 10_000).
	MaxAttempts int
	// Disjoint partitions the object space: goroutine g draws its
	// objects only from the g-th contiguous block of Objects/Goroutines
	// objects, so goroutines never contend on data. This is the
	// disjoint-access shape parallel-certification engines (pdur) are
	// built for. Requires Objects >= Goroutines (each block must hold
	// at least one object; withDefaults grows Objects if needed).
	Disjoint bool `json:",omitempty"`
}

func (w Workload) withDefaults() Workload {
	if w.Objects == 0 {
		w.Objects = 8
	}
	if w.Goroutines == 0 {
		w.Goroutines = 4
	}
	if w.TxnsPerGoroutine == 0 {
		w.TxnsPerGoroutine = 100
	}
	if w.OpsPerTxn == 0 {
		w.OpsPerTxn = 4
	}
	if w.ReadFraction == 0 {
		w.ReadFraction = 0.5
	} else if w.ReadFraction < 0 {
		w.ReadFraction = 0 // the documented "explicit zero": write-only
	}
	if w.MaxAttempts == 0 {
		w.MaxAttempts = 10_000
	}
	if w.Disjoint && w.Objects < w.Goroutines {
		w.Objects = w.Goroutines // every goroutine owns at least one object
	}
	return w
}

// ExplicitReadFraction maps a user-facing read-fraction value (a CLI
// flag, say) onto the sentinel contract shared by Workload.ReadFraction
// and gen.Config.ReadFraction: the zero value means "unset" (default
// 0.5), an explicit 0 becomes the documented negative spelling, so
// write-only workloads and histories stay expressible. The canonical
// definition lives with the lighter config, gen.ExplicitReadFraction.
func ExplicitReadFraction(f float64) float64 { return gen.ExplicitReadFraction(f) }

// RunStats summarizes a workload run.
type RunStats struct {
	Engine   string
	Commits  int64
	Aborts   int64 // aborted attempts (retries)
	Failed   int64 // transactions that exhausted MaxAttempts
	Duration time.Duration
}

// TxnPerSec is committed transactions per second.
func (s RunStats) TxnPerSec() float64 {
	if s.Duration <= 0 {
		return 0
	}
	return float64(s.Commits) / s.Duration.Seconds()
}

// AbortRate is aborted attempts over all attempts.
func (s RunStats) AbortRate() float64 {
	total := s.Commits + s.Aborts
	if total == 0 {
		return 0
	}
	return float64(s.Aborts) / float64(total)
}

// planFor precomputes the per-goroutine operation mix so that the
// measured section does no RNG work. The result is the workload's plan:
// everything about the execution except the interleaving. Written values
// are not planned — they are drawn fresh per attempt from the run's value
// source so that retries stay distinguishable.
func planFor(w Workload) stm.Plan {
	p := stm.Plan{Objects: w.Objects, Threads: make([][]stm.PlanTxn, w.Goroutines)}
	for g := 0; g < w.Goroutines; g++ {
		rng := rand.New(rand.NewSource(w.Seed + int64(g)*7919))
		// Under Disjoint, goroutine g draws from its own contiguous
		// block of the object space (the access-locality shape
		// partitioned certification exploits).
		lo, span := 0, w.Objects
		if w.Disjoint {
			span = w.Objects / w.Goroutines
			lo = g * span
		}
		txns := make([]stm.PlanTxn, w.TxnsPerGoroutine)
		for i := range txns {
			ops := make(stm.PlanTxn, w.OpsPerTxn)
			for j := range ops {
				ops[j] = stm.PlanOp{Read: rng.Float64() < w.ReadFraction, Obj: lo + rng.Intn(span)}
			}
			txns[i] = ops
		}
		p.Threads[g] = txns
	}
	return p
}

// PlanOf exposes the seeded per-goroutine transaction programs of a
// workload as an stm.Plan — the unit ExplorePlan enumerates and
// checkfarm.ExplorePlans shards. The plan is a pure function of the
// workload (seed, shape), exactly the programs Run, RunRecorded and
// RunInterleaved execute.
func PlanOf(w Workload) stm.Plan {
	return planFor(w.withDefaults())
}

// Run executes the workload unrecorded and returns performance statistics.
func Run(w Workload) (RunStats, error) {
	w = w.withDefaults()
	eng, err := engines.New(w.Engine, w.Objects)
	if err != nil {
		return RunStats{}, err
	}
	plans := planFor(w)
	var commits, aborts, failed atomic.Int64
	var vals atomic.Int64 // unique written values

	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < w.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, ops := range plans.Threads[g] {
				attempts := 0
				err := stm.AtomicallyN(eng, w.MaxAttempts, func(tx stm.Txn) error {
					attempts++
					for _, op := range ops {
						if op.Read {
							if _, err := tx.Read(op.Obj); err != nil {
								return err
							}
						} else if err := tx.Write(op.Obj, vals.Add(1)); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					failed.Add(1)
				} else {
					commits.Add(1)
				}
				aborts.Add(int64(attempts - 1))
			}
		}(g)
	}
	wg.Wait()
	return RunStats{
		Engine:   w.Engine,
		Commits:  commits.Load(),
		Aborts:   aborts.Load(),
		Failed:   failed.Load(),
		Duration: time.Since(start),
	}, nil
}

// RunRecorded executes the workload on a fresh engine under the recorder
// and returns the recorded history with the run's statistics. Written
// values are globally unique, so the resulting history satisfies the
// unique-writes hypothesis of Theorem 11 and checks fast.
func RunRecorded(w Workload) (*history.History, RunStats, error) {
	return runRecorded(w, nil)
}

// runRecorded is RunRecorded with an optional event tap attached to the
// recorder before any transaction runs (the online-certification hook).
func runRecorded(w Workload, tap func(history.Event)) (*history.History, RunStats, error) {
	w = w.withDefaults()
	eng, err := engines.New(w.Engine, w.Objects)
	if err != nil {
		return nil, RunStats{}, err
	}
	rec := recorder.New(eng)
	if tap != nil {
		rec.Tap(tap)
	}
	plans := planFor(w)
	var commits, aborts, failed atomic.Int64
	var vals atomic.Int64

	start := time.Now()
	var wg sync.WaitGroup
	for g := 0; g < w.Goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, ops := range plans.Threads[g] {
				attempts := 0
				err := atomicallyRecordedN(rec, w.MaxAttempts, func(tx *recorder.Txn) error {
					attempts++
					for _, op := range ops {
						if op.Read {
							if _, err := tx.Read(op.Obj); err != nil {
								return err
							}
						} else if err := tx.Write(op.Obj, vals.Add(1)); err != nil {
							return err
						}
					}
					return nil
				})
				if err != nil {
					failed.Add(1)
				} else {
					commits.Add(1)
				}
				aborts.Add(int64(attempts - 1))
			}
		}(g)
	}
	wg.Wait()
	stats := RunStats{
		Engine:   w.Engine,
		Commits:  commits.Load(),
		Aborts:   aborts.Load(),
		Failed:   failed.Load(),
		Duration: time.Since(start),
	}
	return rec.History(), stats, nil
}

func atomicallyRecordedN(r *recorder.Recorder, attempts int, fn func(*recorder.Txn) error) error {
	for i := 0; i < attempts; i++ {
		tx := r.Begin()
		err := fn(tx)
		switch {
		case err == nil:
			if cerr := tx.Commit(); cerr == nil {
				return nil
			}
		case err == stm.ErrAborted:
			tx.Abort()
		default:
			tx.Abort()
			return err
		}
	}
	return stm.ErrAborted
}

// CertConfig parameterizes certification: Episodes independent small
// recorded runs (each on a fresh engine, so every value read is explained
// within its episode), each checked against the criteria.
type CertConfig struct {
	Workload
	Episodes int
	// NodeLimit bounds each exact check (default 2_000_000 nodes).
	NodeLimit int
	// MaxTxns skips episodes whose recorded history exceeds this many
	// transactions (default 56, under the checker's 64-transaction cap).
	MaxTxns int
	// Interleaved runs each episode under the deterministic stepwise
	// scheduler (RunInterleaved) instead of real goroutines, making
	// certification reproducible bit-for-bit across runs and machines —
	// including single-CPU machines where real goroutines rarely
	// interleave mid-transaction.
	Interleaved bool
	// Portfolio > 1 runs each exact check as a parallel portfolio search
	// with that many workers (spec.WithParallelism): useful when a few
	// hard episodes dominate a certification. Acceptance is unaffected,
	// but undecided verdicts near the node limit may vary between runs;
	// keep 0 for bit-reproducible statistics.
	Portfolio int
	// Explore certifies each episode by exhaustively exploring the
	// episode plan's schedule space (ExplorePlan) instead of sampling one
	// recorded run: an accepted episode means *no* schedule of the
	// deterministic stepper's space — the engine's exclusion policy plus
	// its abort-backoff discipline, the space RunInterleaved samples —
	// violates the criterion, not that one sampled schedule passed.
	// Criteria are restricted to the explorer's prefix-closed
	// monitorable ones (du-opacity, opacity); budget
	// exhaustion surfaces as an undecided verdict. Keep the workload shape
	// small — the schedule space is exponential in the plan size.
	Explore bool
	// ExploreBudget bounds each episode exploration's schedule count when
	// Explore is set (0 = the explorer's default, 1 << 17).
	ExploreBudget int
}

// WithDefaults fills the zero fields of the configuration with the
// defaults Certify applies, so that sharded certification (package
// checkfarm) resolves episodes identically to the sequential path.
func (cfg CertConfig) WithDefaults() CertConfig {
	if cfg.Episodes <= 0 {
		cfg.Episodes = 20
	}
	if cfg.NodeLimit <= 0 {
		cfg.NodeLimit = 2_000_000
	}
	if cfg.MaxTxns <= 0 {
		cfg.MaxTxns = 56
	}
	return cfg
}

// episodeSeedStride separates the per-episode seeds of one certification.
const episodeSeedStride = 104729

// CertStats aggregates certification outcomes per criterion.
type CertStats struct {
	Engine   string
	Episodes int
	Skipped  int
	// Degraded counts episodes that could not be certified for an
	// exceptional reason (see EpisodeReport.Degraded); their verdicts are
	// undecided, so they are also counted per criterion in Undecided.
	Degraded  int
	Accepted  map[spec.Criterion]int
	Rejected  map[spec.Criterion]int
	Undecided map[spec.Criterion]int
	// FirstReason records the first rejection reason per criterion.
	FirstReason map[spec.Criterion]string
}

// NewCertStats returns empty statistics for the given engine, ready for
// AddEpisode.
func NewCertStats(engine string) CertStats {
	return CertStats{
		Engine:      engine,
		Accepted:    make(map[spec.Criterion]int),
		Rejected:    make(map[spec.Criterion]int),
		Undecided:   make(map[spec.Criterion]int),
		FirstReason: make(map[spec.Criterion]string),
	}
}

// EpisodeReport is the outcome of a single certification episode.
type EpisodeReport struct {
	// Skipped is set when the recorded history exceeded cfg.MaxTxns and
	// was not checked.
	Skipped bool
	// Verdicts holds one verdict per requested criterion (nil when
	// Skipped).
	Verdicts map[spec.Criterion]spec.Verdict
	// History is the recorded episode (also set when Skipped).
	History *history.History
	// Degraded is set when the episode could not be certified for an
	// exceptional reason (under checkfarm.Certify: the episode's shard
	// panicked past its retries); Verdicts then holds an undecided verdict
	// per criterion carrying the same reason. Degradation is always
	// reported, never a silent drop.
	Degraded string
}

// DegradedEpisode builds the report for an episode that could not be
// certified: every requested criterion gets an undecided verdict carrying
// the reason, so aggregation (AddEpisode, the farm, the CLIs) treats the
// episode as honestly undecided rather than dropping it.
func DegradedEpisode(criteria []spec.Criterion, reason string) EpisodeReport {
	r := EpisodeReport{Degraded: reason, Verdicts: make(map[spec.Criterion]spec.Verdict, len(criteria))}
	for _, c := range criteria {
		r.Verdicts[c] = spec.Verdict{Criterion: c, Undecided: true, Reason: "degraded: " + reason}
	}
	return r
}

// CertifyEpisode runs episode ep of the certification described by cfg and
// checks it against the criteria. Episodes are independent: each runs on a
// fresh engine with a seed derived only from cfg.Seed and ep, so they can
// be evaluated in any order (or concurrently) and folded with AddEpisode.
// Call cfg.WithDefaults first when bypassing Certify.
func CertifyEpisode(cfg CertConfig, ep int, criteria []spec.Criterion) (EpisodeReport, error) {
	return CertifyEpisodeCtx(context.Background(), cfg, ep, criteria)
}

// CertifyEpisodeCtx is CertifyEpisode with cancellation threaded into the
// exact checks (spec.WithContext) — and, with cfg.Explore, into the
// exploration — so a farm deadline stops even a pathological search
// promptly with an undecided verdict.
func CertifyEpisodeCtx(ctx context.Context, cfg CertConfig, ep int, criteria []spec.Criterion) (EpisodeReport, error) {
	w := cfg.Workload
	w.Seed = cfg.Workload.Seed + int64(ep)*episodeSeedStride
	if cfg.Explore {
		return exploreEpisode(ctx, cfg, w, criteria)
	}
	var (
		h   *history.History
		err error
	)
	if cfg.Interleaved {
		h, _, err = RunInterleaved(w)
	} else {
		h, _, err = RunRecorded(w)
	}
	if err != nil {
		return EpisodeReport{}, err
	}
	if h.NumTxns() > cfg.MaxTxns {
		return EpisodeReport{Skipped: true, History: h}, nil
	}
	r := EpisodeReport{Verdicts: make(map[spec.Criterion]spec.Verdict, len(criteria)), History: h}
	opts := []spec.Option{spec.WithNodeLimit(cfg.NodeLimit)}
	if cfg.Portfolio > 1 {
		opts = append(opts, spec.WithParallelism(cfg.Portfolio))
	}
	if ctx != nil {
		opts = append(opts, spec.WithContext(ctx))
	}
	for _, c := range criteria {
		r.Verdicts[c] = spec.Check(h, c, opts...)
	}
	return r, nil
}

// exploreEpisode is the CertConfig.Explore path of CertifyEpisode: the
// episode's seeded plan is explored exhaustively per criterion, and the
// per-plan verdicts (proven / violation with the pinned causing schedule /
// budget-exhausted) are folded into the ordinary episode report so the
// whole certification stack — AddEpisode, checkfarm.Certify, the CLIs —
// aggregates proofs exactly as it aggregates samples.
func exploreEpisode(ctx context.Context, cfg CertConfig, w Workload, criteria []spec.Criterion) (EpisodeReport, error) {
	// Capture MaxAttempts before the sampler defaulting: its 10,000-retry
	// default is sized for wall-clock runs, not exploration, where retry
	// chains multiply the schedule space — an unset value must fall
	// through to the explorer's own default (2), as ducheck -explore does.
	maxAttempts := w.MaxAttempts
	w = w.withDefaults()
	p := planFor(w)
	r := EpisodeReport{Verdicts: make(map[spec.Criterion]spec.Verdict, len(criteria))}
	for _, c := range criteria {
		er, err := ExplorePlanCtx(ctx, w.Engine, p, ExploreConfig{
			Criterion:            c,
			MaxAttempts:          maxAttempts,
			MaxSchedules:         cfg.ExploreBudget,
			NodeLimit:            cfg.NodeLimit,
			StopAtFirstViolation: true,
		})
		if err != nil {
			return EpisodeReport{}, err
		}
		v := spec.Verdict{Criterion: c}
		switch er.Outcome {
		case ProvenDUOpaque:
			v.OK = true
		case ViolationFound:
			v.Reason = fmt.Sprintf("schedule %v: %s", er.Violation.Schedule, er.Violation.Verdict.Reason)
			if r.History == nil {
				r.History = er.Violation.History
			}
		default: // BudgetExhausted
			v.Undecided = true
			if er.Undecided > 0 {
				// The schedule space may even be exhausted: the blocker is
				// the per-check node limit, not the exploration budget.
				v.Reason = fmt.Sprintf("%d of %d schedules undecided at the %d-node check limit (raise NodeLimit)",
					er.Undecided, er.Schedules, cfg.NodeLimit)
			} else {
				v.Reason = fmt.Sprintf("exploration budget exhausted after %d schedules (frontier depth %d)",
					er.Replays, er.MaxFrontier)
			}
		}
		r.Verdicts[c] = v
	}
	return r, nil
}

// AddEpisode folds one episode's outcome into the statistics. Folding
// reports in episode order reproduces the sequential Certify aggregation
// exactly (including FirstReason).
func (s *CertStats) AddEpisode(criteria []spec.Criterion, r EpisodeReport) {
	if r.Skipped {
		s.Skipped++
		return
	}
	s.Episodes++
	if r.Degraded != "" {
		s.Degraded++
	}
	for _, c := range criteria {
		v := r.Verdicts[c]
		switch {
		case v.Undecided:
			s.Undecided[c]++
		case v.OK:
			s.Accepted[c]++
		default:
			s.Rejected[c]++
			if _, ok := s.FirstReason[c]; !ok {
				s.FirstReason[c] = v.Reason
			}
		}
	}
}

// Certify runs cfg.Episodes recorded episodes and checks each against the
// given criteria.
func Certify(cfg CertConfig, criteria []spec.Criterion) (CertStats, error) {
	cfg = cfg.WithDefaults()
	stats := NewCertStats(cfg.Workload.Engine)
	for ep := 0; ep < cfg.Episodes; ep++ {
		r, err := CertifyEpisode(cfg, ep, criteria)
		if err != nil {
			return stats, err
		}
		stats.AddEpisode(criteria, r)
	}
	return stats, nil
}

// FormatRunTable renders run statistics as an aligned text table.
func FormatRunTable(rows []RunStats) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "engine\tcommits\taborts\tabort-rate\ttxn/s")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.3f\t%.0f\n",
			r.Engine, r.Commits, r.Aborts, r.AbortRate(), r.TxnPerSec())
	}
	_ = tw.Flush()
	return b.String()
}

// FormatCertTable renders certification statistics as an aligned text
// table, one row per criterion.
func FormatCertTable(s CertStats, criteria []spec.Criterion) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "engine %s: %d episodes (%d skipped)\n", s.Engine, s.Episodes, s.Skipped)
	fmt.Fprintln(tw, "criterion\taccepted\trejected\tundecided")
	for _, c := range criteria {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", c, s.Accepted[c], s.Rejected[c], s.Undecided[c])
	}
	_ = tw.Flush()
	return b.String()
}
