package harness

import (
	"fmt"
	"strings"
	"text/tabwriter"
)

// SweepConfig describes a two-dimensional parameter sweep: for every
// engine and every (goroutines, read-fraction) point, run the base
// workload and record throughput and abort rate. This regenerates the
// classic STM evaluation series (throughput vs. threads at several read
// mixes) over the engines the paper discusses.
type SweepConfig struct {
	Engines       []string
	Goroutines    []int
	ReadFractions []float64
	Base          Workload // Engine/Goroutines/ReadFraction overridden per point
}

// SweepPoint is one measured cell.
type SweepPoint struct {
	Engine       string
	Goroutines   int
	ReadFraction float64
	Stats        RunStats
}

// Sweep runs the full grid. Points are measured sequentially so that the
// cells do not contend with each other.
func Sweep(cfg SweepConfig) ([]SweepPoint, error) {
	var out []SweepPoint
	for _, eng := range cfg.Engines {
		for _, g := range cfg.Goroutines {
			for _, rf := range cfg.ReadFractions {
				w := cfg.Base
				w.Engine = eng
				w.Goroutines = g
				w.ReadFraction = rf
				stats, err := Run(w)
				if err != nil {
					return nil, fmt.Errorf("harness: sweep %s/g=%d/rf=%.2f: %w", eng, g, rf, err)
				}
				out = append(out, SweepPoint{Engine: eng, Goroutines: g, ReadFraction: rf, Stats: stats})
			}
		}
	}
	return out, nil
}

// FormatSweepTable renders the sweep as one table per read fraction:
// engines down the rows, goroutine counts across the columns, committed
// transactions per second in the cells (abort rate in parentheses).
func FormatSweepTable(points []SweepPoint) string {
	type key struct {
		rf     float64
		engine string
		g      int
	}
	cells := make(map[key]RunStats)
	var rfs []float64
	var engs []string
	var gs []int
	seenRF := map[float64]bool{}
	seenE := map[string]bool{}
	seenG := map[int]bool{}
	for _, p := range points {
		cells[key{p.ReadFraction, p.Engine, p.Goroutines}] = p.Stats
		if !seenRF[p.ReadFraction] {
			seenRF[p.ReadFraction] = true
			rfs = append(rfs, p.ReadFraction)
		}
		if !seenE[p.Engine] {
			seenE[p.Engine] = true
			engs = append(engs, p.Engine)
		}
		if !seenG[p.Goroutines] {
			seenG[p.Goroutines] = true
			gs = append(gs, p.Goroutines)
		}
	}
	var b strings.Builder
	for _, rf := range rfs {
		fmt.Fprintf(&b, "read fraction %.2f — committed txn/s (abort rate)\n", rf)
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "engine")
		for _, g := range gs {
			fmt.Fprintf(tw, "\tg=%d", g)
		}
		fmt.Fprintln(tw)
		for _, e := range engs {
			fmt.Fprint(tw, e)
			for _, g := range gs {
				s := cells[key{rf, e, g}]
				fmt.Fprintf(tw, "\t%.0fk (%.2f)", s.TxnPerSec()/1000, s.AbortRate())
			}
			fmt.Fprintln(tw)
		}
		_ = tw.Flush()
		b.WriteByte('\n')
	}
	return b.String()
}
