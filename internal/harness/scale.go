// Scaling curves: goroutines-vs-throughput measurements over the
// engine×CM matrix, the measurement backend of `stmbench scale`.
//
// Three canonical workload shapes cover the regimes the engines
// differentiate on:
//
//   - read-heavy:     many objects, 90% reads — the fast path where
//     invisible reads and zero-allocation read-only commits dominate.
//   - write-hotspot:  four objects, 90% writes — the adversarial
//     contention regime contention management exists for.
//   - disjoint:       per-goroutine object blocks, mixed ops — the
//     access-locality regime where pdur's partitioned certifiers
//     commit in parallel and norec's single certifier serializes.
//
// Curves are measured sequentially (one cell at a time, best of
// Repeat runs) so cells never contend with each other for the machine.
package harness

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"

	"duopacity/internal/stm/engines"
)

// ScaleWorkloadNames lists the canonical workload shapes in
// presentation order.
func ScaleWorkloadNames() []string {
	return []string{"read-heavy", "write-hotspot", "disjoint"}
}

// ScaleWorkload builds the named canonical workload for one engine and
// goroutine count.
func ScaleWorkload(kind, engine string, goroutines, txns int, seed int64) (Workload, error) {
	w := Workload{
		Engine:           engine,
		Goroutines:       goroutines,
		TxnsPerGoroutine: txns,
		OpsPerTxn:        4,
		Seed:             seed,
	}
	switch kind {
	case "read-heavy":
		w.Objects = 256
		w.ReadFraction = 0.9
	case "write-hotspot":
		w.Objects = 4
		w.ReadFraction = 0.1
	case "disjoint":
		w.Objects = 16 * goroutines
		w.ReadFraction = 0.5
		w.Disjoint = true
	default:
		return Workload{}, fmt.Errorf("scale: unknown workload %q (valid: %s)",
			kind, strings.Join(ScaleWorkloadNames(), ", "))
	}
	return w, nil
}

// ScaleConfig parameterizes a scaling sweep.
type ScaleConfig struct {
	Engines    []string // engine[+cm] names
	Workloads  []string // subset of ScaleWorkloadNames (default: all)
	Goroutines []int    // default 1, 2, 4, 8
	// TxnsPerGoroutine per cell (default 20_000).
	TxnsPerGoroutine int
	// Repeat runs per cell; the best throughput is kept (default 3).
	Repeat int
	Seed   int64
}

func (c ScaleConfig) withDefaults() ScaleConfig {
	if len(c.Workloads) == 0 {
		c.Workloads = ScaleWorkloadNames()
	}
	if len(c.Goroutines) == 0 {
		c.Goroutines = []int{1, 2, 4, 8}
	}
	if c.TxnsPerGoroutine == 0 {
		c.TxnsPerGoroutine = 20_000
	}
	if c.Repeat == 0 {
		c.Repeat = 3
	}
	return c
}

// ScalePoint is one measured cell of the sweep.
type ScalePoint struct {
	Engine     string  `json:"engine"`
	Workload   string  `json:"workload"`
	Goroutines int     `json:"goroutines"`
	TxnPerSec  float64 `json:"txn_per_sec"`
	AbortRate  float64 `json:"abort_rate"`
	Failed     int64   `json:"failed,omitempty"`
}

// ScaleCurves measures the full engines×workloads×goroutines grid and
// returns the points in deterministic (engine, workload, goroutines)
// order. Invalid engine or workload names fail before any measurement.
func ScaleCurves(cfg ScaleConfig) ([]ScalePoint, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Engines) == 0 {
		return nil, fmt.Errorf("scale: no engines")
	}
	// Validate the whole grid up front: engine names through the shared
	// parser, workload names through ScaleWorkload.
	for _, e := range cfg.Engines {
		if _, _, err := engines.Parse(e); err != nil {
			return nil, err
		}
		for _, wl := range cfg.Workloads {
			if _, err := ScaleWorkload(wl, e, 1, 1, 0); err != nil {
				return nil, err
			}
		}
	}
	var points []ScalePoint
	for _, e := range cfg.Engines {
		for _, wl := range cfg.Workloads {
			for _, g := range cfg.Goroutines {
				w, err := ScaleWorkload(wl, e, g, cfg.TxnsPerGoroutine, cfg.Seed)
				if err != nil {
					return nil, err
				}
				pt := ScalePoint{Engine: e, Workload: wl, Goroutines: g}
				for r := 0; r < cfg.Repeat; r++ {
					stats, err := Run(w)
					if err != nil {
						return nil, fmt.Errorf("scale: %s/%s/g%d: %w", e, wl, g, err)
					}
					if tps := stats.TxnPerSec(); tps > pt.TxnPerSec {
						pt.TxnPerSec = tps
						pt.AbortRate = stats.AbortRate()
						pt.Failed = stats.Failed
					}
				}
				points = append(points, pt)
			}
		}
	}
	return points, nil
}

// FindScalePoint returns the point for the given cell, or nil.
func FindScalePoint(points []ScalePoint, engine, workload string, goroutines int) *ScalePoint {
	for i := range points {
		p := &points[i]
		if p.Engine == engine && p.Workload == workload && p.Goroutines == goroutines {
			return p
		}
	}
	return nil
}

// FormatScaleTable renders the points as one table per workload:
// engines down, goroutine counts across, txn/s in the cells.
func FormatScaleTable(points []ScalePoint) string {
	byWorkload := map[string][]ScalePoint{}
	var workloads []string
	for _, p := range points {
		if _, ok := byWorkload[p.Workload]; !ok {
			workloads = append(workloads, p.Workload)
		}
		byWorkload[p.Workload] = append(byWorkload[p.Workload], p)
	}
	var b strings.Builder
	for _, wl := range workloads {
		pts := byWorkload[wl]
		var engs []string
		var gs []int
		seenE := map[string]bool{}
		seenG := map[int]bool{}
		for _, p := range pts {
			if !seenE[p.Engine] {
				seenE[p.Engine] = true
				engs = append(engs, p.Engine)
			}
			if !seenG[p.Goroutines] {
				seenG[p.Goroutines] = true
				gs = append(gs, p.Goroutines)
			}
		}
		sort.Ints(gs)
		fmt.Fprintf(&b, "workload %s (txn/s, best-of-repeat)\n", wl)
		tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
		fmt.Fprint(tw, "engine")
		for _, g := range gs {
			fmt.Fprintf(tw, "\tg=%d", g)
		}
		fmt.Fprintln(tw)
		for _, e := range engs {
			fmt.Fprint(tw, e)
			for _, g := range gs {
				if p := FindScalePoint(pts, e, wl, g); p != nil {
					fmt.Fprintf(tw, "\t%.0f", p.TxnPerSec)
				} else {
					fmt.Fprint(tw, "\t-")
				}
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
		b.WriteString("\n")
	}
	return b.String()
}
