package harness

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"duopacity/internal/histio"
	"duopacity/internal/spec"
	"duopacity/internal/stm/engines"
)

func smallWorkload(engine string, seed int64) Workload {
	return Workload{
		Engine:           engine,
		Objects:          4,
		Goroutines:       3,
		TxnsPerGoroutine: 3,
		OpsPerTxn:        3,
		ReadFraction:     0.5,
		Seed:             seed,
	}
}

func TestRunAllEngines(t *testing.T) {
	for _, name := range engines.Names() {
		w := smallWorkload(name, 1)
		w.TxnsPerGoroutine = 20
		stats, err := Run(w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		want := int64(w.Goroutines * w.TxnsPerGoroutine)
		if stats.Commits+stats.Failed != want {
			t.Errorf("%s: commits+failed = %d, want %d", name, stats.Commits+stats.Failed, want)
		}
		if stats.Failed > 0 {
			t.Errorf("%s: %d transactions exhausted retries", name, stats.Failed)
		}
		if stats.TxnPerSec() <= 0 {
			t.Errorf("%s: nonpositive throughput", name)
		}
	}
}

func TestRunUnknownEngine(t *testing.T) {
	if _, err := Run(Workload{Engine: "bogus"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
	if _, _, err := RunRecorded(Workload{Engine: "bogus"}); err == nil {
		t.Fatal("unknown engine accepted by RunRecorded")
	}
}

func TestRunRecordedProducesCompleteHistory(t *testing.T) {
	h, stats, err := RunRecorded(smallWorkload("tl2", 2))
	if err != nil {
		t.Fatal(err)
	}
	if !h.Complete() {
		t.Fatal("recorded history has pending operations")
	}
	if int64(h.NumTxns()) != stats.Commits+stats.Aborts+stats.Failed {
		t.Errorf("history has %d txns; stats: %d commits, %d aborts, %d failed",
			h.NumTxns(), stats.Commits, stats.Aborts, stats.Failed)
	}
	if !spec.UniqueWrites(h) {
		t.Error("recorded workload should have unique writes")
	}
}

// TestCertifyDeferredUpdateEngines is experiment S1: deferred-update
// engines produce only du-opaque histories.
func TestCertifyDeferredUpdateEngines(t *testing.T) {
	criteria := []spec.Criterion{spec.DUOpacity}
	for _, name := range []string{"tl2", "norec", "gl"} {
		cfg := CertConfig{Workload: smallWorkload(name, 3), Episodes: 8}
		stats, err := Certify(cfg, criteria)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if stats.Rejected[spec.DUOpacity] > 0 {
			t.Errorf("%s: %d episodes rejected by du-opacity: %s",
				name, stats.Rejected[spec.DUOpacity], stats.FirstReason[spec.DUOpacity])
		}
		if stats.Episodes == 0 {
			t.Errorf("%s: all episodes skipped", name)
		}
	}
	// DSTM is deferred-update by construction, but its invisible-read
	// validation is not atomic with the read, so snapshot consistency has
	// a narrow scheduling-dependent window; report rather than fail.
	stats, err := Certify(CertConfig{Workload: smallWorkload("dstm", 3), Episodes: 8}, criteria)
	if err != nil {
		t.Fatalf("dstm: %v", err)
	}
	if r := stats.Rejected[spec.DUOpacity]; r > 0 {
		t.Logf("dstm: %d/%d episodes rejected (validation window): %s",
			r, stats.Episodes, stats.FirstReason[spec.DUOpacity])
	}
}

// TestCertifyPLERejects is experiment S2: the pessimistic in-place engine
// produces deferred-update violations under contention. The episodes run
// under the deterministic interleaved scheduler: real goroutines only
// expose the read-an-uncommitted-write window under lucky preemption
// (essentially never on a single-CPU machine), whereas the stepwise
// schedule drives straight through it, so every one of these 30 episodes
// rejects on every machine.
func TestCertifyPLERejects(t *testing.T) {
	cfg := CertConfig{Workload: Workload{
		Engine:           "ple",
		Objects:          4,
		Goroutines:       8,
		TxnsPerGoroutine: 4,
		OpsPerTxn:        8,
		ReadFraction:     0.5,
		Seed:             4,
	}, Episodes: 30, Interleaved: true}
	stats, err := Certify(cfg, []spec.Criterion{spec.DUOpacity})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Rejected[spec.DUOpacity] == 0 {
		t.Fatal("pessimistic in-place engine produced no du-opacity violation in 30 interleaved episodes")
	}
	if stats.FirstReason[spec.DUOpacity] == "" {
		t.Error("missing rejection reason")
	}
}

// pleGoldenWorkload is the shape pinned by testdata/ple_violation.hist.
func pleGoldenWorkload() Workload {
	return Workload{
		Engine:           "ple",
		Objects:          3,
		Goroutines:       4,
		TxnsPerGoroutine: 2,
		OpsPerTxn:        4,
		ReadFraction:     0.5,
		Seed:             8,
	}
}

// TestCertifyPLERejectsGolden pins one violating episode as a golden
// history: the interleaved run must reproduce testdata/ple_violation.hist
// byte-for-byte, and the pinned history must stay a du-opacity violation
// (while remaining final-state opaque: ple's single writer always
// commits, so the violation is precisely the deferred-update condition).
func TestCertifyPLERejectsGolden(t *testing.T) {
	h, _, err := RunInterleaved(pleGoldenWorkload())
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join("testdata", "ple_violation.hist"))
	if err != nil {
		t.Fatal(err)
	}
	golden, err := histio.Parse(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("golden history does not parse: %v", err)
	}
	if got, want := histio.FormatString(h), histio.FormatString(golden); got != want {
		t.Errorf("interleaved ple episode diverged from the golden history:\ngot:\n%swant:\n%s", got, want)
	}
	v := spec.CheckDUOpacity(golden)
	if v.OK || v.Undecided {
		t.Fatalf("golden history must violate du-opacity: %s", v)
	}
	if fs := spec.CheckFinalStateOpacity(golden); !fs.OK {
		t.Errorf("golden history should remain final-state opaque: %s", fs.Reason)
	}
}

// TestRunInterleavedDeterministic pins the scheduler's core contract: the
// recorded history is a pure function of the workload.
func TestRunInterleavedDeterministic(t *testing.T) {
	for _, name := range engines.Names() {
		w := smallWorkload(name, 5)
		a, sa, err := RunInterleaved(w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		b, sb, err := RunInterleaved(w)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if histio.FormatString(a) != histio.FormatString(b) {
			t.Errorf("%s: two interleaved runs of the same workload diverged", name)
		}
		if sa != sb {
			t.Errorf("%s: stats diverged: %+v vs %+v", name, sa, sb)
		}
		if sa.Commits+sa.Failed != int64(w.Goroutines*w.TxnsPerGoroutine) {
			t.Errorf("%s: commits+failed = %d, want %d", name, sa.Commits+sa.Failed, w.Goroutines*w.TxnsPerGoroutine)
		}
		if !a.Complete() {
			t.Errorf("%s: interleaved history has pending operations", name)
		}
	}
}

// TestRunInterleavedDeferredUpdateEnginesClean: under the stepwise
// scheduler the deferred-update engines still certify (the scheduler can
// only produce interleavings the real engines allow).
func TestRunInterleavedDeferredUpdateEnginesClean(t *testing.T) {
	for _, name := range []string{"tl2", "norec", "gl", "dstm"} {
		h, _, err := RunInterleaved(smallWorkload(name, 6))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		v := spec.CheckDUOpacity(h, spec.WithNodeLimit(2_000_000))
		if v.Undecided {
			t.Logf("%s: undecided after %d nodes", name, v.Nodes)
			continue
		}
		if !v.OK {
			t.Errorf("%s: interleaved history not du-opaque: %s\n%s", name, v.Reason, h)
		}
	}
}

func TestRunInterleavedUnknownEngine(t *testing.T) {
	if _, _, err := RunInterleaved(Workload{Engine: "bogus"}); err == nil {
		t.Fatal("unknown engine accepted by RunInterleaved")
	}
}

func TestFormatTables(t *testing.T) {
	rows := []RunStats{{Engine: "tl2", Commits: 10, Aborts: 2}}
	out := FormatRunTable(rows)
	if !strings.Contains(out, "tl2") || !strings.Contains(out, "abort-rate") {
		t.Errorf("run table missing fields:\n%s", out)
	}
	cs := CertStats{
		Engine:   "ple",
		Episodes: 3,
		Accepted: map[spec.Criterion]int{spec.DUOpacity: 1},
		Rejected: map[spec.Criterion]int{spec.DUOpacity: 2},
	}
	out = FormatCertTable(cs, []spec.Criterion{spec.DUOpacity})
	if !strings.Contains(out, "du-opacity") || !strings.Contains(out, "ple") {
		t.Errorf("cert table missing fields:\n%s", out)
	}
}

func TestAbortRateAndThroughputEdgeCases(t *testing.T) {
	var s RunStats
	if s.AbortRate() != 0 || s.TxnPerSec() != 0 {
		t.Error("zero stats should yield zero rates")
	}
}

func TestSweepGrid(t *testing.T) {
	points, err := Sweep(SweepConfig{
		Engines:       []string{"gl", "norec"},
		Goroutines:    []int{1, 2},
		ReadFractions: []float64{0.5},
		Base: Workload{
			Objects:          4,
			TxnsPerGoroutine: 20,
			OpsPerTxn:        2,
			Seed:             1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("got %d points, want 4", len(points))
	}
	for _, p := range points {
		if p.Stats.Commits == 0 {
			t.Errorf("%s/g=%d: no commits", p.Engine, p.Goroutines)
		}
	}
	table := FormatSweepTable(points)
	for _, want := range []string{"read fraction 0.50", "gl", "norec", "g=1", "g=2"} {
		if !strings.Contains(table, want) {
			t.Errorf("sweep table missing %q:\n%s", want, table)
		}
	}
}

func TestSweepUnknownEngine(t *testing.T) {
	_, err := Sweep(SweepConfig{
		Engines:       []string{"bogus"},
		Goroutines:    []int{1},
		ReadFractions: []float64{0.5},
	})
	if err == nil {
		t.Fatal("unknown engine accepted")
	}
}

// TestPlanOfReadFraction pins the ReadFraction defaulting contract: 0 is
// unset (defaults to 0.5, mixed plans), any negative value is the
// documented explicit zero (write-only plans).
func TestPlanOfReadFraction(t *testing.T) {
	base := Workload{Objects: 2, Goroutines: 2, TxnsPerGoroutine: 2, OpsPerTxn: 4, Seed: 3}

	w := base
	w.ReadFraction = -1
	reads, writes := 0, 0
	for _, th := range PlanOf(w).Threads {
		for _, txn := range th {
			for _, op := range txn {
				if op.Read {
					reads++
				} else {
					writes++
				}
			}
		}
	}
	if reads != 0 || writes == 0 {
		t.Errorf("negative ReadFraction: %d reads, %d writes; want write-only", reads, writes)
	}

	w.ReadFraction = 0 // unset: the 0.5 default must produce some reads
	reads = 0
	for _, th := range PlanOf(w).Threads {
		for _, txn := range th {
			for _, op := range txn {
				if op.Read {
					reads++
				}
			}
		}
	}
	if reads == 0 {
		t.Error("unset ReadFraction produced a write-only plan; want the 0.5 default")
	}
}

// TestCertifyExploreDefaultMaxAttempts: with MaxAttempts unset, the
// explore path must fall through to the explorer's exploration-sized
// default (2), not inherit the sampler's 10,000-retry default — which
// balloons the schedule space and turns provable episodes into
// budget-exhausted undecideds.
func TestCertifyExploreDefaultMaxAttempts(t *testing.T) {
	cfg := CertConfig{
		Workload: Workload{
			Engine:           "tl2",
			Objects:          2,
			Goroutines:       2,
			TxnsPerGoroutine: 2,
			OpsPerTxn:        2,
			ReadFraction:     0.5,
			Seed:             5,
		},
		Episodes: 2,
		Explore:  true,
	}
	stats, err := Certify(cfg, []spec.Criterion{spec.DUOpacity})
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Undecided[spec.DUOpacity]; got != 0 {
		t.Errorf("%d undecided episodes with default MaxAttempts (reason %q); want proofs",
			got, stats.FirstReason[spec.DUOpacity])
	}
	if stats.Accepted[spec.DUOpacity] == 0 {
		t.Error("no episode proven")
	}
}
