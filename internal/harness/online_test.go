package harness

import (
	"testing"

	"duopacity/internal/spec"
)

// TestRunMonitoredMatchesBatch pins online certification against the
// record-then-check pipeline: for the deterministic interleaved
// scheduler, the monitored run and the batch check of the same seeded
// episode must agree on the verdict.
func TestRunMonitoredMatchesBatch(t *testing.T) {
	for _, engine := range []string{"tl2", "norec", "ple"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			w := Workload{
				Engine:           engine,
				Objects:          4,
				Goroutines:       4,
				TxnsPerGoroutine: 2,
				OpsPerTxn:        4,
				ReadFraction:     0.5,
				Seed:             8,
			}
			r, err := RunMonitored(w, spec.DUOpacity, 2_000_000, true)
			if err != nil {
				t.Fatal(err)
			}
			h, _, err := RunInterleaved(w)
			if err != nil {
				t.Fatal(err)
			}
			want := spec.CheckDUOpacity(h, spec.WithNodeLimit(2_000_000))
			if r.Verdict.OK != want.OK || r.Verdict.Undecided != want.Undecided {
				t.Fatalf("online verdict %v, batch %v", r.Verdict, want)
			}
			if r.Events != h.Len() {
				t.Fatalf("monitored %d events, history has %d", r.Events, h.Len())
			}
			if !r.Verdict.OK && r.ViolationAt < 0 {
				t.Fatal("latched violation without a violation index")
			}
		})
	}
}

// TestRunMonitoredIdentifiesViolationEvent pins the new capability: on
// the golden ple episode (a deferred-update violation), the live monitor
// latches at a specific event index while the run is still producing
// events — the prefix up to that event must already violate du-opacity,
// and the prefix before it must not.
func TestRunMonitoredIdentifiesViolationEvent(t *testing.T) {
	r, err := RunMonitored(pleGoldenWorkload(), spec.DUOpacity, 2_000_000, true)
	if err != nil {
		t.Fatal(err)
	}
	if r.Verdict.OK || r.Verdict.Undecided {
		t.Fatalf("golden ple episode must violate du-opacity online, got %v", r.Verdict)
	}
	if r.ViolationAt < 0 {
		t.Fatal("no violation index recorded")
	}
	h, _, err := RunInterleaved(pleGoldenWorkload())
	if err != nil {
		t.Fatal(err)
	}
	if v := spec.CheckDUOpacity(h.Prefix(r.ViolationAt + 1)); v.OK {
		t.Fatalf("prefix through event %d should violate du-opacity", r.ViolationAt)
	}
	if v := spec.CheckDUOpacity(h.Prefix(r.ViolationAt)); !v.OK {
		t.Fatalf("prefix before event %d should still be du-opaque: %s", r.ViolationAt, v.Reason)
	}
}

// TestRunMonitoredConcurrent exercises the tap under real goroutines: the
// monitor must consume a well-formed stream (no append errors, which
// would panic) and produce a verdict; tl2's runs are du-opaque in
// practice.
func TestRunMonitoredConcurrent(t *testing.T) {
	r, err := RunMonitored(Workload{
		Engine:           "tl2",
		Objects:          4,
		Goroutines:       4,
		TxnsPerGoroutine: 3,
		OpsPerTxn:        3,
		Seed:             5,
	}, spec.DUOpacity, 2_000_000, false)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verdict.OK {
		t.Fatalf("tl2 run rejected online: %s", r.Verdict.Reason)
	}
	if r.Events == 0 || r.Searches+r.FastHits == 0 {
		t.Fatalf("implausible monitor counters: events=%d searches=%d fastHits=%d",
			r.Events, r.Searches, r.FastHits)
	}
}

// TestRunMonitoredWithRetirement pins the option pass-through: a
// monitored run with spec.WithRetirement must reach the same verdict as
// the plain monitored run, and on a sequential workload (every
// transaction a retirement barrier) it must actually retire.
func TestRunMonitoredWithRetirement(t *testing.T) {
	w := Workload{
		Engine:           "tl2",
		Objects:          3,
		Goroutines:       1,
		TxnsPerGoroutine: 40,
		OpsPerTxn:        3,
		ReadFraction:     0.4,
		Seed:             11,
	}
	plain, err := RunMonitored(w, spec.DUOpacity, 2_000_000, true)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Retired != 0 {
		t.Fatalf("retirement fired without WithRetirement: %d", plain.Retired)
	}
	ret, err := RunMonitored(w, spec.DUOpacity, 2_000_000, true, spec.WithRetirement(4))
	if err != nil {
		t.Fatal(err)
	}
	if ret.Verdict.OK != plain.Verdict.OK || ret.Verdict.Undecided != plain.Verdict.Undecided {
		t.Fatalf("retiring verdict %v diverges from plain %v", ret.Verdict, plain.Verdict)
	}
	if ret.Events != plain.Events {
		t.Fatalf("retiring run saw %d events, plain %d", ret.Events, plain.Events)
	}
	if ret.Retired == 0 {
		t.Fatal("sequential workload retired nothing")
	}
}

// TestCertifyEpisodeOnlineSeeding pins that online episodes cover the
// same executions as batch episodes (same seed derivation).
func TestCertifyEpisodeOnlineSeeding(t *testing.T) {
	cfg := CertConfig{Workload: Workload{
		Engine:           "ple",
		Objects:          4,
		Goroutines:       8,
		TxnsPerGoroutine: 4,
		OpsPerTxn:        8,
		ReadFraction:     0.5,
		Seed:             4,
	}, Episodes: 6, Interleaved: true}
	cfg = cfg.WithDefaults()
	var online OnlineStats
	online.Engine = cfg.Workload.Engine
	online.Criterion = spec.DUOpacity
	batch := NewCertStats(cfg.Workload.Engine)
	for ep := 0; ep < cfg.Episodes; ep++ {
		r, err := CertifyEpisodeOnline(cfg, ep, spec.DUOpacity)
		if err != nil {
			t.Fatal(err)
		}
		online.AddEpisode(r)
		br, err := CertifyEpisode(cfg, ep, []spec.Criterion{spec.DUOpacity})
		if err != nil {
			t.Fatal(err)
		}
		batch.AddEpisode([]spec.Criterion{spec.DUOpacity}, br)
	}
	if online.Accepted != batch.Accepted[spec.DUOpacity] ||
		online.Rejected != batch.Rejected[spec.DUOpacity] {
		t.Fatalf("online (%d accepted, %d rejected) diverges from batch (%d, %d)",
			online.Accepted, online.Rejected,
			batch.Accepted[spec.DUOpacity], batch.Rejected[spec.DUOpacity])
	}
	// The verdicts agree (du-opacity is prefix-closed); the reasons need
	// not: the monitor latches at the first violating prefix, whose
	// refutation can name an earlier cause than the full episode's.
	if online.Rejected > 0 && online.FirstReason == "" {
		t.Fatal("rejections without a first reason")
	}
	if out := FormatOnlineTable(online); out == "" {
		t.Fatal("empty online table")
	}
}
