package harness

import (
	"testing"

	"duopacity/internal/recorder"
	"duopacity/internal/stm"
	"duopacity/internal/stm/engines"
)

// newStepper builds a stepper over a fresh engine for direct policy tests.
func newStepper(t *testing.T, engine string, p stm.Plan, maxAttempts int) *stepper {
	t.Helper()
	eng, err := engines.New(engine, p.Objects)
	if err != nil {
		t.Fatal(err)
	}
	return &stepper{
		rec:         recorder.New(eng),
		threads:     threadsFor(p),
		policy:      policyFor(engine),
		maxAttempts: maxAttempts,
	}
}

// TestPolicyFor pins the engine → exclusion mapping: the explorer's
// enumeration claim is "all schedules the policy allows", so the mapping
// is load-bearing shared knowledge.
func TestPolicyFor(t *testing.T) {
	for _, tc := range []struct {
		engine string
		want   exclusion
	}{
		{"gl", exclWholeTxn},
		{"ple", exclWriters},
		{"tl2", exclNone},
		{"norec", exclNone},
		{"dstm", exclNone},
		{"etl", exclNone},
		{"etl+v", exclNone},
	} {
		if got := policyFor(tc.engine).excl; got != tc.want {
			t.Errorf("policyFor(%s).excl = %d, want %d", tc.engine, got, tc.want)
		}
	}
}

// TestPolicyWholeTxnExclusion: under gl's policy, a thread cannot begin a
// transaction while another is inside one, and becomes admissible again
// once the first completes.
func TestPolicyWholeTxnExclusion(t *testing.T) {
	p := stm.MustParsePlan("r0\nw0")
	st := newStepper(t, "gl", p, 4)
	a, b := st.threads[0], st.threads[1]

	if !st.policy.admissible(st.threads, a) || !st.policy.admissible(st.threads, b) {
		t.Fatal("both threads must be admissible before any begins")
	}
	st.step(a) // a begins and performs its read; still live (commit pending)
	if a.tx == nil {
		t.Fatal("thread a should be inside its transaction")
	}
	if st.policy.admissible(st.threads, b) {
		t.Error("gl: thread b admissible while a holds the global lock")
	}
	if !st.policy.admissible(st.threads, a) {
		t.Error("gl: the lock holder itself must stay admissible")
	}
	st.step(a) // a commits
	if !st.policy.admissible(st.threads, b) {
		t.Error("gl: thread b must be admissible after a completes")
	}
}

// TestPolicyWriterExclusion: under ple's policy, a second writer is
// blocked while the first writer's transaction is live, but readers and
// the lock holder are not.
func TestPolicyWriterExclusion(t *testing.T) {
	p := stm.MustParsePlan("w0 r0\nw1\nr1")
	st := newStepper(t, "ple", p, 4)
	w1, w2, rd := st.threads[0], st.threads[1], st.threads[2]

	st.step(w1) // w1 begins and writes in place: holds the writer lock
	if !w1.wrote {
		t.Fatal("w1 should have written")
	}
	if st.policy.admissible(st.threads, w2) {
		t.Error("ple: second writer admissible while the writer lock is held")
	}
	if !st.policy.admissible(st.threads, rd) {
		t.Error("ple: reader blocked by the writer lock")
	}
	if !st.policy.admissible(st.threads, w1) {
		t.Error("ple: the lock holder must stay admissible")
	}
	st.step(w1) // read
	st.step(w1) // commit, releasing the writer lock
	if !st.policy.admissible(st.threads, w2) {
		t.Error("ple: second writer must be admissible after release")
	}
}

// TestStepperBackoffSemantics: runnable() lifts backoffs only when no
// thread can step, and reports completion with an empty set.
func TestStepperBackoffSemantics(t *testing.T) {
	p := stm.MustParsePlan("r0\nr0")
	st := newStepper(t, "tl2", p, 4)
	st.threads[0].backoff = true
	buf := make([]int, 0, 2)

	r := st.runnable(buf)
	if len(r) != 1 || r[0] != 1 {
		t.Fatalf("runnable = %v, want [1] (thread 0 backing off)", r)
	}
	st.threads[1].backoff = true
	r = st.runnable(buf)
	// All live threads were backing off: backoffs lift, both run again.
	if len(r) != 2 {
		t.Fatalf("runnable = %v, want both threads after backoff clearing", r)
	}
	for len(r) > 0 {
		st.step(st.threads[r[0]])
		r = st.runnable(buf)
	}
	if st.commits != 2 {
		t.Errorf("commits = %d, want 2", st.commits)
	}
	if !st.threads[0].done || !st.threads[1].done {
		t.Error("threads not done after runnable() returned empty")
	}
}
