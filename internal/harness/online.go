package harness

import (
	"context"
	"fmt"
	"strings"
	"text/tabwriter"

	"duopacity/internal/history"
	"duopacity/internal/spec"
)

// OnlineReport is the outcome of one monitored episode: the execution was
// certified while it ran, event by event, through a spec.Monitor attached
// to the recorder's tap — no history is materialized between recording
// and checking.
type OnlineReport struct {
	// Verdict is the monitor's final verdict. Because the monitorable
	// criteria are prefix-latched, a violation identifies the exact
	// response event at which the execution became uncertifiable.
	Verdict spec.Verdict
	// ViolationAt is the index of the event that latched the violation,
	// or -1 when the verdict is not a latched violation.
	ViolationAt int
	// Events is the number of events observed.
	Events int
	// Searches and FastHits are the monitor's cost counters: full
	// serialization searches vs. incremental witness reuses.
	Searches, FastHits int
	// Retired counts transactions garbage-collected by windowed
	// retirement; it stays 0 unless spec.WithRetirement was passed.
	Retired int
	// Stats summarizes the underlying run.
	Stats RunStats
	// DegradedReason is set when online certification could not observe
	// the whole run — the monitor rejected or panicked on a recorded
	// event, or (under checkfarm.CertifyOnline) the episode shard panicked
	// past its retries. The Verdict is then honest: a violation latched
	// before the fault stands (prefix closure), but an OK is downgraded to
	// undecided because the tail of the run went unmonitored.
	DegradedReason string
}

// RunMonitored executes the workload with an online monitor certifying
// every event as it is recorded — the live-monitor capability: the
// verdict is available the moment the run ends (and the violating event
// is identified the moment it happens), instead of replaying the episode
// through a batch check afterwards. interleaved selects the
// deterministic stepwise scheduler (reproducible event order) over real
// goroutines; nodeLimit <= 0 leaves the per-check search unbounded.
// Further monitor options (such as spec.WithRetirement for long-running
// workloads) pass through extra.
//
// The monitor runs inside the recorder's capture mutex, so the monitored
// engine's operations serialize through the check; use RunRecorded plus a
// batch check when measuring engine throughput.
func RunMonitored(w Workload, c spec.Criterion, nodeLimit int, interleaved bool, extra ...spec.Option) (OnlineReport, error) {
	var opts []spec.Option
	if nodeLimit > 0 {
		opts = append(opts, spec.WithNodeLimit(nodeLimit))
	}
	opts = append(opts, extra...)
	m, err := spec.NewMonitor(c, opts...)
	if err != nil {
		return OnlineReport{}, err
	}
	violationAt := -1
	events := 0
	degraded := ""
	tap := func(e history.Event) {
		if degraded != "" {
			return
		}
		v, aerr := m.Append(e)
		if aerr != nil {
			// The recorder only emits matched, well-ordered events, so a
			// rejection means monitor and recorder disagree. Stop
			// monitoring and report the degradation instead of panicking
			// inside the capture path; the recorded history is unharmed.
			degraded = "monitor rejected recorded event: " + aerr.Error()
			return
		}
		if violationAt < 0 && !v.OK && !v.Undecided {
			violationAt = events
		}
		events++
	}
	var stats RunStats
	if interleaved {
		_, stats, err = runInterleaved(w, tap)
	} else {
		_, stats, err = runRecorded(w, tap)
	}
	if err != nil {
		return OnlineReport{}, err
	}
	v := m.Verdict()
	if degraded != "" && (v.OK || v.Undecided) {
		// The tail of the run went unmonitored: an OK cannot be claimed.
		// A latched violation stands — the violating prefix refutes the
		// whole run by prefix closure.
		v = spec.Verdict{Criterion: c, Undecided: true, Reason: "degraded: " + degraded}
	}
	searches, fastHits := m.Stats()
	return OnlineReport{
		Verdict:        v,
		ViolationAt:    violationAt,
		Events:         events,
		Searches:       searches,
		FastHits:       fastHits,
		Retired:        m.Retired(),
		Stats:          stats,
		DegradedReason: degraded,
	}, nil
}

// CertifyEpisodeOnline runs episode ep of the certification described by
// cfg through the online monitor instead of the record-then-check
// pipeline: the episode's events are fed through the monitor's stream as
// they occur and never materialized into a batch history. Episodes are
// seeded exactly as CertifyEpisode seeds them, so online and batch
// certification cover the same executions. Call cfg.WithDefaults first
// when bypassing CertifyOnline aggregation.
func CertifyEpisodeOnline(cfg CertConfig, ep int, c spec.Criterion) (OnlineReport, error) {
	return CertifyEpisodeOnlineCtx(context.Background(), cfg, ep, c)
}

// CertifyEpisodeOnlineCtx is CertifyEpisodeOnline with cancellation
// threaded into the monitor's checks (spec.WithContext): a farm deadline
// turns the episode's remaining searches into prompt undecided verdicts
// instead of running each to the node limit.
func CertifyEpisodeOnlineCtx(ctx context.Context, cfg CertConfig, ep int, c spec.Criterion) (OnlineReport, error) {
	w := cfg.Workload
	w.Seed = cfg.Workload.Seed + int64(ep)*episodeSeedStride
	var extra []spec.Option
	if ctx != nil {
		extra = append(extra, spec.WithContext(ctx))
	}
	return RunMonitored(w, c, cfg.NodeLimit, cfg.Interleaved, extra...)
}

// OnlineStats aggregates online certification outcomes.
type OnlineStats struct {
	Engine    string
	Criterion spec.Criterion
	Episodes  int
	Accepted  int
	Rejected  int
	Undecided int
	// Degraded counts episodes whose monitoring was cut short (see
	// OnlineReport.DegradedReason); each is also counted in Undecided or
	// Rejected, never in Accepted.
	Degraded int
	// FirstReason records the first rejection reason.
	FirstReason string
	// Events, Searches and FastHits accumulate the monitors' cost
	// counters across episodes.
	Events, Searches, FastHits int64
}

// AddEpisode folds one monitored episode into the statistics. Folding
// reports in episode order keeps FirstReason deterministic.
func (s *OnlineStats) AddEpisode(r OnlineReport) {
	s.Episodes++
	if r.DegradedReason != "" {
		s.Degraded++
	}
	v := r.Verdict
	switch {
	case v.Undecided:
		s.Undecided++
	case v.OK:
		s.Accepted++
	default:
		s.Rejected++
		if s.FirstReason == "" {
			s.FirstReason = v.Reason
		}
	}
	s.Events += int64(r.Events)
	s.Searches += int64(r.Searches)
	s.FastHits += int64(r.FastHits)
}

// FormatOnlineTable renders online certification statistics.
func FormatOnlineTable(s OnlineStats) string {
	var b strings.Builder
	tw := tabwriter.NewWriter(&b, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "engine %s, %s (online): %d episodes\n", s.Engine, s.Criterion, s.Episodes)
	fmt.Fprintln(tw, "accepted\trejected\tundecided\tevents\tsearches\tfast-hits")
	fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%d\t%d\n",
		s.Accepted, s.Rejected, s.Undecided, s.Events, s.Searches, s.FastHits)
	if s.FirstReason != "" {
		fmt.Fprintf(tw, "first reason: %s\n", s.FirstReason)
	}
	_ = tw.Flush()
	return b.String()
}
