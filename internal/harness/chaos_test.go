package harness

import (
	"context"
	"strings"
	"testing"

	"duopacity/internal/history"
	"duopacity/internal/spec"
)

// TestChaosSoakPureHarness runs the engine and stream stages (no farm
// hook) across the default kill-safe engines and asserts the soak's
// invariants: faults exercised, exact junk accounting, zero flips.
func TestChaosSoakPureHarness(t *testing.T) {
	rep, err := ChaosSoak(ChaosConfig{Trials: 40, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	t.Log(rep.String())
	for _, f := range rep.Flips {
		t.Errorf("soundness flip: %s", f)
	}
	if rep.Trials != 4*40 {
		t.Fatalf("ran %d trials, want %d", rep.Trials, 4*40)
	}
	if rep.SpuriousAborts == 0 || rep.CommitDelays == 0 || rep.Kills == 0 {
		t.Errorf("engine faults not exercised: %s", rep.String())
	}
	if rep.JunkInjected == 0 || rep.JunkInjected != rep.JunkRejected {
		t.Errorf("junk contract broken: injected=%d rejected=%d", rep.JunkInjected, rep.JunkRejected)
	}
	if rep.FarmDegraded != 0 {
		t.Errorf("no farm hook was set but FarmDegraded = %d", rep.FarmDegraded)
	}
}

// TestChaosSoakNonKillSafeEngine: on a lock-holding engine kill faults
// must be downgraded (never abandoning a lock-holding transaction would
// deadlock the trial), so the soak completes with zero kills.
func TestChaosSoakNonKillSafeEngine(t *testing.T) {
	rep, err := ChaosSoak(ChaosConfig{Engines: []string{"gl", "ple"}, Trials: 10, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kills != 0 {
		t.Fatalf("kill faults injected on non-kill-safe engines: %d", rep.Kills)
	}
	for _, f := range rep.Flips {
		// ple is not deferred-update: its histories may honestly violate
		// du-opacity, which the soak must NOT report as a flip (the
		// deferred-update invariant is gated on engines.DeferredUpdate).
		t.Errorf("soundness flip: %s", f)
	}
}

// TestChaosSoakFarmDegradationContract: a farm hook that reports
// degradation with a decided verdict is a soundness flip; one that
// reports degradation with an undecided verdict is accounted cleanly.
func TestChaosSoakFarmDegradationContract(t *testing.T) {
	honest := func(ctx context.Context, h *history.History, c spec.Criterion, nodeLimit int) (spec.Verdict, string, error) {
		return spec.Verdict{Criterion: c, Undecided: true, Reason: "degraded: synthetic"}, "synthetic", nil
	}
	rep, err := ChaosSoak(ChaosConfig{Engines: []string{"tl2"}, Trials: 6, Seed: 5, Farm: honest})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FarmDegraded != 6 {
		t.Fatalf("FarmDegraded = %d, want 6", rep.FarmDegraded)
	}
	if len(rep.Flips) != 0 {
		t.Fatalf("honest degradation flagged as flips: %v", rep.Flips)
	}

	lying := func(ctx context.Context, h *history.History, c spec.Criterion, nodeLimit int) (spec.Verdict, string, error) {
		// Degraded but decided — the contract violation the soak exists to
		// catch.
		return spec.Verdict{Criterion: c, OK: true}, "synthetic", nil
	}
	rep, err = ChaosSoak(ChaosConfig{Engines: []string{"tl2"}, Trials: 3, Seed: 5, Farm: lying})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Flips) == 0 {
		t.Fatal("decided-while-degraded farm verdicts were not flagged")
	}
	for _, f := range rep.Flips {
		if !strings.Contains(f, "degraded farm run returned a decided verdict") {
			t.Fatalf("unexpected flip: %s", f)
		}
	}
}

// TestChaosSoakFlipDetection: a farm hook that inverts decided verdicts
// must be caught by the differential.
func TestChaosSoakFlipDetection(t *testing.T) {
	inverting := func(ctx context.Context, h *history.History, c spec.Criterion, nodeLimit int) (spec.Verdict, string, error) {
		v := spec.Check(h, c, spec.WithNodeLimit(nodeLimit))
		if !v.Undecided {
			v.OK = !v.OK
		}
		return v, "", nil
	}
	rep, err := ChaosSoak(ChaosConfig{Engines: []string{"tl2"}, Trials: 5, Seed: 9, Farm: inverting})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Flips {
		if strings.Contains(f, "farm verdict flipped") {
			found = true
			// The flip entry must carry a shrunken reproduction in the
			// histio text format, not just a seed.
			if !strings.Contains(f, "shrunk to") {
				t.Fatalf("flip entry has no shrunken reproduction: %s", f)
			}
		}
	}
	if !found {
		t.Fatalf("inverted farm verdicts not detected; flips: %v", rep.Flips)
	}
}

// TestChaosSoakUnknownEngine: infrastructure failures are errors, not
// soak data.
func TestChaosSoakUnknownEngine(t *testing.T) {
	if _, err := ChaosSoak(ChaosConfig{Engines: []string{"bogus"}, Trials: 1}); err == nil {
		t.Fatal("unknown engine did not error")
	}
}
