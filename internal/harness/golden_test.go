package harness

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"duopacity/internal/histio"
	"duopacity/internal/spec"
)

// TestTMS2AbortedReaderGolden pins the TMS2 aborted-reader divergence the
// differential soak surfaces on committed-state deferred-update engines
// (see testdata/tms2_aborted_reader.hist for the full account): a reader
// that observes a value, is overtaken by a later committed writer of the
// same object, and then aborts at its own tryC. The implemented TMS2
// reading orders the committed writer before the aborted reader via the
// conflict-order edge and rejects; every other implemented criterion
// accepts, because the completion may simply serialize the aborted reader
// before the writer.
//
// This is a regression pin for the ROADMAP's open interpretation
// question — whether aborted readers should be exempt from TMS2's
// conflict-order edges, as TMS2's operational snapshot-at-read validation
// of aborted transactions suggests. If CheckTMS2's reading is ever
// revisited, this test must be updated deliberately alongside the
// documented semantics in spec.CheckTMS2.
func TestTMS2AbortedReaderGolden(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "tms2_aborted_reader.hist"))
	if err != nil {
		t.Fatal(err)
	}
	h, err := histio.Parse(strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}

	// The premise of the divergence: the reader aborted (at its own tryC,
	// invoked after the overtaking writer's commit response).
	reader := h.Txn(12)
	if reader == nil || !reader.Aborted() {
		t.Fatal("golden history must contain aborted reader T12")
	}
	writer := h.Txn(13)
	if writer == nil || !writer.Committed() || writer.TryCRes >= reader.TryCInv {
		t.Fatal("golden history must commit writer T13 before T12 invokes tryC")
	}

	// The divergence: the implemented TMS2 reading rejects...
	tms2 := spec.CheckTMS2(h)
	if tms2.OK || tms2.Undecided {
		t.Fatalf("implemented TMS2 reading must reject the golden history, got %s", tms2)
	}
	// ...and the aborted-reader exemption (the knob that makes the open
	// interpretation question executable) flips the verdict to accept:
	// with the conflict-order edge sourced at aborted reader T12 dropped,
	// the completion serializes T12 before the overtaking writer T13.
	exempt := spec.CheckTMS2(h, spec.WithTMS2AbortedReaderExemption())
	if !exempt.OK {
		t.Fatalf("TMS2 with the aborted-reader exemption must accept the golden history, got %s", exempt)
	}
	// ...while the paper's deferred-update condition and its relatives
	// accept: the completion serializes the aborted reader before the
	// overtaking writer.
	for _, c := range []spec.Criterion{
		spec.DUOpacity, spec.Opacity, spec.FinalStateOpacity,
		spec.RCO, spec.StrictSerializability, spec.Serializability,
	} {
		if v := spec.Check(h, c); !v.OK {
			t.Errorf("%s must accept the golden history, got %s", c, v)
		}
	}

	// The online path must reproduce the batch divergence event by event.
	// Without the exemption the TMS2 monitor latches a violation somewhere
	// in the stream (the conflict-order edge T13 -> T12 becomes
	// unsatisfiable); with it, the edge is dropped at T12's abort response
	// and every prefix stays clean. This replays the exact golden bytes
	// through the incremental edge tracker, pinning the monitor's edge
	// maintenance to the batch reading on both sides of the knob.
	for _, tc := range []struct {
		name   string
		opts   []spec.Option
		wantOK bool
	}{
		{"monitor-strict", nil, false},
		{"monitor-exempt", []spec.Option{spec.WithTMS2AbortedReaderExemption()}, true},
	} {
		m, err := spec.NewMonitor(spec.TMS2, tc.opts...)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		var v spec.Verdict
		for _, e := range h.Events() {
			if v, err = m.Append(e); err != nil {
				t.Fatalf("%s: monitor rejected golden event %v: %v", tc.name, e, err)
			}
		}
		if v.Undecided || v.OK != tc.wantOK {
			t.Errorf("%s: online TMS2 verdict OK=%v undecided=%v, want OK=%v (reason %q)",
				tc.name, v.OK, v.Undecided, tc.wantOK, v.Reason)
		}
	}
}
